// Read-scaling sweep: a 95/5 fetch/insert mix at 1/2/4/8 threads, run once
// with the optimistic read path (options.optimistic_reads, the default) and
// once with the classic pessimistic latch-coupled descent, emitting
// BENCH_readscale.json for the trajectory alongside BENCH_commit.json:
//
//   ./bench_readscale [--readscale_json=BENCH_readscale.json]
//
// (tools/run_readscale_bench.sh wraps this.) The point under test: the
// pessimistic descent locks+unlocks a mutex+condvar RwLatch per page per
// read (~3.0 page-latch acquisitions/op measured) — shared-cache-line
// traffic that serializes readers across cores — while the optimistic
// descent validates frame versions instead and touches only the leaf latch
// (~1.1/op). Each row carries the latch-wait and read-descent histograms
// plus the olc_* and page_latch_acquisitions counter deltas so the
// mechanism, not just the throughput, is visible; on a single-core host
// the throughputs land at parity (no cross-core contention exists to
// remove) and the per-op latch counts are the evidence — see
// docs/CONCURRENCY.md, "Knobs, metrics, evidence". Locking protocol is
// kNone and the tree is fully cached: the physical (latch) path is
// isolated from the orthogonal logical-lock and I/O paths, which are
// identical in both modes.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/histogram.h"
#include "db/database.h"
#include "util/random.h"

namespace ariesim {
namespace {

using benchutil::FreshDir;

constexpr int kPreloadKeys = 20000;
constexpr int kDurationMs = 400;
constexpr int kReadPercent = 95;

std::string PreKey(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

struct ReadScaleRow {
  int threads = 0;
  std::string mode;
  double seconds = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t olc_descents = 0;
  uint64_t olc_restarts = 0;
  uint64_t olc_fallbacks = 0;
  uint64_t page_latches = 0;
  HistogramSnapshot latch_wait;    // Metrics::latch_wait_latency over the run
  HistogramSnapshot read_descent;  // Metrics::read_descent_latency over the run
  /// Writer-commit attribution over the measured region (PR 9): in this
  /// fsync-off bench the log_append share should dominate the commit path.
  benchutil::CommitBreakdownSnap breakdown;
};

ReadScaleRow RunConfig(int threads, bool optimistic) {
  Options o = benchutil::BenchOptions();  // 4 KiB pages, 4096 frames, no fsync
  o.index_locking = LockingProtocolKind::kNone;
  o.optimistic_reads = optimistic;
  const std::string mode = optimistic ? "olc" : "pessimistic";
  auto db = std::move(
      Database::Open(FreshDir("readscale_" + mode + std::to_string(threads)),
                     o)
          .value());
  db->CreateTable("t", 1).value();
  BTree* tree = db->CreateIndexWithProtocol("t", "ix", 0, /*unique=*/false,
                                            LockingProtocolKind::kNone)
                    .value();
  {
    Transaction* txn = db->Begin();
    for (int i = 0; i < kPreloadKeys; ++i) {
      Status s = tree->Insert(txn, PreKey(i),
                              Rid{static_cast<PageId>(1 + i / 100),
                                  static_cast<uint16_t>(i % 100)});
      if (!s.ok()) {
        fprintf(stderr, "preload failed: %s\n", s.ToString().c_str());
        std::exit(1);
      }
    }
    (void)db->Commit(txn);
  }

  Metrics& m = db->metrics();
  const uint64_t descents0 = m.olc_descents.load();
  const uint64_t restarts0 = m.olc_restarts.load();
  const uint64_t fallbacks0 = m.olc_fallbacks.load();
  const uint64_t latches0 = m.page_latch_acquisitions.load();
  // Histograms cannot be delta'd; reset so percentiles cover the measured
  // region only (the preload excluded).
  m.latch_wait_latency.Reset();
  m.read_descent_latency.Reset();
  benchutil::CommitBreakdownSnap::ResetIn(db.get());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0}, writes{0};
  std::vector<std::thread> ts;
  const auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      Random rnd(42 + static_cast<uint64_t>(t));
      uint64_t fresh = 0;
      const std::string prefix = "w" + std::to_string(t) + "-";
      // Reads share one long-lived transaction per thread (protocol kNone:
      // no lock state accumulates), so the measured loop is descents, not
      // Begin/Commit bookkeeping; inserts commit individually as real
      // transactions do.
      Transaction* read_txn = db->Begin();
      while (!stop.load(std::memory_order_relaxed)) {
        if (rnd.Percent(kReadPercent)) {
          FetchResult r;
          Status s = tree->Fetch(
              read_txn, PreKey(static_cast<int>(rnd.Uniform(kPreloadKeys))),
              FetchCond::kGe, &r);
          if (s.ok()) reads.fetch_add(1, std::memory_order_relaxed);
        } else {
          Transaction* txn = db->Begin();
          Status s =
              tree->Insert(txn, prefix + std::to_string(fresh++),
                           Rid{static_cast<PageId>(9000 + t),
                               static_cast<uint16_t>(fresh % 1000)});
          if (s.ok()) writes.fetch_add(1, std::memory_order_relaxed);
          (void)db->Commit(txn);
        }
      }
      (void)db->Commit(read_txn);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(kDurationMs));
  stop = true;
  for (auto& th : ts) th.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  ReadScaleRow row;
  row.threads = threads;
  row.mode = mode;
  row.seconds = secs;
  row.reads = reads.load();
  row.writes = writes.load();
  row.olc_descents = m.olc_descents.load() - descents0;
  row.olc_restarts = m.olc_restarts.load() - restarts0;
  row.olc_fallbacks = m.olc_fallbacks.load() - fallbacks0;
  row.page_latches = m.page_latch_acquisitions.load() - latches0;
  row.latch_wait = m.latch_wait_latency.Snapshot();
  row.read_descent = m.read_descent_latency.Snapshot();
  row.breakdown = benchutil::CommitBreakdownSnap::Take(db.get());
  return row;
}

int RunSweep(const std::string& json_path) {
  std::vector<ReadScaleRow> rows;
  for (int threads : {1, 2, 4, 8}) {
    for (bool optimistic : {true, false}) {
      ReadScaleRow r = RunConfig(threads, optimistic);
      double ops =
          static_cast<double>(r.reads + r.writes) / r.seconds;
      fprintf(stderr,
              "readscale: threads=%d mode=%-11s ops/s=%10.0f reads=%llu "
              "olc(descents=%llu restarts=%llu fallbacks=%llu) "
              "latch_waits=%llu descent p50/p99=%.1f/%.1fus\n",
              r.threads, r.mode.c_str(), ops,
              static_cast<unsigned long long>(r.reads),
              static_cast<unsigned long long>(r.olc_descents),
              static_cast<unsigned long long>(r.olc_restarts),
              static_cast<unsigned long long>(r.olc_fallbacks),
              static_cast<unsigned long long>(r.latch_wait.count),
              r.read_descent.p50_us(), r.read_descent.p99_us());
      rows.push_back(std::move(r));
    }
  }
  std::ofstream out(json_path);
  if (!out.is_open()) {
    fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  out << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ReadScaleRow& r = rows[i];
    double ops = static_cast<double>(r.reads + r.writes) / r.seconds;
    out << "  {\"threads\": " << r.threads << ", \"mode\": \"" << r.mode
        << "\", \"seconds\": " << r.seconds << ", \"reads\": " << r.reads
        << ", \"writes\": " << r.writes
        << ", \"ops_per_sec\": " << static_cast<uint64_t>(ops)
        << ", \"olc_descents\": " << r.olc_descents
        << ", \"olc_restarts\": " << r.olc_restarts
        << ", \"olc_fallbacks\": " << r.olc_fallbacks
        << ", \"page_latch_acquisitions\": " << r.page_latches
        << ", \"latch_wait_count\": " << r.latch_wait.count
        << ", \"latch_wait_p50_us\": " << r.latch_wait.p50_us()
        << ", \"latch_wait_p99_us\": " << r.latch_wait.p99_us()
        << ", \"read_descent_count\": " << r.read_descent.count
        << ", \"read_descent_p50_us\": " << r.read_descent.p50_us()
        << ", \"read_descent_p99_us\": " << r.read_descent.p99_us();
    r.breakdown.WriteJsonFields(out);
    out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ariesim

int main(int argc, char** argv) {
  std::string path = "BENCH_readscale.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--readscale_json", 0) == 0) {
      size_t eq = arg.find('=');
      if (eq != std::string::npos && eq + 1 < arg.size()) {
        path = arg.substr(eq + 1);
      }
    }
  }
  return ariesim::RunSweep(path);
}
