// Experiment C4 (see DESIGN.md §3): restart-recovery performance.
//
// The paper's claims: redo is always page-oriented (no index traversals at
// restart), undo is page-oriented whenever possible, and checkpoints bound
// the work. Sweeps:
//   - BM_Restart/N        : crash after N committed row-inserts, measure
//                           restart wall time + records analyzed/redone.
//   - BM_RestartLosers/N  : crash with N uncommitted inserts (undo pass),
//                           report page-oriented vs logical undo counts.
//   - BM_RestartCheckpointed : same as BM_Restart but with a checkpoint
//                           right before the crash — analysis/redo collapse.
//   - BM_RestartInstant/N  : same crash image as BM_Restart, opened with
//                           Options::instant_restart — measures how long
//                           until the engine accepts transactions when redo
//                           is deferred to first touch.
//
// `bench_recovery --recovery_json[=FILE]` skips Google Benchmark and runs
// the instant-restart sweep instead: log size × {classic, instant} on
// copies of the same crash image, emitting one JSON row per run with
// time-to-first-commit and the lazy-replay counters (default FILE
// BENCH_recovery.json; driver: tools/run_recovery_bench.sh).
#include <chrono>
#include <fstream>

#include "bench_common.h"

namespace ariesim {
namespace {

using benchutil::BenchOptions;
using benchutil::FreshDir;

void BuildAndCrash(const std::string& dir, int committed, int losers,
                   bool checkpoint_before_crash,
                   Options opts = BenchOptions()) {
  auto db = std::move(Database::Open(dir, opts).value());
  db->CreateTable("t", 2).value();
  db->CreateIndex("t", "pk", 0, true).value();
  Table* table = db->GetTable("t");
  Transaction* txn = db->Begin();
  for (int i = 0; i < committed; ++i) {
    (void)table->Insert(txn, {"c" + Random(0).Key(static_cast<uint64_t>(i), 7),
                              "v"});
    if (i % 500 == 499) {
      (void)db->Commit(txn);
      txn = db->Begin();
    }
  }
  (void)db->Commit(txn);
  if (checkpoint_before_crash) {
    (void)db->FlushAllPages();
    (void)db->Checkpoint();
  }
  Transaction* loser = db->Begin();
  for (int i = 0; i < losers; ++i) {
    (void)table->Insert(loser,
                        {"l" + Random(0).Key(static_cast<uint64_t>(i), 7), "v"});
  }
  (void)db->wal()->FlushAll();
  if (losers > 0) {
    (void)db->FlushAllPages();  // losers on disk: undo genuinely needed
  }
  // With losers == 0 the dirty pages stay unflushed, so redo has real work.
  db->SimulateCrash();
}

void BM_Restart(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = FreshDir("restart");
    BuildAndCrash(dir, /*committed=*/n, /*losers=*/0,
                  /*checkpoint_before_crash=*/false);
    Options opts = BenchOptions();
    state.ResumeTiming();
    auto db = std::move(Database::Open(dir, opts).value());
    state.PauseTiming();
    const RecoveryStats& rs = db->restart_stats();
    state.counters["analysis_records"] =
        benchmark::Counter(static_cast<double>(rs.analysis_records));
    state.counters["redo_applied"] =
        benchmark::Counter(static_cast<double>(rs.redo_applied));
    state.counters["analysis_us"] =
        benchmark::Counter(static_cast<double>(rs.analysis_us));
    state.counters["redo_us"] =
        benchmark::Counter(static_cast<double>(rs.redo_us));
    state.counters["undo_us"] =
        benchmark::Counter(static_cast<double>(rs.undo_us));
    state.counters["logical_undos"] = benchmark::Counter(
        static_cast<double>(db->metrics().logical_undos.load()));
    // Page-oriented redo: the restart performed no tree traversals.
    state.counters["traversal_restarts"] = benchmark::Counter(
        static_cast<double>(db->metrics().traversal_restarts.load()));
    fprintf(stderr, "BM_Restart/%d: %s\n", n, rs.ToString().c_str());
    db.reset();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_Restart)->Arg(1000)->Arg(5000)->Arg(20000)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_RestartLosers(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = FreshDir("restart_losers");
    BuildAndCrash(dir, /*committed=*/2000, /*losers=*/n,
                  /*checkpoint_before_crash=*/false);
    Options opts = BenchOptions();
    state.ResumeTiming();
    auto db = std::move(Database::Open(dir, opts).value());
    state.PauseTiming();
    const RecoveryStats& rs = db->restart_stats();
    state.counters["undo_records"] =
        benchmark::Counter(static_cast<double>(rs.undo_records));
    state.counters["undo_us"] =
        benchmark::Counter(static_cast<double>(rs.undo_us));
    state.counters["page_oriented_undos"] = benchmark::Counter(
        static_cast<double>(db->metrics().page_oriented_undos.load()));
    state.counters["logical_undos"] = benchmark::Counter(
        static_cast<double>(db->metrics().logical_undos.load()));
    fprintf(stderr, "BM_RestartLosers/%d: %s\n", n, rs.ToString().c_str());
    db.reset();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_RestartLosers)->Arg(100)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_RestartCheckpointed(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = FreshDir("restart_ckpt");
    BuildAndCrash(dir, /*committed=*/n, /*losers=*/0,
                  /*checkpoint_before_crash=*/true);
    Options opts = BenchOptions();
    state.ResumeTiming();
    auto db = std::move(Database::Open(dir, opts).value());
    state.PauseTiming();
    const RecoveryStats& rs = db->restart_stats();
    state.counters["analysis_records"] =
        benchmark::Counter(static_cast<double>(rs.analysis_records));
    state.counters["redo_applied"] =
        benchmark::Counter(static_cast<double>(rs.redo_applied));
    state.counters["total_us"] =
        benchmark::Counter(static_cast<double>(rs.total_us));
    fprintf(stderr, "BM_RestartCheckpointed/%d: %s\n", n,
            rs.ToString().c_str());
    db.reset();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_RestartCheckpointed)->Arg(20000)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

// Torn log tail: the crash truncates wal.log halfway through the unflushed
// loser tail (usually mid-record). Restart must clip the torn record,
// treat the in-flight transaction as a loser, and pay the usual
// analysis/redo/undo — measures recovery cost when the log itself is
// damaged, not just the data pages.
void BM_RestartTornTail(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = FreshDir("restart_torn");
    {
      Options opts = BenchOptions();
      auto db = std::move(Database::Open(dir, opts).value());
      db->CreateTable("t", 2).value();
      db->CreateIndex("t", "pk", 0, true).value();
      Table* table = db->GetTable("t");
      Transaction* txn = db->Begin();
      for (int i = 0; i < n; ++i) {
        (void)table->Insert(
            txn, {"c" + Random(0).Key(static_cast<uint64_t>(i), 7), "v"});
        if (i % 500 == 499) {
          (void)db->Commit(txn);
          txn = db->Begin();
        }
      }
      (void)db->Commit(txn);
      Lsn committed = db->wal()->flushed_lsn();
      Transaction* loser = db->Begin();
      for (int i = 0; i < 500; ++i) {
        (void)table->Insert(
            loser, {"l" + Random(0).Key(static_cast<uint64_t>(i), 7), "v"});
      }
      (void)db->wal()->FlushAll();
      Lsn end = db->wal()->next_lsn();
      TornCrashSpec spec;
      spec.target = TornCrashSpec::Target::kLogTail;
      spec.truncate_to = committed + (end - committed) / 2;
      (void)db->SimulateTornCrash(spec);
    }
    Options opts = BenchOptions();
    state.ResumeTiming();
    auto db = std::move(Database::Open(dir, opts).value());
    state.PauseTiming();
    const RecoveryStats& rs = db->restart_stats();
    state.counters["analysis_records"] =
        benchmark::Counter(static_cast<double>(rs.analysis_records));
    state.counters["undo_records"] =
        benchmark::Counter(static_cast<double>(rs.undo_records));
    state.counters["loser_txns"] =
        benchmark::Counter(static_cast<double>(rs.loser_txns));
    state.counters["undo_us"] =
        benchmark::Counter(static_cast<double>(rs.undo_us));
    fprintf(stderr, "BM_RestartTornTail/%d: %s\n", n, rs.ToString().c_str());
    db.reset();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_RestartTornTail)->Arg(5000)->Arg(20000)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

// Same crash image as BM_Restart, opened with instant restart: the timed
// region covers analysis + loser undo only; the redo debt is deferred to
// first touch. Compare wall time against BM_Restart/N at the same N.
void BM_RestartInstant(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = FreshDir("restart_instant");
    Options opts = BenchOptions();
    opts.instant_restart = true;  // also during the build: checkpoints
                                  // persist the page index
    opts.instant_restart_sweep = false;
    BuildAndCrash(dir, /*committed=*/n, /*losers=*/0,
                  /*checkpoint_before_crash=*/false, opts);
    state.ResumeTiming();
    auto db = std::move(Database::Open(dir, opts).value());
    state.PauseTiming();
    const RecoveryStats& rs = db->restart_stats();
    state.counters["analysis_records"] =
        benchmark::Counter(static_cast<double>(rs.analysis_records));
    state.counters["lazy_pages_scheduled"] =
        benchmark::Counter(static_cast<double>(rs.lazy_pages_scheduled));
    fprintf(stderr, "BM_RestartInstant/%d: %s\n", n, rs.ToString().c_str());
    (void)db->WaitForRecoveryDrain();
    db.reset();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_RestartInstant)->Arg(1000)->Arg(5000)->Arg(20000)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

// ---------------------------------------------------------------------------
// --recovery_json sweep: classic vs instant time-to-first-commit.
namespace recoverybench {

struct Row {
  int rows = 0;
  const char* mode = "classic";
  uint64_t log_bytes = 0;
  uint64_t open_us = 0;   ///< Database::Open wall time
  uint64_t ttfc_us = 0;   ///< open + one insert + one commit
  uint64_t redo_applied = 0;
  uint64_t lazy_scheduled = 0;
  uint64_t lazy_recovered = 0;
  uint64_t chain_fallbacks = 0;
  uint64_t drain_us = 0;  ///< instant only: explicit full drain after TTFC
  /// Per-segment attribution of the first commit after restart — shows
  /// whether the TTFC tail is log-append or durability-wait (PR 9).
  benchutil::CommitBreakdownSnap breakdown;
};

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Periodic fuzzy checkpoints bound the analysis tail without flushing any
/// pages — the redo debt at the crash still grows with the row count, which
/// is exactly the regime where classic restart pays and instant defers.
Options SweepOptions() {
  Options o = BenchOptions();
  o.checkpoint_interval_bytes = 256 * 1024;
  // Build in instant mode so the periodic checkpoints persist the page
  // index; Measure() overrides the flag per recovery mode.
  o.instant_restart = true;
  return o;
}

Row Measure(const std::string& dir, int rows, bool instant) {
  Options o = SweepOptions();
  o.instant_restart = instant;
  o.instant_restart_sweep = false;  // drain measured explicitly below
  Row r;
  r.rows = rows;
  r.mode = instant ? "instant" : "classic";
  r.log_bytes =
      static_cast<uint64_t>(std::filesystem::file_size(dir + "/wal.log"));
  const uint64_t t0 = NowUs();
  auto db = std::move(Database::Open(dir, o).value());
  r.open_us = NowUs() - t0;
  Table* table = db->GetTable("t");
  benchutil::CommitBreakdownSnap::ResetIn(db.get());  // restart's own commits out
  Transaction* txn = db->Begin();
  (void)table->Insert(txn, {"zzz-first-commit", "v"});
  (void)db->Commit(txn);
  r.ttfc_us = NowUs() - t0;
  r.breakdown = benchutil::CommitBreakdownSnap::Take(db.get());
  const RecoveryStats& rs = db->restart_stats();
  r.redo_applied = rs.redo_applied;
  r.lazy_scheduled = rs.lazy_pages_scheduled;
  if (instant) {
    const uint64_t d0 = NowUs();
    (void)db->WaitForRecoveryDrain();
    r.drain_us = NowUs() - d0;
  }
  r.lazy_recovered = db->metrics().pages_recovered_lazily.load();
  r.chain_fallbacks = db->metrics().lazy_chain_fallbacks.load();
  fprintf(stderr, "recovery_sweep rows=%d mode=%s ttfc=%lluus %s\n", rows,
          r.mode, static_cast<unsigned long long>(r.ttfc_us),
          rs.ToString().c_str());
  return r;
}

int RunRecoverySweep(const std::string& json_path) {
  std::vector<Row> out_rows;
  for (int n : {2000, 8000, 32000}) {
    // One crash image per size; both modes recover byte-identical copies.
    std::string dir = FreshDir("recovery_sweep");
    BuildAndCrash(dir, /*committed=*/n, /*losers=*/0,
                  /*checkpoint_before_crash=*/false, SweepOptions());
    std::string dir_instant = dir + "_instant";
    std::filesystem::remove_all(dir_instant);
    std::filesystem::copy(dir, dir_instant,
                          std::filesystem::copy_options::recursive);
    out_rows.push_back(Measure(dir, n, /*instant=*/false));
    out_rows.push_back(Measure(dir_instant, n, /*instant=*/true));
    std::filesystem::remove_all(dir);
    std::filesystem::remove_all(dir_instant);
  }
  std::ofstream out(json_path);
  if (!out.is_open()) {
    fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << "[\n";
  for (size_t i = 0; i < out_rows.size(); ++i) {
    const Row& r = out_rows[i];
    out << "  {\"rows\": " << r.rows << ", \"mode\": \"" << r.mode
        << "\", \"log_bytes\": " << r.log_bytes
        << ", \"open_us\": " << r.open_us << ", \"ttfc_us\": " << r.ttfc_us
        << ", \"redo_applied\": " << r.redo_applied
        << ", \"lazy_pages_scheduled\": " << r.lazy_scheduled
        << ", \"pages_recovered_lazily\": " << r.lazy_recovered
        << ", \"lazy_chain_fallbacks\": " << r.chain_fallbacks
        << ", \"drain_us\": " << r.drain_us;
    r.breakdown.WriteJsonFields(out);
    out << "}" << (i + 1 < out_rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace recoverybench

}  // namespace
}  // namespace ariesim

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--recovery_json", 0) == 0) {
      std::string path = "BENCH_recovery.json";
      size_t eq = arg.find('=');
      if (eq != std::string::npos && eq + 1 < arg.size()) {
        path = arg.substr(eq + 1);
      }
      return ariesim::recoverybench::RunRecoverySweep(path);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
