// Experiment C4 (see DESIGN.md §3): restart-recovery performance.
//
// The paper's claims: redo is always page-oriented (no index traversals at
// restart), undo is page-oriented whenever possible, and checkpoints bound
// the work. Sweeps:
//   - BM_Restart/N        : crash after N committed row-inserts, measure
//                           restart wall time + records analyzed/redone.
//   - BM_RestartLosers/N  : crash with N uncommitted inserts (undo pass),
//                           report page-oriented vs logical undo counts.
//   - BM_RestartCheckpointed : same as BM_Restart but with a checkpoint
//                           right before the crash — analysis/redo collapse.
#include "bench_common.h"

namespace ariesim {
namespace {

using benchutil::BenchOptions;
using benchutil::FreshDir;

void BuildAndCrash(const std::string& dir, int committed, int losers,
                   bool checkpoint_before_crash) {
  Options opts = BenchOptions();
  auto db = std::move(Database::Open(dir, opts).value());
  db->CreateTable("t", 2).value();
  db->CreateIndex("t", "pk", 0, true).value();
  Table* table = db->GetTable("t");
  Transaction* txn = db->Begin();
  for (int i = 0; i < committed; ++i) {
    (void)table->Insert(txn, {"c" + Random(0).Key(static_cast<uint64_t>(i), 7),
                              "v"});
    if (i % 500 == 499) {
      (void)db->Commit(txn);
      txn = db->Begin();
    }
  }
  (void)db->Commit(txn);
  if (checkpoint_before_crash) {
    (void)db->FlushAllPages();
    (void)db->Checkpoint();
  }
  Transaction* loser = db->Begin();
  for (int i = 0; i < losers; ++i) {
    (void)table->Insert(loser,
                        {"l" + Random(0).Key(static_cast<uint64_t>(i), 7), "v"});
  }
  (void)db->wal()->FlushAll();
  if (losers > 0) {
    (void)db->FlushAllPages();  // losers on disk: undo genuinely needed
  }
  // With losers == 0 the dirty pages stay unflushed, so redo has real work.
  db->SimulateCrash();
}

void BM_Restart(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = FreshDir("restart");
    BuildAndCrash(dir, /*committed=*/n, /*losers=*/0,
                  /*checkpoint_before_crash=*/false);
    Options opts = BenchOptions();
    state.ResumeTiming();
    auto db = std::move(Database::Open(dir, opts).value());
    state.PauseTiming();
    const RecoveryStats& rs = db->restart_stats();
    state.counters["analysis_records"] =
        benchmark::Counter(static_cast<double>(rs.analysis_records));
    state.counters["redo_applied"] =
        benchmark::Counter(static_cast<double>(rs.redo_applied));
    state.counters["analysis_us"] =
        benchmark::Counter(static_cast<double>(rs.analysis_us));
    state.counters["redo_us"] =
        benchmark::Counter(static_cast<double>(rs.redo_us));
    state.counters["undo_us"] =
        benchmark::Counter(static_cast<double>(rs.undo_us));
    state.counters["logical_undos"] = benchmark::Counter(
        static_cast<double>(db->metrics().logical_undos.load()));
    // Page-oriented redo: the restart performed no tree traversals.
    state.counters["traversal_restarts"] = benchmark::Counter(
        static_cast<double>(db->metrics().traversal_restarts.load()));
    fprintf(stderr, "BM_Restart/%d: %s\n", n, rs.ToString().c_str());
    db.reset();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_Restart)->Arg(1000)->Arg(5000)->Arg(20000)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_RestartLosers(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = FreshDir("restart_losers");
    BuildAndCrash(dir, /*committed=*/2000, /*losers=*/n,
                  /*checkpoint_before_crash=*/false);
    Options opts = BenchOptions();
    state.ResumeTiming();
    auto db = std::move(Database::Open(dir, opts).value());
    state.PauseTiming();
    const RecoveryStats& rs = db->restart_stats();
    state.counters["undo_records"] =
        benchmark::Counter(static_cast<double>(rs.undo_records));
    state.counters["undo_us"] =
        benchmark::Counter(static_cast<double>(rs.undo_us));
    state.counters["page_oriented_undos"] = benchmark::Counter(
        static_cast<double>(db->metrics().page_oriented_undos.load()));
    state.counters["logical_undos"] = benchmark::Counter(
        static_cast<double>(db->metrics().logical_undos.load()));
    fprintf(stderr, "BM_RestartLosers/%d: %s\n", n, rs.ToString().c_str());
    db.reset();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_RestartLosers)->Arg(100)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_RestartCheckpointed(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = FreshDir("restart_ckpt");
    BuildAndCrash(dir, /*committed=*/n, /*losers=*/0,
                  /*checkpoint_before_crash=*/true);
    Options opts = BenchOptions();
    state.ResumeTiming();
    auto db = std::move(Database::Open(dir, opts).value());
    state.PauseTiming();
    const RecoveryStats& rs = db->restart_stats();
    state.counters["analysis_records"] =
        benchmark::Counter(static_cast<double>(rs.analysis_records));
    state.counters["redo_applied"] =
        benchmark::Counter(static_cast<double>(rs.redo_applied));
    state.counters["total_us"] =
        benchmark::Counter(static_cast<double>(rs.total_us));
    fprintf(stderr, "BM_RestartCheckpointed/%d: %s\n", n,
            rs.ToString().c_str());
    db.reset();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_RestartCheckpointed)->Arg(20000)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

// Torn log tail: the crash truncates wal.log halfway through the unflushed
// loser tail (usually mid-record). Restart must clip the torn record,
// treat the in-flight transaction as a loser, and pay the usual
// analysis/redo/undo — measures recovery cost when the log itself is
// damaged, not just the data pages.
void BM_RestartTornTail(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = FreshDir("restart_torn");
    {
      Options opts = BenchOptions();
      auto db = std::move(Database::Open(dir, opts).value());
      db->CreateTable("t", 2).value();
      db->CreateIndex("t", "pk", 0, true).value();
      Table* table = db->GetTable("t");
      Transaction* txn = db->Begin();
      for (int i = 0; i < n; ++i) {
        (void)table->Insert(
            txn, {"c" + Random(0).Key(static_cast<uint64_t>(i), 7), "v"});
        if (i % 500 == 499) {
          (void)db->Commit(txn);
          txn = db->Begin();
        }
      }
      (void)db->Commit(txn);
      Lsn committed = db->wal()->flushed_lsn();
      Transaction* loser = db->Begin();
      for (int i = 0; i < 500; ++i) {
        (void)table->Insert(
            loser, {"l" + Random(0).Key(static_cast<uint64_t>(i), 7), "v"});
      }
      (void)db->wal()->FlushAll();
      Lsn end = db->wal()->next_lsn();
      TornCrashSpec spec;
      spec.target = TornCrashSpec::Target::kLogTail;
      spec.truncate_to = committed + (end - committed) / 2;
      (void)db->SimulateTornCrash(spec);
    }
    Options opts = BenchOptions();
    state.ResumeTiming();
    auto db = std::move(Database::Open(dir, opts).value());
    state.PauseTiming();
    const RecoveryStats& rs = db->restart_stats();
    state.counters["analysis_records"] =
        benchmark::Counter(static_cast<double>(rs.analysis_records));
    state.counters["undo_records"] =
        benchmark::Counter(static_cast<double>(rs.undo_records));
    state.counters["loser_txns"] =
        benchmark::Counter(static_cast<double>(rs.loser_txns));
    state.counters["undo_us"] =
        benchmark::Counter(static_cast<double>(rs.undo_us));
    fprintf(stderr, "BM_RestartTornTail/%d: %s\n", n, rs.ToString().c_str());
    db.reset();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_RestartTornTail)->Arg(5000)->Arg(20000)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace ariesim

BENCHMARK_MAIN();
