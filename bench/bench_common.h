// Shared benchmark scaffolding.
#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "util/random.h"

namespace ariesim {
namespace benchutil {

inline std::string FreshDir(const std::string& tag) {
  static std::atomic<uint64_t> counter{0};
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("ariesim_bench_" + tag + "_" +
                      std::to_string(counter.fetch_add(1))))
                        .string();
  std::filesystem::remove_all(dir);
  return dir;
}

/// Default bench options: 4 KiB pages, no log fsync (we measure protocol
/// pathlengths and concurrency, not disk latency — see EXPERIMENTS.md).
inline Options BenchOptions() {
  Options o;
  o.buffer_pool_frames = 4096;
  o.fsync_log = false;
  return o;
}

inline const char* ProtocolName(LockingProtocolKind k) {
  switch (k) {
    case LockingProtocolKind::kDataOnly:
      return "data_only";
    case LockingProtocolKind::kIndexSpecific:
      return "index_specific";
    case LockingProtocolKind::kKeyValue:
      return "kvl";
    default:
      return "none";
  }
}

/// Attach the run's concurrency-forensics summary to the benchmark row:
/// numeric counters (deadlocks, summed cycle lengths, sketch drops) plus a
/// label carrying the top hot locks and the cycle-length distribution.
/// Google Benchmark counters are numeric-only, so the tables ride in the
/// row's "label" field of the JSON output.
inline void AttachForensics(benchmark::State& state, Database* db) {
  Metrics& m = db->metrics();
  state.counters["deadlocks"] =
      benchmark::Counter(static_cast<double>(m.deadlocks.load()));
  state.counters["deadlock_cycle_txns"] =
      benchmark::Counter(static_cast<double>(m.deadlock_cycle_txns.load()));
  state.counters["lock_contention_dropped"] = benchmark::Counter(
      static_cast<double>(db->locks()->ContentionDropped()));
  std::string label;
  for (const auto& e : db->locks()->TopContention(3)) {
    label += (label.empty() ? "hot " : " ") + e.key.ToString() + "=" +
             std::to_string(e.waits) + "x/" + std::to_string(e.wait_ns / 1000) +
             "us";
  }
  std::vector<uint64_t> lens = db->locks()->CycleLengthCounts();
  std::string cycles;
  for (size_t i = 2; i < lens.size(); ++i) {
    if (lens[i] == 0) continue;
    cycles += (cycles.empty() ? "" : ",") + std::to_string(i) +
              (i == lens.size() - 1 ? "+" : "") + "=" + std::to_string(lens[i]);
  }
  if (label.empty()) label = "hot none";  // row always carries the table
  if (!cycles.empty()) label += " cycles " + cycles;
  state.SetLabel(label);
}

inline Rid BenchRid(uint64_t i) {
  return Rid{static_cast<PageId>(100000 + i / 1000),
             static_cast<uint16_t>(i % 1000)};
}

}  // namespace benchutil
}  // namespace ariesim
