// Shared benchmark scaffolding.
#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>

#include "db/database.h"
#include "util/random.h"

namespace ariesim {
namespace benchutil {

inline std::string FreshDir(const std::string& tag) {
  static std::atomic<uint64_t> counter{0};
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("ariesim_bench_" + tag + "_" +
                      std::to_string(counter.fetch_add(1))))
                        .string();
  std::filesystem::remove_all(dir);
  return dir;
}

/// Default bench options: 4 KiB pages, no log fsync (we measure protocol
/// pathlengths and concurrency, not disk latency — see EXPERIMENTS.md).
inline Options BenchOptions() {
  Options o;
  o.buffer_pool_frames = 4096;
  o.fsync_log = false;
  return o;
}

inline const char* ProtocolName(LockingProtocolKind k) {
  switch (k) {
    case LockingProtocolKind::kDataOnly:
      return "data_only";
    case LockingProtocolKind::kIndexSpecific:
      return "index_specific";
    case LockingProtocolKind::kKeyValue:
      return "kvl";
    default:
      return "none";
  }
}

inline Rid BenchRid(uint64_t i) {
  return Rid{static_cast<PageId>(100000 + i / 1000),
             static_cast<uint16_t>(i % 1000)};
}

}  // namespace benchutil
}  // namespace ariesim
