// Shared benchmark scaffolding.
#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/commit_breakdown.h"
#include "db/database.h"
#include "util/random.h"

namespace ariesim {
namespace benchutil {

inline std::string FreshDir(const std::string& tag) {
  static std::atomic<uint64_t> counter{0};
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("ariesim_bench_" + tag + "_" +
                      std::to_string(counter.fetch_add(1))))
                        .string();
  std::filesystem::remove_all(dir);
  return dir;
}

/// Default bench options: 4 KiB pages, no log fsync (we measure protocol
/// pathlengths and concurrency, not disk latency — see EXPERIMENTS.md).
inline Options BenchOptions() {
  Options o;
  o.buffer_pool_frames = 4096;
  o.fsync_log = false;
  return o;
}

inline const char* ProtocolName(LockingProtocolKind k) {
  switch (k) {
    case LockingProtocolKind::kDataOnly:
      return "data_only";
    case LockingProtocolKind::kIndexSpecific:
      return "index_specific";
    case LockingProtocolKind::kKeyValue:
      return "kvl";
    default:
      return "none";
  }
}

/// Attach the run's concurrency-forensics summary to the benchmark row:
/// numeric counters (deadlocks, summed cycle lengths, sketch drops) plus a
/// label carrying the top hot locks and the cycle-length distribution.
/// Google Benchmark counters are numeric-only, so the tables ride in the
/// row's "label" field of the JSON output.
inline void AttachForensics(benchmark::State& state, Database* db) {
  Metrics& m = db->metrics();
  state.counters["deadlocks"] =
      benchmark::Counter(static_cast<double>(m.deadlocks.load()));
  state.counters["deadlock_cycle_txns"] =
      benchmark::Counter(static_cast<double>(m.deadlock_cycle_txns.load()));
  state.counters["lock_contention_dropped"] = benchmark::Counter(
      static_cast<double>(db->locks()->ContentionDropped()));
  std::string label;
  for (const auto& e : db->locks()->TopContention(3)) {
    label += (label.empty() ? "hot " : " ") + e.key.ToString() + "=" +
             std::to_string(e.waits) + "x/" + std::to_string(e.wait_ns / 1000) +
             "us";
  }
  std::vector<uint64_t> lens = db->locks()->CycleLengthCounts();
  std::string cycles;
  for (size_t i = 2; i < lens.size(); ++i) {
    if (lens[i] == 0) continue;
    cycles += (cycles.empty() ? "" : ",") + std::to_string(i) +
              (i == lens.size() - 1 ? "+" : "") + "=" + std::to_string(lens[i]);
  }
  if (label.empty()) label = "hot none";  // row always carries the table
  if (!cycles.empty()) label += " cycles " + cycles;
  state.SetLabel(label);
}

/// Commit-breakdown attribution over a measured region (PR 9): reset the
/// seven commit_seg_* histograms at region start, Take() a snapshot at region
/// end, and emit per-segment percentiles + share-of-total into the bench row
/// (JSON sweeps via WriteJsonFields, google-benchmark rows via Attach).
struct CommitBreakdownSnap {
  HistogramSnapshot segs[kCommitSegmentCount];
  uint64_t total_sum_ns = 0;

  static void ResetIn(Database* db) {
    Metrics& m = db->metrics();
#define ARIESIM_BENCH_RESET_SEG(name) m.commit_seg_##name.Reset();
    ARIESIM_COMMIT_SEGMENTS(ARIESIM_BENCH_RESET_SEG)
#undef ARIESIM_BENCH_RESET_SEG
  }

  static CommitBreakdownSnap Take(Database* db) {
    Metrics& m = db->metrics();
    const LatencyHistogram* hists[kCommitSegmentCount];
    size_t n = 0;
#define ARIESIM_BENCH_SEG_PTR(name) hists[n++] = &m.commit_seg_##name;
    ARIESIM_COMMIT_SEGMENTS(ARIESIM_BENCH_SEG_PTR)
#undef ARIESIM_BENCH_SEG_PTR
    CommitBreakdownSnap snap;
    for (size_t i = 0; i < kCommitSegmentCount; ++i) {
      snap.segs[i] = hists[i]->Snapshot();
      snap.total_sum_ns += snap.segs[i].sum_ns;
    }
    return snap;
  }

  double Share(size_t i) const {
    return total_sum_ns == 0 ? 0.0
                             : static_cast<double>(segs[i].sum_ns) /
                                   static_cast<double>(total_sum_ns);
  }

  /// Sum of the commit-path segments' p50s (log_append..wakeup) — compared
  /// against commit_latency p50 for the >=90% attribution criterion.
  double PathP50Us() const {
    double sum = 0;
    for (size_t i = static_cast<size_t>(CommitSegment::log_append);
         i < kCommitSegmentCount; ++i) {
      sum += segs[i].p50_us();
    }
    return sum;
  }

  /// `, "seg_<name>_p50_us": X, "seg_<name>_p95_us": Y, "seg_<name>_share":
  /// Z` for every segment — leading comma included so callers splice it
  /// before the row's closing brace.
  template <typename Stream>
  void WriteJsonFields(Stream& out) const {
    const char* const* names = CommitBreakdown::SegmentNames();
    for (size_t i = 0; i < kCommitSegmentCount; ++i) {
      out << ", \"seg_" << names[i] << "_p50_us\": " << segs[i].p50_us()
          << ", \"seg_" << names[i] << "_p95_us\": " << segs[i].p95_us()
          << ", \"seg_" << names[i] << "_share\": " << Share(i);
    }
  }
};

/// Attach the breakdown to a google-benchmark row's counters.
inline void AttachCommitBreakdown(benchmark::State& state, Database* db) {
  CommitBreakdownSnap snap = CommitBreakdownSnap::Take(db);
  const char* const* names = CommitBreakdown::SegmentNames();
  for (size_t i = 0; i < kCommitSegmentCount; ++i) {
    std::string prefix = std::string("seg_") + names[i];
    state.counters[prefix + "_p50_us"] =
        benchmark::Counter(snap.segs[i].p50_us());
    state.counters[prefix + "_p95_us"] =
        benchmark::Counter(snap.segs[i].p95_us());
    state.counters[prefix + "_share"] = benchmark::Counter(snap.Share(i));
  }
}

inline Rid BenchRid(uint64_t i) {
  return Rid{static_cast<PageId>(100000 + i / 1000),
             static_cast<uint16_t>(i % 1000)};
}

}  // namespace benchutil
}  // namespace ariesim
