// Experiment C5 (see DESIGN.md §3): rollback cost and the undo-path split.
//
//   - BM_Rollback/N          : total rollback of a transaction with N row
//                              inserts; reports CLR bytes logged per undo.
//   - BM_RollbackAfterSplits : rollback after the transaction's inserts
//                              forced many SMOs — the completed splits are
//                              NOT undone (nested top actions); reports the
//                              page-oriented vs logical undo mix.
//   - BM_SavepointRollback   : partial rollback cost.
#include "bench_common.h"

namespace ariesim {
namespace {

using benchutil::BenchOptions;
using benchutil::BenchRid;
using benchutil::FreshDir;

void BM_Rollback(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto db =
      std::move(Database::Open(FreshDir("rollback"), BenchOptions()).value());
  db->CreateTable("t", 2).value();
  db->CreateIndex("t", "pk", 0, true).value();
  Table* table = db->GetTable("t");
  uint64_t round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Transaction* txn = db->Begin();
    for (int i = 0; i < n; ++i) {
      (void)table->Insert(
          txn, {"r" + std::to_string(round) + "-" + std::to_string(i), "v"});
    }
    uint64_t bytes0 = db->metrics().log_bytes.load();
    state.ResumeTiming();
    (void)db->Rollback(txn);
    state.PauseTiming();
    state.counters["clr_bytes_per_op"] = benchmark::Counter(
        static_cast<double>(db->metrics().log_bytes.load() - bytes0) /
        static_cast<double>(n));
    ++round;
    state.ResumeTiming();
  }
}
BENCHMARK(BM_Rollback)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond)->Iterations(10);

void BM_RollbackAfterSplits(benchmark::State& state) {
  Options opts = BenchOptions();
  opts.page_size = 512;
  auto db =
      std::move(Database::Open(FreshDir("rollback_smo"), opts).value());
  db->CreateTable("t", 1).value();
  BTree* tree = db->CreateIndexWithProtocol("t", "ix", 0, false,
                                            LockingProtocolKind::kNone)
                    .value();
  uint64_t round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Transaction* txn = db->Begin();
    Random rnd(round);
    for (uint64_t i = 0; i < 2000; ++i) {
      (void)tree->Insert(txn, "s" + rnd.Key(rnd.Uniform(1000000), 7),
                         BenchRid(round * 10000 + i));
    }
    uint64_t splits = db->metrics().smo_splits.load();
    uint64_t po0 = db->metrics().page_oriented_undos.load();
    uint64_t lo0 = db->metrics().logical_undos.load();
    state.ResumeTiming();
    (void)db->Rollback(txn);
    state.PauseTiming();
    state.counters["splits_performed"] =
        benchmark::Counter(static_cast<double>(splits));
    state.counters["page_oriented_undos"] = benchmark::Counter(
        static_cast<double>(db->metrics().page_oriented_undos.load() - po0));
    state.counters["logical_undos"] = benchmark::Counter(
        static_cast<double>(db->metrics().logical_undos.load() - lo0));
    ++round;
    state.ResumeTiming();
  }
}
BENCHMARK(BM_RollbackAfterSplits)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_SavepointRollback(benchmark::State& state) {
  auto db =
      std::move(Database::Open(FreshDir("savepoint"), BenchOptions()).value());
  db->CreateTable("t", 2).value();
  db->CreateIndex("t", "pk", 0, true).value();
  Table* table = db->GetTable("t");
  uint64_t round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Transaction* txn = db->Begin();
    (void)table->Insert(txn, {"keep" + std::to_string(round), "v"});
    Lsn sp = txn->Savepoint();
    for (int i = 0; i < 100; ++i) {
      (void)table->Insert(
          txn, {"sp" + std::to_string(round) + "-" + std::to_string(i), "v"});
    }
    state.ResumeTiming();
    (void)db->RollbackToSavepoint(txn, sp);
    state.PauseTiming();
    (void)db->Commit(txn);
    ++round;
    state.ResumeTiming();
  }
}
BENCHMARK(BM_SavepointRollback)->Unit(benchmark::kMicrosecond)->Iterations(10);

}  // namespace
}  // namespace ariesim

BENCHMARK_MAIN();
