// Experiment C3 (see DESIGN.md §3): multithreaded mixed-workload throughput
// across locking protocols and thread counts.
//
// Workload: each transaction does 4 operations over a shared table with a
// unique index (60% point fetch, 25% insert, 15% delete) on a moderately
// contended keyspace. Reported: committed transactions per second and the
// deadlock-victim rate. The paper's qualitative prediction: data-only
// locking ≥ index-specific > KVL (coarser value locks serialize readers
// against writers of the same value and take more locks per op).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace ariesim {
namespace {

using benchutil::BenchOptions;
using benchutil::FreshDir;
using benchutil::ProtocolName;

void RunMix(benchmark::State& state, LockingProtocolKind proto) {
  int threads = static_cast<int>(state.range(0));
  auto db = std::move(
      Database::Open(FreshDir(std::string("tp_") + ProtocolName(proto)),
                     BenchOptions())
          .value());
  db->CreateTable("t", 2).value();
  db->CreateIndexWithProtocol("t", "pk", 0, true, proto).value();
  Table* table = db->GetTable("t");
  {
    Transaction* txn = db->Begin();
    for (int i = 0; i < 2000; ++i) {
      (void)table->Insert(txn, {"k" + Random(0).Key(static_cast<uint64_t>(i), 6),
                                "seed"});
    }
    (void)db->Commit(txn);
  }

  for (auto _ : state) {
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> commits{0}, deadlocks{0};
    benchutil::CommitBreakdownSnap::ResetIn(db.get());
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
      ts.emplace_back([&, t] {
        Random rnd(1000 + static_cast<uint64_t>(t));
        while (!stop.load()) {
          Transaction* txn = db->Begin();
          bool dead = false;
          for (int op = 0; op < 4 && !dead; ++op) {
            std::string key = "k" + rnd.Key(rnd.Uniform(4000), 6);
            uint32_t dice = static_cast<uint32_t>(rnd.Uniform(100));
            if (dice < 60) {
              std::optional<Row> row;
              Status s = table->FetchByKey(txn, "pk", key, &row);
              if (s.IsDeadlock()) dead = true;
            } else if (dice < 85) {
              Status s = table->Insert(txn, {key, "v"});
              if (s.IsDeadlock()) dead = true;
            } else {
              std::optional<Row> row;
              Rid rid;
              Status s = table->FetchByKey(txn, "pk", key, &row, &rid);
              if (s.IsDeadlock()) {
                dead = true;
              } else if (s.ok() && row.has_value()) {
                s = table->Delete(txn, rid);
                if (s.IsDeadlock()) dead = true;
              }
            }
          }
          if (dead) {
            deadlocks.fetch_add(1);
            (void)db->Rollback(txn);
          } else if (db->Commit(txn).ok()) {
            commits.fetch_add(1);
          }
        }
      });
    }
    auto t0 = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    stop = true;
    for (auto& t : ts) t.join();
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    state.counters["txns_per_sec"] =
        benchmark::Counter(static_cast<double>(commits.load()) / secs);
    state.counters["deadlocks_per_sec"] =
        benchmark::Counter(static_cast<double>(deadlocks.load()) / secs);
    state.counters["lock_waits"] = benchmark::Counter(
        static_cast<double>(db->metrics().lock_waits.load()));
    benchutil::AttachForensics(state, db.get());
    benchutil::AttachCommitBreakdown(state, db.get());
  }
}

void BM_Mix_DataOnly(benchmark::State& s) {
  RunMix(s, LockingProtocolKind::kDataOnly);
}
void BM_Mix_IndexSpecific(benchmark::State& s) {
  RunMix(s, LockingProtocolKind::kIndexSpecific);
}
void BM_Mix_KVL(benchmark::State& s) {
  RunMix(s, LockingProtocolKind::kKeyValue);
}
BENCHMARK(BM_Mix_DataOnly)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Iterations(1)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_Mix_IndexSpecific)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Iterations(1)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_Mix_KVL)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Iterations(1)->Unit(benchmark::kMillisecond)->UseRealTime();

// ---------------------------------------------------------------------------
// Hot nonunique values: the §1 KVL criticism made measurable.
//
// A nonunique index over a handful of hot category values. Readers fetch a
// key of category C (current-key S lock); writers insert rows of category C.
// Under ARIES/KVL the lock name is the *value* C: a reader's S conflicts
// with every uncommitted inserter's IX on C, serializing the hot value.
// Under data-only (and index-specific) locking each key/RID has its own
// name, so readers and writers of different rows sharing C do not conflict.
// ---------------------------------------------------------------------------

void RunHotValues(benchmark::State& state, LockingProtocolKind proto) {
  int threads = static_cast<int>(state.range(0));
  auto db = std::move(
      Database::Open(FreshDir(std::string("hot_") + ProtocolName(proto)),
                     BenchOptions())
          .value());
  db->CreateTable("t", 2).value();
  db->CreateIndexWithProtocol("t", "by_cat", 1, /*unique=*/false, proto).value();
  Table* table = db->GetTable("t");
  constexpr int kCategories = 8;
  {
    Transaction* txn = db->Begin();
    for (int i = 0; i < 800; ++i) {
      (void)table->Insert(txn, {"row" + std::to_string(i),
                                "cat" + std::to_string(i % kCategories)});
    }
    (void)db->Commit(txn);
  }

  for (auto _ : state) {
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> commits{0}, deadlocks{0};
    benchutil::CommitBreakdownSnap::ResetIn(db.get());
    std::atomic<uint64_t> next_row{100000};
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
      ts.emplace_back([&, t] {
        Random rnd(500 + static_cast<uint64_t>(t));
        BTree* ix = db->GetIndex("by_cat");
        while (!stop.load()) {
          Transaction* txn = db->Begin();
          bool dead = false;
          std::string cat = "cat" + std::to_string(rnd.Uniform(kCategories));
          if (rnd.Percent(70)) {
            // Read one key of the hot category.
            FetchResult r;
            Status s = ix->Fetch(txn, cat, FetchCond::kGe, &r);
            if (s.IsDeadlock()) dead = true;
          } else {
            Status s = table->Insert(
                txn, {"row" + std::to_string(next_row.fetch_add(1)), cat});
            if (s.IsDeadlock()) dead = true;
          }
          if (dead) {
            deadlocks.fetch_add(1);
            (void)db->Rollback(txn);
          } else if (db->Commit(txn).ok()) {
            commits.fetch_add(1);
          }
        }
      });
    }
    auto t0 = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    stop = true;
    for (auto& t : ts) t.join();
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    state.counters["txns_per_sec"] =
        benchmark::Counter(static_cast<double>(commits.load()) / secs);
    state.counters["lock_waits"] = benchmark::Counter(
        static_cast<double>(db->metrics().lock_waits.load()));
    state.counters["deadlocks_per_sec"] =
        benchmark::Counter(static_cast<double>(deadlocks.load()) / secs);
    benchutil::AttachForensics(state, db.get());
    benchutil::AttachCommitBreakdown(state, db.get());
  }
}

void BM_HotValues_DataOnly(benchmark::State& s) {
  RunHotValues(s, LockingProtocolKind::kDataOnly);
}
void BM_HotValues_IndexSpecific(benchmark::State& s) {
  RunHotValues(s, LockingProtocolKind::kIndexSpecific);
}
void BM_HotValues_KVL(benchmark::State& s) {
  RunHotValues(s, LockingProtocolKind::kKeyValue);
}
BENCHMARK(BM_HotValues_DataOnly)
    ->Arg(2)->Arg(4)->Arg(8)
    ->Iterations(1)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_HotValues_IndexSpecific)
    ->Arg(2)->Arg(4)->Arg(8)
    ->Iterations(1)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_HotValues_KVL)
    ->Arg(2)->Arg(4)->Arg(8)
    ->Iterations(1)->Unit(benchmark::kMillisecond)->UseRealTime();

// ---------------------------------------------------------------------------
// Commit-throughput sweep: the group-commit experiment, machine-readable.
//
// threads × {group_off, group_on, async} with the log fsync ENABLED — this
// is the one benchmark here that measures the disk, because the commit rule
// is the one place the protocol must wait for it. Each transaction inserts
// one fresh key (disjoint per-thread keyspaces, so commits/s is flush-bound,
// not lock-bound). Emits a JSON array for the bench trajectory:
//
//   ./bench_throughput --commit_json=BENCH_commit.json
//
// (tools/run_commit_bench.sh wraps this.) Without the flag the binary runs
// the usual google-benchmark suites.
// ---------------------------------------------------------------------------

namespace commitbench {

struct CommitRow {
  int threads;
  std::string mode;
  double seconds;
  uint64_t commits;
  uint64_t log_flushes;
  uint64_t gc_batches;
  uint64_t gc_txns;
  HistogramSnapshot commit_lat;  // Metrics::commit_latency over the run
  HistogramSnapshot fsync_lat;   // Metrics::log_flush_latency over the run
  benchutil::CommitBreakdownSnap breakdown;  // per-segment attribution
};

CommitRow RunCommitConfig(int threads, const std::string& mode,
                          int duration_ms) {
  Options o;
  o.buffer_pool_frames = 4096;
  o.fsync_log = true;  // the whole point: commits must pay for durability
  o.index_locking = LockingProtocolKind::kNone;
  o.wal_group_commit = mode != "group_off";
  o.wal_group_commit_mode = GroupCommitMode::kFlusher;
  auto db = std::move(
      Database::Open(FreshDir("commit_" + mode + std::to_string(threads)), o)
          .value());
  db->CreateTable("t", 2).value();
  db->CreateIndex("t", "pk", 0, true).value();
  Table* table = db->GetTable("t");

  Metrics& m = db->metrics();
  uint64_t flushes0 = m.log_flushes.load();
  uint64_t batches0 = m.group_commit_batches.load();
  uint64_t gctxns0 = m.group_commit_txns.load();
  // Histograms cannot be delta'd like the counters above; reset them so the
  // percentiles cover only the measured region (setup commits excluded).
  m.commit_latency.Reset();
  m.log_flush_latency.Reset();
  benchutil::CommitBreakdownSnap::ResetIn(db.get());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::vector<std::thread> ts;
  auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      uint64_t i = 0;
      const std::string prefix = "t" + std::to_string(t) + "-";
      while (!stop.load(std::memory_order_relaxed)) {
        Transaction* txn = db->Begin();
        Status s = table->Insert(txn, {prefix + std::to_string(i++), "v"});
        if (s.ok()) {
          s = mode == "async" ? db->CommitAsync(txn) : db->Commit(txn);
          if (s.ok()) commits.fetch_add(1, std::memory_order_relaxed);
        } else {
          (void)db->Rollback(txn);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop = true;
  for (auto& t : ts) t.join();
  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  (void)db->wal()->FlushAll();  // drain async tails before teardown

  CommitRow row;
  row.threads = threads;
  row.mode = mode;
  row.seconds = secs;
  row.commits = commits.load();
  row.log_flushes = m.log_flushes.load() - flushes0;
  row.gc_batches = m.group_commit_batches.load() - batches0;
  row.gc_txns = m.group_commit_txns.load() - gctxns0;
  row.commit_lat = m.commit_latency.Snapshot();
  row.fsync_lat = m.log_flush_latency.Snapshot();
  row.breakdown = benchutil::CommitBreakdownSnap::Take(db.get());
  return row;
}

int RunCommitSweep(const std::string& json_path) {
  std::vector<CommitRow> rows;
  for (int threads : {1, 2, 4, 8}) {
    for (const char* mode : {"group_off", "group_on", "async"}) {
      CommitRow r = RunCommitConfig(threads, mode, /*duration_ms=*/400);
      double cps = static_cast<double>(r.commits) / r.seconds;
      fprintf(stderr,
              "commit sweep: threads=%d mode=%-9s commits/s=%10.0f "
              "flushes=%llu commit p50/p99=%.0f/%.0fus fsync p50/p99=%.0f/%.0fus "
              "path_p50=%.0fus (%.0f%% of commit p50)\n",
              r.threads, r.mode.c_str(), cps,
              static_cast<unsigned long long>(r.log_flushes),
              r.commit_lat.p50_us(), r.commit_lat.p99_us(),
              r.fsync_lat.p50_us(), r.fsync_lat.p99_us(),
              r.breakdown.PathP50Us(),
              r.commit_lat.p50_us() > 0
                  ? 100.0 * r.breakdown.PathP50Us() / r.commit_lat.p50_us()
                  : 0.0);
      rows.push_back(std::move(r));
    }
  }
  std::ofstream out(json_path);
  if (!out.is_open()) {
    fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  out << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const CommitRow& r = rows[i];
    double cps = static_cast<double>(r.commits) / r.seconds;
    double batch = r.gc_batches > 0 ? static_cast<double>(r.gc_txns) /
                                          static_cast<double>(r.gc_batches)
                                    : 0.0;
    out << "  {\"threads\": " << r.threads << ", \"mode\": \"" << r.mode
        << "\", \"seconds\": " << r.seconds << ", \"commits\": " << r.commits
        << ", \"commits_per_sec\": " << static_cast<uint64_t>(cps)
        << ", \"log_flushes\": " << r.log_flushes
        << ", \"group_commit_batches\": " << r.gc_batches
        << ", \"group_commit_txns\": " << r.gc_txns
        << ", \"avg_batch_size\": " << batch
        << ", \"commit_p50_us\": " << r.commit_lat.p50_us()
        << ", \"commit_p95_us\": " << r.commit_lat.p95_us()
        << ", \"commit_p99_us\": " << r.commit_lat.p99_us()
        << ", \"commit_max_us\": " << r.commit_lat.max_us()
        << ", \"fsync_p50_us\": " << r.fsync_lat.p50_us()
        << ", \"fsync_p95_us\": " << r.fsync_lat.p95_us()
        << ", \"fsync_p99_us\": " << r.fsync_lat.p99_us();
    r.breakdown.WriteJsonFields(out);
    out << ", \"path_p50_us\": " << r.breakdown.PathP50Us()
        << ", \"path_p50_share\": "
        << (r.commit_lat.p50_us() > 0
                ? r.breakdown.PathP50Us() / r.commit_lat.p50_us()
                : 0.0)
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace commitbench

}  // namespace
}  // namespace ariesim

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--commit_json", 0) == 0) {
      std::string path = "BENCH_commit.json";
      size_t eq = arg.find('=');
      if (eq != std::string::npos && eq + 1 < arg.size()) {
        path = arg.substr(eq + 1);
      }
      return ariesim::commitbench::RunCommitSweep(path);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
