// Experiment C2 / Figure 2 (see DESIGN.md §3): locks acquired per
// single-record index operation under the three locking protocols.
//
// The paper's claim: ARIES/IM with data-only locking acquires the *minimal*
// number of locks — the key lock is the record lock, so single-record
// operations take fewer lock calls than index-specific locking (explicit
// key locks) and ARIES/KVL (key-value locks + record locks). The reported
// counter `locks_per_op` regenerates the comparison; `lock_calls_per_op`
// counts lock-manager invocations including already-held re-requests.
#include "bench_common.h"

namespace ariesim {
namespace {

using benchutil::BenchOptions;
using benchutil::BenchRid;
using benchutil::FreshDir;
using benchutil::ProtocolName;

constexpr int kPreload = 2000;

struct Env {
  std::unique_ptr<Database> db;
  BTree* tree;
};

Env MakeEnv(LockingProtocolKind proto, bool unique) {
  Env env;
  env.db = std::move(
      Database::Open(FreshDir(std::string("locks_") + ProtocolName(proto)),
                     BenchOptions())
          .value());
  env.db->CreateTable("t", 1).value();
  env.tree =
      env.db->CreateIndexWithProtocol("t", "ix", 0, unique, proto).value();
  Transaction* txn = env.db->Begin();
  Random rnd(7);
  for (int i = 0; i < kPreload; ++i) {
    (void)env.tree->Insert(txn, rnd.Key(static_cast<uint64_t>(i) * 2, 8),
                           BenchRid(static_cast<uint64_t>(i)));
  }
  (void)env.db->Commit(txn);
  return env;
}

void RunOp(benchmark::State& state, LockingProtocolKind proto,
           const std::string& op) {
  Env env = MakeEnv(proto, /*unique=*/false);
  Random rnd(99);
  uint64_t ops = 0;
  uint64_t locks = 0;
  uint64_t lock_calls = 0;
  uint64_t i = 1;  // odd keys: absent from the preload
  for (auto _ : state) {
    uint64_t granted0 = env.db->metrics().locks_granted.load();
    uint64_t calls0 = env.db->metrics().lock_requests.load();
    Transaction* txn = env.db->Begin();
    if (op == "insert") {
      benchmark::DoNotOptimize(
          env.tree->Insert(txn, rnd.Key(i, 8), BenchRid(10000 + i)));
      i += 2;
    } else if (op == "fetch") {
      FetchResult r;
      benchmark::DoNotOptimize(env.tree->Fetch(
          txn, rnd.Key((ops * 2) % (kPreload * 2), 8), FetchCond::kEq, &r));
    } else {  // delete (of a preloaded even key)
      uint64_t k = (ops * 2) % (kPreload * 2);
      benchmark::DoNotOptimize(
          env.tree->Delete(txn, rnd.Key(k, 8), BenchRid(k / 2)));
    }
    (void)env.db->Commit(txn);
    locks += env.db->metrics().locks_granted.load() - granted0;
    lock_calls += env.db->metrics().lock_requests.load() - calls0;
    ++ops;
  }
  state.counters["locks_per_op"] =
      benchmark::Counter(static_cast<double>(locks) / static_cast<double>(ops));
  state.counters["lock_calls_per_op"] = benchmark::Counter(
      static_cast<double>(lock_calls) / static_cast<double>(ops));
  benchutil::AttachForensics(state, env.db.get());
}

void BM_Insert_DataOnly(benchmark::State& s) {
  RunOp(s, LockingProtocolKind::kDataOnly, "insert");
}
void BM_Insert_IndexSpecific(benchmark::State& s) {
  RunOp(s, LockingProtocolKind::kIndexSpecific, "insert");
}
void BM_Insert_KVL(benchmark::State& s) {
  RunOp(s, LockingProtocolKind::kKeyValue, "insert");
}
void BM_Fetch_DataOnly(benchmark::State& s) {
  RunOp(s, LockingProtocolKind::kDataOnly, "fetch");
}
void BM_Fetch_IndexSpecific(benchmark::State& s) {
  RunOp(s, LockingProtocolKind::kIndexSpecific, "fetch");
}
void BM_Fetch_KVL(benchmark::State& s) {
  RunOp(s, LockingProtocolKind::kKeyValue, "fetch");
}
void BM_Delete_DataOnly(benchmark::State& s) {
  RunOp(s, LockingProtocolKind::kDataOnly, "delete");
}
void BM_Delete_IndexSpecific(benchmark::State& s) {
  RunOp(s, LockingProtocolKind::kIndexSpecific, "delete");
}
void BM_Delete_KVL(benchmark::State& s) {
  RunOp(s, LockingProtocolKind::kKeyValue, "delete");
}

BENCHMARK(BM_Insert_DataOnly)->Iterations(1000);
BENCHMARK(BM_Insert_IndexSpecific)->Iterations(1000);
BENCHMARK(BM_Insert_KVL)->Iterations(1000);
BENCHMARK(BM_Fetch_DataOnly)->Iterations(1000);
BENCHMARK(BM_Fetch_IndexSpecific)->Iterations(1000);
BENCHMARK(BM_Fetch_KVL)->Iterations(1000);
BENCHMARK(BM_Delete_DataOnly)->Iterations(1000);
BENCHMARK(BM_Delete_IndexSpecific)->Iterations(1000);
BENCHMARK(BM_Delete_KVL)->Iterations(1000);

// Full-row operations through the Table layer (record manager locks
// included): the end-to-end lock budget of a single-record transaction.
void RowInsert(benchmark::State& state, LockingProtocolKind proto) {
  auto db = std::move(
      Database::Open(FreshDir(std::string("rowins_") + ProtocolName(proto)),
                     BenchOptions())
          .value());
  db->CreateTable("t", 2).value();
  db->CreateIndexWithProtocol("t", "pk", 0, true, proto).value();
  Table* table = db->GetTable("t");
  uint64_t ops = 0, locks = 0;
  uint64_t i = 0;
  for (auto _ : state) {
    uint64_t granted0 = db->metrics().locks_granted.load();
    Transaction* txn = db->Begin();
    (void)table->Insert(txn, {"k" + std::to_string(i++), "v"});
    (void)db->Commit(txn);
    locks += db->metrics().locks_granted.load() - granted0;
    ++ops;
  }
  state.counters["locks_per_row_insert"] =
      benchmark::Counter(static_cast<double>(locks) / static_cast<double>(ops));
  benchutil::AttachForensics(state, db.get());
}
void BM_RowInsert_DataOnly(benchmark::State& s) {
  RowInsert(s, LockingProtocolKind::kDataOnly);
}
void BM_RowInsert_IndexSpecific(benchmark::State& s) {
  RowInsert(s, LockingProtocolKind::kIndexSpecific);
}
void BM_RowInsert_KVL(benchmark::State& s) {
  RowInsert(s, LockingProtocolKind::kKeyValue);
}
BENCHMARK(BM_RowInsert_DataOnly)->Iterations(1000);
BENCHMARK(BM_RowInsert_IndexSpecific)->Iterations(1000);
BENCHMARK(BM_RowInsert_KVL)->Iterations(1000);

}  // namespace
}  // namespace ariesim

BENCHMARK_MAIN();
