// Experiment C1 (see DESIGN.md §3): retrievals, inserts and deletes proceed
// concurrently with SMOs (paper §2.1 points 2-3).
//
// A split-heavy writer runs continuously while reader threads fetch random
// keys. Two configurations:
//   aries_im  — the paper's protocol: the tree latch is taken only for the
//               SMO propagation window; traversals never take it.
//   blocking  — ablation baseline (block_traversal_during_smo): every
//               operation serializes on the tree latch, modeling designs
//               where SMOs block concurrent traversals.
// Reported: reader throughput (fetches/sec) while splits are in progress.
// The paper's qualitative prediction: aries_im sustains reader throughput
// under SMO traffic; blocking collapses.
#include <atomic>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace ariesim {
namespace {

using benchutil::BenchOptions;
using benchutil::BenchRid;
using benchutil::FreshDir;

void RunSmoConcurrency(benchmark::State& state, bool blocking) {
  int readers = static_cast<int>(state.range(0));
  Options opts = BenchOptions();
  opts.page_size = 512;        // small pages: splits are frequent
  opts.buffer_pool_frames = 96;  // working set >> pool: SMOs and reads miss
  opts.sim_io_delay_us = 100;    // and every miss pays simulated device
                                 // latency, so holding the tree latch across
                                 // an operation's I/O has a visible cost
  opts.block_traversal_during_smo = blocking;
  auto db = std::move(
      Database::Open(FreshDir(blocking ? "smo_block" : "smo_aries"), opts)
          .value());
  db->CreateTable("t", 1).value();
  BTree* tree = db->CreateIndexWithProtocol("t", "ix", 0, false,
                                            LockingProtocolKind::kNone)
                    .value();
  // Preload far more keys than the pool holds.
  {
    Transaction* txn = db->Begin();
    Random rnd(1);
    for (uint64_t i = 0; i < 20000; ++i) {
      (void)tree->Insert(txn, "k" + rnd.Key(i, 7), BenchRid(i));
      if (i % 4000 == 3999) {
        (void)db->Commit(txn);
        txn = db->Begin();
      }
    }
    (void)db->Commit(txn);
  }

  for (auto _ : state) {
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> writes{0};
    // Split-heavy writer.
    std::thread writer([&] {
      Random rnd(2);
      uint64_t i = 100000;
      while (!stop.load()) {
        Transaction* txn = db->Begin();
        for (int j = 0; j < 20; ++j) {
          uint64_t id = i++;
          (void)tree->Insert(txn, "k" + rnd.Key(id, 7), BenchRid(id));
        }
        (void)db->Commit(txn);
        writes.fetch_add(20);
      }
    });
    std::vector<std::thread> rs;
    for (int r = 0; r < readers; ++r) {
      rs.emplace_back([&, r] {
        Random rnd(100 + static_cast<uint64_t>(r));
        while (!stop.load()) {
          Transaction* txn = db->Begin();
          FetchResult fr;
          (void)tree->Fetch(txn, "k" + rnd.Key(rnd.Uniform(20000), 7),
                            FetchCond::kGe, &fr);
          (void)db->Commit(txn);
          reads.fetch_add(1);
        }
      });
    }
    auto t0 = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    stop = true;
    writer.join();
    for (auto& t : rs) t.join();
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    state.counters["reader_ops_per_sec"] = benchmark::Counter(
        static_cast<double>(reads.load()) / secs);
    state.counters["writer_ops_per_sec"] = benchmark::Counter(
        static_cast<double>(writes.load()) / secs);
    state.counters["splits"] = benchmark::Counter(
        static_cast<double>(db->metrics().smo_splits.load()));
    state.counters["smo_waits"] = benchmark::Counter(
        static_cast<double>(db->metrics().smo_waits.load()));
    state.counters["tree_latch_hold_p99_us"] = benchmark::Counter(
        static_cast<double>(
            db->metrics().tree_latch_hold_latency.Snapshot().p99_ns) /
        1000.0);
    benchutil::AttachForensics(state, db.get());
  }
}

void BM_ReadersDuringSmos_AriesIm(benchmark::State& s) {
  RunSmoConcurrency(s, /*blocking=*/false);
}
void BM_ReadersDuringSmos_Blocking(benchmark::State& s) {
  RunSmoConcurrency(s, /*blocking=*/true);
}
BENCHMARK(BM_ReadersDuringSmos_AriesIm)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_ReadersDuringSmos_Blocking)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace ariesim

BENCHMARK_MAIN();
