// Baseline single-threaded operation costs: insert / point fetch / range
// scan / delete through the full stack (WAL + buffer pool + locks +
// ARIES/IM tree). Context for the other benches' numbers; also reports the
// paper's efficiency metrics — log bytes per operation and page latches
// per operation ("pathlength" proxies, §1).
#include "bench_common.h"

namespace ariesim {
namespace {

using benchutil::BenchOptions;
using benchutil::FreshDir;

struct Env {
  std::unique_ptr<Database> db;
  Table* table;
};

Env MakeEnv(int preload) {
  Env env;
  env.db = std::move(Database::Open(FreshDir("ops"), BenchOptions()).value());
  env.db->CreateTable("t", 2).value();
  env.db->CreateIndex("t", "pk", 0, true).value();
  env.table = env.db->GetTable("t");
  Transaction* txn = env.db->Begin();
  for (int i = 0; i < preload; ++i) {
    (void)env.table->Insert(
        txn, {"p" + Random(0).Key(static_cast<uint64_t>(i), 7), "v"});
    if (i % 1000 == 999) {
      (void)env.db->Commit(txn);
      txn = env.db->Begin();
    }
  }
  (void)env.db->Commit(txn);
  return env;
}

void BM_RowInsert(benchmark::State& state) {
  Env env = MakeEnv(10000);
  uint64_t i = 0;
  uint64_t bytes0 = env.db->metrics().log_bytes.load();
  uint64_t latches0 = env.db->metrics().page_latch_acquisitions.load();
  uint64_t ops = 0;
  for (auto _ : state) {
    Transaction* txn = env.db->Begin();
    benchmark::DoNotOptimize(
        env.table->Insert(txn, {"n" + std::to_string(i++), "v"}));
    (void)env.db->Commit(txn);
    ++ops;
  }
  state.counters["log_bytes_per_op"] = benchmark::Counter(
      static_cast<double>(env.db->metrics().log_bytes.load() - bytes0) /
      static_cast<double>(ops));
  state.counters["latches_per_op"] = benchmark::Counter(
      static_cast<double>(env.db->metrics().page_latch_acquisitions.load() -
                          latches0) /
      static_cast<double>(ops));
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(BM_RowInsert);

void BM_PointFetch(benchmark::State& state) {
  Env env = MakeEnv(10000);
  Random rnd(5);
  uint64_t latches0 = env.db->metrics().page_latch_acquisitions.load();
  uint64_t ops = 0;
  for (auto _ : state) {
    Transaction* txn = env.db->Begin();
    std::optional<Row> row;
    benchmark::DoNotOptimize(env.table->FetchByKey(
        txn, "pk", "p" + rnd.Key(rnd.Uniform(10000), 7), &row));
    (void)env.db->Commit(txn);
    ++ops;
  }
  state.counters["latches_per_op"] = benchmark::Counter(
      static_cast<double>(env.db->metrics().page_latch_acquisitions.load() -
                          latches0) /
      static_cast<double>(ops));
  state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(BM_PointFetch);

void BM_RangeScan100(benchmark::State& state) {
  Env env = MakeEnv(10000);
  Random rnd(6);
  uint64_t rows = 0;
  for (auto _ : state) {
    Transaction* txn = env.db->Begin();
    TableScan scan(env.table, env.db->GetIndex("pk"));
    uint64_t start = rnd.Uniform(9000);
    (void)scan.Open(txn, "p" + rnd.Key(start, 7), FetchCond::kGe);
    for (int i = 0; i < 100; ++i) {
      Row row;
      Rid rid;
      bool done = false;
      if (!scan.Next(txn, &row, &rid, &done).ok() || done) break;
      ++rows;
    }
    (void)env.db->Commit(txn);
  }
  state.SetItemsProcessed(static_cast<int64_t>(rows));
}
BENCHMARK(BM_RangeScan100);

void BM_RowDelete(benchmark::State& state) {
  // Fresh rows are inserted outside the timed region, deleted inside it.
  Env env = MakeEnv(1000);
  uint64_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Rid rid;
    {
      Transaction* setup = env.db->Begin();
      (void)env.table->Insert(setup, {"d" + std::to_string(i++), "v"}, &rid);
      (void)env.db->Commit(setup);
    }
    state.ResumeTiming();
    Transaction* txn = env.db->Begin();
    benchmark::DoNotOptimize(env.table->Delete(txn, rid));
    (void)env.db->Commit(txn);
  }
}
BENCHMARK(BM_RowDelete)->Iterations(2000);

void BM_CommitWithFsync(benchmark::State& state) {
  // Durability cost: same single-row insert but with fdatasync at commit —
  // the synchronous-log-I/O number the paper counts as an efficiency metric.
  Options opts = BenchOptions();
  opts.fsync_log = true;
  auto db = std::move(Database::Open(FreshDir("fsync"), opts).value());
  db->CreateTable("t", 2).value();
  db->CreateIndex("t", "pk", 0, true).value();
  Table* table = db->GetTable("t");
  uint64_t i = 0;
  for (auto _ : state) {
    Transaction* txn = db->Begin();
    benchmark::DoNotOptimize(table->Insert(txn, {"f" + std::to_string(i++), "v"}));
    (void)db->Commit(txn);
  }
}
BENCHMARK(BM_CommitWithFsync)->Iterations(500)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace ariesim

BENCHMARK_MAIN();
