// Crash-recovery walkthrough: builds up committed and uncommitted work,
// simulates a crash, reopens the database, and narrates what the ARIES
// three-pass restart did — including an SMO caught in flight.
//
//   ./build/examples/crash_recovery [db-dir]
#include <cstdio>
#include <filesystem>

#include "db/database.h"
#include "util/random.h"

using namespace ariesim;

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/ariesim_crash_demo";
  std::filesystem::remove_all(dir);

  Options options;
  options.page_size = 512;  // tiny pages so splits happen quickly
  {
    auto db = std::move(Database::Open(dir, options).value());
    Table* t = db->CreateTable("kv", 2).value();
    db->CreateIndex("kv", "kv_pk", 0, true).value();

    // Committed work — must survive.
    Transaction* committed = db->Begin();
    Random rnd(1);
    for (int i = 0; i < 150; ++i) {
      Status s = t->Insert(committed, {"committed-" + rnd.Key(i, 5), "x"});
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
    }
    if (!db->Commit(committed).ok()) return 1;
    std::printf("committed 150 rows (with %lu page splits so far)\n",
                static_cast<unsigned long>(db->metrics().smo_splits.load()));

    // Uncommitted work — must vanish.
    Transaction* loser = db->Begin();
    for (int i = 0; i < 60; ++i) {
      (void)t->Insert(loser, {"loser-" + rnd.Key(i, 5), "x"});
    }
    // Steal: force the log and some dirty pages to disk so the loser's
    // changes are partially on disk — the case undo exists for.
    (void)db->wal()->FlushAll();
    for (PageId pid = 0; pid < 60; pid += 2) (void)db->FlushPage(pid);
    std::printf("loser inserted 60 rows (uncommitted), pages partially stolen\n");

    std::printf(">>> CRASH <<<\n");
    db->SimulateCrash();
  }

  auto db = std::move(Database::Open(dir, options).value());
  const RestartStats& st = db->restart_stats();
  std::printf("restart recovery:\n");
  std::printf("  analysis scanned %lu records\n",
              static_cast<unsigned long>(st.analysis_records));
  std::printf("  redo applied %lu of %lu candidate records (page-oriented)\n",
              static_cast<unsigned long>(st.redo_applied),
              static_cast<unsigned long>(st.redo_records));
  std::printf("  undo rolled back %lu loser txns over %lu records\n",
              static_cast<unsigned long>(st.loser_txns),
              static_cast<unsigned long>(st.undo_records));
  std::printf("  undo paths: %lu page-oriented, %lu logical\n",
              static_cast<unsigned long>(
                  db->metrics().page_oriented_undos.load()),
              static_cast<unsigned long>(db->metrics().logical_undos.load()));

  Table* t = db->GetTable("kv");
  BTree* tree = db->GetIndex("kv_pk");
  size_t keys = 0;
  Status vs = tree->Validate(&keys);
  std::printf("index validation: %s, %zu keys\n", vs.ToString().c_str(), keys);

  Transaction* check = db->Begin();
  std::optional<Row> row;
  Random rnd(1);
  int committed_found = 0, loser_found = 0;
  for (int i = 0; i < 150; ++i) {
    (void)t->FetchByKey(check, "kv_pk", "committed-" + rnd.Key(i, 5), &row);
    if (row.has_value()) ++committed_found;
  }
  for (int i = 0; i < 60; ++i) {
    (void)t->FetchByKey(check, "kv_pk", "loser-" + rnd.Key(i, 5), &row);
    if (row.has_value()) ++loser_found;
  }
  (void)db->Commit(check);
  std::printf("committed rows present: %d/150, loser rows present: %d/60\n",
              committed_found, loser_found);
  bool ok = vs.ok() && committed_found == 150 && loser_found == 0 && keys == 150;
  std::printf("%s\n", ok ? "RECOVERY CORRECT" : "RECOVERY BROKEN");
  return ok ? 0 : 1;
}
