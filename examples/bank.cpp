// Bank: a multi-threaded OLTP workload with an invariant — total balance is
// conserved across concurrent transfers, deadlock-victim retries, and a
// simulated crash + restart recovery at the end.
//
//   ./build/examples/bank [db-dir] [threads] [transfers-per-thread]
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "db/database.h"
#include "util/random.h"

using namespace ariesim;

namespace {

constexpr int kAccounts = 50;
constexpr int kInitialBalance = 1000;

std::string AccountId(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "acct%04d", i);
  return buf;
}

/// One transfer; returns false on deadlock (caller retries).
bool Transfer(Database* db, Table* accounts, int from, int to, int amount) {
  Transaction* txn = db->Begin();
  auto fail = [&](const Status& s) {
    if (!s.IsDeadlock()) {
      std::fprintf(stderr, "transfer error: %s\n", s.ToString().c_str());
    }
    (void)db->Rollback(txn);
    return false;
  };
  std::optional<Row> row;
  Rid from_rid, to_rid;
  Status s = accounts->FetchByKey(txn, "acct_pk", AccountId(from), &row, &from_rid);
  if (!s.ok() || !row.has_value()) return fail(s);
  int from_balance = std::stoi((*row)[1]);
  if (from_balance < amount) {  // insufficient funds: clean abort
    (void)db->Rollback(txn);
    return true;
  }
  s = accounts->FetchByKey(txn, "acct_pk", AccountId(to), &row, &to_rid);
  if (!s.ok() || !row.has_value()) return fail(s);
  int to_balance = std::stoi((*row)[1]);

  // Update = delete + insert (the row layout is immutable per version).
  s = accounts->Delete(txn, from_rid);
  if (!s.ok()) return fail(s);
  s = accounts->Delete(txn, to_rid);
  if (!s.ok()) return fail(s);
  s = accounts->Insert(txn, {AccountId(from), std::to_string(from_balance - amount)});
  if (!s.ok()) return fail(s);
  s = accounts->Insert(txn, {AccountId(to), std::to_string(to_balance + amount)});
  if (!s.ok()) return fail(s);
  s = db->Commit(txn);
  if (!s.ok()) return fail(s);
  return true;
}

int64_t TotalBalance(Database* db, Table* accounts) {
  Transaction* txn = db->Begin();
  TableScan scan(accounts, db->GetIndex("acct_pk"));
  if (!scan.Open(txn, "", FetchCond::kGe).ok()) return -1;
  int64_t total = 0;
  while (true) {
    Row row;
    Rid rid;
    bool done = false;
    if (!scan.Next(txn, &row, &rid, &done).ok() || done) break;
    total += std::stoll(row[1]);
  }
  (void)db->Commit(txn);
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/ariesim_bank";
  int threads = argc > 2 ? std::atoi(argv[2]) : 4;
  int transfers = argc > 3 ? std::atoi(argv[3]) : 200;
  std::filesystem::remove_all(dir);

  auto db = std::move(Database::Open(dir).value());
  Table* accounts = db->CreateTable("accounts", 2).value();
  db->CreateIndex("accounts", "acct_pk", 0, /*unique=*/true).value();

  Transaction* seed = db->Begin();
  for (int i = 0; i < kAccounts; ++i) {
    Status s = accounts->Insert(seed, {AccountId(i),
                                       std::to_string(kInitialBalance)});
    if (!s.ok()) {
      std::fprintf(stderr, "seed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (!db->Commit(seed).ok()) return 1;
  std::printf("seeded %d accounts x %d = total %d\n", kAccounts,
              kInitialBalance, kAccounts * kInitialBalance);

  std::atomic<uint64_t> done_count{0}, retries{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Random rnd(42 + static_cast<uint64_t>(t));
      for (int i = 0; i < transfers; ++i) {
        int from = static_cast<int>(rnd.Uniform(kAccounts));
        int to = static_cast<int>(rnd.Uniform(kAccounts));
        if (from == to) continue;
        int amount = static_cast<int>(rnd.Range(1, 50));
        while (!Transfer(db.get(), accounts, from, to, amount)) {
          retries.fetch_add(1);  // deadlock victim: retry
        }
        done_count.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  std::printf("%lu transfers done, %lu deadlock retries\n",
              static_cast<unsigned long>(done_count.load()),
              static_cast<unsigned long>(retries.load()));

  int64_t total = TotalBalance(db.get(), accounts);
  std::printf("total balance after storm: %lld (%s)\n",
              static_cast<long long>(total),
              total == kAccounts * kInitialBalance ? "CONSERVED" : "BROKEN!");

  // Crash and recover: the invariant still holds.
  db->SimulateCrash();
  db = std::move(Database::Open(dir).value());
  accounts = db->GetTable("accounts");
  int64_t recovered_total = TotalBalance(db.get(), accounts);
  std::printf("total balance after crash recovery: %lld (%s)\n",
              static_cast<long long>(recovered_total),
              recovered_total == kAccounts * kInitialBalance ? "CONSERVED"
                                                             : "BROKEN!");
  std::printf("restart: %lu records analyzed, %lu redone, %lu undo steps\n",
              static_cast<unsigned long>(db->restart_stats().analysis_records),
              static_cast<unsigned long>(db->restart_stats().redo_applied),
              static_cast<unsigned long>(db->restart_stats().undo_records));
  return (total == kAccounts * kInitialBalance &&
          recovered_total == kAccounts * kInitialBalance)
             ? 0
             : 1;
}
