// Order entry: the classic phantom-problem workload the paper's next-key
// locking solves. An auditor repeatedly sums a customer's orders inside one
// transaction while entry clerks insert new orders for the same customer.
// Under repeatable read, the two sums inside one auditor transaction must
// agree — ARIES/IM's next-key locks on the scanned range block inserts into
// it until the auditor commits.
//
//   ./build/examples/orders [db-dir]
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "db/database.h"
#include "util/random.h"

using namespace ariesim;

namespace {

int64_t SumCustomerOrders(Database* db, Table* orders, Transaction* txn,
                          const std::string& customer) {
  TableScan scan(orders, db->GetIndex("orders_by_cust"));
  if (!scan.Open(txn, customer, FetchCond::kGe).ok()) return -1;
  if (!scan.SetStop(customer, /*inclusive=*/true).ok()) return -1;
  int64_t total = 0;
  while (true) {
    Row row;
    Rid rid;
    bool done = false;
    if (!scan.Next(txn, &row, &rid, &done).ok() || done) break;
    total += std::stoll(row[2]);
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/ariesim_orders";
  std::filesystem::remove_all(dir);

  auto db = std::move(Database::Open(dir).value());
  Table* orders = db->CreateTable("orders", 3).value();  // id, customer, amount
  db->CreateIndex("orders", "orders_pk", 0, true).value();
  db->CreateIndex("orders", "orders_by_cust", 1, false).value();

  // Seed some orders for two customers.
  Transaction* seed = db->Begin();
  Random rnd(7);
  int next_order = 0;
  for (int i = 0; i < 20; ++i) {
    std::string cust = (i % 2 == 0) ? "acme" : "globex";
    Status s = orders->Insert(
        seed, {"ord" + rnd.Key(static_cast<uint64_t>(next_order++), 5), cust,
               std::to_string(100 + i)});
    if (!s.ok()) {
      std::fprintf(stderr, "seed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (!db->Commit(seed).ok()) return 1;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> inserted{0};
  std::atomic<uint64_t> audits{0};
  std::atomic<uint64_t> phantom_violations{0};

  // Entry clerks insert new acme orders continuously.
  std::vector<std::thread> clerks;
  std::atomic<int> order_counter{1000};
  for (int c = 0; c < 2; ++c) {
    clerks.emplace_back([&, c] {
      Random crnd(100 + static_cast<uint64_t>(c));
      while (!stop.load()) {
        Transaction* txn = db->Begin();
        int id = order_counter.fetch_add(1);
        Status s = orders->Insert(
            txn, {"ord" + crnd.Key(static_cast<uint64_t>(id), 5), "acme",
                  std::to_string(crnd.Range(10, 500))});
        if (s.ok() && db->Commit(txn).ok()) {
          inserted.fetch_add(1);
        } else {
          (void)db->Rollback(txn);
        }
      }
    });
  }

  // The auditor: two sums inside one transaction must agree (RR).
  std::thread auditor([&] {
    while (!stop.load()) {
      Transaction* txn = db->Begin();
      int64_t first = SumCustomerOrders(db.get(), orders, txn, "acme");
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      int64_t second = SumCustomerOrders(db.get(), orders, txn, "acme");
      if (first != second) phantom_violations.fetch_add(1);
      (void)db->Commit(txn);
      audits.fetch_add(1);
    }
  });

  std::this_thread::sleep_for(std::chrono::seconds(2));
  stop = true;
  for (auto& c : clerks) c.join();
  auditor.join();

  std::printf("clerks inserted %lu orders; auditor ran %lu audits\n",
              static_cast<unsigned long>(inserted.load()),
              static_cast<unsigned long>(audits.load()));
  std::printf("repeatable-read violations: %lu (%s)\n",
              static_cast<unsigned long>(phantom_violations.load()),
              phantom_violations.load() == 0 ? "RR holds — no phantoms"
                                             : "PHANTOMS DETECTED!");
  std::printf("metrics: %s\n", db->metrics().ToString().c_str());
  return phantom_violations.load() == 0 ? 0 : 1;
}
