// Quickstart: open a database, create a table + ARIES/IM index, run a few
// transactions (insert, point fetch, range scan, delete, rollback), and
// show the instrumentation counters.
//
//   ./build/examples/quickstart [db-dir]
#include <cstdio>
#include <filesystem>

#include "db/database.h"

using namespace ariesim;

#define CHECK_OK(expr)                                        \
  do {                                                        \
    ::ariesim::Status _st = (expr);                           \
    if (!_st.ok()) {                                          \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__,     \
                   __LINE__, _st.ToString().c_str());         \
      return 1;                                               \
    }                                                         \
  } while (0)

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/ariesim_quickstart";
  std::filesystem::remove_all(dir);

  // 1. Open (creates the data file, WAL, and catalog).
  Options options;  // 4 KiB pages, data-only locking, record granularity
  auto db_result = Database::Open(dir, options);
  if (!db_result.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db_result.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_result).value();
  std::printf("opened %s\n", dir.c_str());

  // 2. DDL: a table with a unique primary index and a nonunique secondary.
  Table* users = db->CreateTable("users", /*num_columns=*/3).value();
  CHECK_OK(db->CreateIndex("users", "users_pk", 0, /*unique=*/true).status());
  CHECK_OK(db->CreateIndex("users", "users_by_city", 2, /*unique=*/false)
               .status());

  // 3. A transaction inserting rows; every index is maintained with the
  // ARIES/IM protocol (instant next-key locks, data-only locking).
  Transaction* txn = db->Begin();
  CHECK_OK(users->Insert(txn, {"u1", "Ada", "london"}));
  CHECK_OK(users->Insert(txn, {"u2", "Grace", "washington"}));
  CHECK_OK(users->Insert(txn, {"u3", "Edsger", "austin"}));
  CHECK_OK(users->Insert(txn, {"u4", "Barbara", "london"}));
  CHECK_OK(db->Commit(txn));
  std::printf("inserted 4 users\n");

  // 4. Point fetch through the unique index.
  Transaction* q = db->Begin();
  std::optional<Row> row;
  CHECK_OK(users->FetchByKey(q, "users_pk", "u2", &row));
  std::printf("u2 -> %s from %s\n", (*row)[1].c_str(), (*row)[2].c_str());

  // A miss is repeatable-read protected: the next key is locked until this
  // transaction commits, so no phantom "u2a" can appear.
  CHECK_OK(users->FetchByKey(q, "users_pk", "u2a", &row));
  std::printf("u2a -> %s\n", row.has_value() ? "found" : "not found (locked)");
  CHECK_OK(db->Commit(q));

  // 5. Range scan over the nonunique city index.
  Transaction* scan_txn = db->Begin();
  TableScan scan(users, db->GetIndex("users_by_city"));
  CHECK_OK(scan.Open(scan_txn, "london", FetchCond::kGe));
  CHECK_OK(scan.SetStop("london", /*inclusive=*/true));
  std::printf("users in london:\n");
  while (true) {
    Row r;
    Rid rid;
    bool done = false;
    CHECK_OK(scan.Next(scan_txn, &r, &rid, &done));
    if (done) break;
    std::printf("  %s (%s)\n", r[1].c_str(), r[0].c_str());
  }
  CHECK_OK(db->Commit(scan_txn));

  // 6. Rollback: the delete below never happened.
  Transaction* rb = db->Begin();
  Rid rid;
  CHECK_OK(users->FetchByKey(rb, "users_pk", "u1", &row, &rid));
  CHECK_OK(users->Delete(rb, rid));
  CHECK_OK(db->Rollback(rb));
  Transaction* verify = db->Begin();
  CHECK_OK(users->FetchByKey(verify, "users_pk", "u1", &row));
  std::printf("after rollback, u1 %s\n", row.has_value() ? "exists" : "GONE?!");
  CHECK_OK(db->Commit(verify));

  // 7. Instrumentation.
  std::printf("metrics: %s\n", db->metrics().ToString().c_str());
  return 0;
}
