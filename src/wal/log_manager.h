// Append-only log manager with an in-memory tail buffer.
//
// WAL contracts enforced here and by callers:
//  - BufferPool forces FlushTo(page_LSN) before a dirty page is stolen.
//  - TransactionManager forces FlushTo(commit_LSN) at commit.
//  - A simulated crash discards the tail buffer; the file then ends exactly
//    at the durable prefix, and restart recovery scans from the master
//    record's checkpoint.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <string>

#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "util/fault_injector.h"
#include "wal/log_record.h"

namespace ariesim {

class LogManager {
 public:
  LogManager(std::string path, Metrics* metrics, bool fsync_on_flush = true,
             size_t buffer_capacity = 1 << 20);
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Open (creating if absent) and position the append cursor after the
  /// last valid durable record.
  Status Open();
  void Close();

  /// Append `rec` (assigning rec->lsn) and return the assigned LSN.
  Result<Lsn> Append(LogRecord* rec);

  /// Make all records with lsn <= `lsn` durable.
  Status FlushTo(Lsn lsn);
  Status FlushAll();

  /// Read the record whose LSN is `lsn` (from the tail buffer or the file).
  Status ReadRecord(Lsn lsn, LogRecord* out);

  /// Crash simulation: throw away the volatile tail.
  void DiscardUnflushed();

  Lsn next_lsn() const { return next_lsn_.load(std::memory_order_acquire); }
  Lsn flushed_lsn() const {
    return flushed_lsn_.load(std::memory_order_acquire);
  }
  /// LSN of the most recently appended record (kNullLsn if none).
  Lsn last_lsn() const { return last_lsn_.load(std::memory_order_acquire); }

  /// Install a fault-injection hook consulted before each tail flush. Pass
  /// nullptr to detach. The injector must outlive this LogManager.
  void SetFaultInjector(FaultInjector* fault) { fault_ = fault; }

  /// Observer invoked inside the append critical section with
  /// (page_id, lsn) for every redoable page record. The buffer pool uses it
  /// to register the page as dirty *atomically with the append*: callers
  /// apply the change to the latched page only after Append returns, and a
  /// fuzzy checkpoint that slips its begin record plus dirty-page-table
  /// collection into that gap would otherwise miss the page entirely —
  /// the record precedes the begin-checkpoint, so restart analysis can
  /// never rediscover it and redo skips it. The observer must not call
  /// back into this LogManager.
  void SetAppendObserver(std::function<void(PageId, Lsn)> obs) {
    append_observer_ = std::move(obs);
  }

  // -- master record (last checkpoint address) ---------------------------
  Status WriteMaster(Lsn checkpoint_lsn);
  Result<Lsn> ReadMaster();

  /// Sequential scanner over the durable log, for recovery passes.
  class Reader {
   public:
    Reader(LogManager* lm, Lsn start) : lm_(lm), pos_(start) {}
    /// Returns NotFound at clean end-of-log (including a torn tail).
    Status Next(LogRecord* out);
    Lsn position() const { return pos_; }

   private:
    LogManager* lm_;
    Lsn pos_;
  };

 private:
  Status ReadFromFile(Lsn lsn, LogRecord* out);
  /// Flush the whole tail; caller holds mu_.
  Status FlushLocked();

  std::string path_;
  Metrics* metrics_;
  bool fsync_on_flush_;
  size_t buffer_capacity_;
  FaultInjector* fault_ = nullptr;
  std::function<void(PageId, Lsn)> append_observer_;
  int fd_ = -1;

  std::mutex mu_;
  std::string buffer_;     // unflushed tail: bytes [buffer_base_, next_lsn_)
  Lsn buffer_base_ = 0;    // LSN of buffer_[0]
  // Written under mu_; atomic so the lock-free accessors are race-free.
  std::atomic<Lsn> next_lsn_{0};
  std::atomic<Lsn> flushed_lsn_{0};  // records below this are durable
  std::atomic<Lsn> last_lsn_{kNullLsn};
};

}  // namespace ariesim
