// Append-only log manager with an in-memory tail buffer and a group-commit
// pipeline for the commit-path log force.
//
// WAL contracts enforced here and by callers:
//  - BufferPool forces FlushTo(page_LSN) before a dirty page is stolen.
//  - TransactionManager forces CommitFlush(commit record end) at commit.
//  - A simulated crash discards the tail buffer; the file then ends exactly
//    at the durable prefix, and restart recovery scans from the master
//    record's checkpoint.
//
// Group commit (docs/ARCHITECTURE.md has the full design): committing
// transactions do not each run their own write+fsync. They register the LSN
// they need durable and block on a condition variable; one flush — executed
// either by a dedicated flusher thread (StartFlusher) or by an elected
// leader among the waiters — covers the whole tail and wakes every waiter
// whose boundary is now durable. A flush failure is delivered to exactly
// the waiters the failed attempt covered, so an acknowledged Commit() is
// durable under every fault the injector can produce.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/health.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "util/fault_injector.h"
#include "wal/log_record.h"

namespace ariesim {

class LogManager {
 public:
  LogManager(std::string path, Metrics* metrics, bool fsync_on_flush = true,
             size_t buffer_capacity = 1 << 20);
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Open (creating if absent) and position the append cursor after the
  /// last valid durable record.
  Status Open();
  void Close();

  /// Append `rec` (assigning rec->lsn) and return the assigned LSN.
  Result<Lsn> Append(LogRecord* rec);

  /// Make the record starting at `lsn` (and everything before it) durable.
  ///
  /// Deliberately flushes the *entire* tail, not just the prefix up to
  /// `lsn`. This is intentional, not sloppiness:
  ///  - the tail is one contiguous buffer, so the extra bytes ride the same
  ///    pwrite and the same fdatasync — a boundary-exact flush would cost
  ///    the identical syscalls plus buffer-splitting bookkeeping;
  ///  - under WAL, durability claims only ever strengthen: flushing more
  ///    than asked can never violate a contract;
  ///  - under group commit the over-flush is the whole point — it is what
  ///    folds every concurrently appended commit record into this batch;
  ///  - the WAL rule caller (BufferPool::WriteFrame) passes the *start*
  ///    LSN of the page's last record, and the whole-tail policy is what
  ///    guarantees that record's tail end is durable too.
  /// flushed_lsn() therefore typically advances past `lsn`.
  Status FlushTo(Lsn lsn);
  Status FlushAll();

  // -- group commit -------------------------------------------------------

  /// Commit-path log force: make the log prefix [0, `lsn`) durable, where
  /// `lsn` is the byte just past the commit record. With group commit
  /// enabled, coalesces with every concurrent committer into shared
  /// batches; otherwise equivalent to FlushTo. Blocks until the prefix is
  /// durable or the flush that covered it failed (the error is returned to
  /// every covered waiter — their commits are NOT acknowledged).
  Status CommitFlush(Lsn lsn);

  /// Lazy-commit durability request: ask for [0, `lsn`) to become durable
  /// soon, without waiting. Nudges the flusher thread when one runs;
  /// otherwise the request rides the next flush (commit force, capacity
  /// spill, or Close). Used by TransactionManager::CommitAsync.
  void RequestFlush(Lsn lsn);

  /// Configure group commit. Call before concurrent use (Database::Open
  /// does). `max_delay_us` stretches each batch window to accumulate more
  /// committers; 0 flushes as soon as the executor picks the batch up.
  void EnableGroupCommit(bool enabled, uint32_t max_delay_us);

  /// Start the dedicated flusher thread (GroupCommitMode::kFlusher). With
  /// no flusher running, committers elect a leader among themselves.
  void StartFlusher();
  /// Stop and join the flusher thread. Blocked committers fail over to the
  /// leader protocol, so none is stranded. Safe to call repeatedly; Close
  /// and Database::SimulateCrash call it.
  void StopFlusher();
  bool flusher_running() const {
    return flusher_running_.load(std::memory_order_acquire);
  }

  /// Read the record whose LSN is `lsn` (from the tail buffer or the file).
  Status ReadRecord(Lsn lsn, LogRecord* out);

  /// Crash simulation: throw away the volatile tail.
  void DiscardUnflushed();

  Lsn next_lsn() const { return next_lsn_.load(std::memory_order_acquire); }
  Lsn flushed_lsn() const {
    return flushed_lsn_.load(std::memory_order_acquire);
  }
  /// LSN of the most recently appended record (kNullLsn if none).
  Lsn last_lsn() const { return last_lsn_.load(std::memory_order_acquire); }

  /// Install a fault-injection hook consulted before each tail flush. Pass
  /// nullptr to detach. The injector must outlive this LogManager.
  void SetFaultInjector(FaultInjector* fault) { fault_ = fault; }

  /// Wire the engine's health monitor: after `failure_threshold` consecutive
  /// tail-flush failures the engine trips kHealthy -> kReadOnly, and after
  /// twice that count kFailed. A successful flush resets the streak. The
  /// trip reaches blocked group-commit waiters through the normal per-batch
  /// error delivery. 0 disables the trip.
  void SetHealthMonitor(HealthMonitor* health, uint32_t failure_threshold) {
    health_ = health;
    flush_failure_threshold_ = failure_threshold;
  }

  /// Observer invoked on the FIRST tail-flush failure of a consecutive
  /// streak (later failures of the same streak stay silent; a success resets
  /// the streak). Runs under the log mutex on the flushing thread, so it
  /// must not call back into any LogManager method that takes mu_ — the
  /// lock-free accessors (next_lsn/flushed_lsn/last_lsn/LastBatchWindow)
  /// are safe. The flight recorder uses this to force-capture on the
  /// flush-failure path before the health monitor would trip.
  void SetFlushFailureObserver(std::function<void(const Status&)> obs) {
    std::lock_guard<std::mutex> lk(mu_);
    flush_failure_observer_ = std::move(obs);
  }

  /// Wall-clock phases (MonotonicNowNs) of the most recent successful tail
  /// flush: batch start, pwrite done, fdatasync done. All zero before the
  /// first flush. Lock-free.
  struct BatchWindow {
    uint64_t start_ns = 0;
    uint64_t write_done_ns = 0;
    uint64_t fsync_done_ns = 0;
  };
  BatchWindow LastBatchWindow() const {
    BatchWindow w;
    w.start_ns = last_batch_start_ns_.load(std::memory_order_relaxed);
    w.write_done_ns = last_batch_write_ns_.load(std::memory_order_relaxed);
    w.fsync_done_ns = last_batch_fsync_ns_.load(std::memory_order_relaxed);
    return w;
  }

  /// Observer invoked inside the append critical section with
  /// (page_id, lsn) for every redoable page record. The buffer pool uses it
  /// to register the page as dirty *atomically with the append*: callers
  /// apply the change to the latched page only after Append returns, and a
  /// fuzzy checkpoint that slips its begin record plus dirty-page-table
  /// collection into that gap would otherwise miss the page entirely —
  /// the record precedes the begin-checkpoint, so restart analysis can
  /// never rediscover it and redo skips it. The observer must not call
  /// back into this LogManager.
  void SetAppendObserver(std::function<void(PageId, Lsn)> obs) {
    append_observer_ = std::move(obs);
  }

  // -- master record (last checkpoint address) ---------------------------
  Status WriteMaster(Lsn checkpoint_lsn);
  Result<Lsn> ReadMaster();

  /// Sequential scanner over the durable log, for recovery passes.
  class Reader {
   public:
    Reader(LogManager* lm, Lsn start) : lm_(lm), pos_(start) {}
    /// Returns NotFound at clean end-of-log (including a torn tail).
    Status Next(LogRecord* out);
    Lsn position() const { return pos_; }

   private:
    LogManager* lm_;
    Lsn pos_;
  };

 private:
  Status ReadFromFile(Lsn lsn, LogRecord* out);
  /// Flush the whole tail; caller holds mu_. Tracks the consecutive-failure
  /// streak and trips the health monitor past the threshold.
  Status FlushLocked();
  Status FlushLockedImpl();
  /// One group flush: take mu_, flush the whole tail, record the batch
  /// metric. `*end_out` receives the boundary the attempt covered (the
  /// next_lsn at flush time) — waiters at or below it have their answer.
  Status GroupFlushAttempt(Lsn* end_out);
  /// The blocking group-commit protocol behind CommitFlush.
  Status GroupCommitFlush(Lsn lsn);
  void FlusherLoop();

  std::string path_;
  Metrics* metrics_;
  bool fsync_on_flush_;
  size_t buffer_capacity_;
  FaultInjector* fault_ = nullptr;
  HealthMonitor* health_ = nullptr;
  uint32_t flush_failure_threshold_ = 0;
  uint32_t consecutive_flush_failures_ = 0;  // under mu_
  std::function<void(const Status&)> flush_failure_observer_;  // under mu_
  std::function<void(PageId, Lsn)> append_observer_;
  int fd_ = -1;

  std::mutex mu_;
  std::string buffer_;     // unflushed tail: bytes [buffer_base_, next_lsn_)
  Lsn buffer_base_ = 0;    // LSN of buffer_[0]
  // Written under mu_; atomic so the lock-free accessors are race-free.
  std::atomic<Lsn> next_lsn_{0};
  std::atomic<Lsn> flushed_lsn_{0};  // records below this are durable
  std::atomic<Lsn> last_lsn_{kNullLsn};

  // Wall-clock phases of the most recent successful tail flush (batch start,
  // pwrite done, fdatasync done), published relaxed *before* the flushed_lsn_
  // release store so a commit waiter that observes its LSN durable also sees
  // the timing of the batch that made it so. Feeds the commit-breakdown
  // queue_wait / batch_write / fsync / wakeup segments (PR 9;
  // common/commit_breakdown.h).
  std::atomic<uint64_t> last_batch_start_ns_{0};
  std::atomic<uint64_t> last_batch_write_ns_{0};
  std::atomic<uint64_t> last_batch_fsync_ns_{0};

  // -- group-commit coordination ------------------------------------------
  // gc_mu_ guards only the coordination state below; the flush itself runs
  // under mu_. Nobody ever waits for mu_ while holding gc_mu_ (both the
  // leader and the flusher drop gc_mu_ before taking mu_), so the two
  // mutexes cannot deadlock.
  bool group_commit_ = false;   // set before concurrent use
  uint32_t gc_delay_us_ = 0;    // batch-accumulation window
  std::mutex gc_mu_;
  std::condition_variable gc_cv_;       // committers await durability
  std::condition_variable flusher_cv_;  // flusher awaits work
  Lsn gc_requested_ = 0;   // highest durability boundary asked for
  Lsn gc_attempted_ = 0;   // boundary covered by the last flush attempt
  uint64_t gc_round_ = 0;  // completed flush attempts (ok or not)
  Status gc_status_;       // outcome of the last attempt
  bool gc_leader_active_ = false;  // leader mode: a leader is flushing
  bool flusher_run_ = false;       // flusher thread keep-running flag
  std::atomic<bool> flusher_running_{false};
  std::thread flusher_;
};

}  // namespace ariesim
