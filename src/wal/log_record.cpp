#include "wal/log_record.h"

#include "util/coding.h"
#include "util/crc32c.h"

namespace ariesim {

void LogRecord::AppendTo(std::string* out) const {
  size_t start = out->size();
  PutFixed32(out, static_cast<uint32_t>(SerializedSize()));
  PutFixed32(out, 0);  // crc placeholder
  out->push_back(static_cast<char>(type));
  out->push_back(static_cast<char>(rm));
  out->push_back(static_cast<char>(op));
  out->push_back(0);  // flags / pad
  PutFixed64(out, txn_id);
  PutFixed64(out, prev_lsn);
  PutFixed64(out, undo_next_lsn);
  PutFixed32(out, page_id);
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
  // CRC covers everything after the crc field itself.
  uint32_t crc = crc32c::Value(out->data() + start + 8, out->size() - start - 8);
  EncodeFixed32(out->data() + start + 4, crc32c::Mask(crc));
}

Status LogRecord::Parse(std::string_view data, LogRecord* out) {
  if (data.size() < kLogHeaderSize) {
    return Status::Corruption("truncated log header");
  }
  BufferReader r(data.data(), data.size());
  uint32_t total_len = r.GetFixed32();
  uint32_t stored_crc = r.GetFixed32();
  if (total_len < kLogHeaderSize || total_len > data.size()) {
    return Status::Corruption("bad log record length");
  }
  uint32_t crc = crc32c::Value(data.data() + 8, total_len - 8);
  if (crc32c::Mask(crc) != stored_crc) {
    return Status::Corruption("log record crc mismatch");
  }
  out->type = static_cast<LogType>(data[8]);
  out->rm = static_cast<RmId>(data[9]);
  out->op = static_cast<uint8_t>(data[10]);
  BufferReader body(data.data() + 12, total_len - 12);
  out->txn_id = body.GetFixed64();
  out->prev_lsn = body.GetFixed64();
  out->undo_next_lsn = body.GetFixed64();
  out->page_id = body.GetFixed32();
  uint32_t payload_len = body.GetFixed32();
  if (payload_len != total_len - kLogHeaderSize) {
    return Status::Corruption("log payload length mismatch");
  }
  out->payload.assign(data.data() + kLogHeaderSize, payload_len);
  return Status::OK();
}

std::string LogRecord::ToString() const {
  static const char* kTypeNames[] = {"invalid", "update", "clr",  "commit",
                                     "abort",   "end",    "bchk", "echk",
                                     "pgidx"};
  std::string s = "[lsn=" + std::to_string(lsn) +
                  " type=" + kTypeNames[static_cast<int>(type)] +
                  " txn=" + std::to_string(txn_id) +
                  " prev=" + std::to_string(prev_lsn);
  if (IsClr()) s += " undo_next=" + std::to_string(undo_next_lsn);
  if (page_id != kInvalidPageId) s += " page=" + std::to_string(page_id);
  s += " rm=" + std::to_string(static_cast<int>(rm)) +
       " op=" + std::to_string(op) + " len=" + std::to_string(payload.size()) +
       "]";
  return s;
}

}  // namespace ariesim
