// Write-ahead log record model (ARIES, [MHLPS92]).
//
// Every record carries: its type, the owning transaction, the PrevLSN chain
// pointer, the affected page (records are physiological: one page per
// record), an RM id + opcode that selects the redo/undo interpreter, and an
// opaque payload. CLRs additionally carry UndoNxtLSN. The LSN of a record is
// its byte offset in the log file, so LSNs are monotonic and double as
// addresses.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/types.h"

namespace ariesim {

enum class LogType : uint8_t {
  kInvalid = 0,
  kUpdate = 1,           ///< undo-redo record written by a resource manager
  kCompensation = 2,     ///< redo-only CLR; dummy CLR when rm == kNone
  kCommit = 3,
  kAbort = 4,            ///< rollback initiated (informational)
  kEnd = 5,              ///< transaction fully finished
  kBeginCheckpoint = 6,
  kEndCheckpoint = 7,
  /// Persisted page-log-index chunk (PR 8, instant restart): part of the
  /// fuzzy-checkpoint payload, written between the begin- and end-checkpoint
  /// records. Payload: u32 n_pages, then per page u32 page_id, u32 n_lsns,
  /// n_lsns x u64 ascending LSNs of that page's redoable records. A large
  /// index is split across several kPageIndex records; analysis merges them.
  kPageIndex = 8,
};

/// Resource-manager ids; recovery dispatches redo/undo through these.
enum class RmId : uint8_t {
  kNone = 0,
  kMeta = 1,   ///< space map (free list / high-water) on the meta page
  kHeap = 2,   ///< data (record) pages
  kBtree = 3,  ///< index pages
};

/// Fixed serialized header: u32 total_len, u32 crc, u8 type, u8 rm, u8 op,
/// u8 flags, u64 txn, u64 prev_lsn, u64 undo_next_lsn, u32 page_id,
/// u32 payload_len.
inline constexpr size_t kLogHeaderSize = 44;
/// The log file starts with a magic prologue so that offset 0 is never a
/// valid LSN (kNullLsn = 0).
inline constexpr size_t kLogFilePrologue = 8;
inline constexpr uint64_t kLogMagic = 0x4152494553494D00ull;  // "ARIESIM\0"

struct LogRecord {
  LogType type = LogType::kInvalid;
  RmId rm = RmId::kNone;
  uint8_t op = 0;
  TxnId txn_id = kInvalidTxnId;
  Lsn prev_lsn = kNullLsn;
  Lsn undo_next_lsn = kNullLsn;  ///< CLRs only
  PageId page_id = kInvalidPageId;
  std::string payload;

  /// Assigned by LogManager::Append.
  Lsn lsn = kNullLsn;

  bool IsClr() const { return type == LogType::kCompensation; }
  /// A dummy CLR closes a nested top action (paper §1.2): no page, no RM.
  bool IsDummyClr() const { return IsClr() && rm == RmId::kNone; }
  /// Records that change a page and must be replayed by redo.
  bool IsRedoable() const {
    return (type == LogType::kUpdate || type == LogType::kCompensation) &&
           rm != RmId::kNone;
  }
  /// Records that must be compensated when the transaction rolls back.
  bool IsUndoable() const { return type == LogType::kUpdate && rm != RmId::kNone; }

  size_t SerializedSize() const { return kLogHeaderSize + payload.size(); }
  void AppendTo(std::string* out) const;

  /// Parse one record from `data` (which must start at a record boundary).
  /// Returns Corruption on a bad crc / truncated record — recovery treats
  /// that as the end of the log.
  static Status Parse(std::string_view data, LogRecord* out);

  std::string ToString() const;
};

}  // namespace ariesim
