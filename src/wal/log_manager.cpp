#include "wal/log_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "util/coding.h"

namespace ariesim {

LogManager::LogManager(std::string path, Metrics* metrics, bool fsync_on_flush,
                       size_t buffer_capacity)
    : path_(std::move(path)),
      metrics_(metrics),
      fsync_on_flush_(fsync_on_flush),
      buffer_capacity_(buffer_capacity) {}

LogManager::~LogManager() { Close(); }

Status LogManager::Open() {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    return Status::IOError("open log " + path_ + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IOError("fstat log: " + std::string(std::strerror(errno)));
  }
  if (st.st_size == 0) {
    char magic[kLogFilePrologue];
    EncodeFixed64(magic, kLogMagic);
    if (::pwrite(fd_, magic, sizeof(magic), 0) != static_cast<ssize_t>(sizeof(magic))) {
      return Status::IOError("write log prologue");
    }
    next_lsn_ = kLogFilePrologue;
  } else {
    // Scan forward from the prologue to find the end of the valid log.
    char magic[kLogFilePrologue];
    if (::pread(fd_, magic, sizeof(magic), 0) != static_cast<ssize_t>(sizeof(magic)) ||
        DecodeFixed64(magic) != kLogMagic) {
      return Status::Corruption("bad log magic");
    }
    Lsn pos = kLogFilePrologue;
    LogRecord rec;
    while (true) {
      Status s = ReadFromFile(pos, &rec);
      if (!s.ok()) break;
      last_lsn_ = pos;
      pos += rec.SerializedSize();
    }
    next_lsn_ = pos;
    // Truncate any torn tail so future appends extend a clean prefix.
    if (::ftruncate(fd_, static_cast<off_t>(pos)) != 0) {
      return Status::IOError("ftruncate log tail");
    }
  }
  flushed_lsn_ = next_lsn_.load();
  buffer_base_ = next_lsn_.load();
  buffer_.clear();
  return Status::OK();
}

void LogManager::Close() {
  if (fd_ >= 0) {
    FlushAll();
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Lsn> LogManager::Append(LogRecord* rec) {
  std::lock_guard<std::mutex> lk(mu_);
  rec->lsn = next_lsn_;
  rec->AppendTo(&buffer_);
  next_lsn_ += rec->SerializedSize();
  last_lsn_ = rec->lsn;
  if (append_observer_ && rec->IsRedoable() &&
      rec->page_id != kInvalidPageId) {
    append_observer_(rec->page_id, rec->lsn);
  }
  if (metrics_ != nullptr) {
    metrics_->log_records.fetch_add(1, std::memory_order_relaxed);
    metrics_->log_bytes.fetch_add(rec->SerializedSize(), std::memory_order_relaxed);
  }
  // Bound the volatile tail: spill to the file when the buffer fills.
  // (Writing early is always safe under WAL — durability claims only ever
  // strengthen.)
  if (buffer_.size() >= buffer_capacity_) {
    ARIES_RETURN_NOT_OK(FlushLocked());
  }
  return rec->lsn;
}

Status LogManager::FlushLocked() {
  if (buffer_.empty()) return Status::OK();
  if (fault_ != nullptr) {
    FaultAction a = fault_->OnIo(FaultSite::kLogFlush, buffer_.size());
    if (a.kind == FaultAction::Kind::kFail) {
      return Status::IOError("fault injection: log flush");
    }
    if (a.kind == FaultAction::Kind::kTear) {
      // Partial tail flush: a prefix of the tail reaches the file, but the
      // flush as a whole fails — flushed_lsn_ must not advance, so no caller
      // may treat any of these records as durable.
      (void)::pwrite(fd_, buffer_.data(), a.keep_bytes,
                     static_cast<off_t>(buffer_base_));
      return Status::IOError(
          "fault injection: partial log flush (" +
          std::to_string(a.keep_bytes) + " of " +
          std::to_string(buffer_.size()) + " bytes)");
    }
  }
  // Flush the whole tail (simple, and amortizes well under group pressure).
  ssize_t n = ::pwrite(fd_, buffer_.data(), buffer_.size(),
                       static_cast<off_t>(buffer_base_));
  if (n < 0) {
    return Status::IOError("pwrite log: " + std::string(std::strerror(errno)));
  }
  if (static_cast<size_t>(n) != buffer_.size()) {
    return Status::IOError("short pwrite of log tail: wrote " +
                           std::to_string(n) + " of " +
                           std::to_string(buffer_.size()) + " bytes");
  }
  if (fsync_on_flush_ && ::fdatasync(fd_) != 0) {
    return Status::IOError("fdatasync log");
  }
  buffer_base_ = next_lsn_.load();
  flushed_lsn_ = next_lsn_.load();
  buffer_.clear();
  if (metrics_ != nullptr) {
    metrics_->log_flushes.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status LogManager::FlushTo(Lsn lsn) {
  std::lock_guard<std::mutex> lk(mu_);
  if (lsn < flushed_lsn_ || buffer_.empty()) return Status::OK();
  return FlushLocked();
}

Status LogManager::FlushAll() { return FlushTo(next_lsn_); }

Status LogManager::ReadFromFile(Lsn lsn, LogRecord* out) {
  char hdr[kLogHeaderSize];
  ssize_t n = ::pread(fd_, hdr, sizeof(hdr), static_cast<off_t>(lsn));
  if (n != static_cast<ssize_t>(sizeof(hdr))) {
    return Status::NotFound("end of log");
  }
  uint32_t total_len = DecodeFixed32(hdr);
  if (total_len < kLogHeaderSize || total_len > (1u << 26)) {
    return Status::Corruption("implausible log record length");
  }
  std::string buf(total_len, '\0');
  n = ::pread(fd_, buf.data(), total_len, static_cast<off_t>(lsn));
  if (n != static_cast<ssize_t>(total_len)) {
    return Status::NotFound("torn log tail");
  }
  Status s = LogRecord::Parse(buf, out);
  if (!s.ok()) return s;
  out->lsn = lsn;
  return Status::OK();
}

Status LogManager::ReadRecord(Lsn lsn, LogRecord* out) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (lsn >= buffer_base_) {
      if (lsn >= next_lsn_) return Status::NotFound("lsn beyond end of log");
      size_t off = static_cast<size_t>(lsn - buffer_base_);
      Status s = LogRecord::Parse(
          std::string_view(buffer_.data() + off, buffer_.size() - off), out);
      if (s.ok()) out->lsn = lsn;
      return s;
    }
  }
  return ReadFromFile(lsn, out);
}

void LogManager::DiscardUnflushed() {
  std::lock_guard<std::mutex> lk(mu_);
  buffer_.clear();
  next_lsn_ = flushed_lsn_.load();
  buffer_base_ = flushed_lsn_.load();
}

Status LogManager::WriteMaster(Lsn checkpoint_lsn) {
  std::string mpath = path_ + ".master";
  std::string tmp = mpath + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError("open master tmp");
  char buf[8];
  EncodeFixed64(buf, checkpoint_lsn);
  bool ok = ::pwrite(fd, buf, 8, 0) == 8 && ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) return Status::IOError("write master");
  if (::rename(tmp.c_str(), mpath.c_str()) != 0) {
    return Status::IOError("rename master");
  }
  return Status::OK();
}

Result<Lsn> LogManager::ReadMaster() {
  std::string mpath = path_ + ".master";
  int fd = ::open(mpath.c_str(), O_RDONLY);
  if (fd < 0) return Status::NotFound("no master record");
  char buf[8];
  ssize_t n = ::pread(fd, buf, 8, 0);
  ::close(fd);
  if (n != 8) return Status::Corruption("short master record");
  return DecodeFixed64(buf);
}

Status LogManager::Reader::Next(LogRecord* out) {
  if (pos_ >= lm_->flushed_lsn_ && pos_ >= lm_->next_lsn_) {
    return Status::NotFound("end of log");
  }
  Status s = lm_->ReadRecord(pos_, out);
  if (!s.ok()) {
    // A corrupt record marks the torn end of the durable log.
    if (s.code() == Code::kCorruption) return Status::NotFound("torn tail");
    return s;
  }
  pos_ += out->SerializedSize();
  return Status::OK();
}

}  // namespace ariesim
