#include "wal/log_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include "common/clock.h"
#include "common/commit_breakdown.h"
#include "common/trace.h"
#include "util/coding.h"

namespace ariesim {

namespace {

// Commit-breakdown attribution for one durability wait (PR 9): split the
// waiter's interval [enqueue_ns, now) across the phases of the batch that
// made it durable, by intersecting each phase with the waiter's own window.
// A waiter that joined mid-batch only charges the part it actually sat
// through; one whose LSN was already durable charges everything to wakeup
// (pure validation/handoff cost). No-op when no transaction is bound.
void AttributeDurabilityWait(uint64_t enqueue_ns, uint64_t batch_start_ns,
                             uint64_t write_done_ns, uint64_t sync_done_ns) {
  if (CurrentCommitBreakdown() == nullptr) return;
  const uint64_t now = MonotonicNowNs();
  auto overlap = [&](uint64_t lo, uint64_t hi) -> uint64_t {
    lo = std::max(lo, enqueue_ns);
    hi = std::min(hi, now);
    return hi > lo ? hi - lo : 0;
  };
  if (sync_done_ns <= enqueue_ns) {
    AddCommitSegment(CommitSegment::wakeup, now - enqueue_ns);
    return;
  }
  AddCommitSegment(CommitSegment::queue_wait,
                   batch_start_ns > enqueue_ns ? batch_start_ns - enqueue_ns
                                               : 0);
  AddCommitSegment(CommitSegment::batch_write,
                   overlap(batch_start_ns, write_done_ns));
  AddCommitSegment(CommitSegment::fsync, overlap(write_done_ns, sync_done_ns));
  AddCommitSegment(CommitSegment::wakeup,
                   now > sync_done_ns ? now - sync_done_ns : 0);
}

}  // namespace

LogManager::LogManager(std::string path, Metrics* metrics, bool fsync_on_flush,
                       size_t buffer_capacity)
    : path_(std::move(path)),
      metrics_(metrics),
      fsync_on_flush_(fsync_on_flush),
      buffer_capacity_(buffer_capacity) {}

LogManager::~LogManager() { Close(); }

Status LogManager::Open() {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    return Status::IOError("open log " + path_ + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IOError("fstat log: " + std::string(std::strerror(errno)));
  }
  if (st.st_size == 0) {
    char magic[kLogFilePrologue];
    EncodeFixed64(magic, kLogMagic);
    if (::pwrite(fd_, magic, sizeof(magic), 0) != static_cast<ssize_t>(sizeof(magic))) {
      return Status::IOError("write log prologue");
    }
    next_lsn_ = kLogFilePrologue;
  } else {
    // Scan forward from the prologue to find the end of the valid log.
    char magic[kLogFilePrologue];
    if (::pread(fd_, magic, sizeof(magic), 0) != static_cast<ssize_t>(sizeof(magic)) ||
        DecodeFixed64(magic) != kLogMagic) {
      return Status::Corruption("bad log magic");
    }
    Lsn pos = kLogFilePrologue;
    // Every byte below the master checkpoint LSN was durably flushed
    // before the master record was written, so the end-of-log walk can
    // start there: open cost is bounded by the checkpoint interval, not
    // total log size. A torn crash can still truncate the file back into
    // (or below) the checkpoint record — if the record at the master LSN
    // doesn't parse, fall back to the full walk from the prologue.
    Result<Lsn> master = ReadMaster();
    if (master.ok() && master.value() > kLogFilePrologue &&
        static_cast<off_t>(master.value()) < st.st_size) {
      LogRecord probe;
      if (ReadFromFile(master.value(), &probe).ok()) pos = master.value();
    }
    LogRecord rec;
    while (true) {
      Status s = ReadFromFile(pos, &rec);
      if (!s.ok()) break;
      last_lsn_ = pos;
      pos += rec.SerializedSize();
    }
    next_lsn_ = pos;
    // Truncate any torn tail so future appends extend a clean prefix.
    if (::ftruncate(fd_, static_cast<off_t>(pos)) != 0) {
      return Status::IOError("ftruncate log tail");
    }
  }
  flushed_lsn_ = next_lsn_.load();
  buffer_base_ = next_lsn_.load();
  buffer_.clear();
  return Status::OK();
}

void LogManager::Close() {
  StopFlusher();
  if (fd_ >= 0) {
    FlushAll();
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Lsn> LogManager::Append(LogRecord* rec) {
  std::lock_guard<std::mutex> lk(mu_);
  rec->lsn = next_lsn_;
  rec->AppendTo(&buffer_);
  next_lsn_ += rec->SerializedSize();
  last_lsn_ = rec->lsn;
  if (append_observer_ && rec->IsRedoable() &&
      rec->page_id != kInvalidPageId) {
    append_observer_(rec->page_id, rec->lsn);
  }
  if (metrics_ != nullptr) {
    metrics_->log_records.fetch_add(1, std::memory_order_relaxed);
    metrics_->log_bytes.fetch_add(rec->SerializedSize(), std::memory_order_relaxed);
  }
  // Bound the volatile tail: spill to the file when the buffer fills.
  // (Writing early is always safe under WAL — durability claims only ever
  // strengthen.)
  if (buffer_.size() >= buffer_capacity_) {
    ARIES_RETURN_NOT_OK(FlushLocked());
  }
  return rec->lsn;
}

Status LogManager::FlushLocked() {
  if (buffer_.empty()) return Status::OK();
  Status s = FlushLockedImpl();
  if (s.ok()) {
    consecutive_flush_failures_ = 0;
  } else {
    ++consecutive_flush_failures_;
    // First failure of a streak: let the flight recorder capture the WAL
    // state before (and whether or not) the health monitor trips below.
    if (consecutive_flush_failures_ == 1 && flush_failure_observer_) {
      flush_failure_observer_(s);
    }
    if (health_ != nullptr && flush_failure_threshold_ > 0) {
      if (consecutive_flush_failures_ >= 2 * flush_failure_threshold_) {
        health_->Trip(EngineHealth::kFailed,
                      "log flush failing persistently: " + s.message());
      } else if (consecutive_flush_failures_ >= flush_failure_threshold_) {
        health_->Trip(EngineHealth::kReadOnly,
                      "log flush failing: " + s.message());
      }
    }
  }
  return s;
}

Status LogManager::FlushLockedImpl() {
  if (fault_ != nullptr) {
    FaultAction a = fault_->OnIo(FaultSite::kLogFlush, buffer_.size());
    if (a.kind == FaultAction::Kind::kFail) {
      return Status::IOError("fault injection: log flush");
    }
    if (a.kind == FaultAction::Kind::kTear) {
      // Partial tail flush: a prefix of the tail reaches the file, but the
      // flush as a whole fails — flushed_lsn_ must not advance, so no caller
      // may treat any of these records as durable.
      (void)::pwrite(fd_, buffer_.data(), a.keep_bytes,
                     static_cast<off_t>(buffer_base_));
      return Status::IOError(
          "fault injection: partial log flush (" +
          std::to_string(a.keep_bytes) + " of " +
          std::to_string(buffer_.size()) + " bytes)");
    }
  }
  // Flush the whole tail (simple, and amortizes well under group pressure).
  const uint64_t flush_start_ns = MonotonicNowNs();
  uint64_t write_done_ns = flush_start_ns;
  {
    // The fsync span is the serial heart of the group-commit pipeline; it is
    // also recorded on the error returns so a stall shows up in the trace.
    ARIES_TRACE_SPAN(span, "wal.fsync", TraceCat::kWal, buffer_.size());
    ssize_t n = ::pwrite(fd_, buffer_.data(), buffer_.size(),
                         static_cast<off_t>(buffer_base_));
    if (n < 0) {
      return Status::IOError("pwrite log: " + std::string(std::strerror(errno)));
    }
    if (static_cast<size_t>(n) != buffer_.size()) {
      return Status::IOError("short pwrite of log tail: wrote " +
                             std::to_string(n) + " of " +
                             std::to_string(buffer_.size()) + " bytes");
    }
    write_done_ns = MonotonicNowNs();
    if (fsync_on_flush_ && ::fdatasync(fd_) != 0) {
      return Status::IOError("fdatasync log");
    }
  }
  const uint64_t sync_done_ns = MonotonicNowNs();
  // Publish the batch phases before the flushed_lsn_ release store: a commit
  // waiter that sees its LSN durable then also sees this batch's timing.
  last_batch_start_ns_.store(flush_start_ns, std::memory_order_relaxed);
  last_batch_write_ns_.store(write_done_ns, std::memory_order_relaxed);
  last_batch_fsync_ns_.store(sync_done_ns, std::memory_order_relaxed);
  buffer_base_ = next_lsn_.load();
  flushed_lsn_ = next_lsn_.load();
  buffer_.clear();
  if (metrics_ != nullptr) {
    metrics_->log_flushes.fetch_add(1, std::memory_order_relaxed);
    metrics_->log_flush_latency.Record(MonotonicNowNs() - flush_start_ns);
  }
  // Any flush can satisfy group-commit waiters (capacity spills and WAL-rule
  // forces advance flushed_lsn_ too). Notifying without gc_mu_ is legal; the
  // waiters re-check their predicate under gc_mu_.
  if (group_commit_) gc_cv_.notify_all();
  return Status::OK();
}

Status LogManager::FlushTo(Lsn lsn) {
  std::lock_guard<std::mutex> lk(mu_);
  if (lsn < flushed_lsn_ || buffer_.empty()) return Status::OK();
  return FlushLocked();
}

Status LogManager::FlushAll() { return FlushTo(next_lsn_); }

// -- group commit -----------------------------------------------------------

void LogManager::EnableGroupCommit(bool enabled, uint32_t max_delay_us) {
  group_commit_ = enabled;
  gc_delay_us_ = max_delay_us;
}

Status LogManager::CommitFlush(Lsn lsn) {
  if (!group_commit_) {
    // Non-group commit force: the committer runs the write+fsync itself
    // (or finds it already durable). The published batch phases describe
    // exactly the flush that satisfied us, because FlushTo returns while
    // still ordered after FlushLockedImpl's stores under mu_.
    const uint64_t enqueue_ns = MonotonicNowNs();
    Status s = FlushTo(lsn);
    if (s.ok()) {
      AttributeDurabilityWait(
          enqueue_ns, last_batch_start_ns_.load(std::memory_order_relaxed),
          last_batch_write_ns_.load(std::memory_order_relaxed),
          last_batch_fsync_ns_.load(std::memory_order_relaxed));
    }
    return s;
  }
  return GroupCommitFlush(lsn);
}

void LogManager::RequestFlush(Lsn lsn) {
  if (metrics_ != nullptr && group_commit_) {
    metrics_->group_commit_txns.fetch_add(1, std::memory_order_relaxed);
  }
  ARIES_TRACE_INSTANT("gc.enqueue", TraceCat::kWal, lsn);
  std::lock_guard<std::mutex> lk(gc_mu_);
  gc_requested_ = std::max(gc_requested_, lsn);
  flusher_cv_.notify_one();
}

Status LogManager::GroupFlushAttempt(Lsn* end_out) {
  Lsn before = flushed_lsn();
  // One batch of the group-commit pipeline: take mu_, write + sync the whole
  // tail. Nested inside it (when tracing) sits the wal.fsync span.
  ARIES_TRACE_SPAN(span, "gc.batch", TraceCat::kWal, before);
  Status s;
  {
    std::lock_guard<std::mutex> lk(mu_);
    *end_out = next_lsn_.load(std::memory_order_relaxed);
    s = FlushLocked();
  }
  if (metrics_ != nullptr && s.ok() && flushed_lsn() > before) {
    metrics_->group_commit_batches.fetch_add(1, std::memory_order_relaxed);
  }
  return s;
}

Status LogManager::GroupCommitFlush(Lsn lsn) {
  if (metrics_ != nullptr) {
    metrics_->group_commit_txns.fetch_add(1, std::memory_order_relaxed);
  }
  // Covers this committer's whole enqueue -> (batch, fsync) -> wakeup wait.
  ARIES_TRACE_SPAN(span, "gc.wait", TraceCat::kWal, lsn);
  ARIES_TRACE_INSTANT("gc.enqueue", TraceCat::kWal, lsn);
  const uint64_t enqueue_ns = MonotonicNowNs();
  std::unique_lock<std::mutex> lk(gc_mu_);
  // One forced re-flush per waiter: if the attempt that covered us failed
  // (e.g. a transient error that has since healed), roll the attempt
  // watermark back once so the executor tries again for us; a second
  // covered failure is final.
  bool retried = false;
  for (;;) {
    if (flushed_lsn() >= lsn) {
      AttributeDurabilityWait(
          enqueue_ns, last_batch_start_ns_.load(std::memory_order_relaxed),
          last_batch_write_ns_.load(std::memory_order_relaxed),
          last_batch_fsync_ns_.load(std::memory_order_relaxed));
      return Status::OK();
    }
    // Crash simulation discarded the tail out from under us: our record no
    // longer exists and can never become durable.
    if (lsn > next_lsn()) {
      return Status::IOError("log tail discarded before commit flush");
    }
    if (!gc_status_.ok() && gc_attempted_ >= lsn) {
      if (retried) return gc_status_;
      retried = true;
      gc_attempted_ = flushed_lsn();
    }
    gc_requested_ = std::max(gc_requested_, lsn);
    uint64_t round = gc_round_;
    if (flusher_running_.load(std::memory_order_acquire)) {
      // Flusher mode: hand the batch to the dedicated thread and wait for
      // durability or the verdict of an attempt that covered us. The
      // timeout is a lost-wakeup backstop (flushes from Append's capacity
      // spill notify without gc_mu_); the outer loop re-checks everything.
      flusher_cv_.notify_one();
      gc_cv_.wait_for(lk, std::chrono::milliseconds(1), [&] {
        return flushed_lsn() >= lsn || gc_round_ != round ||
               lsn > next_lsn() ||
               !flusher_running_.load(std::memory_order_acquire);
      });
      continue;
    }
    // Leader mode. If a leader is already flushing, wait out its round —
    // our record, appended before its flush takes mu_, usually rides it.
    if (gc_leader_active_) {
      gc_cv_.wait_for(lk, std::chrono::milliseconds(1), [&] {
        return flushed_lsn() >= lsn || gc_round_ != round ||
               lsn > next_lsn() || !gc_leader_active_;
      });
      continue;
    }
    // Become the leader: flush the whole tail on behalf of every waiter.
    gc_leader_active_ = true;
    lk.unlock();
    if (gc_delay_us_ > 0) {
      // Batch-accumulation window: appends only need mu_, so concurrent
      // committers can still add their commit records to the tail we are
      // about to flush.
      std::this_thread::sleep_for(std::chrono::microseconds(gc_delay_us_));
    }
    Lsn end = 0;
    Status s = GroupFlushAttempt(&end);
    lk.lock();
    gc_leader_active_ = false;
    ++gc_round_;
    gc_status_ = s;
    gc_attempted_ = std::max(gc_attempted_, end);
    gc_cv_.notify_all();
    ARIES_TRACE_INSTANT("gc.wakeup", TraceCat::kWal, end);
    if (!s.ok() && end >= lsn) return s;
  }
}

void LogManager::FlusherLoop() {
  std::unique_lock<std::mutex> lk(gc_mu_);
  while (flusher_run_) {
    // A request is pending when someone asked for a boundary beyond both
    // the durable prefix and the last attempt. Comparing against
    // gc_attempted_ (not just flushed_lsn) keeps a frozen device from
    // spinning hot: a failed attempt answers every request it covered.
    if (gc_requested_ <= std::max(flushed_lsn(), gc_attempted_)) {
      flusher_cv_.wait_for(lk, std::chrono::milliseconds(10), [&] {
        return !flusher_run_ ||
               gc_requested_ > std::max(flushed_lsn(), gc_attempted_);
      });
      continue;
    }
    lk.unlock();
    if (gc_delay_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(gc_delay_us_));
    }
    Lsn end = 0;
    Status s = GroupFlushAttempt(&end);
    lk.lock();
    ++gc_round_;
    gc_status_ = s;
    gc_attempted_ = std::max(gc_attempted_, end);
    gc_cv_.notify_all();
    ARIES_TRACE_INSTANT("gc.wakeup", TraceCat::kWal, end);
  }
}

void LogManager::StartFlusher() {
  std::lock_guard<std::mutex> lk(gc_mu_);
  if (flusher_run_) return;
  flusher_run_ = true;
  flusher_running_.store(true, std::memory_order_release);
  flusher_ = std::thread([this] { FlusherLoop(); });
}

void LogManager::StopFlusher() {
  {
    std::lock_guard<std::mutex> lk(gc_mu_);
    if (!flusher_run_ && !flusher_.joinable()) return;
    flusher_run_ = false;
    flusher_running_.store(false, std::memory_order_release);
    flusher_cv_.notify_all();
    gc_cv_.notify_all();
  }
  if (flusher_.joinable()) flusher_.join();
}

Status LogManager::ReadFromFile(Lsn lsn, LogRecord* out) {
  char hdr[kLogHeaderSize];
  ssize_t n = ::pread(fd_, hdr, sizeof(hdr), static_cast<off_t>(lsn));
  if (n != static_cast<ssize_t>(sizeof(hdr))) {
    return Status::NotFound("end of log");
  }
  uint32_t total_len = DecodeFixed32(hdr);
  if (total_len < kLogHeaderSize || total_len > (1u << 26)) {
    return Status::Corruption("implausible log record length");
  }
  std::string buf(total_len, '\0');
  n = ::pread(fd_, buf.data(), total_len, static_cast<off_t>(lsn));
  if (n != static_cast<ssize_t>(total_len)) {
    return Status::NotFound("torn log tail");
  }
  Status s = LogRecord::Parse(buf, out);
  if (!s.ok()) return s;
  out->lsn = lsn;
  return Status::OK();
}

Status LogManager::ReadRecord(Lsn lsn, LogRecord* out) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (lsn >= buffer_base_) {
      if (lsn >= next_lsn_) return Status::NotFound("lsn beyond end of log");
      size_t off = static_cast<size_t>(lsn - buffer_base_);
      Status s = LogRecord::Parse(
          std::string_view(buffer_.data() + off, buffer_.size() - off), out);
      if (s.ok()) out->lsn = lsn;
      return s;
    }
  }
  return ReadFromFile(lsn, out);
}

void LogManager::DiscardUnflushed() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    buffer_.clear();
    next_lsn_ = flushed_lsn_.load();
    buffer_base_ = flushed_lsn_.load();
  }
  // Wake group-commit waiters whose records were just discarded (they see
  // lsn > next_lsn and return an error: their commits were never
  // acknowledged) and reset the batching watermarks to the durable prefix.
  std::lock_guard<std::mutex> lk(gc_mu_);
  gc_requested_ = flushed_lsn();
  gc_attempted_ = flushed_lsn();
  gc_cv_.notify_all();
  flusher_cv_.notify_all();
}

Status LogManager::WriteMaster(Lsn checkpoint_lsn) {
  std::string mpath = path_ + ".master";
  std::string tmp = mpath + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError("open master tmp");
  char buf[8];
  EncodeFixed64(buf, checkpoint_lsn);
  bool ok = ::pwrite(fd, buf, 8, 0) == 8 && ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) return Status::IOError("write master");
  if (::rename(tmp.c_str(), mpath.c_str()) != 0) {
    return Status::IOError("rename master");
  }
  return Status::OK();
}

Result<Lsn> LogManager::ReadMaster() {
  std::string mpath = path_ + ".master";
  int fd = ::open(mpath.c_str(), O_RDONLY);
  if (fd < 0) return Status::NotFound("no master record");
  char buf[8];
  ssize_t n = ::pread(fd, buf, 8, 0);
  ::close(fd);
  if (n != 8) return Status::Corruption("short master record");
  return DecodeFixed64(buf);
}

Status LogManager::Reader::Next(LogRecord* out) {
  if (pos_ >= lm_->flushed_lsn_ && pos_ >= lm_->next_lsn_) {
    return Status::NotFound("end of log");
  }
  Status s = lm_->ReadRecord(pos_, out);
  if (!s.ok()) {
    // A corrupt record marks the torn end of the durable log.
    if (s.code() == Code::kCorruption) return Status::NotFound("torn tail");
    return s;
  }
  pos_ += out->SerializedSize();
  return Status::OK();
}

}  // namespace ariesim
