// ARIES restart recovery (paper §1.2) and fuzzy checkpoints:
//  - analysis: scan from the master checkpoint to the end of the log,
//    rebuilding the transaction table and dirty page table;
//  - redo: repeat history page-oriented from the minimum recLSN, including
//    updates of in-flight transactions;
//  - undo: roll back all losers in one backward sweep, writing CLRs (dummy
//    CLRs already written make completed SMOs and nested top actions
//    rollback-proof).
// Normal-processing rollback shares UndoTransaction with the restart undo
// pass, as in the paper.
#pragma once

#include <map>
#include <unordered_map>

#include "buffer/buffer_pool.h"
#include "common/context.h"
#include "common/status.h"
#include "recovery/resource_manager.h"
#include "txn/transaction_manager.h"
#include "wal/log_manager.h"

namespace ariesim {

struct RestartStats {
  uint64_t analysis_records = 0;
  uint64_t redo_records = 0;
  uint64_t redo_applied = 0;
  uint64_t undo_records = 0;
  uint64_t loser_txns = 0;
  uint64_t torn_pages_repaired = 0;  ///< CRC failures rebuilt from the log
  Lsn redo_start = kNullLsn;
  // Per-pass wall-clock durations (PR 4 observability). `total_us` also
  // covers the trailing checkpoint, so it can exceed the three passes' sum.
  uint64_t analysis_us = 0;
  uint64_t redo_us = 0;
  uint64_t undo_us = 0;
  uint64_t total_us = 0;

  std::string ToString() const {
    return "analysis=" + std::to_string(analysis_records) + " recs/" +
           std::to_string(analysis_us) + "us redo=" +
           std::to_string(redo_applied) + "/" + std::to_string(redo_records) +
           " applied/" + std::to_string(redo_us) + "us undo=" +
           std::to_string(undo_records) + " recs/" + std::to_string(undo_us) +
           "us losers=" + std::to_string(loser_txns) +
           " torn_repaired=" + std::to_string(torn_pages_repaired) +
           " total=" + std::to_string(total_us) + "us";
  }
};

/// The restart summary doubles as the per-pass recovery report
/// (duration + record counts per analysis/redo/undo pass).
using RecoveryStats = RestartStats;

class RecoveryManager {
 public:
  explicit RecoveryManager(EngineContext* ctx) : ctx_(ctx) {}

  void RegisterRm(RmId id, ResourceManager* rm) {
    rms_[static_cast<int>(id)] = rm;
  }

  /// Full restart: analysis, redo, undo, then a checkpoint.
  Status Restart(RestartStats* stats = nullptr);

  /// Fuzzy checkpoint: begin_chkpt, DPT + TT snapshot, end_chkpt, master.
  Status TakeCheckpoint();

  /// Undo `txn`'s records with LSN > `stop_at` (kNullLsn = total rollback).
  /// Shared by normal rollback, savepoint rollback and the restart undo
  /// pass.
  Status UndoTransaction(Transaction* txn, Lsn stop_at);

  /// Media recovery (paper §5): after the page has been restored from an
  /// image copy (fuzzy dump), roll it forward by replaying the log from
  /// `from` — page-oriented, applying only records for `page` whose LSN is
  /// newer than the restored page_LSN.
  Status RollForwardPage(PageId page, Lsn from);

  /// Rebuild a page whose on-disk image failed its CRC (torn write): drop
  /// the corrupt copy, restore the pre-log base image (zeroed, or the
  /// formatted map page for space-map pages) and roll it forward from the
  /// start of the log. The redo pass invokes this automatically when a
  /// fetch reports kCorruption.
  Status RepairPage(PageId page);

  /// Core single-page media recovery, shared by restart-time RepairPage and
  /// the online fetch-time repair path: rebuild `page` into the caller's
  /// `buf` (page_size bytes) by replaying its full log history onto the
  /// blank base image, then persist the result (checksummed, WAL rule
  /// honored). Thread-safe and buffer-pool-free, so it can run while normal
  /// traffic continues on other pages; the caller must guarantee no new log
  /// records are appended for `page` for the duration (the buffer pool's
  /// fetch-miss quarantine does). Returns kCorruption if the log holds no
  /// history for the page (unrepairable).
  Status RebuildPageImage(PageId page, char* buf);

  /// Failure injection (tests only): abort the restart-undo pass with an
  /// injected error after `n` records — simulating a crash *during*
  /// recovery, to verify bounded logging via CLRs (paper §1.2). Negative
  /// disables; the hook is one-shot.
  void TestStopUndoAfter(int n) { test_stop_undo_after_ = n; }

 private:
  struct AnalysisResult {
    // txn -> (last_lsn, undo_next, saw_commit)
    struct TxnInfo {
      Lsn last_lsn = kNullLsn;
      Lsn undo_next = kNullLsn;
      bool committed = false;
    };
    std::unordered_map<TxnId, TxnInfo> txns;
    std::unordered_map<PageId, Lsn> dpt;  // page -> recLSN
    Lsn end_of_log = kNullLsn;
  };

  Status Analyze(Lsn start, AnalysisResult* out, RestartStats* stats);
  Status RedoPass(const AnalysisResult& ar, RestartStats* stats);
  Status UndoPass(const AnalysisResult& ar, RestartStats* stats);

  /// Undo a single record for `txn`, dispatching to its RM.
  Status UndoOne(Transaction* txn, const LogRecord& rec);

  ResourceManager* Rm(RmId id) { return rms_[static_cast<int>(id)]; }

  EngineContext* ctx_;
  ResourceManager* rms_[8] = {nullptr};
  int test_stop_undo_after_ = -1;
};

}  // namespace ariesim
