// ARIES restart recovery (paper §1.2) and fuzzy checkpoints:
//  - analysis: scan from the master checkpoint to the end of the log,
//    rebuilding the transaction table and dirty page table;
//  - redo: repeat history page-oriented from the minimum recLSN, including
//    updates of in-flight transactions;
//  - undo: roll back all losers in one backward sweep, writing CLRs (dummy
//    CLRs already written make completed SMOs and nested top actions
//    rollback-proof).
// Normal-processing rollback shares UndoTransaction with the restart undo
// pass, as in the paper.
#pragma once

#include <map>
#include <unordered_map>

#include "buffer/buffer_pool.h"
#include "common/context.h"
#include "common/status.h"
#include "recovery/page_index.h"
#include "recovery/resource_manager.h"
#include "txn/transaction_manager.h"
#include "wal/log_manager.h"

namespace ariesim {

struct RestartStats {
  uint64_t analysis_records = 0;
  uint64_t redo_records = 0;
  uint64_t redo_applied = 0;
  uint64_t undo_records = 0;
  uint64_t loser_txns = 0;
  uint64_t torn_pages_repaired = 0;  ///< CRC failures rebuilt from the log
  /// Instant restart only: DPT pages whose redo was deferred to first fetch
  /// (the classic redo pass reports redo_records/redo_applied instead).
  uint64_t lazy_pages_scheduled = 0;
  bool instant = false;  ///< this restart deferred redo to first fetch
  Lsn redo_start = kNullLsn;
  // Per-pass wall-clock durations (PR 4 observability). `total_us` also
  // covers the trailing checkpoint, so it can exceed the three passes' sum.
  uint64_t analysis_us = 0;
  uint64_t redo_us = 0;
  uint64_t undo_us = 0;
  uint64_t total_us = 0;

  std::string ToString() const {
    return std::string(instant ? "instant " : "") + "analysis=" +
           std::to_string(analysis_records) + " recs/" +
           std::to_string(analysis_us) + "us redo=" +
           std::to_string(redo_applied) + "/" + std::to_string(redo_records) +
           " applied/" + std::to_string(redo_us) + "us undo=" +
           std::to_string(undo_records) + " recs/" + std::to_string(undo_us) +
           "us losers=" + std::to_string(loser_txns) +
           " torn_repaired=" + std::to_string(torn_pages_repaired) +
           " lazy_scheduled=" + std::to_string(lazy_pages_scheduled) +
           " total=" + std::to_string(total_us) + "us";
  }
};

/// The restart summary doubles as the per-pass recovery report
/// (duration + record counts per analysis/redo/undo pass).
using RecoveryStats = RestartStats;

class RecoveryManager {
 public:
  explicit RecoveryManager(EngineContext* ctx) : ctx_(ctx) {}

  void RegisterRm(RmId id, ResourceManager* rm) {
    rms_[static_cast<int>(id)] = rm;
  }

  /// Full restart: analysis, redo, undo, then a checkpoint.
  Status Restart(RestartStats* stats = nullptr);

  /// Instant restart (on-demand per-page recovery): analysis rebuilds the
  /// transaction table, DPT and per-page LSN chains; every DPT page is
  /// marked pending-redo in the buffer pool (so its first fetch replays its
  /// chain via LazyRedoPage); losers are undone eagerly — their page fetches
  /// go through the same lazy path — and a checkpoint whose DPT includes the
  /// still-pending pages makes a crash *during* instant restart recoverable.
  /// Returns with the database ready for new transactions; the redo debt is
  /// drained by first-touch traffic and/or the Database-level sweeper.
  Status RestartInstant(RestartStats* stats = nullptr);

  /// On-demand single-page redo for instant restart: bring the just-read
  /// disk image in `buf` (page_size bytes, CRC already verified) up to date
  /// by replaying `page`'s LSN chain captured at restart, honoring the
  /// page_LSN idempotence check per entry. `rec_lsn` is the DPT recLSN the
  /// page was scheduled with; if the chain is missing or starts above it the
  /// replay falls back to a full log scan (counted by lazy_chain_fallbacks).
  /// `*first_applied` returns the first LSN actually applied (kNullLsn if
  /// the image was already current) so the caller can mark the frame dirty
  /// with the right recLSN. Thread-safe and buffer-pool-free; runs inside
  /// the fetch-miss quarantine like RebuildPageImage.
  Status LazyRedoPage(PageId page, char* buf, Lsn rec_lsn, Lsn* first_applied);

  /// Live per-page log index (maintained from the WAL append observer,
  /// persisted at checkpoints, reconstructed by analysis).
  PageLogIndex* page_index() { return &page_index_; }

  /// Fuzzy checkpoint: begin_chkpt, DPT + TT snapshot, end_chkpt, master.
  Status TakeCheckpoint();

  /// Undo `txn`'s records with LSN > `stop_at` (kNullLsn = total rollback).
  /// Shared by normal rollback, savepoint rollback and the restart undo
  /// pass.
  Status UndoTransaction(Transaction* txn, Lsn stop_at);

  /// Media recovery (paper §5): after the page has been restored from an
  /// image copy (fuzzy dump), roll it forward by replaying the log from
  /// `from` — page-oriented, applying only records for `page` whose LSN is
  /// newer than the restored page_LSN.
  Status RollForwardPage(PageId page, Lsn from);

  /// Rebuild a page whose on-disk image failed its CRC (torn write): drop
  /// the corrupt copy, restore the pre-log base image (zeroed, or the
  /// formatted map page for space-map pages) and roll it forward from the
  /// start of the log. The redo pass invokes this automatically when a
  /// fetch reports kCorruption.
  Status RepairPage(PageId page);

  /// Core single-page media recovery, shared by restart-time RepairPage and
  /// the online fetch-time repair path: rebuild `page` into the caller's
  /// `buf` (page_size bytes) by replaying its full log history onto the
  /// blank base image, then persist the result (checksummed, WAL rule
  /// honored). Thread-safe and buffer-pool-free, so it can run while normal
  /// traffic continues on other pages; the caller must guarantee no new log
  /// records are appended for `page` for the duration (the buffer pool's
  /// fetch-miss quarantine does). Returns kCorruption if the log holds no
  /// history for the page (unrepairable).
  Status RebuildPageImage(PageId page, char* buf);

  /// Failure injection (tests only): abort the restart-undo pass with an
  /// injected error after `n` records — simulating a crash *during*
  /// recovery, to verify bounded logging via CLRs (paper §1.2). Negative
  /// disables; the hook is one-shot.
  void TestStopUndoAfter(int n) { test_stop_undo_after_ = n; }

 private:
  struct AnalysisResult {
    // txn -> (last_lsn, undo_next, saw_commit)
    struct TxnInfo {
      Lsn last_lsn = kNullLsn;
      Lsn undo_next = kNullLsn;
      bool committed = false;
    };
    std::unordered_map<TxnId, TxnInfo> txns;
    std::unordered_map<PageId, Lsn> dpt;  // page -> recLSN
    PageLsnChains chains;                 // page -> redoable-LSN chain
    Lsn end_of_log = kNullLsn;
  };

  Status Analyze(Lsn start, AnalysisResult* out, RestartStats* stats);
  Status RedoPass(const AnalysisResult& ar, RestartStats* stats);
  Status UndoPass(const AnalysisResult& ar, RestartStats* stats);

  /// Undo a single record for `txn`, dispatching to its RM.
  Status UndoOne(Transaction* txn, const LogRecord& rec);

  ResourceManager* Rm(RmId id) { return rms_[static_cast<int>(id)]; }

  EngineContext* ctx_;
  ResourceManager* rms_[8] = {nullptr};
  PageLogIndex page_index_;
  /// Chains frozen at the end of instant-restart analysis; immutable until
  /// the next restart, so LazyRedoPage can read them without locking while
  /// page_index_ keeps evolving under new traffic.
  PageLsnChains restart_chains_;
  int test_stop_undo_after_ = -1;
};

}  // namespace ariesim
