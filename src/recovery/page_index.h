// Per-page log index for instant restart (Sauer & Härder-style on-demand
// recovery; see docs/ARCHITECTURE.md, "Instant restart").
//
// Maps page-id -> the ascending LSN chain of that page's redoable records.
// The chain is exactly what single-page redo needs: replaying it onto the
// on-disk image (with the usual page_LSN idempotence check) brings the page
// to its pre-crash state without scanning the whole log.
//
// Lifecycle:
//  - maintained incrementally from LogManager's append observer (one Note()
//    per redoable page record, inside the append critical section);
//  - pruned and persisted at every fuzzy checkpoint as kPageIndex records
//    between the begin- and end-checkpoint markers: chains of clean pages
//    are dropped entirely (the on-disk image already embodies them) and
//    dirty pages keep only entries >= their DPT recLSN;
//  - reconstructed during restart analysis: the persisted chunks are merged,
//    then every redoable record the tail scan passes is appended — so the
//    chains cover [recLSN, end-of-log] for every dirty page by induction.
#pragma once

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace ariesim {

/// page -> ascending, duplicate-free LSNs of the page's redoable records.
using PageLsnChains = std::unordered_map<PageId, std::vector<Lsn>>;

/// Max payload size of one kPageIndex record; a large index is split into
/// several. Comfortably under the log manager's tail-buffer capacity.
inline constexpr size_t kPageIndexChunkBytes = 48 * 1024;

class PageLogIndex {
 public:
  /// Record that a redoable record for `page` was appended at `lsn`.
  /// Called from inside the WAL append critical section; must stay cheap.
  void Note(PageId page, Lsn lsn);

  /// Checkpoint-time garbage collection against the fuzzy DPT snapshot:
  /// drop the chains of pages not in `dpt` (their on-disk image is current —
  /// any later record re-enters via Note and the analysis scan), and for
  /// dirty pages drop entries below their recLSN (the on-disk image holds
  /// everything older; no record for the page can exist between the disk
  /// image's page_LSN and the recLSN).
  void Prune(const std::vector<std::pair<PageId, Lsn>>& dpt);

  /// Replace the contents with chains reconstructed by restart analysis.
  void Adopt(PageLsnChains chains);

  /// Serialize into kPageIndex payload chunks of at most `max_bytes` each:
  /// [u32 n_pages] then per group [u32 page][u32 n_lsns][varint lsns] — the
  /// first LSN of a group absolute, the rest ascending deltas (~3 bytes per
  /// entry instead of 8). A page's chain may straddle a chunk boundary (each
  /// continuation group restarts absolute); ParseChunk merges.
  std::vector<std::string> SerializeChunks(size_t max_bytes) const;

  /// Decode one kPageIndex payload into `out`, merging with whatever is
  /// already there (sorted union, duplicates dropped). Corruption on a
  /// malformed payload.
  static Status ParseChunk(std::string_view payload, PageLsnChains* out);

  /// Append `lsn` to `page`'s chain in `chains` if it is new (the common
  /// case: LSNs arrive ascending, so this is an O(1) back-check).
  static void AppendToChain(PageLsnChains* chains, PageId page, Lsn lsn);

  size_t pages() const;
  size_t entries() const;

 private:
  mutable std::mutex mu_;
  PageLsnChains chains_;
};

}  // namespace ariesim
