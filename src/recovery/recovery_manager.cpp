#include "recovery/recovery_manager.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "common/clock.h"
#include "common/trace.h"
#include "storage/disk_manager.h"
#include "storage/space_manager.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace ariesim {

Status RecoveryManager::TakeCheckpoint() {
  LogRecord begin;
  begin.type = LogType::kBeginCheckpoint;
  ARIES_ASSIGN_OR_RETURN(Lsn begin_lsn, ctx_->txns->AppendSystemLog(&begin));

  // Fuzzy snapshot: neither table needs to be transactionally consistent;
  // analysis corrects both from the log records that follow.
  auto dpt = ctx_->pool->DirtyPageTable();
  auto tt = ctx_->txns->Snapshot();

  // Persist the per-page log index between the checkpoint markers — only in
  // instant-restart mode, so classic-mode logs keep their pre-index byte
  // cadence (and auto-checkpoint phase) exactly. Prune first: clean pages'
  // chains are embodied by their on-disk images, dirty pages only need
  // entries >= their recLSN. Entries Noted between the prune and the
  // serialization have LSN > begin_lsn, so the analysis tail scan (which
  // starts at begin_lsn) re-derives them even if they miss the chunk.
  page_index_.Prune(dpt);
  if (ctx_->options.instant_restart) {
    for (std::string& chunk :
         page_index_.SerializeChunks(kPageIndexChunkBytes)) {
      LogRecord idx;
      idx.type = LogType::kPageIndex;
      idx.payload = std::move(chunk);
      ARIES_ASSIGN_OR_RETURN(Lsn idx_lsn, ctx_->txns->AppendSystemLog(&idx));
      (void)idx_lsn;
    }
  }

  LogRecord end;
  end.type = LogType::kEndCheckpoint;
  PutFixed32(&end.payload, static_cast<uint32_t>(dpt.size()));
  for (auto& [page, rec_lsn] : dpt) {
    PutFixed32(&end.payload, page);
    PutFixed64(&end.payload, rec_lsn);
  }
  PutFixed32(&end.payload, static_cast<uint32_t>(tt.size()));
  for (auto& e : tt) {
    PutFixed64(&end.payload, e.id);
    end.payload.push_back(static_cast<char>(e.state));
    PutFixed64(&end.payload, e.last_lsn);
    PutFixed64(&end.payload, e.undo_next_lsn);
  }
  ARIES_ASSIGN_OR_RETURN(Lsn end_lsn, ctx_->txns->AppendSystemLog(&end));
  ARIES_RETURN_NOT_OK(ctx_->log->FlushTo(end_lsn + end.SerializedSize()));
  return ctx_->log->WriteMaster(begin_lsn);
}

Status RecoveryManager::Analyze(Lsn start, AnalysisResult* out,
                                RestartStats* stats) {
  LogManager::Reader reader(ctx_->log, start);
  LogRecord rec;
  // Txns whose end record the scan has already consumed. The end-checkpoint
  // snapshot was taken before those ends were logged, so its entries for
  // them are stale and must not be re-seeded (a resurrected committed txn
  // would be undone as a loser).
  std::unordered_set<TxnId> ended;
  while (true) {
    Status s = reader.Next(&rec);
    if (s.IsNotFound()) break;
    ARIES_RETURN_NOT_OK(s);
    if (stats != nullptr) stats->analysis_records++;
    switch (rec.type) {
      case LogType::kEndCheckpoint: {
        BufferReader r(rec.payload);
        uint32_t ndpt = r.GetFixed32();
        for (uint32_t i = 0; i < ndpt; ++i) {
          PageId page = r.GetFixed32();
          Lsn rec_lsn = r.GetFixed64();
          // Keep the OLDEST recLSN. A concurrent update can land between the
          // begin- and end-checkpoint records; the scan sees it first and
          // would otherwise pin the page's recLSN at that update, making
          // redo skip everything between the true recLSN and it.
          auto [it, inserted] = out->dpt.emplace(page, rec_lsn);
          if (!inserted && rec_lsn < it->second) it->second = rec_lsn;
        }
        uint32_t ntxn = r.GetFixed32();
        for (uint32_t i = 0; i < ntxn; ++i) {
          TxnId id = r.GetFixed64();
          uint8_t state_byte = static_cast<uint8_t>(r.GetFixed8());
          Lsn last = r.GetFixed64();
          Lsn undo_next = r.GetFixed64();
          // Merge: records after the checkpoint override these values, so
          // only seed txns not yet seen — and never ones whose end record
          // the scan already passed (they finished inside the checkpoint
          // window; the snapshot predates that).
          if (ended.count(id) != 0 ||
              out->txns.find(id) != out->txns.end()) {
            continue;
          }
          // A transaction seeded only from the snapshot has no record at or
          // after the begin-checkpoint (the scan would have built its entry
          // otherwise), so the snapshotted LastLSN is its true final record.
          // The snapshot itself is fuzzy: EndTransaction may have appended
          // the commit/end record already while the table entry still read
          // kActive. Re-check the log before adopting it as a loser —
          // undoing a committed transaction corrupts the database.
          TxnState state = static_cast<TxnState>(state_byte);
          bool committed = state == TxnState::kCommitted;
          if (last != kNullLsn) {
            LogRecord final_rec;
            if (ctx_->log->ReadRecord(last, &final_rec).ok() &&
                final_rec.txn_id == id) {
              if (final_rec.type == LogType::kEnd) continue;  // fully resolved
              if (final_rec.type == LogType::kCommit) committed = true;
            }
          }
          auto& info = out->txns[id];
          info.last_lsn = last;
          info.undo_next = undo_next;
          info.committed = committed;
        }
        break;
      }
      case LogType::kUpdate:
      case LogType::kCompensation: {
        auto& info = out->txns[rec.txn_id];
        info.last_lsn = rec.lsn;
        info.undo_next =
            rec.IsClr() ? rec.undo_next_lsn : rec.lsn;
        if (rec.IsRedoable() && rec.page_id != kInvalidPageId) {
          out->dpt.emplace(rec.page_id, rec.lsn);
          PageLogIndex::AppendToChain(&out->chains, rec.page_id, rec.lsn);
        }
        break;
      }
      case LogType::kPageIndex: {
        // Merge a persisted chunk into the chains being reconstructed. The
        // union of the chunks (entries >= checkpoint-time recLSN) and the
        // scan-appended tail covers [recLSN, end-of-log] for every DPT page.
        ARIES_RETURN_NOT_OK(
            PageLogIndex::ParseChunk(rec.payload, &out->chains));
        break;
      }
      case LogType::kCommit: {
        out->txns[rec.txn_id].committed = true;
        out->txns[rec.txn_id].last_lsn = rec.lsn;
        break;
      }
      case LogType::kAbort: {
        auto& info = out->txns[rec.txn_id];
        info.last_lsn = rec.lsn;
        if (info.undo_next == kNullLsn) info.undo_next = rec.prev_lsn;
        break;
      }
      case LogType::kEnd: {
        out->txns.erase(rec.txn_id);
        ended.insert(rec.txn_id);
        break;
      }
      default:
        break;
    }
  }
  out->end_of_log = reader.position();
  return Status::OK();
}

Status RecoveryManager::RedoPass(const AnalysisResult& ar, RestartStats* stats) {
  if (ar.dpt.empty()) return Status::OK();
  Lsn redo_lsn = kNullLsn;
  for (auto& [page, rec_lsn] : ar.dpt) {
    if (redo_lsn == kNullLsn || rec_lsn < redo_lsn) redo_lsn = rec_lsn;
  }
  if (stats != nullptr) stats->redo_start = redo_lsn;

  LogManager::Reader reader(ctx_->log, redo_lsn);
  LogRecord rec;
  while (true) {
    Status s = reader.Next(&rec);
    if (s.IsNotFound()) break;
    ARIES_RETURN_NOT_OK(s);
    if (!rec.IsRedoable() || rec.page_id == kInvalidPageId) continue;
    if (stats != nullptr) stats->redo_records++;
    auto it = ar.dpt.find(rec.page_id);
    if (it == ar.dpt.end() || rec.lsn < it->second) {
      if (ctx_->metrics != nullptr) {
        ctx_->metrics->redo_records_skipped.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    auto fetched = ctx_->pool->FetchPage(rec.page_id, LatchMode::kExclusive);
    if (!fetched.ok()) {
      if (fetched.status().code() != Code::kCorruption) {
        return fetched.status();
      }
      // Torn on-disk image: rebuild the page from the log. RepairPage rolls
      // it fully forward, so this record and every later one for the page
      // is already covered — move on.
      ARIES_RETURN_NOT_OK(RepairPage(rec.page_id));
      if (stats != nullptr) stats->torn_pages_repaired++;
      continue;
    }
    PageGuard page = std::move(fetched).value();
    if (page.view().page_lsn() >= rec.lsn) {
      if (ctx_->metrics != nullptr) {
        ctx_->metrics->redo_records_skipped.fetch_add(1, std::memory_order_relaxed);
      }
      continue;  // effect already on the page
    }
    ResourceManager* rm = Rm(rec.rm);
    if (rm == nullptr) {
      return Status::Corruption("no RM registered for redo: " + rec.ToString());
    }
    ARIES_RETURN_NOT_OK(rm->Redo(rec, page.view()));
    page.MarkDirty(rec.lsn);
    if (stats != nullptr) stats->redo_applied++;
    if (ctx_->metrics != nullptr) {
      ctx_->metrics->redo_records_applied.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

Status RecoveryManager::UndoOne(Transaction* txn, const LogRecord& rec) {
  ResourceManager* rm = Rm(rec.rm);
  if (rm == nullptr) {
    return Status::Corruption("no RM registered for undo: " + rec.ToString());
  }
  if (ctx_->metrics != nullptr) {
    ctx_->metrics->undo_records.fetch_add(1, std::memory_order_relaxed);
  }
  return rm->Undo(txn, rec);
}

Status RecoveryManager::UndoTransaction(Transaction* txn, Lsn stop_at) {
  while (txn->undo_next_lsn() != kNullLsn && txn->undo_next_lsn() > stop_at) {
    LogRecord rec;
    ARIES_RETURN_NOT_OK(ctx_->log->ReadRecord(txn->undo_next_lsn(), &rec));
    if (rec.IsClr()) {
      txn->set_undo_next_lsn(rec.undo_next_lsn);
    } else if (rec.type == LogType::kUpdate) {
      ARIES_RETURN_NOT_OK(UndoOne(txn, rec));
      // The CLR written by UndoOne already advanced undo_next to
      // rec.prev_lsn via AppendTxnLog; assert-equivalent safety net:
      if (txn->undo_next_lsn() >= rec.lsn) {
        txn->set_undo_next_lsn(rec.prev_lsn);
      }
    } else {
      // abort / commit markers: follow the chain.
      txn->set_undo_next_lsn(rec.prev_lsn);
    }
  }
  return Status::OK();
}

Status RecoveryManager::UndoPass(const AnalysisResult& ar, RestartStats* stats) {
  // Adopt losers into the transaction table.
  std::vector<Transaction*> losers;
  for (auto& [id, info] : ar.txns) {
    if (info.committed) continue;  // winner missing only its end record
    Transaction* txn = ctx_->txns->AdoptRestored(id, info.last_lsn, info.undo_next);
    losers.push_back(txn);
  }
  if (stats != nullptr) stats->loser_txns = losers.size();

  // Single backward sweep: repeatedly undo the record with the largest LSN
  // across all losers (reverse chronological order, paper §1.2).
  while (true) {
    Transaction* next = nullptr;
    for (Transaction* t : losers) {
      if (t->undo_next_lsn() == kNullLsn) continue;
      if (next == nullptr || t->undo_next_lsn() > next->undo_next_lsn()) {
        next = t;
      }
    }
    if (next == nullptr) break;
    if (test_stop_undo_after_ >= 0) {
      if (test_stop_undo_after_ == 0) {
        test_stop_undo_after_ = -1;
        return Status::IOError("injected crash during restart undo");
      }
      --test_stop_undo_after_;
    }
    LogRecord rec;
    ARIES_RETURN_NOT_OK(ctx_->log->ReadRecord(next->undo_next_lsn(), &rec));
    if (stats != nullptr) stats->undo_records++;
    if (rec.IsClr()) {
      next->set_undo_next_lsn(rec.undo_next_lsn);
    } else if (rec.type == LogType::kUpdate) {
      ARIES_RETURN_NOT_OK(UndoOne(next, rec));
      if (next->undo_next_lsn() >= rec.lsn) {
        next->set_undo_next_lsn(rec.prev_lsn);
      }
    } else {
      next->set_undo_next_lsn(rec.prev_lsn);
    }
  }
  for (Transaction* t : losers) {
    ARIES_RETURN_NOT_OK(ctx_->txns->EndTransaction(t, TxnState::kAborted));
  }
  // Winners that committed but lack an end record just get forgotten.
  for (auto& [id, info] : ar.txns) {
    if (info.committed) ctx_->txns->Forget(id);
  }
  return Status::OK();
}

Status RecoveryManager::RollForwardPage(PageId page, Lsn from) {
  ARIES_RETURN_NOT_OK(ctx_->log->FlushAll());
  LogManager::Reader reader(ctx_->log, from);
  LogRecord rec;
  while (true) {
    Status s = reader.Next(&rec);
    if (s.IsNotFound()) break;
    ARIES_RETURN_NOT_OK(s);
    if (!rec.IsRedoable() || rec.page_id != page) continue;
    ARIES_ASSIGN_OR_RETURN(PageGuard guard,
                           ctx_->pool->FetchPage(page, LatchMode::kExclusive));
    if (guard.view().page_lsn() >= rec.lsn) continue;
    ResourceManager* rm = Rm(rec.rm);
    if (rm == nullptr) {
      return Status::Corruption("no RM for media redo: " + rec.ToString());
    }
    ARIES_RETURN_NOT_OK(rm->Redo(rec, guard.view()));
    guard.MarkDirty(rec.lsn);
  }
  return Status::OK();
}

Status RecoveryManager::RebuildPageImage(PageId page, char* buf) {
  ARIES_TRACE_SPAN(span, "recovery.rebuild_page", TraceCat::kRecovery, page);
  if (ctx_->disk == nullptr) {
    return Status::Corruption("page " + std::to_string(page) +
                              " checksum mismatch (no disk for repair)");
  }
  const size_t ps = ctx_->disk->page_size();
  std::memset(buf, 0, ps);
  PageView v(buf, ps);
  if (page < kSpaceMapPages) {
    // Map pages were formatted before logging existed; recreate that base
    // image so the logged bit flips replay on top of it.
    SpaceManager::FormatMapPage(v, page);
  } else {
    // Everything else rebuilds from a zeroed page via its format record —
    // which reads the page id from the page itself, so stamp it.
    v.set_page_id(page);
  }
  // Replay the page's full history. Page-LSN idempotence makes this safe to
  // run concurrently with normal traffic on *other* pages: every redo below
  // touches only this private buffer, and the caller guarantees no new
  // records can be appended for this page while it is quarantined.
  LogManager::Reader reader(ctx_->log, kLogFilePrologue);
  LogRecord rec;
  while (true) {
    Status s = reader.Next(&rec);
    if (s.IsNotFound()) break;  // end of log (or torn tail)
    ARIES_RETURN_NOT_OK(s);
    if (!rec.IsRedoable() || rec.page_id != page) continue;
    if (v.page_lsn() >= rec.lsn) continue;
    ResourceManager* rm = Rm(rec.rm);
    if (rm == nullptr) {
      return Status::Corruption("no RM for media redo: " + rec.ToString());
    }
    ARIES_RETURN_NOT_OK(rm->Redo(rec, v));
    v.set_page_lsn(rec.lsn);
  }
  if (page >= kSpaceMapPages && v.type() == PageType::kInvalid) {
    // The corrupt on-disk image was non-blank, yet the log holds no format
    // record for the page: its history is gone (truncated log). Refusing
    // here is what keeps repair from silently serving an empty page.
    return Status::Corruption("page " + std::to_string(page) +
                              " unrepairable: log holds no history");
  }
  // WAL rule: the rebuilt image must not reach disk ahead of the log records
  // it embodies.
  ARIES_RETURN_NOT_OK(ctx_->log->FlushTo(v.page_lsn()));
  uint32_t crc = crc32c::Value(buf + 4, ps - 4);
  v.set_checksum(crc32c::Mask(crc));
  return ctx_->disk->WritePage(page, buf);
}

Status RecoveryManager::RepairPage(PageId page) {
  // Drop any cached corrupt copy so the rebuilt image is what readers see.
  ARIES_RETURN_NOT_OK(ctx_->pool->DiscardPage(page));
  std::string buf(ctx_->pool->page_size(), '\0');
  ARIES_RETURN_NOT_OK(RebuildPageImage(page, buf.data()));
  if (ctx_->metrics != nullptr) {
    ctx_->metrics->torn_pages_repaired.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status RecoveryManager::Restart(RestartStats* stats) {
  // Always have a stats object so pass timing needs no null checks; copy out
  // to the caller's on every exit (including mid-restart failures).
  RestartStats local;
  if (stats == nullptr) stats = &local;
  const uint64_t t_start = MonotonicNowNs();
  ARIES_TRACE_SPAN(restart_span, "recovery.restart", TraceCat::kRecovery, 0);

  Lsn start = kLogFilePrologue;
  auto master = ctx_->log->ReadMaster();
  if (master.ok()) start = master.value();

  AnalysisResult ar;
  {
    ARIES_TRACE_SPAN(span, "recovery.analysis", TraceCat::kRecovery, start);
    uint64_t t0 = MonotonicNowNs();
    Status s = Analyze(start, &ar, stats);
    stats->analysis_us = (MonotonicNowNs() - t0) / 1000;
    ARIES_RETURN_NOT_OK(s);
  }
  // Seed the live page-log index with the reconstructed chains so the
  // trailing checkpoint (and every later one) persists a correct index;
  // undo's CLR appends extend it via the WAL append observer.
  page_index_.Adopt(std::move(ar.chains));
  {
    ARIES_TRACE_SPAN(span, "recovery.redo", TraceCat::kRecovery, 0);
    uint64_t t0 = MonotonicNowNs();
    Status s = RedoPass(ar, stats);
    stats->redo_us = (MonotonicNowNs() - t0) / 1000;
    ARIES_RETURN_NOT_OK(s);
  }
  {
    ARIES_TRACE_SPAN(span, "recovery.undo", TraceCat::kRecovery, 0);
    uint64_t t0 = MonotonicNowNs();
    Status s = UndoPass(ar, stats);
    stats->undo_us = (MonotonicNowNs() - t0) / 1000;
    ARIES_RETURN_NOT_OK(s);
  }
  Status s = TakeCheckpoint();
  stats->total_us = (MonotonicNowNs() - t_start) / 1000;
  return s;
}

Status RecoveryManager::RestartInstant(RestartStats* stats) {
  RestartStats local;
  if (stats == nullptr) stats = &local;
  stats->instant = true;
  const uint64_t t_start = MonotonicNowNs();
  ARIES_TRACE_SPAN(restart_span, "recovery.restart", TraceCat::kRecovery, 0);

  Lsn start = kLogFilePrologue;
  auto master = ctx_->log->ReadMaster();
  if (master.ok()) start = master.value();

  AnalysisResult ar;
  {
    ARIES_TRACE_SPAN(span, "recovery.analysis", TraceCat::kRecovery, start);
    uint64_t t0 = MonotonicNowNs();
    Status s = Analyze(start, &ar, stats);
    stats->analysis_us = (MonotonicNowNs() - t0) / 1000;
    ARIES_RETURN_NOT_OK(s);
  }
  // Freeze the reconstructed chains for LazyRedoPage — immutable until the
  // next restart, so lazy replays read them without locking — and seed the
  // live index so post-restart checkpoints persist a correct one.
  restart_chains_ = ar.chains;
  page_index_.Adopt(std::move(ar.chains));

  // Instead of the sequential redo pass, schedule every DPT page for
  // first-touch replay. From here on any FetchPage miss on one of these
  // pages runs LazyRedoPage inside the fetch quarantine.
  for (auto& [page, rec_lsn] : ar.dpt) {
    if (stats->redo_start == kNullLsn || rec_lsn < stats->redo_start) {
      stats->redo_start = rec_lsn;
    }
  }
  ctx_->pool->MarkPendingRedo(ar.dpt);
  stats->lazy_pages_scheduled = ar.dpt.size();

  // Loser undo runs eagerly — bounded by loser activity, not log length.
  // Its page fetches go through the lazy-redo path, so each touched page is
  // rolled forward on demand before the undo applies on top, exactly the
  // state the classic redo pass would have produced.
  {
    ARIES_TRACE_SPAN(span, "recovery.undo", TraceCat::kRecovery, 0);
    uint64_t t0 = MonotonicNowNs();
    Status s = UndoPass(ar, stats);
    stats->undo_us = (MonotonicNowNs() - t0) / 1000;
    ARIES_RETURN_NOT_OK(s);
  }
  // The checkpoint's DPT snapshot includes the still-pending pages (the
  // pool reports them with their scheduled recLSN), so a crash *during*
  // instant restart re-marks them on the next open — nested crashes
  // converge to the same state as a classic restart.
  Status s = TakeCheckpoint();
  stats->total_us = (MonotonicNowNs() - t_start) / 1000;
  return s;
}

Status RecoveryManager::LazyRedoPage(PageId page, char* buf, Lsn rec_lsn,
                                     Lsn* first_applied) {
  ARIES_TRACE_SPAN(span, "recovery.lazy_replay", TraceCat::kRecovery, page);
  *first_applied = kNullLsn;
  PageView v(buf, ctx_->pool->page_size());
  if (v.type() == PageType::kInvalid && page < kSpaceMapPages) {
    // A map page that never reached disk: recreate the pre-log base image so
    // the logged bit flips replay on top of it (as RebuildPageImage does).
    // Other blank pages replay as-is — classic redo also formats them from
    // the zeroed image, and lazy replay must stay byte-identical to it (so
    // no set_page_id here, unlike the repair path).
    std::memset(buf, 0, ctx_->pool->page_size());
    SpaceManager::FormatMapPage(v, page);
  }
  auto it = restart_chains_.find(page);
  // The chain must cover [rec_lsn, crash]: its first entry is the record
  // that dirtied the page. Anything else means the index is untrustworthy
  // for this page — fall back to the (slow, always-correct) full scan.
  bool use_chain = it != restart_chains_.end() && !it->second.empty() &&
                   it->second.front() <= rec_lsn;
  if (use_chain) {
    for (Lsn lsn : it->second) {
      if (v.page_lsn() >= lsn) continue;  // effect already on the image
      LogRecord rec;
      Status s = ctx_->log->ReadRecord(lsn, &rec);
      if (!s.ok() || !rec.IsRedoable() || rec.page_id != page) {
        use_chain = false;  // stale / corrupt chain entry
        break;
      }
      ResourceManager* rm = Rm(rec.rm);
      if (rm == nullptr) {
        return Status::Corruption("no RM for lazy redo: " + rec.ToString());
      }
      ARIES_RETURN_NOT_OK(rm->Redo(rec, v));
      if (*first_applied == kNullLsn) *first_applied = lsn;
      v.set_page_lsn(rec.lsn);
    }
  }
  if (!use_chain) {
    if (ctx_->metrics != nullptr) {
      ctx_->metrics->lazy_chain_fallbacks.fetch_add(1,
                                                    std::memory_order_relaxed);
    }
    // Page-LSN idempotence makes re-applying records the chain path already
    // replayed a no-op, so resuming with a scan mid-way is safe.
    Lsn from = rec_lsn == kNullLsn ? kLogFilePrologue : rec_lsn;
    LogManager::Reader reader(ctx_->log, from);
    LogRecord rec;
    while (true) {
      Status s = reader.Next(&rec);
      if (s.IsNotFound()) break;
      ARIES_RETURN_NOT_OK(s);
      if (!rec.IsRedoable() || rec.page_id != page) continue;
      if (v.page_lsn() >= rec.lsn) continue;
      ResourceManager* rm = Rm(rec.rm);
      if (rm == nullptr) {
        return Status::Corruption("no RM for lazy redo: " + rec.ToString());
      }
      ARIES_RETURN_NOT_OK(rm->Redo(rec, v));
      if (*first_applied == kNullLsn) *first_applied = rec.lsn;
      v.set_page_lsn(rec.lsn);
    }
  }
  return Status::OK();
}

}  // namespace ariesim
