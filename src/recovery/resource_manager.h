// Resource-manager dispatch: recovery interprets log records through the RM
// that wrote them (meta / heap / btree), keeping redo page-oriented and
// letting each RM choose page-oriented vs logical undo (paper §3).
#pragma once

#include "buffer/buffer_pool.h"
#include "common/status.h"
#include "txn/transaction.h"
#include "wal/log_record.h"

namespace ariesim {

class ResourceManager {
 public:
  virtual ~ResourceManager() = default;

  /// Reapply the effect of `rec` to `page` (already X-latched; the caller
  /// verified page_LSN < rec.lsn and will stamp page_LSN afterwards).
  /// Must be page-oriented: no other page may be touched.
  virtual Status Redo(const LogRecord& rec, PageView page) = 0;

  /// Undo `rec` on behalf of the rolling-back `txn`. The RM writes the
  /// CLR(s) (and, for logical undo needing an SMO, regular records inside a
  /// nested top action anchored at rec.lsn) and applies the inverse.
  virtual Status Undo(Transaction* txn, const LogRecord& rec) = 0;
};

}  // namespace ariesim
