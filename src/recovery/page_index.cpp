#include "recovery/page_index.h"

#include <algorithm>

#include "util/coding.h"

namespace ariesim {

void PageLogIndex::Note(PageId page, Lsn lsn) {
  std::lock_guard<std::mutex> lk(mu_);
  AppendToChain(&chains_, page, lsn);
}

void PageLogIndex::Prune(const std::vector<std::pair<PageId, Lsn>>& dpt) {
  std::unordered_map<PageId, Lsn> rec_lsns;
  rec_lsns.reserve(dpt.size());
  for (const auto& [page, rec_lsn] : dpt) {
    // A page can appear twice (resident dirty + in-flight write-back, or a
    // pending-redo shadow); keep the oldest recLSN — pruning too little is
    // only wasted bytes, pruning too much loses redo history.
    auto [it, inserted] = rec_lsns.emplace(page, rec_lsn);
    if (!inserted && rec_lsn < it->second) it->second = rec_lsn;
  }
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = chains_.begin(); it != chains_.end();) {
    auto dit = rec_lsns.find(it->first);
    if (dit == rec_lsns.end()) {
      it = chains_.erase(it);
      continue;
    }
    std::vector<Lsn>& chain = it->second;
    auto keep = std::lower_bound(chain.begin(), chain.end(), dit->second);
    chain.erase(chain.begin(), keep);
    if (chain.empty()) {
      it = chains_.erase(it);
    } else {
      ++it;
    }
  }
}

void PageLogIndex::Adopt(PageLsnChains chains) {
  std::lock_guard<std::mutex> lk(mu_);
  chains_ = std::move(chains);
}

std::vector<std::string> PageLogIndex::SerializeChunks(size_t max_bytes) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> chunks;
  std::string cur;
  uint32_t cur_pages = 0;
  cur.resize(4);  // n_pages placeholder
  auto seal = [&]() {
    if (cur_pages == 0) return;
    EncodeFixed32(cur.data(), cur_pages);
    chunks.push_back(std::move(cur));
    cur.clear();
    cur.resize(4);
    cur_pages = 0;
  };
  for (const auto& [page, chain] : chains_) {
    size_t i = 0;
    while (i < chain.size()) {
      // A group needs its 8-byte header plus at least one LSN; chains are
      // ascending, so entries after the first are stored as varint deltas.
      if (cur.size() + 8 + kMaxVarint64Bytes > max_bytes) {
        seal();
        continue;
      }
      PutFixed32(&cur, page);
      size_t count_pos = cur.size();
      PutFixed32(&cur, 0);  // patched once the group is closed
      uint32_t took = 0;
      Lsn prev = 0;
      while (i < chain.size() && cur.size() + kMaxVarint64Bytes <= max_bytes) {
        PutVarint64(&cur, took == 0 ? chain[i] : chain[i] - prev);
        prev = chain[i];
        ++took;
        ++i;
      }
      EncodeFixed32(cur.data() + count_pos, took);
      ++cur_pages;
      if (i < chain.size()) seal();  // chain continues in the next chunk
    }
  }
  seal();
  return chunks;
}

Status PageLogIndex::ParseChunk(std::string_view payload, PageLsnChains* out) {
  if (payload.size() < 4) {
    return Status::Corruption("page-index chunk shorter than its header");
  }
  BufferReader r(payload.data(), payload.size());
  uint32_t n_pages = r.GetFixed32();
  for (uint32_t p = 0; p < n_pages; ++p) {
    PageId page = r.GetFixed32();
    uint32_t n_lsns = r.GetFixed32();
    if (!r.ok()) {
      return Status::Corruption("page-index chunk truncated (page header)");
    }
    std::vector<Lsn>& chain = (*out)[page];
    Lsn lsn = 0;
    for (uint32_t i = 0; i < n_lsns; ++i) {
      // First entry of a group is absolute, the rest are ascending deltas.
      uint64_t v = r.GetVarint64();
      if (!r.ok()) {
        return Status::Corruption("page-index chunk truncated (lsn chain)");
      }
      lsn = (i == 0) ? v : lsn + v;
      if (chain.empty() || chain.back() < lsn) {
        chain.push_back(lsn);
      } else if (chain.back() > lsn) {
        // Out-of-order merge (a later checkpoint's chunk replaying entries
        // the tail scan already appended): sorted insert, dropping dups.
        auto pos = std::lower_bound(chain.begin(), chain.end(), lsn);
        if (pos == chain.end() || *pos != lsn) chain.insert(pos, lsn);
      }  // equal: duplicate, drop
    }
  }
  return Status::OK();
}

void PageLogIndex::AppendToChain(PageLsnChains* chains, PageId page, Lsn lsn) {
  std::vector<Lsn>& chain = (*chains)[page];
  if (chain.empty() || chain.back() < lsn) chain.push_back(lsn);
}

size_t PageLogIndex::pages() const {
  std::lock_guard<std::mutex> lk(mu_);
  return chains_.size();
}

size_t PageLogIndex::entries() const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t n = 0;
  for (const auto& [page, chain] : chains_) n += chain.size();
  return n;
}

}  // namespace ariesim
