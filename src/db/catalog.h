// Catalog: table / index metadata, persisted in a sidecar file rewritten
// atomically on DDL. DDL is not transactional in this engine (each DDL
// statement commits its page allocations and forces a checkpoint before the
// catalog file is updated); see DESIGN.md.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "common/types.h"

namespace ariesim {

struct TableMeta {
  ObjectId id = kInvalidObjectId;
  std::string name;
  uint32_t num_columns = 0;
  PageId first_page = kInvalidPageId;
};

struct IndexMeta {
  ObjectId id = kInvalidObjectId;
  std::string name;
  ObjectId table_id = kInvalidObjectId;
  uint32_t column = 0;
  bool unique = false;
  PageId root = kInvalidPageId;
  LockingProtocolKind protocol = LockingProtocolKind::kDataOnly;
};

class Catalog {
 public:
  explicit Catalog(std::string path) : path_(std::move(path)) {}

  Status Load();
  Status Save() const;

  ObjectId NextObjectId() { return next_id_++; }

  Status AddTable(TableMeta meta);
  Status AddIndex(IndexMeta meta);

  const TableMeta* FindTable(const std::string& name) const;
  const IndexMeta* FindIndex(const std::string& name) const;
  std::vector<const IndexMeta*> IndexesOf(ObjectId table_id) const;
  const std::map<std::string, TableMeta>& tables() const { return tables_; }
  const std::map<std::string, IndexMeta>& indexes() const { return indexes_; }

 private:
  std::string path_;
  ObjectId next_id_ = 1;
  std::map<std::string, TableMeta> tables_;
  std::map<std::string, IndexMeta> indexes_;
};

}  // namespace ariesim
