#include "db/catalog.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ariesim {

Status Catalog::Load() {
  std::ifstream in(path_);
  if (!in.good()) return Status::NotFound("no catalog at " + path_);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "next") {
      ls >> next_id_;
    } else if (kind == "table") {
      TableMeta t;
      ls >> t.id >> t.name >> t.num_columns >> t.first_page;
      tables_[t.name] = t;
    } else if (kind == "index") {
      IndexMeta i;
      int unique, proto;
      ls >> i.id >> i.name >> i.table_id >> i.column >> unique >> i.root >>
          proto;
      i.unique = unique != 0;
      i.protocol = static_cast<LockingProtocolKind>(proto);
      indexes_[i.name] = i;
    }
    if (!ls && kind != "#") {
      return Status::Corruption("bad catalog line: " + line);
    }
  }
  return Status::OK();
}

Status Catalog::Save() const {
  std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.good()) return Status::IOError("cannot write " + tmp);
    out << "# ariesim catalog\n";
    out << "next " << next_id_ << "\n";
    for (auto& [name, t] : tables_) {
      out << "table " << t.id << " " << t.name << " " << t.num_columns << " "
          << t.first_page << "\n";
    }
    for (auto& [name, i] : indexes_) {
      out << "index " << i.id << " " << i.name << " " << i.table_id << " "
          << i.column << " " << (i.unique ? 1 : 0) << " " << i.root << " "
          << static_cast<int>(i.protocol) << "\n";
    }
    out.flush();
    if (!out.good()) return Status::IOError("catalog write failed");
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::IOError("catalog rename failed");
  }
  return Status::OK();
}

Status Catalog::AddTable(TableMeta meta) {
  if (tables_.count(meta.name) != 0) {
    return Status::Duplicate("table exists: " + meta.name);
  }
  tables_[meta.name] = std::move(meta);
  return Save();
}

Status Catalog::AddIndex(IndexMeta meta) {
  if (indexes_.count(meta.name) != 0) {
    return Status::Duplicate("index exists: " + meta.name);
  }
  indexes_[meta.name] = std::move(meta);
  return Save();
}

const TableMeta* Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const IndexMeta* Catalog::FindIndex(const std::string& name) const {
  auto it = indexes_.find(name);
  return it == indexes_.end() ? nullptr : &it->second;
}

std::vector<const IndexMeta*> Catalog::IndexesOf(ObjectId table_id) const {
  std::vector<const IndexMeta*> out;
  for (auto& [name, i] : indexes_) {
    if (i.table_id == table_id) out.push_back(&i);
  }
  return out;
}

}  // namespace ariesim
