// Database: wires the engine together — disk manager, WAL, buffer pool,
// lock manager, transaction manager, recovery manager, space manager,
// record manager, catalog, tables and ARIES/IM indexes — and exposes crash
// simulation for recovery tests. This is the top of the public API; see
// examples/quickstart.cpp.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "btree/btree.h"
#include "buffer/buffer_pool.h"
#include "common/blackbox.h"
#include "common/context.h"
#include "common/health.h"
#include "common/metrics_sampler.h"
#include "common/trace.h"
#include "db/catalog.h"
#include "db/table.h"
#include "lock/lock_manager.h"
#include "record/record_manager.h"
#include "recovery/recovery_manager.h"
#include "storage/disk_manager.h"
#include "storage/space_manager.h"
#include "txn/transaction_manager.h"
#include "wal/log_manager.h"

namespace ariesim {

/// Point-in-time engine snapshot: every counter and histogram, the health
/// state, the last restart's per-pass stats and the tracer's occupancy.
/// Returned by Database::Stats(); ToJson() is what `.stats` in tools/ariesh
/// prints and what benches archive.
struct DatabaseStats {
  std::string metrics_json;  ///< Metrics::ToJson() — counters + histograms
  /// Commit critical-path attribution (PR 9): per-segment latency stats with
  /// share-of-total plus the accounting check against commit_latency. Schema
  /// in docs/OBSERVABILITY.md "Commit critical-path attribution".
  std::string commit_breakdown_json;
  /// Concurrency forensics (PR 5): lock-table snapshot, postmortem ring,
  /// contention tables, cycle-length distribution, watchdog state. Schema in
  /// docs/OBSERVABILITY.md.
  std::string locks_json;
  EngineHealth health = EngineHealth::kHealthy;
  std::string health_reason;
  RecoveryStats restart;  ///< zeroed if this incarnation ran no recovery
  TraceCounts trace;
  bool tracing_enabled = false;
  /// The previous incarnation's black-box record (annotated with this
  /// incarnation's restart outcome), or empty when none was found / the
  /// recorder is disabled. Emitted as `"last_incident"` (null when empty).
  /// See docs/OBSERVABILITY.md "Flight recorder".
  std::string last_incident_json;

  std::string ToJson() const;
};

class Database {
 public:
  /// Open (creating if needed) a database under directory `dir`. Runs ARIES
  /// restart recovery when a prior log exists (unless disabled in options).
  static Result<std::unique_ptr<Database>> Open(const std::string& dir,
                                                Options options = Options());
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // -- transactions --------------------------------------------------------
  Transaction* Begin();
  Status Commit(Transaction* txn);
  /// Lazy commit: locks are released before the commit record is durable;
  /// durability arrives with the next group-commit flush. A crash in the
  /// window may erase the transaction — atomically. Opt-in trade of the
  /// ACID "D" for latency; see docs/ARCHITECTURE.md "Group commit".
  Status CommitAsync(Transaction* txn);
  Status Rollback(Transaction* txn);
  Status RollbackToSavepoint(Transaction* txn, Lsn savepoint);

  // -- DDL -----------------------------------------------------------------
  Result<Table*> CreateTable(const std::string& name, uint32_t num_columns);
  /// Create an index on `column` of `table`; existing rows are indexed.
  /// `protocol` defaults to the option's index_locking.
  Result<BTree*> CreateIndex(const std::string& table, const std::string& name,
                             uint32_t column, bool unique);
  Result<BTree*> CreateIndexWithProtocol(const std::string& table,
                                         const std::string& name,
                                         uint32_t column, bool unique,
                                         LockingProtocolKind protocol);

  Table* GetTable(const std::string& name);
  BTree* GetIndex(const std::string& name);

  // -- instant restart (docs/ARCHITECTURE.md, "Instant restart") -----------
  /// Pages still carrying deferred redo debt (0 unless the database was
  /// opened with Options::instant_restart after a crash).
  size_t PendingRecoveryPages() { return pool_->PendingRedoCount(); }
  /// Block until every pending page has been recovered: waits for the
  /// background sweeper if one is running, then drains any remainder
  /// inline. Returns the first replay error (the debt stays scheduled).
  Status WaitForRecoveryDrain();

  // -- maintenance / test hooks ---------------------------------------------
  Status Checkpoint();
  /// Force one page to disk (simulates a buffer steal in recovery tests).
  Status FlushPage(PageId id);
  Status FlushAllPages();
  /// Crash simulation: discard all volatile state. The object becomes
  /// unusable; reopen the directory to run restart recovery.
  void SimulateCrash();
  /// Crash simulation that additionally leaves the on-disk files mid-write
  /// (a torn data page, or a truncated log tail) per `spec`. For
  /// Target::kDataPage the page must be fully materialized in the data
  /// file. See docs/FAULT_INJECTION.md.
  Status SimulateTornCrash(const TornCrashSpec& spec);

  /// Deterministic fault-injection hook shared by the disk manager, log
  /// manager and buffer pool of this database. Disarmed by default.
  FaultInjector* fault_injector() { return &fault_; }

  /// Current degradation state (see docs/ARCHITECTURE.md, "Engine health").
  /// kReadOnly / kFailed are one-way until the directory is reopened.
  EngineHealth Health() const { return health_.state(); }
  /// Why the engine degraded (empty while healthy).
  std::string HealthReason() const { return health_.reason(); }

  // -- observability (see docs/OBSERVABILITY.md) ----------------------------
  /// Structured snapshot of counters, histograms, health, restart stats and
  /// tracer occupancy.
  DatabaseStats Stats() const;
  /// The `locks_json` piece of Stats() on its own: lock-table snapshot,
  /// deadlock postmortems, lock/page contention tables, cycle-length
  /// distribution, and watchdog state as one JSON object.
  std::string LockForensicsJson() const;
  /// Turn the process-wide event tracer on/off. Near-zero cost while off;
  /// bounded per-thread ring buffers while on.
  void SetTracing(bool on);
  bool tracing() const;
  /// Write all buffered trace events as Chrome trace_event JSON, loadable in
  /// Perfetto (ui.perfetto.dev) or chrome://tracing. Returns NotSupported
  /// when built with -DARIESIM_TRACE=OFF.
  Status DumpTrace(const std::string& path);

  /// The background time-series sampler, or nullptr when
  /// Options::metrics_sample_interval_ms == 0 (the default — no thread is
  /// ever spawned then). See docs/OBSERVABILITY.md "Time-series sampler".
  MetricsSampler* sampler() { return sampler_.get(); }

  /// Force one flight-recorder snapshot now (trigger "manual"). Returns
  /// NotSupported when Options::blackbox is false. See docs/OBSERVABILITY.md
  /// "Flight recorder".
  Status CaptureIncident(const std::string& reason);
  /// The flight recorder, or nullptr when Options::blackbox is false.
  BlackBox* blackbox() { return blackbox_.get(); }
  /// The previous incarnation's annotated black-box record (empty if none).
  const std::string& last_incident_json() const { return last_incident_json_; }

  EngineContext* ctx() { return &ctx_; }
  const Catalog* catalog() const { return catalog_.get(); }
  Metrics& metrics() { return metrics_; }
  LockManager* locks() { return locks_.get(); }
  LogManager* wal() { return log_.get(); }
  BufferPool* pool() { return pool_.get(); }
  TransactionManager* txns() { return txns_.get(); }
  SpaceManager* space() { return space_.get(); }
  RecoveryManager* recovery() { return recovery_.get(); }
  const RestartStats& restart_stats() const { return restart_stats_; }
  const Options& options() const { return ctx_.options; }

 private:
  explicit Database(Options options);
  Status DoOpen(const std::string& dir);
  /// Wire BufferPool fetch-miss repair to RecoveryManager::RebuildPageImage
  /// (no-op unless Options::online_page_repair).
  void InstallOnlineRepair();
  /// Wire BufferPool pending-redo fetches to RecoveryManager::LazyRedoPage.
  void InstallLazyRedo();
  /// Fetch every pending page once (each successful fetch retires its debt).
  Status DrainPendingRedo();
  void StartSweeper();
  void StopSweeper();
  void SweeperLoop();
  Status MaybeAutoCheckpoint();
  Status LoadObjects();
  BTree* MaterializeIndex(const IndexMeta& meta);
  /// Create the flight recorder, annotate + reload the previous
  /// incarnation's record, install the trigger hooks and start the cadence
  /// thread. Called by Open() on a fully opened engine.
  void SetUpBlackBox();
  /// The engine-state fields of one black-box snapshot (everything after
  /// the BlackBox envelope), as a ','-prefixed JSON fragment.
  std::string BuildBlackBoxSnapshot(const char* trigger,
                                    const std::string& reason);

  Options options_;
  Metrics metrics_;
  HealthMonitor health_{&metrics_};
  EngineContext ctx_;
  std::string dir_;
  bool crashed_ = false;
  std::atomic<Lsn> last_auto_checkpoint_{0};

  // Declared before the components that hold a pointer to it so it outlives
  // them during destruction.
  FaultInjector fault_;

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<LockManager> locks_;
  std::unique_ptr<TransactionManager> txns_;
  std::unique_ptr<SpaceManager> space_;
  std::unique_ptr<RecoveryManager> recovery_;
  std::unique_ptr<RecordManager> records_;
  std::unique_ptr<BtreeResourceManager> btree_rm_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<MetricsSampler> sampler_;  // only when sampling is enabled
  std::unique_ptr<BlackBox> blackbox_;       // only when Options::blackbox
  std::string last_incident_json_;  // previous incarnation's record, annotated
  RestartStats restart_stats_;

  /// Background drain of the instant-restart redo debt (cold pages would
  /// otherwise carry first-touch recovery latency indefinitely).
  std::thread sweeper_;
  std::atomic<bool> sweeper_stop_{false};
  std::mutex sweep_mu_;
  std::condition_variable sweep_cv_;
  bool sweeper_done_ = false;

  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<ObjectId, std::unique_ptr<BTree>> trees_;
  std::map<std::string, ObjectId> index_names_;
};

}  // namespace ariesim
