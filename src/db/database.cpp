#include "db/database.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/clock.h"
#include "common/commit_breakdown.h"

namespace ariesim {

Database::Database(Options options) : options_(options) {}

Result<std::unique_ptr<Database>> Database::Open(const std::string& dir,
                                                 Options options) {
  std::unique_ptr<Database> db(new Database(options));
  ARIES_RETURN_NOT_OK(db->DoOpen(dir));
  // Time-series sampler last, and only on a fully opened engine: with the
  // default interval of 0 no MetricsSampler exists and no thread is spawned.
  if (options.metrics_sample_interval_ms > 0) {
    db->sampler_ = std::make_unique<MetricsSampler>(
        &db->metrics_, options.metrics_sample_interval_ms,
        options.metrics_log_path);
    db->sampler_->Start();
  }
  // Flight recorder, likewise on a fully opened engine only: annotates the
  // previous incarnation's record with the restart outcome, installs the
  // health-trip / flush-failure capture hooks and starts the cadence.
  if (options.blackbox) db->SetUpBlackBox();
  return db;
}

Status Database::DoOpen(const std::string& dir) {
  dir_ = dir;
  ::mkdir(dir.c_str(), 0755);

  ctx_.options = options_;
  ctx_.metrics = &metrics_;
  ctx_.health = &health_;

  disk_ = std::make_unique<DiskManager>(dir + "/data.db", options_.page_size,
                                        &metrics_, options_.sim_io_delay_us);
  disk_->SetFaultInjector(&fault_);
  disk_->SetRetryPolicy(options_.io_retry_attempts,
                        options_.io_retry_base_delay_us,
                        options_.io_retry_max_delay_us);
  ARIES_RETURN_NOT_OK(disk_->Open());
  bool fresh = disk_->PagesOnDisk() == 0;

  log_ = std::make_unique<LogManager>(dir + "/wal.log", &metrics_,
                                      options_.fsync_log,
                                      options_.log_buffer_size);
  log_->SetFaultInjector(&fault_);
  log_->SetHealthMonitor(&health_, options_.log_flush_failure_threshold);
  ARIES_RETURN_NOT_OK(log_->Open());
  log_->EnableGroupCommit(options_.wal_group_commit,
                          options_.wal_group_commit_delay_us);
  if (options_.wal_group_commit &&
      options_.wal_group_commit_mode == GroupCommitMode::kFlusher) {
    log_->StartFlusher();
  }
  pool_ = std::make_unique<BufferPool>(disk_.get(), log_.get(),
                                       options_.buffer_pool_frames, &metrics_,
                                       options_.verify_checksums);
  pool_->SetFaultInjector(&fault_);
  locks_ = std::make_unique<LockManager>(&metrics_);
  locks_->ConfigureWatchdog(options_.lock_watchdog_threshold_ms);
  txns_ = std::make_unique<TransactionManager>(log_.get(), locks_.get(),
                                               &metrics_);

  ctx_.pool = pool_.get();
  ctx_.disk = disk_.get();
  ctx_.log = log_.get();
  ctx_.locks = locks_.get();
  ctx_.txns = txns_.get();

  space_ = std::make_unique<SpaceManager>(&ctx_);
  ctx_.space = space_.get();

  recovery_ = std::make_unique<RecoveryManager>(&ctx_);
  ctx_.recovery = recovery_.get();
  txns_->SetRecovery(recovery_.get());
  // One observer, two consumers, both inside the append critical section:
  // the pool's DPT registration (closes the checkpoint ordering window) and
  // the per-page log index that instant restart replays from. Installed
  // here — after the recovery manager exists — and nothing appends log
  // records between the pool's construction and this point.
  if (options_.instant_restart) {
    // Instant restart additionally feeds the per-page log index the
    // checkpoints persist; in classic mode the index would never be
    // serialized, so skip the per-append bookkeeping entirely.
    log_->SetAppendObserver([pool = pool_.get(),
                             idx = recovery_->page_index()](PageId id,
                                                            Lsn lsn) {
      pool->NoteDirtyById(id, lsn);
      idx->Note(id, lsn);
    });
  } else {
    log_->SetAppendObserver([pool = pool_.get()](PageId id, Lsn lsn) {
      pool->NoteDirtyById(id, lsn);
    });
  }

  records_ = std::make_unique<RecordManager>(&ctx_);
  btree_rm_ = std::make_unique<BtreeResourceManager>(
      &ctx_, [this](ObjectId id) -> BTree* {
        auto it = trees_.find(id);
        return it == trees_.end() ? nullptr : it->second.get();
      });
  recovery_->RegisterRm(RmId::kMeta, space_.get());
  recovery_->RegisterRm(RmId::kHeap, records_.get());
  recovery_->RegisterRm(RmId::kBtree, btree_rm_.get());

  catalog_ = std::make_unique<Catalog>(dir + "/catalog");

  if (fresh) {
    ARIES_RETURN_NOT_OK(space_->Bootstrap());
    ARIES_RETURN_NOT_OK(pool_->FlushAll());
    ARIES_RETURN_NOT_OK(catalog_->Save());
    ARIES_RETURN_NOT_OK(recovery_->TakeCheckpoint());
    InstallOnlineRepair();
    return Status::OK();
  }

  ARIES_RETURN_NOT_OK(catalog_->Load());
  ARIES_RETURN_NOT_OK(LoadObjects());
  if (options_.recover_on_open && options_.instant_restart) {
    // Both fetch-miss handlers must be live *before* recovery begins:
    // loser undo's first-touch fetches replay per-page chains, and a torn
    // page met during one rebuilds in place (accounted as
    // pages_repaired_online, not torn_pages_repaired — there is no redo
    // pass to find it first).
    InstallOnlineRepair();
    InstallLazyRedo();
    const uint64_t t0 = MonotonicNowNs();
    ARIES_RETURN_NOT_OK(recovery_->RestartInstant(&restart_stats_));
    metrics_.instant_restart_open_us.store((MonotonicNowNs() - t0) / 1000,
                                           std::memory_order_relaxed);
    if (options_.instant_restart_sweep && pool_->PendingRedoCount() > 0) {
      StartSweeper();
    }
    return Status::OK();
  }
  if (options_.recover_on_open) {
    ARIES_RETURN_NOT_OK(recovery_->Restart(&restart_stats_));
  }
  // Installed only after restart so that restart-time torn-page repair keeps
  // its own path and accounting (RepairPage / torn_pages_repaired).
  InstallOnlineRepair();
  return Status::OK();
}

void Database::InstallOnlineRepair() {
  // Instant restart implies online repair: the lazy replay path is the only
  // thing that can meet a torn page (there is no restart-time redo sweep).
  if (!options_.online_page_repair && !options_.instant_restart) return;
  pool_->SetRepairHandler([this](PageId id, char* buf) {
    // Repair duration (success or failure — both end the page's outage).
    ScopedLatency timer(&metrics_.repair_latency);
    Status s = recovery_->RebuildPageImage(id, buf);
    if (s.ok()) {
      metrics_.pages_repaired_online.fetch_add(1, std::memory_order_relaxed);
    } else if (s.code() == Code::kCorruption) {
      // The log cannot reproduce the page: its data is gone. Refuse writes
      // from here on rather than risk compounding the loss.
      health_.Trip(EngineHealth::kReadOnly,
                   "unrepairable page " + std::to_string(id) + ": " +
                       s.message());
    }
    return s;
  });
}

void Database::InstallLazyRedo() {
  pool_->SetLazyRedoHandler(
      [this](PageId id, char* buf, Lsn rec_lsn, Lsn* first_applied) {
        return recovery_->LazyRedoPage(id, buf, rec_lsn, first_applied);
      });
}

Status Database::DrainPendingRedo() {
  PageId id = kInvalidPageId;
  while (pool_->NextPendingRedo(&id)) {
    // A successful fetch retires the page's debt as a side effect; the
    // guard is released immediately (shared mode: the sweep never blocks
    // writers for longer than the replay itself).
    auto fetched = pool_->FetchPage(id, LatchMode::kShared);
    ARIES_RETURN_NOT_OK(fetched.status());
  }
  return Status::OK();
}

void Database::StartSweeper() {
  sweeper_stop_.store(false, std::memory_order_release);
  sweeper_done_ = false;
  sweeper_ = std::thread([this] { SweeperLoop(); });
}

void Database::SweeperLoop() {
  int consecutive_failures = 0;
  PageId id = kInvalidPageId;
  bool drained = true;
  while (!sweeper_stop_.load(std::memory_order_acquire)) {
    if (!pool_->NextPendingRedo(&id)) break;
    auto fetched = pool_->FetchPage(id, LatchMode::kShared);
    if (fetched.ok()) {
      consecutive_failures = 0;
    } else if (++consecutive_failures > 64) {
      // Persistent replay failure (e.g. unrepairable page on a read-only
      // engine): stop burning the disk; the debt stays scheduled and
      // surfaces on the page's next first-touch fetch.
      drained = false;
      break;
    }
  }
  if (drained && !sweeper_stop_.load(std::memory_order_acquire) &&
      pool_->PendingRedoCount() == 0) {
    // Debt fully retired: checkpoint so the next restart starts clean.
    recovery_->TakeCheckpoint();
  }
  {
    std::lock_guard<std::mutex> lk(sweep_mu_);
    sweeper_done_ = true;
  }
  sweep_cv_.notify_all();
}

void Database::StopSweeper() {
  sweeper_stop_.store(true, std::memory_order_release);
  if (sweeper_.joinable()) sweeper_.join();
}

Status Database::WaitForRecoveryDrain() {
  if (sweeper_.joinable()) {
    std::unique_lock<std::mutex> lk(sweep_mu_);
    sweep_cv_.wait(lk, [this] { return sweeper_done_; });
  }
  // Finish whatever the sweeper left behind (it bails after persistent
  // failures, and tests run with the sweeper disabled entirely).
  return DrainPendingRedo();
}

BTree* Database::MaterializeIndex(const IndexMeta& meta) {
  auto proto =
      MakeLockingProtocol(meta.protocol, locks_.get(), meta.id,
                          meta.table_id, meta.unique, options_.lock_granularity);
  auto tree = std::make_unique<BTree>(&ctx_, meta.id, meta.table_id, meta.root,
                                      meta.unique, std::move(proto));
  BTree* raw = tree.get();
  trees_[meta.id] = std::move(tree);
  index_names_[meta.name] = meta.id;
  return raw;
}

Status Database::LoadObjects() {
  for (auto& [name, t] : catalog_->tables()) {
    auto heap = std::make_unique<HeapFile>(&ctx_, t.id, t.first_page);
    tables_[name] =
        std::make_unique<Table>(&ctx_, records_.get(), t, std::move(heap));
  }
  for (auto& [name, i] : catalog_->indexes()) {
    BTree* tree = MaterializeIndex(i);
    for (auto& [tname, table] : tables_) {
      if (table->meta().id == i.table_id) {
        table->AttachIndex(IndexHandle{i, tree});
      }
    }
  }
  return Status::OK();
}

Database::~Database() {
  // Sampler first: it reads metrics_ owned by this object and must not
  // outlive any component it observes. Takes the run's final sample.
  if (sampler_ != nullptr) sampler_->Stop();
  // The flight recorder's cadence likewise stops before teardown; after a
  // SimulateCrash it is already stopped and the incident record must stay.
  if (blackbox_ != nullptr) blackbox_->Stop();
  StopSweeper();
  // Detach the capture hooks: member destruction below tears the recorder
  // down before the log, and a flush inside ~LogManager must not reach a
  // dead BlackBox through them.
  auto detach_hooks = [this] {
    health_.SetTripObserver(nullptr);
    if (log_ != nullptr) log_->SetFlushFailureObserver(nullptr);
  };
  if (crashed_) {
    detach_hooks();
    return;
  }
  // Clean shutdown: checkpoint and flush so reopen needs no redo. Pages
  // still pending lazy redo are safe to leave: the checkpoint's DPT carries
  // their recLSNs, so the next open simply re-schedules them.
  if (recovery_ != nullptr) recovery_->TakeCheckpoint();
  if (pool_ != nullptr) pool_->FlushAll();
  // Final snapshot before the log closes: the on-disk record then says the
  // engine landed cleanly (trigger "clean_shutdown"), and any incident of
  // this incarnation rides along in the "incident" field.
  if (blackbox_ != nullptr) blackbox_->Capture("clean_shutdown", "");
  if (log_ != nullptr) log_->Close();
  detach_hooks();
}

Transaction* Database::Begin() {
  Transaction* txn = txns_->Begin();
  // Operation-phase commit-breakdown attribution: reset and bind the
  // thread's scratch accumulator so lock/latch waits between here and
  // Commit() are charged to this transaction (best-effort under
  // interleaving; exact for the common one-txn-per-thread pattern). The
  // scratch has thread lifetime, so the persistent binding cannot dangle.
  CommitBreakdown& bd = ThreadCommitBreakdown();
  bd.Reset();
  BindCommitBreakdown(&bd);
  return txn;
}

Status Database::Commit(Transaction* txn) {
  ARIES_RETURN_NOT_OK(txns_->Commit(txn));
  return MaybeAutoCheckpoint();
}

Status Database::CommitAsync(Transaction* txn) {
  ARIES_RETURN_NOT_OK(txns_->CommitAsync(txn));
  return MaybeAutoCheckpoint();
}

Status Database::MaybeAutoCheckpoint() {
  // Automatic fuzzy checkpointing: bound restart work by log growth.
  uint64_t interval = options_.checkpoint_interval_bytes;
  if (interval > 0) {
    Lsn now = log_->next_lsn();
    Lsn last = last_auto_checkpoint_.load(std::memory_order_relaxed);
    if (now - last > interval &&
        last_auto_checkpoint_.compare_exchange_strong(last, now)) {
      ARIES_RETURN_NOT_OK(recovery_->TakeCheckpoint());
    }
  }
  return Status::OK();
}

Status Database::Rollback(Transaction* txn) { return txns_->Rollback(txn); }

Status Database::RollbackToSavepoint(Transaction* txn, Lsn savepoint) {
  return txns_->RollbackToSavepoint(txn, savepoint);
}

Result<Table*> Database::CreateTable(const std::string& name,
                                     uint32_t num_columns) {
  ARIES_RETURN_NOT_OK(health_.CheckWritable());
  if (catalog_->FindTable(name) != nullptr) {
    return Status::Duplicate("table exists: " + name);
  }
  TableMeta meta;
  meta.id = catalog_->NextObjectId();
  meta.name = name;
  meta.num_columns = num_columns;
  Transaction* txn = Begin();
  auto first = HeapFile::Create(&ctx_, meta.id, txn);
  if (!first.ok()) {
    Rollback(txn);
    return first.status();
  }
  meta.first_page = first.value();
  ARIES_RETURN_NOT_OK(Commit(txn));
  ARIES_RETURN_NOT_OK(catalog_->AddTable(meta));
  ARIES_RETURN_NOT_OK(recovery_->TakeCheckpoint());
  auto heap = std::make_unique<HeapFile>(&ctx_, meta.id, meta.first_page);
  auto table =
      std::make_unique<Table>(&ctx_, records_.get(), meta, std::move(heap));
  Table* raw = table.get();
  tables_[name] = std::move(table);
  return raw;
}

Result<BTree*> Database::CreateIndex(const std::string& table,
                                     const std::string& name, uint32_t column,
                                     bool unique) {
  return CreateIndexWithProtocol(table, name, column, unique,
                                 options_.index_locking);
}

Result<BTree*> Database::CreateIndexWithProtocol(const std::string& table,
                                                 const std::string& name,
                                                 uint32_t column, bool unique,
                                                 LockingProtocolKind protocol) {
  ARIES_RETURN_NOT_OK(health_.CheckWritable());
  Table* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("no table " + table);
  if (catalog_->FindIndex(name) != nullptr) {
    return Status::Duplicate("index exists: " + name);
  }
  IndexMeta meta;
  meta.id = catalog_->NextObjectId();
  meta.name = name;
  meta.table_id = t->meta().id;
  meta.column = column;
  meta.unique = unique;
  meta.protocol = protocol;

  Transaction* txn = Begin();
  auto root = BTree::CreateRoot(&ctx_, txn, meta.id);
  if (!root.ok()) {
    Rollback(txn);
    return root.status();
  }
  meta.root = root.value();
  BTree* tree = MaterializeIndex(meta);

  // Backfill existing rows.
  std::vector<std::pair<Rid, std::string>> rows;
  Status s = t->heap()->ScanAll(&rows);
  if (s.ok()) {
    for (auto& [rid, data] : rows) {
      Row row;
      s = DecodeRow(data, &row);
      if (!s.ok()) break;
      if (column >= row.size()) {
        s = Status::InvalidArgument("index column out of range");
        break;
      }
      s = tree->Insert(txn, row[column], rid);
      if (!s.ok()) break;
    }
  }
  if (!s.ok()) {
    Rollback(txn);
    trees_.erase(meta.id);
    index_names_.erase(name);
    return s;
  }
  ARIES_RETURN_NOT_OK(Commit(txn));
  ARIES_RETURN_NOT_OK(catalog_->AddIndex(meta));
  ARIES_RETURN_NOT_OK(recovery_->TakeCheckpoint());
  t->AttachIndex(IndexHandle{meta, tree});
  return tree;
}

Table* Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

BTree* Database::GetIndex(const std::string& name) {
  auto it = index_names_.find(name);
  if (it == index_names_.end()) return nullptr;
  auto tit = trees_.find(it->second);
  return tit == trees_.end() ? nullptr : tit->second.get();
}

namespace {

// Newest tracer events embedded in one black-box snapshot. Bounds the
// record: ~96 B of JSON per event keeps the excerpt under ~25 KiB.
constexpr size_t kBlackBoxTraceEvents = 256;

// Shared by DatabaseStats::ToJson and the black-box recovery annotation so
// the two restart documents cannot drift apart.
void AppendRestartJson(const RestartStats& restart, std::string* out) {
  *out += "{\"analysis_records\":" + std::to_string(restart.analysis_records);
  *out += ",\"analysis_us\":" + std::to_string(restart.analysis_us);
  *out += ",\"redo_records\":" + std::to_string(restart.redo_records);
  *out += ",\"redo_applied\":" + std::to_string(restart.redo_applied);
  *out += ",\"redo_us\":" + std::to_string(restart.redo_us);
  *out += ",\"undo_records\":" + std::to_string(restart.undo_records);
  *out += ",\"undo_us\":" + std::to_string(restart.undo_us);
  *out += ",\"loser_txns\":" + std::to_string(restart.loser_txns);
  *out += ",\"torn_pages_repaired\":" +
          std::to_string(restart.torn_pages_repaired);
  *out += ",\"instant\":" + std::string(restart.instant ? "true" : "false");
  *out += ",\"lazy_pages_scheduled\":" +
          std::to_string(restart.lazy_pages_scheduled);
  *out += ",\"total_us\":" + std::to_string(restart.total_us);
  *out += "}";
}

}  // namespace

std::string DatabaseStats::ToJson() const {
  std::string out;
  out.reserve(metrics_json.size() + 512);
  out += "{\"metrics\":";
  out += metrics_json;
  out += ",\"commit_breakdown\":";
  out += commit_breakdown_json.empty() ? "{}" : commit_breakdown_json;
  out += ",\"health\":\"";
  out += EngineHealthName(health);
  out += "\",\"health_reason\":\"";
  // The reason is engine-generated prose; escape the two characters that
  // could break the JSON string.
  for (char c : health_reason) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\",\"restart\":";
  AppendRestartJson(restart, &out);
  out += ",\"last_incident\":";
  out += last_incident_json.empty() ? "null" : last_incident_json;
  out += ",\"trace\":{";
  out += "\"enabled\":" + std::string(tracing_enabled ? "true" : "false");
  out += ",\"recorded\":" + std::to_string(trace.recorded);
  out += ",\"dropped\":" + std::to_string(trace.dropped);
  out += ",\"rings\":" + std::to_string(trace.rings);
  out += "},\"locks\":";
  out += locks_json.empty() ? "{}" : locks_json;
  out += "}";
  return out;
}

std::string Database::LockForensicsJson() const {
  std::string out;
  out.reserve(2048);
  out += "{\"snapshot\":" + locks_->Snapshot().ToJson();
  out += ",\"postmortems\":[";
  bool first = true;
  for (const DeadlockPostmortem& pm : locks_->Postmortems()) {
    if (!first) out += ',';
    first = false;
    out += pm.ToJson();
  }
  out += "],\"contention\":[";
  first = true;
  for (const auto& e : locks_->TopContention(10)) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + e.key.ToString() + "\"";
    out += ",\"waits\":" + std::to_string(e.waits);
    out += ",\"wait_us\":" + std::to_string(e.wait_ns / 1000) + "}";
  }
  out += "],\"contention_dropped\":" +
         std::to_string(locks_->ContentionDropped());
  out += ",\"page_contention\":[";
  first = true;
  for (const auto& e : pool_->TopLatchContention(10)) {
    if (!first) out += ',';
    first = false;
    out += "{\"page\":" + std::to_string(e.key);
    out += ",\"waits\":" + std::to_string(e.waits);
    out += ",\"wait_us\":" + std::to_string(e.wait_ns / 1000) + "}";
  }
  out += "],\"page_contention_dropped\":" +
         std::to_string(pool_->LatchContentionDropped());
  out += ",\"cycle_lengths\":{";
  first = true;
  std::vector<uint64_t> lens = locks_->CycleLengthCounts();
  for (size_t i = 0; i < lens.size(); ++i) {
    if (lens[i] == 0) continue;
    if (!first) out += ',';
    first = false;
    out += "\"" + std::to_string(i) +
           (i == LockManager::kMaxTrackedCycleLen ? "+" : "") +
           "\":" + std::to_string(lens[i]);
  }
  out += "},\"watchdog\":{\"threshold_ms\":" +
         std::to_string(options_.lock_watchdog_threshold_ms);
  out += ",\"dumps\":" +
         std::to_string(
             metrics_.lock_watchdog_dumps.load(std::memory_order_relaxed));
  out += "}}";
  return out;
}

DatabaseStats Database::Stats() const {
  DatabaseStats s;
  s.metrics_json = metrics_.ToJson();
  s.commit_breakdown_json = metrics_.CommitBreakdownJson();
  s.locks_json = LockForensicsJson();
  s.health = health_.state();
  s.health_reason = health_.reason();
  s.restart = restart_stats_;
  s.trace = Tracer::Instance().Counts();
  s.tracing_enabled = Tracer::Instance().enabled();
  s.last_incident_json = last_incident_json_;
  return s;
}

Status Database::CaptureIncident(const std::string& reason) {
  if (blackbox_ == nullptr) {
    return Status::NotSupported("flight recorder disabled (Options::blackbox)");
  }
  return blackbox_->Capture("manual", reason);
}

std::string Database::BuildBlackBoxSnapshot(const char* /*trigger*/,
                                            const std::string& /*reason*/) {
  // Runs on any thread, possibly under the WAL flush mutex (flush-failure
  // trigger): only lock-free accessors of LogManager may be used, and no
  // surface below may wait on a thread that could be blocked in the WAL.
  std::string out;
  out.reserve(16384);
  out += ",\"health\":\"";
  out += EngineHealthName(health_.state());
  out += "\",\"health_reason\":\"";
  AppendJsonEscaped(health_.reason(), &out);
  out += "\",\"wal\":{\"durable_lsn\":" + std::to_string(log_->flushed_lsn());
  out += ",\"next_lsn\":" + std::to_string(log_->next_lsn());
  out += ",\"last_lsn\":" + std::to_string(log_->last_lsn());
  LogManager::BatchWindow w = log_->LastBatchWindow();
  out += ",\"last_batch\":{\"start_ns\":" + std::to_string(w.start_ns);
  out += ",\"write_done_ns\":" + std::to_string(w.write_done_ns);
  out += ",\"fsync_done_ns\":" + std::to_string(w.fsync_done_ns);
  out += "}},\"fault\":" + fault_.StateJson();
  out += ",\"restart\":";
  AppendRestartJson(restart_stats_, &out);
  out += ",\"commit_breakdown\":" + metrics_.CommitBreakdownJson();
  out += ",\"locks\":" + LockForensicsJson();
  // Bounded tracer excerpt: the newest events explain the incident; a full
  // dump is still available via DumpTrace while the process lives.
  std::string trace = Tracer::Instance().DumpJson(kBlackBoxTraceEvents);
  while (!trace.empty() && trace.back() == '\n') trace.pop_back();
  out += ",\"trace_excerpt\":" + trace;
  out += ",\"openmetrics\":\"";
  AppendJsonEscaped(metrics_.ToOpenMetrics(), &out);
  out += "\"";
  return out;
}

void Database::SetUpBlackBox() {
  const std::string path = dir_ + "/blackbox.json";
  blackbox_ = std::make_unique<BlackBox>(path, &metrics_);
  blackbox_->SetSnapshotBuilder(
      [this](const char* trigger, const std::string& reason) {
        return BuildBlackBoxSnapshot(trigger, reason);
      });

  // A leftover record means the previous incarnation did not get to write a
  // newer one — annotate it with what this restart did about it, rewrite it
  // atomically (so offline tooling sees crash + recovery as one document)
  // and keep it in memory as Stats() "last_incident" for this whole
  // incarnation.
  std::string prev;
  if (BlackBox::ReadFile(path, &prev).ok() && !prev.empty()) {
    std::map<std::string, std::string> fields;
    std::string err;
    if (ParseJson(prev, &fields, &err)) {
      std::string rec = "{\"mode\":\"";
      rec += restart_stats_.instant
                 ? "instant"
                 : (options_.recover_on_open ? "classic" : "none");
      rec += "\",\"health_after\":\"";
      rec += EngineHealthName(health_.state());
      rec += "\",\"stats\":";
      AppendRestartJson(restart_stats_, &rec);
      rec += "}";
      std::string annotated = BlackBox::SpliceField(prev, "recovery", rec);
      last_incident_json_ =
          blackbox_->WriteRaw(annotated).ok() ? std::move(annotated)
                                              : std::move(prev);
      // Breadcrumb embedded in every snapshot this incarnation writes, so
      // the prior incident stays on disk even after a cadence overwrite.
      auto field = [&fields](const char* key, const char* dflt) {
        auto it = fields.find(key);
        return it == fields.end() ? std::string(dflt) : it->second;
      };
      std::string summary = "{\"trigger\":\"";
      AppendJsonEscaped(field("trigger", "?"), &summary);
      summary += "\",\"reason\":\"";
      AppendJsonEscaped(field("reason", ""), &summary);
      summary += "\",\"ts_unix_ms\":" + field("ts_unix_ms", "0");
      summary += ",\"seq\":" + field("seq", "0") + "}";
      blackbox_->SetPreviousIncident(std::move(summary));
    }
    // An unparseable leftover is left as-is for offline inspection; the
    // next capture simply replaces it.
  }

  // Trigger hooks only on the fully opened engine: a trip during recovery
  // is already covered by the annotation above, and capturing from a
  // half-built engine would be worse than no capture.
  health_.SetTripObserver([this](EngineHealth, const std::string& reason) {
    blackbox_->Capture("health_trip", reason);
  });
  log_->SetFlushFailureObserver([this](const Status& s) {
    blackbox_->Capture("flush_failure", s.ToString());
  });
  blackbox_->StartPeriodic(options_.blackbox_interval_ms);
}

void Database::SetTracing(bool on) {
  if (on) {
    Tracer::Instance().Enable();
  } else {
    Tracer::Instance().Disable();
  }
}

bool Database::tracing() const { return Tracer::Instance().enabled(); }

Status Database::DumpTrace(const std::string& path) {
  return Tracer::Instance().Dump(path);
}

Status Database::Checkpoint() { return recovery_->TakeCheckpoint(); }

Status Database::FlushPage(PageId id) { return pool_->FlushPage(id); }

Status Database::FlushAllPages() { return pool_->FlushAll(); }

void Database::SimulateCrash() {
  // Stop the sampler: a "crashed" engine should produce no further samples.
  if (sampler_ != nullptr) sampler_->Stop();
  // Flight recorder: stop the cadence (nothing may overwrite the incident
  // record after this point), then force-capture the at-crash state while
  // the WAL tail and fault-injector state are still exactly as the crash
  // left them.
  if (blackbox_ != nullptr) {
    blackbox_->Stop();
    blackbox_->Capture("simulate_crash", "SimulateCrash()");
  }
  // The sweeper first: it drives FetchPage traffic (log appends via
  // checkpoint) that must not race the discard below.
  StopSweeper();
  // Drain the group-commit flusher before discarding the tail so no flush
  // races the discard. In-flight committers fail over to the leader path
  // and observe either durability or the discarded tail (an error — their
  // commits were never acknowledged).
  log_->StopFlusher();
  log_->DiscardUnflushed();
  pool_->DropAll();
  crashed_ = true;
}

Status Database::SimulateTornCrash(const TornCrashSpec& spec) {
  SimulateCrash();
  // Re-capture as a torn crash — before Disarm clears the spec, so the
  // fault fields still name the injected fault the postmortem must match.
  if (blackbox_ != nullptr) blackbox_->Capture("torn_crash", spec.ToString());
  // The next incarnation's device is healthy; only the files stay damaged.
  fault_.Disarm();
  switch (spec.target) {
    case TornCrashSpec::Target::kNone:
      return Status::OK();
    case TornCrashSpec::Target::kDataPage: {
      const std::string path = dir_ + "/data.db";
      int fd = ::open(path.c_str(), O_RDWR);
      if (fd < 0) {
        return Status::IOError("open " + path + ": " + std::strerror(errno));
      }
      const size_t ps = options_.page_size;
      struct stat st;
      if (::fstat(fd, &st) != 0) {
        ::close(fd);
        return Status::IOError("fstat " + path);
      }
      off_t off = static_cast<off_t>(spec.page_id) * static_cast<off_t>(ps);
      if (static_cast<uint64_t>(st.st_size) < static_cast<uint64_t>(off) + ps) {
        ::close(fd);
        return Status::InvalidArgument(
            "page " + std::to_string(spec.page_id) +
            " is not fully materialized on disk; cannot tear it");
      }
      // Keep the first keep_bytes of the page, scramble the rest — the torn
      // suffix of a half-written sector is unspecified garbage.
      size_t keep = std::min<size_t>(spec.keep_bytes, ps - 1);
      std::string junk(ps - keep, '\xAB');
      ssize_t n = ::pwrite(fd, junk.data(), junk.size(),
                           off + static_cast<off_t>(keep));
      bool ok = n == static_cast<ssize_t>(junk.size()) && ::fsync(fd) == 0;
      ::close(fd);
      if (!ok) return Status::IOError("tear page " + std::to_string(spec.page_id));
      return Status::OK();
    }
    case TornCrashSpec::Target::kLogTail: {
      const std::string path = dir_ + "/wal.log";
      uint64_t to = std::max<uint64_t>(spec.truncate_to, kLogFilePrologue);
      if (::truncate(path.c_str(), static_cast<off_t>(to)) != 0) {
        return Status::IOError("truncate " + path + " to " +
                               std::to_string(to) + ": " +
                               std::strerror(errno));
      }
      return Status::OK();
    }
  }
  return Status::InvalidArgument("bad torn-crash target");
}

}  // namespace ariesim
