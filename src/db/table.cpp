#include "db/table.h"

#include "common/health.h"
#include "recovery/recovery_manager.h"
#include "util/coding.h"

namespace ariesim {

std::string EncodeRow(const Row& row) {
  std::string out;
  PutFixed16(&out, static_cast<uint16_t>(row.size()));
  for (const auto& f : row) PutLengthPrefixed(&out, f);
  return out;
}

Status DecodeRow(std::string_view data, Row* row) {
  BufferReader r(data);
  uint16_t n = r.GetFixed16();
  row->clear();
  row->reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    row->emplace_back(r.GetLengthPrefixed());
  }
  if (!r.ok()) return Status::Corruption("bad row encoding");
  return Status::OK();
}

BTree* Table::index(const std::string& name) const {
  for (const auto& h : indexes_) {
    if (h.meta.name == name) return h.tree;
  }
  return nullptr;
}

Status Table::Insert(Transaction* txn, const Row& row, Rid* rid_out) {
  if (ctx_->health != nullptr) {
    ARIES_RETURN_NOT_OK(ctx_->health->CheckWritable());
  }
  if (row.size() != meta_.num_columns) {
    return Status::InvalidArgument("row has wrong arity");
  }
  for (const auto& h : indexes_) {
    if (h.meta.column >= row.size()) {
      return Status::InvalidArgument("index column out of range");
    }
    if (row[h.meta.column].size() > h.tree->MaxValueLen()) {
      return Status::InvalidArgument("key too long for index " + h.meta.name);
    }
  }
  Lsn savepoint = txn->Savepoint();
  ARIES_ASSIGN_OR_RETURN(Rid rid,
                         records_->InsertRecord(txn, heap_.get(), EncodeRow(row)));
  for (const auto& h : indexes_) {
    Status s = h.tree->Insert(txn, row[h.meta.column], rid);
    if (!s.ok()) {
      // Statement atomicity via ARIES partial rollback (§1.2): undo the
      // heap insert and any index inserts already performed, keep the
      // transaction alive.
      Status rb = ctx_->recovery->UndoTransaction(txn, savepoint);
      if (!rb.ok()) return rb;
      return s;
    }
  }
  if (rid_out != nullptr) *rid_out = rid;
  return Status::OK();
}

Status Table::Delete(Transaction* txn, Rid rid) {
  if (ctx_->health != nullptr) {
    ARIES_RETURN_NOT_OK(ctx_->health->CheckWritable());
  }
  // X lock first (no latches held), then read the row for the key deletes.
  ARIES_RETURN_NOT_OK(records_->LockRecord(txn, meta_.id, rid, LockMode::kX,
                                           LockDuration::kCommit,
                                           /*conditional=*/false));
  auto fetched = heap_->Fetch(rid);
  if (!fetched.ok()) return fetched.status();
  Row row;
  ARIES_RETURN_NOT_OK(DecodeRow(fetched.value(), &row));
  Lsn savepoint = txn->Savepoint();
  for (const auto& h : indexes_) {
    Status s = h.tree->Delete(txn, row[h.meta.column], rid);
    if (!s.ok()) {
      Status rb = ctx_->recovery->UndoTransaction(txn, savepoint);
      if (!rb.ok()) return rb;
      return s;
    }
  }
  Status s = heap_->Delete(txn, rid);
  if (!s.ok()) {
    Status rb = ctx_->recovery->UndoTransaction(txn, savepoint);
    if (!rb.ok()) return rb;
  }
  return s;
}

Status Table::Update(Transaction* txn, Rid rid, const Row& new_row) {
  if (ctx_->health != nullptr) {
    ARIES_RETURN_NOT_OK(ctx_->health->CheckWritable());
  }
  if (new_row.size() != meta_.num_columns) {
    return Status::InvalidArgument("row has wrong arity");
  }
  ARIES_RETURN_NOT_OK(records_->LockRecord(txn, meta_.id, rid, LockMode::kX,
                                           LockDuration::kCommit,
                                           /*conditional=*/false));
  auto fetched = heap_->Fetch(rid);
  if (!fetched.ok()) return fetched.status();
  Row old_row;
  ARIES_RETURN_NOT_OK(DecodeRow(fetched.value(), &old_row));

  Lsn savepoint = txn->Savepoint();
  auto fail = [&](Status s) {
    Status rb = ctx_->recovery->UndoTransaction(txn, savepoint);
    return rb.ok() ? s : rb;
  };
  for (const auto& h : indexes_) {
    const std::string& old_key = old_row[h.meta.column];
    const std::string& new_key = new_row[h.meta.column];
    if (old_key == new_key) continue;
    Status s = h.tree->Delete(txn, old_key, rid);
    if (!s.ok()) return fail(s);
    s = h.tree->Insert(txn, new_key, rid);
    if (!s.ok()) return fail(s);
  }
  Status s = heap_->Update(txn, rid, EncodeRow(new_row));
  if (!s.ok()) return fail(s);
  return Status::OK();
}

Status Table::FetchByKey(Transaction* txn, const std::string& index_name,
                         std::string_view key, std::optional<Row>* row,
                         Rid* rid_out) {
  row->reset();
  BTree* tree = index(index_name);
  if (tree == nullptr) return Status::NotFound("no index " + index_name);
  FetchResult res;
  ARIES_RETURN_NOT_OK(tree->Fetch(txn, key, FetchCond::kEq, &res));
  if (!res.found) return Status::OK();  // not-found state is lock-protected
  bool data_only = false;
  for (const auto& h : indexes_) {
    if (h.meta.name == index_name) {
      data_only = h.meta.protocol == LockingProtocolKind::kDataOnly;
    }
  }
  ARIES_ASSIGN_OR_RETURN(std::string data,
                         records_->FetchRecord(txn, heap_.get(), res.rid,
                                               /*already_locked=*/data_only));
  Row decoded;
  ARIES_RETURN_NOT_OK(DecodeRow(data, &decoded));
  *row = std::move(decoded);
  if (rid_out != nullptr) *rid_out = res.rid;
  return Status::OK();
}

Status Table::FetchByRid(Transaction* txn, Rid rid, std::optional<Row>* row) {
  row->reset();
  auto data = records_->FetchRecord(txn, heap_.get(), rid,
                                    /*already_locked=*/false);
  if (!data.ok()) {
    if (data.status().IsNotFound()) return Status::OK();
    return data.status();
  }
  Row decoded;
  ARIES_RETURN_NOT_OK(DecodeRow(data.value(), &decoded));
  *row = std::move(decoded);
  return Status::OK();
}

Status TableScan::Open(Transaction* txn, std::string_view start,
                       FetchCond cond) {
  ARIES_RETURN_NOT_OK(tree_->OpenScan(txn, start, cond, &cursor_, &first_));
  first_pending_ = !first_.eof && first_.found;
  return Status::OK();
}

Status TableScan::SetStop(std::string_view stop, bool inclusive) {
  return tree_->SetStop(&cursor_, stop, inclusive);
}

Status TableScan::Next(Transaction* txn, Row* row, Rid* rid, bool* done) {
  *done = false;
  FetchResult res;
  if (first_pending_) {
    first_pending_ = false;
    res = first_;
    // Respect the stop specification for the opening key too.
    if (cursor_.has_stop) {
      int cmp = res.value.compare(cursor_.stop_value);
      if (cursor_.stop_inclusive ? cmp > 0 : cmp >= 0) {
        *done = true;
        return Status::OK();
      }
    }
  } else {
    ARIES_RETURN_NOT_OK(tree_->FetchNext(txn, &cursor_, &res));
    if (!res.found) {
      *done = true;
      return Status::OK();
    }
  }
  std::optional<Row> fetched;
  ARIES_RETURN_NOT_OK(table_->FetchByRid(txn, res.rid, &fetched));
  if (!fetched.has_value()) {
    return Status::Corruption("scan: index key without record at " +
                              res.rid.ToString());
  }
  *row = std::move(*fetched);
  if (rid != nullptr) *rid = res.rid;
  return Status::OK();
}

}  // namespace ariesim
