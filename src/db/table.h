// Table: a heap file plus its indexes. Rows are vectors of string fields;
// each index covers one column. Statement-level atomicity is provided via
// ARIES partial rollback: every multi-step statement establishes a
// savepoint and rolls back to it on failure, leaving the transaction alive.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "db/catalog.h"
#include "record/heap_file.h"
#include "record/record_manager.h"

namespace ariesim {

using Row = std::vector<std::string>;

std::string EncodeRow(const Row& row);
Status DecodeRow(std::string_view data, Row* row);

struct IndexHandle {
  IndexMeta meta;
  BTree* tree = nullptr;
};

class Table {
 public:
  Table(EngineContext* ctx, RecordManager* records, TableMeta meta,
        std::unique_ptr<HeapFile> heap)
      : ctx_(ctx), records_(records), meta_(std::move(meta)),
        heap_(std::move(heap)) {}

  const TableMeta& meta() const { return meta_; }
  HeapFile* heap() { return heap_.get(); }
  void AttachIndex(IndexHandle h) { indexes_.push_back(std::move(h)); }
  const std::vector<IndexHandle>& indexes() const { return indexes_; }
  BTree* index(const std::string& name) const;

  /// Insert a row: record insert (commit X record lock) followed by a key
  /// insert into every index (instant X next-key locks). On failure the
  /// statement is rolled back to its savepoint.
  Status Insert(Transaction* txn, const Row& row, Rid* rid_out = nullptr);

  /// Delete the row at `rid`: commit X record lock, key deletes (commit X
  /// next-key locks), then the heap tombstone.
  Status Delete(Transaction* txn, Rid rid);

  /// Update the row at `rid` in place (the RID is stable): commit X record
  /// lock, delete+insert of every index key whose column changed, then the
  /// heap overwrite. Statement-atomic via savepoint. May fail kNoSpace when
  /// the new row does not fit the page.
  Status Update(Transaction* txn, Rid rid, const Row& new_row);

  /// Point lookup through an index (kEq). Under data-only locking the index
  /// fetch already locked the record, so the heap read is lock-free.
  Status FetchByKey(Transaction* txn, const std::string& index_name,
                    std::string_view key, std::optional<Row>* row,
                    Rid* rid_out = nullptr);

  /// Direct heap read (S commit record lock).
  Status FetchByRid(Transaction* txn, Rid rid, std::optional<Row>* row);

 private:
  EngineContext* ctx_;
  RecordManager* records_;
  TableMeta meta_;
  std::unique_ptr<HeapFile> heap_;
  std::vector<IndexHandle> indexes_;
};

/// Index range scan over a table: yields full rows.
class TableScan {
 public:
  TableScan(Table* table, BTree* tree) : table_(table), tree_(tree) {}

  /// Position at the first key satisfying (start, cond).
  Status Open(Transaction* txn, std::string_view start, FetchCond cond);
  Status SetStop(std::string_view stop, bool inclusive);
  /// Fetch the next row; *done=true at range end.
  Status Next(Transaction* txn, Row* row, Rid* rid, bool* done);

 private:
  Table* table_;
  BTree* tree_;
  ScanCursor cursor_;
  bool first_pending_ = false;
  FetchResult first_;
};

}  // namespace ariesim
