#include "lock/lock_forensics.h"

namespace ariesim {

namespace {

void AppendLockNameJson(const LockName& n, std::string* out) {
  *out += '"';
  *out += n.ToString();
  *out += '"';
}

void AppendRequestJson(const LockRequestInfo& r, std::string* out) {
  *out += "{\"txn\":" + std::to_string(r.txn);
  *out += ",\"mode\":\"";
  *out += LockModeName(r.mode);
  *out += "\",\"granted\":";
  *out += r.granted ? "true" : "false";
  if (r.converting) {
    *out += ",\"converting_to\":\"";
    *out += LockModeName(r.conv_target);
    *out += '"';
  }
  if (r.wait_us > 0 || (!r.granted || r.converting)) {
    *out += ",\"wait_us\":" + std::to_string(r.wait_us);
  }
  if (r.granted) {
    *out += ",\"grant_us\":" + std::to_string(r.grant_us);
  }
  *out += '}';
}

}  // namespace

std::string LockTableSnapshot::ToString() const {
  std::string out;
  for (const auto& q : queues) {
    out += q.name.ToString() + ":";
    for (const auto& r : q.requests) {
      out += " txn" + std::to_string(r.txn) + "/" + LockModeName(r.mode);
      if (r.granted) out += "*";
      if (r.converting) {
        out += "->" + std::string(LockModeName(r.conv_target)) + "(conv " +
               std::to_string(r.wait_us) + "us)";
      } else if (!r.granted) {
        out += "(wait " + std::to_string(r.wait_us) + "us)";
      }
    }
    out += "\n";
  }
  for (const auto& t : txns) {
    if (!t.blocked) continue;
    out += "txn" + std::to_string(t.txn) + " blocked " +
           std::to_string(t.blocked_us) + "us on " + t.blocked_on.ToString() +
           "/" + LockModeName(t.blocked_mode) + " (holds " +
           std::to_string(t.held) + ")\n";
  }
  for (const auto& e : edges) {
    out += "txn" + std::to_string(e.waiter) + " -> txn" +
           std::to_string(e.holder) + " on " + e.name.ToString() + "\n";
  }
  return out;
}

std::string LockTableSnapshot::ToJson() const {
  std::string out;
  out.reserve(256 + queues.size() * 128);
  out += "{\"captured_at_ns\":" + std::to_string(captured_at_ns);
  out += ",\"queues\":[";
  bool first = true;
  for (const auto& q : queues) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    AppendLockNameJson(q.name, &out);
    out += ",\"requests\":[";
    bool rf = true;
    for (const auto& r : q.requests) {
      if (!rf) out += ',';
      rf = false;
      AppendRequestJson(r, &out);
    }
    out += "]}";
  }
  out += "],\"txns\":[";
  first = true;
  for (const auto& t : txns) {
    if (!first) out += ',';
    first = false;
    out += "{\"txn\":" + std::to_string(t.txn);
    out += ",\"held\":" + std::to_string(t.held);
    out += ",\"blocked\":";
    out += t.blocked ? "true" : "false";
    if (t.blocked) {
      out += ",\"blocked_on\":";
      AppendLockNameJson(t.blocked_on, &out);
      out += ",\"blocked_mode\":\"";
      out += LockModeName(t.blocked_mode);
      out += "\",\"blocked_us\":" + std::to_string(t.blocked_us);
    }
    out += '}';
  }
  out += "],\"edges\":[";
  first = true;
  for (const auto& e : edges) {
    if (!first) out += ',';
    first = false;
    out += "{\"waiter\":" + std::to_string(e.waiter);
    out += ",\"holder\":" + std::to_string(e.holder);
    out += ",\"name\":";
    AppendLockNameJson(e.name, &out);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string LockTableSnapshot::ToDot() const {
  // Waits-for digraph. Blocked transactions are drawn filled; edges carry
  // the contested lock name. Parallel edges (one waiter blocked behind
  // several holders on one queue) are kept — they are real dependencies.
  std::string out = "digraph waits_for {\n";
  out += "  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  for (const auto& t : txns) {
    out += "  txn" + std::to_string(t.txn) + " [label=\"txn" +
           std::to_string(t.txn) + "\\nheld=" + std::to_string(t.held);
    if (t.blocked) {
      out += "\\nblocked " + std::to_string(t.blocked_us) + "us";
    }
    out += "\"";
    if (t.blocked) out += ", style=filled, fillcolor=lightyellow";
    out += "];\n";
  }
  for (const auto& e : edges) {
    out += "  txn" + std::to_string(e.waiter) + " -> txn" +
           std::to_string(e.holder) + " [label=\"" + e.name.ToString() +
           "\"];\n";
  }
  out += "}\n";
  return out;
}

std::string DeadlockPostmortem::Summary() const {
  std::string out = "cycle[len=" + std::to_string(cycle.size()) + "]";
  bool first = true;
  for (const auto& n : cycle) {
    out += first ? " " : " -> ";
    first = false;
    out += "txn" + std::to_string(n.txn) + "(";
    if (n.had_grant) {
      out += std::string(LockModeName(n.granted_mode)) + "->";
    }
    out += std::string(LockModeName(n.requested)) + " " + n.name.ToString() +
           ", waited " + std::to_string(n.wait_us) + "us)";
  }
  out += "; victim txn" + std::to_string(victim);
  return out;
}

std::string DeadlockPostmortem::ToJson() const {
  std::string out = "{\"seq\":" + std::to_string(seq);
  out += ",\"at_ns\":" + std::to_string(at_ns);
  out += ",\"wall_unix_us\":" + std::to_string(wall_unix_us);
  out += ",\"victim\":" + std::to_string(victim);
  out += ",\"victim_wait_us\":" + std::to_string(victim_wait_us);
  out += ",\"cycle\":[";
  bool first = true;
  for (const auto& n : cycle) {
    if (!first) out += ',';
    first = false;
    out += "{\"txn\":" + std::to_string(n.txn);
    out += ",\"name\":";
    AppendLockNameJson(n.name, &out);
    out += ",\"requested\":\"";
    out += LockModeName(n.requested);
    out += '"';
    if (n.had_grant) {
      out += ",\"granted\":\"";
      out += LockModeName(n.granted_mode);
      out += '"';
    }
    out += ",\"wait_us\":" + std::to_string(n.wait_us);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace ariesim
