// Lock manager with multiple modes, durations, conditional requests, lock
// conversion, and waits-for-graph deadlock detection.
//
// Protocol contracts (paper §2.1, §4) enforced by the callers:
//  - never wait for a lock while holding a latch — request conditionally
//    first; on kBusy release latches, request unconditionally, revalidate;
//  - rolling-back transactions never request locks, so they never deadlock.
#pragma once

#include <condition_variable>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "lock/lock_mode.h"

namespace ariesim {

/// Observer hook for tests/benches verifying the Figure 2 locking matrix.
/// Called (under no internal mutex) for every successful Lock() call.
struct LockEvent {
  TxnId txn;
  LockName name;
  LockMode mode;
  LockDuration duration;
  bool already_held;  ///< request was covered by a lock this txn already held
};
using LockObserver = std::function<void(const LockEvent&)>;

class LockManager {
 public:
  explicit LockManager(Metrics* metrics) : metrics_(metrics) {}

  /// Acquire `name` in `mode` for `duration` on behalf of `txn`.
  /// If `conditional`, returns kBusy instead of waiting.
  /// Returns kDeadlock if the wait was chosen as a deadlock victim (the
  /// request is withdrawn; the caller must abort the transaction).
  Status Lock(TxnId txn, const LockName& name, LockMode mode,
              LockDuration duration, bool conditional);

  /// Release one manual-duration lock.
  void Unlock(TxnId txn, const LockName& name);

  /// Release everything the transaction holds (commit / end of rollback).
  void ReleaseAll(TxnId txn);

  /// True if `txn` currently holds `name` in a mode covering `mode`.
  bool Holds(TxnId txn, const LockName& name, LockMode mode);

  /// Number of distinct lock names currently held by `txn`.
  size_t HeldCount(TxnId txn);

  void SetObserver(LockObserver obs) { observer_ = std::move(obs); }

  /// Debug: human-readable dump of every queue (granted holders, pending
  /// conversions, waiters). For deadlock forensics in tests/tools.
  std::string DumpState();

 private:
  /// One entry per transaction per lock name. A granted entry may carry a
  /// pending conversion (upgrade) to `conv_target`; conversions have
  /// priority over new waiters and keep the original grant while waiting.
  struct Request {
    TxnId txn;
    LockMode mode;  // granted mode when granted; requested mode when waiting
    bool granted = false;
    bool converting = false;
    bool conversion_applied = false;
    LockMode conv_target = LockMode::kIS;
    LockMode prior_mode = LockMode::kIS;
  };
  struct Queue {
    std::list<Request> reqs;  // arrival order; waiters FIFO among themselves
  };
  struct TxnLockState {
    std::unordered_map<LockName, LockMode, LockNameHash> held;
    std::condition_variable cv;
    bool deadlock_victim = false;
  };

  Request* FindRequest(Queue& q, TxnId txn);
  bool ConversionGrantable(const Queue& q, const Request& r) const;
  bool NewGrantable(const Queue& q, const Request& r) const;
  void GrantWaiters(Queue& q);
  /// Deadlock check; returns the chosen victim (kInvalidTxnId if none).
  /// Must be called with mu_ held.
  TxnId DetectDeadlock(TxnId start);
  TxnLockState& State(TxnId txn);

  Metrics* metrics_;
  LockObserver observer_;
  std::mutex mu_;
  std::unordered_map<LockName, Queue, LockNameHash> table_;
  std::unordered_map<TxnId, std::unique_ptr<TxnLockState>> txns_;
};

}  // namespace ariesim
