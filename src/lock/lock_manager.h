// Lock manager with multiple modes, durations, conditional requests, lock
// conversion, and waits-for-graph deadlock detection.
//
// Protocol contracts (paper §2.1, §4) enforced by the callers:
//  - never wait for a lock while holding a latch — request conditionally
//    first; on kBusy release latches, request unconditionally, revalidate;
//  - rolling-back transactions never request locks, so they never deadlock.
//
// Forensics (PR 5, docs/OBSERVABILITY.md): Snapshot() exports the queues,
// per-txn state, and waits-for edges the detector walks; every resolved
// deadlock is preserved in a bounded postmortem ring; per-lock-name wait
// heat lands in a lock-free ContentionSketch; an opt-in blocked-waiter
// watchdog dumps the snapshot + DOT once per episode when a wait exceeds
// its threshold.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/contention.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "lock/lock_forensics.h"
#include "lock/lock_mode.h"

namespace ariesim {

/// Observer hook for tests/benches verifying the Figure 2 locking matrix.
/// Called (under no internal mutex) for every successful Lock() call.
struct LockEvent {
  TxnId txn;
  LockName name;
  LockMode mode;
  LockDuration duration;
  bool already_held;  ///< request was covered by a lock this txn already held
};
using LockObserver = std::function<void(const LockEvent&)>;

class LockManager {
 public:
  using Contention = ContentionSketch<LockName, LockNameHash, 256>;

  /// Longest deadlock cycle tracked individually by CycleLengthCounts();
  /// longer cycles land in the final overflow bucket.
  static constexpr size_t kMaxTrackedCycleLen = 16;

  explicit LockManager(Metrics* metrics) : metrics_(metrics) {}

  /// Acquire `name` in `mode` for `duration` on behalf of `txn`.
  /// If `conditional`, returns kBusy instead of waiting.
  /// Returns kDeadlock if the wait was chosen as a deadlock victim (the
  /// request is withdrawn; the caller must abort the transaction). The
  /// status message carries the one-line cycle summary of the postmortem.
  Status Lock(TxnId txn, const LockName& name, LockMode mode,
              LockDuration duration, bool conditional);

  /// Release one manual-duration lock.
  void Unlock(TxnId txn, const LockName& name);

  /// Release everything the transaction holds (commit / end of rollback).
  void ReleaseAll(TxnId txn);

  /// True if `txn` currently holds `name` in a mode covering `mode`.
  bool Holds(TxnId txn, const LockName& name, LockMode mode);

  /// Number of distinct lock names currently held by `txn`.
  size_t HeldCount(TxnId txn);

  void SetObserver(LockObserver obs) { observer_ = std::move(obs); }

  /// Point-in-time structured copy of the whole lock table: queues (sorted
  /// by name), per-txn rollups (sorted by id), and the waits-for edge set —
  /// exactly the edges DetectDeadlock walks.
  LockTableSnapshot Snapshot();

  /// Resolved deadlocks, oldest first, at most the ring capacity.
  std::vector<DeadlockPostmortem> Postmortems();

  /// Resize the postmortem ring (default 64). 0 disables recording; the
  /// Status cycle summary degrades to the pre-forensics message.
  void SetPostmortemCapacity(size_t cap);

  /// Deadlocks observed per cycle length: index i = cycles of length i
  /// (0 and 1 unused); the last slot aggregates cycles longer than
  /// kMaxTrackedCycleLen.
  std::vector<uint64_t> CycleLengthCounts();

  /// Heaviest-waited lock names, by total wait time.
  std::vector<Contention::Entry> TopContention(size_t n) const {
    return contention_.TopN(n);
  }
  uint64_t ContentionDropped() const { return contention_.dropped(); }

  /// Blocked-waiter watchdog. With threshold_ms > 0, the first lock wait to
  /// exceed the threshold dumps Snapshot() (text + waits-for DOT) to `sink`
  /// (default: stderr) exactly once per episode; the trigger re-arms when no
  /// wait above the threshold remains. threshold_ms == 0 disables.
  void ConfigureWatchdog(uint32_t threshold_ms,
                         std::function<void(const std::string&)> sink = {});

  /// Debug: human-readable dump of every queue (granted holders, pending
  /// conversions, waiters) plus blocked-txn and waits-for lines. Thin
  /// formatter over Snapshot().
  std::string DumpState();

 private:
  /// One entry per transaction per lock name. A granted entry may carry a
  /// pending conversion (upgrade) to `conv_target`; conversions have
  /// priority over new waiters and keep the original grant while waiting.
  struct Request {
    TxnId txn;
    LockMode mode;  // granted mode when granted; requested mode when waiting
    bool granted = false;
    bool converting = false;
    bool conversion_applied = false;
    LockMode conv_target = LockMode::kIS;
    LockMode prior_mode = LockMode::kIS;
    uint64_t wait_start_ns = 0;  // set while waiting or converting
    uint64_t grant_ns = 0;       // when the current mode was granted
  };
  struct Queue {
    std::list<Request> reqs;  // arrival order; waiters FIFO among themselves
  };
  struct TxnLockState {
    std::unordered_map<LockName, LockMode, LockNameHash> held;
    std::condition_variable cv;
    bool deadlock_victim = false;
  };

  Request* FindRequest(Queue& q, TxnId txn);
  bool ConversionGrantable(const Queue& q, const Request& r) const;
  bool NewGrantable(const Queue& q, const Request& r) const;
  void GrantWaiters(Queue& q);
  /// The waits-for edge set, one edge per (waiter, blocking holder, name).
  std::vector<WaitsForEdge> BuildEdgesLocked() const;
  /// Deadlock check; returns the chosen victim (kInvalidTxnId if none) and,
  /// when a cycle is found, the member txns in walk order via `cycle_out`.
  /// Must be called with mu_ held.
  TxnId DetectDeadlock(TxnId start, std::vector<TxnId>* cycle_out = nullptr);
  /// Preserve a just-detected cycle in the postmortem ring and feed the
  /// cycle-length / victim-wait distributions. Must hold mu_.
  void RecordPostmortemLocked(TxnId victim, const std::vector<TxnId>& cycle);
  /// Newest recorded cycle summary for `txn` (empty if none). Must hold mu_.
  std::string VictimSummaryLocked(TxnId txn) const;
  LockTableSnapshot SnapshotLocked(uint64_t now_ns) const;
  /// Fire the watchdog if this wait crossed the threshold and the episode
  /// has not fired yet. Briefly drops `lk` to call the sink.
  void MaybeFireWatchdog(std::unique_lock<std::mutex>& lk,
                         uint64_t wait_start_ns);
  /// Re-arm the watchdog when no wait above the threshold remains.
  void MaybeRearmWatchdogLocked();
  TxnLockState& State(TxnId txn);

  Metrics* metrics_;
  LockObserver observer_;
  mutable std::mutex mu_;
  std::unordered_map<LockName, Queue, LockNameHash> table_;
  std::unordered_map<TxnId, std::unique_ptr<TxnLockState>> txns_;

  // Forensics (all under mu_ except the lock-free sketch).
  Contention contention_;
  std::deque<DeadlockPostmortem> postmortems_;
  size_t postmortem_cap_ = 64;
  uint64_t postmortem_seq_ = 0;
  uint64_t cycle_len_counts_[kMaxTrackedCycleLen + 1] = {};
  uint32_t watchdog_threshold_ms_ = 0;
  std::function<void(const std::string&)> watchdog_sink_;
  bool watchdog_fired_ = false;
};

}  // namespace ariesim
