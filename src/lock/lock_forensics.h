// Structured views of the lock manager's internal state (PR 5).
//
// LockTableSnapshot is a point-in-time copy of every queue, every
// transaction's held/blocked state, and the waits-for edge set — the same
// edges the deadlock detector walks, so what the snapshot shows is exactly
// what the detector sees. DeadlockPostmortem preserves a resolved cycle
// (victim, every cycle member, the lock each waited on) after the waits-for
// graph has already dissolved. Schemas: docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "lock/lock_mode.h"

namespace ariesim {

/// One request row in a lock queue, as captured by Snapshot().
struct LockRequestInfo {
  TxnId txn = kInvalidTxnId;
  LockMode mode = LockMode::kIS;  ///< granted mode, or requested if waiting
  bool granted = false;
  bool converting = false;            ///< granted, upgrade pending
  LockMode conv_target = LockMode::kIS;  ///< meaningful when converting
  uint64_t wait_us = 0;   ///< current wait age (waiters / converters), else 0
  uint64_t grant_us = 0;  ///< how long the grant has been held, else 0
};

struct LockQueueInfo {
  LockName name;
  std::vector<LockRequestInfo> requests;  ///< arrival order, as queued
};

/// One waits-for edge: `waiter` cannot proceed until `holder` releases or
/// converts its request on `name`.
struct WaitsForEdge {
  TxnId waiter = kInvalidTxnId;
  TxnId holder = kInvalidTxnId;
  LockName name;
};

/// Per-transaction rollup.
struct TxnLockInfo {
  TxnId txn = kInvalidTxnId;
  uint64_t held = 0;      ///< distinct lock names held
  bool blocked = false;   ///< has a waiting or converting request
  LockName blocked_on;    ///< meaningful when blocked
  LockMode blocked_mode = LockMode::kIS;  ///< mode it is waiting for
  uint64_t blocked_us = 0;                ///< wait age
};

struct LockTableSnapshot {
  uint64_t captured_at_ns = 0;  ///< MonotonicNowNs() at capture
  std::vector<LockQueueInfo> queues;
  std::vector<TxnLockInfo> txns;
  std::vector<WaitsForEdge> edges;

  /// Human-readable table (ariesh .locks, DumpState).
  std::string ToString() const;
  /// {"captured_at_ns":..,"queues":[..],"txns":[..],"edges":[..]}
  std::string ToJson() const;
  /// Graphviz digraph of the waits-for edges; `dot -Tsvg` renderable.
  std::string ToDot() const;
};

/// One member of a resolved deadlock cycle.
struct DeadlockCycleNode {
  TxnId txn = kInvalidTxnId;
  LockName name;                  ///< the lock this member was waiting on
  LockMode requested = LockMode::kIS;  ///< mode it wanted
  bool had_grant = false;              ///< true for a converting holder
  LockMode granted_mode = LockMode::kIS;  ///< held mode when had_grant
  uint64_t wait_us = 0;  ///< how long it had been waiting at detection
};

/// A deadlock the detector resolved, preserved in the postmortem ring.
struct DeadlockPostmortem {
  uint64_t seq = 0;         ///< 1-based, monotonically increasing
  uint64_t at_ns = 0;       ///< MonotonicNowNs() at detection
  uint64_t wall_unix_us = 0;  ///< wall clock (system_clock), microseconds
  TxnId victim = kInvalidTxnId;
  uint64_t victim_wait_us = 0;
  std::vector<DeadlockCycleNode> cycle;

  /// One line: "cycle[len=2] txn7(X rec:1:5:0, waited 12ms) -> txn9(...)".
  std::string Summary() const;
  std::string ToJson() const;
};

}  // namespace ariesim
