// Lock modes, durations, and lock-name spaces (paper §1.2, §2.1, Figure 2).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/config.h"
#include "common/types.h"

namespace ariesim {

enum class LockMode : uint8_t { kIS = 0, kIX = 1, kS = 2, kSIX = 3, kX = 4 };

/// Lock durations (paper Figure 2):
///  - instant: wait until grantable, then release immediately. Used for the
///    next-key lock during Insert.
///  - commit: held until the transaction ends. Used for fetch current-key
///    locks and the next-key lock during Delete.
///  - manual: released explicitly by the caller before commit.
enum class LockDuration : uint8_t { kInstant = 0, kCommit = 1, kManual = 2 };

inline const char* LockModeName(LockMode m) {
  static const char* kNames[] = {"IS", "IX", "S", "SIX", "X"};
  return kNames[static_cast<int>(m)];
}
inline const char* LockDurationName(LockDuration d) {
  static const char* kNames[] = {"instant", "commit", "manual"};
  return kNames[static_cast<int>(d)];
}

/// Standard compatibility matrix.
inline bool LockCompatible(LockMode a, LockMode b) {
  static const bool kCompat[5][5] = {
      //            IS     IX     S      SIX    X
      /* IS  */ {true, true, true, true, false},
      /* IX  */ {true, true, false, false, false},
      /* S   */ {true, false, true, false, false},
      /* SIX */ {true, false, false, false, false},
      /* X   */ {false, false, false, false, false},
  };
  return kCompat[static_cast<int>(a)][static_cast<int>(b)];
}

/// Least mode at least as strong as both (conversion lattice).
inline LockMode LockSupremum(LockMode a, LockMode b) {
  static const LockMode kSup[5][5] = {
      /* IS  */ {LockMode::kIS, LockMode::kIX, LockMode::kS, LockMode::kSIX,
                 LockMode::kX},
      /* IX  */ {LockMode::kIX, LockMode::kIX, LockMode::kSIX, LockMode::kSIX,
                 LockMode::kX},
      /* S   */ {LockMode::kS, LockMode::kSIX, LockMode::kS, LockMode::kSIX,
                 LockMode::kX},
      /* SIX */ {LockMode::kSIX, LockMode::kSIX, LockMode::kSIX, LockMode::kSIX,
                 LockMode::kX},
      /* X   */ {LockMode::kX, LockMode::kX, LockMode::kX, LockMode::kX,
                 LockMode::kX},
  };
  return kSup[static_cast<int>(a)][static_cast<int>(b)];
}

inline bool LockCovers(LockMode held, LockMode requested) {
  return LockSupremum(held, requested) == held;
}

/// The namespace a lock name lives in. Data-only locking (the paper's
/// default) uses kRecord / kPage / kTable names for keys; index-specific
/// locking uses kKey; KVL uses kKeyValue; the EOF of an index has its own
/// per-index name (paper §2.2).
enum class LockSpace : uint8_t {
  kTable = 0,
  kPage = 1,
  kRecord = 2,
  kKey = 3,       ///< (index, key-value, RID) — index-specific locking
  kKeyValue = 4,  ///< (index, key-value) — ARIES/KVL
  kIndexEof = 5,  ///< per-index end-of-file key
};

/// Hashed lock name. Key-valued names hash the key bytes; a hash collision
/// merely merges two lock names (safe: only reduces concurrency, never
/// correctness).
struct LockName {
  LockSpace space = LockSpace::kTable;
  ObjectId object = kInvalidObjectId;
  uint64_t a = 0;
  uint64_t b = 0;

  bool operator==(const LockName&) const = default;

  static LockName Table(ObjectId table_id) {
    return {LockSpace::kTable, table_id, 0, 0};
  }
  static LockName Page(ObjectId table_id, PageId page) {
    return {LockSpace::kPage, table_id, page, 0};
  }
  static LockName Record(ObjectId table_id, Rid rid) {
    return {LockSpace::kRecord, table_id, rid.Pack(), 0};
  }
  static LockName Key(ObjectId index_id, uint64_t key_hash, Rid rid) {
    return {LockSpace::kKey, index_id, key_hash, rid.Pack()};
  }
  static LockName KeyValue(ObjectId index_id, uint64_t key_hash) {
    return {LockSpace::kKeyValue, index_id, key_hash, 0};
  }
  static LockName IndexEof(ObjectId index_id) {
    return {LockSpace::kIndexEof, index_id, 0, 0};
  }

  std::string ToString() const {
    static const char* kSpaces[] = {"table", "page", "rec", "key", "kv", "eof"};
    return std::string(kSpaces[static_cast<int>(space)]) + ":" +
           std::to_string(object) + ":" + std::to_string(a) + ":" +
           std::to_string(b);
  }
};

/// Lock name covering a record under the configured data-lock granularity.
inline LockName DataLockName(LockGranularity g, ObjectId table, Rid rid) {
  switch (g) {
    case LockGranularity::kRecord:
      return LockName::Record(table, rid);
    case LockGranularity::kPage:
      return LockName::Page(table, rid.page_id);
    case LockGranularity::kTable:
    default:
      return LockName::Table(table);
  }
}

struct LockNameHash {
  size_t operator()(const LockName& n) const {
    uint64_t h = static_cast<uint64_t>(n.space) * 0x9e3779b97f4a7c15ull;
    h ^= n.object + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= n.a + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= n.b + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

}  // namespace ariesim
