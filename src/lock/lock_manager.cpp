#include "lock/lock_manager.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <tuple>
#include <unordered_set>

#include "common/clock.h"
#include "common/commit_breakdown.h"
#include "common/histogram.h"
#include "common/trace.h"

namespace ariesim {

LockManager::TxnLockState& LockManager::State(TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    it = txns_.emplace(txn, std::make_unique<TxnLockState>()).first;
  }
  return *it->second;
}

LockManager::Request* LockManager::FindRequest(Queue& q, TxnId txn) {
  for (auto& r : q.reqs) {
    if (r.txn == txn) return &r;
  }
  return nullptr;
}

bool LockManager::ConversionGrantable(const Queue& q, const Request& r) const {
  for (const auto& g : q.reqs) {
    if (g.txn == r.txn || !g.granted) continue;
    if (!LockCompatible(g.mode, r.conv_target)) return false;
  }
  return true;
}

bool LockManager::NewGrantable(const Queue& q, const Request& r) const {
  // FIFO among new waiters; conversions always have priority; compatible
  // with every granted mode and every pending conversion target.
  for (const auto& g : q.reqs) {
    if (&g == &r) break;  // only consider entries ahead of r
    if (g.granted) {
      if (!LockCompatible(g.mode, r.mode)) return false;
      if (g.converting) return false;  // pending conversion blocks newcomers
    } else {
      return false;  // an earlier waiter blocks (FIFO)
    }
  }
  // Granted entries can also sit *behind* r in the list (they were waiters
  // granted later); check all of them too.
  for (const auto& g : q.reqs) {
    if (g.txn == r.txn || !g.granted) continue;
    if (!LockCompatible(g.mode, r.mode)) return false;
  }
  return true;
}

void LockManager::GrantWaiters(Queue& q) {
  // One clock read at most, and only when something is actually granted.
  uint64_t now = 0;
  auto now_ns = [&now]() {
    if (now == 0) now = MonotonicNowNs();
    return now;
  };
  // Pass 1: conversions.
  for (auto& r : q.reqs) {
    if (r.granted && r.converting && ConversionGrantable(q, r)) {
      r.mode = r.conv_target;
      r.converting = false;
      r.conversion_applied = true;
      r.grant_ns = now_ns();
      auto it = txns_.find(r.txn);
      if (it != txns_.end()) it->second->cv.notify_all();
    }
  }
  // Pass 2: new waiters, FIFO.
  for (auto& r : q.reqs) {
    if (r.granted) continue;
    if (!NewGrantable(q, r)) break;
    r.granted = true;
    r.grant_ns = now_ns();
    auto it = txns_.find(r.txn);
    if (it != txns_.end()) it->second->cv.notify_all();
  }
}

std::vector<WaitsForEdge> LockManager::BuildEdgesLocked() const {
  // Waits-for edges:
  //  - a plain waiter depends on every incompatible granted holder, every
  //    converting holder, and every earlier waiter in its queue;
  //  - a converting holder depends on every *other* granted holder whose
  //    mode is incompatible with its conversion target.
  std::vector<WaitsForEdge> out;
  for (const auto& [name, q] : table_) {
    std::vector<const Request*> seen;
    for (const auto& r : q.reqs) {
      if (r.granted && r.converting) {
        for (const auto& g : q.reqs) {
          if (g.txn == r.txn || !g.granted) continue;
          if (!LockCompatible(g.mode, r.conv_target)) {
            out.push_back({r.txn, g.txn, name});
          }
        }
      }
      if (!r.granted) {
        for (const Request* prior : seen) {
          if (prior->txn == r.txn) continue;
          bool blocks = !prior->granted || prior->converting ||
                        !LockCompatible(prior->mode, r.mode);
          if (blocks) out.push_back({r.txn, prior->txn, name});
        }
      }
      seen.push_back(&r);
    }
  }
  return out;
}

TxnId LockManager::DetectDeadlock(TxnId start, std::vector<TxnId>* cycle_out) {
  std::unordered_map<TxnId, std::vector<TxnId>> edges;
  for (const WaitsForEdge& e : BuildEdgesLocked()) {
    edges[e.waiter].push_back(e.holder);
  }
  // Iterative DFS from `start`, looking for a cycle back to `start`.
  struct FrameS {
    TxnId node;
    size_t next_child = 0;
  };
  std::unordered_set<TxnId> on_path{start};
  std::vector<TxnId> path{start};
  std::vector<FrameS> dfs{{start, 0}};
  while (!dfs.empty()) {
    auto& top = dfs.back();
    auto it = edges.find(top.node);
    if (it == edges.end() || top.next_child >= it->second.size()) {
      on_path.erase(top.node);
      path.pop_back();
      dfs.pop_back();
      continue;
    }
    TxnId child = it->second[top.next_child++];
    if (child == start) {
      if (cycle_out != nullptr) *cycle_out = path;
      return *std::max_element(path.begin(), path.end());  // youngest
    }
    if (on_path.insert(child).second) {
      path.push_back(child);
      dfs.push_back({child, 0});
    }
  }
  return kInvalidTxnId;
}

void LockManager::RecordPostmortemLocked(TxnId victim,
                                         const std::vector<TxnId>& cycle) {
  const uint64_t now = MonotonicNowNs();
  DeadlockPostmortem pm;
  pm.seq = ++postmortem_seq_;
  pm.at_ns = now;
  pm.wall_unix_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  pm.victim = victim;
  for (TxnId t : cycle) {
    DeadlockCycleNode node;
    node.txn = t;
    bool found = false;
    for (const auto& [name, q] : table_) {
      for (const auto& r : q.reqs) {
        if (r.txn != t) continue;
        if (!r.granted) {
          node.name = name;
          node.requested = r.mode;
          node.wait_us = (now - r.wait_start_ns) / 1000;
          found = true;
        } else if (r.converting) {
          node.name = name;
          node.requested = r.conv_target;
          node.had_grant = true;
          node.granted_mode = r.mode;
          node.wait_us = (now - r.wait_start_ns) / 1000;
          found = true;
        }
        if (found) break;
      }
      if (found) break;
    }
    if (t == victim) pm.victim_wait_us = node.wait_us;
    pm.cycle.push_back(node);
  }
  const size_t len = cycle.size();
  cycle_len_counts_[len > kMaxTrackedCycleLen ? kMaxTrackedCycleLen : len]++;
  if (metrics_ != nullptr) {
    metrics_->deadlock_cycle_txns.fetch_add(len, std::memory_order_relaxed);
    metrics_->deadlock_victim_wait.Record(pm.victim_wait_us * 1000);
  }
  ARIES_TRACE_INSTANT("lock.deadlock", TraceCat::kLock, victim);
  if (postmortem_cap_ == 0) return;
  postmortems_.push_back(std::move(pm));
  while (postmortems_.size() > postmortem_cap_) postmortems_.pop_front();
}

std::string LockManager::VictimSummaryLocked(TxnId txn) const {
  for (auto it = postmortems_.rbegin(); it != postmortems_.rend(); ++it) {
    if (it->victim == txn) return it->Summary();
  }
  return {};
}

void LockManager::MaybeFireWatchdog(std::unique_lock<std::mutex>& lk,
                                    uint64_t wait_start_ns) {
  if (watchdog_threshold_ms_ == 0 || watchdog_fired_) return;
  const uint64_t now = MonotonicNowNs();
  if (now - wait_start_ns <
      static_cast<uint64_t>(watchdog_threshold_ms_) * 1000000ull) {
    return;
  }
  watchdog_fired_ = true;
  if (metrics_ != nullptr) {
    metrics_->lock_watchdog_dumps.fetch_add(1, std::memory_order_relaxed);
  }
  LockTableSnapshot snap = SnapshotLocked(now);
  std::string dump = "[lock-watchdog] a lock wait exceeded " +
                     std::to_string(watchdog_threshold_ms_) + "ms\n" +
                     snap.ToString() + snap.ToDot();
  auto sink = watchdog_sink_;
  // The sink runs without mu_ so it may itself call Snapshot() or log
  // slowly. The waiting request outlives the unlock: only its own thread
  // (sitting here) can remove it.
  lk.unlock();
  if (sink) {
    sink(dump);
  } else {
    std::fwrite(dump.data(), 1, dump.size(), stderr);
  }
  lk.lock();
}

void LockManager::MaybeRearmWatchdogLocked() {
  if (watchdog_threshold_ms_ == 0 || !watchdog_fired_) return;
  const uint64_t now = MonotonicNowNs();
  const uint64_t thr =
      static_cast<uint64_t>(watchdog_threshold_ms_) * 1000000ull;
  for (const auto& [name, q] : table_) {
    for (const auto& r : q.reqs) {
      if ((!r.granted || r.converting) && now - r.wait_start_ns >= thr) {
        return;  // the episode is still live
      }
    }
  }
  watchdog_fired_ = false;
}

void LockManager::ConfigureWatchdog(
    uint32_t threshold_ms, std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lk(mu_);
  watchdog_threshold_ms_ = threshold_ms;
  watchdog_sink_ = std::move(sink);
  watchdog_fired_ = false;
}

Status LockManager::Lock(TxnId txn, const LockName& name, LockMode mode,
                         LockDuration duration, bool conditional) {
  if (metrics_ != nullptr) {
    metrics_->lock_requests.fetch_add(1, std::memory_order_relaxed);
  }
  bool already_held = false;
  {
    std::unique_lock<std::mutex> lk(mu_);
    TxnLockState& st = State(txn);
    auto held_it = st.held.find(name);
    if (held_it != st.held.end() && LockCovers(held_it->second, mode)) {
      already_held = true;
    } else if (held_it != st.held.end()) {
      // ---- conversion (upgrade) -------------------------------------
      Queue& q = table_[name];
      Request* mine = FindRequest(q, txn);
      if (mine == nullptr || !mine->granted) {
        return Status::Corruption("lock table out of sync with held map");
      }
      LockMode target = LockSupremum(held_it->second, mode);
      mine->converting = true;
      mine->conv_target = target;
      mine->prior_mode = mine->mode;
      mine->conversion_applied = false;
      if (ConversionGrantable(q, *mine)) {
        mine->mode = target;
        mine->converting = false;
        mine->conversion_applied = true;
        mine->grant_ns = MonotonicNowNs();
      } else if (conditional) {
        mine->converting = false;
        if (metrics_ != nullptr) {
          metrics_->lock_conditional_denied.fetch_add(1,
                                                      std::memory_order_relaxed);
        }
        return Status::Busy("lock conversion not grantable: " + name.ToString());
      } else {
        if (metrics_ != nullptr) {
          metrics_->lock_waits.fetch_add(1, std::memory_order_relaxed);
        }
        mine->wait_start_ns = MonotonicNowNs();
        // Wait time (granted or deadlock-aborted) lands in the histogram,
        // the bound transaction's commit-breakdown lock_wait segment, and a
        // trace span when the RAII objects leave this block.
        ScopedLatency wait_timer(
            metrics_ != nullptr ? &metrics_->lock_wait_latency : nullptr);
        ScopedCommitSegment wait_seg(CommitSegment::lock_wait);
        ARIES_TRACE_SPAN(wait_span, "lock.wait", TraceCat::kLock, txn);
        while (mine->converting) {
          std::vector<TxnId> cycle;
          TxnId victim = DetectDeadlock(txn, &cycle);
          if (victim != kInvalidTxnId) {
            if (victim == txn) {
              if (!st.deadlock_victim) {
                RecordPostmortemLocked(victim, cycle);
                st.deadlock_victim = true;
              }
            } else {
              auto vit = txns_.find(victim);
              if (vit != txns_.end()) {
                if (!vit->second->deadlock_victim) {
                  RecordPostmortemLocked(victim, cycle);
                  vit->second->deadlock_victim = true;
                }
                vit->second->cv.notify_all();
              }
            }
          }
          if (st.deadlock_victim) {
            st.deadlock_victim = false;
            mine->converting = false;  // keep the original granted mode
            contention_.RecordWait(name,
                                   MonotonicNowNs() - mine->wait_start_ns);
            GrantWaiters(q);
            if (metrics_ != nullptr) {
              metrics_->deadlocks.fetch_add(1, std::memory_order_relaxed);
            }
            std::string summary = VictimSummaryLocked(txn);
            MaybeRearmWatchdogLocked();
            return Status::Deadlock(
                "deadlock upgrading " + name.ToString() +
                (summary.empty() ? std::string() : "; " + summary));
          }
          MaybeFireWatchdog(lk, mine->wait_start_ns);
          st.cv.wait_for(lk, std::chrono::milliseconds(5));
        }
        if (!mine->conversion_applied) {
          return Status::Corruption("conversion wait ended unapplied");
        }
        contention_.RecordWait(name, MonotonicNowNs() - mine->wait_start_ns);
        MaybeRearmWatchdogLocked();
      }
      // Conversion applied. Instant duration reverts to the prior mode.
      if (duration == LockDuration::kInstant) {
        mine->mode = mine->prior_mode;
        GrantWaiters(q);
      } else {
        st.held[name] = mine->mode;
      }
    } else {
      // ---- fresh request ---------------------------------------------
      Queue& q = table_[name];
      Request r;
      r.txn = txn;
      r.mode = mode;
      q.reqs.push_back(r);
      Request* mine = &q.reqs.back();
      if (NewGrantable(q, *mine)) {
        mine->granted = true;
        mine->grant_ns = MonotonicNowNs();
      } else if (conditional) {
        q.reqs.pop_back();
        if (q.reqs.empty()) table_.erase(name);
        if (metrics_ != nullptr) {
          metrics_->lock_conditional_denied.fetch_add(1,
                                                      std::memory_order_relaxed);
        }
        return Status::Busy("lock not grantable: " + name.ToString());
      } else {
        if (metrics_ != nullptr) {
          metrics_->lock_waits.fetch_add(1, std::memory_order_relaxed);
        }
        mine->wait_start_ns = MonotonicNowNs();
        ScopedLatency wait_timer(
            metrics_ != nullptr ? &metrics_->lock_wait_latency : nullptr);
        ScopedCommitSegment wait_seg(CommitSegment::lock_wait);
        ARIES_TRACE_SPAN(wait_span, "lock.wait", TraceCat::kLock, txn);
        while (!mine->granted) {
          std::vector<TxnId> cycle;
          TxnId victim = DetectDeadlock(txn, &cycle);
          if (victim != kInvalidTxnId) {
            if (victim == txn) {
              if (!st.deadlock_victim) {
                RecordPostmortemLocked(victim, cycle);
                st.deadlock_victim = true;
              }
            } else {
              auto vit = txns_.find(victim);
              if (vit != txns_.end()) {
                if (!vit->second->deadlock_victim) {
                  RecordPostmortemLocked(victim, cycle);
                  vit->second->deadlock_victim = true;
                }
                vit->second->cv.notify_all();
              }
            }
          }
          if (st.deadlock_victim) {
            st.deadlock_victim = false;
            contention_.RecordWait(name,
                                   MonotonicNowNs() - mine->wait_start_ns);
            q.reqs.remove_if([&](const Request& x) { return &x == mine; });
            GrantWaiters(q);
            if (q.reqs.empty()) table_.erase(name);
            if (metrics_ != nullptr) {
              metrics_->deadlocks.fetch_add(1, std::memory_order_relaxed);
            }
            std::string summary = VictimSummaryLocked(txn);
            MaybeRearmWatchdogLocked();
            return Status::Deadlock(
                "deadlock on " + name.ToString() +
                (summary.empty() ? std::string() : "; " + summary));
          }
          MaybeFireWatchdog(lk, mine->wait_start_ns);
          st.cv.wait_for(lk, std::chrono::milliseconds(5));
        }
        contention_.RecordWait(name, MonotonicNowNs() - mine->wait_start_ns);
        MaybeRearmWatchdogLocked();
      }
      // Granted.
      if (duration == LockDuration::kInstant) {
        q.reqs.remove_if([&](const Request& x) { return &x == mine; });
        GrantWaiters(q);
        if (q.reqs.empty()) table_.erase(name);
      } else {
        st.held[name] = mine->mode;
      }
    }
  }
  if (metrics_ != nullptr) {
    metrics_->locks_granted.fetch_add(1, std::memory_order_relaxed);
  }
  if (observer_) {
    observer_(LockEvent{txn, name, mode, duration, already_held});
  }
  return Status::OK();
}

void LockManager::Unlock(TxnId txn, const LockName& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto tit = txns_.find(txn);
  if (tit == txns_.end()) return;
  tit->second->held.erase(name);
  auto qit = table_.find(name);
  if (qit == table_.end()) return;
  qit->second.reqs.remove_if([&](const Request& r) { return r.txn == txn; });
  GrantWaiters(qit->second);
  if (qit->second.reqs.empty()) table_.erase(qit);
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  auto tit = txns_.find(txn);
  if (tit == txns_.end()) return;
  for (auto& [name, mode] : tit->second->held) {
    auto qit = table_.find(name);
    if (qit == table_.end()) continue;
    qit->second.reqs.remove_if([&](const Request& r) { return r.txn == txn; });
    GrantWaiters(qit->second);
    if (qit->second.reqs.empty()) table_.erase(qit);
  }
  txns_.erase(tit);
}

bool LockManager::Holds(TxnId txn, const LockName& name, LockMode mode) {
  std::lock_guard<std::mutex> lk(mu_);
  auto tit = txns_.find(txn);
  if (tit == txns_.end()) return false;
  auto hit = tit->second->held.find(name);
  return hit != tit->second->held.end() && LockCovers(hit->second, mode);
}

LockTableSnapshot LockManager::SnapshotLocked(uint64_t now_ns) const {
  LockTableSnapshot snap;
  snap.captured_at_ns = now_ns;
  snap.queues.reserve(table_.size());
  for (const auto& [name, q] : table_) {
    LockQueueInfo qi;
    qi.name = name;
    qi.requests.reserve(q.reqs.size());
    for (const auto& r : q.reqs) {
      LockRequestInfo ri;
      ri.txn = r.txn;
      ri.mode = r.mode;
      ri.granted = r.granted;
      ri.converting = r.granted && r.converting;
      ri.conv_target = r.conv_target;
      if (!r.granted || r.converting) {
        ri.wait_us = (now_ns - r.wait_start_ns) / 1000;
      }
      if (r.granted) {
        ri.grant_us = r.grant_ns == 0 ? 0 : (now_ns - r.grant_ns) / 1000;
      }
      qi.requests.push_back(ri);
    }
    snap.queues.push_back(std::move(qi));
  }
  std::sort(snap.queues.begin(), snap.queues.end(),
            [](const LockQueueInfo& a, const LockQueueInfo& b) {
              return std::tie(a.name.space, a.name.object, a.name.a,
                              a.name.b) < std::tie(b.name.space, b.name.object,
                                                   b.name.a, b.name.b);
            });
  snap.txns.reserve(txns_.size());
  for (const auto& [id, st] : txns_) {
    TxnLockInfo ti;
    ti.txn = id;
    ti.held = st->held.size();
    snap.txns.push_back(ti);
  }
  std::sort(snap.txns.begin(), snap.txns.end(),
            [](const TxnLockInfo& a, const TxnLockInfo& b) {
              return a.txn < b.txn;
            });
  // Fill blocked state from the queues (one waiting or converting request
  // per txn at a time: a txn has at most one Lock() call in flight).
  for (const auto& [name, q] : table_) {
    for (const auto& r : q.reqs) {
      if (r.granted && !r.converting) continue;
      auto it = std::lower_bound(snap.txns.begin(), snap.txns.end(), r.txn,
                                 [](const TxnLockInfo& t, TxnId id) {
                                   return t.txn < id;
                                 });
      if (it == snap.txns.end() || it->txn != r.txn) continue;
      it->blocked = true;
      it->blocked_on = name;
      it->blocked_mode = r.granted ? r.conv_target : r.mode;
      it->blocked_us = (now_ns - r.wait_start_ns) / 1000;
    }
  }
  snap.edges = BuildEdgesLocked();
  return snap;
}

LockTableSnapshot LockManager::Snapshot() {
  std::lock_guard<std::mutex> lk(mu_);
  return SnapshotLocked(MonotonicNowNs());
}

std::vector<DeadlockPostmortem> LockManager::Postmortems() {
  std::lock_guard<std::mutex> lk(mu_);
  return {postmortems_.begin(), postmortems_.end()};
}

void LockManager::SetPostmortemCapacity(size_t cap) {
  std::lock_guard<std::mutex> lk(mu_);
  postmortem_cap_ = cap;
  while (postmortems_.size() > postmortem_cap_) postmortems_.pop_front();
}

std::vector<uint64_t> LockManager::CycleLengthCounts() {
  std::lock_guard<std::mutex> lk(mu_);
  return {cycle_len_counts_, cycle_len_counts_ + kMaxTrackedCycleLen + 1};
}

std::string LockManager::DumpState() { return Snapshot().ToString(); }

size_t LockManager::HeldCount(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  auto tit = txns_.find(txn);
  return tit == txns_.end() ? 0 : tit->second->held.size();
}

}  // namespace ariesim
