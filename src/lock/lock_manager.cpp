#include "lock/lock_manager.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "common/histogram.h"
#include "common/trace.h"

namespace ariesim {

LockManager::TxnLockState& LockManager::State(TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    it = txns_.emplace(txn, std::make_unique<TxnLockState>()).first;
  }
  return *it->second;
}

LockManager::Request* LockManager::FindRequest(Queue& q, TxnId txn) {
  for (auto& r : q.reqs) {
    if (r.txn == txn) return &r;
  }
  return nullptr;
}

bool LockManager::ConversionGrantable(const Queue& q, const Request& r) const {
  for (const auto& g : q.reqs) {
    if (g.txn == r.txn || !g.granted) continue;
    if (!LockCompatible(g.mode, r.conv_target)) return false;
  }
  return true;
}

bool LockManager::NewGrantable(const Queue& q, const Request& r) const {
  // FIFO among new waiters; conversions always have priority; compatible
  // with every granted mode and every pending conversion target.
  for (const auto& g : q.reqs) {
    if (&g == &r) break;  // only consider entries ahead of r
    if (g.granted) {
      if (!LockCompatible(g.mode, r.mode)) return false;
      if (g.converting) return false;  // pending conversion blocks newcomers
    } else {
      return false;  // an earlier waiter blocks (FIFO)
    }
  }
  // Granted entries can also sit *behind* r in the list (they were waiters
  // granted later); check all of them too.
  for (const auto& g : q.reqs) {
    if (g.txn == r.txn || !g.granted) continue;
    if (!LockCompatible(g.mode, r.mode)) return false;
  }
  return true;
}

void LockManager::GrantWaiters(Queue& q) {
  // Pass 1: conversions.
  for (auto& r : q.reqs) {
    if (r.granted && r.converting && ConversionGrantable(q, r)) {
      r.mode = r.conv_target;
      r.converting = false;
      r.conversion_applied = true;
      auto it = txns_.find(r.txn);
      if (it != txns_.end()) it->second->cv.notify_all();
    }
  }
  // Pass 2: new waiters, FIFO.
  for (auto& r : q.reqs) {
    if (r.granted) continue;
    if (!NewGrantable(q, r)) break;
    r.granted = true;
    auto it = txns_.find(r.txn);
    if (it != txns_.end()) it->second->cv.notify_all();
  }
}

TxnId LockManager::DetectDeadlock(TxnId start) {
  // Waits-for edges:
  //  - a plain waiter depends on every incompatible granted holder, every
  //    converting holder, and every earlier waiter in its queue;
  //  - a converting holder depends on every *other* granted holder whose
  //    mode is incompatible with its conversion target.
  std::unordered_map<TxnId, std::vector<TxnId>> edges;
  for (auto& [name, q] : table_) {
    std::vector<const Request*> seen;
    for (auto& r : q.reqs) {
      if (r.granted && r.converting) {
        for (auto& g : q.reqs) {
          if (g.txn == r.txn || !g.granted) continue;
          if (!LockCompatible(g.mode, r.conv_target)) {
            edges[r.txn].push_back(g.txn);
          }
        }
      }
      if (!r.granted) {
        for (const Request* prior : seen) {
          if (prior->txn == r.txn) continue;
          bool blocks = !prior->granted || prior->converting ||
                        !LockCompatible(prior->mode, r.mode);
          if (blocks) edges[r.txn].push_back(prior->txn);
        }
      }
      seen.push_back(&r);
    }
  }
  // Iterative DFS from `start`, looking for a cycle back to `start`.
  struct FrameS {
    TxnId node;
    size_t next_child = 0;
  };
  std::unordered_set<TxnId> on_path{start};
  std::vector<TxnId> path{start};
  std::vector<FrameS> dfs{{start, 0}};
  while (!dfs.empty()) {
    auto& top = dfs.back();
    auto it = edges.find(top.node);
    if (it == edges.end() || top.next_child >= it->second.size()) {
      on_path.erase(top.node);
      path.pop_back();
      dfs.pop_back();
      continue;
    }
    TxnId child = it->second[top.next_child++];
    if (child == start) {
      return *std::max_element(path.begin(), path.end());  // youngest
    }
    if (on_path.insert(child).second) {
      path.push_back(child);
      dfs.push_back({child, 0});
    }
  }
  return kInvalidTxnId;
}

Status LockManager::Lock(TxnId txn, const LockName& name, LockMode mode,
                         LockDuration duration, bool conditional) {
  if (metrics_ != nullptr) {
    metrics_->lock_requests.fetch_add(1, std::memory_order_relaxed);
  }
  bool already_held = false;
  {
    std::unique_lock<std::mutex> lk(mu_);
    TxnLockState& st = State(txn);
    auto held_it = st.held.find(name);
    if (held_it != st.held.end() && LockCovers(held_it->second, mode)) {
      already_held = true;
    } else if (held_it != st.held.end()) {
      // ---- conversion (upgrade) -------------------------------------
      Queue& q = table_[name];
      Request* mine = FindRequest(q, txn);
      if (mine == nullptr || !mine->granted) {
        return Status::Corruption("lock table out of sync with held map");
      }
      LockMode target = LockSupremum(held_it->second, mode);
      mine->converting = true;
      mine->conv_target = target;
      mine->prior_mode = mine->mode;
      mine->conversion_applied = false;
      if (ConversionGrantable(q, *mine)) {
        mine->mode = target;
        mine->converting = false;
        mine->conversion_applied = true;
      } else if (conditional) {
        mine->converting = false;
        if (metrics_ != nullptr) {
          metrics_->lock_conditional_denied.fetch_add(1,
                                                      std::memory_order_relaxed);
        }
        return Status::Busy("lock conversion not grantable: " + name.ToString());
      } else {
        if (metrics_ != nullptr) {
          metrics_->lock_waits.fetch_add(1, std::memory_order_relaxed);
        }
        // Wait time (granted or deadlock-aborted) lands in the histogram and
        // as a trace span when both RAII objects leave this block.
        ScopedLatency wait_timer(
            metrics_ != nullptr ? &metrics_->lock_wait_latency : nullptr);
        ARIES_TRACE_SPAN(wait_span, "lock.wait", TraceCat::kLock, txn);
        while (mine->converting) {
          TxnId victim = DetectDeadlock(txn);
          if (victim != kInvalidTxnId) {
            if (victim == txn) {
              st.deadlock_victim = true;
            } else {
              auto vit = txns_.find(victim);
              if (vit != txns_.end()) {
                vit->second->deadlock_victim = true;
                vit->second->cv.notify_all();
              }
            }
          }
          if (st.deadlock_victim) {
            st.deadlock_victim = false;
            mine->converting = false;  // keep the original granted mode
            GrantWaiters(q);
            if (metrics_ != nullptr) {
              metrics_->deadlocks.fetch_add(1, std::memory_order_relaxed);
            }
            return Status::Deadlock("deadlock upgrading " + name.ToString());
          }
          st.cv.wait_for(lk, std::chrono::milliseconds(5));
        }
        if (!mine->conversion_applied) {
          return Status::Corruption("conversion wait ended unapplied");
        }
      }
      // Conversion applied. Instant duration reverts to the prior mode.
      if (duration == LockDuration::kInstant) {
        mine->mode = mine->prior_mode;
        GrantWaiters(q);
      } else {
        st.held[name] = mine->mode;
      }
    } else {
      // ---- fresh request ---------------------------------------------
      Queue& q = table_[name];
      Request r;
      r.txn = txn;
      r.mode = mode;
      q.reqs.push_back(r);
      Request* mine = &q.reqs.back();
      if (NewGrantable(q, *mine)) {
        mine->granted = true;
      } else if (conditional) {
        q.reqs.pop_back();
        if (q.reqs.empty()) table_.erase(name);
        if (metrics_ != nullptr) {
          metrics_->lock_conditional_denied.fetch_add(1,
                                                      std::memory_order_relaxed);
        }
        return Status::Busy("lock not grantable: " + name.ToString());
      } else {
        if (metrics_ != nullptr) {
          metrics_->lock_waits.fetch_add(1, std::memory_order_relaxed);
        }
        ScopedLatency wait_timer(
            metrics_ != nullptr ? &metrics_->lock_wait_latency : nullptr);
        ARIES_TRACE_SPAN(wait_span, "lock.wait", TraceCat::kLock, txn);
        while (!mine->granted) {
          TxnId victim = DetectDeadlock(txn);
          if (victim != kInvalidTxnId) {
            if (victim == txn) {
              st.deadlock_victim = true;
            } else {
              auto vit = txns_.find(victim);
              if (vit != txns_.end()) {
                vit->second->deadlock_victim = true;
                vit->second->cv.notify_all();
              }
            }
          }
          if (st.deadlock_victim) {
            st.deadlock_victim = false;
            q.reqs.remove_if([&](const Request& x) { return &x == mine; });
            GrantWaiters(q);
            if (q.reqs.empty()) table_.erase(name);
            if (metrics_ != nullptr) {
              metrics_->deadlocks.fetch_add(1, std::memory_order_relaxed);
            }
            return Status::Deadlock("deadlock on " + name.ToString());
          }
          st.cv.wait_for(lk, std::chrono::milliseconds(5));
        }
      }
      // Granted.
      if (duration == LockDuration::kInstant) {
        q.reqs.remove_if([&](const Request& x) { return &x == mine; });
        GrantWaiters(q);
        if (q.reqs.empty()) table_.erase(name);
      } else {
        st.held[name] = mine->mode;
      }
    }
  }
  if (metrics_ != nullptr) {
    metrics_->locks_granted.fetch_add(1, std::memory_order_relaxed);
  }
  if (observer_) {
    observer_(LockEvent{txn, name, mode, duration, already_held});
  }
  return Status::OK();
}

void LockManager::Unlock(TxnId txn, const LockName& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto tit = txns_.find(txn);
  if (tit == txns_.end()) return;
  tit->second->held.erase(name);
  auto qit = table_.find(name);
  if (qit == table_.end()) return;
  qit->second.reqs.remove_if([&](const Request& r) { return r.txn == txn; });
  GrantWaiters(qit->second);
  if (qit->second.reqs.empty()) table_.erase(qit);
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  auto tit = txns_.find(txn);
  if (tit == txns_.end()) return;
  for (auto& [name, mode] : tit->second->held) {
    auto qit = table_.find(name);
    if (qit == table_.end()) continue;
    qit->second.reqs.remove_if([&](const Request& r) { return r.txn == txn; });
    GrantWaiters(qit->second);
    if (qit->second.reqs.empty()) table_.erase(qit);
  }
  txns_.erase(tit);
}

bool LockManager::Holds(TxnId txn, const LockName& name, LockMode mode) {
  std::lock_guard<std::mutex> lk(mu_);
  auto tit = txns_.find(txn);
  if (tit == txns_.end()) return false;
  auto hit = tit->second->held.find(name);
  return hit != tit->second->held.end() && LockCovers(hit->second, mode);
}

std::string LockManager::DumpState() {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  for (auto& [name, q] : table_) {
    out += name.ToString() + ":";
    for (auto& r : q.reqs) {
      out += " txn" + std::to_string(r.txn) + "/" + LockModeName(r.mode);
      if (r.granted) out += "*";
      if (r.converting) {
        out += "->" + std::string(LockModeName(r.conv_target)) + "(conv)";
      }
    }
    out += "\n";
  }
  return out;
}

size_t LockManager::HeldCount(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  auto tit = txns_.find(txn);
  return tit == txns_.end() ? 0 : tit->second->held.size();
}

}  // namespace ariesim
