// Transaction object: log-chain anchors (LastLSN / UndoNxtLSN), state,
// savepoints, and nested-top-action bracketing (paper §1.2).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/commit_breakdown.h"
#include "common/types.h"

namespace ariesim {

enum class TxnState : uint8_t {
  kActive = 0,
  kRollingBack = 1,
  kCommitted = 2,
  kAborted = 3,
};

class Transaction {
 public:
  explicit Transaction(TxnId id) : id_(id) {}

  TxnId id() const { return id_; }
  // State and chain anchors are relaxed atomics: only the owning thread
  // mutates them, but fuzzy checkpoints (TransactionManager::Snapshot) read
  // them concurrently. Analysis tolerates a stale value by re-checking the
  // log record a snapshotted LastLSN points at.
  TxnState state() const { return state_.load(std::memory_order_relaxed); }
  void set_state(TxnState s) { state_.store(s, std::memory_order_relaxed); }

  /// LSN of the most recent log record written by this transaction.
  Lsn last_lsn() const { return last_lsn_.load(std::memory_order_relaxed); }
  void set_last_lsn(Lsn lsn) {
    last_lsn_.store(lsn, std::memory_order_relaxed);
  }

  /// LSN of the next record to process during rollback (skips over
  /// already-compensated suffixes and completed nested top actions).
  Lsn undo_next_lsn() const {
    return undo_next_lsn_.load(std::memory_order_relaxed);
  }
  void set_undo_next_lsn(Lsn lsn) {
    undo_next_lsn_.store(lsn, std::memory_order_relaxed);
  }

  /// Establish a savepoint: rollback-to returns the transaction to the
  /// state as of this point.
  Lsn Savepoint() const { return last_lsn(); }

  // -- nested top actions -----------------------------------------------
  /// Remember the LSN the eventual dummy CLR must point at (paper Fig 8:
  /// "Remember LSN of last log record of transaction").
  void BeginNta() { nta_stack_.push_back(last_lsn()); }
  /// Anchor the NTA at an explicit LSN. Needed when an SMO runs during
  /// rollback *before* the CLR of the record being undone is written (e.g.
  /// a page split making room for the undo of a key delete): if a failure
  /// hits after the dummy CLR but before that CLR, restart undo must resume
  /// at the record being undone, not skip it.
  void BeginNtaAt(Lsn anchor) { nta_stack_.push_back(anchor); }
  Lsn PopNta() {
    Lsn lsn = nta_stack_.back();
    nta_stack_.pop_back();
    return lsn;
  }
  bool InNta() const { return !nta_stack_.empty(); }

  /// Commit critical-path attribution accumulator (PR 9). Written through
  /// the owning thread's TLS binding (common/commit_breakdown.h) while the
  /// transaction runs; harvested into the commit_seg_* histograms by
  /// TransactionManager::Commit. Only mutated by the owning thread.
  CommitBreakdown& breakdown() { return breakdown_; }
  const CommitBreakdown& breakdown() const { return breakdown_; }

 private:
  TxnId id_;
  std::atomic<TxnState> state_{TxnState::kActive};
  std::atomic<Lsn> last_lsn_{kNullLsn};
  std::atomic<Lsn> undo_next_lsn_{kNullLsn};
  std::vector<Lsn> nta_stack_;
  CommitBreakdown breakdown_;
};

}  // namespace ariesim
