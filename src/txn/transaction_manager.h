// Transaction manager: transaction table, log-append bookkeeping, commit
// (log force + lock release), rollback (delegated to RecoveryManager so
// normal and restart undo share one code path), and nested top actions.
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "lock/lock_manager.h"
#include "txn/transaction.h"
#include "wal/log_manager.h"

namespace ariesim {

class RecoveryManager;

/// Snapshot entry for fuzzy checkpoints / analysis.
struct TxnTableEntry {
  TxnId id;
  TxnState state;
  Lsn last_lsn;
  Lsn undo_next_lsn;
};

class TransactionManager {
 public:
  TransactionManager(LogManager* log, LockManager* locks,
                     Metrics* metrics = nullptr)
      : log_(log), locks_(locks), metrics_(metrics) {}

  /// Late wiring (RecoveryManager also needs this object).
  void SetRecovery(RecoveryManager* r) { recovery_ = r; }

  Transaction* Begin();
  Status Commit(Transaction* txn);
  /// Lazy (asynchronous-durability) commit: append the commit record,
  /// request — but do not await — its group flush, and release locks
  /// immediately. A crash before the flush erases the transaction
  /// atomically; an explicit FlushAll (or any later synchronous commit)
  /// hardens it. Benchmark/opt-in path; Commit() is the ACID one.
  Status CommitAsync(Transaction* txn);
  /// Total rollback, then end. The transaction object stays valid (state
  /// kAborted) until released by the caller.
  Status Rollback(Transaction* txn);
  /// Partial rollback to a savepoint previously captured via
  /// txn->Savepoint(). Locks acquired since the savepoint are retained (a
  /// correct, slightly conservative choice).
  Status RollbackToSavepoint(Transaction* txn, Lsn savepoint);

  /// Append a record on behalf of `txn`, maintaining PrevLSN / LastLSN /
  /// UndoNxtLSN chains. For CLRs the caller must have set undo_next_lsn.
  Result<Lsn> AppendTxnLog(Transaction* txn, LogRecord* rec);

  /// Append a record not tied to any transaction (checkpoints).
  Result<Lsn> AppendSystemLog(LogRecord* rec);

  // -- nested top actions -----------------------------------------------
  void BeginNta(Transaction* txn) { txn->BeginNta(); }
  /// Write the dummy CLR closing the innermost nested top action.
  Status EndNta(Transaction* txn);

  /// Recreate a transaction during restart (analysis pass).
  Transaction* AdoptRestored(TxnId id, Lsn last_lsn, Lsn undo_next_lsn);
  /// Remove an ended transaction from the table.
  void Forget(TxnId id);

  std::vector<TxnTableEntry> Snapshot();
  Transaction* Find(TxnId id);

  /// End-of-rollback / restart-undo bookkeeping: write the end record and
  /// release all locks.
  Status EndTransaction(Transaction* txn, TxnState final_state);

  LockManager* locks() { return locks_; }
  LogManager* log() { return log_; }

 private:
  /// Record the transaction's CommitBreakdown into the commit_seg_*
  /// histograms and emit the per-segment trace instants (PR 9). Called after
  /// a successful Commit/CommitAsync; zero segments are recorded too so
  /// every segment histogram counts every commit.
  void HarvestBreakdown(const Transaction* txn);

  LogManager* log_;
  LockManager* locks_;
  Metrics* metrics_ = nullptr;
  RecoveryManager* recovery_ = nullptr;

  std::mutex mu_;
  TxnId next_id_ = 1;
  std::unordered_map<TxnId, std::unique_ptr<Transaction>> table_;
  std::vector<std::unique_ptr<Transaction>> finished_;  // keeps pointers valid
};

}  // namespace ariesim
