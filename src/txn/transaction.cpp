#include "txn/transaction.h"

// Transaction is header-only today; the TU anchors the module.
namespace ariesim {}
