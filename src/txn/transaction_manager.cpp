#include "txn/transaction_manager.h"

#include "common/clock.h"
#include "common/commit_breakdown.h"
#include "common/histogram.h"
#include "common/trace.h"
#include "recovery/recovery_manager.h"

namespace ariesim {

Transaction* TransactionManager::Begin() {
  std::lock_guard<std::mutex> lk(mu_);
  TxnId id = next_id_++;
  auto txn = std::make_unique<Transaction>(id);
  Transaction* raw = txn.get();
  table_[id] = std::move(txn);
  return raw;
}

Result<Lsn> TransactionManager::AppendTxnLog(Transaction* txn, LogRecord* rec) {
  // mu_ makes the {log append, LastLSN/UndoNxtLSN update} pair atomic with
  // respect to Snapshot(). Without it a fuzzy checkpoint can capture a
  // LastLSN that lags the log: the snapshot then claims a transaction's
  // final record is an update even though its commit record already sits
  // before the begin-checkpoint, and restart analysis — which can only see
  // records at or after the begin-checkpoint — would adopt the committed
  // transaction as a loser and roll it back. Appends are already serialized
  // by the log's own mutex, so this adds no meaningful contention.
  std::lock_guard<std::mutex> lk(mu_);
  rec->txn_id = txn->id();
  rec->prev_lsn = txn->last_lsn();
  ARIES_ASSIGN_OR_RETURN(Lsn lsn, log_->Append(rec));
  txn->set_last_lsn(lsn);
  if (rec->IsClr()) {
    txn->set_undo_next_lsn(rec->undo_next_lsn);
  } else if (rec->type == LogType::kUpdate) {
    txn->set_undo_next_lsn(lsn);
  }
  return lsn;
}

Result<Lsn> TransactionManager::AppendSystemLog(LogRecord* rec) {
  rec->txn_id = kInvalidTxnId;
  rec->prev_lsn = kNullLsn;
  return log_->Append(rec);
}

Status TransactionManager::EndNta(Transaction* txn) {
  Lsn anchor = txn->PopNta();
  LogRecord dummy;
  dummy.type = LogType::kCompensation;
  dummy.rm = RmId::kNone;
  dummy.undo_next_lsn = anchor;
  ARIES_RETURN_NOT_OK(AppendTxnLog(txn, &dummy).status());
  return Status::OK();
}

Status TransactionManager::Commit(Transaction* txn) {
  // Commit latency = append + durability wait + lock release, i.e. what the
  // caller of Database::Commit experiences.
  ScopedLatency timer(metrics_ != nullptr ? &metrics_->commit_latency
                                          : nullptr);
  ARIES_TRACE_SPAN(span, "txn.commit", TraceCat::kTxn, txn->id());
  // Adopt the thread's operation-phase wait accumulation (best-effort: it is
  // exact for the common one-transaction-per-thread pattern), then rebind
  // the attribution TLS to the committing transaction so the commit-path
  // segments land on this breakdown exactly (common/commit_breakdown.h).
  if (CommitBreakdown* scratch = CurrentCommitBreakdown()) {
    if (scratch != &txn->breakdown()) {
      txn->breakdown() = *scratch;
      scratch->Reset();
    }
  }
  ScopedCommitBreakdownBinding bind(&txn->breakdown());
  LogRecord commit;
  commit.type = LogType::kCommit;
  const uint64_t append_start_ns = MonotonicNowNs();
  Result<Lsn> lsn_res = AppendTxnLog(txn, &commit);
  AddCommitSegment(CommitSegment::log_append,
                   MonotonicNowNs() - append_start_ns);
  ARIES_RETURN_NOT_OK(lsn_res.status());
  Lsn lsn = lsn_res.value();
  // Commit rule: force the log up to and including the commit record.
  // CommitFlush coalesces with concurrent committers when group commit is
  // on; a returned error means the commit record is NOT durable and the
  // transaction must not be acknowledged (locks stay held — after a crash
  // the transaction either survives whole or is rolled back by restart).
  ARIES_RETURN_NOT_OK(log_->CommitFlush(lsn + commit.SerializedSize()));
  ARIES_RETURN_NOT_OK(EndTransaction(txn, TxnState::kCommitted));
  HarvestBreakdown(txn);
  return Status::OK();
}

Status TransactionManager::CommitAsync(Transaction* txn) {
  // Lazy commits record the (short) append+enqueue window into the same
  // histogram: that is still the latency the caller observes.
  ScopedLatency timer(metrics_ != nullptr ? &metrics_->commit_latency
                                          : nullptr);
  ARIES_TRACE_SPAN(span, "txn.commit_async", TraceCat::kTxn, txn->id());
  if (CommitBreakdown* scratch = CurrentCommitBreakdown()) {
    if (scratch != &txn->breakdown()) {
      txn->breakdown() = *scratch;
      scratch->Reset();
    }
  }
  ScopedCommitBreakdownBinding bind(&txn->breakdown());
  LogRecord commit;
  commit.type = LogType::kCommit;
  const uint64_t append_start_ns = MonotonicNowNs();
  Result<Lsn> lsn_res = AppendTxnLog(txn, &commit);
  AddCommitSegment(CommitSegment::log_append,
                   MonotonicNowNs() - append_start_ns);
  ARIES_RETURN_NOT_OK(lsn_res.status());
  Lsn lsn = lsn_res.value();
  // Lazy commit: enqueue the durability request and release locks without
  // waiting for the flush. Trades the D of ACID at crash time — a crash
  // before the next group flush forgets this transaction (atomically, via
  // restart undo) — for commit latency. Reads-from ordering stays safe:
  // any later transaction that saw our writes has a larger commit LSN, so
  // it can only be durable if we are.
  log_->RequestFlush(lsn + commit.SerializedSize());
  ARIES_RETURN_NOT_OK(EndTransaction(txn, TxnState::kCommitted));
  HarvestBreakdown(txn);
  return Status::OK();
}

void TransactionManager::HarvestBreakdown(const Transaction* txn) {
  const CommitBreakdown& bd = txn->breakdown();
  if (metrics_ != nullptr) {
    // One Record per segment per commit, zeros included: every commit_seg_*
    // histogram then has commit-count observations and per-commit means.
    // The histogram names mirror ARIESIM_COMMIT_SEGMENTS by hand (see
    // common/metrics.h); commit_breakdown_test.cpp enforces the pairing.
#define ARIESIM_RECORD_SEG(name) \
  metrics_->commit_seg_##name.Record(bd.Get(CommitSegment::name));
    ARIESIM_COMMIT_SEGMENTS(ARIESIM_RECORD_SEG)
#undef ARIESIM_RECORD_SEG
  }
  // Opt-in per-transaction breakdown in the trace stream: one instant per
  // segment, value = accumulated nanoseconds. Compiled out with the rest of
  // the tracer under -DARIESIM_TRACE=OFF.
#define ARIESIM_TRACE_SEG(name)                          \
  ARIES_TRACE_INSTANT("commit.seg." #name, TraceCat::kTxn, \
                      bd.Get(CommitSegment::name));
  ARIESIM_COMMIT_SEGMENTS(ARIESIM_TRACE_SEG)
#undef ARIESIM_TRACE_SEG
}

Status TransactionManager::EndTransaction(Transaction* txn, TxnState final_state) {
  // Publish the outcome before the end record hits the log: a fuzzy
  // checkpoint snapshotting this entry between the end-record append and
  // Forget() must not see a stale kActive for a resolved transaction.
  txn->set_state(final_state);
  LogRecord end;
  end.type = LogType::kEnd;
  const uint64_t append_start_ns = MonotonicNowNs();
  Status append_status = AppendTxnLog(txn, &end).status();
  AddCommitSegment(CommitSegment::log_append,
                   MonotonicNowNs() - append_start_ns);
  ARIES_RETURN_NOT_OK(append_status);
  locks_->ReleaseAll(txn->id());
  Forget(txn->id());
  return Status::OK();
}

Status TransactionManager::Rollback(Transaction* txn) {
  ARIES_TRACE_SPAN(span, "txn.rollback", TraceCat::kTxn, txn->id());
  txn->set_state(TxnState::kRollingBack);
  LogRecord abort;
  abort.type = LogType::kAbort;
  ARIES_RETURN_NOT_OK(AppendTxnLog(txn, &abort).status());
  ARIES_RETURN_NOT_OK(recovery_->UndoTransaction(txn, kNullLsn));
  return EndTransaction(txn, TxnState::kAborted);
}

Status TransactionManager::RollbackToSavepoint(Transaction* txn, Lsn savepoint) {
  return recovery_->UndoTransaction(txn, savepoint);
}

Transaction* TransactionManager::AdoptRestored(TxnId id, Lsn last_lsn,
                                               Lsn undo_next_lsn) {
  std::lock_guard<std::mutex> lk(mu_);
  auto txn = std::make_unique<Transaction>(id);
  txn->set_last_lsn(last_lsn);
  txn->set_undo_next_lsn(undo_next_lsn);
  txn->set_state(TxnState::kRollingBack);
  Transaction* raw = txn.get();
  table_[id] = std::move(txn);
  if (id >= next_id_) next_id_ = id + 1;
  return raw;
}

void TransactionManager::Forget(TxnId id) {
  std::lock_guard<std::mutex> lk(mu_);
  // Keep the object alive: callers may still hold the pointer. Move it to a
  // graveyard emptied lazily — here simply release ownership into a retained
  // list so pointers stay valid until shutdown.
  auto it = table_.find(id);
  if (it != table_.end()) {
    finished_.push_back(std::move(it->second));
    table_.erase(it);
  }
}

std::vector<TxnTableEntry> TransactionManager::Snapshot() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TxnTableEntry> out;
  out.reserve(table_.size());
  for (auto& [id, txn] : table_) {
    out.push_back(TxnTableEntry{id, txn->state(), txn->last_lsn(),
                                txn->undo_next_lsn()});
  }
  return out;
}

Transaction* TransactionManager::Find(TxnId id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = table_.find(id);
  return it == table_.end() ? nullptr : it->second.get();
}

}  // namespace ariesim
