// Reader-writer latch with conditional (try) acquisition and instant-duration
// support. Latches, per the paper (§1.2), protect *physical* consistency and
// are held for microseconds; they are distinct from locks (LockManager),
// which protect *logical* consistency and may be held to commit.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace ariesim {

/// Latch modes.
enum class LatchMode : uint8_t { kShared, kExclusive };

/// A fair-ish S/X latch. Writers take priority once queued to avoid
/// starvation during SMO propagation.
class RwLatch {
 public:
  RwLatch() = default;
  RwLatch(const RwLatch&) = delete;
  RwLatch& operator=(const RwLatch&) = delete;

  void LockShared();
  void LockExclusive();
  /// Conditional acquisition; returns false immediately if not grantable.
  bool TryLockShared();
  bool TryLockExclusive();
  void UnlockShared();
  void UnlockExclusive();

  void Lock(LatchMode m) {
    m == LatchMode::kShared ? LockShared() : LockExclusive();
  }
  bool TryLock(LatchMode m) {
    return m == LatchMode::kShared ? TryLockShared() : TryLockExclusive();
  }
  void Unlock(LatchMode m) {
    m == LatchMode::kShared ? UnlockShared() : UnlockExclusive();
  }

  /// Instant-duration acquisition: wait until the latch is grantable in the
  /// given mode, then immediately release. Used for the "S latch tree for
  /// instant duration" step (paper Figure 4): the caller only needs to wait
  /// out in-progress exclusive holders (in-flight SMOs).
  void LockInstant(LatchMode m) {
    Lock(m);
    Unlock(m);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int readers_ = 0;          // active shared holders
  bool writer_ = false;      // active exclusive holder
  int waiting_writers_ = 0;  // queued exclusive requests (priority)
};

/// RAII guard over an RwLatch.
class LatchGuard {
 public:
  LatchGuard() = default;
  LatchGuard(RwLatch* latch, LatchMode mode) : latch_(latch), mode_(mode) {
    latch_->Lock(mode_);
  }
  ~LatchGuard() { Release(); }
  LatchGuard(const LatchGuard&) = delete;
  LatchGuard& operator=(const LatchGuard&) = delete;
  LatchGuard(LatchGuard&& o) noexcept : latch_(o.latch_), mode_(o.mode_) {
    o.latch_ = nullptr;
  }
  LatchGuard& operator=(LatchGuard&& o) noexcept {
    if (this != &o) {
      Release();
      latch_ = o.latch_;
      mode_ = o.mode_;
      o.latch_ = nullptr;
    }
    return *this;
  }

  void Release() {
    if (latch_ != nullptr) {
      latch_->Unlock(mode_);
      latch_ = nullptr;
    }
  }
  bool held() const { return latch_ != nullptr; }

 private:
  RwLatch* latch_ = nullptr;
  LatchMode mode_ = LatchMode::kShared;
};

}  // namespace ariesim
