#include "util/crc32c.h"

#include <array>

namespace ariesim {
namespace crc32c {

namespace {

constexpr uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli polynomial

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    t[i] = c;
  }
  return t;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Value(const char* data, size_t n, uint32_t init) {
  const auto& t = Table();
  uint32_t c = ~init;
  for (size_t i = 0; i < n; ++i) {
    c = t[(c ^ static_cast<uint8_t>(data[i])) & 0xFF] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace crc32c
}  // namespace ariesim
