// CRC32C (Castagnoli), software table implementation. Used for per-page and
// per-log-record checksums so recovery can detect the torn tail of the log
// and page corruption.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ariesim {
namespace crc32c {

/// Compute CRC32C of data[0..n), extending `init` (pass 0 for a fresh crc).
uint32_t Value(const char* data, size_t n, uint32_t init = 0);

/// Masked crc (RocksDB-style) so that a crc stored alongside the data it
/// covers does not produce degenerate self-checksums.
inline uint32_t Mask(uint32_t crc) { return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul; }
inline uint32_t Unmask(uint32_t m) {
  uint32_t rot = m - 0xa282ead8ul;
  return (rot << 15) | (rot >> 17);
}

}  // namespace crc32c
}  // namespace ariesim
