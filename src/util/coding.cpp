#include "util/coding.h"

// Header-only; this TU exists so the library has a stable object for the
// module and to catch ODR issues early.
namespace ariesim {}
