// Deterministic pseudo-random generator for tests and workload generators.
#pragma once

#include <cstdint>
#include <string>

namespace ariesim {

/// xorshift128+ generator; fast and reproducible across platforms.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    s0_ = seed ^ 0x2545F4914F6CDD1Dull;
    s1_ = seed * 0x9e3779b97f4a7c15ull + 1;
    for (int i = 0; i < 8; ++i) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Uniform(hi - lo + 1); }

  /// True with probability pct/100.
  bool Percent(uint32_t pct) { return Uniform(100) < pct; }

  /// Fixed-width zero-padded decimal key, handy for ordered workloads.
  std::string Key(uint64_t v, int width = 10) {
    std::string s = std::to_string(v);
    if (static_cast<int>(s.size()) < width) {
      s.insert(0, static_cast<size_t>(width) - s.size(), '0');
    }
    return s;
  }

 private:
  uint64_t s0_, s1_;
};

}  // namespace ariesim
