#include "util/rwlatch.h"

namespace ariesim {

void RwLatch::LockShared() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return !writer_ && waiting_writers_ == 0; });
  ++readers_;
}

void RwLatch::LockExclusive() {
  std::unique_lock<std::mutex> lk(mu_);
  ++waiting_writers_;
  cv_.wait(lk, [&] { return !writer_ && readers_ == 0; });
  --waiting_writers_;
  writer_ = true;
}

bool RwLatch::TryLockShared() {
  std::unique_lock<std::mutex> lk(mu_);
  if (writer_ || waiting_writers_ > 0) return false;
  ++readers_;
  return true;
}

bool RwLatch::TryLockExclusive() {
  std::unique_lock<std::mutex> lk(mu_);
  if (writer_ || readers_ > 0) return false;
  writer_ = true;
  return true;
}

void RwLatch::UnlockShared() {
  std::unique_lock<std::mutex> lk(mu_);
  if (--readers_ == 0) cv_.notify_all();
}

void RwLatch::UnlockExclusive() {
  std::unique_lock<std::mutex> lk(mu_);
  writer_ = false;
  cv_.notify_all();
}

}  // namespace ariesim
