// Little-endian fixed-width encoders/decoders and length-prefixed strings,
// used by the page layouts and the WAL serializer.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace ariesim {

inline void EncodeFixed16(char* dst, uint16_t v) { std::memcpy(dst, &v, 2); }
inline void EncodeFixed32(char* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

inline uint16_t DecodeFixed16(const char* src) {
  uint16_t v;
  std::memcpy(&v, src, 2);
  return v;
}
inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

inline void PutFixed16(std::string* dst, uint16_t v) {
  dst->append(reinterpret_cast<const char*>(&v), 2);
}
inline void PutFixed32(std::string* dst, uint32_t v) {
  dst->append(reinterpret_cast<const char*>(&v), 4);
}
inline void PutFixed64(std::string* dst, uint64_t v) {
  dst->append(reinterpret_cast<const char*>(&v), 8);
}
inline void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

/// Largest encoded size of a varint64.
inline constexpr size_t kMaxVarint64Bytes = 10;

inline void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

/// Cursor-style reader over a byte buffer. All Get* methods advance the
/// cursor; callers must know the layout (the WAL payloads are versioned by
/// record opcode, not self-describing).
class BufferReader {
 public:
  BufferReader(const char* data, size_t size) : p_(data), end_(data + size) {}
  explicit BufferReader(std::string_view s) : BufferReader(s.data(), s.size()) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  uint8_t GetFixed8() { return GetT<uint8_t>(); }
  uint16_t GetFixed16() { return GetT<uint16_t>(); }
  uint32_t GetFixed32() { return GetT<uint32_t>(); }
  uint64_t GetFixed64() { return GetT<uint64_t>(); }

  uint64_t GetVarint64() {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (remaining() < 1) {
        ok_ = false;
        return 0;
      }
      uint8_t b = static_cast<uint8_t>(*p_++);
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
    }
    ok_ = false;  // over-long encoding
    return 0;
  }

  std::string_view GetLengthPrefixed() {
    uint32_t n = GetFixed32();
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return {};
    }
    std::string_view s(p_, n);
    p_ += n;
    return s;
  }

 private:
  template <typename T>
  T GetT() {
    if (remaining() < sizeof(T)) {
      ok_ = false;
      return T{};
    }
    T v;
    std::memcpy(&v, p_, sizeof(T));
    p_ += sizeof(T);
    return v;
  }

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

}  // namespace ariesim
