// Deterministic fault injection for crash-recovery testing.
//
// A FaultInjector is a passive decision point threaded through the storage
// stack: DiskManager (page read/write/sync), LogManager (tail flush) and
// BufferPool (eviction write-back) consult it before touching the file
// system. Tests arm one fault spec — "tear the 7th page write after byte
// 113", "fail the 3rd log flush after writing 40 bytes", "return IOError
// from the next 2 reads" — and the injector fires it exactly once the
// matching I/O arrives, then (for the crash-shaped faults) freezes the
// device so no later write can paper over the damage, exactly as a real
// power failure would.
//
// Everything is counter-based and seed-derivable: the same spec against the
// same workload produces the same torn byte. See docs/FAULT_INJECTION.md.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/types.h"

namespace ariesim {

/// Instrumented I/O sites. A fault spec targets exactly one site.
enum class FaultSite : uint8_t {
  kDataRead = 0,   ///< DiskManager::ReadPage
  kDataWrite = 1,  ///< DiskManager::WritePage
  kDataSync = 2,   ///< DiskManager::Sync
  kLogFlush = 3,   ///< LogManager tail flush (one pwrite of the buffer)
  kEvictWrite = 4, ///< BufferPool::WriteFrame (dirty-frame write-back)
};
inline constexpr int kFaultSiteCount = 5;

const char* FaultSiteName(FaultSite site);

enum class FaultKind : uint8_t {
  kNone = 0,
  /// Page write persists only the first `keep_bytes` bytes; the caller sees
  /// success (a torn write is only observable after the crash). Freezes the
  /// device afterwards by default.
  kTornWrite = 1,
  /// Log flush persists only the first `keep_bytes` bytes of the tail and
  /// fails; flushed_lsn does not advance. Freezes the device afterwards by
  /// default.
  kPartialFlush = 2,
  /// The matching call (and the `repeat - 1` matching calls after it)
  /// return Status::IOError; the device then heals.
  kTransientError = 3,
  /// In-place bit-rot: the matching page read/write proceeds but the payload
  /// is deterministically scrambled (reads: after the bytes leave the disk;
  /// writes: what lands on disk), modeling media decay on cold pages. The
  /// caller sees success — only a checksum check can notice. `repeat`
  /// matching calls rot, then the device heals. Never freezes.
  kBitRot = 4,
  /// Every matching call returns Status::IOError until Disarm — a
  /// non-transient (media) failure that no amount of retrying fixes.
  kPersistentError = 5,
  /// Stuck-then-recovering device: from the first matching call, every I/O
  /// at the armed site fails for `stall_us` microseconds of wall-clock time,
  /// after which the device heals and I/O proceeds normally.
  kStuckDevice = 6,
};

const char* FaultKindName(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  FaultSite site = FaultSite::kDataWrite;
  /// Fire on the nth matching I/O after Arm (0 = the very next one).
  uint64_t nth = 0;
  /// kTornWrite / kPartialFlush: bytes of the new image that reach the file.
  /// Clamped to the I/O size minus one so a "tear" always loses something.
  uint32_t keep_bytes = 0;
  /// kTransientError / kBitRot: number of consecutive matching calls that
  /// fail / rot.
  uint32_t repeat = 1;
  /// Restrict the fault to one page (kDataRead/kDataWrite/kEvictWrite sites
  /// only; those sites report the page id). kInvalidPageId = any page.
  PageId page_id = kInvalidPageId;
  /// kStuckDevice: how long the device stays stuck, in microseconds of
  /// wall-clock time from the first matching call.
  uint32_t stall_us = 0;
  /// kTornWrite / kPartialFlush: fail every subsequent I/O at every site
  /// after firing (the machine is dead; only SimulateCrash + reopen can
  /// follow). Transient errors ignore this.
  bool freeze_after = true;

  std::string ToString() const;
};

/// What the instrumented call site must do.
struct FaultAction {
  enum class Kind : uint8_t {
    kProceed = 0,  ///< perform the I/O normally
    kTear = 1,     ///< persist only `keep_bytes` bytes
    kFail = 2,     ///< perform no I/O; return Status::IOError
    kCorrupt = 3,  ///< perform the I/O, then scramble the payload (bit-rot)
  };
  Kind kind = Kind::kProceed;
  uint32_t keep_bytes = 0;
};

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arm `spec`. Replaces any previous spec; resets the match counter but
  /// not the lifetime trip/op counters.
  void Arm(const FaultSpec& spec);
  /// Disarm and thaw. Pending transient repeats are cancelled.
  void Disarm();

  /// Consulted by the storage stack before each I/O of `bytes` bytes.
  /// Page-addressed sites pass the page id so specs can target one page.
  FaultAction OnIo(FaultSite site, uint64_t bytes,
                   PageId page = kInvalidPageId);

  /// True once the armed fault has fired at least once.
  bool tripped() const { return fires_.load(std::memory_order_acquire) > 0; }
  /// Number of calls that were torn or failed since construction.
  uint64_t fires() const { return fires_.load(std::memory_order_acquire); }
  /// True while every I/O is failing post-trip.
  bool frozen() const { return frozen_.load(std::memory_order_acquire); }

  /// Matching-I/O count observed while armed (for choosing `nth` sweeps).
  uint64_t ops_while_armed(FaultSite site) const;

  /// Human-readable state, for logging a failing seed's reproduction line.
  std::string Describe() const;

  /// Machine-readable state as one JSON object: the armed/last spec's kind
  /// and site names plus armed/frozen/fires. The flight recorder embeds it
  /// so a postmortem can match the black box against the injected fault.
  std::string StateJson() const;

 private:
  mutable std::mutex mu_;
  FaultSpec spec_;
  bool armed_ = false;
  uint64_t match_count_ = 0;       // matching I/Os since Arm
  uint32_t remaining_repeats_ = 0; // transient errors / rots left to deliver
  bool stuck_active_ = false;      // kStuckDevice: stall window started
  std::chrono::steady_clock::time_point stuck_until_{};
  uint64_t site_ops_[kFaultSiteCount] = {0};
  // Read lock-free on the I/O fast path and by test threads.
  std::atomic<bool> active_{false};  // armed or frozen
  std::atomic<bool> frozen_{false};
  std::atomic<uint64_t> fires_{0};
};

/// A crash that leaves the on-disk files mid-write, applied by
/// Database::SimulateTornCrash after volatile state is discarded.
struct TornCrashSpec {
  enum class Target : uint8_t {
    kNone = 0,      ///< plain crash (equivalent to SimulateCrash)
    kDataPage = 1,  ///< tear one page of data.db: keep a prefix, trash the rest
    kLogTail = 2,   ///< truncate wal.log to `truncate_to` bytes
  };
  Target target = Target::kNone;
  PageId page_id = kInvalidPageId;  ///< kDataPage: which page to tear
  uint32_t keep_bytes = 0;          ///< kDataPage: prefix of the page preserved
  uint64_t truncate_to = 0;         ///< kLogTail: resulting file size in bytes

  std::string ToString() const;
};

}  // namespace ariesim
