#include "util/fault_injector.h"

#include <algorithm>
#include <sstream>

namespace ariesim {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kDataRead:
      return "data-read";
    case FaultSite::kDataWrite:
      return "data-write";
    case FaultSite::kDataSync:
      return "data-sync";
    case FaultSite::kLogFlush:
      return "log-flush";
    case FaultSite::kEvictWrite:
      return "evict-write";
  }
  return "?";
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTornWrite:
      return "torn-write";
    case FaultKind::kPartialFlush:
      return "partial-flush";
    case FaultKind::kTransientError:
      return "transient-error";
    case FaultKind::kBitRot:
      return "bit-rot";
    case FaultKind::kPersistentError:
      return "persistent-error";
    case FaultKind::kStuckDevice:
      return "stuck-device";
  }
  return "?";
}

std::string FaultSpec::ToString() const {
  std::ostringstream os;
  os << FaultKindName(kind) << "@" << FaultSiteName(site) << " nth=" << nth
     << " keep=" << keep_bytes << " repeat=" << repeat
     << (freeze_after ? " freeze" : "");
  if (page_id != kInvalidPageId) os << " page=" << page_id;
  if (stall_us != 0) os << " stall_us=" << stall_us;
  return os.str();
}

std::string TornCrashSpec::ToString() const {
  std::ostringstream os;
  switch (target) {
    case Target::kNone:
      os << "plain-crash";
      break;
    case Target::kDataPage:
      os << "torn-page id=" << page_id << " keep=" << keep_bytes;
      break;
    case Target::kLogTail:
      os << "log-tail truncate_to=" << truncate_to;
      break;
  }
  return os.str();
}

void FaultInjector::Arm(const FaultSpec& spec) {
  std::lock_guard<std::mutex> lk(mu_);
  spec_ = spec;
  armed_ = spec.kind != FaultKind::kNone;
  match_count_ = 0;
  remaining_repeats_ = spec.repeat == 0 ? 1 : spec.repeat;
  stuck_active_ = false;
  active_.store(armed_ || frozen_.load(std::memory_order_relaxed),
                std::memory_order_release);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lk(mu_);
  armed_ = false;
  spec_ = FaultSpec{};
  frozen_.store(false, std::memory_order_release);
  active_.store(false, std::memory_order_release);
}

FaultAction FaultInjector::OnIo(FaultSite site, uint64_t bytes, PageId page) {
  if (!active_.load(std::memory_order_acquire)) return FaultAction{};
  std::lock_guard<std::mutex> lk(mu_);
  if (frozen_.load(std::memory_order_relaxed)) {
    fires_.fetch_add(1, std::memory_order_release);
    return FaultAction{FaultAction::Kind::kFail, 0};
  }
  if (!armed_ || site != spec_.site) return FaultAction{};
  site_ops_[static_cast<int>(site)]++;
  if (spec_.page_id != kInvalidPageId && page != spec_.page_id) {
    return FaultAction{};
  }
  uint64_t seq = match_count_++;
  if (seq < spec_.nth) return FaultAction{};

  FaultAction action;
  switch (spec_.kind) {
    case FaultKind::kNone:
      return FaultAction{};
    case FaultKind::kTornWrite:
    case FaultKind::kPartialFlush: {
      action.kind = FaultAction::Kind::kTear;
      // A tear must lose at least one byte to be a tear at all.
      uint64_t cap = bytes == 0 ? 0 : bytes - 1;
      action.keep_bytes =
          static_cast<uint32_t>(std::min<uint64_t>(spec_.keep_bytes, cap));
      armed_ = false;
      if (spec_.freeze_after) frozen_.store(true, std::memory_order_release);
      break;
    }
    case FaultKind::kTransientError: {
      action.kind = FaultAction::Kind::kFail;
      if (--remaining_repeats_ == 0) armed_ = false;
      break;
    }
    case FaultKind::kBitRot: {
      action.kind = FaultAction::Kind::kCorrupt;
      if (--remaining_repeats_ == 0) armed_ = false;
      break;
    }
    case FaultKind::kPersistentError: {
      // Media failure: fails every match until the test Disarms it.
      action.kind = FaultAction::Kind::kFail;
      break;
    }
    case FaultKind::kStuckDevice: {
      auto now = std::chrono::steady_clock::now();
      if (!stuck_active_) {
        stuck_active_ = true;
        stuck_until_ = now + std::chrono::microseconds(spec_.stall_us);
      }
      if (now >= stuck_until_) {
        // The device came back; heal and let this I/O through.
        armed_ = false;
        stuck_active_ = false;
        active_.store(frozen_.load(std::memory_order_relaxed),
                      std::memory_order_release);
        return FaultAction{};
      }
      action.kind = FaultAction::Kind::kFail;
      break;
    }
  }
  fires_.fetch_add(1, std::memory_order_release);
  active_.store(armed_ || frozen_.load(std::memory_order_relaxed),
                std::memory_order_release);
  return action;
}

uint64_t FaultInjector::ops_while_armed(FaultSite site) const {
  std::lock_guard<std::mutex> lk(mu_);
  return site_ops_[static_cast<int>(site)];
}

std::string FaultInjector::Describe() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream os;
  os << "spec={" << spec_.ToString() << "} armed=" << (armed_ ? 1 : 0)
     << " frozen=" << (frozen_.load(std::memory_order_relaxed) ? 1 : 0)
     << " fires=" << fires_.load(std::memory_order_relaxed) << " ops=[";
  for (int i = 0; i < kFaultSiteCount; i++) {
    if (i) os << " ";
    os << FaultSiteName(static_cast<FaultSite>(i)) << ":" << site_ops_[i];
  }
  os << "]";
  return os.str();
}

std::string FaultInjector::StateJson() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\"kind\":\"";
  out += FaultKindName(spec_.kind);
  out += "\",\"site\":\"";
  out += FaultSiteName(spec_.site);
  out += "\",\"armed\":";
  out += armed_ ? "true" : "false";
  out += ",\"frozen\":";
  out += frozen_.load(std::memory_order_relaxed) ? "true" : "false";
  out += ",\"fires\":";
  out += std::to_string(fires_.load(std::memory_order_relaxed));
  out += ",\"spec\":\"";
  // ToString has no quotes or backslashes, but stay safe if that changes.
  for (char c : spec_.ToString()) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\"}";
  return out;
}

}  // namespace ariesim
