#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

namespace ariesim {

DiskManager::DiskManager(std::string path, size_t page_size, Metrics* metrics,
                         uint32_t sim_io_delay_us)
    : path_(std::move(path)),
      page_size_(page_size),
      metrics_(metrics),
      sim_io_delay_us_(sim_io_delay_us) {}

DiskManager::~DiskManager() { Close(); }

Status DiskManager::Open() {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    return Status::IOError("open " + path_ + ": " + std::strerror(errno));
  }
  return Status::OK();
}

void DiskManager::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status DiskManager::ReadPage(PageId id, char* buf) {
  if (sim_io_delay_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(sim_io_delay_us_));
  }
  off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  ssize_t n = ::pread(fd_, buf, page_size_, off);
  if (n < 0) {
    return Status::IOError("pread page " + std::to_string(id) + ": " +
                           std::strerror(errno));
  }
  if (static_cast<size_t>(n) < page_size_) {
    // Fresh page (or short tail): zero-fill the remainder.
    std::memset(buf + n, 0, page_size_ - n);
  }
  if (metrics_ != nullptr) {
    metrics_->pages_read.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* buf) {
  if (sim_io_delay_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(sim_io_delay_us_));
  }
  off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  ssize_t n = ::pwrite(fd_, buf, page_size_, off);
  if (n != static_cast<ssize_t>(page_size_)) {
    return Status::IOError("pwrite page " + std::to_string(id) + ": " +
                           std::strerror(errno));
  }
  if (metrics_ != nullptr) {
    metrics_->pages_written.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status DiskManager::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IOError(std::string("fsync: ") + std::strerror(errno));
  }
  return Status::OK();
}

uint64_t DiskManager::PagesOnDisk() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size) / page_size_;
}

}  // namespace ariesim
