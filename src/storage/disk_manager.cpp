#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <thread>

namespace ariesim {

namespace {
// Deterministic bit-rot pattern for FaultKind::kBitRot: XOR a run of bytes
// starting inside the page header so the stored checksum no longer matches
// the body no matter what the page held.
void ScramblePage(char* buf, size_t page_size) {
  size_t start = std::min<size_t>(16, page_size / 2);
  size_t len = std::min<size_t>(48, page_size - start);
  for (size_t i = 0; i < len; i++) {
    buf[start + i] = static_cast<char>(buf[start + i] ^ 0x5A);
  }
}
}  // namespace

DiskManager::DiskManager(std::string path, size_t page_size, Metrics* metrics,
                         uint32_t sim_io_delay_us)
    : path_(std::move(path)),
      page_size_(page_size),
      metrics_(metrics),
      sim_io_delay_us_(sim_io_delay_us) {}

DiskManager::~DiskManager() { Close(); }

Status DiskManager::Open() {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    return Status::IOError("open " + path_ + ": " + std::strerror(errno));
  }
  return Status::OK();
}

void DiskManager::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void DiskManager::SetRetryPolicy(int attempts, uint32_t base_delay_us,
                                 uint32_t max_delay_us) {
  retry_attempts_ = attempts < 1 ? 1 : attempts;
  retry_base_delay_us_ = base_delay_us;
  retry_max_delay_us_ = max_delay_us;
}

void DiskManager::BackoffBeforeRetry(int attempt) {
  if (metrics_ != nullptr) {
    metrics_->io_retries.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t delay = retry_base_delay_us_;
  // Double per completed attempt: retry 1 waits base, retry 2 waits 2*base...
  if (attempt > 1) delay <<= std::min(attempt - 1, 20);
  if (retry_max_delay_us_ > 0) {
    delay = std::min<uint64_t>(delay, retry_max_delay_us_);
  }
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
  }
}

Status DiskManager::ReadPage(PageId id, char* buf) {
  Status s = ReadPageOnce(id, buf);
  for (int attempt = 1;
       s.code() == Code::kIOError && attempt < retry_attempts_; attempt++) {
    BackoffBeforeRetry(attempt);
    s = ReadPageOnce(id, buf);
  }
  return s;
}

Status DiskManager::ReadPageOnce(PageId id, char* buf) {
  if (sim_io_delay_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(sim_io_delay_us_));
  }
  bool rot = false;
  if (fault_ != nullptr) {
    FaultAction a = fault_->OnIo(FaultSite::kDataRead, page_size_, id);
    if (a.kind == FaultAction::Kind::kCorrupt) {
      rot = true;  // the read "succeeds" but the media has decayed
    } else if (a.kind != FaultAction::Kind::kProceed) {
      return Status::IOError("fault injection: read of page " +
                             std::to_string(id));
    }
  }
  off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  ssize_t n = ::pread(fd_, buf, page_size_, off);
  if (n < 0) {
    return Status::IOError("pread page " + std::to_string(id) + ": " +
                           std::strerror(errno));
  }
  if (static_cast<size_t>(n) < page_size_) {
    // Fresh page (or short tail): zero-fill the remainder.
    std::memset(buf + n, 0, page_size_ - n);
  }
  if (rot) ScramblePage(buf, page_size_);
  if (metrics_ != nullptr) {
    metrics_->pages_read.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* buf) {
  Status s = WritePageOnce(id, buf);
  for (int attempt = 1;
       s.code() == Code::kIOError && attempt < retry_attempts_; attempt++) {
    BackoffBeforeRetry(attempt);
    s = WritePageOnce(id, buf);
  }
  return s;
}

Status DiskManager::WritePageOnce(PageId id, const char* buf) {
  if (sim_io_delay_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(sim_io_delay_us_));
  }
  size_t write_len = page_size_;
  std::string rotted;
  if (fault_ != nullptr) {
    FaultAction a = fault_->OnIo(FaultSite::kDataWrite, page_size_, id);
    if (a.kind == FaultAction::Kind::kFail) {
      return Status::IOError("fault injection: write of page " +
                             std::to_string(id));
    }
    if (a.kind == FaultAction::Kind::kTear) {
      // The torn prefix reaches the platter; the caller sees success, as it
      // would before the power actually failed.
      write_len = a.keep_bytes;
    }
    if (a.kind == FaultAction::Kind::kCorrupt) {
      // In-place bit-rot: what lands on disk is scrambled, the caller sees
      // success. Only the next verified read can notice.
      rotted.assign(buf, page_size_);
      ScramblePage(rotted.data(), page_size_);
      buf = rotted.data();
    }
  }
  off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  if (write_len > 0) {
    ssize_t n = ::pwrite(fd_, buf, write_len, off);
    if (n < 0) {
      return Status::IOError("pwrite page " + std::to_string(id) + ": " +
                             std::strerror(errno));
    }
    if (static_cast<size_t>(n) != write_len) {
      // A short write is not an errno failure: an unknown prefix of the page
      // is now on disk. Report the byte counts so callers (and operators) can
      // distinguish a torn page from a plain I/O error.
      return Status::IOError("short pwrite of page " + std::to_string(id) +
                             ": wrote " + std::to_string(n) + " of " +
                             std::to_string(write_len) + " bytes");
    }
  }
  if (metrics_ != nullptr) {
    metrics_->pages_written.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status DiskManager::Sync() {
  Status s = SyncOnce();
  for (int attempt = 1;
       s.code() == Code::kIOError && attempt < retry_attempts_; attempt++) {
    BackoffBeforeRetry(attempt);
    s = SyncOnce();
  }
  return s;
}

Status DiskManager::SyncOnce() {
  if (fault_ != nullptr) {
    FaultAction a = fault_->OnIo(FaultSite::kDataSync, 0);
    if (a.kind != FaultAction::Kind::kProceed) {
      return Status::IOError("fault injection: data sync");
    }
  }
  if (::fsync(fd_) != 0) {
    return Status::IOError(std::string("fsync: ") + std::strerror(errno));
  }
  return Status::OK();
}

uint64_t DiskManager::PagesOnDisk() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size) / page_size_;
}

}  // namespace ariesim
