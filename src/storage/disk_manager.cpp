#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

namespace ariesim {

DiskManager::DiskManager(std::string path, size_t page_size, Metrics* metrics,
                         uint32_t sim_io_delay_us)
    : path_(std::move(path)),
      page_size_(page_size),
      metrics_(metrics),
      sim_io_delay_us_(sim_io_delay_us) {}

DiskManager::~DiskManager() { Close(); }

Status DiskManager::Open() {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    return Status::IOError("open " + path_ + ": " + std::strerror(errno));
  }
  return Status::OK();
}

void DiskManager::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status DiskManager::ReadPage(PageId id, char* buf) {
  if (sim_io_delay_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(sim_io_delay_us_));
  }
  if (fault_ != nullptr) {
    FaultAction a = fault_->OnIo(FaultSite::kDataRead, page_size_);
    if (a.kind != FaultAction::Kind::kProceed) {
      return Status::IOError("fault injection: read of page " +
                             std::to_string(id));
    }
  }
  off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  ssize_t n = ::pread(fd_, buf, page_size_, off);
  if (n < 0) {
    return Status::IOError("pread page " + std::to_string(id) + ": " +
                           std::strerror(errno));
  }
  if (static_cast<size_t>(n) < page_size_) {
    // Fresh page (or short tail): zero-fill the remainder.
    std::memset(buf + n, 0, page_size_ - n);
  }
  if (metrics_ != nullptr) {
    metrics_->pages_read.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* buf) {
  if (sim_io_delay_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(sim_io_delay_us_));
  }
  size_t write_len = page_size_;
  if (fault_ != nullptr) {
    FaultAction a = fault_->OnIo(FaultSite::kDataWrite, page_size_);
    if (a.kind == FaultAction::Kind::kFail) {
      return Status::IOError("fault injection: write of page " +
                             std::to_string(id));
    }
    if (a.kind == FaultAction::Kind::kTear) {
      // The torn prefix reaches the platter; the caller sees success, as it
      // would before the power actually failed.
      write_len = a.keep_bytes;
    }
  }
  off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  if (write_len > 0) {
    ssize_t n = ::pwrite(fd_, buf, write_len, off);
    if (n < 0) {
      return Status::IOError("pwrite page " + std::to_string(id) + ": " +
                             std::strerror(errno));
    }
    if (static_cast<size_t>(n) != write_len) {
      // A short write is not an errno failure: an unknown prefix of the page
      // is now on disk. Report the byte counts so callers (and operators) can
      // distinguish a torn page from a plain I/O error.
      return Status::IOError("short pwrite of page " + std::to_string(id) +
                             ": wrote " + std::to_string(n) + " of " +
                             std::to_string(write_len) + " bytes");
    }
  }
  if (metrics_ != nullptr) {
    metrics_->pages_written.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status DiskManager::Sync() {
  if (fault_ != nullptr) {
    FaultAction a = fault_->OnIo(FaultSite::kDataSync, 0);
    if (a.kind != FaultAction::Kind::kProceed) {
      return Status::IOError("fault injection: data sync");
    }
  }
  if (::fsync(fd_) != 0) {
    return Status::IOError(std::string("fsync: ") + std::strerror(errno));
  }
  return Status::OK();
}

uint64_t DiskManager::PagesOnDisk() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size) / page_size_;
}

}  // namespace ariesim
