// File-backed page store for the single tablespace. The buffer pool is the
// only client. Reads beyond EOF return zero-filled "fresh" pages so that
// redo of an allocation can always fetch its target page.
#pragma once

#include <atomic>
#include <mutex>
#include <string>

#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "util/fault_injector.h"

namespace ariesim {

class DiskManager {
 public:
  DiskManager(std::string path, size_t page_size, Metrics* metrics,
              uint32_t sim_io_delay_us = 0);
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  Status Open();
  void Close();

  /// Read page `id` into `buf` (page_size bytes). Beyond-EOF reads zero-fill.
  Status ReadPage(PageId id, char* buf);
  /// Write page `id` from `buf`. Extends the file as needed.
  Status WritePage(PageId id, const char* buf);
  /// fsync the data file.
  Status Sync();

  size_t page_size() const { return page_size_; }
  /// Number of pages currently materialized in the file.
  uint64_t PagesOnDisk() const;

  /// Install a fault-injection hook consulted before every I/O. Pass
  /// nullptr to detach. The injector must outlive this DiskManager.
  void SetFaultInjector(FaultInjector* fault) { fault_ = fault; }

  /// Bounded retry for transient I/O errors: `attempts` total tries per
  /// operation (minimum 1 = no retry, the default), exponential backoff from
  /// `base_delay_us` doubling per attempt, clamped to `max_delay_us`. Each
  /// extra attempt counts one Metrics::io_retries.
  void SetRetryPolicy(int attempts, uint32_t base_delay_us,
                      uint32_t max_delay_us);

 private:
  Status ReadPageOnce(PageId id, char* buf);
  Status WritePageOnce(PageId id, const char* buf);
  Status SyncOnce();
  /// Sleep before retry number `attempt` (1-based) and count the retry.
  void BackoffBeforeRetry(int attempt);

  std::string path_;
  size_t page_size_;
  Metrics* metrics_;
  uint32_t sim_io_delay_us_;
  FaultInjector* fault_ = nullptr;
  int retry_attempts_ = 1;
  uint32_t retry_base_delay_us_ = 0;
  uint32_t retry_max_delay_us_ = 0;
  int fd_ = -1;
  std::mutex mu_;  // serializes file extension bookkeeping
};

}  // namespace ariesim
