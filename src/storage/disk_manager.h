// File-backed page store for the single tablespace. The buffer pool is the
// only client. Reads beyond EOF return zero-filled "fresh" pages so that
// redo of an allocation can always fetch its target page.
#pragma once

#include <atomic>
#include <mutex>
#include <string>

#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "util/fault_injector.h"

namespace ariesim {

class DiskManager {
 public:
  DiskManager(std::string path, size_t page_size, Metrics* metrics,
              uint32_t sim_io_delay_us = 0);
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  Status Open();
  void Close();

  /// Read page `id` into `buf` (page_size bytes). Beyond-EOF reads zero-fill.
  Status ReadPage(PageId id, char* buf);
  /// Write page `id` from `buf`. Extends the file as needed.
  Status WritePage(PageId id, const char* buf);
  /// fsync the data file.
  Status Sync();

  size_t page_size() const { return page_size_; }
  /// Number of pages currently materialized in the file.
  uint64_t PagesOnDisk() const;

  /// Install a fault-injection hook consulted before every I/O. Pass
  /// nullptr to detach. The injector must outlive this DiskManager.
  void SetFaultInjector(FaultInjector* fault) { fault_ = fault; }

 private:
  std::string path_;
  size_t page_size_;
  Metrics* metrics_;
  uint32_t sim_io_delay_us_;
  FaultInjector* fault_ = nullptr;
  int fd_ = -1;
  std::mutex mu_;  // serializes file extension bookkeeping
};

}  // namespace ariesim
