// On-page physical layout.
//
// Every page starts with a fixed header carrying the ARIES page_LSN and the
// ARIES/IM SM_Bit / Delete_Bit flags, followed by a slot directory growing
// forward and cell storage growing backward from the end of the page:
//
//   [checksum][page_id][page_lsn][type][flags][nslots][free_start][cell_start]
//   [next][prev][owner][level][pad] [slot0][slot1]... -> ... <- [cells]
//
// Two slot disciplines share this layout:
//  - B-tree pages keep the slot array sorted by key; insert/remove shift
//    slot entries (slot indexes are positional, not stable).
//  - Heap pages keep slot indexes stable (they are the RID); a deleted
//    record leaves a dead slot that may be revived by undo or reused by a
//    later insert that wins the RID lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/types.h"
#include "util/coding.h"

namespace ariesim {

enum class PageType : uint8_t {
  kInvalid = 0,
  kMeta = 1,
  kHeap = 2,
  kBtreeLeaf = 3,
  kBtreeInternal = 4,
  kFree = 5,
};

/// Page flag bits (paper §2.1, §3).
inline constexpr uint8_t kSmBit = 0x1;      ///< page participates in an
                                            ///< incomplete SMO
inline constexpr uint8_t kDeleteBit = 0x2;  ///< a key was deleted from this
                                            ///< leaf since the last POSC

inline constexpr size_t kPageHeaderSize = 40;
inline constexpr size_t kSlotSize = 4;  // u16 offset + u16 len
inline constexpr uint16_t kDeadSlotOffset = 0xFFFF;
inline constexpr uint16_t kTombstoneBit = 0x8000;
inline constexpr uint16_t kCellLenMask = 0x7FFF;

/// A non-owning view over a page-sized buffer with typed header accessors
/// and slotted-cell manipulation. All mutators require the caller to hold
/// the page's X latch (enforced by the buffer-pool guard API above this).
class PageView {
 public:
  PageView(char* data, size_t page_size) : d_(data), size_(page_size) {}

  char* data() const { return d_; }
  size_t page_size() const { return size_; }

  // -- header accessors ------------------------------------------------
  uint32_t checksum() const { return DecodeFixed32(d_); }
  void set_checksum(uint32_t c) { EncodeFixed32(d_, c); }

  PageId page_id() const { return DecodeFixed32(d_ + 4); }
  void set_page_id(PageId id) { EncodeFixed32(d_ + 4, id); }

  Lsn page_lsn() const { return DecodeFixed64(d_ + 8); }
  void set_page_lsn(Lsn lsn) { EncodeFixed64(d_ + 8, lsn); }

  PageType type() const { return static_cast<PageType>(d_[16]); }
  void set_type(PageType t) { d_[16] = static_cast<char>(t); }

  uint8_t flags() const { return static_cast<uint8_t>(d_[17]); }
  void set_flags(uint8_t f) { d_[17] = static_cast<char>(f); }
  bool sm_bit() const { return (flags() & kSmBit) != 0; }
  void set_sm_bit(bool on) {
    set_flags(on ? (flags() | kSmBit) : (flags() & ~kSmBit));
  }
  bool delete_bit() const { return (flags() & kDeleteBit) != 0; }
  void set_delete_bit(bool on) {
    set_flags(on ? (flags() | kDeleteBit) : (flags() & ~kDeleteBit));
  }

  uint16_t slot_count() const { return DecodeFixed16(d_ + 18); }
  void set_slot_count(uint16_t n) { EncodeFixed16(d_ + 18, n); }

  uint16_t free_start() const { return DecodeFixed16(d_ + 20); }
  void set_free_start(uint16_t v) { EncodeFixed16(d_ + 20, v); }

  uint16_t cell_start() const { return DecodeFixed16(d_ + 22); }
  void set_cell_start(uint16_t v) { EncodeFixed16(d_ + 22, v); }

  PageId next_page() const { return DecodeFixed32(d_ + 24); }
  void set_next_page(PageId id) { EncodeFixed32(d_ + 24, id); }

  PageId prev_page() const { return DecodeFixed32(d_ + 28); }
  void set_prev_page(PageId id) { EncodeFixed32(d_ + 28, id); }

  ObjectId owner_id() const { return DecodeFixed32(d_ + 32); }
  void set_owner_id(ObjectId id) { EncodeFixed32(d_ + 32, id); }

  uint8_t level() const { return static_cast<uint8_t>(d_[36]); }
  void set_level(uint8_t l) { d_[36] = static_cast<char>(l); }

  // -- lifecycle ---------------------------------------------------------
  /// Format this buffer as a fresh page of the given type.
  void Init(PageId id, PageType t, ObjectId owner, uint8_t level);

  // -- slot / cell primitives -------------------------------------------
  uint16_t SlotOffset(uint16_t idx) const {
    return DecodeFixed16(d_ + kPageHeaderSize + idx * kSlotSize);
  }
  /// Raw length word (includes the tombstone flag bit).
  uint16_t SlotRawLen(uint16_t idx) const {
    return DecodeFixed16(d_ + kPageHeaderSize + idx * kSlotSize + 2);
  }
  uint16_t SlotLen(uint16_t idx) const {
    return SlotRawLen(idx) & kCellLenMask;
  }
  bool SlotDead(uint16_t idx) const { return SlotOffset(idx) == kDeadSlotOffset; }
  /// Tombstoned: logically deleted but bytes retained so an undo of the
  /// delete can always be page-oriented (heap discipline only).
  bool SlotTombstoned(uint16_t idx) const {
    return !SlotDead(idx) && (SlotRawLen(idx) & kTombstoneBit) != 0;
  }
  std::string_view Cell(uint16_t idx) const {
    return std::string_view(d_ + SlotOffset(idx), SlotLen(idx));
  }

  /// Free bytes available for one more cell of `len` bytes assuming a new
  /// slot entry is also needed.
  size_t FreeSpaceForNewCell() const;
  /// Raw gap between slot array end and lowest cell.
  size_t ContiguousFree() const;
  /// Bytes reclaimable by compaction (dead cells / holes).
  size_t FragmentedFree() const;

  /// B-tree discipline: insert `cell` so it becomes slot `idx`, shifting
  /// later slots right. Fails with kNoSpace if it cannot fit even after
  /// compaction.
  Status InsertCellAt(uint16_t idx, std::string_view cell);
  /// B-tree discipline: remove slot `idx`, shifting later slots left.
  void RemoveCellAt(uint16_t idx);
  /// Replace the cell at `idx` (used for parent separator updates). May
  /// compact; fails with kNoSpace if the larger cell cannot fit.
  Status ReplaceCellAt(uint16_t idx, std::string_view cell);

  /// Heap discipline: append a cell in a fresh slot; returns slot index.
  Result<uint16_t> AppendCell(std::string_view cell);
  /// Heap discipline: place a cell in a specific (dead or fresh) slot.
  Status PlaceCellAt(uint16_t idx, std::string_view cell);
  /// Heap discipline: tombstone the slot — logically deleted, cell bytes
  /// retained so the delete can be undone page-oriented.
  void TombstoneSlot(uint16_t idx);
  /// Heap discipline: clear the tombstone flag (undo of a delete when the
  /// bytes are still in place).
  void ReviveSlot(uint16_t idx);
  /// Heap discipline: fully reclaim a slot (delete known committed, or undo
  /// of an insert). Cell bytes become fragmented free space.
  void PurgeSlot(uint16_t idx);

  /// Rewrite all live cells compactly against the end of the page.
  void Compact();

  /// Total bytes occupied by live cells.
  size_t LiveCellBytes() const;

 private:
  void SetSlot(uint16_t idx, uint16_t off, uint16_t len) {
    EncodeFixed16(d_ + kPageHeaderSize + idx * kSlotSize, off);
    EncodeFixed16(d_ + kPageHeaderSize + idx * kSlotSize + 2, len);
  }
  /// Carve `len` bytes out of the cell area (compacting first if needed);
  /// returns the offset, or 0 on failure.
  uint16_t AllocCell(uint16_t len, bool extra_slot);

  char* d_;
  size_t size_;
};

}  // namespace ariesim
