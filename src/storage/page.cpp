#include "storage/page.h"

#include <cstring>
#include <vector>

namespace ariesim {

void PageView::Init(PageId id, PageType t, ObjectId owner, uint8_t level) {
  std::memset(d_, 0, size_);
  set_page_id(id);
  set_type(t);
  set_owner_id(owner);
  set_level(level);
  set_slot_count(0);
  set_free_start(static_cast<uint16_t>(kPageHeaderSize));
  set_cell_start(static_cast<uint16_t>(size_));
  set_next_page(kInvalidPageId);
  set_prev_page(kInvalidPageId);
}

size_t PageView::ContiguousFree() const {
  return static_cast<size_t>(cell_start()) - free_start();
}

size_t PageView::LiveCellBytes() const {
  // Tombstoned cells count as live: their bytes are reserved for undo.
  size_t total = 0;
  for (uint16_t i = 0; i < slot_count(); ++i) {
    if (!SlotDead(i)) total += SlotLen(i);
  }
  return total;
}

size_t PageView::FragmentedFree() const {
  // Bytes in the cell area not occupied by live cells.
  size_t cell_area = size_ - cell_start();
  size_t live = LiveCellBytes();
  return cell_area > live ? cell_area - live : 0;
}

size_t PageView::FreeSpaceForNewCell() const {
  size_t total = ContiguousFree() + FragmentedFree();
  return total > kSlotSize ? total - kSlotSize : 0;
}

void PageView::Compact() {
  struct Saved {
    uint16_t idx;
    uint16_t rawlen;
    std::string bytes;
  };
  std::vector<Saved> live;
  live.reserve(slot_count());
  for (uint16_t i = 0; i < slot_count(); ++i) {
    if (!SlotDead(i)) live.push_back({i, SlotRawLen(i), std::string(Cell(i))});
  }
  uint16_t cursor = static_cast<uint16_t>(size_);
  for (auto& s : live) {
    cursor = static_cast<uint16_t>(cursor - s.bytes.size());
    std::memcpy(d_ + cursor, s.bytes.data(), s.bytes.size());
    SetSlot(s.idx, cursor, s.rawlen);  // preserves the tombstone flag
  }
  set_cell_start(cursor);
}

uint16_t PageView::AllocCell(uint16_t len, bool extra_slot) {
  size_t need = len + (extra_slot ? kSlotSize : 0);
  if (ContiguousFree() < need) {
    if (ContiguousFree() + FragmentedFree() < need) return 0;
    Compact();
    if (ContiguousFree() < need) return 0;
  }
  uint16_t off = static_cast<uint16_t>(cell_start() - len);
  set_cell_start(off);
  return off;
}

Status PageView::InsertCellAt(uint16_t idx, std::string_view cell) {
  uint16_t n = slot_count();
  if (idx > n) return Status::InvalidArgument("slot index out of range");
  uint16_t off = AllocCell(static_cast<uint16_t>(cell.size()), /*extra_slot=*/true);
  if (off == 0) return Status::NoSpace();
  // Shift slot entries [idx, n) right by one.
  char* base = d_ + kPageHeaderSize;
  std::memmove(base + (idx + 1) * kSlotSize, base + idx * kSlotSize,
               (n - idx) * kSlotSize);
  std::memcpy(d_ + off, cell.data(), cell.size());
  SetSlot(idx, off, static_cast<uint16_t>(cell.size()));
  set_slot_count(static_cast<uint16_t>(n + 1));
  set_free_start(static_cast<uint16_t>(kPageHeaderSize + (n + 1) * kSlotSize));
  return Status::OK();
}

void PageView::RemoveCellAt(uint16_t idx) {
  uint16_t n = slot_count();
  char* base = d_ + kPageHeaderSize;
  std::memmove(base + idx * kSlotSize, base + (idx + 1) * kSlotSize,
               (n - idx - 1) * kSlotSize);
  set_slot_count(static_cast<uint16_t>(n - 1));
  set_free_start(static_cast<uint16_t>(kPageHeaderSize + (n - 1) * kSlotSize));
  // Cell bytes become fragmented free space, reclaimed by Compact().
}

Status PageView::ReplaceCellAt(uint16_t idx, std::string_view cell) {
  if (idx >= slot_count()) return Status::InvalidArgument("slot index out of range");
  if (cell.size() <= SlotLen(idx)) {
    uint16_t off = SlotOffset(idx);
    std::memcpy(d_ + off, cell.data(), cell.size());
    SetSlot(idx, off, static_cast<uint16_t>(cell.size()));
    return Status::OK();
  }
  // Kill the old cell (fragmented) and allocate fresh. Temporarily mark the
  // slot dead so Compact() does not preserve the old bytes.
  SetSlot(idx, kDeadSlotOffset, 0);
  uint16_t off = AllocCell(static_cast<uint16_t>(cell.size()), /*extra_slot=*/false);
  if (off == 0) return Status::NoSpace();
  std::memcpy(d_ + off, cell.data(), cell.size());
  SetSlot(idx, off, static_cast<uint16_t>(cell.size()));
  return Status::OK();
}

Result<uint16_t> PageView::AppendCell(std::string_view cell) {
  uint16_t n = slot_count();
  uint16_t off = AllocCell(static_cast<uint16_t>(cell.size()), /*extra_slot=*/true);
  if (off == 0) return Status::NoSpace();
  std::memcpy(d_ + off, cell.data(), cell.size());
  SetSlot(n, off, static_cast<uint16_t>(cell.size()));
  set_slot_count(static_cast<uint16_t>(n + 1));
  set_free_start(static_cast<uint16_t>(kPageHeaderSize + (n + 1) * kSlotSize));
  return n;
}

Status PageView::PlaceCellAt(uint16_t idx, std::string_view cell) {
  if (idx < slot_count()) {
    if (!SlotDead(idx)) return Status::InvalidArgument("slot is live");
    uint16_t off = AllocCell(static_cast<uint16_t>(cell.size()), /*extra_slot=*/false);
    if (off == 0) return Status::NoSpace();
    std::memcpy(d_ + off, cell.data(), cell.size());
    SetSlot(idx, off, static_cast<uint16_t>(cell.size()));
    return Status::OK();
  }
  if (idx != slot_count()) {
    return Status::InvalidArgument("heap slots must be appended in order");
  }
  auto res = AppendCell(cell);
  return res.status();
}

void PageView::TombstoneSlot(uint16_t idx) {
  SetSlot(idx, SlotOffset(idx),
          static_cast<uint16_t>(SlotRawLen(idx) | kTombstoneBit));
}

void PageView::ReviveSlot(uint16_t idx) {
  SetSlot(idx, SlotOffset(idx),
          static_cast<uint16_t>(SlotRawLen(idx) & kCellLenMask));
}

void PageView::PurgeSlot(uint16_t idx) {
  SetSlot(idx, kDeadSlotOffset, 0);
}

}  // namespace ariesim
