// Bitmap space map over the tablespace. The first `space_map_pages` pages
// of the file are reserved as the allocation bitmap (bit set = page in
// use). Bit operations are logged as undo-redo records against the map
// page, so allocation and free are transactional *and* order-independent
// under undo (undo of alloc = clear bit; undo of free = set bit) — unlike a
// free list, which cannot be physically undone once another transaction
// has popped from it.
//
// Pages freed by a page-delete SMO are freed inside the SMO's nested top
// action, so a completed SMO's free survives the transaction's rollback
// (paper §3).
#pragma once

#include <mutex>

#include "buffer/buffer_pool.h"
#include "common/context.h"
#include "common/status.h"
#include "recovery/resource_manager.h"
#include "txn/transaction_manager.h"

namespace ariesim {

inline constexpr uint32_t kSpaceMapPages = 4;

class SpaceManager final : public ResourceManager {
 public:
  explicit SpaceManager(EngineContext* ctx) : ctx_(ctx) {}

  /// Format the space-map pages of a fresh database (direct, pre-logging).
  Status Bootstrap();

  /// Rebuild the unlogged base image of map page `map_page` into `v` (an
  /// X-latched or private buffer). Torn-page repair replays the logged bit
  /// flips on top of this, since Bootstrap itself predates the log.
  static void FormatMapPage(PageView v, PageId map_page);

  /// Allocate a page on behalf of `txn` (logged, undoable).
  Result<PageId> AllocatePage(Transaction* txn);
  /// Return a page to the map (logged, undoable).
  Status FreePage(Transaction* txn, PageId id);

  /// True if `id` is currently allocated (test/validation helper).
  Result<bool> IsAllocated(PageId id);
  /// Highest allocated page id, excluding the map pages (NotFound if none).
  /// Reads the map through the pool, so the answer is exact even when the
  /// data file itself has never been flushed (e.g. right after a restart).
  Result<PageId> HighestAllocated();
  /// Number of allocated pages, excluding the map pages (test helper).
  Result<uint64_t> AllocatedCount();

  /// Total pages addressable by the map.
  uint64_t Capacity() const;

  // ResourceManager:
  Status Redo(const LogRecord& rec, PageView page) override;
  Status Undo(Transaction* txn, const LogRecord& rec) override;

  // Log opcodes.
  static constexpr uint8_t kOpBitSet = 1;    ///< payload: u32 page id
  static constexpr uint8_t kOpBitClear = 2;  ///< payload: u32 page id

 private:
  size_t BitsPerMapPage() const;
  PageId MapPageFor(PageId id) const;
  static void ApplyBit(PageView v, uint32_t bit_in_page, bool set);
  static bool TestBit(PageView v, uint32_t bit_in_page);

  EngineContext* ctx_;
  std::mutex hint_mu_;
  PageId alloc_hint_ = kSpaceMapPages;  // next page id to try
};

}  // namespace ariesim
