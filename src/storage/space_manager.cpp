#include "storage/space_manager.h"

#include "util/coding.h"

namespace ariesim {

size_t SpaceManager::BitsPerMapPage() const {
  return (ctx_->options.page_size - kPageHeaderSize) * 8;
}

PageId SpaceManager::MapPageFor(PageId id) const {
  return static_cast<PageId>(id / BitsPerMapPage());
}

uint64_t SpaceManager::Capacity() const {
  return static_cast<uint64_t>(kSpaceMapPages) * BitsPerMapPage();
}

void SpaceManager::ApplyBit(PageView v, uint32_t bit, bool set) {
  char* base = v.data() + kPageHeaderSize;
  if (set) {
    base[bit / 8] |= static_cast<char>(1u << (bit % 8));
  } else {
    base[bit / 8] &= static_cast<char>(~(1u << (bit % 8)));
  }
}

bool SpaceManager::TestBit(PageView v, uint32_t bit) {
  const char* base = v.data() + kPageHeaderSize;
  return (base[bit / 8] >> (bit % 8)) & 1;
}

void SpaceManager::FormatMapPage(PageView v, PageId map_page) {
  v.Init(map_page, PageType::kMeta, kInvalidObjectId, 0);
  // The map pages themselves are marked allocated in map page 0 — a fact
  // established before logging exists, hence part of the base image.
  if (map_page == 0) {
    for (PageId m = 0; m < kSpaceMapPages; ++m) ApplyBit(v, m, true);
  }
}

Status SpaceManager::Bootstrap() {
  for (PageId m = 0; m < kSpaceMapPages; ++m) {
    ARIES_ASSIGN_OR_RETURN(PageGuard page,
                           ctx_->pool->FetchPage(m, LatchMode::kExclusive));
    FormatMapPage(page.view(), m);
    page.MarkDirty(kNullLsn);
  }
  return Status::OK();
}

Result<PageId> SpaceManager::AllocatePage(Transaction* txn) {
  PageId start;
  {
    std::lock_guard<std::mutex> lk(hint_mu_);
    start = alloc_hint_;
  }
  const uint64_t cap = Capacity();
  for (uint64_t attempt = 0; attempt < cap; /* advanced inside */) {
    PageId candidate = static_cast<PageId>((start + attempt) % cap);
    if (candidate < kSpaceMapPages) {
      attempt += kSpaceMapPages - candidate;
      continue;
    }
    PageId map_page = MapPageFor(candidate);
    ARIES_ASSIGN_OR_RETURN(PageGuard page,
                           ctx_->pool->FetchPage(map_page, LatchMode::kExclusive));
    PageView v = page.view();
    // Scan this map page from `candidate` forward.
    uint64_t base_bit = static_cast<uint64_t>(map_page) * BitsPerMapPage();
    uint64_t end_bit = base_bit + BitsPerMapPage();
    for (uint64_t id = candidate; id < end_bit && id < cap; ++id, ++attempt) {
      uint32_t bit = static_cast<uint32_t>(id - base_bit);
      if (TestBit(v, bit)) continue;
      LogRecord rec;
      rec.type = LogType::kUpdate;
      rec.rm = RmId::kMeta;
      rec.op = kOpBitSet;
      rec.page_id = map_page;
      PutFixed32(&rec.payload, static_cast<uint32_t>(id));
      ARIES_ASSIGN_OR_RETURN(Lsn lsn, ctx_->txns->AppendTxnLog(txn, &rec));
      ApplyBit(v, bit, true);
      page.MarkDirty(lsn);
      {
        std::lock_guard<std::mutex> lk(hint_mu_);
        alloc_hint_ = static_cast<PageId>(id + 1 < cap ? id + 1 : kSpaceMapPages);
      }
      return static_cast<PageId>(id);
    }
  }
  return Status::NoSpace("space map exhausted (capacity " +
                         std::to_string(cap) + " pages)");
}

Status SpaceManager::FreePage(Transaction* txn, PageId id) {
  if (id < kSpaceMapPages || id >= Capacity()) {
    return Status::InvalidArgument("cannot free page " + std::to_string(id));
  }
  PageId map_page = MapPageFor(id);
  ARIES_ASSIGN_OR_RETURN(PageGuard page,
                         ctx_->pool->FetchPage(map_page, LatchMode::kExclusive));
  uint32_t bit =
      static_cast<uint32_t>(id - static_cast<uint64_t>(map_page) * BitsPerMapPage());
  LogRecord rec;
  rec.type = LogType::kUpdate;
  rec.rm = RmId::kMeta;
  rec.op = kOpBitClear;
  rec.page_id = map_page;
  PutFixed32(&rec.payload, id);
  ARIES_ASSIGN_OR_RETURN(Lsn lsn, ctx_->txns->AppendTxnLog(txn, &rec));
  ApplyBit(page.view(), bit, false);
  page.MarkDirty(lsn);
  {
    std::lock_guard<std::mutex> lk(hint_mu_);
    if (id < alloc_hint_) alloc_hint_ = id;
  }
  return Status::OK();
}

Result<bool> SpaceManager::IsAllocated(PageId id) {
  PageId map_page = MapPageFor(id);
  ARIES_ASSIGN_OR_RETURN(PageGuard page,
                         ctx_->pool->FetchPage(map_page, LatchMode::kShared));
  uint32_t bit =
      static_cast<uint32_t>(id - static_cast<uint64_t>(map_page) * BitsPerMapPage());
  return TestBit(page.view(), bit);
}

Result<PageId> SpaceManager::HighestAllocated() {
  for (PageId m = kSpaceMapPages; m-- > 0;) {
    ARIES_ASSIGN_OR_RETURN(PageGuard page,
                           ctx_->pool->FetchPage(m, LatchMode::kShared));
    PageView v = page.view();
    for (uint32_t bit = static_cast<uint32_t>(BitsPerMapPage()); bit-- > 0;) {
      PageId id = static_cast<PageId>(static_cast<uint64_t>(m) * BitsPerMapPage() + bit);
      if (id < kSpaceMapPages) break;  // map pages themselves don't count
      if (TestBit(v, bit)) return id;
    }
  }
  return Status::NotFound("no allocated pages");
}

Result<uint64_t> SpaceManager::AllocatedCount() {
  uint64_t count = 0;
  for (PageId m = 0; m < kSpaceMapPages; ++m) {
    ARIES_ASSIGN_OR_RETURN(PageGuard page,
                           ctx_->pool->FetchPage(m, LatchMode::kShared));
    PageView v = page.view();
    for (uint32_t bit = 0; bit < BitsPerMapPage(); ++bit) {
      if (TestBit(v, bit)) ++count;
    }
  }
  return count - kSpaceMapPages;
}

Status SpaceManager::Redo(const LogRecord& rec, PageView page) {
  BufferReader r(rec.payload);
  uint32_t id = r.GetFixed32();
  uint32_t bit = static_cast<uint32_t>(
      id - static_cast<uint64_t>(rec.page_id) * BitsPerMapPage());
  ApplyBit(page, bit, rec.op == kOpBitSet);
  return Status::OK();
}

Status SpaceManager::Undo(Transaction* txn, const LogRecord& rec) {
  BufferReader r(rec.payload);
  uint32_t id = r.GetFixed32();
  PageId map_page = rec.page_id;
  ARIES_ASSIGN_OR_RETURN(PageGuard page,
                         ctx_->pool->FetchPage(map_page, LatchMode::kExclusive));
  LogRecord clr;
  clr.type = LogType::kCompensation;
  clr.rm = RmId::kMeta;
  clr.op = rec.op == kOpBitSet ? kOpBitClear : kOpBitSet;
  clr.page_id = map_page;
  clr.undo_next_lsn = rec.prev_lsn;
  PutFixed32(&clr.payload, id);
  ARIES_ASSIGN_OR_RETURN(Lsn lsn, ctx_->txns->AppendTxnLog(txn, &clr));
  uint32_t bit = static_cast<uint32_t>(
      id - static_cast<uint64_t>(map_page) * BitsPerMapPage());
  ApplyBit(page.view(), bit, clr.op == kOpBitSet);
  page.MarkDirty(lsn);
  return Status::OK();
}

}  // namespace ariesim
