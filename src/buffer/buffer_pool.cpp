#include "buffer/buffer_pool.h"

#include <atomic>
#include <cstring>

#include "common/clock.h"
#include "common/commit_breakdown.h"
#include "common/trace.h"
#include "util/crc32c.h"

// ThreadSanitizer detection: the optimistic snapshot copy below races with
// in-place page writes *by protocol* (the seqlock validation discards torn
// copies before anything parses them), so under TSan the copy is excluded
// from instrumentation and bracketed with ignore-reads annotations. See
// docs/CONCURRENCY.md, "Optimistic descent and ThreadSanitizer".
#if defined(__SANITIZE_THREAD__)
#define ARIESIM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ARIESIM_TSAN 1
#endif
#endif
#ifndef ARIESIM_TSAN
#define ARIESIM_TSAN 0
#endif

#if ARIESIM_TSAN
extern "C" void AnnotateIgnoreReadsBegin(const char* file, int line);
extern "C" void AnnotateIgnoreReadsEnd(const char* file, int line);
#endif

namespace ariesim {

namespace {

/// Mark an X-latch hold on `f` as started/finished for optimistic readers.
/// BeginFrameWrite makes the version odd before the holder's first data
/// write can become visible; EndFrameWrite makes it even again only after
/// every data write is visible (release ordering). X holders are serialized
/// by the frame latch itself, so the two fetch_adds never interleave.
void BeginFrameWrite(Frame* f) {
  f->version.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
}

void EndFrameWrite(Frame* f) {
  f->version.fetch_add(1, std::memory_order_release);
}

/// The latch-free page copy. Intentionally races with the X holder's plain
/// writes; the surrounding version checks reject any copy a writer
/// overlapped, so torn bytes are never parsed. The fast (non-TSan) build
/// uses __builtin_memcpy — it vectorizes, and a 4 KiB copy is ~4x cheaper
/// than a word-wise atomic loop, which is the difference between the
/// optimistic descent beating the mutex path and losing to it. Under TSan
/// the loop switches to relaxed single-copy-atomic 8-byte loads (page
/// buffers are new[]-allocated, 16-byte aligned, page_size a power of two
/// >= 256, so the stride is exact) and the function is excluded from
/// instrumentation (not libc memcpy, whose interceptor would still
/// report); noinline so the attribute is not lost by inlining into an
/// instrumented caller.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((no_sanitize("thread"), noinline))
#endif
void RacyCopyPage(char* dst, const char* src, size_t n) {
#if ARIESIM_TSAN
  const uint64_t* s = reinterpret_cast<const uint64_t*>(src);
  uint64_t* d = reinterpret_cast<uint64_t*>(dst);
  for (size_t i = 0; i < n / sizeof(uint64_t); ++i) {
    d[i] = __atomic_load_n(s + i, __ATOMIC_RELAXED);
  }
#else
  __builtin_memcpy(dst, src, n);
#endif
}

}  // namespace

PageGuard& PageGuard::operator=(PageGuard&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    frame_ = o.frame_;
    mode_ = o.mode_;
    o.frame_ = nullptr;
  }
  return *this;
}

PageView PageGuard::view() const {
  return PageView(frame_->data.get(), pool_->page_size());
}

PageId PageGuard::page_id() const { return frame_->page_id; }

void PageGuard::MarkDirty(Lsn lsn) {
  view().set_page_lsn(lsn);
  pool_->NoteDirty(frame_, lsn);
  pool_->ParanoidObserve(frame_->page_id, lsn);
}

void PageGuard::Release() {
  if (frame_ != nullptr) {
    if (mode_ == LatchMode::kExclusive) EndFrameWrite(frame_);
    frame_->latch.Unlock(mode_);
    pool_->Unpin(frame_);
    frame_ = nullptr;
  }
}

void PinGuard::Release() {
  if (frame_ != nullptr) {
    pool_->Unpin(frame_);
    frame_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, LogManager* log, size_t frames,
                       Metrics* metrics, bool verify_checksums)
    : disk_(disk),
      log_(log),
      metrics_(metrics),
      page_size_(disk->page_size()),
      verify_checksums_(verify_checksums) {
  frames_.reserve(frames);
  for (size_t i = 0; i < frames; ++i) {
    auto f = std::make_unique<Frame>();
    f->data = std::make_unique<char[]>(page_size_);
    free_frames_.push_back(f.get());
    frames_.push_back(std::move(f));
  }
}

Result<Frame*> BufferPool::FetchFrame(PageId id) {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    auto it = page_table_.find(id);
    if (it != page_table_.end()) {
      Frame* f = it->second;
      if (++f->pin_count == 1) {
        auto pos = lru_pos_.find(f);
        if (pos != lru_pos_.end()) {
          lru_.erase(pos->second);
          lru_pos_.erase(pos);
        }
      }
      return f;
    }
    // Wait while someone else is loading this page OR while an evicted
    // dirty copy of it is still being written back — re-reading the page
    // from disk before the write-back lands would resurrect a stale
    // version and silently lose committed updates.
    if (io_in_progress_.count(id) != 0 || writing_back_.count(id) != 0) {
      io_cv_.wait(lk);
      continue;  // re-check the table
    }
    // Miss: claim a frame.
    Frame* victim = nullptr;
    if (!free_frames_.empty()) {
      victim = free_frames_.back();
      free_frames_.pop_back();
    } else if (!lru_.empty()) {
      victim = lru_.front();
      lru_.pop_front();
      lru_pos_.erase(victim);
      page_table_.erase(victim->page_id);
    } else {
      return Status::Busy("buffer pool exhausted (all frames pinned)");
    }
    victim->pin_count = 1;
    io_in_progress_.insert(id);
    bool victim_dirty = victim->dirty;
    PageId victim_old_id = victim->page_id;
    if (victim_dirty) writing_back_.emplace(victim_old_id, victim->rec_lsn);
    // Instant restart: capture the pending-redo schedule before dropping the
    // mutex; the quarantine keeps it stable until this fetch resolves it.
    bool pending = false;
    Lsn pending_rec_lsn = kNullLsn;
    if (auto pit = pending_redo_.find(id); pit != pending_redo_.end()) {
      pending = true;
      pending_rec_lsn = pit->second;
    }
    lk.unlock();

    // Miss latency: everything between releasing the pool mutex and the
    // page being usable — evict write-back, disk read, checksum verify and
    // (worst case) online repair.
    const uint64_t miss_start_ns = MonotonicNowNs();
    ARIES_TRACE_SPAN(miss_span, "bp.miss", TraceCat::kBuffer, id);
    Status s;
    bool victim_persisted = true;
    if (victim_dirty) {
      ARIES_TRACE_SPAN(evict_span, "bp.evict_write", TraceCat::kBuffer,
                       victim_old_id);
      s = WriteFrame(victim);
      victim_persisted = s.ok();
    }
    if (s.ok()) {
      s = disk_->ReadPage(id, victim->data.get());
      if (s.ok() && verify_checksums_) {
        char* data = victim->data.get();
        PageView v(data, page_size_);
        if (v.type() != PageType::kInvalid) {
          uint32_t crc = crc32c::Value(data + 4, page_size_ - 4);
          if (v.checksum() != crc32c::Mask(crc)) {
            s = Status::Corruption("page " + std::to_string(id) +
                                   " checksum mismatch");
          }
        } else {
          // A genuinely never-written page is all zero. Anything else is
          // rot hiding behind a cleared type byte — a zero "checksum" must
          // not buy a free pass (the old `checksum() != 0` escape did).
          for (size_t i = 0; i < page_size_; i++) {
            if (data[i] != 0) {
              s = Status::Corruption("page " + std::to_string(id) +
                                     " unformatted but not blank");
              break;
            }
          }
        }
      }
    }
    bool repaired = false;
    if (!s.ok() && victim_persisted && repair_ &&
        (s.code() == Code::kCorruption || s.code() == Code::kIOError)) {
      // Online quarantine + repair: `id` still sits in io_in_progress_, so
      // no guard on this page exists anywhere and no new log records for it
      // can be appended while the handler replays its history into the
      // claimed frame. Other pages keep flowing normally.
      ARIES_TRACE_SPAN(repair_span, "bp.repair", TraceCat::kBuffer, id);
      Status rs = repair_(id, victim->data.get());
      if (rs.ok()) {
        s = Status::OK();
        repaired = true;  // full rebuild: the image is already current
      }
    }
    Lsn lazy_first_applied = kNullLsn;
    if (s.ok() && pending && !repaired) {
      // On-demand redo inside the same quarantine the repair path uses: the
      // page is invisible until its LSN chain has been replayed onto the
      // just-read image, so no reader can ever observe the stale version.
      if (lazy_redo_) {
        ARIES_TRACE_SPAN(lazy_span, "bp.lazy_redo", TraceCat::kBuffer, id);
        const uint64_t lazy_start_ns = MonotonicNowNs();
        s = lazy_redo_(id, victim->data.get(), pending_rec_lsn,
                       &lazy_first_applied);
        if (metrics_ != nullptr) {
          metrics_->lazy_replay_latency.Record(MonotonicNowNs() -
                                               lazy_start_ns);
        }
      } else {
        // Serving the page without its redo debt would silently lose
        // committed updates; fail the fetch instead.
        s = Status::Corruption("page " + std::to_string(id) +
                               " pending redo but no lazy-redo handler");
      }
    }

    if (s.ok()) {
      PageView lv(victim->data.get(), page_size_);
      Status ps = ParanoidCheckLoad(id, lv.page_lsn());
      if (!ps.ok()) s = ps;
    }
    if (metrics_ != nullptr) {
      metrics_->page_miss_latency.Record(MonotonicNowNs() - miss_start_ns);
    }
    lk.lock();
    io_in_progress_.erase(id);
    if (victim_dirty) writing_back_.erase(victim_old_id);
    if (!s.ok()) {
      victim->pin_count = 0;
      if (!victim_persisted) {
        // The dirty victim never reached disk, so this frame still holds the
        // only current copy of the page. Put it back in the table instead of
        // freeing the frame — freeing it would silently discard committed
        // updates whose log prefix may not even be durable yet. No other
        // thread can have reloaded the page meanwhile: its id sat in
        // writing_back_ until this same critical section.
        victim->page_id = victim_old_id;
        page_table_[victim_old_id] = victim;
        lru_.push_back(victim);
        lru_pos_[victim] = std::prev(lru_.end());
      } else {
        victim->page_id = kInvalidPageId;
        victim->dirty = false;
        victim->rec_lsn = kNullLsn;
        free_frames_.push_back(victim);
      }
      io_cv_.notify_all();
      return s;
    }
    victim->page_id = id;
    victim->dirty = false;
    victim->rec_lsn = kNullLsn;
    if (pending) {
      pending_redo_.erase(id);
      if (lazy_first_applied != kNullLsn) {
        // The replayed image is newer than disk; recLSN is the first record
        // the replay applied, exactly as if redo had dirtied the page.
        victim->dirty = true;
        victim->rec_lsn = lazy_first_applied;
      }
      if (metrics_ != nullptr) {
        metrics_->pages_recovered_lazily.fetch_add(1,
                                                   std::memory_order_relaxed);
      }
    }
    page_table_[id] = victim;
    io_cv_.notify_all();
    return victim;
  }
}

Result<PageGuard> BufferPool::FetchPage(PageId id, LatchMode mode) {
  ARIES_ASSIGN_OR_RETURN(Frame * f, FetchFrame(id));
  // Try-then-wait so the (common) uncontended acquisition pays no clock
  // read; only contended ones are timed and traced.
  if (!f->latch.TryLock(mode)) {
    const uint64_t wait_start_ns = MonotonicNowNs();
    ARIES_TRACE_SPAN(span, "bp.latch_wait", TraceCat::kBuffer, id);
    f->latch.Lock(mode);
    const uint64_t waited_ns = MonotonicNowNs() - wait_start_ns;
    if (metrics_ != nullptr) {
      metrics_->latch_wait_latency.Record(waited_ns);
    }
    AddCommitSegment(CommitSegment::latch_wait, waited_ns);
    latch_contention_.RecordWait(id, waited_ns);
  }
  if (metrics_ != nullptr) {
    metrics_->page_latch_acquisitions.fetch_add(1, std::memory_order_relaxed);
  }
  if (mode == LatchMode::kExclusive) BeginFrameWrite(f);
  return PageGuard(this, f, mode);
}

Result<PageGuard> BufferPool::TryFetchPage(PageId id, LatchMode mode) {
  ARIES_ASSIGN_OR_RETURN(Frame * f, FetchFrame(id));
  if (!f->latch.TryLock(mode)) {
    Unpin(f);
    return Status::Busy("page latch busy");
  }
  if (metrics_ != nullptr) {
    metrics_->page_latch_acquisitions.fetch_add(1, std::memory_order_relaxed);
  }
  if (mode == LatchMode::kExclusive) BeginFrameWrite(f);
  return PageGuard(this, f, mode);
}

Result<PinGuard> BufferPool::PinPage(PageId id) {
  ARIES_ASSIGN_OR_RETURN(Frame * f, FetchFrame(id));
  return PinGuard(this, f);
}

Result<OptimisticPageGuard> BufferPool::FetchPageOptimistic(PageId id) {
  ARIES_ASSIGN_OR_RETURN(Frame * f, FetchFrame(id));
  return OptimisticPageGuard(this, f);
}

bool OptimisticPageGuard::TrySnapshot(char* dst, uint64_t* version_out) const {
  uint64_t v1 = frame_->version.load(std::memory_order_acquire);
  if ((v1 & 1) != 0) return false;  // an X holder is mid-write
#if ARIESIM_TSAN
  AnnotateIgnoreReadsBegin(__FILE__, __LINE__);
#endif
  RacyCopyPage(dst, frame_->data.get(), pool_->page_size_);
#if ARIESIM_TSAN
  AnnotateIgnoreReadsEnd(__FILE__, __LINE__);
#endif
  std::atomic_thread_fence(std::memory_order_acquire);
  if (frame_->version.load(std::memory_order_relaxed) != v1) return false;
  *version_out = v1;
  return true;
}

bool OptimisticPageGuard::Validate(uint64_t version) const {
  // Orders every read made since the snapshot before the version re-check.
  std::atomic_thread_fence(std::memory_order_acquire);
  return frame_->version.load(std::memory_order_relaxed) == version;
}

void OptimisticPageGuard::Release() {
  if (frame_ != nullptr) {
    pool_->Unpin(frame_);
    frame_ = nullptr;
  }
}

void BufferPool::Unpin(Frame* frame) {
  std::lock_guard<std::mutex> lk(mu_);
  if (--frame->pin_count == 0) {
    lru_.push_back(frame);
    lru_pos_[frame] = std::prev(lru_.end());
  }
}

void BufferPool::NoteDirty(Frame* frame, Lsn lsn) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!frame->dirty) {
    frame->dirty = true;
    frame->rec_lsn = lsn;
  }
}

void BufferPool::NoteDirtyById(PageId id, Lsn lsn) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = page_table_.find(id);
  if (it == page_table_.end()) return;  // caller will dirty it on apply
  Frame* f = it->second;
  if (!f->dirty) {
    f->dirty = true;
    f->rec_lsn = lsn;
  }
}

Status BufferPool::WriteFrame(Frame* frame) {
  PageView v(frame->data.get(), page_size_);
  // WAL rule: the log must be durable up to the page's page_LSN.
  ARIES_RETURN_NOT_OK(log_->FlushTo(v.page_lsn()));
  uint32_t crc = crc32c::Value(frame->data.get() + 4, page_size_ - 4);
  v.set_checksum(crc32c::Mask(crc));
  if (fault_ != nullptr) {
    FaultAction a = fault_->OnIo(FaultSite::kEvictWrite, page_size_,
                                 frame->page_id);
    if (a.kind != FaultAction::Kind::kProceed &&
        a.kind != FaultAction::Kind::kCorrupt) {
      return Status::IOError("fault injection: write-back of page " +
                             std::to_string(frame->page_id));
    }
  }
  ARIES_RETURN_NOT_OK(disk_->WritePage(frame->page_id, frame->data.get()));
  if (paranoid_) {
    std::lock_guard<std::mutex> plk(paranoid_mu_);
    Lsn& w = last_written_[frame->page_id];
    if (v.page_lsn() > w) w = v.page_lsn();
  }
  return Status::OK();
}

void BufferPool::ParanoidObserve(PageId id, Lsn lsn) {
  if (!paranoid_) return;
  std::lock_guard<std::mutex> plk(paranoid_mu_);
  Lsn& o = last_observed_[id];
  if (lsn > o) o = lsn;
}

Status BufferPool::ParanoidCheckLoad(PageId id, Lsn loaded_lsn) {
  if (!paranoid_) return Status::OK();
  std::lock_guard<std::mutex> plk(paranoid_mu_);
  auto it = last_written_.find(id);
  if (it != last_written_.end() && loaded_lsn < it->second) {
    return Status::Corruption(
        "PARANOID: stale reload of page " + std::to_string(id) + ": loaded lsn " +
        std::to_string(loaded_lsn) + " < written " + std::to_string(it->second));
  }
  auto ob = last_observed_.find(id);
  if (ob != last_observed_.end() && loaded_lsn < ob->second) {
    return Status::Corruption(
        "PARANOID: reload of page " + std::to_string(id) + " lost updates: lsn " +
        std::to_string(loaded_lsn) + " < observed " + std::to_string(ob->second));
  }
  return Status::OK();
}

Status BufferPool::FlushPage(PageId id) {
  std::unique_lock<std::mutex> lk(mu_);
  auto it = page_table_.find(id);
  if (it == page_table_.end()) return Status::OK();
  Frame* f = it->second;
  if (!f->dirty) return Status::OK();
  ++f->pin_count;
  if (f->pin_count == 1) {
    auto pos = lru_pos_.find(f);
    if (pos != lru_pos_.end()) {
      lru_.erase(pos->second);
      lru_pos_.erase(pos);
    }
  }
  lk.unlock();
  // Take the page latch shared so we do not write a torn in-flight update.
  f->latch.LockShared();
  Status s = WriteFrame(f);
  if (s.ok()) {
    std::lock_guard<std::mutex> lk2(mu_);
    f->dirty = false;
    f->rec_lsn = kNullLsn;
  }
  f->latch.UnlockShared();
  Unpin(f);
  return s;
}

Status BufferPool::FlushAll() {
  std::vector<PageId> dirty;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [id, f] : page_table_) {
      if (f->dirty) dirty.push_back(id);
    }
  }
  for (PageId id : dirty) ARIES_RETURN_NOT_OK(FlushPage(id));
  return disk_->Sync();
}

Status BufferPool::DiscardPage(PageId id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = page_table_.find(id);
  if (it == page_table_.end()) return Status::OK();
  Frame* f = it->second;
  if (f->pin_count > 0) {
    return Status::Busy("cannot discard pinned page " + std::to_string(id));
  }
  page_table_.erase(it);
  auto pos = lru_pos_.find(f);
  if (pos != lru_pos_.end()) {
    lru_.erase(pos->second);
    lru_pos_.erase(pos);
  }
  f->page_id = kInvalidPageId;
  f->dirty = false;
  f->rec_lsn = kNullLsn;
  free_frames_.push_back(f);
  return Status::OK();
}

void BufferPool::MarkPendingRedo(
    const std::unordered_map<PageId, Lsn>& dpt) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [page, rec_lsn] : dpt) {
    // Oldest recLSN wins (a nested crash can re-mark a page that was
    // already pending with a fresher DPT entry).
    auto [it, inserted] = pending_redo_.emplace(page, rec_lsn);
    if (!inserted && rec_lsn < it->second) it->second = rec_lsn;
  }
}

size_t BufferPool::PendingRedoCount() {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_redo_.size();
}

bool BufferPool::NextPendingRedo(PageId* id) {
  std::lock_guard<std::mutex> lk(mu_);
  if (pending_redo_.empty()) return false;
  *id = pending_redo_.begin()->first;
  return true;
}

void BufferPool::DropAll() {
  std::lock_guard<std::mutex> lk(mu_);
  page_table_.clear();
  lru_.clear();
  lru_pos_.clear();
  free_frames_.clear();
  pending_redo_.clear();
  for (auto& f : frames_) {
    f->page_id = kInvalidPageId;
    f->pin_count = 0;
    f->dirty = false;
    f->rec_lsn = kNullLsn;
    free_frames_.push_back(f.get());
  }
}

std::vector<std::pair<PageId, Lsn>> BufferPool::DirtyPageTable() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<PageId, Lsn>> dpt;
  for (auto& [id, f] : page_table_) {
    if (f->dirty) dpt.emplace_back(id, f->rec_lsn);
  }
  // Evicted dirty frames whose write-back is still in flight are out of
  // page_table_ but not yet durable; count them as dirty so a concurrent
  // fuzzy checkpoint stays conservative. If the write-back succeeds the
  // extra entry merely costs redo a few page_lsn checks; if it fails the
  // entry is the only thing keeping the page's recLSN in the checkpoint.
  for (auto& [id, rec_lsn] : writing_back_) {
    dpt.emplace_back(id, rec_lsn);
  }
  // Pages still awaiting their first-touch redo carry unapplied log history
  // exactly like dirty frames do; a checkpoint that dropped them would let
  // a crash during instant restart lose their recLSNs (and with them the
  // pruned page-index chains' floor).
  for (auto& [id, rec_lsn] : pending_redo_) {
    dpt.emplace_back(id, rec_lsn);
  }
  return dpt;
}

}  // namespace ariesim
