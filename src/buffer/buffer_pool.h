// Buffer pool implementing the ARIES steal / no-force policies:
//  - steal: a dirty page may be written to disk before its transaction
//    commits (after forcing the log up to the page's page_LSN — the WAL
//    rule), so uncommitted changes can reach disk and must be undoable.
//  - no-force: commit does not flush data pages, only the log.
//
// Page latches (paper §2.1) live in the frames; callers obtain them through
// RAII PageGuards which also hold the pin.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/contention.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/fault_injector.h"
#include "util/rwlatch.h"
#include "wal/log_manager.h"

namespace ariesim {

struct Frame {
  std::unique_ptr<char[]> data;
  PageId page_id = kInvalidPageId;
  int pin_count = 0;    // protected by pool mutex
  bool dirty = false;   // protected by pool mutex
  Lsn rec_lsn = kNullLsn;  ///< LSN that first dirtied the page (for the DPT)
  RwLatch latch;
  /// Seqlock-style frame version for the optimistic read path (see
  /// docs/CONCURRENCY.md, "Optimistic descent"): odd exactly while an X
  /// latch on this frame is held, bumped on X acquire and again on X
  /// release. An OptimisticPageGuard snapshot is consistent iff the version
  /// was even and identical before and after the copy. Per-frame, not
  /// per-page: guards hold a pin, so the frame↔page binding cannot change
  /// under a live guard and the counter never aliases across pages.
  std::atomic<uint64_t> version{0};
};

class BufferPool;

/// RAII pin + latch over a page. Move-only.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, Frame* frame, LatchMode mode)
      : pool_(pool), frame_(frame), mode_(mode) {}
  ~PageGuard() { Release(); }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept;

  bool valid() const { return frame_ != nullptr; }
  PageView view() const;
  PageId page_id() const;
  LatchMode mode() const { return mode_; }

  /// Record that the holder changed the page under log record `lsn`:
  /// updates page_LSN and the dirty/recLSN bookkeeping.
  void MarkDirty(Lsn lsn);

  void Release();

 private:
  BufferPool* pool_ = nullptr;
  Frame* frame_ = nullptr;
  LatchMode mode_ = LatchMode::kShared;
};

/// RAII pin without a latch (used to "fix needed pages in the buffer pool"
/// before acquiring the tree latch, paper Figure 8).
class PinGuard {
 public:
  PinGuard() = default;
  PinGuard(BufferPool* pool, Frame* frame) : pool_(pool), frame_(frame) {}
  ~PinGuard() { Release(); }
  PinGuard(const PinGuard&) = delete;
  PinGuard& operator=(const PinGuard&) = delete;
  PinGuard(PinGuard&& o) noexcept { *this = std::move(o); }
  PinGuard& operator=(PinGuard&& o) noexcept {
    if (this != &o) {
      Release();
      pool_ = o.pool_;
      frame_ = o.frame_;
      o.frame_ = nullptr;
    }
    return *this;
  }
  void Release();
  bool valid() const { return frame_ != nullptr; }

 private:
  BufferPool* pool_ = nullptr;
  Frame* frame_ = nullptr;
};

/// Pin-only guard for the optimistic (latch-free) read path. Holds no
/// latch: the holder may only look at the page through TrySnapshot(), which
/// copies the bytes and tells whether the copy is consistent, and Validate(),
/// which re-checks a previously returned version. The pin keeps the
/// frame↔page binding (and the version counter's meaning) stable. Move-only.
class OptimisticPageGuard {
 public:
  OptimisticPageGuard() = default;
  OptimisticPageGuard(BufferPool* pool, Frame* frame)
      : pool_(pool), frame_(frame) {}
  ~OptimisticPageGuard() { Release(); }
  OptimisticPageGuard(const OptimisticPageGuard&) = delete;
  OptimisticPageGuard& operator=(const OptimisticPageGuard&) = delete;
  OptimisticPageGuard(OptimisticPageGuard&& o) noexcept {
    *this = std::move(o);
  }
  OptimisticPageGuard& operator=(OptimisticPageGuard&& o) noexcept {
    if (this != &o) {
      Release();
      pool_ = o.pool_;
      frame_ = o.frame_;
      o.frame_ = nullptr;
    }
    return *this;
  }

  bool valid() const { return frame_ != nullptr; }
  /// Stable while the pin is held (remaps happen only at pin_count == 0).
  PageId page_id() const { return frame_->page_id; }

  /// Copy the page into `dst` (page_size() bytes) without latching. Returns
  /// true iff the copy is consistent — the frame version was even and
  /// unchanged across the copy — and stores that version in *version_out
  /// for later Validate() calls. On false the contents of `dst` are
  /// unspecified and must not be parsed.
  bool TrySnapshot(char* dst, uint64_t* version_out) const;

  /// True iff the frame version still equals `version`: no X latch has been
  /// acquired on the frame since the snapshot that returned it.
  bool Validate(uint64_t version) const;

  void Release();

 private:
  BufferPool* pool_ = nullptr;
  Frame* frame_ = nullptr;
};

class BufferPool {
 public:
  BufferPool(DiskManager* disk, LogManager* log, size_t frames,
             Metrics* metrics, bool verify_checksums);

  /// Paranoid mode (tests): track the newest page_LSN written to disk and
  /// the newest page_LSN ever observed in memory per page; fail fast on a
  /// stale reload or on eviction of a clean frame that is newer than disk.
  void SetParanoid(bool on) { paranoid_ = on; }

  /// Pin + latch page `id`, reading it from disk on a miss.
  Result<PageGuard> FetchPage(PageId id, LatchMode mode);
  /// Conditional variant: kBusy if the latch is not immediately grantable.
  Result<PageGuard> TryFetchPage(PageId id, LatchMode mode);
  /// Pin without latching.
  Result<PinGuard> PinPage(PageId id);
  /// Pin for the optimistic read path: no latch, access only through the
  /// guard's snapshot/validate protocol (docs/CONCURRENCY.md).
  Result<OptimisticPageGuard> FetchPageOptimistic(PageId id);

  /// Write one page out (forcing the log first). Used by checkpoints and by
  /// tests that simulate a steal of a specific page.
  Status FlushPage(PageId id);
  /// Flush every dirty page (clean shutdown).
  Status FlushAll();

  /// Crash simulation: drop all frames without flushing.
  void DropAll();

  /// Drop the cached frame for `id` without writing it back (kBusy if the
  /// page is pinned). Used by recovery to discard a corrupt in-memory copy
  /// before rebuilding the page from the log.
  Status DiscardPage(PageId id);

  /// Per-page latch-contention heat map (PR 5): which pages waiters pile
  /// up on, by total wait time. Lock-free on the record path.
  using PageContention = ContentionSketch<PageId, std::hash<PageId>, 256>;
  std::vector<PageContention::Entry> TopLatchContention(size_t n) const {
    return latch_contention_.TopN(n);
  }
  uint64_t LatchContentionDropped() const {
    return latch_contention_.dropped();
  }

  /// Install a fault-injection hook consulted before each dirty write-back.
  /// Pass nullptr to detach. The injector must outlive this BufferPool.
  void SetFaultInjector(FaultInjector* fault) { fault_ = fault; }

  /// Online media recovery hook: called from a fetch miss whose read failed
  /// its checksum (or kept failing with an I/O error past disk retries),
  /// with the page still quarantined in io_in_progress_ — no guard on it
  /// can exist, so no new log records for it can be appended. The handler
  /// rebuilds the page image into the supplied frame buffer (and persists
  /// it); on OK the fetch proceeds as if the read had succeeded. An empty
  /// handler disables online repair.
  using RepairHandler = std::function<Status(PageId, char*)>;
  void SetRepairHandler(RepairHandler handler) {
    repair_ = std::move(handler);
  }

  /// Instant-restart hook (docs/ARCHITECTURE.md, "Instant restart"): called
  /// from a fetch miss on a page marked pending-redo, after the disk image
  /// passed its checksum, with the page still quarantined in
  /// io_in_progress_. Arguments: page id, frame buffer holding the disk
  /// image, the scheduled recLSN, and an out-param for the first LSN the
  /// replay applied (kNullLsn if the image was already current). On OK the
  /// page leaves the pending set and the fetch proceeds; on error the fetch
  /// fails and the page stays pending for a later retry.
  using LazyRedoHandler = std::function<Status(PageId, char*, Lsn, Lsn*)>;
  void SetLazyRedoHandler(LazyRedoHandler handler) {
    lazy_redo_ = std::move(handler);
  }

  /// Schedule pages for first-touch redo (instant restart): each page's
  /// next fetch miss runs the lazy-redo handler before the page becomes
  /// visible. Keyed to the analysis DPT recLSN (oldest wins on re-mark).
  /// Callers guarantee none of these pages is currently resident (the pool
  /// was dropped by the crash).
  void MarkPendingRedo(const std::unordered_map<PageId, Lsn>& dpt);

  /// Pages still awaiting first-touch redo.
  size_t PendingRedoCount();

  /// Pick any page still awaiting redo (for the background sweeper).
  /// Returns false when the set is empty.
  bool NextPendingRedo(PageId* id);

  /// Snapshot of the dirty page table for fuzzy checkpoints.
  std::vector<std::pair<PageId, Lsn>> DirtyPageTable();

  /// LogManager's append observer: register `id` dirty with recLSN `lsn`
  /// from inside the append critical section, before the caller applies the
  /// record to the (latched, pinned) page. Closes the window where a record
  /// ordered before a begin-checkpoint is missing from both the checkpoint
  /// DPT and the analysis scan. No-op if the page is not resident.
  void NoteDirtyById(PageId id, Lsn lsn);


  size_t page_size() const { return page_size_; }

 private:
  friend class PageGuard;
  friend class PinGuard;
  friend class OptimisticPageGuard;

  /// Returns the frame holding `id`, pinned. Caller latches afterwards.
  Result<Frame*> FetchFrame(PageId id);
  void Unpin(Frame* frame);
  void NoteDirty(Frame* frame, Lsn lsn);
  Status WriteFrame(Frame* frame);  // WAL rule + checksum + disk write
  void ParanoidObserve(PageId id, Lsn lsn);
  Status ParanoidCheckLoad(PageId id, Lsn loaded_lsn);

  DiskManager* disk_;
  LogManager* log_;
  Metrics* metrics_;
  FaultInjector* fault_ = nullptr;
  RepairHandler repair_;
  LazyRedoHandler lazy_redo_;
  size_t page_size_;
  bool verify_checksums_;

  std::mutex mu_;
  std::condition_variable io_cv_;
  std::vector<std::unique_ptr<Frame>> frames_;
  std::unordered_map<PageId, Frame*> page_table_;
  std::list<Frame*> lru_;  // front = coldest unpinned frame
  std::unordered_map<Frame*, std::list<Frame*>::iterator> lru_pos_;
  std::unordered_set<PageId> io_in_progress_;
  PageContention latch_contention_;
  /// Pages whose evicted dirty frame is still being written back, keyed to
  /// the frame's rec_lsn. Readers must not reload them from disk until the
  /// write completes, and DirtyPageTable() must still report them: the
  /// write-back can fail (WAL-rule flush error, device fault), leaving the
  /// re-inserted frame dirty — a fuzzy checkpoint taken during the window
  /// would otherwise record a DPT missing the page, and restart redo would
  /// skip every log record between its true recLSN and its next update.
  std::unordered_map<PageId, Lsn> writing_back_;
  /// Instant restart: pages scheduled for first-touch redo, keyed to their
  /// analysis recLSN. Invariant: disjoint from page_table_ — the only path
  /// to residency (the fetch miss) erases the entry. DirtyPageTable() must
  /// report these pages so a checkpoint taken while the debt is draining
  /// keeps their recLSNs — that is what makes a crash *during* instant
  /// restart recoverable.
  std::unordered_map<PageId, Lsn> pending_redo_;
  std::vector<Frame*> free_frames_;
  bool paranoid_ = false;
  std::mutex paranoid_mu_;
  std::unordered_map<PageId, Lsn> last_written_;   // newest LSN on disk
  std::unordered_map<PageId, Lsn> last_observed_;  // newest LSN seen in memory
};

}  // namespace ariesim
