#include "btree/locking_protocol.h"

namespace ariesim {

namespace {

uint64_t HashKeyValue(std::string_view v) {
  // FNV-1a 64.
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : v) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// ARIES/IM data-only locking: key lock == record (or page/table) lock.
class DataOnlyProtocol final : public LockingProtocol {
 public:
  DataOnlyProtocol(LockManager* locks, ObjectId index_id, ObjectId table_id,
                   LockGranularity g)
      : locks_(locks), index_id_(index_id), table_id_(table_id), g_(g) {}

  LockName NameOf(const IndexKeyRef& k) const {
    if (k.eof) return LockName::IndexEof(index_id_);
    return DataLockName(g_, table_id_, k.rid);
  }

  Status LockFetchCurrent(Transaction* txn, const IndexKeyRef& key,
                          bool conditional) override {
    return locks_->Lock(txn->id(), NameOf(key), LockMode::kS,
                        LockDuration::kCommit, conditional);
  }
  Status LockUniqueCheck(Transaction* txn, const IndexKeyRef& key,
                         bool conditional) override {
    return locks_->Lock(txn->id(), NameOf(key), LockMode::kS,
                        LockDuration::kCommit, conditional);
  }
  Status LockInsertNext(Transaction* txn, const IndexKeyRef& next,
                        std::string_view, bool conditional) override {
    return locks_->Lock(txn->id(), NameOf(next), LockMode::kX,
                        LockDuration::kInstant, conditional);
  }
  Status LockInsertCurrent(Transaction*, std::string_view, Rid, bool) override {
    // The record manager already holds the commit-duration X lock on the
    // record; the key needs no further lock (paper §2.1).
    return Status::OK();
  }
  Status LockDeleteNext(Transaction* txn, const IndexKeyRef& next,
                        std::string_view, bool conditional) override {
    return locks_->Lock(txn->id(), NameOf(next), LockMode::kX,
                        LockDuration::kCommit, conditional);
  }
  Status LockDeleteCurrent(Transaction*, std::string_view, Rid, bool) override {
    return Status::OK();
  }

 private:
  LockManager* locks_;
  ObjectId index_id_;
  ObjectId table_id_;
  LockGranularity g_;
};

/// ARIES/IM index-specific locking variant: locks (index, key-value, RID)
/// names; current-key locks are explicit (paper Figure 2, right column).
class IndexSpecificProtocol final : public LockingProtocol {
 public:
  IndexSpecificProtocol(LockManager* locks, ObjectId index_id)
      : locks_(locks), index_id_(index_id) {}

  LockName NameOf(const IndexKeyRef& k) const {
    if (k.eof) return LockName::IndexEof(index_id_);
    return LockName::Key(index_id_, HashKeyValue(k.value), k.rid);
  }

  Status LockFetchCurrent(Transaction* txn, const IndexKeyRef& key,
                          bool conditional) override {
    return locks_->Lock(txn->id(), NameOf(key), LockMode::kS,
                        LockDuration::kCommit, conditional);
  }
  Status LockUniqueCheck(Transaction* txn, const IndexKeyRef& key,
                         bool conditional) override {
    return locks_->Lock(txn->id(), NameOf(key), LockMode::kS,
                        LockDuration::kCommit, conditional);
  }
  Status LockInsertNext(Transaction* txn, const IndexKeyRef& next,
                        std::string_view, bool conditional) override {
    return locks_->Lock(txn->id(), NameOf(next), LockMode::kX,
                        LockDuration::kInstant, conditional);
  }
  Status LockInsertCurrent(Transaction* txn, std::string_view value, Rid rid,
                           bool conditional) override {
    // "X for commit duration if index-specific locking is used" (Fig 2).
    return locks_->Lock(txn->id(),
                        LockName::Key(index_id_, HashKeyValue(value), rid),
                        LockMode::kX, LockDuration::kCommit, conditional);
  }
  Status LockDeleteNext(Transaction* txn, const IndexKeyRef& next,
                        std::string_view, bool conditional) override {
    return locks_->Lock(txn->id(), NameOf(next), LockMode::kX,
                        LockDuration::kCommit, conditional);
  }
  Status LockDeleteCurrent(Transaction* txn, std::string_view value, Rid rid,
                           bool conditional) override {
    // "X for instant duration if index-specific locking is used" (Fig 2).
    return locks_->Lock(txn->id(),
                        LockName::Key(index_id_, HashKeyValue(value), rid),
                        LockMode::kX, LockDuration::kInstant, conditional);
  }

 private:
  LockManager* locks_;
  ObjectId index_id_;
};

/// No index-level locking (single-threaded benchmarking only).
class NoneProtocol final : public LockingProtocol {
 public:
  Status LockFetchCurrent(Transaction*, const IndexKeyRef&, bool) override {
    return Status::OK();
  }
  Status LockUniqueCheck(Transaction*, const IndexKeyRef&, bool) override {
    return Status::OK();
  }
  Status LockInsertNext(Transaction*, const IndexKeyRef&, std::string_view,
                        bool) override {
    return Status::OK();
  }
  Status LockInsertCurrent(Transaction*, std::string_view, Rid, bool) override {
    return Status::OK();
  }
  Status LockDeleteNext(Transaction*, const IndexKeyRef&, std::string_view,
                        bool) override {
    return Status::OK();
  }
  Status LockDeleteCurrent(Transaction*, std::string_view, Rid, bool) override {
    return Status::OK();
  }
};

}  // namespace

// KvlProtocol lives in src/kvl/kvl_protocol.cpp; declared here for the
// factory.
std::unique_ptr<LockingProtocol> MakeKvlProtocol(LockManager* locks,
                                                 ObjectId index_id, bool unique);

std::unique_ptr<LockingProtocol> MakeLockingProtocol(
    LockingProtocolKind kind, LockManager* locks, ObjectId index_id,
    ObjectId table_id, bool unique, LockGranularity granularity) {
  switch (kind) {
    case LockingProtocolKind::kDataOnly:
      return std::make_unique<DataOnlyProtocol>(locks, index_id, table_id,
                                                granularity);
    case LockingProtocolKind::kIndexSpecific:
      return std::make_unique<IndexSpecificProtocol>(locks, index_id);
    case LockingProtocolKind::kKeyValue:
      return MakeKvlProtocol(locks, index_id, unique);
    case LockingProtocolKind::kNone:
    default:
      return std::make_unique<NoneProtocol>();
  }
}

}  // namespace ariesim
