// Index locking protocols (paper Figure 2 and §2.1).
//
// ARIES/IM's default is *data-only locking*: the lock of a key IS the lock
// of the record the key points at, so single-record operations acquire the
// minimum number of locks. Two alternatives are provided for ablation and
// baseline benchmarks:
//  - index-specific locking: lock (index, key-value, RID) names — slightly
//    more concurrency than data-only, more locks (paper §2.1);
//  - ARIES/KVL-style key-value locking: lock (index, key-value) names —
//    coarser on nonunique indexes and more locks per operation (paper §1).
//
// These protocols are descent-agnostic: the optimistic read path
// (docs/CONCURRENCY.md) delivers the leaf under the same S latch as the
// pessimistic one, so every lock request below runs identically — OLC
// changes how the descent reaches the leaf, never what gets locked.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "common/config.h"
#include "common/status.h"
#include "lock/lock_manager.h"
#include "txn/transaction.h"

namespace ariesim {

/// A located key, or the per-index EOF pseudo-key (paper §2.2: "a special
/// lock name unique to this index is used" at end of file).
struct IndexKeyRef {
  bool eof = false;
  std::string value;
  Rid rid;

  static IndexKeyRef Eof() {
    IndexKeyRef k;
    k.eof = true;
    return k;
  }
  static IndexKeyRef Of(std::string_view v, Rid r) {
    IndexKeyRef k;
    k.value.assign(v);
    k.rid = r;
    return k;
  }
};

class LockingProtocol {
 public:
  virtual ~LockingProtocol() = default;

  /// Fetch / Fetch Next: S commit on the current (found or EOF) key.
  virtual Status LockFetchCurrent(Transaction* txn, const IndexKeyRef& key,
                                  bool conditional) = 0;
  /// Insert, unique index: S commit on an equal-valued existing key, to
  /// check whether the key value is committed (paper §2.4).
  virtual Status LockUniqueCheck(Transaction* txn, const IndexKeyRef& key,
                                 bool conditional) = 0;
  /// Insert: X instant on the next key (paper Figure 2).
  virtual Status LockInsertNext(Transaction* txn, const IndexKeyRef& next,
                                std::string_view insert_value,
                                bool conditional) = 0;
  /// Insert: lock on the inserted key itself. No-op under data-only locking
  /// (the record manager already holds the commit X record lock).
  virtual Status LockInsertCurrent(Transaction* txn, std::string_view value,
                                   Rid rid, bool conditional) = 0;
  /// Delete: X commit on the next key (paper Figure 2).
  virtual Status LockDeleteNext(Transaction* txn, const IndexKeyRef& next,
                                std::string_view delete_value,
                                bool conditional) = 0;
  /// Delete: lock on the deleted key itself. No-op under data-only locking.
  virtual Status LockDeleteCurrent(Transaction* txn, std::string_view value,
                                   Rid rid, bool conditional) = 0;
};

/// Factory; `table_id` is the table whose records the index references
/// (used by data-only locking).
std::unique_ptr<LockingProtocol> MakeLockingProtocol(
    LockingProtocolKind kind, LockManager* locks, ObjectId index_id,
    ObjectId table_id, bool unique, LockGranularity granularity);

}  // namespace ariesim
