// Internal shared helper between btree.cpp and cursor.cpp: forward search
// for the first key >= / > a composite key, following the leaf chain while
// holding at most the operation leaf plus one chain page.
//
// The chain walk is also load-bearing for the optimistic read descent
// (docs/CONCURRENCY.md): an OLC traversal lands on a leaf that was correct
// at its parent-validation instant, and any keys a concurrent split moved
// right since then are reached here, through the latched sibling chain —
// the same guarantee the pessimistic latch-coupled descent gets.
#pragma once

#include "buffer/buffer_pool.h"
#include "common/context.h"
#include "common/status.h"
#include "common/types.h"

namespace ariesim {
namespace btinternal {

struct NextSearch {
  bool eof = false;
  std::string value;
  Rid rid;
  PageGuard chain_guard;  ///< set when the key lives on a chained page
  uint16_t pos = 0;
};

/// kRetry when a chain page looks mid-SMO (caller should wait and restart).
Status SearchForward(EngineContext* ctx, ObjectId index_id, PageGuard& leaf,
                     std::string_view value, Rid rid, bool exclusive,
                     NextSearch* out);

}  // namespace btinternal
}  // namespace ariesim
