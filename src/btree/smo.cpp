// Structure modification operations (paper §2.1, §3, Figures 8-10).
//
// All SMOs within one tree are serialized by the X tree latch, acquired only
// after the needed pages are in the buffer pool, and each SMO runs as a
// nested top action closed by a dummy CLR so that a later rollback of the
// enclosing transaction does not undo it. Splits go to the right; a page
// that becomes empty is unlinked, removed from its parent, and freed. The
// root page never moves: growing copies the root's cells into a fresh child
// and turning the root into a one-entry internal page; shrinking collapses
// a single child back into the root.
#include "btree/btree.h"
#include "common/trace.h"

namespace ariesim {

namespace {
constexpr int kMaxSmoRounds = 64;
}

Result<Lsn> LogBtree(EngineContext* ctx, Transaction* txn, uint8_t op,
                     PageId page, std::string payload, bool clr = false,
                     Lsn undo_next = kNullLsn) {
  LogRecord rec;
  rec.type = clr ? LogType::kCompensation : LogType::kUpdate;
  rec.rm = RmId::kBtree;
  rec.op = op;
  rec.page_id = page;
  rec.payload = std::move(payload);
  rec.undo_next_lsn = undo_next;
  return ctx->txns->AppendTxnLog(txn, &rec);
}

Status BTree::SplitSmoAndInsert(Transaction* txn, std::string_view value,
                                Rid rid) {
  // "Fix needed neighbouring pages in buffer pool" (Figure 8): warm the path
  // before serializing on the tree latch, to keep the X-hold short.
  {
    PageGuard warm;
    Status ws = TraverseToLeaf(value, rid, /*for_modify=*/false, &warm);
    if (ws.ok()) warm.Release();
  }
  bool baseline = ctx_->options.block_traversal_during_smo;
  if (!baseline) {
    LockTreeExclusiveCounted();
  }
  Status result = Status::Corruption("split loop did not settle");
  bool latch_released = false;
  for (int round = 0; round < kMaxSmoRounds; ++round) {
    PageGuard leaf;
    Status ts =
        TraverseToLeaf(value, rid, /*for_modify=*/true, &leaf, /*tree=*/true);
    if (!ts.ok()) {
      result = ts;
      break;
    }
    std::string cell = bt::EncodeLeafCell(value, rid);
    if (leaf.view().FreeSpaceForNewCell() >= cell.size()) {
      // Room exists (either our split finished or another transaction freed
      // space): perform the insert under the tree latch (Figure 8 performs
      // the key insert before releasing the latch). If a lock is not
      // grantable, InsertAtLeaf releases the tree latch *before* waiting
      // (locks are never awaited under the tree latch, §4) and flags it; the
      // kRetry then propagates to the caller's outer retry loop.
      result = InsertAtLeaf(txn, std::move(leaf), value, rid,
                            /*tree_latch_held=*/true,
                            baseline ? nullptr : &latch_released);
      break;
    }
    leaf.Release();
    // Span and histogram cover the whole nested top action incl. the
    // SM_Bit reset.
    ARIES_TRACE_SPAN(smo_span, "bt.smo_split", TraceCat::kBtree, txn->id());
    ScopedLatency smo_timer(
        ctx_->metrics != nullptr ? &ctx_->metrics->smo_latency : nullptr);
    txn->BeginNta();
    std::vector<PageId> touched;
    Status s = MakeRoomForKey(txn, value, rid, &touched);
    if (!s.ok()) {
      txn->PopNta();  // leave the partial SMO to the transaction rollback
      result = s;
      break;
    }
    s = ctx_->txns->EndNta(txn);
    if (!s.ok()) {
      result = s;
      break;
    }
    ClearSmBits(touched);  // Figure 8 reset, still under the tree latch
  }
  if (!baseline && !latch_released) UnlockTreeExclusiveCounted();
  return result;
}

Status BTree::MakeRoomForKey(Transaction* txn, std::string_view value, Rid rid,
                             std::vector<PageId>* touched) {
  // Conservative splice-room bound: a parent update replaces one cell and
  // inserts one more, each at most a full-size separator cell.
  const size_t sep_cell_max = 2 + MaxValueLen() + 6 + 4;
  const size_t splice_need = 2 * sep_cell_max + 2 * kSlotSize;
  const std::string cell = bt::EncodeLeafCell(value, rid);

  for (int round = 0; round < kMaxSmoRounds; ++round) {
    std::vector<PageId> path;
    ARIES_RETURN_NOT_OK(TraversePath(value, rid, &path));
    {
      ARIES_ASSIGN_OR_RETURN(
          PageGuard leaf, ctx_->pool->FetchPage(path.back(), LatchMode::kShared));
      if (leaf.view().FreeSpaceForNewCell() >= cell.size()) return Status::OK();
    }
    // Find the shallowest page that must be split whose parent can absorb
    // the splice; if the chain of full pages reaches the root, grow it.
    size_t d = path.size() - 1;
    while (d > 0) {
      ARIES_ASSIGN_OR_RETURN(
          PageGuard parent,
          ctx_->pool->FetchPage(path[d - 1], LatchMode::kShared));
      bool roomy = parent.view().FreeSpaceForNewCell() >= splice_need;
      parent.Release();
      if (roomy) break;
      --d;
    }
    if (d == 0) {
      ARIES_RETURN_NOT_OK(RootGrow(txn, touched));
      continue;
    }
    ARIES_RETURN_NOT_OK(DoOneSplit(txn, path[d - 1], path[d], touched));
  }
  return Status::Corruption("MakeRoomForKey did not settle");
}

Status BTree::RootGrow(Transaction* txn, std::vector<PageId>* touched) {
  ARIES_ASSIGN_OR_RETURN(PageId fresh, ctx_->space->AllocatePage(txn));
  ARIES_ASSIGN_OR_RETURN(PageGuard root,
                         ctx_->pool->FetchPage(root_, LatchMode::kExclusive));
  PageView rv = root.view();
  PageType old_type = rv.type();
  uint8_t old_level = rv.level();
  std::vector<std::string> cells = bt::CollectCells(rv);
  {
    ARIES_ASSIGN_OR_RETURN(PageGuard child,
                           ctx_->pool->FetchPage(fresh, LatchMode::kExclusive));
    std::string payload = bt::EncodeFormat(index_id_, old_type, old_level,
                                           /*sm=*/true, kInvalidPageId,
                                           kInvalidPageId, cells);
    ARIES_ASSIGN_OR_RETURN(Lsn lsn,
                           LogBtree(ctx_, txn, bt::kOpFormat, fresh, payload));
    ARIES_RETURN_NOT_OK(bt::Apply(bt::kOpFormat, payload, child.view()));
    child.MarkDirty(lsn);
  }
  std::vector<std::string> new_cells{
      bt::EncodeInternalCell(/*inf=*/true, "", Rid{}, fresh)};
  std::string payload = bt::EncodeReplaceAll(
      index_id_, old_type, old_level, PageType::kBtreeInternal,
      static_cast<uint8_t>(old_level + 1), cells, new_cells);
  ARIES_ASSIGN_OR_RETURN(Lsn lsn,
                         LogBtree(ctx_, txn, bt::kOpReplaceAll, root_, payload));
  ARIES_RETURN_NOT_OK(bt::Apply(bt::kOpReplaceAll, payload, rv));
  root.MarkDirty(lsn);
  if (touched != nullptr) {
    touched->push_back(root_);
    touched->push_back(fresh);
  }
  return Status::OK();
}

Status BTree::DoOneSplit(Transaction* txn, PageId parent, PageId node,
                         std::vector<PageId>* touched) {
  ARIES_ASSIGN_OR_RETURN(PageId fresh, ctx_->space->AllocatePage(txn));
  ARIES_ASSIGN_OR_RETURN(PageGuard ng,
                         ctx_->pool->FetchPage(node, LatchMode::kExclusive));
  PageView nv = ng.view();
  uint16_t n = nv.slot_count();
  if (n < 2) return Status::Corruption("cannot split a page with < 2 cells");
  bool is_leaf = nv.type() == PageType::kBtreeLeaf;

  // Split point: first slot where the cumulative cell bytes exceed half.
  size_t total = nv.LiveCellBytes();
  size_t acc = 0;
  uint16_t split_idx = 0;
  for (uint16_t i = 0; i < n; ++i) {
    acc += nv.SlotLen(i);
    if (acc * 2 >= total) {
      split_idx = static_cast<uint16_t>(i + 1);
      break;
    }
  }
  if (split_idx < 1) split_idx = 1;
  if (split_idx > n - 1) split_idx = static_cast<uint16_t>(n - 1);

  std::vector<std::string> moved = bt::CollectCells(nv, split_idx);
  PageId old_next = nv.next_page();

  // Separator S: for a leaf, the first moved key (copied up); for an
  // internal page, the key of the entry that becomes the left page's
  // rightmost (promoted up, its slot turning into the inf sentinel).
  std::string sep_value;
  Rid sep_rid;
  std::string old_last_cell, new_last_cell;
  bool replace_last = !is_leaf;
  if (is_leaf) {
    bt::LeafEntry first_moved = bt::DecodeLeafCell(moved.front());
    sep_value.assign(first_moved.value);
    sep_rid = first_moved.rid;
  } else {
    old_last_cell = std::string(nv.Cell(static_cast<uint16_t>(split_idx - 1)));
    bt::InternalEntry promoted = bt::DecodeInternalCell(old_last_cell);
    if (promoted.inf) {
      return Status::Corruption("internal split would promote the inf entry");
    }
    sep_value.assign(promoted.value);
    sep_rid = promoted.rid;
    new_last_cell =
        bt::EncodeInternalCell(/*inf=*/true, "", Rid{}, promoted.child);
  }

  // 1. Format the new right sibling (unreachable until the links flip).
  {
    ARIES_ASSIGN_OR_RETURN(PageGuard rg,
                           ctx_->pool->FetchPage(fresh, LatchMode::kExclusive));
    std::string payload = bt::EncodeFormat(
        index_id_, nv.type(), nv.level(), /*sm=*/true,
        is_leaf ? node : kInvalidPageId, is_leaf ? old_next : kInvalidPageId,
        moved);
    ARIES_ASSIGN_OR_RETURN(Lsn lsn,
                           LogBtree(ctx_, txn, bt::kOpFormat, fresh, payload));
    ARIES_RETURN_NOT_OK(bt::Apply(bt::kOpFormat, payload, rg.view()));
    rg.MarkDirty(lsn);
  }
  // 2. Truncate the left page and (for leaves) swing its next pointer.
  {
    std::string payload = bt::EncodeTruncate(
        index_id_, split_idx, old_next, is_leaf ? fresh : kInvalidPageId,
        replace_last, old_last_cell, new_last_cell, moved);
    ARIES_ASSIGN_OR_RETURN(Lsn lsn,
                           LogBtree(ctx_, txn, bt::kOpTruncate, node, payload));
    ARIES_RETURN_NOT_OK(bt::Apply(bt::kOpTruncate, payload, nv));
    ng.MarkDirty(lsn);
  }
  ng.Release();  // lower-level latches released before latching higher pages

  // 3. Back pointer of the old right neighbor (leaf chain only).
  if (is_leaf && old_next != kInvalidPageId) {
    ARIES_ASSIGN_OR_RETURN(PageGuard og,
                           ctx_->pool->FetchPage(old_next, LatchMode::kExclusive));
    std::string payload = bt::EncodeSetLink(index_id_, node, fresh);
    ARIES_ASSIGN_OR_RETURN(Lsn lsn,
                           LogBtree(ctx_, txn, bt::kOpSetPrev, old_next, payload));
    ARIES_RETURN_NOT_OK(bt::Apply(bt::kOpSetPrev, payload, og.view()));
    og.MarkDirty(lsn);
  }

  if (test_fail_before_splice_.exchange(false)) {
    return Status::IOError("injected failure before parent splice");
  }

  // 4. Splice the parent: (node, H) -> (node, S), insert (fresh, H) after.
  {
    ARIES_ASSIGN_OR_RETURN(PageGuard pg,
                           ctx_->pool->FetchPage(parent, LatchMode::kExclusive));
    PageView pv = pg.view();
    uint16_t slot = pv.slot_count();
    for (uint16_t i = 0; i < pv.slot_count(); ++i) {
      if (bt::DecodeInternalCell(pv.Cell(i)).child == node) {
        slot = i;
        break;
      }
    }
    if (slot == pv.slot_count()) {
      return Status::Corruption("split: child entry missing from parent");
    }
    std::string old_cell(pv.Cell(slot));
    bt::InternalEntry old_e = bt::DecodeInternalCell(old_cell);
    std::string new_cell =
        bt::EncodeInternalCell(/*inf=*/false, sep_value, sep_rid, node);
    std::string ins_cell = bt::EncodeInternalCell(old_e.inf, old_e.value,
                                                  old_e.rid, fresh);
    std::string payload =
        bt::EncodeParentSplice(index_id_, slot, old_cell, new_cell, ins_cell);
    ARIES_ASSIGN_OR_RETURN(
        Lsn lsn, LogBtree(ctx_, txn, bt::kOpParentSplice, parent, payload));
    ARIES_RETURN_NOT_OK(bt::Apply(bt::kOpParentSplice, payload, pv));
    pg.MarkDirty(lsn);
  }
  if (touched != nullptr) {
    touched->push_back(node);
    touched->push_back(fresh);
    touched->push_back(parent);
    if (is_leaf && old_next != kInvalidPageId) touched->push_back(old_next);
  }
  if (ctx_->metrics != nullptr) {
    ctx_->metrics->smo_splits.fetch_add(1, std::memory_order_relaxed);
  }
  int fp = test_fail_after_splits_.load(std::memory_order_relaxed);
  if (fp >= 0) {
    if (fp == 0) {
      test_fail_after_splits_.store(-1);
      return Status::IOError("injected failure after split step");
    }
    test_fail_after_splits_.store(fp - 1);
  }
  return Status::OK();
}

namespace {
/// Locate the internal page holding the routing entry for `child`, walking
/// by (value, rid). Only valid while the tree latch is held X.
Status FindParentOf(EngineContext* ctx, ObjectId index_id, PageId root,
                    PageId child, std::string_view value, Rid rid,
                    PageId* parent_out, uint16_t* slot_out) {
  PageId cur = root;
  for (int depth = 0; depth < 64; ++depth) {
    ARIES_ASSIGN_OR_RETURN(PageGuard g,
                           ctx->pool->FetchPage(cur, LatchMode::kShared));
    PageView v = g.view();
    if (v.owner_id() != index_id || v.type() != PageType::kBtreeInternal) {
      return Status::Corruption("FindParentOf: routing left the index");
    }
    if (v.slot_count() == 0) {
      return Status::Corruption("FindParentOf: empty internal page");
    }
    uint16_t ci = bt::InternalChildIndex(v, value, rid);
    if (ci >= v.slot_count()) {
      return Status::Corruption("FindParentOf: no routing entry");
    }
    bt::InternalEntry e = bt::DecodeInternalCell(v.Cell(ci));
    if (e.child == child) {
      *parent_out = cur;
      *slot_out = ci;
      return Status::OK();
    }
    cur = e.child;
  }
  return Status::Corruption("FindParentOf: did not terminate");
}
}  // namespace

Status BTree::RemoveFromParent(Transaction* txn, PageId child,
                               std::string_view value, Rid rid,
                               std::vector<PageId>* touched) {
  PageId parent;
  uint16_t slot;
  ARIES_RETURN_NOT_OK(FindParentOf(ctx_, index_id_, root_, child, value, rid,
                                   &parent, &slot));
  uint16_t remaining;
  {
    ARIES_ASSIGN_OR_RETURN(PageGuard pg,
                           ctx_->pool->FetchPage(parent, LatchMode::kExclusive));
    PageView pv = pg.view();
    std::string removed(pv.Cell(slot));
    bt::InternalEntry removed_e = bt::DecodeInternalCell(removed);
    bool fixed = removed_e.inf && pv.slot_count() >= 2;
    uint16_t fix_slot = static_cast<uint16_t>(slot > 0 ? slot - 1 : 0);
    std::string fix_old, fix_new;
    if (fixed) {
      fix_old = std::string(pv.Cell(fix_slot));
      bt::InternalEntry prev_e = bt::DecodeInternalCell(fix_old);
      fix_new = bt::EncodeInternalCell(/*inf=*/true, "", Rid{}, prev_e.child);
    }
    std::string payload = bt::EncodeParentRemove(index_id_, slot, removed,
                                                 fixed, fix_slot, fix_old,
                                                 fix_new);
    ARIES_ASSIGN_OR_RETURN(
        Lsn lsn, LogBtree(ctx_, txn, bt::kOpParentRemove, parent, payload));
    ARIES_RETURN_NOT_OK(bt::Apply(bt::kOpParentRemove, payload, pv));
    pg.MarkDirty(lsn);
    remaining = pv.slot_count();
    if (touched != nullptr) touched->push_back(parent);
  }

  if (parent == root_) {
    if (remaining == 0) {
      // Last child gone: the tree is empty; the root reverts to an empty
      // leaf (the root page itself never moves or disappears).
      ARIES_ASSIGN_OR_RETURN(PageGuard rg,
                             ctx_->pool->FetchPage(root_, LatchMode::kExclusive));
      PageView rv = rg.view();
      std::string payload = bt::EncodeReplaceAll(
          index_id_, rv.type(), rv.level(), PageType::kBtreeLeaf, 0, {}, {});
      ARIES_ASSIGN_OR_RETURN(
          Lsn lsn, LogBtree(ctx_, txn, bt::kOpReplaceAll, root_, payload));
      ARIES_RETURN_NOT_OK(bt::Apply(bt::kOpReplaceAll, payload, rv));
      rg.MarkDirty(lsn);
      if (touched != nullptr) touched->push_back(root_);
      return Status::OK();
    }
    // Height shrink: while the root holds a single child, collapse it.
    //
    // The child's cells are copied into the root and the child is freed in
    // ONE critical section holding both X latches (root first, then child —
    // the same top-down order traversers couple in, so no latch deadlock).
    // Reading the child's cells under a separate, earlier latch would race
    // concurrent leaf inserts into the child (leaf modifications do not take
    // the tree latch) and silently lose their keys.
    for (int round = 0; round < kMaxSmoRounds; ++round) {
      ARIES_ASSIGN_OR_RETURN(PageGuard rg,
                             ctx_->pool->FetchPage(root_, LatchMode::kExclusive));
      PageView rv = rg.view();
      if (rv.type() != PageType::kBtreeInternal || rv.slot_count() != 1) {
        return Status::OK();
      }
      PageId only_child = bt::DecodeInternalCell(rv.Cell(0)).child;
      ARIES_ASSIGN_OR_RETURN(
          PageGuard cg, ctx_->pool->FetchPage(only_child, LatchMode::kExclusive));
      PageView cv = cg.view();
      PageType ct = cv.type();
      uint8_t cl = cv.level();
      PageId cprev = cv.prev_page();
      PageId cnext = cv.next_page();
      std::vector<std::string> ccells = bt::CollectCells(cv);
      {
        std::vector<std::string> old_cells = bt::CollectCells(rv);
        std::string payload = bt::EncodeReplaceAll(
            index_id_, rv.type(), rv.level(), ct, cl, old_cells, ccells);
        ARIES_ASSIGN_OR_RETURN(
            Lsn lsn, LogBtree(ctx_, txn, bt::kOpReplaceAll, root_, payload));
        ARIES_RETURN_NOT_OK(bt::Apply(bt::kOpReplaceAll, payload, rv));
        rg.MarkDirty(lsn);
        if (touched != nullptr) touched->push_back(root_);
      }
      {
        std::string payload = bt::EncodeToFree(index_id_, ct, cl, cprev, cnext);
        ARIES_ASSIGN_OR_RETURN(
            Lsn lsn, LogBtree(ctx_, txn, bt::kOpToFree, only_child, payload));
        ARIES_RETURN_NOT_OK(bt::Apply(bt::kOpToFree, payload, cv));
        cg.MarkDirty(lsn);
      }
      cg.Release();
      rg.Release();
      ARIES_RETURN_NOT_OK(ctx_->space->FreePage(txn, only_child));
    }
    return Status::OK();
  }

  if (remaining == 0) {
    // The parent became empty: remove it from *its* parent, then free it.
    ARIES_RETURN_NOT_OK(RemoveFromParent(txn, parent, value, rid, touched));
    ARIES_ASSIGN_OR_RETURN(PageGuard pg,
                           ctx_->pool->FetchPage(parent, LatchMode::kExclusive));
    PageView pv = pg.view();
    std::string payload = bt::EncodeToFree(index_id_, pv.type(), pv.level(),
                                           kInvalidPageId, kInvalidPageId);
    ARIES_ASSIGN_OR_RETURN(Lsn lsn,
                           LogBtree(ctx_, txn, bt::kOpToFree, parent, payload));
    ARIES_RETURN_NOT_OK(bt::Apply(bt::kOpToFree, payload, pv));
    pg.MarkDirty(lsn);
    pg.Release();
    ARIES_RETURN_NOT_OK(ctx_->space->FreePage(txn, parent));
  }
  return Status::OK();
}

Status BTree::PageDeleteSmo(Transaction* txn, PageGuard leaf,
                            std::string_view value, Rid rid) {
  PageId L = leaf.page_id();
  if (L == root_) {
    // An empty root leaf simply stays: the empty tree state.
    return Status::OK();
  }
  PageView v = leaf.view();
  PageId prev = v.prev_page();
  PageId next = v.next_page();
  // Warn concurrent transactions immediately (logged reinforcement follows
  // in kOpToFree): with the leaf X latch held no one else can be mid-update.
  v.set_sm_bit(true);
  leaf.Release();

  ARIES_TRACE_SPAN(smo_span, "bt.smo_pagedel", TraceCat::kBtree, txn->id());
  ScopedLatency smo_timer(
      ctx_->metrics != nullptr ? &ctx_->metrics->smo_latency : nullptr);
  txn->BeginNta();
  std::vector<PageId> touched;
  auto body = [&]() -> Status {
    if (prev != kInvalidPageId) {
      ARIES_ASSIGN_OR_RETURN(PageGuard g,
                             ctx_->pool->FetchPage(prev, LatchMode::kExclusive));
      std::string payload = bt::EncodeSetLink(index_id_, L, next);
      ARIES_ASSIGN_OR_RETURN(Lsn lsn,
                             LogBtree(ctx_, txn, bt::kOpSetNext, prev, payload));
      ARIES_RETURN_NOT_OK(bt::Apply(bt::kOpSetNext, payload, g.view()));
      g.MarkDirty(lsn);
      touched.push_back(prev);
    }
    if (next != kInvalidPageId) {
      ARIES_ASSIGN_OR_RETURN(PageGuard g,
                             ctx_->pool->FetchPage(next, LatchMode::kExclusive));
      std::string payload = bt::EncodeSetLink(index_id_, L, prev);
      ARIES_ASSIGN_OR_RETURN(Lsn lsn,
                             LogBtree(ctx_, txn, bt::kOpSetPrev, next, payload));
      ARIES_RETURN_NOT_OK(bt::Apply(bt::kOpSetPrev, payload, g.view()));
      g.MarkDirty(lsn);
      touched.push_back(next);
    }
    ARIES_RETURN_NOT_OK(RemoveFromParent(txn, L, value, rid, &touched));
    {
      ARIES_ASSIGN_OR_RETURN(PageGuard g,
                             ctx_->pool->FetchPage(L, LatchMode::kExclusive));
      std::string payload = bt::EncodeToFree(index_id_, PageType::kBtreeLeaf, 0,
                                             prev, next);
      ARIES_ASSIGN_OR_RETURN(Lsn lsn,
                             LogBtree(ctx_, txn, bt::kOpToFree, L, payload));
      ARIES_RETURN_NOT_OK(bt::Apply(bt::kOpToFree, payload, g.view()));
      g.MarkDirty(lsn);
    }
    return ctx_->space->FreePage(txn, L);
  };
  Status s = body();
  if (!s.ok()) {
    txn->PopNta();  // rollback will undo the partial SMO
    return s;
  }
  ARIES_RETURN_NOT_OK(ctx_->txns->EndNta(txn));
  ClearSmBits(touched);  // Figure 8 reset, still under the tree latch
  if (ctx_->metrics != nullptr) {
    ctx_->metrics->smo_page_deletes.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

void BTree::ClearSmBits(const std::vector<PageId>& pages) {
  for (PageId id : pages) {
    auto res = ctx_->pool->FetchPage(id, LatchMode::kExclusive);
    if (!res.ok()) continue;
    PageGuard g = std::move(res).value();
    if (g.view().owner_id() == index_id_) g.view().set_sm_bit(false);
  }
}

}  // namespace ariesim
