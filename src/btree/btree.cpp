#include "btree/btree.h"

#include <chrono>
#include <optional>
#include <thread>

#include "btree/search_internal.h"
#include "common/clock.h"
#include "common/commit_breakdown.h"
#include "common/trace.h"

namespace ariesim {

namespace {
constexpr int kMaxRestarts = 10000;

// Attempt count past which an optimistic restart loop starts backing off.
constexpr int kBackoffAfterAttempts = 8;

/// Bounded randomized backoff between traversal restarts.
///
/// Repeated conditional-lock denials can livelock: N transactions inserting
/// around the same hot key each fail the conditional next-key lock because
/// the *other* transactions' unconditional instant-duration waiters sit in
/// the queue, then enqueue their own unconditional request (keeping the
/// queue non-empty for everyone else), get granted, restart, and fail the
/// conditional probe again. The queue never drains long enough for any
/// thread's conditional request to succeed (see docs/OBSERVABILITY.md,
/// "Case study"). Desynchronizing the restarts with a short randomized
/// sleep breaks the convoy. Never called while holding the tree latch.
void RestartBackoff(int attempt, Metrics* metrics) {
  if (attempt < kBackoffAfterAttempts) return;
  static thread_local uint64_t rng =
      0x9e3779b97f4a7c15ull ^
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  rng ^= rng << 13;
  rng ^= rng >> 7;
  rng ^= rng << 17;
  int shift = attempt - kBackoffAfterAttempts;
  if (shift > 7) shift = 7;
  uint64_t cap_us = 4ull << shift;  // 4us doubling to a 512us ceiling
  if (metrics != nullptr) {
    metrics->btree_backoffs.fetch_add(1, std::memory_order_relaxed);
  }
  // The backoff sleep is OLC-restart wait from the transaction's point of
  // view: charge it to the latch_wait commit-breakdown segment.
  ScopedCommitSegment seg(CommitSegment::latch_wait);
  std::this_thread::sleep_for(std::chrono::microseconds(1 + rng % cap_us));
}

// Optimistic descent: failed version validations tolerated before giving up
// and falling back to the pessimistic latch-coupled path. Every restart past
// the first rides RestartBackoff's randomized 4us-doubling sleep (arming it
// immediately: an OLC restart means a writer is actively rewriting the
// path). Keep in sync with the decision table in docs/CONCURRENCY.md.
constexpr int kOlcMaxRestarts = 8;

// Per-thread snapshot buffers for the optimistic descent: one for the node
// being examined, one for its child mid-coupling. Sized to the largest page
// size seen by this thread (databases with different page sizes can coexist
// in one process; tests do exactly that).
struct OlcScratch {
  size_t capacity = 0;
  std::unique_ptr<char[]> a;
  std::unique_ptr<char[]> b;
};

OlcScratch& TlsOlcScratch(size_t page_size) {
  static thread_local OlcScratch s;
  if (s.capacity < page_size) {
    s.a = std::make_unique<char[]>(page_size);
    s.b = std::make_unique<char[]>(page_size);
    s.capacity = page_size;
  }
  return s;
}
}  // namespace

Result<PageId> BTree::CreateRoot(EngineContext* ctx, Transaction* txn,
                                 ObjectId index_id) {
  ARIES_ASSIGN_OR_RETURN(PageId root, ctx->space->AllocatePage(txn));
  ARIES_ASSIGN_OR_RETURN(PageGuard page,
                         ctx->pool->FetchPage(root, LatchMode::kExclusive));
  std::string payload = bt::EncodeFormat(index_id, PageType::kBtreeLeaf,
                                         /*level=*/0, /*sm=*/false,
                                         kInvalidPageId, kInvalidPageId, {});
  LogRecord rec;
  rec.type = LogType::kUpdate;
  rec.rm = RmId::kBtree;
  rec.op = bt::kOpFormat;
  rec.page_id = root;
  rec.payload = payload;
  ARIES_ASSIGN_OR_RETURN(Lsn lsn, ctx->txns->AppendTxnLog(txn, &rec));
  ARIES_RETURN_NOT_OK(bt::Apply(bt::kOpFormat, payload, page.view()));
  page.MarkDirty(lsn);
  return root;
}

Result<Lsn> BTree::LogKeyOp(Transaction* txn, uint8_t op, PageId page,
                            std::string_view value, Rid rid,
                            bool set_delete_bit, bool clr, Lsn undo_next) {
  LogRecord rec;
  rec.type = clr ? LogType::kCompensation : LogType::kUpdate;
  rec.rm = RmId::kBtree;
  rec.op = op;
  rec.page_id = page;
  rec.payload = bt::EncodeKeyOp(index_id_, value, rid, set_delete_bit);
  rec.undo_next_lsn = undo_next;
  return ctx_->txns->AppendTxnLog(txn, &rec);
}

void BTree::WaitForSmo() {
  if (ctx_->metrics != nullptr) {
    ctx_->metrics->smo_waits.fetch_add(1, std::memory_order_relaxed);
    ctx_->metrics->tree_latch_acquisitions.fetch_add(1, std::memory_order_relaxed);
  }
  ARIES_TRACE_SPAN(span, "bt.smo_wait", TraceCat::kBtree, index_id_);
  tree_latch_.LockInstant(LatchMode::kShared);
}

void BTree::LockTreeExclusiveCounted() {
  bool waited = !tree_latch_.TryLockExclusive();
  if (waited) {
    // Contended path only: the uncontended TryLock above stays clock-free.
    const uint64_t wait_start_ns = MonotonicNowNs();
    ARIES_TRACE_SPAN(span, "bt.tree_latch_wait", TraceCat::kBtree, index_id_);
    tree_latch_.LockExclusive();
    const uint64_t waited_ns = MonotonicNowNs() - wait_start_ns;
    if (ctx_->metrics != nullptr) {
      ctx_->metrics->latch_wait_latency.Record(waited_ns);
    }
    AddCommitSegment(CommitSegment::latch_wait, waited_ns);
  }
  if (ctx_->metrics != nullptr) {
    if (waited) {
      ctx_->metrics->tree_latch_waits.fetch_add(1, std::memory_order_relaxed);
    }
    ctx_->metrics->tree_latch_acquisitions.fetch_add(1,
                                                     std::memory_order_relaxed);
  }
  tree_x_acquired_ns_.store(MonotonicNowNs(), std::memory_order_relaxed);
}

void BTree::UnlockTreeExclusiveCounted() {
  if (ctx_->metrics != nullptr) {
    uint64_t start = tree_x_acquired_ns_.load(std::memory_order_relaxed);
    if (start != 0) {
      ctx_->metrics->tree_latch_hold_latency.Record(MonotonicNowNs() - start);
    }
  }
  tree_latch_.UnlockExclusive();
}

Status BTree::TraverseToLeaf(std::string_view value, Rid rid, bool for_modify,
                             PageGuard* leaf, bool tree_latch_held) {
  ARIES_TRACE_SPAN(span, "bt.traverse", TraceCat::kBtree, index_id_);
  for (int restart = 0; restart < kMaxRestarts; ++restart) {
    if (restart > 0 && ctx_->metrics != nullptr) {
      ctx_->metrics->traversal_restarts.fetch_add(1, std::memory_order_relaxed);
    }
    ARIES_ASSIGN_OR_RETURN(PageGuard cur,
                           ctx_->pool->FetchPage(root_, LatchMode::kShared));
    bool descend_failed = false;
    while (true) {
      PageView v = cur.view();
      if (v.owner_id() != index_id_ ||
          (v.type() != PageType::kBtreeLeaf &&
           v.type() != PageType::kBtreeInternal)) {
        // Mid-SMO state (e.g. the page was freed and reused): wait + restart.
        if (tree_latch_held) {
          return Status::Corruption("invalid page reachable under tree latch");
        }
        cur.Release();
        WaitForSmo();
        descend_failed = true;
        break;
      }
      if (v.type() == PageType::kBtreeInternal) {
        // Figure 4: "nonempty child & ((input key <= highest key in child)
        // OR ((input key > highest key in child) & SM_Bit='0'))".
        // With the tree latch held X by this thread, any SM_Bit is a stale
        // leftover of a completed SMO and is ignored.
        bool ambiguous =
            v.slot_count() == 0 ||
            (!tree_latch_held && v.sm_bit() &&
             !bt::KeyWithinHighest(v, value, rid));
        if (ambiguous) {
          if (tree_latch_held) {
            return Status::Corruption("empty internal page under tree latch");
          }
          bool stale_bit = v.sm_bit();
          PageId id = cur.page_id();
          cur.Release();
          bool cleared = false;
          if (stale_bit) {
            // The bit may be a stale leftover (the optional reset lost in a
            // crash). Verify under the page's X latch: with it held, a
            // successful conditional tree-latch probe proves no SMO is in
            // progress AND none can touch this page before the clear — the
            // same ordering EnsureNoSmo relies on (Figures 6/7). Probing
            // before latching the page would race a just-started SMO
            // setting the bit.
            auto xres = ctx_->pool->FetchPage(id, LatchMode::kExclusive);
            if (xres.ok()) {
              PageGuard xg = std::move(xres).value();
              if (xg.view().owner_id() == index_id_ && xg.view().sm_bit() &&
                  tree_latch_.TryLockShared()) {
                tree_latch_.UnlockShared();
                xg.view().set_sm_bit(false);
                cleared = true;
              }
            }
          }
          if (!cleared) WaitForSmo();
          descend_failed = true;
          break;
        }
        uint16_t ci = bt::InternalChildIndex(v, value, rid);
        if (ci >= v.slot_count()) {
          cur.Release();
          WaitForSmo();
          descend_failed = true;
          break;
        }
        bt::InternalEntry e = bt::DecodeInternalCell(v.Cell(ci));
        uint8_t expected_level = static_cast<uint8_t>(v.level() - 1);
        LatchMode child_mode =
            (expected_level == 0 && for_modify) ? LatchMode::kExclusive
                                                : LatchMode::kShared;
        auto child_res = ctx_->pool->FetchPage(e.child, child_mode);
        if (!child_res.ok()) return child_res.status();
        PageGuard child = std::move(child_res).value();
        cur.Release();  // latch coupling: parent released after child latched
        PageView cv = child.view();
        if (cv.owner_id() != index_id_ || cv.level() != expected_level ||
            (expected_level == 0 && cv.type() != PageType::kBtreeLeaf) ||
            (expected_level != 0 && cv.type() != PageType::kBtreeInternal)) {
          if (tree_latch_held) {
            return Status::Corruption("stale child reachable under tree latch");
          }
          child.Release();
          WaitForSmo();
          descend_failed = true;
          break;
        }
        cur = std::move(child);
        continue;
      }
      // Leaf.
      if (for_modify && cur.mode() == LatchMode::kShared) {
        // root == leaf arrived under S; upgrade by re-latching and re-running
        // the validation loop.
        PageId id = cur.page_id();
        cur.Release();
        ARIES_ASSIGN_OR_RETURN(cur,
                               ctx_->pool->FetchPage(id, LatchMode::kExclusive));
        continue;
      }
      *leaf = std::move(cur);
      return Status::OK();
    }
    if (descend_failed) continue;
  }
  return Status::Corruption("btree traversal did not settle (index " +
                            std::to_string(index_id_) + ")");
}

Status BTree::TraverseToLeafRead(std::string_view value, Rid rid,
                                 PageGuard* leaf) {
  const uint64_t start_ns = MonotonicNowNs();
  if (ctx_->options.optimistic_reads &&
      !ctx_->options.block_traversal_during_smo) {
    Status s = TraverseToLeafOptimistic(value, rid, leaf);
    if (!s.IsBusy()) {
      if (ctx_->metrics != nullptr) {
        if (s.ok()) {
          ctx_->metrics->olc_descents.fetch_add(1, std::memory_order_relaxed);
        }
        ctx_->metrics->read_descent_latency.Record(MonotonicNowNs() -
                                                   start_ns);
      }
      return s;
    }
    // kBusy is the optimistic path's "I cannot decide without latching":
    // an SM_Bit sighting or an exhausted restart budget. The pessimistic
    // descent knows how to wait SMOs out and to clear stale bits.
    if (ctx_->metrics != nullptr) {
      ctx_->metrics->olc_fallbacks.fetch_add(1, std::memory_order_relaxed);
    }
    ARIES_TRACE_INSTANT("bt.olc_fallback", TraceCat::kBtree, index_id_);
  }
  Status s = TraverseToLeaf(value, rid, /*for_modify=*/false, leaf);
  if (ctx_->metrics != nullptr) {
    ctx_->metrics->read_descent_latency.Record(MonotonicNowNs() - start_ns);
  }
  return s;
}

Status BTree::TraverseToLeafOptimistic(std::string_view value, Rid rid,
                                       PageGuard* leaf) {
  ARIES_TRACE_SPAN(span, "bt.olc_traverse", TraceCat::kBtree, index_id_);
  const size_t page_size = ctx_->pool->page_size();
  OlcScratch& scratch = TlsOlcScratch(page_size);
  char* node_buf = scratch.a.get();
  char* child_buf = scratch.b.get();
  for (int attempt = 0; attempt <= kOlcMaxRestarts; ++attempt) {
    if (attempt > 0) {
      if (ctx_->metrics != nullptr) {
        ctx_->metrics->olc_restarts.fetch_add(1, std::memory_order_relaxed);
      }
      RestartBackoff(kBackoffAfterAttempts + attempt - 1, ctx_->metrics);
    }
    ARIES_ASSIGN_OR_RETURN(OptimisticPageGuard node,
                           ctx_->pool->FetchPageOptimistic(root_));
    uint64_t node_ver = 0;
    if (!node.TrySnapshot(node_buf, &node_ver)) continue;
    bool give_up = false;
    while (true) {
      // Everything below parses the validated snapshot, never live bytes.
      PageView v(node_buf, page_size);
      if (v.owner_id() != index_id_ ||
          (v.type() != PageType::kBtreeLeaf &&
           v.type() != PageType::kBtreeInternal)) {
        break;  // mid-SMO state (freed/reused page): restart
      }
      if (v.type() == PageType::kBtreeLeaf) {
        // The root is (still) a leaf. Land with the real S latch downstream
        // code expects and re-run the checks on the live, latched page.
        PageId id = node.page_id();
        node.Release();
        ARIES_ASSIGN_OR_RETURN(PageGuard lg,
                               ctx_->pool->FetchPage(id, LatchMode::kShared));
        PageView lv = lg.view();
        if (lv.owner_id() != index_id_ ||
            lv.type() != PageType::kBtreeLeaf) {
          break;  // grew into an internal node meanwhile: restart
        }
        *leaf = std::move(lg);
        return Status::OK();
      }
      // Internal node. An SM_Bit here means an SMO touching this page is in
      // flight — or its unlogged reset was lost. The pessimistic path can
      // disambiguate under the page X latch (and clear a stale bit); the
      // optimistic one cannot, so it always hands over.
      if (v.sm_bit()) {
        give_up = true;
        break;
      }
      if (v.slot_count() == 0) break;  // mid-SMO: restart
      uint16_t ci = bt::InternalChildIndex(v, value, rid);
      if (ci >= v.slot_count()) break;  // key beyond highest: restart
      bt::InternalEntry e = bt::DecodeInternalCell(v.Cell(ci));
      uint8_t expected_level = static_cast<uint8_t>(v.level() - 1);
      if (expected_level == 0) {
        // Leaf level: blocking S latch, exactly like the pessimistic path.
        ARIES_ASSIGN_OR_RETURN(
            PageGuard lg, ctx_->pool->FetchPage(e.child, LatchMode::kShared));
        // OLC coupling: the parent must not have changed between the
        // snapshot the child pointer came from and the child latch being
        // held — the parent pin (still held) keeps its version meaningful.
        // With it unchanged, the parent's routing entry covered (value,
        // rid) at an instant inside the latch hold, the same guarantee
        // latch coupling gives; keys that moved right afterwards are caught
        // by SearchForward's chain walk, as ever.
        if (!node.Validate(node_ver)) break;
        node.Release();
        PageView lv = lg.view();
        if (lv.owner_id() != index_id_ || lv.level() != 0 ||
            lv.type() != PageType::kBtreeLeaf) {
          break;  // deleted/reused under us: restart
        }
        *leaf = std::move(lg);
        return Status::OK();
      }
      // Internal child: snapshot it, then validate the parent before
      // trusting that the pointer we followed was current.
      ARIES_ASSIGN_OR_RETURN(OptimisticPageGuard child,
                             ctx_->pool->FetchPageOptimistic(e.child));
      uint64_t child_ver = 0;
      if (!child.TrySnapshot(child_buf, &child_ver)) break;
      if (!node.Validate(node_ver)) break;
      PageView cv(child_buf, page_size);
      if (cv.owner_id() != index_id_ || cv.level() != expected_level ||
          cv.type() != PageType::kBtreeInternal) {
        break;  // split/deleted between snapshot and validate: restart
      }
      node = std::move(child);
      node_ver = child_ver;
      std::swap(node_buf, child_buf);
    }
    if (give_up) return Status::Busy("olc: SM_Bit sighted mid-descent");
  }
  return Status::Busy("olc: restart budget exhausted");
}

Status BTree::TraversePath(std::string_view value, Rid rid,
                           std::vector<PageId>* path) {
  // Only called with the tree latch held X: the structure cannot change.
  path->clear();
  PageId cur = root_;
  while (true) {
    ARIES_ASSIGN_OR_RETURN(PageGuard page,
                           ctx_->pool->FetchPage(cur, LatchMode::kShared));
    PageView v = page.view();
    if (v.owner_id() != index_id_) {
      return Status::Corruption("TraversePath: wrong owner on page " +
                                std::to_string(cur));
    }
    path->push_back(cur);
    if (v.type() == PageType::kBtreeLeaf) return Status::OK();
    if (v.slot_count() == 0) {
      return Status::Corruption("TraversePath: empty internal page " +
                                std::to_string(cur));
    }
    uint16_t ci = bt::InternalChildIndex(v, value, rid);
    if (ci >= v.slot_count()) {
      return Status::Corruption("TraversePath: no routing entry");
    }
    cur = bt::DecodeInternalCell(v.Cell(ci)).child;
  }
}

Status BTree::EnsureNoSmo(PageGuard& leaf, bool clear_delete_bit,
                          bool tree_latch_held) {
  PageView v = leaf.view();
  bool blocked = v.sm_bit() || (clear_delete_bit && v.delete_bit());
  if (!blocked) return Status::OK();
  if (!tree_latch_held) {
    // Conditional instant S on the tree latch under the held leaf X latch
    // (Figures 6/7). Success proves no SMO is in progress anywhere in this
    // tree, establishing a POSC; the bits can then be reset.
    if (!tree_latch_.TryLockShared()) {
      leaf.Release();
      WaitForSmo();
      return Status::Retry("ensure-no-smo");
    }
    tree_latch_.UnlockShared();
    if (ctx_->metrics != nullptr) {
      ctx_->metrics->tree_latch_acquisitions.fetch_add(1,
                                                       std::memory_order_relaxed);
    }
  }
  // Bits are advisory once the SMO that set them completed; clearing is
  // unlogged (stale bits reappear after a crash and self-heal the same way).
  v.set_sm_bit(false);
  if (clear_delete_bit) v.set_delete_bit(false);
  return Status::OK();
}

namespace btinternal {

Status SearchForward(EngineContext* ctx, ObjectId index_id, PageGuard& leaf,
                     std::string_view value, Rid rid, bool exclusive,
                     NextSearch* out) {
  constexpr int kMaxRestarts = 10000;
  PageView v = leaf.view();
  bool exact = false;
  uint16_t pos = bt::LeafLowerBound(v, value, rid, &exact);
  if (exact && exclusive) ++pos;
  if (pos < v.slot_count()) {
    bt::LeafEntry e = bt::DecodeLeafCell(v.Cell(pos));
    out->eof = false;
    out->value.assign(e.value);
    out->rid = e.rid;
    out->pos = pos;
    out->chain_guard = PageGuard();
    return Status::OK();
  }
  PageId next = v.next_page();
  PageGuard chain;
  for (int hops = 0; hops < kMaxRestarts; ++hops) {
    if (next == kInvalidPageId) {
      out->eof = true;
      out->chain_guard = PageGuard();
      return Status::OK();
    }
    // At most two latches: the operation's leaf plus one chain page — the
    // previous chain page is released before the next one is latched.
    chain.Release();
    auto res = ctx->pool->FetchPage(next, LatchMode::kShared);
    if (!res.ok()) return res.status();
    chain = std::move(res).value();
    PageView cv = chain.view();
    if (cv.owner_id() != index_id || cv.type() != PageType::kBtreeLeaf) {
      return Status::Retry("chain page mid-SMO");
    }
    bool cexact = false;
    uint16_t cpos = bt::LeafLowerBound(cv, value, rid, &cexact);
    if (cexact && exclusive) ++cpos;
    if (cpos < cv.slot_count()) {
      bt::LeafEntry e = bt::DecodeLeafCell(cv.Cell(cpos));
      out->eof = false;
      out->value.assign(e.value);
      out->rid = e.rid;
      out->pos = cpos;
      out->chain_guard = std::move(chain);
      return Status::OK();
    }
    next = cv.next_page();
  }
  return Status::Corruption("leaf chain walk did not terminate");
}

}  // namespace btinternal

using btinternal::NextSearch;
using btinternal::SearchForward;

// ---------------------------------------------------------------------------
// Fetch (Figure 5)
// ---------------------------------------------------------------------------

Status BTree::Fetch(Transaction* txn, std::string_view value, FetchCond cond,
                    FetchResult* out) {
  if (value.size() > MaxValueLen()) {
    return Status::InvalidArgument("key value too long");
  }
  std::optional<LatchGuard> blocker;
  if (ctx_->options.block_traversal_during_smo) {
    blocker.emplace(&tree_latch_, LatchMode::kShared);
  }
  Rid srid = (cond == FetchCond::kGt) ? bt::kMaxRid : Rid{0, 0};
  bool exclusive = (cond == FetchCond::kGt);
  for (int attempt = 0; attempt < kMaxRestarts; ++attempt) {
    if (!blocker.has_value()) RestartBackoff(attempt, ctx_->metrics);
    PageGuard leaf;
    ARIES_RETURN_NOT_OK(TraverseToLeafRead(value, srid, &leaf));
    NextSearch found;
    Status s = SearchForward(ctx_, index_id_, leaf, value, srid, exclusive,
                             &found);
    if (s.IsRetry()) {
      leaf.Release();
      WaitForSmo();
      continue;
    }
    ARIES_RETURN_NOT_OK(s);
    IndexKeyRef key = found.eof ? IndexKeyRef::Eof()
                                : IndexKeyRef::Of(found.value, found.rid);
    // Conditional S lock while holding the latch(es) (Figure 5).
    Status ls = proto_->LockFetchCurrent(txn, key, /*conditional=*/true);
    if (ls.IsBusy()) {
      // Note the LSN of the page holding the found key, release, wait.
      PageGuard& holder = found.chain_guard.valid() ? found.chain_guard : leaf;
      Lsn noted = holder.view().page_lsn();
      PageId holder_id = holder.page_id();
      found.chain_guard.Release();
      leaf.Release();
      ARIES_RETURN_NOT_OK(
          proto_->LockFetchCurrent(txn, key, /*conditional=*/false));
      // Revalidate: if the page did not change, the inference stands.
      ARIES_ASSIGN_OR_RETURN(
          PageGuard check, ctx_->pool->FetchPage(holder_id, LatchMode::kShared));
      bool unchanged = check.view().page_lsn() == noted;
      check.Release();
      if (unchanged) {
        out->eof = found.eof;
        out->found =
            !found.eof &&
            (cond == FetchCond::kEq ? found.value == value
             : cond == FetchCond::kPrefix
                 ? found.value.compare(0, value.size(), value) == 0
                 : true);
        out->value = std::move(found.value);
        out->rid = found.rid;
        return Status::OK();
      }
      continue;  // re-traverse; the retained lock is harmless
    }
    ARIES_RETURN_NOT_OK(ls);
    out->eof = found.eof;
    out->found =
        !found.eof &&
        (cond == FetchCond::kEq ? found.value == value
         : cond == FetchCond::kPrefix
             ? found.value.compare(0, value.size(), value) == 0
             : true);
    out->value = std::move(found.value);
    out->rid = found.rid;
    return Status::OK();
  }
  return Status::Corruption("fetch did not settle");
}

// ---------------------------------------------------------------------------
// Insert (Figure 6)
// ---------------------------------------------------------------------------

Status BTree::Insert(Transaction* txn, std::string_view value, Rid rid) {
  if (value.size() > MaxValueLen()) {
    return Status::InvalidArgument("key value too long");
  }
  std::optional<LatchGuard> blocker;
  bool baseline_x = false;
  if (ctx_->options.block_traversal_during_smo) {
    blocker.emplace(&tree_latch_, LatchMode::kExclusive);
    baseline_x = true;
  }
  for (int attempt = 0; attempt < kMaxRestarts; ++attempt) {
    if (!baseline_x) RestartBackoff(attempt, ctx_->metrics);
    PageGuard leaf;
    ARIES_RETURN_NOT_OK(
        TraverseToLeaf(value, rid, /*for_modify=*/true, &leaf, baseline_x));
    Status s = InsertAtLeaf(txn, std::move(leaf), value, rid, baseline_x);
    if (s.IsRetry()) continue;
    if (s.IsNoSpace()) {
      s = SplitSmoAndInsert(txn, value, rid);
      if (s.IsRetry()) continue;
    }
    return s;
  }
  return Status::Corruption("insert did not settle");
}

Status BTree::InsertAtLeaf(Transaction* txn, PageGuard leaf,
                           std::string_view value, Rid rid,
                           bool tree_latch_held, bool* tree_latch_released) {
  // Release the tree latch (if this thread owns it X) before any
  // unconditional lock wait: locks are never awaited under the tree latch.
  auto drop_tree_latch = [&]() {
    if (tree_latch_held && tree_latch_released != nullptr &&
        !*tree_latch_released) {
      UnlockTreeExclusiveCounted();
      *tree_latch_released = true;
    }
  };
  // SM_Bit / Delete_Bit handling (Figures 6, 11): an insert consumes space,
  // so a POSC must exist before it proceeds.
  Status bs = EnsureNoSmo(leaf, /*clear_delete_bit=*/true, tree_latch_held);
  if (!bs.ok()) return bs;  // kRetry: latches already released

  PageView v = leaf.view();
  bool exact = false;
  bt::LeafLowerBound(v, value, rid, &exact);
  if (exact) {
    return Status::Duplicate("key (value, rid) already present");
  }

  if (unique_) {
    // Position at an equal key value, maybe on a following page (§2.4).
    NextSearch eq;
    Status s =
        SearchForward(ctx_, index_id_, leaf, value, Rid{0, 0}, false, &eq);
    if (s.IsRetry()) {
      leaf.Release();
      if (tree_latch_held) {
        drop_tree_latch();  // never wait on the tree latch we hold
      } else {
        WaitForSmo();
      }
      return Status::Retry("uniq-search");
    }
    ARIES_RETURN_NOT_OK(s);
    if (!eq.eof && eq.value == value) {
      IndexKeyRef existing = IndexKeyRef::Of(eq.value, eq.rid);
      Status ls = proto_->LockUniqueCheck(txn, existing, /*conditional=*/true);
      if (ls.ok()) {
        // Granted under the latch: the key value is committed (or ours) and
        // still present — repeatable unique-violation.
        return Status::Duplicate("unique key violation: value exists");
      }
      if (!ls.IsBusy()) return ls;
      eq.chain_guard.Release();
      leaf.Release();
      drop_tree_latch();
      ARIES_RETURN_NOT_OK(
          proto_->LockUniqueCheck(txn, existing, /*conditional=*/false));
      return Status::Retry("uniq-lock");  // revalidate from the top
    }
  }

  // Find and instant-X-lock the next key (Figure 6).
  NextSearch next;
  Status s = SearchForward(ctx_, index_id_, leaf, value, rid, false, &next);
  if (s.IsRetry()) {
    leaf.Release();
    if (tree_latch_held) {
      drop_tree_latch();
    } else {
      WaitForSmo();
    }
    return Status::Retry("next-search");
  }
  ARIES_RETURN_NOT_OK(s);
  IndexKeyRef next_key =
      next.eof ? IndexKeyRef::Eof() : IndexKeyRef::Of(next.value, next.rid);
  Status ls = proto_->LockInsertNext(txn, next_key, value, /*conditional=*/true);
  if (ls.IsBusy()) {
    next.chain_guard.Release();
    leaf.Release();
    drop_tree_latch();
    ARIES_RETURN_NOT_OK(
        proto_->LockInsertNext(txn, next_key, value, /*conditional=*/false));
    return Status::Retry("next-lock");
  }
  ARIES_RETURN_NOT_OK(ls);
  next.chain_guard.Release();  // next-page latch released after the lock

  // Space check: a full leaf triggers the split SMO (Figure 8).
  std::string cell = bt::EncodeLeafCell(value, rid);
  if (v.FreeSpaceForNewCell() < cell.size()) {
    return Status::NoSpace();
  }

  // Current-key lock (index-specific / KVL protocols only).
  ls = proto_->LockInsertCurrent(txn, value, rid, /*conditional=*/true);
  if (ls.IsBusy()) {
    leaf.Release();
    drop_tree_latch();
    ARIES_RETURN_NOT_OK(
        proto_->LockInsertCurrent(txn, value, rid, /*conditional=*/false));
    return Status::Retry("cur-lock");
  }
  ARIES_RETURN_NOT_OK(ls);

  // Log, apply, stamp (Figure 6: "Insert key, log and update page_LSN").
  ARIES_ASSIGN_OR_RETURN(Lsn lsn, LogKeyOp(txn, bt::kOpInsertKey, leaf.page_id(),
                                           value, rid, /*set_delete_bit=*/false,
                                           /*clr=*/false, kNullLsn));
  ARIES_RETURN_NOT_OK(bt::Apply(bt::kOpInsertKey,
                                bt::EncodeKeyOp(index_id_, value, rid, false),
                                v));
  leaf.MarkDirty(lsn);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Delete (Figure 7)
// ---------------------------------------------------------------------------

Status BTree::Delete(Transaction* txn, std::string_view value, Rid rid) {
  if (value.size() > MaxValueLen()) {
    return Status::InvalidArgument("key value too long");
  }
  std::optional<LatchGuard> blocker;
  bool baseline_x = false;
  if (ctx_->options.block_traversal_during_smo) {
    blocker.emplace(&tree_latch_, LatchMode::kExclusive);
    baseline_x = true;
  }
  bool have_tree_x = false;
  Status result;
  for (int attempt = 0; attempt < kMaxRestarts; ++attempt) {
    if (!have_tree_x && !baseline_x) RestartBackoff(attempt, ctx_->metrics);
    PageGuard leaf;
    Status ts = TraverseToLeaf(value, rid, /*for_modify=*/true, &leaf,
                               have_tree_x || baseline_x);
    if (!ts.ok()) {
      result = ts;
      break;
    }
    bool needs_page_delete = false;
    bool needs_tree_x = false;
    bool tree_x_released = false;
    Status s = DeleteAtLeaf(txn, std::move(leaf), value, rid,
                            have_tree_x || baseline_x, &needs_page_delete,
                            &needs_tree_x,
                            (have_tree_x && !baseline_x) ? &tree_x_released
                                                         : nullptr);
    if (tree_x_released) have_tree_x = false;
    if (s.IsRetry()) {
      if (needs_tree_x && !have_tree_x && !baseline_x) {
        LockTreeExclusiveCounted();
        have_tree_x = true;
      }
      continue;
    }
    result = s;
    break;
  }
  if (have_tree_x) UnlockTreeExclusiveCounted();
  return result;
}

Status BTree::DeleteAtLeaf(Transaction* txn, PageGuard leaf,
                           std::string_view value, Rid rid,
                           bool tree_latch_x_held, bool* needs_page_delete,
                           bool* needs_tree_x, bool* tree_latch_released) {
  *needs_page_delete = false;
  *needs_tree_x = false;
  auto drop_tree_latch = [&]() {
    if (tree_latch_x_held && tree_latch_released != nullptr &&
        !*tree_latch_released) {
      UnlockTreeExclusiveCounted();
      *tree_latch_released = true;
    }
  };
  Status bs = EnsureNoSmo(leaf, /*clear_delete_bit=*/false, tree_latch_x_held);
  if (!bs.ok()) return bs;

  PageView v = leaf.view();
  bool exact = false;
  uint16_t pos = bt::LeafLowerBound(v, value, rid, &exact);
  if (!exact) {
    return Status::NotFound("key not in index");
  }

  // Commit-duration X lock on the next key (Figure 7): the trace other
  // transactions trip on to see the uncommitted delete (§2.6).
  NextSearch next;
  Status s = SearchForward(ctx_, index_id_, leaf, value, rid,
                           /*exclusive=*/true, &next);
  if (s.IsRetry()) {
    leaf.Release();
    if (tree_latch_x_held) {
      drop_tree_latch();
    } else {
      WaitForSmo();
    }
    return Status::Retry("next-search");
  }
  ARIES_RETURN_NOT_OK(s);
  IndexKeyRef next_key =
      next.eof ? IndexKeyRef::Eof() : IndexKeyRef::Of(next.value, next.rid);
  Status ls = proto_->LockDeleteNext(txn, next_key, value, /*conditional=*/true);
  if (ls.IsBusy()) {
    next.chain_guard.Release();
    leaf.Release();
    drop_tree_latch();
    ARIES_RETURN_NOT_OK(
        proto_->LockDeleteNext(txn, next_key, value, /*conditional=*/false));
    return Status::Retry("next-lock");
  }
  ARIES_RETURN_NOT_OK(ls);
  next.chain_guard.Release();

  bool only_key = v.slot_count() == 1;
  bool boundary = (pos == 0 || pos + 1 == v.slot_count());

  if (only_key && !tree_latch_x_held) {
    // Page-delete SMO needed: take the tree latch X (conditionally while
    // latched; otherwise release, wait, retry with the latch held).
    if (tree_latch_.TryLockExclusive()) {
      tree_latch_.UnlockExclusive();  // re-taken by the caller via retry
    }
    leaf.Release();
    *needs_tree_x = true;
    return Status::Retry("need-tree-x");
  }

  // Boundary-key delete: establish a POSC and hold it until the delete is
  // logged (§3 reason 3 — the key to be put back might not be bound).
  bool tree_s_held = false;
  if (boundary && !only_key && !tree_latch_x_held) {
    if (!tree_latch_.TryLockShared()) {
      leaf.Release();
      if (ctx_->metrics != nullptr) {
        ctx_->metrics->smo_waits.fetch_add(1, std::memory_order_relaxed);
      }
      tree_latch_.LockShared();
      tree_latch_.UnlockShared();
      return Status::Retry("boundary-posc");
    }
    tree_s_held = true;
    if (ctx_->metrics != nullptr) {
      ctx_->metrics->tree_latch_acquisitions.fetch_add(1,
                                                       std::memory_order_relaxed);
    }
  }

  // Current-key lock (index-specific / KVL protocols only).
  ls = proto_->LockDeleteCurrent(txn, value, rid, /*conditional=*/true);
  if (ls.IsBusy()) {
    if (tree_s_held) tree_latch_.UnlockShared();
    leaf.Release();
    drop_tree_latch();
    ARIES_RETURN_NOT_OK(
        proto_->LockDeleteCurrent(txn, value, rid, /*conditional=*/false));
    return Status::Retry("cur-lock");
  }
  if (!ls.ok()) {
    if (tree_s_held) tree_latch_.UnlockShared();
    return ls;
  }

  // Log + apply; the Delete_Bit is set with the delete (Figure 7).
  auto lsn_res = LogKeyOp(txn, bt::kOpDeleteKey, leaf.page_id(), value, rid,
                          /*set_delete_bit=*/true, /*clr=*/false, kNullLsn);
  if (!lsn_res.ok()) {
    if (tree_s_held) tree_latch_.UnlockShared();
    return lsn_res.status();
  }
  Status as = bt::Apply(bt::kOpDeleteKey,
                        bt::EncodeKeyOp(index_id_, value, rid, true), v);
  if (!as.ok()) {
    if (tree_s_held) tree_latch_.UnlockShared();
    return as;
  }
  leaf.MarkDirty(lsn_res.value());
  if (tree_s_held) tree_latch_.UnlockShared();

  if (only_key) {
    // The page is now empty; delete it (Figures 8, 10). The caller holds
    // the tree latch X.
    return PageDeleteSmo(txn, std::move(leaf), value, rid);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Validation / collection (test support)
// ---------------------------------------------------------------------------

Status BTree::CollectAll(std::vector<std::pair<std::string, Rid>>* out) {
  // Find the leftmost leaf by following child[0] pointers.
  PageId cur = root_;
  while (true) {
    ARIES_ASSIGN_OR_RETURN(PageGuard page,
                           ctx_->pool->FetchPage(cur, LatchMode::kShared));
    PageView v = page.view();
    if (v.type() == PageType::kBtreeLeaf) break;
    if (v.slot_count() == 0) {
      return Status::Corruption("empty internal page in CollectAll");
    }
    cur = bt::DecodeInternalCell(v.Cell(0)).child;
  }
  while (cur != kInvalidPageId) {
    ARIES_ASSIGN_OR_RETURN(PageGuard page,
                           ctx_->pool->FetchPage(cur, LatchMode::kShared));
    PageView v = page.view();
    for (uint16_t i = 0; i < v.slot_count(); ++i) {
      bt::LeafEntry e = bt::DecodeLeafCell(v.Cell(i));
      out->emplace_back(std::string(e.value), e.rid);
    }
    cur = v.next_page();
  }
  return Status::OK();
}

Status BTree::ValidateSubtree(PageId id, uint8_t expected_level, bool is_root,
                              const std::string* low, const Rid* low_rid,
                              bool has_low, const std::string* high,
                              const Rid* high_rid, bool has_high,
                              size_t* key_count, PageId* leftmost_leaf) {
  ARIES_ASSIGN_OR_RETURN(PageGuard page,
                         ctx_->pool->FetchPage(id, LatchMode::kShared));
  PageView v = page.view();
  if (v.owner_id() != index_id_) {
    return Status::Corruption("validate: wrong owner on page " +
                              std::to_string(id));
  }
  if (v.level() != expected_level) {
    return Status::Corruption("validate: level mismatch on page " +
                              std::to_string(id));
  }
  if (v.type() == PageType::kBtreeLeaf) {
    if (expected_level != 0) {
      return Status::Corruption("validate: leaf at nonzero level");
    }
    if (v.slot_count() == 0 && !is_root && !v.sm_bit()) {
      return Status::Corruption(
          "validate: reachable empty leaf without pending SMO (page " +
          std::to_string(id) + ")");
    }
    if (leftmost_leaf != nullptr && *leftmost_leaf == kInvalidPageId) {
      *leftmost_leaf = id;
    }
    std::string prev_v;
    Rid prev_r;
    bool have_prev = false;
    for (uint16_t i = 0; i < v.slot_count(); ++i) {
      bt::LeafEntry e = bt::DecodeLeafCell(v.Cell(i));
      if (have_prev &&
          bt::CompareKey(prev_v, prev_r, e.value, e.rid) >= 0) {
        return Status::Corruption("validate: leaf keys out of order");
      }
      if (has_low && bt::CompareKey(e.value, e.rid, *low, *low_rid) < 0) {
        return Status::Corruption("validate: leaf key below subtree bound");
      }
      if (has_high && bt::CompareKey(e.value, e.rid, *high, *high_rid) >= 0) {
        return Status::Corruption(
            "validate: leaf key not below the parent high key: page " +
            std::to_string(id) + " key '" + std::string(e.value) + "' rid " +
            e.rid.ToString() + " high '" + *high + "'");
      }
      prev_v.assign(e.value);
      prev_r = e.rid;
      have_prev = true;
      if (key_count != nullptr) ++*key_count;
    }
    return Status::OK();
  }
  if (v.type() != PageType::kBtreeInternal) {
    return Status::Corruption("validate: unexpected page type");
  }
  if (v.slot_count() == 0) {
    return Status::Corruption("validate: empty internal page");
  }
  // Separators must be strictly increasing; only the last entry may be inf.
  std::string lo_v = has_low ? *low : std::string();
  Rid lo_r = has_low ? *low_rid : Rid{0, 0};
  bool lo_set = has_low;
  for (uint16_t i = 0; i < v.slot_count(); ++i) {
    bt::InternalEntry e = bt::DecodeInternalCell(v.Cell(i));
    bool last = (i + 1 == v.slot_count());
    if (e.inf && !last) {
      return Status::Corruption("validate: inf separator not rightmost");
    }
    if (!last && bt::DecodeInternalCell(v.Cell(i + 1)).inf == false) {
      bt::InternalEntry n = bt::DecodeInternalCell(v.Cell(i + 1));
      if (!e.inf &&
          bt::CompareKey(e.value, e.rid, n.value, n.rid) >= 0) {
        return Status::Corruption("validate: separators out of order");
      }
    }
    std::string child_hi = e.inf ? std::string() : std::string(e.value);
    Rid child_hi_rid = e.rid;
    bool child_has_hi = !e.inf;
    // The child's high bound is this separator; the high bound of the last
    // (inf) entry is the parent's high bound.
    const std::string* hi_ptr = child_has_hi ? &child_hi : (has_high ? high : nullptr);
    const Rid* hi_rid_ptr = child_has_hi ? &child_hi_rid : (has_high ? high_rid : nullptr);
    bool has_hi = child_has_hi || (has_high && e.inf);
    ARIES_RETURN_NOT_OK(ValidateSubtree(
        e.child, static_cast<uint8_t>(expected_level - 1), /*is_root=*/false,
        lo_set ? &lo_v : nullptr, lo_set ? &lo_r : nullptr, lo_set, hi_ptr,
        hi_rid_ptr, has_hi, key_count, leftmost_leaf));
    if (!e.inf) {
      lo_v.assign(e.value);
      lo_r = e.rid;
      lo_set = true;
    }
  }
  return Status::OK();
}

Status BTree::Validate(size_t* key_count) {
  ARIES_ASSIGN_OR_RETURN(PageGuard page,
                         ctx_->pool->FetchPage(root_, LatchMode::kShared));
  uint8_t root_level = page.view().level();
  page.Release();
  size_t count = 0;
  PageId leftmost = kInvalidPageId;
  ARIES_RETURN_NOT_OK(ValidateSubtree(root_, root_level, /*is_root=*/true,
                                      nullptr, nullptr, false, nullptr, nullptr,
                                      false, &count, &leftmost));
  // Leaf-chain cross-check: chained key count equals subtree key count and
  // the chain is strictly ordered with consistent back pointers.
  std::vector<std::pair<std::string, Rid>> chained;
  ARIES_RETURN_NOT_OK(CollectAll(&chained));
  if (chained.size() != count) {
    return Status::Corruption("validate: leaf chain count " +
                              std::to_string(chained.size()) +
                              " != subtree count " + std::to_string(count));
  }
  for (size_t i = 1; i < chained.size(); ++i) {
    if (bt::CompareKey(chained[i - 1].first, chained[i - 1].second,
                       chained[i].first, chained[i].second) >= 0) {
      return Status::Corruption("validate: leaf chain out of order");
    }
  }
  if (key_count != nullptr) *key_count = count;
  return Status::OK();
}

}  // namespace ariesim
