#include "btree/node.h"

namespace ariesim {
namespace bt {

// -- search ------------------------------------------------------------------

uint16_t LeafLowerBound(const PageView& v, std::string_view value, Rid rid,
                        bool* exact) {
  if (exact != nullptr) *exact = false;
  uint16_t lo = 0, hi = v.slot_count();
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    LeafEntry e = DecodeLeafCell(v.Cell(mid));
    int c = CompareKey(e.value, e.rid, value, rid);
    if (c < 0) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      if (c == 0 && exact != nullptr) *exact = true;
      hi = mid;
    }
  }
  return lo;
}

uint16_t InternalChildIndex(const PageView& v, std::string_view value, Rid rid) {
  // First entry whose separator is strictly greater than (value, rid); the
  // inf sentinel is greater than everything.
  uint16_t lo = 0, hi = v.slot_count();
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    InternalEntry e = DecodeInternalCell(v.Cell(mid));
    bool greater = e.inf || CompareKey(e.value, e.rid, value, rid) > 0;
    if (greater) {
      hi = mid;
    } else {
      lo = static_cast<uint16_t>(mid + 1);
    }
  }
  return lo;  // == slot_count() only if no inf entry exists (corruption)
}

bool KeyWithinHighest(const PageView& v, std::string_view value, Rid rid) {
  uint16_t n = v.slot_count();
  if (n == 0) return false;
  if (v.type() == PageType::kBtreeLeaf) {
    LeafEntry e = DecodeLeafCell(v.Cell(static_cast<uint16_t>(n - 1)));
    return CompareKey(value, rid, e.value, e.rid) <= 0;
  }
  // Internal: highest *finite* separator. The inf sentinel (if present) is
  // the last entry; the finite high keys precede it.
  for (int i = n - 1; i >= 0; --i) {
    InternalEntry e = DecodeInternalCell(v.Cell(static_cast<uint16_t>(i)));
    if (e.inf) continue;
    return CompareKey(value, rid, e.value, e.rid) <= 0;
  }
  return false;  // only the inf entry: no finite key
}

std::vector<std::string> CollectCells(const PageView& v, uint16_t from) {
  std::vector<std::string> cells;
  cells.reserve(v.slot_count() - from);
  for (uint16_t i = from; i < v.slot_count(); ++i) {
    cells.emplace_back(v.Cell(i));
  }
  return cells;
}

// -- payload builders ----------------------------------------------------------

namespace {
void PutCells(std::string* p, const std::vector<std::string>& cells) {
  PutFixed16(p, static_cast<uint16_t>(cells.size()));
  for (const auto& c : cells) PutLengthPrefixed(p, c);
}
std::vector<std::string_view> GetCells(BufferReader* r) {
  uint16_t n = r->GetFixed16();
  std::vector<std::string_view> cells;
  cells.reserve(n);
  for (uint16_t i = 0; i < n; ++i) cells.push_back(r->GetLengthPrefixed());
  return cells;
}
}  // namespace

std::string EncodeKeyOp(ObjectId index, std::string_view value, Rid rid,
                        bool set_delete_bit) {
  std::string p;
  PutFixed32(&p, index);
  PutFixed16(&p, static_cast<uint16_t>(value.size()));
  p.append(value);
  PutFixed32(&p, rid.page_id);
  PutFixed16(&p, rid.slot);
  p.push_back(set_delete_bit ? 1 : 0);
  return p;
}

void DecodeKeyOp(std::string_view payload, ObjectId* index,
                 std::string_view* value, Rid* rid, bool* set_delete_bit) {
  BufferReader r(payload);
  ObjectId idx = r.GetFixed32();
  uint16_t vlen = r.GetFixed16();
  std::string_view v = payload.substr(6, vlen);
  Rid rd;
  rd.page_id = DecodeFixed32(payload.data() + 6 + vlen);
  rd.slot = DecodeFixed16(payload.data() + 6 + vlen + 4);
  bool del_bit = payload[6 + vlen + 6] != 0;
  if (index != nullptr) *index = idx;
  if (value != nullptr) *value = v;
  if (rid != nullptr) *rid = rd;
  if (set_delete_bit != nullptr) *set_delete_bit = del_bit;
}

std::string EncodeFormat(ObjectId index, PageType type, uint8_t level, bool sm,
                         PageId prev, PageId next,
                         const std::vector<std::string>& cells) {
  std::string p;
  PutFixed32(&p, index);
  p.push_back(static_cast<char>(type));
  p.push_back(static_cast<char>(level));
  p.push_back(sm ? 1 : 0);
  PutFixed32(&p, prev);
  PutFixed32(&p, next);
  PutCells(&p, cells);
  return p;
}

std::string EncodeTruncate(ObjectId index, uint16_t from, PageId old_next,
                           PageId new_next, bool replace_last,
                           std::string_view old_last, std::string_view new_last,
                           const std::vector<std::string>& removed) {
  std::string p;
  PutFixed32(&p, index);
  PutFixed16(&p, from);
  PutFixed32(&p, old_next);
  PutFixed32(&p, new_next);
  p.push_back(replace_last ? 1 : 0);
  PutLengthPrefixed(&p, old_last);
  PutLengthPrefixed(&p, new_last);
  PutCells(&p, removed);
  return p;
}

std::string EncodeRestore(ObjectId index, PageId next, bool replace_last,
                          std::string_view old_last,
                          const std::vector<std::string>& cells) {
  std::string p;
  PutFixed32(&p, index);
  PutFixed32(&p, next);
  p.push_back(replace_last ? 1 : 0);
  PutLengthPrefixed(&p, old_last);
  PutCells(&p, cells);
  return p;
}

std::string EncodeSetLink(ObjectId index, PageId oldp, PageId newp) {
  std::string p;
  PutFixed32(&p, index);
  PutFixed32(&p, oldp);
  PutFixed32(&p, newp);
  return p;
}

std::string EncodeParentSplice(ObjectId index, uint16_t slot,
                               std::string_view old_cell,
                               std::string_view new_cell,
                               std::string_view ins_cell) {
  std::string p;
  PutFixed32(&p, index);
  PutFixed16(&p, slot);
  PutLengthPrefixed(&p, old_cell);
  PutLengthPrefixed(&p, new_cell);
  PutLengthPrefixed(&p, ins_cell);
  return p;
}

std::string EncodeParentUnsplice(ObjectId index, uint16_t slot,
                                 std::string_view old_cell) {
  std::string p;
  PutFixed32(&p, index);
  PutFixed16(&p, slot);
  PutLengthPrefixed(&p, old_cell);
  return p;
}

std::string EncodeParentRemove(ObjectId index, uint16_t slot,
                               std::string_view removed, bool fixed,
                               uint16_t fix_slot, std::string_view fix_old,
                               std::string_view fix_new) {
  std::string p;
  PutFixed32(&p, index);
  PutFixed16(&p, slot);
  PutLengthPrefixed(&p, removed);
  p.push_back(fixed ? 1 : 0);
  PutFixed16(&p, fix_slot);
  PutLengthPrefixed(&p, fix_old);
  PutLengthPrefixed(&p, fix_new);
  return p;
}

std::string EncodeParentRestore(ObjectId index, uint16_t slot,
                                std::string_view removed, bool fixed,
                                uint16_t fix_slot, std::string_view fix_old) {
  std::string p;
  PutFixed32(&p, index);
  PutFixed16(&p, slot);
  PutLengthPrefixed(&p, removed);
  p.push_back(fixed ? 1 : 0);
  PutFixed16(&p, fix_slot);
  PutLengthPrefixed(&p, fix_old);
  return p;
}

std::string EncodeReplaceAll(ObjectId index, PageType old_type, uint8_t old_level,
                             PageType new_type, uint8_t new_level,
                             const std::vector<std::string>& old_cells,
                             const std::vector<std::string>& new_cells) {
  std::string p;
  PutFixed32(&p, index);
  p.push_back(static_cast<char>(old_type));
  p.push_back(static_cast<char>(old_level));
  p.push_back(static_cast<char>(new_type));
  p.push_back(static_cast<char>(new_level));
  PutCells(&p, old_cells);
  PutCells(&p, new_cells);
  return p;
}

std::string EncodeToFree(ObjectId index, PageType old_type, uint8_t old_level,
                         PageId old_prev, PageId old_next) {
  std::string p;
  PutFixed32(&p, index);
  p.push_back(static_cast<char>(old_type));
  p.push_back(static_cast<char>(old_level));
  PutFixed32(&p, old_prev);
  PutFixed32(&p, old_next);
  return p;
}

std::string EncodeFromFree(ObjectId index, PageType old_type, uint8_t old_level,
                           PageId old_prev, PageId old_next) {
  return EncodeToFree(index, old_type, old_level, old_prev, old_next);
}

ObjectId PayloadIndexId(std::string_view payload) {
  return DecodeFixed32(payload.data());
}

// -- apply --------------------------------------------------------------------

Status Apply(uint8_t op, std::string_view payload, PageView v) {
  BufferReader r(payload);
  ObjectId index = r.GetFixed32();
  switch (op) {
    case kOpInsertKey: {
      std::string_view value;
      Rid rid;
      DecodeKeyOp(payload, nullptr, &value, &rid, nullptr);
      bool exact = false;
      uint16_t pos = LeafLowerBound(v, value, rid, &exact);
      if (exact) {
        return Status::Corruption("btree insert: key already present");
      }
      return v.InsertCellAt(pos, EncodeLeafCell(value, rid));
    }
    case kOpDeleteKey: {
      std::string_view value;
      Rid rid;
      bool del_bit = false;
      DecodeKeyOp(payload, nullptr, &value, &rid, &del_bit);
      bool exact = false;
      uint16_t pos = LeafLowerBound(v, value, rid, &exact);
      if (!exact) {
        return Status::Corruption("btree delete: key not present");
      }
      v.RemoveCellAt(pos);
      if (del_bit) v.set_delete_bit(true);
      return Status::OK();
    }
    case kOpFormat: {
      PageType type = static_cast<PageType>(r.GetFixed8());
      uint8_t level = r.GetFixed8();
      bool sm = r.GetFixed8() != 0;
      PageId prev = r.GetFixed32();
      PageId next = r.GetFixed32();
      auto cells = GetCells(&r);
      if (!r.ok()) return Status::Corruption("btree format payload");
      v.Init(v.page_id(), type, index, level);
      v.set_prev_page(prev);
      v.set_next_page(next);
      for (uint16_t i = 0; i < cells.size(); ++i) {
        ARIES_RETURN_NOT_OK(v.InsertCellAt(i, cells[i]));
      }
      v.set_sm_bit(sm);
      return Status::OK();
    }
    case kOpUnformat: {
      v.set_type(PageType::kFree);
      v.set_sm_bit(false);
      return Status::OK();
    }
    case kOpTruncate: {
      uint16_t from = r.GetFixed16();
      (void)r.GetFixed32();  // old_next
      PageId new_next = r.GetFixed32();
      bool replace_last = r.GetFixed8() != 0;
      (void)r.GetLengthPrefixed();  // old_last
      std::string_view new_last = r.GetLengthPrefixed();
      if (!r.ok()) return Status::Corruption("btree truncate payload");
      while (v.slot_count() > from) {
        v.RemoveCellAt(static_cast<uint16_t>(v.slot_count() - 1));
      }
      if (replace_last) {
        ARIES_RETURN_NOT_OK(
            v.ReplaceCellAt(static_cast<uint16_t>(from - 1), new_last));
      }
      if (v.type() == PageType::kBtreeLeaf) v.set_next_page(new_next);
      v.set_sm_bit(true);
      return Status::OK();
    }
    case kOpRestore: {
      PageId next = r.GetFixed32();
      bool replace_last = r.GetFixed8() != 0;
      std::string_view old_last = r.GetLengthPrefixed();
      auto cells = GetCells(&r);
      if (!r.ok()) return Status::Corruption("btree restore payload");
      if (replace_last) {
        ARIES_RETURN_NOT_OK(v.ReplaceCellAt(
            static_cast<uint16_t>(v.slot_count() - 1), old_last));
      }
      for (const auto& c : cells) {
        ARIES_RETURN_NOT_OK(v.InsertCellAt(v.slot_count(), c));
      }
      if (v.type() == PageType::kBtreeLeaf) v.set_next_page(next);
      v.set_sm_bit(false);
      return Status::OK();
    }
    case kOpSetNext:
    case kOpSetPrev: {
      (void)r.GetFixed32();
      PageId newp = r.GetFixed32();
      if (op == kOpSetNext) {
        v.set_next_page(newp);
      } else {
        v.set_prev_page(newp);
      }
      v.set_sm_bit(true);
      return Status::OK();
    }
    case kOpParentSplice: {
      uint16_t slot = r.GetFixed16();
      (void)r.GetLengthPrefixed();  // old cell
      std::string_view new_cell = r.GetLengthPrefixed();
      std::string_view ins_cell = r.GetLengthPrefixed();
      if (!r.ok()) return Status::Corruption("btree splice payload");
      ARIES_RETURN_NOT_OK(v.ReplaceCellAt(slot, new_cell));
      ARIES_RETURN_NOT_OK(
          v.InsertCellAt(static_cast<uint16_t>(slot + 1), ins_cell));
      v.set_sm_bit(true);
      return Status::OK();
    }
    case kOpParentUnsplice: {
      uint16_t slot = r.GetFixed16();
      std::string_view old_cell = r.GetLengthPrefixed();
      if (!r.ok()) return Status::Corruption("btree unsplice payload");
      v.RemoveCellAt(static_cast<uint16_t>(slot + 1));
      ARIES_RETURN_NOT_OK(v.ReplaceCellAt(slot, old_cell));
      v.set_sm_bit(false);
      return Status::OK();
    }
    case kOpParentRemove: {
      uint16_t slot = r.GetFixed16();
      (void)r.GetLengthPrefixed();  // removed cell (for undo)
      bool fixed = r.GetFixed8() != 0;
      uint16_t fix_slot = r.GetFixed16();
      (void)r.GetLengthPrefixed();  // fix_old
      std::string_view fix_new = r.GetLengthPrefixed();
      if (!r.ok()) return Status::Corruption("btree parent-remove payload");
      v.RemoveCellAt(slot);
      if (fixed) {
        ARIES_RETURN_NOT_OK(v.ReplaceCellAt(fix_slot, fix_new));
      }
      v.set_sm_bit(true);
      return Status::OK();
    }
    case kOpParentRestore: {
      uint16_t slot = r.GetFixed16();
      std::string_view removed = r.GetLengthPrefixed();
      bool fixed = r.GetFixed8() != 0;
      uint16_t fix_slot = r.GetFixed16();
      std::string_view fix_old = r.GetLengthPrefixed();
      if (!r.ok()) return Status::Corruption("btree parent-restore payload");
      if (fixed) {
        ARIES_RETURN_NOT_OK(v.ReplaceCellAt(fix_slot, fix_old));
      }
      ARIES_RETURN_NOT_OK(v.InsertCellAt(slot, removed));
      v.set_sm_bit(false);
      return Status::OK();
    }
    case kOpReplaceAll: {
      PageType old_type = static_cast<PageType>(r.GetFixed8());
      uint8_t old_level = r.GetFixed8();
      PageType new_type = static_cast<PageType>(r.GetFixed8());
      uint8_t new_level = r.GetFixed8();
      auto old_cells = GetCells(&r);
      auto new_cells = GetCells(&r);
      if (!r.ok()) return Status::Corruption("btree replace-all payload");
      (void)old_type;
      (void)old_level;
      (void)old_cells;
      v.Init(v.page_id(), new_type, index, new_level);
      for (uint16_t i = 0; i < new_cells.size(); ++i) {
        ARIES_RETURN_NOT_OK(v.InsertCellAt(i, new_cells[i]));
      }
      v.set_sm_bit(true);
      return Status::OK();
    }
    case kOpToFree: {
      v.set_type(PageType::kFree);
      v.set_sm_bit(false);
      v.set_delete_bit(false);
      return Status::OK();
    }
    case kOpFromFree: {
      PageType old_type = static_cast<PageType>(r.GetFixed8());
      uint8_t old_level = r.GetFixed8();
      PageId old_prev = r.GetFixed32();
      PageId old_next = r.GetFixed32();
      if (!r.ok()) return Status::Corruption("btree from-free payload");
      v.Init(v.page_id(), old_type, index, old_level);
      v.set_prev_page(old_prev);
      v.set_next_page(old_next);
      v.set_sm_bit(true);
      return Status::OK();
    }
    default:
      return Status::Corruption("unknown btree op " + std::to_string(op));
  }
}

}  // namespace bt
}  // namespace ariesim
