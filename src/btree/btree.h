// ARIES/IM B+-tree (the paper's core contribution).
//
// Concurrency (paper §2):
//  - root-to-leaf traversal with latch coupling, at most 2 page latches held
//    (Figure 4); the per-index tree latch is NOT acquired on traversals;
//  - a traverser that encounters an ambiguous page of an in-progress SMO
//    (SM_Bit=1 and the key lies beyond the page's highest key, or an empty
//    page) releases its latches, takes the tree latch S for instant
//    duration to wait the SMO out, and re-descends;
//  - a leaf modification with SM_Bit or (for inserts) Delete_Bit set first
//    establishes a point of structural consistency: conditional instant S
//    tree latch under the leaf X latch, else wait and retry (Figures 6, 7,
//    11);
//  - key locks are taken through a pluggable LockingProtocol (Figure 2);
//    every lock request made under a latch is conditional — on denial all
//    latches are released, the lock is acquired unconditionally, and the
//    operation revalidates / retries (§2.2);
//  - SMOs (page split / page delete) are serialized by an X tree latch and
//    run as nested top actions bracketed by a dummy CLR (Figures 8-10).
//
// Recovery (paper §3): every page change is logged page-oriented; undo of
// key inserts/deletes is page-oriented when possible and logical (re-
// traversal, possibly with an SMO logged as *regular* records inside a
// nested top action) otherwise.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "btree/locking_protocol.h"
#include "btree/node.h"
#include "buffer/buffer_pool.h"
#include "common/context.h"
#include "common/status.h"
#include "recovery/resource_manager.h"
#include "storage/space_manager.h"
#include "txn/transaction_manager.h"
#include "util/rwlatch.h"

namespace ariesim {

/// Fetch starting conditions (paper §1.1: "a starting condition (=, >, or
/// >=) will also be given"; a partial key value may be given with kPrefix).
enum class FetchCond : uint8_t { kEq, kGe, kGt, kPrefix };

struct FetchResult {
  bool found = false;  ///< a key satisfying the condition exists
  bool eof = false;    ///< positioned past the last key in the index
  std::string value;
  Rid rid;
};

/// Range-scan state for Fetch Next (paper §2.3). The cursor remembers the
/// leaf and its page LSN so an unchanged leaf allows direct repositioning;
/// otherwise the tree is re-traversed from the root.
struct ScanCursor {
  bool open = false;
  bool at_eof = false;
  std::string last_value;
  Rid last_rid;
  PageId leaf = kInvalidPageId;
  Lsn leaf_lsn = kNullLsn;
  uint16_t pos = 0;
  // Stopping specification (paper §1.1 Fetch Next).
  bool has_stop = false;
  std::string stop_value;
  bool stop_inclusive = true;
};

class BTree {
 public:
  BTree(EngineContext* ctx, ObjectId index_id, ObjectId table_id, PageId root,
        bool unique, std::unique_ptr<LockingProtocol> protocol)
      : ctx_(ctx),
        index_id_(index_id),
        table_id_(table_id),
        root_(root),
        unique_(unique),
        proto_(std::move(protocol)) {}

  /// Allocate and format the (fixed, never-moving) root page of a new index.
  static Result<PageId> CreateRoot(EngineContext* ctx, Transaction* txn,
                                   ObjectId index_id);

  ObjectId index_id() const { return index_id_; }
  ObjectId table_id() const { return table_id_; }
  PageId root() const { return root_; }
  bool unique() const { return unique_; }
  RwLatch* tree_latch() { return &tree_latch_; }

  // -- the four basic operations (paper §1.1) ---------------------------
  /// Fetch: locate `value` (or the next higher key) under `cond`; S-commit
  /// lock the found key (or the index-EOF name). `out->found` reflects the
  /// condition; a kEq miss returns OK with found=false (the not-found state
  /// is protected by the lock, guaranteeing repeatable read).
  Status Fetch(Transaction* txn, std::string_view value, FetchCond cond,
               FetchResult* out);

  /// Open a range scan at the first key satisfying (value, cond). The
  /// optional stopping key bounds FetchNext.
  Status OpenScan(Transaction* txn, std::string_view value, FetchCond cond,
                  ScanCursor* cursor, FetchResult* first);
  Status SetStop(ScanCursor* cursor, std::string_view stop_value,
                 bool inclusive);
  Status FetchNext(Transaction* txn, ScanCursor* cursor, FetchResult* out);

  /// Insert key (value, rid). Duplicate key values are rejected for unique
  /// indexes with kDuplicate.
  Status Insert(Transaction* txn, std::string_view value, Rid rid);

  /// Delete key (value, rid).
  Status Delete(Transaction* txn, std::string_view value, Rid rid);

  // -- undo entry points (called by the btree resource manager) ----------
  Status UndoInsertKey(Transaction* txn, const LogRecord& rec);
  Status UndoDeleteKey(Transaction* txn, const LogRecord& rec);

  // -- verification helpers ----------------------------------------------
  /// Structural validation: separator invariants, leaf-chain consistency,
  /// no orphan SM-free empty pages, level coherence. Test-only (assumes a
  /// quiescent tree).
  Status Validate(size_t* key_count = nullptr);
  /// Collect all (value, rid) pairs via the leaf chain (test-only).
  Status CollectAll(std::vector<std::pair<std::string, Rid>>* out);

  /// Maximum key-value length accepted (keeps several cells per page).
  size_t MaxValueLen() const { return ctx_->options.page_size / 16; }

  /// Failure injection (tests only): make the n-th subsequent split step
  /// fail after its page-level records are written but before the SMO's
  /// dummy CLR — the "crash mid-SMO" window of Figures 9-11. Negative
  /// disables.
  void TestSetFailAfterSplits(int n) { test_fail_after_splits_.store(n); }
  /// Failure injection (tests only): one-shot failure in the middle of the
  /// next split, after the keys moved right but before the parent learns of
  /// the new page — the structurally inconsistent state of Figure 3.
  void TestSetFailBeforeParentSplice() {
    test_fail_before_splice_.store(true);
  }

 private:
  friend class BtreeResourceManager;

  // Traversal (Figure 4). On success `*leaf` holds the S (fetch) or X
  // (modify) latched leaf covering (value, rid). With `tree_latch_held`
  // (this thread owns the tree latch X) stale SM bits are ignored and
  // inconsistencies are errors rather than wait-and-retry.
  Status TraverseToLeaf(std::string_view value, Rid rid, bool for_modify,
                        PageGuard* leaf, bool tree_latch_held = false);
  /// Read-path traversal chooser: optimistic lock coupling when
  /// options.optimistic_reads is set (and the block_traversal_during_smo
  /// ablation is not), with a counted fallback to the pessimistic
  /// TraverseToLeaf(for_modify=false) when the optimistic descent reports
  /// kBusy. Either way `*leaf` holds the S-latched leaf covering
  /// (value, rid), indistinguishable to downstream code.
  Status TraverseToLeafRead(std::string_view value, Rid rid, PageGuard* leaf);
  /// Optimistic descent (docs/CONCURRENCY.md, "Optimistic descent"):
  /// internal levels are read latch-free from version-validated snapshots;
  /// the leaf is S-latched classically and revalidated against its parent's
  /// version. kBusy asks the caller to fall back: an SM_Bit was sighted, or
  /// kOlcMaxRestarts validations failed. Never waits on a page latch except
  /// the final leaf S latch.
  Status TraverseToLeafOptimistic(std::string_view value, Rid rid,
                                  PageGuard* leaf);
  /// Wait out an in-progress SMO: release nothing (caller already did),
  /// instant-S the tree latch.
  void WaitForSmo();
  /// Blocking X acquisition of the tree latch, counting the acquisition and
  /// (when contended) a tree_latch_wait. Stamps the hold start for
  /// UnlockTreeExclusiveCounted's hold-time histogram.
  void LockTreeExclusiveCounted();
  /// Release an X acquisition made through LockTreeExclusiveCounted,
  /// recording the hold time into tree_latch_hold_latency.
  void UnlockTreeExclusiveCounted();

  /// Path of page ids root→leaf; only valid while the tree latch is held X.
  Status TraversePath(std::string_view value, Rid rid,
                      std::vector<PageId>* path);

  // Leaf action routines. They may return:
  //  kRetry   — latches were released; restart from traversal
  //  kNoSpace — insert needs a split (latches released)
  // When the caller owns the tree latch X and a lock must be waited for
  // unconditionally, the latch is released first (locks are never awaited
  // under the tree latch, §4) and *tree_latch_released is set.
  Status InsertAtLeaf(Transaction* txn, PageGuard leaf, std::string_view value,
                      Rid rid, bool tree_latch_held,
                      bool* tree_latch_released = nullptr);
  Status DeleteAtLeaf(Transaction* txn, PageGuard leaf, std::string_view value,
                      Rid rid, bool tree_latch_x_held, bool* needs_page_delete,
                      bool* needs_tree_x, bool* tree_latch_released = nullptr);

  /// Handle SM_Bit / Delete_Bit on a to-be-modified leaf (Figures 6/7/11):
  /// conditional instant S tree latch under the held X leaf latch; on
  /// success clears the bits (a POSC is established); on denial releases
  /// the leaf, waits, and returns kRetry.
  Status EnsureNoSmo(PageGuard& leaf, bool clear_delete_bit,
                     bool tree_latch_held);

  // -- SMOs (smo.cpp) ------------------------------------------------------
  /// Split path: acquires the tree latch X, performs the split(s) as a
  /// nested top action, then retries the insert while still holding the
  /// latch (Figure 8). kRetry means a lock was not grantable and all
  /// latches were released.
  Status SplitSmoAndInsert(Transaction* txn, std::string_view value, Rid rid);
  /// Make room for (value, rid)'s leaf: split pages top-down as needed.
  /// Caller holds the tree latch X. Runs inside an open NTA. Pages whose
  /// SM_Bit was set are appended to `touched` so the caller can perform the
  /// Figure 8 reset after the dummy CLR.
  Status MakeRoomForKey(Transaction* txn, std::string_view value, Rid rid,
                        std::vector<PageId>* touched);
  /// Split `node` (leaf or internal) into a new right sibling; `parent`
  /// must have room for the splice. Caller holds the tree latch X.
  Status DoOneSplit(Transaction* txn, PageId parent, PageId node,
                    std::vector<PageId>* touched);
  /// Grow the root: move its cells to a fresh child, root becomes internal.
  Status RootGrow(Transaction* txn, std::vector<PageId>* touched);
  /// Delete the empty page `leaf` (already key-deleted and X-latched by the
  /// caller, who holds the tree latch X). Consumes the guard. Runs its own
  /// NTA unless `in_nta`.
  Status PageDeleteSmo(Transaction* txn, PageGuard leaf, std::string_view value,
                       Rid rid);
  /// Remove child `child` from its parent along the path for (value, rid),
  /// recursing upward; collapses / resets the root as needed.
  Status RemoveFromParent(Transaction* txn, PageId child, std::string_view value,
                          Rid rid, std::vector<PageId>* touched);
  /// The Figure 8 reset: after an SMO completes (dummy CLR written), clear
  /// the SM_Bits it set, still under the tree latch X. The paper calls this
  /// optional for correctness; it is required for liveness under sustained
  /// SMO traffic (stale bits would make traversers wait forever). Unlogged:
  /// bits lost in a crash self-heal through the conditional-probe path.
  void ClearSmBits(const std::vector<PageId>& pages);

  // -- undo helpers (undo.cpp) ---------------------------------------------
  Status LogicalUndoInsert(Transaction* txn, const LogRecord& rec,
                           std::string_view value, Rid rid);
  Status LogicalUndoDelete(Transaction* txn, const LogRecord& rec,
                           std::string_view value, Rid rid);

  /// Append a key-op record (forward or CLR) against `page`.
  Result<Lsn> LogKeyOp(Transaction* txn, uint8_t op, PageId page,
                       std::string_view value, Rid rid, bool set_delete_bit,
                       bool clr, Lsn undo_next);

  Status ValidateSubtree(PageId id, uint8_t expected_level, bool is_root,
                         const std::string* low, const Rid* low_rid,
                         bool has_low, const std::string* high, const Rid* high_rid,
                         bool has_high, size_t* key_count, PageId* leftmost_leaf);

  EngineContext* ctx_;
  ObjectId index_id_;
  ObjectId table_id_;
  PageId root_;
  bool unique_;
  std::unique_ptr<LockingProtocol> proto_;
  RwLatch tree_latch_;
  /// Hold-start stamp for the tree latch's X owner (one X holder at a time;
  /// written by the acquirer in LockTreeExclusiveCounted, read by the same
  /// thread in UnlockTreeExclusiveCounted).
  std::atomic<uint64_t> tree_x_acquired_ns_{0};
  std::atomic<int> test_fail_after_splits_{-1};
  std::atomic<bool> test_fail_before_splice_{false};
};

/// Btree resource manager: dispatches redo through bt::Apply and undo
/// through the owning BTree (resolved via the catalog callback).
class BtreeResourceManager final : public ResourceManager {
 public:
  using TreeResolver = std::function<BTree*(ObjectId)>;

  BtreeResourceManager(EngineContext* ctx, TreeResolver resolver)
      : ctx_(ctx), resolver_(std::move(resolver)) {}

  Status Redo(const LogRecord& rec, PageView page) override;
  Status Undo(Transaction* txn, const LogRecord& rec) override;

 private:
  EngineContext* ctx_;
  TreeResolver resolver_;
};

}  // namespace ariesim
