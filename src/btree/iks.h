// Index key and cell encodings.
//
// A leaf key is a (key-value, RID) pair (paper §1.1); nonunique indexes are
// supported by making the RID part of the key, so every stored key is
// distinct. Nonleaf pages hold (high-key, child) entries; the rightmost
// entry carries no high key (represented by an "infinity" sentinel).
//
// Cell layouts:
//   leaf cell:     [u16 vlen][value bytes][u32 rid.page][u16 rid.slot]
//   internal cell: [u16 vlen][value bytes][u32 rid.page][u16 rid.slot][u32 child]
//   vlen == 0xFFFF encodes the +infinity high key (no value bytes follow).
#pragma once

#include <string>
#include <string_view>

#include "common/types.h"
#include "util/coding.h"

namespace ariesim {
namespace bt {

inline constexpr uint16_t kInfKeyLen = 0xFFFF;

/// Largest possible RID; used as a composite-search sentinel for strict
/// "greater than this key value" searches.
inline constexpr Rid kMaxRid{0xFFFFFFFEu, 0xFFFFu};

struct LeafEntry {
  std::string_view value;
  Rid rid;
};

struct InternalEntry {
  bool inf = false;          ///< +infinity high key (rightmost child)
  std::string_view value;    ///< valid when !inf
  Rid rid;                   ///< valid when !inf
  PageId child = kInvalidPageId;
};

inline int CompareKey(std::string_view av, Rid ar, std::string_view bv, Rid br) {
  int c = av.compare(bv);
  if (c != 0) return c < 0 ? -1 : 1;
  if (ar < br) return -1;
  if (br < ar) return 1;
  return 0;
}

inline std::string EncodeLeafCell(std::string_view value, Rid rid) {
  std::string cell;
  PutFixed16(&cell, static_cast<uint16_t>(value.size()));
  cell.append(value);
  PutFixed32(&cell, rid.page_id);
  PutFixed16(&cell, rid.slot);
  return cell;
}

inline LeafEntry DecodeLeafCell(std::string_view cell) {
  uint16_t vlen = DecodeFixed16(cell.data());
  LeafEntry e;
  e.value = cell.substr(2, vlen);
  e.rid.page_id = DecodeFixed32(cell.data() + 2 + vlen);
  e.rid.slot = DecodeFixed16(cell.data() + 2 + vlen + 4);
  return e;
}

inline std::string EncodeInternalCell(bool inf, std::string_view value, Rid rid,
                                      PageId child) {
  std::string cell;
  if (inf) {
    PutFixed16(&cell, kInfKeyLen);
    PutFixed32(&cell, 0);
    PutFixed16(&cell, 0);
  } else {
    PutFixed16(&cell, static_cast<uint16_t>(value.size()));
    cell.append(value);
    PutFixed32(&cell, rid.page_id);
    PutFixed16(&cell, rid.slot);
  }
  PutFixed32(&cell, child);
  return cell;
}

inline InternalEntry DecodeInternalCell(std::string_view cell) {
  InternalEntry e;
  uint16_t vlen = DecodeFixed16(cell.data());
  if (vlen == kInfKeyLen) {
    e.inf = true;
    e.child = DecodeFixed32(cell.data() + 2 + 4 + 2);
    return e;
  }
  e.value = cell.substr(2, vlen);
  e.rid.page_id = DecodeFixed32(cell.data() + 2 + vlen);
  e.rid.slot = DecodeFixed16(cell.data() + 2 + vlen + 4);
  e.child = DecodeFixed32(cell.data() + 2 + vlen + 4 + 2);
  return e;
}

}  // namespace bt
}  // namespace ariesim
