// Node-level operations over B-tree pages and the page-oriented log-record
// interpreter for the btree resource manager.
//
// Every change to an index page — key inserts/deletes and each per-page
// step of an SMO — is logged with one of the opcodes below and applied
// through Apply(), so restart redo is always page-oriented (paper §3
// "Logging": each log record contains the identity of the affected page).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "btree/iks.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"

namespace ariesim {
namespace bt {

// -- log opcodes (RmId::kBtree). Every payload begins with [u32 index_id]. --
inline constexpr uint8_t kOpInsertKey = 1;      ///< leaf key insert
inline constexpr uint8_t kOpDeleteKey = 2;      ///< leaf key delete
inline constexpr uint8_t kOpFormat = 3;         ///< format fresh page + cells
inline constexpr uint8_t kOpUnformat = 4;       ///< CLR: page back to free
inline constexpr uint8_t kOpTruncate = 5;       ///< split: drop upper cells
inline constexpr uint8_t kOpRestore = 6;        ///< CLR: re-append cells
inline constexpr uint8_t kOpSetNext = 7;        ///< leaf-chain next pointer
inline constexpr uint8_t kOpSetPrev = 8;        ///< leaf-chain prev pointer
inline constexpr uint8_t kOpParentSplice = 9;   ///< split: fix + add child entry
inline constexpr uint8_t kOpParentUnsplice = 10;///< CLR: inverse of splice
inline constexpr uint8_t kOpParentRemove = 11;  ///< page delete: drop child entry
inline constexpr uint8_t kOpParentRestore = 12; ///< CLR: inverse of remove
inline constexpr uint8_t kOpReplaceAll = 13;    ///< root grow/collapse/reset
inline constexpr uint8_t kOpToFree = 14;        ///< page delete: free the page
inline constexpr uint8_t kOpFromFree = 15;      ///< CLR: resurrect empty page

// -- search ----------------------------------------------------------------

/// First leaf slot with key >= (value, rid); sets *exact when equal.
/// Returns slot_count() when all keys are smaller.
uint16_t LeafLowerBound(const PageView& v, std::string_view value, Rid rid,
                        bool* exact);

/// Index of the child entry to follow for (value, rid): the first entry
/// whose separator is strictly greater (the rightmost/inf entry otherwise).
uint16_t InternalChildIndex(const PageView& v, std::string_view value, Rid rid);

/// True if the page has a finite separator >= nothing… — specifically,
/// returns whether (value, rid) is <= the highest *finite* key stored in the
/// page (the Figure 4 "input key <= highest key in child" test). An
/// internal page whose only entry is the inf sentinel has no finite key,
/// so this returns false.
bool KeyWithinHighest(const PageView& v, std::string_view value, Rid rid);

// -- payload builders --------------------------------------------------------

std::string EncodeKeyOp(ObjectId index, std::string_view value, Rid rid,
                        bool set_delete_bit);
void DecodeKeyOp(std::string_view payload, ObjectId* index, std::string_view* value,
                 Rid* rid, bool* set_delete_bit);

/// kOpFormat: [idx][u8 type][u8 level][u8 sm][u32 prev][u32 next][u16 n][lp cells]
std::string EncodeFormat(ObjectId index, PageType type, uint8_t level, bool sm,
                         PageId prev, PageId next,
                         const std::vector<std::string>& cells);
/// kOpTruncate: [idx][u16 from][u32 old_next][u32 new_next]
///              [u8 replace_last][lp old_last][lp new_last][u16 n][lp cells]
std::string EncodeTruncate(ObjectId index, uint16_t from, PageId old_next,
                           PageId new_next, bool replace_last,
                           std::string_view old_last, std::string_view new_last,
                           const std::vector<std::string>& removed);
/// kOpRestore (CLR): [idx][u32 next][u8 replace_last][lp old_last]
///                   [u16 n][lp cells]
std::string EncodeRestore(ObjectId index, PageId next, bool replace_last,
                          std::string_view old_last,
                          const std::vector<std::string>& cells);
/// kOpSetNext / kOpSetPrev: [idx][u32 old][u32 new]
std::string EncodeSetLink(ObjectId index, PageId oldp, PageId newp);
/// kOpParentSplice: [idx][u16 slot][lp old][lp new][lp ins]
std::string EncodeParentSplice(ObjectId index, uint16_t slot,
                               std::string_view old_cell,
                               std::string_view new_cell,
                               std::string_view ins_cell);
/// kOpParentUnsplice (CLR): [idx][u16 slot][lp old]
std::string EncodeParentUnsplice(ObjectId index, uint16_t slot,
                                 std::string_view old_cell);
/// kOpParentRemove: [idx][u16 slot][lp removed][u8 fixed][u16 fix_slot]
///                  [lp fix_old][lp fix_new]
std::string EncodeParentRemove(ObjectId index, uint16_t slot,
                               std::string_view removed, bool fixed,
                               uint16_t fix_slot, std::string_view fix_old,
                               std::string_view fix_new);
std::string EncodeParentRestore(ObjectId index, uint16_t slot,
                                std::string_view removed, bool fixed,
                                uint16_t fix_slot, std::string_view fix_old);
/// kOpReplaceAll: [idx][u8 old_type][u8 old_level][u8 new_type][u8 new_level]
///                [u16 n_old][lp cells][u16 n_new][lp cells]
std::string EncodeReplaceAll(ObjectId index, PageType old_type, uint8_t old_level,
                             PageType new_type, uint8_t new_level,
                             const std::vector<std::string>& old_cells,
                             const std::vector<std::string>& new_cells);
/// kOpToFree: [idx][u8 old_type][u8 old_level][u32 old_prev][u32 old_next]
std::string EncodeToFree(ObjectId index, PageType old_type, uint8_t old_level,
                         PageId old_prev, PageId old_next);
/// kOpFromFree (CLR): same fields; re-initializes the page empty.
std::string EncodeFromFree(ObjectId index, PageType old_type, uint8_t old_level,
                           PageId old_prev, PageId old_next);

/// Read the leading index id of any btree payload.
ObjectId PayloadIndexId(std::string_view payload);

/// Page-oriented application of a btree op (forward, redo, and CLR apply all
/// go through here).
Status Apply(uint8_t op, std::string_view payload, PageView v);

/// Collect a page's cells (testing / SMO helper).
std::vector<std::string> CollectCells(const PageView& v, uint16_t from = 0);

}  // namespace bt
}  // namespace ariesim
