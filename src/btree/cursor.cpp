// Range scans: Fetch (open) + Fetch Next (paper §2.2, §2.3).
//
// The cursor remembers the leaf holding the current key and that leaf's
// page LSN. Fetch Next latches the remembered leaf and, if its LSN is
// unchanged since the last positioning, advances in place; otherwise it
// repositions with a fresh traversal (the current key may have been deleted
// by this very transaction, or the leaf may have split). Repositioning goes
// through TraverseToLeafRead, i.e. the optimistic latch-free descent when
// enabled (docs/CONCURRENCY.md). The located next key is locked S for
// commit duration before the stopping condition is evaluated.
#include "btree/btree.h"
#include "btree/search_internal.h"

namespace ariesim {

using btinternal::NextSearch;
using btinternal::SearchForward;

Status BTree::OpenScan(Transaction* txn, std::string_view value, FetchCond cond,
                       ScanCursor* cursor, FetchResult* first) {
  *cursor = ScanCursor();
  ARIES_RETURN_NOT_OK(Fetch(txn, value, cond, first));
  cursor->open = true;
  if (first->eof || (!first->found && cond == FetchCond::kEq)) {
    // Positioned at EOF or at a non-matching key: for kEq the scan is
    // complete; for ranges an EOF means an empty result.
    if (first->eof) {
      cursor->at_eof = true;
      return Status::OK();
    }
  }
  if (!first->eof) {
    cursor->last_value = first->value;
    cursor->last_rid = first->rid;
  }
  return Status::OK();
}

Status BTree::SetStop(ScanCursor* cursor, std::string_view stop_value,
                      bool inclusive) {
  cursor->has_stop = true;
  cursor->stop_value.assign(stop_value);
  cursor->stop_inclusive = inclusive;
  return Status::OK();
}

namespace {
bool PastStop(const ScanCursor& c, std::string_view value) {
  if (!c.has_stop) return false;
  int cmp = value.compare(c.stop_value);
  return c.stop_inclusive ? cmp > 0 : cmp >= 0;
}
}  // namespace

Status BTree::FetchNext(Transaction* txn, ScanCursor* cursor, FetchResult* out) {
  if (!cursor->open) return Status::InvalidArgument("cursor not open");
  out->found = false;
  out->eof = false;
  if (cursor->at_eof) {
    out->eof = true;
    return Status::OK();
  }
  // §2.3 shortcut: "If the current cursor position already satisfies the
  // stopping key specification (unique index and a stopping condition of
  // =), then Fetch Next returns right away … with a not found status" — no
  // latch, no lock.
  if (unique_ && cursor->has_stop && cursor->stop_inclusive &&
      cursor->last_value == cursor->stop_value) {
    cursor->at_eof = true;
    return Status::OK();
  }
  for (int attempt = 0; attempt < 10000; ++attempt) {
    // Latch the leaf the cursor is positioned on; the remembered LSN tells
    // us whether in-place advancement is safe (paper §2.3).
    PageGuard leaf;
    bool have_leaf = false;
    if (cursor->leaf != kInvalidPageId) {
      auto res = ctx_->pool->FetchPage(cursor->leaf, LatchMode::kShared);
      if (res.ok()) {
        leaf = std::move(res).value();
        PageView v = leaf.view();
        if (v.owner_id() == index_id_ && v.type() == PageType::kBtreeLeaf &&
            v.page_lsn() == cursor->leaf_lsn) {
          have_leaf = true;
        } else {
          leaf.Release();
        }
      }
    }
    if (!have_leaf) {
      ARIES_RETURN_NOT_OK(
          TraverseToLeafRead(cursor->last_value, cursor->last_rid, &leaf));
    }
    NextSearch next;
    Status s = SearchForward(ctx_, index_id_, leaf, cursor->last_value,
                             cursor->last_rid, /*exclusive=*/true, &next);
    if (s.IsRetry()) {
      leaf.Release();
      WaitForSmo();
      continue;
    }
    ARIES_RETURN_NOT_OK(s);

    IndexKeyRef key = next.eof ? IndexKeyRef::Eof()
                               : IndexKeyRef::Of(next.value, next.rid);
    Status ls = proto_->LockFetchCurrent(txn, key, /*conditional=*/true);
    if (ls.IsBusy()) {
      PageGuard& holder = next.chain_guard.valid() ? next.chain_guard : leaf;
      Lsn noted = holder.view().page_lsn();
      PageId holder_id = holder.page_id();
      next.chain_guard.Release();
      leaf.Release();
      ARIES_RETURN_NOT_OK(
          proto_->LockFetchCurrent(txn, key, /*conditional=*/false));
      ARIES_ASSIGN_OR_RETURN(
          PageGuard check, ctx_->pool->FetchPage(holder_id, LatchMode::kShared));
      bool unchanged = check.view().page_lsn() == noted;
      check.Release();
      if (!unchanged) continue;  // reposition; retained lock is harmless
      if (next.eof) {
        cursor->at_eof = true;
        out->eof = true;
        return Status::OK();
      }
      if (PastStop(*cursor, next.value)) {
        cursor->at_eof = true;
        return Status::OK();  // found=false: range exhausted
      }
      cursor->last_value = next.value;
      cursor->last_rid = next.rid;
      cursor->leaf = holder_id;
      cursor->leaf_lsn = noted;
      cursor->pos = next.pos;
      out->found = true;
      out->value = std::move(next.value);
      out->rid = next.rid;
      return Status::OK();
    }
    ARIES_RETURN_NOT_OK(ls);
    if (next.eof) {
      cursor->at_eof = true;
      out->eof = true;
      return Status::OK();
    }
    if (PastStop(*cursor, next.value)) {
      cursor->at_eof = true;
      return Status::OK();
    }
    PageGuard& holder = next.chain_guard.valid() ? next.chain_guard : leaf;
    cursor->leaf = holder.page_id();
    cursor->leaf_lsn = holder.view().page_lsn();
    cursor->pos = next.pos;
    cursor->last_value = next.value;
    cursor->last_rid = next.rid;
    out->found = true;
    out->value = std::move(next.value);
    out->rid = next.rid;
    return Status::OK();
  }
  return Status::Corruption("fetch next did not settle");
}

}  // namespace ariesim
