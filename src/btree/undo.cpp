// Undo processing for the btree resource manager (paper §3).
//
// Key-op undo is page-oriented whenever the logged page can still absorb the
// inverse (fast path); otherwise the undo is *logical*: the tree is re-
// traversed from the root, and if the inverse operation itself needs an SMO
// (no room to put a key back → split; removing the key empties the page →
// page delete), the SMO is performed under the tree latch, logged with
// regular undo-redo records inside a nested top action — the paper's stated
// exception to CLR-only logging during rollback, so that a crash mid-SMO can
// restore structural consistency.
//
// Structural-record undo (an incomplete SMO being rolled back) is always the
// page-oriented physical inverse, emitted as a redo-only CLR.
#include "btree/btree.h"
#include "common/trace.h"
#include "util/coding.h"

namespace ariesim {

Result<Lsn> LogBtree(EngineContext* ctx, Transaction* txn, uint8_t op,
                     PageId page, std::string payload, bool clr,
                     Lsn undo_next);  // defined in smo.cpp

Status BtreeResourceManager::Redo(const LogRecord& rec, PageView page) {
  return bt::Apply(rec.op, rec.payload, page);
}

namespace {

/// Build the physical-inverse CLR payload for a structural record.
Status InverseStructural(const LogRecord& rec, uint8_t* clr_op,
                         std::string* clr_payload) {
  BufferReader r(rec.payload);
  ObjectId index = r.GetFixed32();
  switch (rec.op) {
    case bt::kOpFormat: {
      *clr_op = bt::kOpUnformat;
      std::string p;
      PutFixed32(&p, index);
      *clr_payload = std::move(p);
      return Status::OK();
    }
    case bt::kOpTruncate: {
      (void)r.GetFixed16();  // from
      PageId old_next = r.GetFixed32();
      (void)r.GetFixed32();  // new_next
      bool replace_last = r.GetFixed8() != 0;
      std::string_view old_last = r.GetLengthPrefixed();
      (void)r.GetLengthPrefixed();  // new_last
      uint16_t n = r.GetFixed16();
      std::vector<std::string> cells;
      cells.reserve(n);
      for (uint16_t i = 0; i < n; ++i) {
        cells.emplace_back(r.GetLengthPrefixed());
      }
      if (!r.ok()) return Status::Corruption("bad truncate payload in undo");
      *clr_op = bt::kOpRestore;
      *clr_payload =
          bt::EncodeRestore(index, old_next, replace_last, old_last, cells);
      return Status::OK();
    }
    case bt::kOpSetNext:
    case bt::kOpSetPrev: {
      PageId oldp = r.GetFixed32();
      PageId newp = r.GetFixed32();
      *clr_op = rec.op;  // same op, swapped operands
      *clr_payload = bt::EncodeSetLink(index, newp, oldp);
      return Status::OK();
    }
    case bt::kOpParentSplice: {
      uint16_t slot = r.GetFixed16();
      std::string_view old_cell = r.GetLengthPrefixed();
      if (!r.ok()) return Status::Corruption("bad splice payload in undo");
      *clr_op = bt::kOpParentUnsplice;
      *clr_payload = bt::EncodeParentUnsplice(index, slot, old_cell);
      return Status::OK();
    }
    case bt::kOpParentRemove: {
      uint16_t slot = r.GetFixed16();
      std::string_view removed = r.GetLengthPrefixed();
      bool fixed = r.GetFixed8() != 0;
      uint16_t fix_slot = r.GetFixed16();
      std::string_view fix_old = r.GetLengthPrefixed();
      if (!r.ok()) return Status::Corruption("bad parent-remove payload");
      *clr_op = bt::kOpParentRestore;
      *clr_payload = bt::EncodeParentRestore(index, slot, removed, fixed,
                                             fix_slot, fix_old);
      return Status::OK();
    }
    case bt::kOpReplaceAll: {
      PageType old_type = static_cast<PageType>(r.GetFixed8());
      uint8_t old_level = r.GetFixed8();
      PageType new_type = static_cast<PageType>(r.GetFixed8());
      uint8_t new_level = r.GetFixed8();
      uint16_t n_old = r.GetFixed16();
      std::vector<std::string> old_cells;
      old_cells.reserve(n_old);
      for (uint16_t i = 0; i < n_old; ++i) {
        old_cells.emplace_back(r.GetLengthPrefixed());
      }
      uint16_t n_new = r.GetFixed16();
      std::vector<std::string> new_cells;
      new_cells.reserve(n_new);
      for (uint16_t i = 0; i < n_new; ++i) {
        new_cells.emplace_back(r.GetLengthPrefixed());
      }
      if (!r.ok()) return Status::Corruption("bad replace-all payload");
      *clr_op = bt::kOpReplaceAll;
      *clr_payload = bt::EncodeReplaceAll(index, new_type, new_level, old_type,
                                          old_level, new_cells, old_cells);
      return Status::OK();
    }
    case bt::kOpToFree: {
      PageType old_type = static_cast<PageType>(r.GetFixed8());
      uint8_t old_level = r.GetFixed8();
      PageId old_prev = r.GetFixed32();
      PageId old_next = r.GetFixed32();
      if (!r.ok()) return Status::Corruption("bad to-free payload");
      *clr_op = bt::kOpFromFree;
      *clr_payload =
          bt::EncodeFromFree(index, old_type, old_level, old_prev, old_next);
      return Status::OK();
    }
    default:
      return Status::Corruption("no inverse for btree op " +
                                std::to_string(rec.op));
  }
}

}  // namespace

Status BtreeResourceManager::Undo(Transaction* txn, const LogRecord& rec) {
  if (rec.op == bt::kOpInsertKey || rec.op == bt::kOpDeleteKey) {
    ObjectId index = bt::PayloadIndexId(rec.payload);
    BTree* tree = resolver_(index);
    if (tree == nullptr) {
      return Status::Corruption("undo: unknown index " + std::to_string(index));
    }
    return rec.op == bt::kOpInsertKey ? tree->UndoInsertKey(txn, rec)
                                      : tree->UndoDeleteKey(txn, rec);
  }
  // Structural record of an incomplete SMO: page-oriented physical inverse.
  uint8_t clr_op = 0;
  std::string clr_payload;
  ARIES_RETURN_NOT_OK(InverseStructural(rec, &clr_op, &clr_payload));
  ARIES_ASSIGN_OR_RETURN(
      PageGuard page, ctx_->pool->FetchPage(rec.page_id, LatchMode::kExclusive));
  ARIES_ASSIGN_OR_RETURN(Lsn lsn,
                         LogBtree(ctx_, txn, clr_op, rec.page_id, clr_payload,
                                  /*clr=*/true, rec.prev_lsn));
  ARIES_RETURN_NOT_OK(bt::Apply(clr_op, clr_payload, page.view()));
  page.MarkDirty(lsn);
  if (ctx_->metrics != nullptr) {
    ctx_->metrics->page_oriented_undos.fetch_add(1, std::memory_order_relaxed);
    ctx_->metrics->smo_structural_undos.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Key-op undo entry points
// ---------------------------------------------------------------------------

Status BTree::UndoInsertKey(Transaction* txn, const LogRecord& rec) {
  std::string_view value;
  Rid rid;
  bt::DecodeKeyOp(rec.payload, nullptr, &value, &rid, nullptr);
  {
    ARIES_ASSIGN_OR_RETURN(
        PageGuard page, ctx_->pool->FetchPage(rec.page_id, LatchMode::kExclusive));
    PageView v = page.view();
    bool exact = false;
    if (v.type() == PageType::kBtreeLeaf && v.owner_id() == index_id_ &&
        !v.sm_bit()) {
      bt::LeafLowerBound(v, value, rid, &exact);
      if (exact && v.slot_count() > 1) {
        // Page-oriented undo: the key is still here and removing it leaves
        // the page nonempty.
        ARIES_ASSIGN_OR_RETURN(
            Lsn lsn, LogKeyOp(txn, bt::kOpDeleteKey, rec.page_id, value, rid,
                              /*set_delete_bit=*/true, /*clr=*/true,
                              rec.prev_lsn));
        ARIES_RETURN_NOT_OK(bt::Apply(
            bt::kOpDeleteKey, bt::EncodeKeyOp(index_id_, value, rid, true), v));
        page.MarkDirty(lsn);
        if (ctx_->metrics != nullptr) {
          ctx_->metrics->page_oriented_undos.fetch_add(1,
                                                       std::memory_order_relaxed);
        }
        return Status::OK();
      }
    }
  }
  if (ctx_->metrics != nullptr) {
    ctx_->metrics->logical_undos.fetch_add(1, std::memory_order_relaxed);
  }
  ARIES_TRACE_SPAN(span, "bt.logical_undo", TraceCat::kBtree, txn->id());
  return LogicalUndoInsert(txn, rec, value, rid);
}

Status BTree::LogicalUndoInsert(Transaction* txn, const LogRecord& rec,
                                std::string_view value, Rid rid) {
  // Retraverse from the root (Figure 1 scenario). A rolling-back
  // transaction acquires no locks — only latches, plus the tree latch if an
  // SMO becomes necessary (§4).
  for (int attempt = 0; attempt < 1000; ++attempt) {
    PageGuard leaf;
    ARIES_RETURN_NOT_OK(TraverseToLeaf(value, rid, /*for_modify=*/true, &leaf));
    Status bs = EnsureNoSmo(leaf, /*clear_delete_bit=*/false,
                            /*tree_latch_held=*/false);
    if (bs.IsRetry()) continue;
    ARIES_RETURN_NOT_OK(bs);
    PageView v = leaf.view();
    bool exact = false;
    bt::LeafLowerBound(v, value, rid, &exact);
    if (!exact) {
      return Status::Corruption("logical undo: inserted key vanished");
    }
    if (v.slot_count() > 1) {
      ARIES_ASSIGN_OR_RETURN(
          Lsn lsn, LogKeyOp(txn, bt::kOpDeleteKey, leaf.page_id(), value, rid,
                            /*set_delete_bit=*/true, /*clr=*/true,
                            rec.prev_lsn));
      ARIES_RETURN_NOT_OK(bt::Apply(
          bt::kOpDeleteKey, bt::EncodeKeyOp(index_id_, value, rid, true), v));
      leaf.MarkDirty(lsn);
      return Status::OK();
    }
    // Removing the key empties the page: page-delete SMO required (§3
    // reason 4). Serialize via the tree latch and redo the undo under it.
    leaf.Release();
    LockTreeExclusiveCounted();
    Status s = [&]() -> Status {
      PageGuard xleaf;
      ARIES_RETURN_NOT_OK(TraverseToLeaf(value, rid, /*for_modify=*/true,
                                         &xleaf, /*tree_latch_held=*/true));
      PageView xv = xleaf.view();
      bool xexact = false;
      bt::LeafLowerBound(xv, value, rid, &xexact);
      if (!xexact) {
        return Status::Corruption("logical undo: key vanished under tree latch");
      }
      ARIES_ASSIGN_OR_RETURN(
          Lsn lsn, LogKeyOp(txn, bt::kOpDeleteKey, xleaf.page_id(), value, rid,
                            /*set_delete_bit=*/true, /*clr=*/true,
                            rec.prev_lsn));
      ARIES_RETURN_NOT_OK(bt::Apply(
          bt::kOpDeleteKey, bt::EncodeKeyOp(index_id_, value, rid, true), xv));
      xleaf.MarkDirty(lsn);
      if (xv.slot_count() == 0) {
        return PageDeleteSmo(txn, std::move(xleaf), value, rid);
      }
      return Status::OK();
    }();
    UnlockTreeExclusiveCounted();
    return s;
  }
  return Status::Corruption("logical undo (insert) did not settle");
}

Status BTree::UndoDeleteKey(Transaction* txn, const LogRecord& rec) {
  std::string_view value;
  Rid rid;
  bt::DecodeKeyOp(rec.payload, nullptr, &value, &rid, nullptr);
  std::string cell = bt::EncodeLeafCell(value, rid);
  {
    ARIES_ASSIGN_OR_RETURN(
        PageGuard page, ctx_->pool->FetchPage(rec.page_id, LatchMode::kExclusive));
    PageView v = page.view();
    if (v.type() == PageType::kBtreeLeaf && v.owner_id() == index_id_ &&
        !v.sm_bit()) {
      bool exact = false;
      uint16_t pos = bt::LeafLowerBound(v, value, rid, &exact);
      // "Bound" (§3 reason 3): a lower AND a higher key are both present on
      // the page, so this is provably still the right page.
      bool bound = !exact && pos > 0 && pos < v.slot_count();
      if (bound && v.FreeSpaceForNewCell() >= cell.size()) {
        ARIES_ASSIGN_OR_RETURN(
            Lsn lsn, LogKeyOp(txn, bt::kOpInsertKey, rec.page_id, value, rid,
                              /*set_delete_bit=*/false, /*clr=*/true,
                              rec.prev_lsn));
        ARIES_RETURN_NOT_OK(bt::Apply(
            bt::kOpInsertKey, bt::EncodeKeyOp(index_id_, value, rid, false), v));
        page.MarkDirty(lsn);
        if (ctx_->metrics != nullptr) {
          ctx_->metrics->page_oriented_undos.fetch_add(1,
                                                       std::memory_order_relaxed);
        }
        return Status::OK();
      }
    }
  }
  if (ctx_->metrics != nullptr) {
    ctx_->metrics->logical_undos.fetch_add(1, std::memory_order_relaxed);
  }
  ARIES_TRACE_SPAN(span, "bt.logical_undo", TraceCat::kBtree, txn->id());
  return LogicalUndoDelete(txn, rec, value, rid);
}

Status BTree::LogicalUndoDelete(Transaction* txn, const LogRecord& rec,
                                std::string_view value, Rid rid) {
  std::string cell = bt::EncodeLeafCell(value, rid);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    PageGuard leaf;
    ARIES_RETURN_NOT_OK(TraverseToLeaf(value, rid, /*for_modify=*/true, &leaf));
    Status bs = EnsureNoSmo(leaf, /*clear_delete_bit=*/false,
                            /*tree_latch_held=*/false);
    if (bs.IsRetry()) continue;
    ARIES_RETURN_NOT_OK(bs);
    PageView v = leaf.view();
    bool exact = false;
    bt::LeafLowerBound(v, value, rid, &exact);
    if (exact) {
      return Status::Corruption("logical undo: deleted key reappeared");
    }
    if (v.FreeSpaceForNewCell() >= cell.size()) {
      ARIES_ASSIGN_OR_RETURN(
          Lsn lsn, LogKeyOp(txn, bt::kOpInsertKey, leaf.page_id(), value, rid,
                            /*set_delete_bit=*/false, /*clr=*/true,
                            rec.prev_lsn));
      ARIES_RETURN_NOT_OK(bt::Apply(
          bt::kOpInsertKey, bt::EncodeKeyOp(index_id_, value, rid, false), v));
      leaf.MarkDirty(lsn);
      return Status::OK();
    }
    // No room to put the key back (§3 reason 1 — the freed space was
    // consumed): split under the tree latch. The SMO's records are regular
    // (not CLRs) so a crash mid-SMO restores consistency; the nested top
    // action is anchored at rec.lsn so a crash after the dummy CLR but
    // before the insert CLR resumes by re-undoing this record.
    leaf.Release();
    LockTreeExclusiveCounted();
    Status s = [&]() -> Status {
      txn->BeginNtaAt(rec.lsn);
      std::vector<PageId> touched;
      Status ms = MakeRoomForKey(txn, value, rid, &touched);
      if (!ms.ok()) {
        txn->PopNta();
        return ms;
      }
      ARIES_RETURN_NOT_OK(ctx_->txns->EndNta(txn));
      ClearSmBits(touched);
      PageGuard xleaf;
      ARIES_RETURN_NOT_OK(TraverseToLeaf(value, rid, /*for_modify=*/true,
                                         &xleaf, /*tree_latch_held=*/true));
      PageView xv = xleaf.view();
      if (xv.FreeSpaceForNewCell() < cell.size()) {
        return Status::Corruption("logical undo: split left no room");
      }
      ARIES_ASSIGN_OR_RETURN(
          Lsn lsn, LogKeyOp(txn, bt::kOpInsertKey, xleaf.page_id(), value, rid,
                            /*set_delete_bit=*/false, /*clr=*/true,
                            rec.prev_lsn));
      ARIES_RETURN_NOT_OK(bt::Apply(
          bt::kOpInsertKey, bt::EncodeKeyOp(index_id_, value, rid, false), xv));
      xleaf.MarkDirty(lsn);
      return Status::OK();
    }();
    UnlockTreeExclusiveCounted();
    return s;
  }
  return Status::Corruption("logical undo (delete) did not settle");
}

}  // namespace ariesim
