#include "common/trace.h"

#if ARIESIM_TRACE_COMPILED

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace ariesim {

namespace trace_internal {
std::atomic<bool> g_enabled{false};
}  // namespace trace_internal

namespace {

struct TraceEvent {
  const char* name;   // string literal; never owned
  uint64_t start_ns;
  uint64_t dur_ns;
  uint64_t arg;
  uint32_t tid;
  TraceCat cat;
  bool instant;
};

}  // namespace

/// One thread's event storage. The mutex is effectively uncontended (only
/// Dump/Clear from another thread ever take it), but it is what makes the
/// tracer TSan-clean without per-field atomics.
struct TraceRing {
  std::mutex mu;
  std::vector<TraceEvent> events;  // grows to capacity, then cycles via next
  size_t capacity = 0;
  size_t next = 0;        // overwrite cursor once full
  uint64_t recorded = 0;  // total events ever landed here
  uint64_t dropped = 0;   // oldest events overwritten
  uint32_t tid = 0;       // reassigned when the ring is recycled
  bool attached = false;  // currently bound to a live thread
};

namespace {

/// Thread-exit hook: returns the ring to the freelist so a later thread can
/// reuse it (its buffered events stay dumpable until then).
struct RingHandle {
  TraceRing* ring = nullptr;
  ~RingHandle() {
    if (ring != nullptr) Tracer::Instance().ReleaseRing(ring);
  }
};

thread_local RingHandle t_ring_handle;

}  // namespace

Tracer& Tracer::Instance() {
  // Deliberately leaked: detached threads may run their thread_local
  // destructors (ReleaseRing) after main() returns, which must not race a
  // destroyed static.
  static Tracer* t = new Tracer();
  return *t;
}

TraceRing* Tracer::LocalRing() {
  if (t_ring_handle.ring == nullptr) t_ring_handle.ring = AcquireRing();
  return t_ring_handle.ring;
}

TraceRing* Tracer::AcquireRing() {
  std::lock_guard<std::mutex> reg(reg_mu_);
  TraceRing* r;
  if (!free_rings_.empty()) {
    r = free_rings_.back();
    free_rings_.pop_back();
  } else {
    rings_.push_back(std::make_unique<TraceRing>());
    r = rings_.back().get();
  }
  std::lock_guard<std::mutex> lk(r->mu);
  if (r->capacity != ring_capacity_) {
    // Recycled ring adopts the current capacity (its stale events go with
    // the old buffer); new rings take this path too (capacity starts at 0).
    r->events.clear();
    r->events.shrink_to_fit();
    r->next = 0;
    r->capacity = ring_capacity_;
    r->events.reserve(r->capacity);
  }
  r->attached = true;
  r->tid = next_tid_++;  // fresh tid so recycled rings don't conflate threads
  return r;
}

void Tracer::ReleaseRing(TraceRing* ring) {
  std::lock_guard<std::mutex> reg(reg_mu_);
  std::lock_guard<std::mutex> lk(ring->mu);
  ring->attached = false;
  free_rings_.push_back(ring);
}

void Tracer::Record(const char* name, TraceCat cat, uint64_t start_ns,
                    uint64_t dur_ns, uint64_t arg, bool instant) {
  TraceRing* r = LocalRing();
  std::lock_guard<std::mutex> lk(r->mu);
  TraceEvent ev{name, start_ns, dur_ns, arg, r->tid, cat, instant};
  if (r->events.size() < r->capacity) {
    r->events.push_back(ev);
  } else if (r->capacity > 0) {
    r->events[r->next] = ev;
    r->next = (r->next + 1) % r->capacity;
    r->dropped++;
  } else {
    r->dropped++;  // zero-capacity ring: count, keep nothing
  }
  r->recorded++;
}

std::string Tracer::DumpJson(size_t max_events) {
  std::vector<TraceEvent> all;
  uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> reg(reg_mu_);
    for (auto& rp : rings_) {
      TraceRing* r = rp.get();
      std::lock_guard<std::mutex> lk(r->mu);
      if (r->events.size() < r->capacity || r->capacity == 0) {
        all.insert(all.end(), r->events.begin(), r->events.end());
      } else {
        // Ring has wrapped: oldest event sits at the overwrite cursor.
        all.insert(all.end(), r->events.begin() + static_cast<long>(r->next),
                   r->events.end());
        all.insert(all.end(), r->events.begin(),
                   r->events.begin() + static_cast<long>(r->next));
      }
      dropped += r->dropped;
    }
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  // Bounded excerpt: keep the newest max_events (the tail explains the
  // incident; the head is history a full dump can still recover).
  uint64_t excerpt_dropped = 0;
  if (max_events > 0 && all.size() > max_events) {
    excerpt_dropped = all.size() - max_events;
    all.erase(all.begin(),
              all.begin() + static_cast<long>(all.size() - max_events));
  }
  // Rebase timestamps so the trace starts at t=0 (keeps the JSON small and
  // Perfetto's ruler readable); Chrome format wants microsecond doubles.
  const uint64_t base_ns = all.empty() ? 0 : all.front().start_ns;

  std::string out;
  out.reserve(128 + all.size() * 96);
  out += "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const TraceEvent& ev : all) {
    double ts_us = static_cast<double>(ev.start_ns - base_ns) / 1000.0;
    int n;
    if (ev.instant) {
      n = std::snprintf(buf, sizeof(buf),
                        "%s\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
                        "\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":%u,"
                        "\"args\":{\"arg\":%llu}}",
                        first ? "" : ",", ev.name, TraceCatName(ev.cat), ts_us,
                        ev.tid, static_cast<unsigned long long>(ev.arg));
    } else {
      double dur_us = static_cast<double>(ev.dur_ns) / 1000.0;
      n = std::snprintf(buf, sizeof(buf),
                        "%s\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                        "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u,"
                        "\"args\":{\"arg\":%llu}}",
                        first ? "" : ",", ev.name, TraceCatName(ev.cat), ts_us,
                        dur_us, ev.tid,
                        static_cast<unsigned long long>(ev.arg));
    }
    if (n > 0) out.append(buf, static_cast<size_t>(n));
    first = false;
  }
  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":\"";
  out += std::to_string(dropped);
  out += "\",\"excerptDropped\":\"";
  out += std::to_string(excerpt_dropped);
  out += "\"}}\n";
  return out;
}

Status Tracer::Dump(const std::string& path) {
  std::string json = DumpJson();
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f.is_open()) {
    return Status::IOError("cannot open trace output file: " + path);
  }
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  f.flush();
  if (!f.good()) return Status::IOError("short write to trace file: " + path);
  return Status::OK();
}

TraceCounts Tracer::Counts() {
  TraceCounts c;
  std::lock_guard<std::mutex> reg(reg_mu_);
  c.rings = rings_.size();
  for (auto& rp : rings_) {
    std::lock_guard<std::mutex> lk(rp->mu);
    c.recorded += rp->recorded;
    c.dropped += rp->dropped;
  }
  return c;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> reg(reg_mu_);
  for (auto& rp : rings_) {
    std::lock_guard<std::mutex> lk(rp->mu);
    rp->events.clear();
    rp->next = 0;
    rp->recorded = 0;
    rp->dropped = 0;
  }
}

void Tracer::SetRingCapacity(size_t events) {
  std::lock_guard<std::mutex> reg(reg_mu_);
  ring_capacity_ = events;
}

size_t Tracer::ring_capacity() {
  std::lock_guard<std::mutex> reg(reg_mu_);
  return ring_capacity_;
}

}  // namespace ariesim

#endif  // ARIESIM_TRACE_COMPILED
