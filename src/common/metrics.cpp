// Out-of-line Metrics emitters (PR 9): the OpenMetrics/Prometheus text
// exposition and the commit_breakdown section of Database::Stats(). Kept out
// of the header so the bucket-walking and float formatting compile once.
#include "common/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <string_view>

#include "common/commit_breakdown.h"

namespace ariesim {

namespace {

// Shortest-round-trip-ish float for OpenMetrics sample values ("1.024e-06").
std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// Fixed 3-decimal microseconds, matching AppendHistogramJson's style.
std::string FormatUs(double v) {
  uint64_t milli_us = static_cast<uint64_t>(v * 1000.0 + 0.5);
  std::string r = std::to_string(milli_us / 1000);
  uint64_t frac = milli_us % 1000;
  r += '.';
  if (frac < 100) r += '0';
  if (frac < 10) r += '0';
  r += std::to_string(frac);
  return r;
}

// Fixed 4-decimal ratio in [0,1] for share-of-total fields.
std::string FormatShare(double v) {
  if (v < 0) v = 0;
  uint64_t e4 = static_cast<uint64_t>(v * 10000.0 + 0.5);
  std::string r = std::to_string(e4 / 10000);
  uint64_t frac = e4 % 10000;
  r += '.';
  if (frac < 1000) r += '0';
  if (frac < 100) r += '0';
  if (frac < 10) r += '0';
  r += std::to_string(frac);
  return r;
}

// The one counter that is semantically a gauge (last observed value, not a
// monotonic count): flagged so the exposition doesn't lie about its TYPE.
bool IsGaugeCounter(const char* name) {
  return std::string_view(name) == "instant_restart_open_us";
}

void AppendHistogramOpenMetrics(const char* name, const LatencyHistogram& h,
                                std::string* out) {
  std::string family = "ariesim_";
  family += name;
  family += "_seconds";
  *out += "# TYPE " + family + " histogram\n";
  *out += "# UNIT " + family + " seconds\n";
  *out += "# HELP " + family + " Latency histogram " + name +
          " (see docs/METRICS.md).\n";
  uint64_t buckets[LatencyHistogram::kNumBuckets];
  h.CopyBuckets(buckets);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < LatencyHistogram::kNumBuckets; i++) {
    if (buckets[i] == 0) continue;
    cumulative += buckets[i];
    // `le` is the bucket's inclusive upper bound: the next bucket's lower
    // bound, in seconds. The last bucket's bound saturates into +Inf below.
    if (i + 1 < LatencyHistogram::kNumBuckets) {
      double le_s =
          static_cast<double>(LatencyHistogram::BucketLowerBound(i + 1)) /
          1e9;
      *out += family + "_bucket{le=\"" + FormatDouble(le_s) + "\"} " +
              std::to_string(cumulative) + "\n";
    }
  }
  uint64_t total = h.count();
  // Snapshot fuzziness under concurrent writers: never let the +Inf bucket
  // fall below the per-bucket cumulative sum we just emitted.
  if (total < cumulative) total = cumulative;
  *out += family + "_bucket{le=\"+Inf\"} " + std::to_string(total) + "\n";
  HistogramSnapshot s = h.Snapshot();
  *out += family + "_sum " +
          FormatDouble(static_cast<double>(s.sum_ns) / 1e9) + "\n";
  *out += family + "_count " + std::to_string(total) + "\n";
}

}  // namespace

std::string Metrics::ToOpenMetrics() const {
  std::string out;
  out.reserve(16384);
  const char* const* counter_names = CounterNames();
#define ARIESIM_COUNTER_PTR(n) &n,
  const std::atomic<uint64_t>* const counters[kCounterCount] = {
      ARIESIM_METRICS_COUNTERS(ARIESIM_COUNTER_PTR)};
#undef ARIESIM_COUNTER_PTR
  for (size_t i = 0; i < kCounterCount; i++) {
    const char* name = counter_names[i];
    std::string family = "ariesim_";
    family += name;
    uint64_t value = counters[i]->load(std::memory_order_relaxed);
    if (IsGaugeCounter(name)) {
      out += "# TYPE " + family + " gauge\n";
      out += "# HELP " + family + " Gauge " + name +
             " (see docs/METRICS.md).\n";
      out += family + " " + std::to_string(value) + "\n";
    } else {
      out += "# TYPE " + family + " counter\n";
      out += "# HELP " + family + " Total " + name +
             " events (see docs/METRICS.md).\n";
      out += family + "_total " + std::to_string(value) + "\n";
    }
  }
#define ARIESIM_OPENMETRICS_HISTOGRAM(n) \
  AppendHistogramOpenMetrics(#n, n, &out);
  ARIESIM_METRICS_HISTOGRAMS(ARIESIM_OPENMETRICS_HISTOGRAM)
#undef ARIESIM_OPENMETRICS_HISTOGRAM
  out += "# EOF\n";
  return out;
}

std::string Metrics::CommitBreakdownJson() const {
  // Segment histograms in ARIESIM_COMMIT_SEGMENTS order. The name pairing
  // (commit_seg_<segment>) is verified by commit_breakdown_test.cpp.
#define ARIESIM_SEGMENT_HIST(name) &commit_seg_##name,
  const LatencyHistogram* const segs[kCommitSegmentCount] = {
      ARIESIM_COMMIT_SEGMENTS(ARIESIM_SEGMENT_HIST)};
#undef ARIESIM_SEGMENT_HIST
  HistogramSnapshot snaps[kCommitSegmentCount];
  uint64_t total_sum_ns = 0;
  for (size_t i = 0; i < kCommitSegmentCount; i++) {
    snaps[i] = segs[i]->Snapshot();
    total_sum_ns += snaps[i].sum_ns;
  }
  const char* const* names = CommitBreakdown::SegmentNames();
  std::string out = "{\"segments\":{";
  for (size_t i = 0; i < kCommitSegmentCount; i++) {
    if (i > 0) out += ',';
    const HistogramSnapshot& s = snaps[i];
    out += "\"";
    out += names[i];
    out += "\":{\"count\":" + std::to_string(s.count);
    out += ",\"p50_us\":" + FormatUs(s.p50_us());
    out += ",\"p95_us\":" + FormatUs(s.p95_us());
    out += ",\"mean_us\":" + FormatUs(s.mean_us());
    out += ",\"sum_ms\":" + FormatUs(s.sum_ns / 1e6);
    out += ",\"share\":" +
           FormatShare(total_sum_ns == 0
                           ? 0.0
                           : static_cast<double>(s.sum_ns) /
                                 static_cast<double>(total_sum_ns));
    out += "}";
  }
  // Accounting check against the end-to-end commit_latency histogram: the
  // commit-path segments (log_append..wakeup) should explain >=90% of a
  // fsync-bound commit's latency; lock/latch waits accrue before Commit()
  // and are reported but excluded from the path sum.
  HistogramSnapshot commit = commit_latency.Snapshot();
  double path_p50_us = 0, path_mean_us = 0;
  for (size_t i = static_cast<size_t>(CommitSegment::log_append);
       i < kCommitSegmentCount; i++) {
    path_p50_us += snaps[i].p50_us();
    path_mean_us += snaps[i].mean_us();
  }
  out += "},\"accounted\":{\"commit_count\":" + std::to_string(commit.count);
  out += ",\"commit_p50_us\":" + FormatUs(commit.p50_us());
  out += ",\"commit_mean_us\":" + FormatUs(commit.mean_us());
  out += ",\"path_p50_us_sum\":" + FormatUs(path_p50_us);
  out += ",\"path_mean_us_sum\":" + FormatUs(path_mean_us);
  out += ",\"p50_share\":" +
         FormatShare(commit.p50_us() == 0 ? 0.0
                                          : path_p50_us / commit.p50_us());
  out += ",\"mean_share\":" +
         FormatShare(commit.mean_us() == 0 ? 0.0
                                           : path_mean_us / commit.mean_us());
  out += "}}";
  return out;
}

}  // namespace ariesim
