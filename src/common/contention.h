// Fixed-size lock-free contention sketch (PR 5, docs/OBSERVABILITY.md).
//
// Answers "which lock names / pages do waiters pile up on?" without adding a
// mutex or an unbounded map to the wait paths. A fixed power-of-two array of
// slots is claimed on first touch via CAS; subsequent waits on the same key
// are two relaxed fetch_adds. Collisions past a short probe window are
// counted in dropped() instead of evicting — the sketch is a top-N heat map,
// not an exact table, and under-counting cold keys is the acceptable failure
// mode. Two distinct keys with equal hashes merge into one slot (same
// safe-degradation argument as LockName's key hashing).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

namespace ariesim {

template <typename Key, typename Hash, size_t kSlots = 256>
class ContentionSketch {
  static_assert((kSlots & (kSlots - 1)) == 0, "kSlots must be a power of two");

 public:
  struct Entry {
    Key key{};
    uint64_t waits = 0;
    uint64_t wait_ns = 0;
  };

  /// Record one wait of `wait_ns` nanoseconds on `key`. Lock-free; safe from
  /// any thread.
  void RecordWait(const Key& key, uint64_t wait_ns) {
    uint64_t h = Hash{}(key);
    uint64_t tag = h < 2 ? h + 2 : h;  // 0 = empty, 1 = claim in progress
    size_t idx = static_cast<size_t>(h) & (kSlots - 1);
    for (size_t probe = 0; probe < kProbeDepth; ++probe) {
      Slot& s = slots_[(idx + probe) & (kSlots - 1)];
      uint64_t cur = s.tag.load(std::memory_order_acquire);
      if (cur == tag) {
        s.waits.fetch_add(1, std::memory_order_relaxed);
        s.wait_ns.fetch_add(wait_ns, std::memory_order_relaxed);
        return;
      }
      if (cur == 0) {
        uint64_t expected = 0;
        if (s.tag.compare_exchange_strong(expected, 1,
                                          std::memory_order_acq_rel)) {
          s.key = key;  // publish-once before the release store below
          s.waits.fetch_add(1, std::memory_order_relaxed);
          s.wait_ns.fetch_add(wait_ns, std::memory_order_relaxed);
          s.tag.store(tag, std::memory_order_release);
          return;
        }
        // Lost the claim race; re-examine this slot once, then move on.
        cur = s.tag.load(std::memory_order_acquire);
        if (cur == tag) {
          s.waits.fetch_add(1, std::memory_order_relaxed);
          s.wait_ns.fetch_add(wait_ns, std::memory_order_relaxed);
          return;
        }
      }
      // Slot claimed by another key (or mid-claim): linear-probe onward.
    }
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Populated entries sorted by total wait time, heaviest first, at most
  /// `n`. Concurrent RecordWait calls are fine; counts are a snapshot.
  std::vector<Entry> TopN(size_t n) const {
    std::vector<Entry> out;
    for (const Slot& s : slots_) {
      uint64_t tag = s.tag.load(std::memory_order_acquire);
      if (tag < 2) continue;
      Entry e;
      e.key = s.key;
      e.waits = s.waits.load(std::memory_order_relaxed);
      e.wait_ns = s.wait_ns.load(std::memory_order_relaxed);
      if (e.waits == 0) continue;  // Reset() raced a claim; skip empties
      out.push_back(e);
    }
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      return a.wait_ns > b.wait_ns;
    });
    if (out.size() > n) out.resize(n);
    return out;
  }

  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Zero the counts. Claimed slots keep their keys (a concurrent
  /// RecordWait may land between the two stores — the sketch loses at most
  /// that one wait, which is benign for a heat map).
  void Reset() {
    for (Slot& s : slots_) {
      s.waits.store(0, std::memory_order_relaxed);
      s.wait_ns.store(0, std::memory_order_relaxed);
    }
    dropped_.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kProbeDepth = 4;
  struct Slot {
    std::atomic<uint64_t> tag{0};
    Key key{};
    std::atomic<uint64_t> waits{0};
    std::atomic<uint64_t> wait_ns{0};
  };
  Slot slots_[kSlots];
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace ariesim
