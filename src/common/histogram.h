// Lock-free log-bucketed latency histogram (see docs/OBSERVABILITY.md).
//
// HdrHistogram-style bucketing: values are binned by their power of two
// (major bucket) subdivided into kSubBuckets linear sub-buckets, giving a
// constant relative error of at most 1/kSubBuckets (12.5%) across the whole
// 64-bit range with a fixed ~4 KiB of storage. Record() is three relaxed
// fetch_adds plus a CAS loop for the max — safe from any thread, never
// blocking, and cheap enough to leave on in production builds (the operations
// we measure — fsyncs, page reads, lock waits — are microseconds at best).
//
// Snapshot() copies the buckets with relaxed loads; under concurrent writers
// the result is a slightly fuzzy but internally consistent-enough view
// (counts never go backwards, percentiles are computed from whatever landed).
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>

#include "common/clock.h"

namespace ariesim {

/// Point-in-time copy of a histogram, with percentiles precomputed.
/// Durations are recorded in nanoseconds; the *_us helpers convert for
/// reporting (microseconds is the natural unit for engine latencies).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum_ns = 0;
  uint64_t max_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p95_ns = 0;
  uint64_t p99_ns = 0;

  double mean_us() const { return count == 0 ? 0.0 : sum_ns / 1000.0 / count; }
  double p50_us() const { return p50_ns / 1000.0; }
  double p95_us() const { return p95_ns / 1000.0; }
  double p99_us() const { return p99_ns / 1000.0; }
  double max_us() const { return max_ns / 1000.0; }
};

class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 3;                   // 8 sub-buckets
  static constexpr uint64_t kSubBuckets = 1u << kSubBucketBits;
  // Linear region [0, 2*kSubBuckets) (two majors' worth of slots) plus
  // kSubBuckets per remaining power of two: covers every uint64_t value.
  // Highest index is BucketFor(UINT64_MAX) = kNumBuckets - 1.
  static constexpr size_t kNumBuckets = (64 - kSubBucketBits + 1) * kSubBuckets;

  /// Bucket index for a value. Monotone in `v`; exact below 2*kSubBuckets,
  /// then one bucket per 1/kSubBuckets of each power-of-two range.
  static constexpr size_t BucketFor(uint64_t v) {
    int width = 64 - std::countl_zero(v | 1);  // >= 1
    if (width <= kSubBucketBits + 1) return static_cast<size_t>(v);
    int shift = width - kSubBucketBits - 1;
    uint64_t top = v >> shift;  // in [kSubBuckets, 2*kSubBuckets)
    return static_cast<size_t>(shift + 1) * kSubBuckets +
           static_cast<size_t>(top - kSubBuckets);
  }

  /// Inclusive lower bound of a bucket's value range (inverse of BucketFor).
  static constexpr uint64_t BucketLowerBound(size_t bucket) {
    if (bucket < 2 * kSubBuckets) return bucket;
    int shift = static_cast<int>(bucket / kSubBuckets) - 1;
    uint64_t top = kSubBuckets + bucket % kSubBuckets;
    return top << shift;
  }

  /// Midpoint of a bucket's range — what percentiles report for it.
  static constexpr uint64_t BucketMidpoint(size_t bucket) {
    if (bucket < 2 * kSubBuckets) return bucket;
    int shift = static_cast<int>(bucket / kSubBuckets) - 1;
    return BucketLowerBound(bucket) + (uint64_t{1} << shift) / 2;
  }

  void Record(uint64_t ns) {
    buckets_[BucketFor(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(ns, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (ns > prev &&
           !max_.compare_exchange_weak(prev, ns, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot s;
    uint64_t counts[kNumBuckets];
    uint64_t total = 0;
    for (size_t i = 0; i < kNumBuckets; i++) {
      counts[i] = buckets_[i].load(std::memory_order_relaxed);
      total += counts[i];
    }
    s.count = total;
    s.sum_ns = sum_.load(std::memory_order_relaxed);
    s.max_ns = max_.load(std::memory_order_relaxed);
    s.p50_ns = ValueAt(counts, total, 0.50);
    s.p95_ns = ValueAt(counts, total, 0.95);
    s.p99_ns = ValueAt(counts, total, 0.99);
    // The max is tracked exactly; never report a bucket midpoint above it.
    s.p50_ns = std::min(s.p50_ns, s.max_ns);
    s.p95_ns = std::min(s.p95_ns, s.max_ns);
    s.p99_ns = std::min(s.p99_ns, s.max_ns);
    return s;
  }

  /// Relaxed copy of all kNumBuckets per-bucket counts into `out` (sized by
  /// the caller). Feeds the OpenMetrics bucket exposition; same fuzziness
  /// contract as Snapshot().
  void CopyBuckets(uint64_t* out) const {
    for (size_t i = 0; i < kNumBuckets; i++) {
      out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
  }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  /// Midpoint of the bucket holding the `q`-quantile observation.
  static uint64_t ValueAt(const uint64_t* counts, uint64_t total, double q) {
    if (total == 0) return 0;
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
    if (rank >= total) rank = total - 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < kNumBuckets; i++) {
      seen += counts[i];
      if (seen > rank) return BucketMidpoint(i);
    }
    return BucketMidpoint(kNumBuckets - 1);
  }

  std::atomic<uint64_t> buckets_[kNumBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// RAII latency recorder: records the elapsed time into `h` on scope exit.
/// A null histogram makes it a no-op (components with no Metrics wired).
class ScopedLatency {
 public:
  explicit ScopedLatency(LatencyHistogram* h)
      : hist_(h), start_ns_(h != nullptr ? MonotonicNowNs() : 0) {}
  ~ScopedLatency() {
    if (hist_ != nullptr) hist_->Record(MonotonicNowNs() - start_ns_);
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

  /// Detach without recording (e.g. the operation turned out to be a no-op).
  void Cancel() { hist_ = nullptr; }

 private:
  LatencyHistogram* hist_;
  uint64_t start_ns_;
};

}  // namespace ariesim
