// Status / Result error-handling primitives, in the style used by
// RocksDB and Arrow: no exceptions cross module boundaries; every fallible
// operation returns a Status (or Result<T> when it also produces a value).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace ariesim {

/// Error taxonomy for the engine. Codes are stable and coarse; the message
/// carries detail.
enum class Code : int {
  kOk = 0,
  kNotFound = 1,        ///< key / record / page absent
  kDuplicate = 2,       ///< unique-key violation
  kBusy = 3,            ///< conditional latch/lock request not grantable now
  kDeadlock = 4,        ///< lock request chosen as deadlock victim
  kAborted = 5,         ///< transaction aborted (rolled back)
  kIOError = 6,         ///< disk / file failure
  kCorruption = 7,      ///< checksum or structural invariant violation
  kInvalidArgument = 8, ///< caller misuse
  kNoSpace = 9,         ///< page cannot hold the entry
  kRetry = 10,          ///< internal: restart the operation (traversal race)
  kNotSupported = 11,
  kReadOnly = 12,       ///< engine degraded to read-only / failed; write rejected
};

/// Lightweight status object. Ok status allocates nothing.
class Status {
 public:
  Status() : code_(Code::kOk) {}
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string m = "not found") {
    return Status(Code::kNotFound, std::move(m));
  }
  static Status Duplicate(std::string m = "duplicate key") {
    return Status(Code::kDuplicate, std::move(m));
  }
  static Status Busy(std::string m = "busy") {
    return Status(Code::kBusy, std::move(m));
  }
  static Status Deadlock(std::string m = "deadlock victim") {
    return Status(Code::kDeadlock, std::move(m));
  }
  static Status Aborted(std::string m = "transaction aborted") {
    return Status(Code::kAborted, std::move(m));
  }
  static Status IOError(std::string m) { return Status(Code::kIOError, std::move(m)); }
  static Status Corruption(std::string m) {
    return Status(Code::kCorruption, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(Code::kInvalidArgument, std::move(m));
  }
  static Status NoSpace(std::string m = "page full") {
    return Status(Code::kNoSpace, std::move(m));
  }
  static Status Retry(std::string m = "retry traversal") {
    return Status(Code::kRetry, std::move(m));
  }
  static Status NotSupported(std::string m = "not supported") {
    return Status(Code::kNotSupported, std::move(m));
  }
  static Status ReadOnly(std::string m = "engine is read-only") {
    return Status(Code::kReadOnly, std::move(m));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsDuplicate() const { return code_ == Code::kDuplicate; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsDeadlock() const { return code_ == Code::kDeadlock; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsNoSpace() const { return code_ == Code::kNoSpace; }
  bool IsRetry() const { return code_ == Code::kRetry; }
  bool IsReadOnly() const { return code_ == Code::kReadOnly; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return "error(" + std::to_string(static_cast<int>(code_)) + "): " + msg_;
  }

 private:
  Code code_;
  std::string msg_;
};

/// Result<T>: a Status or a value. Use `ok()` before `value()`.
template <typename T>
class Result {
 public:
  Result(T value) : var_(std::move(value)) {}                 // NOLINT implicit
  Result(Status status) : var_(std::move(status)) {           // NOLINT implicit
    assert(!std::get<Status>(var_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(var_); }
  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(var_));
  }
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(var_);
  }

 private:
  std::variant<Status, T> var_;
};

#define ARIES_RETURN_NOT_OK(expr)          \
  do {                                     \
    ::ariesim::Status _st = (expr);        \
    if (!_st.ok()) return _st;             \
  } while (0)

#define ARIES_CONCAT_INNER(a, b) a##b
#define ARIES_CONCAT(a, b) ARIES_CONCAT_INNER(a, b)

#define ARIES_ASSIGN_OR_RETURN(lhs, expr) \
  ARIES_ASSIGN_OR_RETURN_IMPL(ARIES_CONCAT(_aries_res_, __COUNTER__), lhs, expr)

#define ARIES_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

}  // namespace ariesim
