#include "common/metrics_sampler.h"

#include <unistd.h>

#include <chrono>

#include "common/clock.h"

namespace ariesim {

MetricsSampler::MetricsSampler(const Metrics* metrics, uint32_t interval_ms,
                               std::string jsonl_path, size_t ring_capacity)
    : metrics_(metrics),
      interval_ms_(interval_ms),
      jsonl_path_(std::move(jsonl_path)),
      ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

MetricsSampler::~MetricsSampler() {
  Stop();
  std::lock_guard<std::mutex> lk(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void MetricsSampler::Start() {
  if (interval_ms_ == 0) return;  // manual mode: no thread, ever
  std::lock_guard<std::mutex> lk(run_mu_);
  if (run_flag_) return;
  run_flag_ = true;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void MetricsSampler::Stop() {
  {
    std::lock_guard<std::mutex> lk(run_mu_);
    if (!run_flag_ && !thread_.joinable()) return;
    run_flag_ = false;
    run_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  running_ = false;
  // Every line is already fflushed as it is written (the stream's tail
  // survives a process crash); fsync here so a stopped stream — including
  // the final sample the loop just took — also survives power loss.
  std::lock_guard<std::mutex> lk(mu_);
  if (file_ != nullptr) {
    std::fflush(file_);
    ::fsync(::fileno(file_));
  }
}

void MetricsSampler::Loop() {
  // First sample immediately: the stream starts with the state at Start(),
  // not one interval later.
  SampleOnce();
  std::unique_lock<std::mutex> lk(run_mu_);
  while (run_flag_) {
    run_cv_.wait_for(lk, std::chrono::milliseconds(interval_ms_),
                     [&] { return !run_flag_; });
    if (!run_flag_) break;
    lk.unlock();
    SampleOnce();
    lk.lock();
  }
  lk.unlock();
  // Final sample: the stream always ends with the run's endpoint state.
  SampleOnce();
}

MetricsSample MetricsSampler::SampleOnce() {
  MetricsSample s;
  s.t_ns = MonotonicNowNs();
  s.counters.reserve(Metrics::kCounterCount);
  s.hists.reserve(Metrics::kHistogramCount);
#define ARIESIM_SAMPLE_COUNTER(n) \
  s.counters.push_back(metrics_->n.load(std::memory_order_relaxed));
  ARIESIM_METRICS_COUNTERS(ARIESIM_SAMPLE_COUNTER)
#undef ARIESIM_SAMPLE_COUNTER
#define ARIESIM_SAMPLE_HISTOGRAM(n) s.hists.push_back(metrics_->n.Snapshot());
  ARIESIM_METRICS_HISTOGRAMS(ARIESIM_SAMPLE_HISTOGRAM)
#undef ARIESIM_SAMPLE_HISTOGRAM

  std::lock_guard<std::mutex> lk(mu_);
  s.seq = seq_++;
  std::string line;
  if (!jsonl_path_.empty()) {
    line = ToJsonl(s, have_prev_ ? &prev_ : nullptr);
  }
  prev_ = s;
  have_prev_ = true;
  ring_.push_back(s);
  while (ring_.size() > ring_capacity_) ring_.pop_front();
  if (!line.empty()) WriteLine(line);
  return s;
}

std::vector<MetricsSample> MetricsSampler::RecentSamples(size_t max) const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t n = ring_.size();
  size_t take = (max == 0 || max > n) ? n : max;
  return std::vector<MetricsSample>(ring_.end() - take, ring_.end());
}

size_t MetricsSampler::sample_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ring_.size();
}

std::string MetricsSampler::ToJsonl(const MetricsSample& s,
                                    const MetricsSample* prev) {
  // Rates are per wall-clock second between the two samples; the first
  // sample (prev == nullptr) reports deltas against zero with rate 0 (no
  // baseline interval to divide by).
  const double dt_s =
      prev == nullptr
          ? 0.0
          : static_cast<double>(s.t_ns - prev->t_ns) / 1e9;
  auto rate = [&](uint64_t delta) -> std::string {
    if (dt_s <= 0.0) return "0.000";
    double r = static_cast<double>(delta) / dt_s;
    uint64_t milli = static_cast<uint64_t>(r * 1000.0 + 0.5);
    std::string out = std::to_string(milli / 1000);
    uint64_t frac = milli % 1000;
    out += '.';
    if (frac < 100) out += '0';
    if (frac < 10) out += '0';
    out += std::to_string(frac);
    return out;
  };
  const char* const* cnames = Metrics::CounterNames();
  const char* const* hnames = Metrics::HistogramNames();
  std::string out;
  out.reserve(4096);
  out += "{\"seq\":" + std::to_string(s.seq);
  out += ",\"t_ns\":" + std::to_string(s.t_ns);
  out += ",\"counters\":{";
  for (size_t i = 0; i < Metrics::kCounterCount; i++) {
    if (i > 0) out += ',';
    out += '"';
    out += cnames[i];
    out += "\":" + std::to_string(s.counters[i]);
  }
  out += "},\"deltas\":{";
  for (size_t i = 0; i < Metrics::kCounterCount; i++) {
    if (i > 0) out += ',';
    uint64_t prev_v = prev == nullptr ? 0 : prev->counters[i];
    // Counters are monotonic; a Reset() between samples shows up as a
    // negative delta, clamped to 0 (and flagged by the replay test).
    uint64_t delta = s.counters[i] >= prev_v ? s.counters[i] - prev_v : 0;
    out += '"';
    out += cnames[i];
    out += "\":" + std::to_string(delta);
  }
  out += "},\"rates_per_s\":{";
  for (size_t i = 0; i < Metrics::kCounterCount; i++) {
    if (i > 0) out += ',';
    uint64_t prev_v = prev == nullptr ? 0 : prev->counters[i];
    uint64_t delta = s.counters[i] >= prev_v ? s.counters[i] - prev_v : 0;
    out += '"';
    out += cnames[i];
    out += "\":" + rate(delta);
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < Metrics::kHistogramCount; i++) {
    if (i > 0) out += ',';
    out += '"';
    out += hnames[i];
    out += "\":{\"count\":" + std::to_string(s.hists[i].count);
    out += ",\"sum_ns\":" + std::to_string(s.hists[i].sum_ns);
    out += ",\"p50_ns\":" + std::to_string(s.hists[i].p50_ns);
    out += ",\"p95_ns\":" + std::to_string(s.hists[i].p95_ns);
    out += ",\"p99_ns\":" + std::to_string(s.hists[i].p99_ns);
    out += ",\"max_ns\":" + std::to_string(s.hists[i].max_ns);
    out += "}";
  }
  out += "}}";
  return out;
}

void MetricsSampler::WriteLine(const std::string& line) {
  if (file_ == nullptr) {
    file_ = std::fopen(jsonl_path_.c_str(), "a");
    if (file_ == nullptr) return;  // stream silently off; ring still works
  }
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

}  // namespace ariesim
