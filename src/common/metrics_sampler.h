// Time-series metrics sampler (PR 9; docs/OBSERVABILITY.md "Time-series
// sampler"). Snapshots the full Metrics registry — every counter and every
// histogram — at a fixed interval, keeps a bounded in-memory ring of samples,
// and optionally streams one JSONL line per sample (cumulative values plus
// deltas and per-second rates against the previous sample) to a file.
//
// Endpoint numbers hide trajectories: a bench that averages 30 s of commits
// can't show the fsync stall at second 12 or the lock convoy that built up
// and drained. The ring gives in-process consumers (ariesh .watch, tests)
// the last N snapshots; the JSONL file gives offline analysis the whole run.
//
// Off by default: Database spawns a sampler only when
// Options::metrics_sample_interval_ms > 0 — the default configuration
// allocates nothing and starts no thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace ariesim {

/// One snapshot of the registry. Counter/histogram slots are indexed in
/// declaration order (Metrics::CounterNames() / HistogramNames()).
struct MetricsSample {
  uint64_t seq = 0;       // 0-based sample number since Start()
  uint64_t t_ns = 0;      // monotonic clock at snapshot time
  std::vector<uint64_t> counters;          // kCounterCount cumulative values
  std::vector<HistogramSnapshot> hists;    // kHistogramCount snapshots
};

class MetricsSampler {
 public:
  /// `interval_ms` == 0 means manual mode: Start() is a no-op and samples
  /// are taken only via SampleOnce() (ariesh .watch and the tests drive it
  /// this way). `jsonl_path` empty disables the file stream. `ring_capacity`
  /// bounds the in-memory deque; the oldest sample is dropped at the cap.
  MetricsSampler(const Metrics* metrics, uint32_t interval_ms,
                 std::string jsonl_path, size_t ring_capacity = 512);
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Spawn the background thread (no-op in manual mode or if running).
  void Start();
  /// Stop and join the thread; takes one final sample first so the stream
  /// always ends with the run's endpoint state. Safe to call repeatedly.
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Take one sample now (any thread). Returns a copy of it.
  MetricsSample SampleOnce();

  /// Copy of the most recent `max` samples, oldest first (all if max == 0).
  std::vector<MetricsSample> RecentSamples(size_t max = 0) const;
  size_t sample_count() const;

  /// Render one sample as a JSONL line (no trailing newline): cumulative
  /// counters, deltas and per-second rates vs `prev` (pass nullptr for the
  /// first sample — deltas are then against zero), and histogram
  /// count/sum_ns/percentiles. Exposed for ariesh .watch and the tests.
  static std::string ToJsonl(const MetricsSample& s, const MetricsSample* prev);

 private:
  void Loop();
  /// Append `line` + '\n' to the JSONL file, opening it lazily.
  void WriteLine(const std::string& line);

  const Metrics* metrics_;
  const uint32_t interval_ms_;
  const std::string jsonl_path_;
  const size_t ring_capacity_;

  mutable std::mutex mu_;          // guards ring_, prev_, seq_, file_
  std::deque<MetricsSample> ring_;
  MetricsSample prev_;             // last sample taken (for deltas)
  bool have_prev_ = false;
  uint64_t seq_ = 0;
  std::FILE* file_ = nullptr;

  std::mutex run_mu_;              // guards run_flag_ + cv for Stop()
  std::condition_variable run_cv_;
  bool run_flag_ = false;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace ariesim
