// Per-transaction commit critical-path attribution (PR 9).
//
// A commit's latency is the sum of a handful of mechanically distinct waits:
// lock acquisition, latch/OLC-restart backoff, the commit-record log append,
// the time spent queued behind the group-commit batch, the batch's write and
// fsync, and finally the wakeup handoff back to the waiter. ROADMAP item 1
// (parallel WAL) needs those segments separated — "fsync-bound" vs
// "queue-bound" vs "lock-bound" are different engineering problems — so every
// Transaction carries a CommitBreakdown accumulator and the wait sites in
// src/lock/, src/buffer/, src/btree/ and src/wal/ add their nanoseconds to
// whichever transaction is bound to the current thread.
//
// Attribution model: segments are accumulated via a thread_local pointer to
// the running transaction's breakdown (BindCommitBreakdown). Database::Begin/
// Commit/Rollback bind it around engine calls; the commit path re-binds it
// explicitly so commit-side segments (log_append, queue_wait, batch_write,
// fsync, wakeup) always attribute to the committing transaction even when a
// thread interleaves several transactions. Operation-phase segments
// (lock_wait, latch_wait) are best-effort: they attribute to whichever
// transaction the thread had bound when the wait happened, which matches the
// common one-txn-per-thread usage exactly. See docs/OBSERVABILITY.md
// "Commit critical-path attribution".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/clock.h"

namespace ariesim {

// Segment declaration order is emission order everywhere (histogram registry,
// Stats() JSON, trace instants). The commit-path subset — everything from the
// commit-record append to the durability ack — is {log_append, queue_wait,
// batch_write, fsync, wakeup}; {lock_wait, latch_wait} accrue during the
// operation phase before Commit() is called.
//
// NOTE: the seven `X(commit_seg_*)` histogram entries in
// ARIESIM_METRICS_HISTOGRAMS (common/metrics.h) mirror this list by hand —
// nested X-macro expansion can't generate them — and
// commit_breakdown_test.cpp verifies the two stay in lockstep.
#define ARIESIM_COMMIT_SEGMENTS(X) \
  X(lock_wait)   /* blocked LockManager::Lock waits */                    \
  X(latch_wait)  /* contended page/tree latches + OLC restart backoff */  \
  X(log_append)  /* serializing commit+end records into the WAL buffer */ \
  X(queue_wait)  /* enqueue -> the durable batch's write started */       \
  X(batch_write) /* the durable batch's pwrite of the WAL tail */         \
  X(fsync)       /* the durable batch's fdatasync */                      \
  X(wakeup)      /* batch durable -> waiter observed flushed_lsn */

enum class CommitSegment : int {
#define ARIESIM_SEGMENT_ENUM(name) name,
  ARIESIM_COMMIT_SEGMENTS(ARIESIM_SEGMENT_ENUM)
#undef ARIESIM_SEGMENT_ENUM
};

#define ARIESIM_COUNT_ONE(name) +1
inline constexpr size_t kCommitSegmentCount =
    0 ARIESIM_COMMIT_SEGMENTS(ARIESIM_COUNT_ONE);
#undef ARIESIM_COUNT_ONE

/// Plain per-transaction accumulator. Not thread-safe by itself: a breakdown
/// is only ever written through the owning thread's TLS binding, and read
/// after the transaction finished.
struct CommitBreakdown {
  uint64_t ns[kCommitSegmentCount] = {};

  void Add(CommitSegment seg, uint64_t delta_ns) {
    ns[static_cast<size_t>(seg)] += delta_ns;
  }
  uint64_t Get(CommitSegment seg) const {
    return ns[static_cast<size_t>(seg)];
  }
  uint64_t TotalNs() const {
    uint64_t total = 0;
    for (size_t i = 0; i < kCommitSegmentCount; i++) total += ns[i];
    return total;
  }
  void Reset() {
    for (size_t i = 0; i < kCommitSegmentCount; i++) ns[i] = 0;
  }

  /// Segment names, in declaration (= emission) order.
  static const char* const* SegmentNames() {
#define ARIESIM_SEGMENT_NAME(name) #name,
    static const char* const kNames[] = {
        ARIESIM_COMMIT_SEGMENTS(ARIESIM_SEGMENT_NAME)};
#undef ARIESIM_SEGMENT_NAME
    return kNames;
  }
};

namespace commit_breakdown_internal {
// The transaction currently accumulating segments on this thread, or nullptr
// (waits outside any bound transaction — background threads, recovery — are
// simply not attributed).
inline thread_local CommitBreakdown* tls_breakdown = nullptr;
}  // namespace commit_breakdown_internal

/// Bind `bd` (may be nullptr) as this thread's attribution target; returns
/// the previous binding so callers can restore it.
inline CommitBreakdown* BindCommitBreakdown(CommitBreakdown* bd) {
  CommitBreakdown* prev = commit_breakdown_internal::tls_breakdown;
  commit_breakdown_internal::tls_breakdown = bd;
  return prev;
}

inline CommitBreakdown* CurrentCommitBreakdown() {
  return commit_breakdown_internal::tls_breakdown;
}

/// Per-thread operation-phase scratch accumulator. Database::Begin resets it
/// and binds it; TransactionManager::Commit adopts its contents into the
/// committing transaction's own breakdown. Thread-lifetime storage, so a
/// persistent binding to it can never dangle (a Transaction's breakdown is
/// only ever bound inside commit's RAII scope).
inline CommitBreakdown& ThreadCommitBreakdown() {
  static thread_local CommitBreakdown bd;
  return bd;
}

/// Add `delta_ns` to the bound transaction's segment; no-op when unbound.
inline void AddCommitSegment(CommitSegment seg, uint64_t delta_ns) {
  CommitBreakdown* bd = commit_breakdown_internal::tls_breakdown;
  if (bd != nullptr) bd->Add(seg, delta_ns);
}

/// RAII save/rebind/restore, used by Database::Begin/Commit/Rollback and the
/// commit path so nested engine calls attribute to the right transaction.
class ScopedCommitBreakdownBinding {
 public:
  explicit ScopedCommitBreakdownBinding(CommitBreakdown* bd)
      : prev_(BindCommitBreakdown(bd)) {}
  ~ScopedCommitBreakdownBinding() { BindCommitBreakdown(prev_); }
  ScopedCommitBreakdownBinding(const ScopedCommitBreakdownBinding&) = delete;
  ScopedCommitBreakdownBinding& operator=(const ScopedCommitBreakdownBinding&) =
      delete;

 private:
  CommitBreakdown* prev_;
};

/// RAII elapsed-time recorder into the bound transaction's segment: the
/// attribution sibling of ScopedLatency. Resolves the TLS binding at
/// destruction time (not construction) so a wait that spans a rebinding still
/// lands somewhere sensible, and is free when no transaction is bound.
class ScopedCommitSegment {
 public:
  explicit ScopedCommitSegment(CommitSegment seg)
      : seg_(seg), start_ns_(MonotonicNowNs()) {}
  ~ScopedCommitSegment() {
    AddCommitSegment(seg_, MonotonicNowNs() - start_ns_);
  }
  ScopedCommitSegment(const ScopedCommitSegment&) = delete;
  ScopedCommitSegment& operator=(const ScopedCommitSegment&) = delete;

 private:
  CommitSegment seg_;
  uint64_t start_ns_;
};

}  // namespace ariesim
