// Fail-safe degradation state machine (see docs/ARCHITECTURE.md, "Engine
// health"). The engine starts kHealthy; an unrepairable page or a WAL flush
// that keeps failing past disk retries trips it to kReadOnly (writes are
// rejected with Status::ReadOnly, reads are still served from intact pages)
// or kFailed. Transitions are monotonic: the engine never self-promotes back
// to a healthier state — only a fresh Open() after the fault is fixed does.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <string>

#include "common/metrics.h"
#include "common/status.h"

namespace ariesim {

enum class EngineHealth : uint8_t {
  kHealthy = 0,
  kReadOnly = 1,  ///< writes rejected, reads served
  kFailed = 2,    ///< storage no longer trustworthy; only Close() is useful
};

inline const char* EngineHealthName(EngineHealth h) {
  switch (h) {
    case EngineHealth::kHealthy: return "healthy";
    case EngineHealth::kReadOnly: return "read-only";
    case EngineHealth::kFailed: return "failed";
  }
  return "?";
}

class HealthMonitor {
 public:
  explicit HealthMonitor(Metrics* metrics = nullptr) : metrics_(metrics) {}

  EngineHealth state() const {
    return static_cast<EngineHealth>(state_.load(std::memory_order_acquire));
  }

  /// Fast-path gate for every write entry point. Lock-free while healthy.
  Status CheckWritable() const {
    EngineHealth h = state();
    if (h == EngineHealth::kHealthy) return Status::OK();
    return Status::ReadOnly("engine is " + std::string(EngineHealthName(h)) +
                            ": " + reason());
  }

  /// Degrade to `to`. Monotonic: a request to move to a healthier (or equal)
  /// state is a no-op, so concurrent trippers and repeat offenders are safe.
  /// The trip observer (if any) runs after mu_ is released — it may read
  /// state()/reason() freely — and only for transitions that actually moved
  /// the state.
  void Trip(EngineHealth to, const std::string& reason) {
    TripObserver observer;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (static_cast<uint8_t>(to) <= state_.load(std::memory_order_relaxed)) {
        return;
      }
      state_.store(static_cast<uint8_t>(to), std::memory_order_release);
      reason_ = reason;
      if (metrics_ != nullptr) metrics_->health_trips++;
      observer = on_trip_;
    }
    if (observer) observer(to, reason);
  }

  std::string reason() const {
    std::lock_guard<std::mutex> lk(mu_);
    return reason_;
  }

  /// Observe successful degradations (the flight recorder force-captures on
  /// every trip). Invoked outside the monitor's lock, possibly from any
  /// engine thread — including under the WAL flush mutex when the trip
  /// originates there.
  using TripObserver = std::function<void(EngineHealth, const std::string&)>;
  void SetTripObserver(TripObserver obs) {
    std::lock_guard<std::mutex> lk(mu_);
    on_trip_ = std::move(obs);
  }

 private:
  Metrics* metrics_;
  std::atomic<uint8_t> state_{0};
  mutable std::mutex mu_;
  std::string reason_;
  TripObserver on_trip_;  // under mu_; copied out before invocation
};

}  // namespace ariesim
