// Monotonic clock helper shared by the latency histograms (histogram.h)
// and the event tracer (trace.h). steady_clock so that suspend/NTP never
// produces negative durations.
#pragma once

#include <chrono>
#include <cstdint>

namespace ariesim {

/// Nanoseconds on the process-wide monotonic clock. Only differences are
/// meaningful; the epoch is unspecified (typically boot time).
inline uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace ariesim
