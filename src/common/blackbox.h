// Durable flight recorder (PR 10; docs/OBSERVABILITY.md "Flight recorder").
//
// A BlackBox is a bounded on-disk incident record beside data.db: one JSON
// snapshot of every observability surface the engine exposes — tracer ring
// excerpt, OpenMetrics exposition, lock forensics, commit breakdown, health
// state, WAL tail summary, fault-injector state — refreshed on a background
// cadence and force-captured the instant something goes wrong (health trip,
// group-commit flush failure, simulated crash, explicit CaptureIncident).
// ARIES restart reconstructs *state* from the WAL; the black box preserves
// the *explanation*, which otherwise lives only in memory and evaporates at
// the crash.
//
// Durability protocol: each capture is double-buffered through a tmp file —
// the snapshot is written and fsynced into `<path>.tmp.<0|1>` (alternating
// slots, so a crash mid-write never touches the last good record) and then
// atomically renamed over `<path>`. Readers therefore always see either the
// previous complete snapshot or the new complete snapshot, never a torn one.
//
// The builder callback is installed by Database and must be safe to run from
// any thread, including under LogManager's flush mutex (the flush-failure
// trigger fires there): it may only touch lock-free/atomic accessors or
// mutexes that are never held while waiting on the WAL mutex.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "common/status.h"

namespace ariesim {

/// Append `s` to `*out` as JSON string content (no surrounding quotes):
/// escapes `"`, `\` and control characters.
void AppendJsonEscaped(const std::string& s, std::string* out);

/// Validate that `text` is one complete JSON value (RFC 8259 subset: full
/// grammar, \u escapes accepted, depth-limited). On success, `fields` (if
/// non-null) receives every scalar reachable within two object levels as
/// dotted-path -> unescaped text (e.g. "wal.durable_lsn" -> "4096",
/// "trigger" -> "simulate_crash"); deeper scalars and array elements are
/// validated but not collected. Shared by blackbox_dump, the schema lint and
/// the tests so "parses" means the same thing everywhere.
bool ParseJson(const std::string& text,
               std::map<std::string, std::string>* fields, std::string* err);

class BlackBox {
 public:
  /// The snapshot builder returns the engine-state fields of the envelope as
  /// a JSON fragment: either empty, or a string starting with ',' followed
  /// by `"key":value` pairs (the envelope's own fields precede it).
  using SnapshotBuilder =
      std::function<std::string(const char* trigger, const std::string& reason)>;

  /// `path` is the snapshot file (conventionally `<dir>/blackbox.json`).
  /// `metrics` may be null (no counters are bumped then).
  BlackBox(std::string path, Metrics* metrics);
  ~BlackBox();  // stops the cadence thread; does not capture

  BlackBox(const BlackBox&) = delete;
  BlackBox& operator=(const BlackBox&) = delete;

  /// Install the engine-state builder. Call before the first Capture.
  void SetSnapshotBuilder(SnapshotBuilder builder);

  /// Persist a summary of the previous incarnation's record (loaded at
  /// open): every snapshot of this incarnation embeds it as `"prev"`, so
  /// the breadcrumb survives cadence overwrites of the annotated file.
  void SetPreviousIncident(std::string summary_json_object);

  /// Spawn the cadence thread: one Capture("cadence") per interval. The
  /// first capture happens one full interval after the call, so the
  /// annotated previous record is not immediately overwritten. No-op when
  /// interval_ms == 0 or a thread is already running.
  void StartPeriodic(uint32_t interval_ms);
  /// Stop and join the cadence thread. Captures stay possible afterwards
  /// (SimulateCrash stops the cadence, then force-captures).
  void Stop();
  bool periodic_running() const {
    return periodic_running_.load(std::memory_order_acquire);
  }

  /// Build one snapshot and atomically replace the on-disk record.
  /// `trigger` is the capture class ("cadence", "health_trip",
  /// "flush_failure", "simulate_crash", "torn_crash", "manual",
  /// "clean_shutdown"); `reason` is free-form prose. Thread-safe; captures
  /// are serialized. Safe to call under the WAL flush mutex (see header
  /// comment for what the builder may touch).
  Status Capture(const char* trigger, const std::string& reason);

  /// Atomically replace the on-disk record with `json` verbatim (used to
  /// rewrite the previous incarnation's record with its recovery
  /// annotation). Counts bytes but not a capture.
  Status WriteRaw(const std::string& json);

  /// Snapshots written by this instance (all triggers).
  uint64_t captures() const {
    return captures_.load(std::memory_order_acquire);
  }
  const std::string& path() const { return path_; }

  /// Read a whole file into `*out` (the black box of a previous
  /// incarnation, typically). NotFound when absent.
  static Status ReadFile(const std::string& path, std::string* out);

  /// Insert `,"key":value_json` before the final '}' of `object_json`.
  /// Returns the input unchanged when it does not end in '}'.
  static std::string SpliceField(const std::string& object_json,
                                 const std::string& key,
                                 const std::string& value_json);

 private:
  void PeriodicLoop(uint32_t interval_ms);
  Status WriteAtomic(const std::string& json);

  const std::string path_;
  Metrics* const metrics_;

  std::mutex mu_;  // serializes captures and raw writes
  SnapshotBuilder builder_;
  std::string prev_incident_;  // summary object of the prior incarnation
  uint64_t seq_ = 0;           // envelope sequence number, under mu_
  int tmp_slot_ = 0;           // alternating tmp-file suffix, under mu_
  // Last non-cadence capture of this incarnation (embedded as "incident"
  // in later snapshots so it survives cadence overwrites). Under mu_.
  std::string incident_memo_;

  std::atomic<uint64_t> captures_{0};

  std::thread periodic_;
  std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool run_flag_ = false;
  std::atomic<bool> periodic_running_{false};
};

}  // namespace ariesim
