// Aggregated engine context threaded through the resource managers so each
// module depends on interfaces, not on Database.
#pragma once

#include "common/config.h"
#include "common/metrics.h"

namespace ariesim {

class BufferPool;
class DiskManager;
class LogManager;
class LockManager;
class TransactionManager;
class SpaceManager;
class RecoveryManager;
class HealthMonitor;

struct EngineContext {
  BufferPool* pool = nullptr;
  DiskManager* disk = nullptr;
  LogManager* log = nullptr;
  LockManager* locks = nullptr;
  TransactionManager* txns = nullptr;
  SpaceManager* space = nullptr;
  RecoveryManager* recovery = nullptr;
  HealthMonitor* health = nullptr;
  Metrics* metrics = nullptr;
  Options options;
};

}  // namespace ariesim
