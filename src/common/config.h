// Engine configuration knobs. Tests shrink the page size to force SMOs with
// tiny workloads; benches use the default 4 KiB pages.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ariesim {

/// Which locking protocol an index uses. See DESIGN.md §2 and the paper's
/// §2.1 (data-only vs index-specific locking) and §1 (ARIES/KVL baseline).
enum class LockingProtocolKind : uint8_t {
  kDataOnly = 0,        ///< ARIES/IM default: key lock == record lock
  kIndexSpecific = 1,   ///< ARIES/IM variant: lock (index, key-value, RID)
  kKeyValue = 2,        ///< ARIES/KVL baseline: lock (index, key-value)
  kNone = 3,            ///< no index-level locking (single-threaded benches)
};

/// Lock granularity for a table's data.
enum class LockGranularity : uint8_t {
  kRecord = 0,  ///< lock individual RIDs (finest)
  kPage = 1,    ///< lock data page ids
  kTable = 2,   ///< one lock per table (coarsest)
};

/// Who executes a group-commit flush (see docs/ARCHITECTURE.md, "Group
/// commit").
enum class GroupCommitMode : uint8_t {
  /// A dedicated flusher thread owns every commit flush; committers only
  /// enqueue their request and sleep.
  kFlusher = 0,
  /// No extra thread: the first committer to find no flush in progress is
  /// elected leader and flushes on behalf of every waiter.
  kLeader = 1,
};

struct Options {
  /// Size of every page in bytes. Must be a power of two, >= 256.
  size_t page_size = 4096;

  /// Number of buffer-pool frames.
  size_t buffer_pool_frames = 1024;

  /// WAL in-memory buffer capacity in bytes.
  size_t log_buffer_size = 1 << 20;

  /// fdatasync the log file on every flush (true for durability; tests and
  /// some benches disable it to measure CPU-bound path lengths).
  bool fsync_log = true;

  /// Group commit: coalesce concurrent commit-record forces into shared
  /// write+fsync batches instead of one flush per committing transaction.
  /// An acknowledged Commit() is exactly as durable either way; only the
  /// number of flushes changes. See docs/ARCHITECTURE.md.
  bool wal_group_commit = true;

  /// Flush executor for group commit (ignored unless wal_group_commit).
  GroupCommitMode wal_group_commit_mode = GroupCommitMode::kFlusher;

  /// Extra microseconds a group-commit flush waits before writing, to let
  /// more committers append their records into the batch (0 = flush
  /// immediately; coalescing still happens naturally while a flush is in
  /// flight, because late committers join the next batch).
  uint32_t wal_group_commit_delay_us = 0;

  /// Default locking protocol for newly created indexes.
  LockingProtocolKind index_locking = LockingProtocolKind::kDataOnly;

  /// Default lock granularity for table data.
  LockGranularity lock_granularity = LockGranularity::kRecord;

  /// Baseline ablation: when true, every index operation acquires the tree
  /// latch (S for reads/updates, X across whole SMOs including the triggering
  /// operation), modeling protocols where SMOs block concurrent traversals.
  bool block_traversal_during_smo = false;

  /// Optimistic lock coupling on the B-tree read path: Fetch/FetchNext
  /// descend latch-free, validating per-frame versions instead of holding
  /// shared page latches, and fall back to the classic latch-coupled
  /// descent on an SM_Bit sighting or after kOlcMaxRestarts failed
  /// validations (decision table in docs/CONCURRENCY.md). Ignored — the
  /// pessimistic path is used — while block_traversal_during_smo is set.
  bool optimistic_reads = true;

  /// Run restart recovery on open when a log exists (normally true; tests
  /// may disable it to inspect the raw crashed state).
  bool recover_on_open = true;

  /// Instant restart (docs/ARCHITECTURE.md, "Instant restart"): Open()
  /// returns ready for new transactions right after the analysis pass and
  /// loser undo; the redo pass is deferred — every dirty page is replayed
  /// from its per-page LSN chain on first fetch. Implies online page repair
  /// (torn pages found during the lazy replays rebuild in place). When
  /// false (default), Open() runs the classic three-pass restart.
  bool instant_restart = false;

  /// With instant_restart: drain the deferred-redo debt from a background
  /// sweeper thread so cold pages do not carry recovery latency forever.
  /// Tests and benches disable it to control exactly when pages recover.
  bool instant_restart_sweep = true;

  /// Verify per-page CRC32C checksums on read.
  bool verify_checksums = true;

  /// Fire a checkpoint automatically after this many log bytes (0 = never).
  uint64_t checkpoint_interval_bytes = 0;

  /// Total attempts (first try + retries) the DiskManager makes for a page
  /// read/write/sync that fails with an I/O error before giving up. 1 = no
  /// retry. Retries back off exponentially from io_retry_base_delay_us,
  /// doubling per attempt, clamped to io_retry_max_delay_us.
  int io_retry_attempts = 4;
  uint32_t io_retry_base_delay_us = 50;
  uint32_t io_retry_max_delay_us = 2000;

  /// Rebuild a page whose fetch fails its checksum (or keeps failing with a
  /// read error past retries) from the WAL in place, without a restart. When
  /// false such a fetch surfaces the error to the caller as before.
  bool online_page_repair = true;

  /// Consecutive WAL flush failures (past disk retries) before the engine
  /// trips kHealthy -> kReadOnly; at twice this count it trips kFailed.
  /// 0 disables the trip.
  uint32_t log_flush_failure_threshold = 8;

  /// Blocked-waiter watchdog (docs/OBSERVABILITY.md): when > 0, the first
  /// lock wait to exceed this many milliseconds dumps the structured lock
  /// snapshot plus the waits-for DOT graph to stderr (or an injected sink)
  /// exactly once per contention episode. 0 (default) disables — the wait
  /// paths then carry no watchdog cost beyond one branch per 5 ms poll.
  uint32_t lock_watchdog_threshold_ms = 0;

  /// Time-series metrics sampler (docs/OBSERVABILITY.md, "Time-series
  /// sampler"): when > 0, the Database spawns a background MetricsSampler
  /// that snapshots every counter and histogram at this interval, keeps a
  /// bounded in-memory ring of samples, and — if metrics_log_path is set —
  /// appends one JSONL line per sample with deltas and per-second rates.
  /// 0 (default) spawns no thread and allocates nothing.
  uint32_t metrics_sample_interval_ms = 0;

  /// Destination file for the sampler's JSONL stream (empty = ring only).
  /// Ignored while metrics_sample_interval_ms == 0.
  std::string metrics_log_path;

  /// Durable flight recorder (docs/OBSERVABILITY.md, "Flight recorder"):
  /// maintain `<dir>/blackbox.json`, an atomic-rename snapshot of every
  /// observability surface, refreshed on a cadence and force-captured on
  /// health trips, WAL flush failures, simulated crashes and explicit
  /// Database::CaptureIncident calls. On the next Open the leftover record
  /// is annotated with the restart outcome and exposed as Stats()
  /// "last_incident".
  bool blackbox = true;

  /// Cadence of the flight recorder's background refresh, in milliseconds.
  /// 0 spawns no thread — snapshots are then written only by the forced
  /// triggers above. Ignored while blackbox is false.
  uint32_t blackbox_interval_ms = 1000;

  /// Simulated device latency added to every page read/write, in
  /// microseconds (0 = none). The benchmark substrate knob: on a machine
  /// whose files sit in the OS page cache, real I/O latency vanishes and
  /// with it every effect the paper attributes to holding latches across
  /// I/O; this restores it deterministically.
  uint32_t sim_io_delay_us = 0;
};

}  // namespace ariesim
