// Per-thread ring-buffer event tracer (see docs/OBSERVABILITY.md).
//
// Design constraints, in priority order:
//   1. Near-zero cost when disabled: every ARIES_TRACE_* site is one relaxed
//      atomic load of a process-wide flag. No clock read, no allocation.
//   2. Bounded memory: each thread writes fixed-size binary events into its
//      own fixed-capacity ring; when the ring is full the oldest event is
//      overwritten and a drop counter incremented. Rings are recycled through
//      a freelist when threads exit, so memory is bounded by the *peak
//      concurrent* thread count, not the total threads ever started.
//   3. TSan-clean: each ring has its own (per-thread, hence uncontended)
//      mutex; Dump/Clear take the registry mutex and then each ring's.
//
// DumpJson() exports Chrome `trace_event` JSON — load the file in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. Spans are complete events
// (ph "X", microsecond timestamps); instants are ph "i".
//
// Building with cmake -DARIESIM_TRACE=OFF defines ARIESIM_TRACE_OFF and
// compiles all of this out: the macros expand to nothing and the Tracer
// becomes an inline stub whose Dump() returns Status::NotSupported.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

#if defined(ARIESIM_TRACE_OFF)
#define ARIESIM_TRACE_COMPILED 0
#else
#define ARIESIM_TRACE_COMPILED 1
#endif

namespace ariesim {

/// Event category — becomes the Chrome trace "cat" field, so Perfetto can
/// filter per subsystem.
enum class TraceCat : uint8_t {
  kTxn = 0,
  kWal,
  kLock,
  kBuffer,
  kBtree,
  kRecovery,
};

inline const char* TraceCatName(TraceCat c) {
  switch (c) {
    case TraceCat::kTxn: return "txn";
    case TraceCat::kWal: return "wal";
    case TraceCat::kLock: return "lock";
    case TraceCat::kBuffer: return "buffer";
    case TraceCat::kBtree: return "btree";
    case TraceCat::kRecovery: return "recovery";
  }
  return "?";
}

/// Aggregate tracer occupancy, reported by Database::Stats().
struct TraceCounts {
  uint64_t recorded = 0;  ///< events ever recorded (including overwritten)
  uint64_t dropped = 0;   ///< events overwritten because a ring was full
  uint64_t rings = 0;     ///< thread rings allocated (peak concurrent threads)
};

#if ARIESIM_TRACE_COMPILED

namespace trace_internal {
extern std::atomic<bool> g_enabled;
}  // namespace trace_internal

/// The one branch every disabled trace site pays.
inline bool TraceEnabled() {
  return trace_internal::g_enabled.load(std::memory_order_relaxed);
}

struct TraceRing;

/// Process-wide tracer singleton. All engine instances in a process share it
/// (traces are about threads, and threads cross Database boundaries only in
/// tests); Database::SetTracing/DumpTrace are thin wrappers over it.
class Tracer {
 public:
  static Tracer& Instance();

  void Enable() { trace_internal::g_enabled.store(true, std::memory_order_relaxed); }
  void Disable() { trace_internal::g_enabled.store(false, std::memory_order_relaxed); }
  bool enabled() const { return TraceEnabled(); }

  /// Append one event to the calling thread's ring. `name` must be a string
  /// literal (or otherwise outlive the tracer) — events store the pointer.
  void Record(const char* name, TraceCat cat, uint64_t start_ns,
              uint64_t dur_ns, uint64_t arg, bool instant = false);

  /// Serialize every ring's events as Chrome trace_event JSON. With
  /// `max_events` > 0, keep only the newest that many events (by start
  /// time) — the flight recorder embeds such a bounded excerpt; events cut
  /// this way are reported in otherData.excerptDropped, not droppedEvents.
  std::string DumpJson(size_t max_events = 0);
  /// DumpJson() to a file.
  Status Dump(const std::string& path);

  TraceCounts Counts();

  /// Drop all buffered events and zero the drop counters (rings stay
  /// allocated). Tracing enablement is unchanged.
  void Clear();

  /// Capacity, in events, of rings acquired *after* this call — newly
  /// allocated or recycled to a fresh thread (rings attached to live threads
  /// keep theirs). Process-wide; mainly for tests and memory tuning.
  void SetRingCapacity(size_t events);
  size_t ring_capacity();

  // Internal: thread-exit hook (public for the thread_local handle).
  void ReleaseRing(TraceRing* ring);

 private:
  Tracer() = default;
  TraceRing* LocalRing();
  TraceRing* AcquireRing();

  std::mutex reg_mu_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
  std::vector<TraceRing*> free_rings_;
  size_t ring_capacity_ = 8192;  // ~48 B/event -> ~384 KiB per thread ring
  uint32_t next_tid_ = 1;
};

/// RAII span: samples the clock at construction if tracing is on, records a
/// complete ("X") event at destruction. When tracing is off both ends are a
/// single relaxed load.
class TraceSpan {
 public:
  TraceSpan(const char* name, TraceCat cat, uint64_t arg = 0) {
    if (TraceEnabled()) {
      name_ = name;
      cat_ = cat;
      arg_ = arg;
      start_ns_ = MonotonicNowNs();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      Tracer::Instance().Record(name_, cat_, start_ns_,
                                MonotonicNowNs() - start_ns_, arg_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  uint64_t arg_ = 0;
  TraceCat cat_ = TraceCat::kTxn;
};

inline void TraceInstant(const char* name, TraceCat cat, uint64_t arg = 0) {
  if (TraceEnabled()) {
    uint64_t now = MonotonicNowNs();
    Tracer::Instance().Record(name, cat, now, 0, arg, /*instant=*/true);
  }
}

#else  // !ARIESIM_TRACE_COMPILED — inline no-op stubs, same API surface.

inline bool TraceEnabled() { return false; }

class Tracer {
 public:
  static Tracer& Instance() {
    static Tracer t;
    return t;
  }
  void Enable() {}
  void Disable() {}
  bool enabled() const { return false; }
  void Record(const char*, TraceCat, uint64_t, uint64_t, uint64_t,
              bool = false) {}
  std::string DumpJson(size_t = 0) { return "{\"traceEvents\":[]}\n"; }
  Status Dump(const std::string&) {
    return Status::NotSupported("tracing compiled out (ARIESIM_TRACE=OFF)");
  }
  TraceCounts Counts() { return {}; }
  void Clear() {}
  void SetRingCapacity(size_t) {}
  size_t ring_capacity() { return 0; }
};

class TraceSpan {
 public:
  TraceSpan(const char*, TraceCat, uint64_t = 0) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

inline void TraceInstant(const char*, TraceCat, uint64_t = 0) {}

#endif  // ARIESIM_TRACE_COMPILED

// Instrumentation macros. These (not direct TraceSpan use) are what engine
// code should write: with ARIESIM_TRACE=OFF they expand to nothing at all,
// so not even the name literals reach the binary.
#if ARIESIM_TRACE_COMPILED
#define ARIES_TRACE_SPAN(var, name, cat, arg) \
  ::ariesim::TraceSpan var((name), (cat), static_cast<uint64_t>(arg))
#define ARIES_TRACE_INSTANT(name, cat, arg) \
  ::ariesim::TraceInstant((name), (cat), static_cast<uint64_t>(arg))
#else
#define ARIES_TRACE_SPAN(var, name, cat, arg) \
  do {                                        \
  } while (0)
#define ARIES_TRACE_INSTANT(name, cat, arg) \
  do {                                      \
  } while (0)
#endif

}  // namespace ariesim
