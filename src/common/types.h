// Core identifier types shared across the engine.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace ariesim {

/// Log sequence number. In this engine an LSN is the byte offset of the log
/// record in the (conceptually infinite) log file, as in ARIES
/// implementations that use offset-valued LSNs. 0 = "null LSN".
using Lsn = uint64_t;
inline constexpr Lsn kNullLsn = 0;

/// Page identifier within the single tablespace file. Page 0 is the meta
/// page; kInvalidPageId marks "no page".
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();
inline constexpr PageId kMetaPageId = 0;

/// Transaction identifier; monotonically increasing. 0 = "no transaction"
/// (used by redo-only system actions).
using TxnId = uint64_t;
inline constexpr TxnId kInvalidTxnId = 0;

/// Object (table / index) identifier, assigned by the catalog.
using ObjectId = uint32_t;
inline constexpr ObjectId kInvalidObjectId = 0;

/// Record identifier: (data page, slot). RIDs are stable for the lifetime of
/// the record — slots are never reused while an uncommitted delete could
/// still be rolled back (the inserter must win a conditional lock on the RID
/// before reusing its slot).
struct Rid {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool operator==(const Rid&) const = default;
  auto operator<=>(const Rid&) const = default;

  uint64_t Pack() const {
    return (static_cast<uint64_t>(page_id) << 16) | slot;
  }
  static Rid Unpack(uint64_t v) {
    return Rid{static_cast<PageId>(v >> 16), static_cast<uint16_t>(v & 0xFFFF)};
  }
  bool IsValid() const { return page_id != kInvalidPageId; }
  std::string ToString() const {
    return "(" + std::to_string(page_id) + "," + std::to_string(slot) + ")";
  }
};

inline constexpr Rid kInvalidRid{};

}  // namespace ariesim

template <>
struct std::hash<ariesim::Rid> {
  size_t operator()(const ariesim::Rid& r) const {
    return std::hash<uint64_t>()(r.Pack());
  }
};
