// Instrumentation counters and latency histograms. The locking-matrix tests
// and the lock-count / concurrency benches read the counters to verify the
// paper's Figure 2 and its efficiency claims (number of locks acquired, pages
// accessed during redo / undo / normal processing, logical vs page-oriented
// undos); the histograms (PR 4) add the time dimension — where a commit,
// lock wait, page miss, fsync, latch wait, or online repair spends it.
// Per-counter semantics live in docs/METRICS.md.
//
// Every counter MUST be declared through ARIESIM_METRICS_COUNTERS and every
// histogram through ARIESIM_METRICS_HISTOGRAMS: the X-macros generate the
// members, the name tables, Reset(), and the (exhaustive by construction)
// ToString()/ToJson() emissions. metrics_emission_test.cpp statically checks
// the struct layout so a member added outside the macros fails the build's
// observability suite rather than silently vanishing from the stats surface.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/histogram.h"

namespace ariesim {

// Declaration order is emission order. Sections: lock manager, latches, I/O,
// group commit, B-tree, undo paths, recovery passes, self-healing.
#define ARIESIM_METRICS_COUNTERS(X)                                         \
  /* Lock manager */                                                        \
  X(lock_requests)           /* every Lock() call, blocking or not */       \
  X(locks_granted)           /* grants incl. mode conversions */            \
  X(lock_waits)              /* requests that had to enqueue */             \
  X(lock_conditional_denied) /* conditional requests denied, no wait */     \
  X(deadlocks)               /* victims picked by the waits-for detector */ \
  /* Latches */                                                             \
  X(page_latch_acquisitions)                                                \
  X(tree_latch_acquisitions)                                                \
  X(tree_latch_waits) /* contended X acquisitions of the tree latch */      \
  /* I/O */                                                                 \
  X(pages_read)                                                             \
  X(pages_written)                                                          \
  X(log_flushes)                                                            \
  X(log_records)                                                            \
  X(log_bytes)                                                              \
  X(io_retries) /* backoff sleeps re-driving a failed page read/write */    \
  /* Group commit (docs/METRICS.md derives the coalescing ratio) */         \
  X(group_commit_batches) /* group flushes that advanced flushed_lsn */     \
  X(group_commit_txns)    /* commits whose durability rode the group */     \
  /* B-tree */                                                              \
  X(smo_splits)                                                             \
  X(smo_page_deletes)                                                       \
  X(traversal_restarts)                                                     \
  X(smo_waits) /* traversals that waited out an SMO */                      \
  /* Optimistic read path (docs/CONCURRENCY.md "Optimistic descent") */     \
  X(olc_descents)  /* read descents completed latch-free */                 \
  X(olc_restarts)  /* version-validation failures that re-descended */      \
  X(olc_fallbacks) /* descents that fell back to latch coupling */          \
  /* Undo paths (paper §3 "Undo Processing") */                             \
  X(page_oriented_undos)                                                    \
  X(logical_undos)                                                          \
  X(smo_structural_undos) /* incomplete-SMO structural records inverted */  \
  /* Recovery passes */                                                     \
  X(redo_records_applied)                                                   \
  X(redo_records_skipped)                                                   \
  X(undo_records)                                                           \
  X(torn_pages_repaired)   /* CRC-failed pages rebuilt at restart */        \
  X(pages_repaired_online) /* pages rebuilt by the no-restart path */       \
  X(health_trips)          /* kHealthy -> kReadOnly -> kFailed moves */     \
  /* Instant restart (PR 8; docs/ARCHITECTURE.md "Instant restart") */      \
  X(pages_recovered_lazily)  /* pending pages redone on first fetch */      \
  X(lazy_chain_fallbacks)    /* lazy replays that fell back to a scan */    \
  X(instant_restart_open_us) /* gauge: last instant-open wall time, us */   \
  /* Concurrency forensics (PR 5; docs/OBSERVABILITY.md) */                 \
  X(deadlock_cycle_txns)   /* sum of cycle lengths over all postmortems */  \
  X(lock_watchdog_dumps)   /* blocked-waiter watchdog episode dumps */      \
  /* Flight recorder (PR 10; docs/OBSERVABILITY.md "Flight recorder") */    \
  X(blackbox_captures)     /* black-box snapshots written (any trigger) */  \
  X(blackbox_bytes)        /* total bytes written to the black-box file */  \
  X(btree_backoffs)        /* randomized restart-backoff sleeps taken */

// Latency histograms, all recording nanoseconds (reported as microseconds).
#define ARIESIM_METRICS_HISTOGRAMS(X)                                     \
  X(commit_latency)     /* TransactionManager::Commit, log append->ack */ \
  X(lock_wait_latency)  /* blocked LockManager::Lock wait time */         \
  X(latch_wait_latency) /* contended page/tree latch acquisitions */      \
  X(page_miss_latency)  /* BufferPool miss: evict + read + verify */      \
  X(log_flush_latency)  /* one WAL tail write + fsync */                  \
  X(repair_latency)     /* one online page rebuild from the log */        \
  X(lazy_replay_latency) /* one first-touch page redo (instant restart) */\
  X(deadlock_victim_wait)  /* victim's wait age when the cycle was cut */ \
  X(tree_latch_hold_latency) /* tree-latch X hold time (SMO serializer) */\
  X(read_descent_latency)  /* one read-path root->leaf descent (any mode) */\
  X(smo_latency)           /* one complete SMO: split or page delete */    \
  /* Flight recorder (PR 10): one black-box snapshot, build + atomic     \
     write + rename. */                                                   \
  X(blackbox_capture_latency)                                             \
  /* Commit critical-path attribution (PR 9). One entry per segment of    \
     ARIESIM_COMMIT_SEGMENTS (common/commit_breakdown.h) — mirrored by    \
     hand because nested X-macros don't rescan the inner X; the pairing   \
     is enforced by commit_breakdown_test.cpp. Recorded once per commit   \
     from the transaction's CommitBreakdown. */                           \
  X(commit_seg_lock_wait)                                                 \
  X(commit_seg_latch_wait)                                                \
  X(commit_seg_log_append)                                                \
  X(commit_seg_queue_wait)                                                \
  X(commit_seg_batch_write)                                               \
  X(commit_seg_fsync)                                                     \
  X(commit_seg_wakeup)

struct Metrics {
#define ARIESIM_DECLARE_COUNTER(name) std::atomic<uint64_t> name{0};
  ARIESIM_METRICS_COUNTERS(ARIESIM_DECLARE_COUNTER)
#undef ARIESIM_DECLARE_COUNTER

#define ARIESIM_DECLARE_HISTOGRAM(name) LatencyHistogram name;
  ARIESIM_METRICS_HISTOGRAMS(ARIESIM_DECLARE_HISTOGRAM)
#undef ARIESIM_DECLARE_HISTOGRAM

#define ARIESIM_COUNT_ONE(name) +1
  static constexpr size_t kCounterCount =
      0 ARIESIM_METRICS_COUNTERS(ARIESIM_COUNT_ONE);
  static constexpr size_t kHistogramCount =
      0 ARIESIM_METRICS_HISTOGRAMS(ARIESIM_COUNT_ONE);
#undef ARIESIM_COUNT_ONE

  /// Counter names, in declaration (= emission) order.
  static const char* const* CounterNames() {
#define ARIESIM_NAME_ONE(name) #name,
    static const char* const kNames[] = {
        ARIESIM_METRICS_COUNTERS(ARIESIM_NAME_ONE)};
#undef ARIESIM_NAME_ONE
    return kNames;
  }

  static const char* const* HistogramNames() {
#define ARIESIM_NAME_ONE(name) #name,
    static const char* const kNames[] = {
        ARIESIM_METRICS_HISTOGRAMS(ARIESIM_NAME_ONE)};
#undef ARIESIM_NAME_ONE
    return kNames;
  }

  void Reset() {
#define ARIESIM_RESET_COUNTER(name) name.store(0, std::memory_order_relaxed);
    ARIESIM_METRICS_COUNTERS(ARIESIM_RESET_COUNTER)
#undef ARIESIM_RESET_COUNTER
#define ARIESIM_RESET_HISTOGRAM(name) name.Reset();
    ARIESIM_METRICS_HISTOGRAMS(ARIESIM_RESET_HISTOGRAM)
#undef ARIESIM_RESET_HISTOGRAM
  }

  /// One-line `name=value` dump of every counter (histograms are summarized
  /// as `name_p50_us/p99_us` only when populated). Exhaustive by
  /// construction: a counter added to the X-macro appears here for free.
  std::string ToString() const {
    std::string out;
    out.reserve(kCounterCount * 24);
    bool first = true;
#define ARIESIM_PRINT_COUNTER(n)                                  \
  if (!first) out += ' ';                                         \
  first = false;                                                  \
  out += #n "=";                                                  \
  out += std::to_string(n.load(std::memory_order_relaxed));
    ARIESIM_METRICS_COUNTERS(ARIESIM_PRINT_COUNTER)
#undef ARIESIM_PRINT_COUNTER
#define ARIESIM_PRINT_HISTOGRAM(n)                                \
  {                                                               \
    HistogramSnapshot s = n.Snapshot();                           \
    if (s.count > 0) {                                            \
      out += " " #n "_p50_us=";                                   \
      out += std::to_string(static_cast<uint64_t>(s.p50_us()));   \
      out += " " #n "_p99_us=";                                   \
      out += std::to_string(static_cast<uint64_t>(s.p99_us()));   \
    }                                                             \
  }
    ARIESIM_METRICS_HISTOGRAMS(ARIESIM_PRINT_HISTOGRAM)
#undef ARIESIM_PRINT_HISTOGRAM
    return out;
  }

  /// Structured dump: {"counters":{...all...},"histograms":{...all...}}.
  /// Histograms always emit (count 0 included) so consumers can rely on the
  /// key set. See docs/METRICS.md for the schema.
  std::string ToJson() const {
    std::string out;
    out.reserve(1024);
    out += "{\"counters\":{";
    bool first = true;
#define ARIESIM_JSON_COUNTER(n)                                   \
  if (!first) out += ',';                                         \
  first = false;                                                  \
  out += "\"" #n "\":";                                           \
  out += std::to_string(n.load(std::memory_order_relaxed));
    ARIESIM_METRICS_COUNTERS(ARIESIM_JSON_COUNTER)
#undef ARIESIM_JSON_COUNTER
    out += "},\"histograms\":{";
    first = true;
#define ARIESIM_JSON_HISTOGRAM(n)                                 \
  if (!first) out += ',';                                         \
  first = false;                                                  \
  out += "\"" #n "\":";                                           \
  AppendHistogramJson(n.Snapshot(), &out);
    ARIESIM_METRICS_HISTOGRAMS(ARIESIM_JSON_HISTOGRAM)
#undef ARIESIM_JSON_HISTOGRAM
    out += "}}";
    return out;
  }

  /// Prometheus/OpenMetrics text exposition of every counter and histogram
  /// (defined in metrics.cpp; linted by tools/check_openmetrics.sh).
  std::string ToOpenMetrics() const;

  /// The `commit_breakdown` section of Database::Stats(): per-segment
  /// count/p50/p95/mean/sum plus share-of-total, and an `accounted` block
  /// comparing the commit-path segment sum against commit_latency (the
  /// >=90% attribution criterion). Defined in metrics.cpp.
  std::string CommitBreakdownJson() const;

  static void AppendHistogramJson(const HistogramSnapshot& s,
                                  std::string* out) {
    auto us = [](double v) {
      // Fixed 3-decimal microseconds without locale surprises.
      uint64_t milli_us = static_cast<uint64_t>(v * 1000.0 + 0.5);
      std::string r = std::to_string(milli_us / 1000);
      uint64_t frac = milli_us % 1000;
      r += '.';
      if (frac < 100) r += '0';
      if (frac < 10) r += '0';
      r += std::to_string(frac);
      return r;
    };
    *out += "{\"count\":" + std::to_string(s.count);
    *out += ",\"p50_us\":" + us(s.p50_us());
    *out += ",\"p95_us\":" + us(s.p95_us());
    *out += ",\"p99_us\":" + us(s.p99_us());
    *out += ",\"max_us\":" + us(s.max_us());
    *out += ",\"mean_us\":" + us(s.mean_us());
    *out += "}";
  }
};

}  // namespace ariesim
