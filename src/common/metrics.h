// Instrumentation counters. The locking-matrix tests and the lock-count /
// concurrency benches read these to verify the paper's Figure 2 and its
// efficiency claims (number of locks acquired, pages accessed during redo /
// undo / normal processing, logical vs page-oriented undos).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace ariesim {

struct Metrics {
  // Lock manager.
  std::atomic<uint64_t> lock_requests{0};
  std::atomic<uint64_t> locks_granted{0};
  std::atomic<uint64_t> lock_waits{0};
  std::atomic<uint64_t> lock_conditional_denied{0};
  std::atomic<uint64_t> deadlocks{0};

  // Latches.
  std::atomic<uint64_t> page_latch_acquisitions{0};
  std::atomic<uint64_t> tree_latch_acquisitions{0};
  std::atomic<uint64_t> tree_latch_waits{0};

  // I/O.
  std::atomic<uint64_t> pages_read{0};
  std::atomic<uint64_t> pages_written{0};
  std::atomic<uint64_t> log_flushes{0};
  std::atomic<uint64_t> log_records{0};
  std::atomic<uint64_t> log_bytes{0};
  /// Extra attempts spent re-driving a failed page read/write/sync before
  /// the DiskManager gave up (one increment per retry, not per operation).
  std::atomic<uint64_t> io_retries{0};

  // Group commit (see docs/METRICS.md for the coalescing-ratio derivation).
  /// Group flushes that actually wrote a batch of the tail.
  std::atomic<uint64_t> group_commit_batches{0};
  /// Commits (sync and async) whose durability rode the group machinery.
  std::atomic<uint64_t> group_commit_txns{0};

  // B-tree.
  std::atomic<uint64_t> smo_splits{0};
  std::atomic<uint64_t> smo_page_deletes{0};
  std::atomic<uint64_t> traversal_restarts{0};
  std::atomic<uint64_t> smo_waits{0};  ///< traversals that waited out an SMO

  // Undo paths (paper §3 "Undo Processing").
  std::atomic<uint64_t> page_oriented_undos{0};
  std::atomic<uint64_t> logical_undos{0};
  /// Structural records of an incomplete SMO physically inverted during
  /// undo — nonzero exactly when a crash landed inside a nested top action.
  std::atomic<uint64_t> smo_structural_undos{0};

  // Recovery passes.
  std::atomic<uint64_t> redo_records_applied{0};
  std::atomic<uint64_t> redo_records_skipped{0};
  std::atomic<uint64_t> undo_records{0};
  /// Pages whose on-disk image failed its CRC at restart and were rebuilt
  /// from the log (torn-write repair).
  std::atomic<uint64_t> torn_pages_repaired{0};
  /// Pages rebuilt from the log by the online (no-restart) media-recovery
  /// path after a fetch-time checksum or read failure.
  std::atomic<uint64_t> pages_repaired_online{0};
  /// Health-state transitions (kHealthy -> kReadOnly -> kFailed). Each
  /// distinct downward transition counts once.
  std::atomic<uint64_t> health_trips{0};

  void Reset() {
    auto z = [](std::atomic<uint64_t>& a) { a.store(0, std::memory_order_relaxed); };
    z(lock_requests); z(locks_granted); z(lock_waits); z(lock_conditional_denied);
    z(deadlocks); z(page_latch_acquisitions); z(tree_latch_acquisitions);
    z(tree_latch_waits); z(pages_read); z(pages_written); z(log_flushes);
    z(log_records); z(log_bytes); z(io_retries);
    z(group_commit_batches); z(group_commit_txns);
    z(smo_splits); z(smo_page_deletes);
    z(traversal_restarts); z(smo_waits); z(page_oriented_undos); z(logical_undos);
    z(smo_structural_undos); z(redo_records_applied); z(redo_records_skipped);
    z(undo_records); z(torn_pages_repaired); z(pages_repaired_online);
    z(health_trips);
  }

  std::string ToString() const {
    auto g = [](const std::atomic<uint64_t>& a) {
      return std::to_string(a.load(std::memory_order_relaxed));
    };
    return "locks=" + g(locks_granted) + " lock_waits=" + g(lock_waits) +
           " deadlocks=" + g(deadlocks) + " reads=" + g(pages_read) +
           " writes=" + g(pages_written) + " log_recs=" + g(log_records) +
           " log_bytes=" + g(log_bytes) + " log_flushes=" + g(log_flushes) +
           " io_retries=" + g(io_retries) +
           " gc_batches=" + g(group_commit_batches) +
           " gc_txns=" + g(group_commit_txns) +
           " splits=" + g(smo_splits) + " page_dels=" + g(smo_page_deletes) +
           " restarts=" + g(traversal_restarts) +
           " po_undos=" + g(page_oriented_undos) + " log_undos=" + g(logical_undos) +
           " torn_repaired=" + g(torn_pages_repaired) +
           " repaired_online=" + g(pages_repaired_online) +
           " health_trips=" + g(health_trips);
  }
};

}  // namespace ariesim
