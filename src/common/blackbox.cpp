#include "common/blackbox.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/clock.h"

namespace ariesim {

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator + shallow field collector. No
// allocation-heavy DOM: blackbox_dump and the tests only need "is this a
// complete document" plus the scalar fields of the first two object levels.
// ---------------------------------------------------------------------------

namespace {

struct JsonCursor {
  const char* begin;
  const char* p;
  const char* end;
  std::map<std::string, std::string>* fields;
  std::string* err;
};

bool Fail(JsonCursor* c, const char* msg) {
  if (c->err != nullptr && c->err->empty()) {
    *c->err = msg;
    *c->err +=
        " at offset " + std::to_string(static_cast<size_t>(c->p - c->begin));
  }
  return false;
}

void SkipWs(JsonCursor* c) {
  while (c->p < c->end &&
         (*c->p == ' ' || *c->p == '\t' || *c->p == '\n' || *c->p == '\r')) {
    ++c->p;
  }
}

bool ParseString(JsonCursor* c, std::string* out) {
  if (c->p >= c->end || *c->p != '"') return Fail(c, "expected string");
  ++c->p;
  while (c->p < c->end) {
    unsigned char ch = static_cast<unsigned char>(*c->p);
    if (ch == '"') {
      ++c->p;
      return true;
    }
    if (ch == '\\') {
      ++c->p;
      if (c->p >= c->end) return Fail(c, "truncated escape");
      char e = *c->p;
      switch (e) {
        case '"': if (out) *out += '"'; break;
        case '\\': if (out) *out += '\\'; break;
        case '/': if (out) *out += '/'; break;
        case 'b': if (out) *out += '\b'; break;
        case 'f': if (out) *out += '\f'; break;
        case 'n': if (out) *out += '\n'; break;
        case 'r': if (out) *out += '\r'; break;
        case 't': if (out) *out += '\t'; break;
        case 'u': {
          if (c->end - c->p < 5) return Fail(c, "truncated \\u escape");
          for (int i = 1; i <= 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(c->p[i]))) {
              return Fail(c, "bad \\u escape");
            }
          }
          unsigned cp = 0;
          for (int i = 1; i <= 4; ++i) {
            char d = c->p[i];
            cp = cp * 16 + static_cast<unsigned>(
                               d <= '9' ? d - '0' : (d | 0x20) - 'a' + 10);
          }
          // ASCII decodes exactly (all our own escaper ever emits);
          // anything wider keeps a placeholder — the record is forensic
          // text, not a unicode round-trip.
          if (out) *out += cp < 0x80 ? static_cast<char>(cp) : '?';
          c->p += 4;
          break;
        }
        default:
          return Fail(c, "bad escape character");
      }
      ++c->p;
      continue;
    }
    if (ch < 0x20) return Fail(c, "raw control character in string");
    if (out) *out += static_cast<char>(ch);
    ++c->p;
  }
  return Fail(c, "unterminated string");
}

bool ParseNumber(JsonCursor* c, std::string* out) {
  const char* start = c->p;
  if (c->p < c->end && *c->p == '-') ++c->p;
  if (c->p >= c->end || !std::isdigit(static_cast<unsigned char>(*c->p))) {
    return Fail(c, "bad number");
  }
  while (c->p < c->end && std::isdigit(static_cast<unsigned char>(*c->p))) {
    ++c->p;
  }
  if (c->p < c->end && *c->p == '.') {
    ++c->p;
    if (c->p >= c->end || !std::isdigit(static_cast<unsigned char>(*c->p))) {
      return Fail(c, "bad fraction");
    }
    while (c->p < c->end && std::isdigit(static_cast<unsigned char>(*c->p))) {
      ++c->p;
    }
  }
  if (c->p < c->end && (*c->p == 'e' || *c->p == 'E')) {
    ++c->p;
    if (c->p < c->end && (*c->p == '+' || *c->p == '-')) ++c->p;
    if (c->p >= c->end || !std::isdigit(static_cast<unsigned char>(*c->p))) {
      return Fail(c, "bad exponent");
    }
    while (c->p < c->end && std::isdigit(static_cast<unsigned char>(*c->p))) {
      ++c->p;
    }
  }
  if (out) out->assign(start, static_cast<size_t>(c->p - start));
  return true;
}

bool ParseLiteral(JsonCursor* c, const char* lit, std::string* out) {
  size_t n = std::strlen(lit);
  if (static_cast<size_t>(c->end - c->p) < n ||
      std::memcmp(c->p, lit, n) != 0) {
    return Fail(c, "bad literal");
  }
  c->p += n;
  if (out) *out = lit;
  return true;
}

bool ParseValue(JsonCursor* c, const std::string& path, int depth);

bool ParseObject(JsonCursor* c, const std::string& path, int depth) {
  ++c->p;  // consume '{'
  SkipWs(c);
  if (c->p < c->end && *c->p == '}') {
    ++c->p;
    return true;
  }
  while (true) {
    SkipWs(c);
    std::string key;
    if (!ParseString(c, &key)) return false;
    SkipWs(c);
    if (c->p >= c->end || *c->p != ':') return Fail(c, "expected ':'");
    ++c->p;
    SkipWs(c);
    std::string child_path;
    if (depth <= 2) {
      child_path = path.empty() ? key : path + "." + key;
    }
    if (!ParseValue(c, child_path, depth)) return false;
    SkipWs(c);
    if (c->p >= c->end) return Fail(c, "unterminated object");
    if (*c->p == ',') {
      ++c->p;
      continue;
    }
    if (*c->p == '}') {
      ++c->p;
      return true;
    }
    return Fail(c, "expected ',' or '}'");
  }
}

bool ParseArray(JsonCursor* c, int depth) {
  ++c->p;  // consume '['
  SkipWs(c);
  if (c->p < c->end && *c->p == ']') {
    ++c->p;
    return true;
  }
  while (true) {
    SkipWs(c);
    if (!ParseValue(c, std::string(), depth)) return false;
    SkipWs(c);
    if (c->p >= c->end) return Fail(c, "unterminated array");
    if (*c->p == ',') {
      ++c->p;
      continue;
    }
    if (*c->p == ']') {
      ++c->p;
      return true;
    }
    return Fail(c, "expected ',' or ']'");
  }
}

bool ParseValue(JsonCursor* c, const std::string& path, int depth) {
  if (depth > 64) return Fail(c, "nesting too deep");
  SkipWs(c);
  if (c->p >= c->end) return Fail(c, "unexpected end of input");
  // Collect scalars of the first two object levels; path is empty for
  // deeper values and array elements, so they are validated only.
  const bool collect = c->fields != nullptr && !path.empty() && depth <= 2;
  std::string scalar;
  std::string* sink = collect ? &scalar : nullptr;
  bool ok;
  switch (*c->p) {
    case '{': ok = ParseObject(c, path, depth + 1); break;
    case '[': ok = ParseArray(c, depth + 1); break;
    case '"': ok = ParseString(c, sink); break;
    case 't': ok = ParseLiteral(c, "true", sink); break;
    case 'f': ok = ParseLiteral(c, "false", sink); break;
    case 'n': ok = ParseLiteral(c, "null", sink); break;
    default: ok = ParseNumber(c, sink); break;
  }
  if (ok && sink != nullptr) (*c->fields)[path] = scalar;
  return ok;
}

}  // namespace

bool ParseJson(const std::string& text,
               std::map<std::string, std::string>* fields, std::string* err) {
  JsonCursor c{text.data(), text.data(), text.data() + text.size(), fields,
               err};
  if (!ParseValue(&c, std::string(), 0)) return false;
  SkipWs(&c);
  if (c.p != c.end) {
    if (err != nullptr && err->empty()) *err = "trailing garbage after value";
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// BlackBox
// ---------------------------------------------------------------------------

BlackBox::BlackBox(std::string path, Metrics* metrics)
    : path_(std::move(path)), metrics_(metrics) {}

BlackBox::~BlackBox() { Stop(); }

void BlackBox::SetSnapshotBuilder(SnapshotBuilder builder) {
  std::lock_guard<std::mutex> lk(mu_);
  builder_ = std::move(builder);
}

void BlackBox::SetPreviousIncident(std::string summary_json_object) {
  std::lock_guard<std::mutex> lk(mu_);
  prev_incident_ = std::move(summary_json_object);
}

void BlackBox::StartPeriodic(uint32_t interval_ms) {
  if (interval_ms == 0) return;
  std::lock_guard<std::mutex> lk(run_mu_);
  if (run_flag_) return;
  run_flag_ = true;
  periodic_running_.store(true, std::memory_order_release);
  periodic_ = std::thread([this, interval_ms] { PeriodicLoop(interval_ms); });
}

void BlackBox::Stop() {
  {
    std::lock_guard<std::mutex> lk(run_mu_);
    if (!run_flag_ && !periodic_.joinable()) return;
    run_flag_ = false;
    run_cv_.notify_all();
  }
  if (periodic_.joinable()) periodic_.join();
  periodic_running_.store(false, std::memory_order_release);
}

void BlackBox::PeriodicLoop(uint32_t interval_ms) {
  std::unique_lock<std::mutex> lk(run_mu_);
  while (run_flag_) {
    run_cv_.wait_for(lk, std::chrono::milliseconds(interval_ms),
                     [&] { return !run_flag_; });
    if (!run_flag_) break;
    lk.unlock();
    Capture("cadence", "");
    lk.lock();
  }
}

Status BlackBox::Capture(const char* trigger, const std::string& reason) {
  std::lock_guard<std::mutex> lk(mu_);
  const uint64_t t0 = MonotonicNowNs();
  const uint64_t now_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());

  std::string out;
  out.reserve(16384);
  out += "{\"version\":1";
  out += ",\"seq\":" + std::to_string(++seq_);  // 1-based: seq 1 = first
  out += ",\"ts_unix_ms\":" + std::to_string(now_ms);
  out += ",\"pid\":" + std::to_string(static_cast<long>(::getpid()));
  out += ",\"trigger\":\"";
  AppendJsonEscaped(trigger, &out);
  out += "\",\"reason\":\"";
  AppendJsonEscaped(reason, &out);
  out += "\"";

  const bool is_incident = std::strcmp(trigger, "cadence") != 0 &&
                           std::strcmp(trigger, "clean_shutdown") != 0;
  if (is_incident && incident_memo_.empty()) {
    // Memoize the FIRST incident of this incarnation: later snapshots —
    // cadence refreshes or follow-on incidents (a flush failure escalating
    // into a health trip and then a crash) — keep pointing at the root
    // cause even after they overwrite its full record.
    incident_memo_ = "{\"trigger\":\"";
    AppendJsonEscaped(trigger, &incident_memo_);
    incident_memo_ += "\",\"reason\":\"";
    AppendJsonEscaped(reason, &incident_memo_);
    incident_memo_ += "\",\"ts_unix_ms\":" + std::to_string(now_ms);
    incident_memo_ += ",\"seq\":" + std::to_string(seq_) + "}";
  }
  out += ",\"incident\":" + (incident_memo_.empty() ? "null" : incident_memo_);
  out += ",\"prev\":" + (prev_incident_.empty() ? "null" : prev_incident_);

  if (builder_) {
    out += builder_(trigger, reason);
  }
  out += "}";

  Status s = WriteAtomic(out);
  if (s.ok()) {
    captures_.fetch_add(1, std::memory_order_release);
    if (metrics_ != nullptr) {
      metrics_->blackbox_captures.fetch_add(1, std::memory_order_relaxed);
      metrics_->blackbox_capture_latency.Record(MonotonicNowNs() - t0);
    }
  }
  return s;
}

Status BlackBox::WriteRaw(const std::string& json) {
  std::lock_guard<std::mutex> lk(mu_);
  return WriteAtomic(json);
}

Status BlackBox::WriteAtomic(const std::string& json) {
  // Alternate between two tmp slots so even the tmp write never lands on
  // the bytes of the immediately preceding one.
  const std::string tmp = path_ + ".tmp." + std::to_string(tmp_slot_);
  tmp_slot_ ^= 1;
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("blackbox: open " + tmp + ": " +
                           std::strerror(errno));
  }
  size_t off = 0;
  while (off < json.size()) {
    ssize_t n = ::write(fd, json.data() + off, json.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IOError("blackbox: write " + tmp + ": " +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IOError("blackbox: fsync " + tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError("blackbox: rename " + tmp + " -> " + path_ + ": " +
                           std::strerror(errno));
  }
  // Best-effort directory fsync so the rename itself survives power loss.
  std::string dir = path_;
  size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash);
  int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
  if (metrics_ != nullptr) {
    metrics_->blackbox_bytes.fetch_add(json.size(), std::memory_order_relaxed);
  }
  return Status::OK();
}

Status BlackBox::ReadFile(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no black box at " + path);
    return Status::IOError("blackbox: open " + path + ": " +
                           std::strerror(errno));
  }
  out->clear();
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    out->append(buf, static_cast<size_t>(n));
  }
  int saved = errno;
  ::close(fd);
  if (n < 0) {
    return Status::IOError("blackbox: read " + path + ": " +
                           std::strerror(saved));
  }
  return Status::OK();
}

std::string BlackBox::SpliceField(const std::string& object_json,
                                  const std::string& key,
                                  const std::string& value_json) {
  size_t end = object_json.find_last_of('}');
  if (end == std::string::npos) return object_json;
  std::string out = object_json.substr(0, end);
  out += ",\"" + key + "\":" + value_json + "}";
  return out;
}

}  // namespace ariesim
