// Heap (data) page log-record payloads and the page-oriented apply
// functions shared by forward processing and restart redo. All heap redo
// and undo is page-oriented: RIDs are stable, and deleted records are
// tombstoned (bytes retained) until the delete is known committed, so an
// undo of a delete always fits.
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"

namespace ariesim {
namespace heap {

// Log opcodes (RmId::kHeap).
inline constexpr uint8_t kOpInsert = 1;    ///< [u16 slot][record bytes]
inline constexpr uint8_t kOpDelete = 2;    ///< [u16 slot][old record bytes]
inline constexpr uint8_t kOpUpdate = 3;    ///< [u16 slot][lp old][lp new]
inline constexpr uint8_t kOpFormat = 4;    ///< [u32 owner]
inline constexpr uint8_t kOpSetNext = 5;   ///< [u32 old][u32 new]
inline constexpr uint8_t kOpUnformat = 6;  ///< CLR-only: page back to free
inline constexpr uint8_t kOpRevive = 7;    ///< CLR-only: [u16 slot] undo delete
inline constexpr uint8_t kOpPurge = 8;     ///< CLR-only: [u16 slot] undo insert

std::string EncodeInsert(uint16_t slot, std::string_view record);
std::string EncodeDelete(uint16_t slot, std::string_view old_record);
std::string EncodeUpdate(uint16_t slot, std::string_view old_record,
                         std::string_view new_record);
std::string EncodeSlot(uint16_t slot);
std::string EncodeFormat(ObjectId owner);
std::string EncodeSetNext(PageId old_next, PageId new_next);

/// Page-oriented application of a heap op to a latched page.
Status Apply(uint8_t op, std::string_view payload, PageView v);

}  // namespace heap
}  // namespace ariesim
