// Record manager: the heap resource manager (page-oriented redo/undo of
// data-page records) plus the locking facade that implements data locking
// at the granularity configured for the table (record / page / table, with
// intent locks on the table — paper §2.1 "different granularities of
// locking in a flexible manner").
#pragma once

#include "common/context.h"
#include "common/status.h"
#include "record/heap_file.h"
#include "recovery/resource_manager.h"

namespace ariesim {

class RecordManager final : public ResourceManager {
 public:
  explicit RecordManager(EngineContext* ctx) : ctx_(ctx) {}

  // -- ResourceManager (RmId::kHeap) --------------------------------------
  Status Redo(const LogRecord& rec, PageView page) override;
  Status Undo(Transaction* txn, const LogRecord& rec) override;

  // -- data locking --------------------------------------------------------
  /// Acquire the data lock for `rid` plus the matching intent lock on the
  /// table. `conditional` applies to the data lock only.
  Status LockRecord(Transaction* txn, ObjectId table, Rid rid, LockMode mode,
                    LockDuration duration, bool conditional);

  // -- record operations ----------------------------------------------------
  /// Insert: table IX + commit X on the new RID (taken inside HeapFile
  /// under the page latch), then the logged insert.
  Result<Rid> InsertRecord(Transaction* txn, HeapFile* heap,
                           std::string_view record);
  /// Delete: commit X data lock (unconditional, no latches held), then the
  /// logged tombstone.
  Status DeleteRecord(Transaction* txn, HeapFile* heap, Rid rid);
  /// Fetch: S commit data lock unless `already_locked` (the ARIES/IM index
  /// manager already locked the key == the record, paper §2.1).
  Result<std::string> FetchRecord(Transaction* txn, HeapFile* heap, Rid rid,
                                  bool already_locked);
  Status UpdateRecord(Transaction* txn, HeapFile* heap, Rid rid,
                      std::string_view record);

 private:
  EngineContext* ctx_;
};

}  // namespace ariesim
