#include "record/record_manager.h"

#include "record/heap_page.h"
#include "util/coding.h"

namespace ariesim {

Status RecordManager::Redo(const LogRecord& rec, PageView page) {
  return heap::Apply(rec.op, rec.payload, page);
}

Status RecordManager::Undo(Transaction* txn, const LogRecord& rec) {
  ARIES_ASSIGN_OR_RETURN(
      PageGuard page, ctx_->pool->FetchPage(rec.page_id, LatchMode::kExclusive));
  LogRecord clr;
  clr.type = LogType::kCompensation;
  clr.rm = RmId::kHeap;
  clr.page_id = rec.page_id;
  clr.undo_next_lsn = rec.prev_lsn;
  BufferReader r(rec.payload);
  switch (rec.op) {
    case heap::kOpInsert: {
      uint16_t slot = r.GetFixed16();
      clr.op = heap::kOpPurge;
      clr.payload = heap::EncodeSlot(slot);
      break;
    }
    case heap::kOpDelete: {
      uint16_t slot = r.GetFixed16();
      clr.op = heap::kOpRevive;
      clr.payload = heap::EncodeSlot(slot);
      break;
    }
    case heap::kOpUpdate: {
      uint16_t slot = r.GetFixed16();
      std::string_view older = r.GetLengthPrefixed();
      std::string_view newer = r.GetLengthPrefixed();
      clr.op = heap::kOpUpdate;
      clr.payload = heap::EncodeUpdate(slot, newer, older);  // swapped
      break;
    }
    case heap::kOpFormat: {
      clr.op = heap::kOpUnformat;
      break;
    }
    case heap::kOpSetNext: {
      PageId old_next = r.GetFixed32();
      PageId new_next = r.GetFixed32();
      clr.op = heap::kOpSetNext;
      clr.payload = heap::EncodeSetNext(new_next, old_next);  // swapped
      break;
    }
    default:
      return Status::Corruption("cannot undo heap op " + std::to_string(rec.op));
  }
  ARIES_ASSIGN_OR_RETURN(Lsn lsn, ctx_->txns->AppendTxnLog(txn, &clr));
  ARIES_RETURN_NOT_OK(heap::Apply(clr.op, clr.payload, page.view()));
  page.MarkDirty(lsn);
  if (ctx_->metrics != nullptr) {
    ctx_->metrics->page_oriented_undos.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status RecordManager::LockRecord(Transaction* txn, ObjectId table, Rid rid,
                                 LockMode mode, LockDuration duration,
                                 bool conditional) {
  LockGranularity g = ctx_->options.lock_granularity;
  if (g != LockGranularity::kTable) {
    LockMode intent = (mode == LockMode::kS || mode == LockMode::kIS)
                          ? LockMode::kIS
                          : LockMode::kIX;
    ARIES_RETURN_NOT_OK(ctx_->locks->Lock(txn->id(), LockName::Table(table),
                                          intent, LockDuration::kCommit,
                                          /*conditional=*/false));
  }
  return ctx_->locks->Lock(txn->id(), DataLockName(g, table, rid), mode,
                           duration, conditional);
}

Result<Rid> RecordManager::InsertRecord(Transaction* txn, HeapFile* heap,
                                        std::string_view record) {
  if (ctx_->options.lock_granularity != LockGranularity::kTable) {
    ARIES_RETURN_NOT_OK(ctx_->locks->Lock(
        txn->id(), LockName::Table(heap->table_id()), LockMode::kIX,
        LockDuration::kCommit, /*conditional=*/false));
  } else {
    ARIES_RETURN_NOT_OK(ctx_->locks->Lock(
        txn->id(), LockName::Table(heap->table_id()), LockMode::kX,
        LockDuration::kCommit, /*conditional=*/false));
  }
  return heap->Insert(txn, record);
}

Status RecordManager::DeleteRecord(Transaction* txn, HeapFile* heap, Rid rid) {
  ARIES_RETURN_NOT_OK(LockRecord(txn, heap->table_id(), rid, LockMode::kX,
                                 LockDuration::kCommit, /*conditional=*/false));
  return heap->Delete(txn, rid);
}

Result<std::string> RecordManager::FetchRecord(Transaction* txn, HeapFile* heap,
                                               Rid rid, bool already_locked) {
  if (!already_locked) {
    ARIES_RETURN_NOT_OK(LockRecord(txn, heap->table_id(), rid, LockMode::kS,
                                   LockDuration::kCommit, /*conditional=*/false));
  }
  return heap->Fetch(rid);
}

Status RecordManager::UpdateRecord(Transaction* txn, HeapFile* heap, Rid rid,
                                   std::string_view record) {
  ARIES_RETURN_NOT_OK(LockRecord(txn, heap->table_id(), rid, LockMode::kX,
                                 LockDuration::kCommit, /*conditional=*/false));
  return heap->Update(txn, rid, record);
}

}  // namespace ariesim
