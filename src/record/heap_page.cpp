#include "record/heap_page.h"

#include "util/coding.h"

namespace ariesim {
namespace heap {

std::string EncodeInsert(uint16_t slot, std::string_view record) {
  std::string p;
  PutFixed16(&p, slot);
  p.append(record);
  return p;
}

std::string EncodeDelete(uint16_t slot, std::string_view old_record) {
  std::string p;
  PutFixed16(&p, slot);
  p.append(old_record);
  return p;
}

std::string EncodeUpdate(uint16_t slot, std::string_view old_record,
                         std::string_view new_record) {
  std::string p;
  PutFixed16(&p, slot);
  PutLengthPrefixed(&p, old_record);
  PutLengthPrefixed(&p, new_record);
  return p;
}

std::string EncodeSlot(uint16_t slot) {
  std::string p;
  PutFixed16(&p, slot);
  return p;
}

std::string EncodeFormat(ObjectId owner) {
  std::string p;
  PutFixed32(&p, owner);
  return p;
}

std::string EncodeSetNext(PageId old_next, PageId new_next) {
  std::string p;
  PutFixed32(&p, old_next);
  PutFixed32(&p, new_next);
  return p;
}

Status Apply(uint8_t op, std::string_view payload, PageView v) {
  BufferReader r(payload);
  switch (op) {
    case kOpInsert: {
      uint16_t slot = r.GetFixed16();
      std::string_view rec = payload.substr(2);
      // A reused slot may still carry a committed tombstone: reclaim it.
      if (slot < v.slot_count() && v.SlotTombstoned(slot)) v.PurgeSlot(slot);
      return v.PlaceCellAt(slot, rec);
    }
    case kOpDelete: {
      uint16_t slot = r.GetFixed16();
      if (slot >= v.slot_count() || v.SlotDead(slot)) {
        return Status::Corruption("heap delete: slot not live");
      }
      v.TombstoneSlot(slot);
      return Status::OK();
    }
    case kOpUpdate: {
      uint16_t slot = r.GetFixed16();
      (void)r.GetLengthPrefixed();  // old image (used by undo, not redo)
      std::string_view newer = r.GetLengthPrefixed();
      if (!r.ok()) return Status::Corruption("heap update payload");
      return v.ReplaceCellAt(slot, newer);
    }
    case kOpFormat: {
      uint32_t owner = r.GetFixed32();
      v.Init(v.page_id(), PageType::kHeap, owner, 0);
      return Status::OK();
    }
    case kOpSetNext: {
      (void)r.GetFixed32();
      uint32_t next = r.GetFixed32();
      v.set_next_page(next);
      return Status::OK();
    }
    case kOpUnformat: {
      v.set_type(PageType::kFree);
      return Status::OK();
    }
    case kOpRevive: {
      uint16_t slot = r.GetFixed16();
      if (slot >= v.slot_count() || !v.SlotTombstoned(slot)) {
        return Status::Corruption("heap revive: slot not tombstoned");
      }
      v.ReviveSlot(slot);
      return Status::OK();
    }
    case kOpPurge: {
      uint16_t slot = r.GetFixed16();
      if (slot >= v.slot_count()) {
        return Status::Corruption("heap purge: bad slot");
      }
      v.PurgeSlot(slot);
      return Status::OK();
    }
    default:
      return Status::Corruption("unknown heap op " + std::to_string(op));
  }
}

}  // namespace heap
}  // namespace ariesim
