#include "record/heap_file.h"

#include "record/heap_page.h"
#include "util/coding.h"

namespace ariesim {

namespace {

Result<Lsn> LogHeap(EngineContext* ctx, Transaction* txn, uint8_t op,
                    PageId page, std::string payload,
                    Lsn clr_undo_next = kNullLsn, bool is_clr = false) {
  LogRecord rec;
  rec.type = is_clr ? LogType::kCompensation : LogType::kUpdate;
  rec.rm = RmId::kHeap;
  rec.op = op;
  rec.page_id = page;
  rec.payload = std::move(payload);
  rec.undo_next_lsn = clr_undo_next;
  return ctx->txns->AppendTxnLog(txn, &rec);
}

}  // namespace

Result<PageId> HeapFile::Create(EngineContext* ctx, ObjectId table_id,
                                Transaction* txn) {
  ARIES_ASSIGN_OR_RETURN(PageId pid, ctx->space->AllocatePage(txn));
  ARIES_ASSIGN_OR_RETURN(PageGuard page,
                         ctx->pool->FetchPage(pid, LatchMode::kExclusive));
  ARIES_ASSIGN_OR_RETURN(
      Lsn lsn, LogHeap(ctx, txn, heap::kOpFormat, pid, heap::EncodeFormat(table_id)));
  ARIES_RETURN_NOT_OK(heap::Apply(heap::kOpFormat, heap::EncodeFormat(table_id),
                                  page.view()));
  page.MarkDirty(lsn);
  return pid;
}

Result<Rid> HeapFile::TryInsertOnPage(Transaction* txn, PageId pid,
                                      std::string_view record, bool* page_full) {
  *page_full = false;
  // At page/table granularity the data lock is coarse and may be contended:
  // take it unconditionally *before* latching (never wait for a lock under
  // a latch). At record granularity fresh-RID locks are uncontended and the
  // per-slot conditional requests below suffice.
  if (ctx_->options.lock_granularity != LockGranularity::kRecord) {
    ARIES_RETURN_NOT_OK(ctx_->locks->Lock(
        txn->id(),
        DataLockName(ctx_->options.lock_granularity, table_id_, Rid{pid, 0}),
        LockMode::kX, LockDuration::kCommit, /*conditional=*/false));
  }
  ARIES_ASSIGN_OR_RETURN(PageGuard page,
                         ctx_->pool->FetchPage(pid, LatchMode::kExclusive));
  PageView v = page.view();
  if (v.type() != PageType::kHeap || v.owner_id() != table_id_) {
    return Status::Corruption("heap chain page " + std::to_string(pid) +
                              " has wrong type/owner");
  }
  // Prefer reclaiming a committed tombstone: conditional X lock on the RID
  // proves the deleter is gone.
  uint16_t slot = v.slot_count();
  bool reuse = false;
  for (uint16_t i = 0; i < v.slot_count(); ++i) {
    if (!v.SlotTombstoned(i)) continue;
    Rid cand{pid, i};
    LockName name = DataLockName(ctx_->options.lock_granularity, table_id_, cand);
    // If WE already hold the X lock, the tombstone is (or may be) our own
    // uncommitted delete: reclaiming it would purge the old record's bytes
    // and make the delete impossible to undo. Skip it.
    if (ctx_->locks->Holds(txn->id(), name, LockMode::kX)) continue;
    // Otherwise a granted conditional X lock proves the deleter committed.
    Status ls = ctx_->locks->Lock(txn->id(), name, LockMode::kX,
                                  LockDuration::kCommit, /*conditional=*/true);
    if (ls.ok()) {
      slot = i;
      reuse = true;
      break;
    }
    if (!ls.IsBusy()) return ls;
  }
  if (!reuse) {
    // Fresh slot: space check. Tombstone reclamation freed nothing here.
    if (v.FreeSpaceForNewCell() < record.size() || v.slot_count() >= 0x7FFE) {
      *page_full = true;
      return Status::NoSpace();
    }
    Rid rid{pid, slot};
    // Lock the fresh RID. Nobody can contend (slot does not exist yet), but
    // the lock must exist before the insert becomes visible.
    Status ls = ctx_->locks->Lock(
        txn->id(), DataLockName(ctx_->options.lock_granularity, table_id_, rid),
        LockMode::kX, LockDuration::kCommit, /*conditional=*/true);
    if (!ls.ok()) return ls;
  } else {
    // Reused slot: after purge the old cell's bytes come back and no new
    // slot entry is needed, so the record must fit in raw free bytes plus
    // the reclaimed cell. FreeSpaceForNewCell() is wrong here: its zero
    // floor hides a deficit smaller than kSlotSize and would let us log an
    // insert that Apply() cannot place — an orphan record that poisons redo.
    size_t reclaim = v.SlotLen(slot);
    if (v.ContiguousFree() + v.FragmentedFree() + reclaim < record.size()) {
      *page_full = true;
      return Status::NoSpace();
    }
  }
  Rid rid{pid, slot};
  std::string payload = heap::EncodeInsert(slot, record);
  ARIES_ASSIGN_OR_RETURN(Lsn lsn, LogHeap(ctx_, txn, heap::kOpInsert, pid, payload));
  Status as = heap::Apply(heap::kOpInsert, payload, v);
  if (!as.ok()) return as;
  page.MarkDirty(lsn);
  return rid;
}

Result<PageId> HeapFile::ExtendChain(Transaction* txn, PageId last) {
  // The chain extension is a nested top action: once the new page is linked
  // in, other transactions may insert into it, so a rollback of *this*
  // transaction must not unlink it (paper §1.2 nested top actions).
  txn->BeginNta();
  auto res = ExtendChainBody(txn, last);
  ARIES_RETURN_NOT_OK(ctx_->txns->EndNta(txn));
  return res;
}

Result<PageId> HeapFile::ExtendChainBody(Transaction* txn, PageId last) {
  ARIES_ASSIGN_OR_RETURN(PageId fresh, ctx_->space->AllocatePage(txn));
  {
    ARIES_ASSIGN_OR_RETURN(PageGuard page,
                           ctx_->pool->FetchPage(fresh, LatchMode::kExclusive));
    std::string payload = heap::EncodeFormat(table_id_);
    ARIES_ASSIGN_OR_RETURN(Lsn lsn,
                           LogHeap(ctx_, txn, heap::kOpFormat, fresh, payload));
    ARIES_RETURN_NOT_OK(heap::Apply(heap::kOpFormat, payload, page.view()));
    page.MarkDirty(lsn);
  }
  {
    ARIES_ASSIGN_OR_RETURN(PageGuard page,
                           ctx_->pool->FetchPage(last, LatchMode::kExclusive));
    PageView v = page.view();
    if (v.next_page() != kInvalidPageId) {
      // Another inserter extended the chain concurrently; adopt theirs and
      // release ours back (cheap: the fresh page is empty).
      PageId theirs = v.next_page();
      ARIES_RETURN_NOT_OK(ctx_->space->FreePage(txn, fresh));
      return theirs;
    }
    std::string payload = heap::EncodeSetNext(v.next_page(), fresh);
    ARIES_ASSIGN_OR_RETURN(Lsn lsn,
                           LogHeap(ctx_, txn, heap::kOpSetNext, last, payload));
    ARIES_RETURN_NOT_OK(heap::Apply(heap::kOpSetNext, payload, v));
    page.MarkDirty(lsn);
  }
  return fresh;
}

// Locate the last page of the chain without walking it front-to-back:
// probe backward from the highest allocated page for a heap page of this
// table with no successor. The chain tail is almost always among the most
// recently allocated pages, so a cold start touches O(1) pages instead of
// fetching (and, under instant restart, lazily replaying) every page in
// the chain. The IsAllocated check rejects stale images of freed pages;
// finding nothing just means the caller walks the chain as before.
PageId HeapFile::FindChainTail() {
  auto highest = ctx_->space->HighestAllocated();
  if (!highest.ok()) return kInvalidPageId;
  for (PageId pid = highest.value() + 1; pid-- > kSpaceMapPages;) {
    auto alloc = ctx_->space->IsAllocated(pid);
    if (!alloc.ok() || !alloc.value()) continue;
    auto page = ctx_->pool->FetchPage(pid, LatchMode::kShared);
    if (!page.ok()) continue;
    PageView v = page.value().view();
    if (v.type() == PageType::kHeap && v.owner_id() == table_id_ &&
        v.next_page() == kInvalidPageId) {
      return pid;
    }
  }
  return kInvalidPageId;
}

Result<Rid> HeapFile::Insert(Transaction* txn, std::string_view record) {
  if (record.size() > ctx_->options.page_size / 2) {
    return Status::InvalidArgument("record larger than half a page");
  }
  PageId pid;
  bool warmed;
  {
    std::lock_guard<std::mutex> lk(hint_mu_);
    pid = insert_hint_;
    warmed = hint_warmed_;
  }
  if (!warmed) {
    // Cold hint (fresh open): jump to the chain tail. The warm hint never
    // moves backward either, so this does not change the reuse policy —
    // it only skips the one-time full-chain walk after a restart.
    PageId tail = FindChainTail();
    std::lock_guard<std::mutex> lk(hint_mu_);
    hint_warmed_ = true;
    if (tail != kInvalidPageId) insert_hint_ = tail;
    pid = insert_hint_;
  }
  PageId prev = kInvalidPageId;
  for (int hops = 0; hops < 1 << 20; ++hops) {
    bool page_full = false;
    auto res = TryInsertOnPage(txn, pid, record, &page_full);
    if (res.ok()) {
      std::lock_guard<std::mutex> lk(hint_mu_);
      insert_hint_ = pid;
      return res;
    }
    if (!res.status().IsNoSpace()) return res;
    // Walk the chain; extend at the end.
    PageId next;
    {
      ARIES_ASSIGN_OR_RETURN(PageGuard page,
                             ctx_->pool->FetchPage(pid, LatchMode::kShared));
      next = page.view().next_page();
    }
    prev = pid;
    if (next == kInvalidPageId) {
      ARIES_ASSIGN_OR_RETURN(next, ExtendChain(txn, prev));
    }
    pid = next;
  }
  return Status::Corruption("heap chain walk did not terminate");
}

Status HeapFile::Delete(Transaction* txn, Rid rid) {
  ARIES_ASSIGN_OR_RETURN(PageGuard page,
                         ctx_->pool->FetchPage(rid.page_id, LatchMode::kExclusive));
  PageView v = page.view();
  if (v.type() != PageType::kHeap || rid.slot >= v.slot_count() ||
      v.SlotDead(rid.slot) || v.SlotTombstoned(rid.slot)) {
    return Status::NotFound("no record at " + rid.ToString());
  }
  std::string payload = heap::EncodeDelete(rid.slot, v.Cell(rid.slot));
  ARIES_ASSIGN_OR_RETURN(Lsn lsn,
                         LogHeap(ctx_, txn, heap::kOpDelete, rid.page_id, payload));
  ARIES_RETURN_NOT_OK(heap::Apply(heap::kOpDelete, payload, v));
  page.MarkDirty(lsn);
  return Status::OK();
}

Result<std::string> HeapFile::Fetch(Rid rid) {
  ARIES_ASSIGN_OR_RETURN(PageGuard page,
                         ctx_->pool->FetchPage(rid.page_id, LatchMode::kShared));
  PageView v = page.view();
  if (v.type() != PageType::kHeap || rid.slot >= v.slot_count() ||
      v.SlotDead(rid.slot) || v.SlotTombstoned(rid.slot)) {
    return Status::NotFound("no record at " + rid.ToString());
  }
  return std::string(v.Cell(rid.slot));
}

Status HeapFile::Update(Transaction* txn, Rid rid, std::string_view record) {
  ARIES_ASSIGN_OR_RETURN(PageGuard page,
                         ctx_->pool->FetchPage(rid.page_id, LatchMode::kExclusive));
  PageView v = page.view();
  if (v.type() != PageType::kHeap || rid.slot >= v.slot_count() ||
      v.SlotDead(rid.slot) || v.SlotTombstoned(rid.slot)) {
    return Status::NotFound("no record at " + rid.ToString());
  }
  // A growing update frees the old cell and reallocates; make sure the new
  // record fits *before* logging, so the logged update is always applicable.
  if (record.size() > v.SlotLen(rid.slot) &&
      v.ContiguousFree() + v.FragmentedFree() + v.SlotLen(rid.slot) <
          record.size()) {
    return Status::NoSpace();
  }
  std::string payload = heap::EncodeUpdate(rid.slot, v.Cell(rid.slot), record);
  ARIES_ASSIGN_OR_RETURN(Lsn lsn,
                         LogHeap(ctx_, txn, heap::kOpUpdate, rid.page_id, payload));
  ARIES_RETURN_NOT_OK(heap::Apply(heap::kOpUpdate, payload, v));
  page.MarkDirty(lsn);
  return Status::OK();
}

Status HeapFile::ScanAll(std::vector<std::pair<Rid, std::string>>* out) {
  PageId pid = first_page_;
  while (pid != kInvalidPageId) {
    ARIES_ASSIGN_OR_RETURN(PageGuard page,
                           ctx_->pool->FetchPage(pid, LatchMode::kShared));
    PageView v = page.view();
    for (uint16_t i = 0; i < v.slot_count(); ++i) {
      if (v.SlotDead(i) || v.SlotTombstoned(i)) continue;
      out->emplace_back(Rid{pid, i}, std::string(v.Cell(i)));
    }
    pid = v.next_page();
  }
  return Status::OK();
}

}  // namespace ariesim
