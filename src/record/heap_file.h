// Heap file: a chain of slotted data pages holding a table's records.
// Records are addressed by stable RIDs. Slot reuse is guarded by the
// data-only locking discipline: a tombstoned slot may be reclaimed only
// after the would-be inserter wins a conditional X lock on its RID, which
// proves the old delete committed (paper §2.1 — the key lock *is* the
// record lock, so a still-rollback-able delete keeps its RID locked).
#pragma once

#include <mutex>
#include <vector>

#include "buffer/buffer_pool.h"
#include "common/context.h"
#include "common/status.h"
#include "lock/lock_manager.h"
#include "storage/space_manager.h"
#include "txn/transaction_manager.h"

namespace ariesim {

class HeapFile {
 public:
  /// `first_page` must already exist (Create) or be the page to adopt.
  HeapFile(EngineContext* ctx, ObjectId table_id, PageId first_page)
      : ctx_(ctx), table_id_(table_id), first_page_(first_page),
        insert_hint_(first_page) {}

  /// Allocate and format the first page of a new heap (logged under `txn`).
  static Result<PageId> Create(EngineContext* ctx, ObjectId table_id,
                               Transaction* txn);

  ObjectId table_id() const { return table_id_; }
  PageId first_page() const { return first_page_; }

  /// Insert a record; acquires the commit-duration X lock on the chosen RID
  /// (under the page latch, conditionally — a denial just means the slot
  /// cannot be reused yet and another slot/page is chosen).
  Result<Rid> Insert(Transaction* txn, std::string_view record);

  /// Delete the record at `rid`. The caller must already hold the X lock.
  Status Delete(Transaction* txn, Rid rid);

  /// Read the record at `rid`. Does not lock (locking is the caller's
  /// responsibility per the data-only protocol).
  Result<std::string> Fetch(Rid rid);

  /// Replace the record at `rid` (same-size-class; may fail kNoSpace).
  Status Update(Transaction* txn, Rid rid, std::string_view record);

  /// Scan every live record (test / verification helper).
  Status ScanAll(std::vector<std::pair<Rid, std::string>>* out);

 private:
  Result<Rid> TryInsertOnPage(Transaction* txn, PageId pid,
                              std::string_view record, bool* page_full);
  Result<PageId> ExtendChain(Transaction* txn, PageId last);
  Result<PageId> ExtendChainBody(Transaction* txn, PageId last);
  PageId FindChainTail();

  EngineContext* ctx_;
  ObjectId table_id_;
  PageId first_page_;
  std::mutex hint_mu_;
  PageId insert_hint_;
  bool hint_warmed_ = false;  ///< guarded by hint_mu_; set after tail probe
};

}  // namespace ariesim
