// ARIES/KVL-style key-value locking baseline [Moha90a], layered on the same
// tree. Locks are taken on (index, key-value) names — NOT on individual
// (key-value, RID) keys — which is exactly the coarseness ARIES/IM §1
// criticizes for nonunique indexes: one uncommitted insert of a value
// blocks every reader of any RID sharing that value. It also acquires
// strictly more locks per single-record operation than data-only locking
// because the record manager must still lock the record itself.
//
// The mode choices follow the ARIES/KVL summary table (simplified to the
// cases exercised here):
//   fetch:   S  commit  on current key value
//   insert:  X  instant on next key value, IX commit on own value
//            (unique index: X commit on own value)
//   delete:  X  commit  on next key value, IX commit on own value
//            (unique index: X commit on own value)
#include "btree/locking_protocol.h"

namespace ariesim {

namespace {

uint64_t HashKeyValue(std::string_view v) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : v) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

class KvlProtocol final : public LockingProtocol {
 public:
  KvlProtocol(LockManager* locks, ObjectId index_id, bool unique)
      : locks_(locks), index_id_(index_id), unique_(unique) {}

  LockName NameOf(const IndexKeyRef& k) const {
    if (k.eof) return LockName::IndexEof(index_id_);
    return LockName::KeyValue(index_id_, HashKeyValue(k.value));
  }
  LockName NameOfValue(std::string_view v) const {
    return LockName::KeyValue(index_id_, HashKeyValue(v));
  }

  Status LockFetchCurrent(Transaction* txn, const IndexKeyRef& key,
                          bool conditional) override {
    return locks_->Lock(txn->id(), NameOf(key), LockMode::kS,
                        LockDuration::kCommit, conditional);
  }
  Status LockUniqueCheck(Transaction* txn, const IndexKeyRef& key,
                         bool conditional) override {
    return locks_->Lock(txn->id(), NameOf(key), LockMode::kS,
                        LockDuration::kCommit, conditional);
  }
  Status LockInsertNext(Transaction* txn, const IndexKeyRef& next,
                        std::string_view insert_value,
                        bool conditional) override {
    // KVL optimization: if the next key carries the same key value as the
    // one being inserted (nonunique duplicate), the next-key-value lock
    // collapses into the own-value lock taken by LockInsertCurrent.
    if (!next.eof && next.value == insert_value) return Status::OK();
    return locks_->Lock(txn->id(), NameOf(next), LockMode::kX,
                        LockDuration::kInstant, conditional);
  }
  Status LockInsertCurrent(Transaction* txn, std::string_view value, Rid,
                           bool conditional) override {
    return locks_->Lock(txn->id(), NameOfValue(value),
                        unique_ ? LockMode::kX : LockMode::kIX,
                        LockDuration::kCommit, conditional);
  }
  Status LockDeleteNext(Transaction* txn, const IndexKeyRef& next,
                        std::string_view, bool conditional) override {
    return locks_->Lock(txn->id(), NameOf(next), LockMode::kX,
                        LockDuration::kCommit, conditional);
  }
  Status LockDeleteCurrent(Transaction* txn, std::string_view value, Rid,
                           bool conditional) override {
    return locks_->Lock(txn->id(), NameOfValue(value),
                        unique_ ? LockMode::kX : LockMode::kIX,
                        LockDuration::kCommit, conditional);
  }

 private:
  LockManager* locks_;
  ObjectId index_id_;
  bool unique_;
};

}  // namespace

std::unique_ptr<LockingProtocol> MakeKvlProtocol(LockManager* locks,
                                                 ObjectId index_id, bool unique) {
  return std::make_unique<KvlProtocol>(locks, index_id, unique);
}

}  // namespace ariesim
