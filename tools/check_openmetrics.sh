#!/usr/bin/env bash
# check_openmetrics.sh — lint Metrics::ToOpenMetrics() output (PR 9).
#
# Runs metrics_dump --selftest (or reads a file passed as $1) and checks the
# exposition's structural invariants:
#   * ends with a single terminal "# EOF" line
#   * every sample line belongs to a family announced by a "# TYPE" line,
#     and every family has a "# HELP" line
#   * counter families expose exactly one sample, suffixed "_total"
#   * gauge families expose exactly one unsuffixed sample
#   * histogram families expose _bucket series with strictly increasing
#     "le" values, non-decreasing cumulative counts, a "+Inf" bucket whose
#     value equals _count, plus _sum and _count
#
# Usage:
#   tools/check_openmetrics.sh                  # builds input via metrics_dump
#   tools/check_openmetrics.sh exposition.txt   # lint an existing dump
#   METRICS_DUMP=path tools/check_openmetrics.sh  # explicit binary location
set -u

cd "$(dirname "$0")/.."

INPUT=""
if [ $# -ge 1 ] && [ -f "$1" ]; then
  INPUT="$1"
else
  DUMP_BIN="${METRICS_DUMP:-build/examples/metrics_dump}"
  if [ ! -x "$DUMP_BIN" ]; then
    echo "check_openmetrics: $DUMP_BIN not built (cmake --build build)" >&2
    exit 1
  fi
  INPUT=$(mktemp /tmp/openmetrics.XXXXXX)
  trap 'rm -f "$INPUT"' EXIT
  if ! "$DUMP_BIN" --selftest > "$INPUT"; then
    echo "check_openmetrics: metrics_dump --selftest failed" >&2
    exit 1
  fi
fi

awk '
function fail(msg) { printf("FAIL line %d: %s\n", NR, msg); bad = 1 }

# --- comment lines -----------------------------------------------------------
/^# EOF$/ { saw_eof = 1; eof_line = NR; next }
/^# TYPE / {
  if (NF != 4) fail("malformed TYPE line")
  fam = $3; type[fam] = $4
  if ($4 != "counter" && $4 != "gauge" && $4 != "histogram")
    fail("unknown type " $4)
  next
}
/^# HELP / { help[$3] = 1; next }
/^# UNIT / { unit[$3] = 1; next }
/^#/ { fail("unrecognized comment line: " $0); next }

# --- sample lines ------------------------------------------------------------
{
  if (saw_eof) fail("sample after # EOF")
  name = $1; value = $2
  sub(/\{.*/, "", name)          # strip the label set for family lookup
  base = name
  sub(/_total$/, "", base)
  sub(/_bucket$/, "", base)
  sub(/_sum$/, "", base)
  sub(/_count$/, "", base)
  if (!(base in type)) { fail("sample for unannounced family: " $1); next }
  t = type[base]
  samples[base]++
  if (t == "counter") {
    if (name != base "_total") fail("counter sample must end _total: " $1)
    if (value + 0 < 0) fail("negative counter " $1)
  } else if (t == "gauge") {
    if (name != base) fail("gauge sample must be unsuffixed: " $1)
  } else if (t == "histogram") {
    if (name == base "_bucket") {
      le = $1
      sub(/.*le="/, "", le); sub(/".*/, "", le)
      if (le == "+Inf") {
        inf[base] = value + 0
        saw_inf[base] = 1
      } else {
        if (saw_inf[base]) fail("bucket after +Inf in " base)
        if (prev_le_set[base] && le + 0 <= prev_le[base])
          fail("le not strictly increasing in " base ": " le)
        if (prev_cnt_set[base] && value + 0 < prev_cnt[base])
          fail("cumulative bucket count decreased in " base)
        prev_le[base] = le + 0; prev_le_set[base] = 1
        prev_cnt[base] = value + 0; prev_cnt_set[base] = 1
      }
    } else if (name == base "_sum") {
      saw_sum[base] = 1
      if (value + 0 < 0) fail("negative _sum for " base)
    } else if (name == base "_count") {
      cnt[base] = value + 0
      saw_cnt[base] = 1
    } else {
      fail("unexpected histogram sample " $1)
    }
  }
}

END {
  if (!saw_eof) { printf("FAIL: missing terminal # EOF\n"); bad = 1 }
  for (fam in type) {
    if (!(fam in help)) { printf("FAIL: family %s has no HELP\n", fam); bad = 1 }
    if (!(fam in samples)) { printf("FAIL: family %s has no samples\n", fam); bad = 1 }
    if (type[fam] == "histogram") {
      if (!saw_inf[fam]) { printf("FAIL: %s has no +Inf bucket\n", fam); bad = 1 }
      if (!saw_sum[fam]) { printf("FAIL: %s has no _sum\n", fam); bad = 1 }
      if (!saw_cnt[fam]) { printf("FAIL: %s has no _count\n", fam); bad = 1 }
      if (saw_inf[fam] && saw_cnt[fam] && inf[fam] != cnt[fam]) {
        printf("FAIL: %s +Inf bucket (%d) != _count (%d)\n", fam, inf[fam], cnt[fam]); bad = 1
      }
      if (prev_cnt_set[fam] && saw_inf[fam] && prev_cnt[fam] > inf[fam]) {
        printf("FAIL: %s last finite bucket exceeds +Inf\n", fam); bad = 1
      }
      if (!(fam in unit)) { printf("FAIL: histogram %s has no UNIT\n", fam); bad = 1 }
    }
    fams++
  }
  if (fams == 0) { printf("FAIL: no families found\n"); bad = 1 }
  if (bad) exit 1
  printf("check_openmetrics: OK (%d families)\n", fams)
}
' "$INPUT"
exit $?
