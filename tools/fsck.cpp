// Offline consistency verifier:
//   fsck <db-dir> [page-size]
//
// Scans the closed database WITHOUT opening it through the engine —
// LogManager::Open truncates a torn log tail as a side effect, and a
// verifier must never modify what it verifies. Checks:
//   - wal.log: magic prologue, then a CRC walk of every record; reports the
//     first bad LSN (a torn tail) and the durable end of the log;
//   - data.db: the buffer pool's strict load predicate on every page — a
//     typed page must carry a matching checksum, an untyped page must be
//     entirely zero;
//   - cross-check: no page may carry a page_LSN beyond the durable end of
//     the log (a WAL-rule violation: the page got to disk before its log);
//   - page-index cross-check: every per-page LSN chain entry persisted in a
//     checkpoint's kPageIndex chunks must reference a real redoable record
//     for that page in the raw log walk — a divergent entry would make
//     instant restart replay garbage (or skip history) on first touch.
//
// Exit 0 when clean, 1 when findings were reported, 2 on usage/IO errors.
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/config.h"
#include "recovery/page_index.h"
#include "storage/page.h"
#include "storage/space_manager.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "wal/log_record.h"

using namespace ariesim;

namespace {

int findings = 0;

void Finding(const std::string& msg) {
  std::printf("FSCK: %s\n", msg.c_str());
  ++findings;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f.is_open()) return false;
  out->resize(static_cast<size_t>(f.tellg()));
  f.seekg(0);
  f.read(out->data(), static_cast<std::streamsize>(out->size()));
  return f.good() || out->empty();
}

/// Walk the log from the prologue; returns the durable end (the byte offset
/// one past the last record that parses with a valid CRC).
Lsn ScanLog(const std::string& log) {
  if (log.size() < kLogFilePrologue) {
    Finding("wal.log shorter than its prologue (" +
            std::to_string(log.size()) + " bytes)");
    return kLogFilePrologue;
  }
  if (DecodeFixed64(log.data()) != kLogMagic) {
    Finding("wal.log has a bad magic prologue");
    return kLogFilePrologue;
  }
  Lsn pos = kLogFilePrologue;
  uint64_t records = 0;
  while (pos < log.size()) {
    LogRecord rec;
    Status s = Status::Corruption("record header extends past end of file");
    if (pos + kLogHeaderSize <= log.size()) {
      s = LogRecord::Parse(
          std::string_view(log.data() + pos, log.size() - pos), &rec);
    }
    if (!s.ok()) {
      Finding("torn log tail: first bad LSN " + std::to_string(pos) + " (" +
              std::to_string(log.size() - pos) +
              " trailing bytes fail the CRC walk; restart recovery would "
              "truncate here)");
      break;
    }
    pos += rec.SerializedSize();
    ++records;
  }
  std::printf("fsck: wal.log %zu bytes, %llu records, durable end-of-log %llu\n",
              log.size(), static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(pos));
  return pos;
}

/// Cross-check every persisted page-index chunk against a second raw walk
/// of the durable log: each chain entry must name an LSN at which the log
/// really holds a redoable record for that page. The first divergence is
/// reported in detail; the rest are only counted.
void CheckPageIndex(const std::string& log, Lsn durable_end) {
  std::unordered_map<PageId, std::unordered_set<Lsn>> redoable;
  struct Chunk {
    Lsn lsn;
    std::string payload;
  };
  std::vector<Chunk> chunks;
  Lsn pos = kLogFilePrologue;
  while (pos < durable_end) {
    LogRecord rec;
    if (!LogRecord::Parse(
             std::string_view(log.data() + pos, log.size() - pos), &rec)
             .ok()) {
      break;  // already reported by ScanLog
    }
    if (rec.IsRedoable() && rec.page_id != kInvalidPageId) {
      redoable[rec.page_id].insert(pos);
    } else if (rec.type == LogType::kPageIndex) {
      chunks.push_back({pos, rec.payload});
    }
    pos += rec.SerializedSize();
  }
  uint64_t entries = 0;
  uint64_t divergent = 0;
  bool reported = false;
  for (const Chunk& c : chunks) {
    PageLsnChains chains;  // fresh per chunk: check each independently
    if (!PageLogIndex::ParseChunk(c.payload, &chains).ok()) {
      Finding("page-index chunk at LSN " + std::to_string(c.lsn) +
              " is malformed");
      continue;
    }
    for (const auto& [page, chain] : chains) {
      for (Lsn lsn : chain) {
        ++entries;
        auto it = redoable.find(page);
        if (it == redoable.end() || it->second.count(lsn) == 0) {
          ++divergent;
          if (!reported) {
            reported = true;
            Finding("page-index divergence: chunk at LSN " +
                    std::to_string(c.lsn) + " claims page " +
                    std::to_string(page) + " has a redoable record at LSN " +
                    std::to_string(lsn) +
                    ", but the raw log walk found none there");
          }
        }
      }
    }
  }
  if (divergent > 1) {
    Finding("page-index: " + std::to_string(divergent) +
            " divergent entr(ies) total (first reported above)");
  }
  std::printf(
      "fsck: page-index %zu chunk(s), %llu entr(ies) checked, %llu "
      "divergent\n",
      chunks.size(), static_cast<unsigned long long>(entries),
      static_cast<unsigned long long>(divergent));
}

void ScanData(std::string* data, size_t page_size, Lsn durable_end) {
  // Pad the trailing partial page with zeros, as DiskManager::ReadPage does.
  size_t npages = (data->size() + page_size - 1) / page_size;
  data->resize(npages * page_size, '\0');
  uint64_t corrupt = 0;
  for (size_t pid = 0; pid < npages; ++pid) {
    PageView v(data->data() + pid * page_size, page_size);
    if (v.type() == PageType::kInvalid) {
      if (std::string_view(data->data() + pid * page_size, page_size)
              .find_first_not_of('\0') != std::string_view::npos) {
        Finding("page " + std::to_string(pid) + " is unformatted but not blank");
        ++corrupt;
      }
      continue;
    }
    uint32_t crc = crc32c::Value(data->data() + pid * page_size + 4,
                                 page_size - 4);
    if (v.checksum() != crc32c::Mask(crc)) {
      Finding("page " + std::to_string(pid) + " (type " +
              std::to_string(static_cast<int>(v.type())) +
              ") fails its checksum");
      ++corrupt;
      continue;  // page_lsn is untrustworthy on a corrupt page
    }
    if (v.page_lsn() > durable_end) {
      Finding("page " + std::to_string(pid) + " carries page_lsn " +
              std::to_string(v.page_lsn()) +
              " beyond the durable end of the log " +
              std::to_string(durable_end) + " (WAL-rule violation)");
    }
  }
  std::printf("fsck: data.db %zu pages scanned, %llu corrupt\n", npages,
              static_cast<unsigned long long>(corrupt));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: fsck <db-dir> [page-size]\n");
    return 2;
  }
  const std::string dir = argv[1];
  size_t page_size = Options().page_size;
  if (argc == 3) page_size = std::stoul(argv[2]);
  if (page_size < 64) {
    std::fprintf(stderr, "fsck: implausible page size %zu\n", page_size);
    return 2;
  }

  std::string log;
  if (!ReadFile(dir + "/wal.log", &log)) {
    std::fprintf(stderr, "fsck: cannot read %s/wal.log\n", dir.c_str());
    return 2;
  }
  Lsn durable_end = ScanLog(log);
  CheckPageIndex(log, durable_end);

  std::string data;
  if (!ReadFile(dir + "/data.db", &data)) {
    std::fprintf(stderr, "fsck: cannot read %s/data.db\n", dir.c_str());
    return 2;
  }
  ScanData(&data, page_size, durable_end);

  if (findings == 0) {
    std::printf("fsck: clean\n");
    return 0;
  }
  std::printf("fsck: %d finding(s)\n", findings);
  return 1;
}
