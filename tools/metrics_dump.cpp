// metrics_dump — print a database's metrics in OpenMetrics/Prometheus text
// format (PR 9; docs/OBSERVABILITY.md "OpenMetrics exposition").
//
//   ./build/examples/metrics_dump <dbdir>    open <dbdir>, dump its registry
//   ./build/examples/metrics_dump --selftest run a small workload in a temp
//                                            dir first, so every counter and
//                                            histogram family has data
//
// The --selftest mode is what tools/check_openmetrics.sh lints in ctest: it
// guarantees a populated exposition without depending on an existing
// database directory.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "db/database.h"

using namespace ariesim;

namespace {

int Fail(const Status& s) {
  std::fprintf(stderr, "metrics_dump: %s\n", s.ToString().c_str());
  return 1;
}

// A few committed transactions through a real table+index so the commit
// breakdown, WAL, lock and latch families all have observations.
Status RunSelftestWorkload(Database* db) {
  auto table = db->CreateTable("t", 2);
  ARIES_RETURN_NOT_OK(table.status());
  auto index = db->CreateIndex("t", "t_k", 0, /*unique=*/true);
  ARIES_RETURN_NOT_OK(index.status());
  for (int i = 0; i < 50; i++) {
    Transaction* txn = db->Begin();
    char key[16];
    std::snprintf(key, sizeof(key), "k%04d", i);
    Status s = table.value()->Insert(txn, {key, "v"});
    if (!s.ok()) {
      db->Rollback(txn);
      return s;
    }
    ARIES_RETURN_NOT_OK(db->Commit(txn));
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <dbdir> | --selftest\n", argv[0]);
    return 2;
  }
  std::string dir = argv[1];
  const bool selftest = std::strcmp(argv[1], "--selftest") == 0;
  if (selftest) {
    dir = "/tmp/ariesim_metrics_dump_selftest";
    std::string cmd = "rm -rf " + dir;
    if (std::system(cmd.c_str()) != 0) {
      std::fprintf(stderr, "metrics_dump: cleanup of %s failed\n", dir.c_str());
      return 1;
    }
  }
  auto opened = Database::Open(dir);
  if (!opened.ok()) return Fail(opened.status());
  std::unique_ptr<Database> db = std::move(opened).value();
  if (selftest) {
    Status s = RunSelftestWorkload(db.get());
    if (!s.ok()) return Fail(s);
  }
  std::fputs(db->metrics().ToOpenMetrics().c_str(), stdout);
  return 0;
}
