// ariesh — an interactive shell over the ariesim engine.
//
// A small REPL a downstream user can poke the engine with: DDL, per-session
// transactions, point and range queries, crash simulation, WAL/metrics
// inspection. One implicit transaction per statement unless BEGIN..COMMIT /
// ROLLBACK brackets are used.
//
//   ./build/examples/ariesh /tmp/mydb
//
// Commands (case-insensitive keywords; strings are bare words):
//   create table <name> <ncols>
//   create index <name> on <table> <column> [unique] [kvl|indexspecific]
//   insert <table> <field1> <field2> ...
//   get <table> <index> <key>
//   scan <table> <index> <start> <stop>
//   delete <table> <index> <key>
//   begin | commit | rollback | savepoint | rollback_to
//   checkpoint | crash | validate <index> | stats | tables | help | quit
//   .stats                       structured engine snapshot (JSON)
//   .locks [dot|json]            lock-table snapshot + deadlock postmortems
//   .trace on|off|dump [path]    event tracer control (see docs/OBSERVABILITY.md)
//   .metrics                     OpenMetrics/Prometheus text exposition
//   .incident [reason]           last black-box record / force a capture
//   .watch [ms] [n]              live top-counters + commit-breakdown view
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics_sampler.h"
#include "db/database.h"

using namespace ariesim;

namespace {

struct Shell {
  std::string dir;
  Options options;
  std::unique_ptr<Database> db;
  Transaction* txn = nullptr;  // explicit transaction, if open
  Lsn savepoint = kNullLsn;

  bool Reopen() {
    db.reset();
    auto r = Database::Open(dir, options);
    if (!r.ok()) {
      std::printf("open failed: %s\n", r.status().ToString().c_str());
      return false;
    }
    db = std::move(r).value();
    txn = nullptr;
    const RestartStats& st = db->restart_stats();
    if (st.analysis_records > 0) {
      std::printf("recovered: %lu analyzed, %lu redone, %lu undone, %lu losers\n",
                  (unsigned long)st.analysis_records,
                  (unsigned long)st.redo_applied,
                  (unsigned long)st.undo_records, (unsigned long)st.loser_txns);
    }
    return true;
  }

  Transaction* Txn() { return txn != nullptr ? txn : db->Begin(); }
  void Finish(Transaction* t, bool ok_statement) {
    if (t == txn) return;  // explicit txn: user commits
    Status s = ok_statement ? db->Commit(t) : db->Rollback(t);
    if (!s.ok()) std::printf("txn end: %s\n", s.ToString().c_str());
  }

  void Execute(const std::vector<std::string>& tok);
};

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

void PrintRow(const Row& row, Rid rid) {
  std::printf("  [%s]", rid.ToString().c_str());
  for (const auto& f : row) std::printf(" %s", f.c_str());
  std::printf("\n");
}

void Shell::Execute(const std::vector<std::string>& tok) {
  const std::string cmd = Lower(tok[0]);
  if (cmd == "help") {
    std::printf(
        "create table <name> <ncols>\n"
        "create index <name> on <table> <col> [unique] [kvl|indexspecific]\n"
        "insert <table> <fields...>\n"
        "get <table> <index> <key>\n"
        "scan <table> <index> <start> <stop>\n"
        "delete <table> <index> <key>\n"
        "begin | commit | rollback | savepoint | rollback_to\n"
        "checkpoint | crash | validate <index> | stats | tables | quit\n"
        ".stats                      engine snapshot as JSON\n"
        ".locks                      lock-table snapshot + postmortems\n"
        ".locks dot                  waits-for graph as Graphviz DOT\n"
        ".locks json                 full lock forensics as JSON\n"
        ".trace on|off               enable/disable event tracing\n"
        ".trace dump [path]          write Chrome trace JSON (default "
        "trace.json)\n"
        ".metrics                    OpenMetrics/Prometheus exposition\n"
        ".incident [reason]          show the last black-box incident; with\n"
        "                            a reason, capture one first\n"
        ".watch [ms] [n]             redraw top counters, rates and commit\n"
        "                            breakdown every ms (default 1000), n\n"
        "                            times (default 10)\n");
    return;
  }
  if (cmd == "tables") {
    for (auto& [name, t] : db->catalog()->tables()) {
      std::printf("table %s (id %u, %u columns)\n", name.c_str(), t.id,
                  t.num_columns);
    }
    for (auto& [name, i] : db->catalog()->indexes()) {
      std::printf("index %s on table %u col %u%s root=%u\n", name.c_str(),
                  i.table_id, i.column, i.unique ? " unique" : "", i.root);
    }
    return;
  }
  if (cmd == "create" && tok.size() >= 4 && Lower(tok[1]) == "table") {
    auto r = db->CreateTable(tok[2], static_cast<uint32_t>(std::stoul(tok[3])));
    std::printf("%s\n", r.ok() ? "ok" : r.status().ToString().c_str());
    return;
  }
  if (cmd == "create" && tok.size() >= 6 && Lower(tok[1]) == "index") {
    bool unique = false;
    LockingProtocolKind proto = options.index_locking;
    for (size_t i = 6; i < tok.size(); ++i) {
      std::string f = Lower(tok[i]);
      if (f == "unique") unique = true;
      if (f == "kvl") proto = LockingProtocolKind::kKeyValue;
      if (f == "indexspecific") proto = LockingProtocolKind::kIndexSpecific;
    }
    auto r = db->CreateIndexWithProtocol(
        tok[4], tok[2], static_cast<uint32_t>(std::stoul(tok[5])), unique, proto);
    std::printf("%s\n", r.ok() ? "ok" : r.status().ToString().c_str());
    return;
  }
  if (cmd == "insert" && tok.size() >= 3) {
    Table* t = db->GetTable(tok[1]);
    if (t == nullptr) {
      std::printf("no table %s\n", tok[1].c_str());
      return;
    }
    Row row(tok.begin() + 2, tok.end());
    Transaction* x = Txn();
    Rid rid;
    Status s = t->Insert(x, row, &rid);
    Finish(x, s.ok());
    std::printf("%s\n", s.ok() ? ("ok " + rid.ToString()).c_str()
                               : s.ToString().c_str());
    return;
  }
  if ((cmd == "get" || cmd == "delete") && tok.size() >= 4) {
    Table* t = db->GetTable(tok[1]);
    if (t == nullptr) {
      std::printf("no table %s\n", tok[1].c_str());
      return;
    }
    Transaction* x = Txn();
    std::optional<Row> row;
    Rid rid;
    Status s = t->FetchByKey(x, tok[2], tok[3], &row, &rid);
    if (s.ok() && cmd == "get") {
      if (row.has_value()) {
        PrintRow(*row, rid);
      } else {
        std::printf("not found (next key locked for repeatable read)\n");
      }
    } else if (s.ok() && cmd == "delete") {
      if (!row.has_value()) {
        std::printf("not found\n");
      } else {
        s = t->Delete(x, rid);
        std::printf("%s\n", s.ok() ? "deleted" : s.ToString().c_str());
      }
    } else {
      std::printf("%s\n", s.ToString().c_str());
    }
    Finish(x, s.ok());
    return;
  }
  if (cmd == "scan" && tok.size() >= 5) {
    Table* t = db->GetTable(tok[1]);
    BTree* ix = db->GetIndex(tok[2]);
    if (t == nullptr || ix == nullptr) {
      std::printf("unknown table/index\n");
      return;
    }
    Transaction* x = Txn();
    TableScan scan(t, ix);
    Status s = scan.Open(x, tok[3], FetchCond::kGe);
    if (s.ok()) s = scan.SetStop(tok[4], /*inclusive=*/true);
    int n = 0;
    while (s.ok()) {
      Row row;
      Rid rid;
      bool done = false;
      s = scan.Next(x, &row, &rid, &done);
      if (!s.ok() || done) break;
      PrintRow(row, rid);
      ++n;
    }
    std::printf("%d row(s)%s\n", n, s.ok() ? "" : (" " + s.ToString()).c_str());
    Finish(x, s.ok());
    return;
  }
  if (cmd == "begin") {
    if (txn != nullptr) {
      std::printf("transaction already open\n");
    } else {
      txn = db->Begin();
      std::printf("txn %lu\n", (unsigned long)txn->id());
    }
    return;
  }
  if (cmd == "commit" || cmd == "rollback") {
    if (txn == nullptr) {
      std::printf("no open transaction\n");
      return;
    }
    Status s = cmd == "commit" ? db->Commit(txn) : db->Rollback(txn);
    std::printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
    txn = nullptr;
    return;
  }
  if (cmd == "savepoint") {
    if (txn == nullptr) {
      std::printf("no open transaction\n");
    } else {
      savepoint = txn->Savepoint();
      std::printf("savepoint at lsn %lu\n", (unsigned long)savepoint);
    }
    return;
  }
  if (cmd == "rollback_to") {
    if (txn == nullptr) {
      std::printf("no open transaction\n");
    } else {
      Status s = db->RollbackToSavepoint(txn, savepoint);
      std::printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
    }
    return;
  }
  if (cmd == "checkpoint") {
    Status s = db->Checkpoint();
    std::printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
    return;
  }
  if (cmd == "crash") {
    std::printf(">>> simulated crash; recovering...\n");
    db->SimulateCrash();
    Reopen();
    return;
  }
  if (cmd == "validate" && tok.size() >= 2) {
    BTree* ix = db->GetIndex(tok[1]);
    if (ix == nullptr) {
      std::printf("no index %s\n", tok[1].c_str());
      return;
    }
    size_t keys = 0;
    Status s = ix->Validate(&keys);
    std::printf("%s (%zu keys)\n", s.ToString().c_str(), keys);
    return;
  }
  if (cmd == "stats") {
    std::printf("%s\n", db->metrics().ToString().c_str());
    return;
  }
  if (cmd == ".stats") {
    std::printf("%s\n", db->Stats().ToJson().c_str());
    return;
  }
  if (cmd == ".incident") {
    // With an argument: force a capture first (`.incident disk smells off`),
    // then show what is on disk. Without: the previous incarnation's record.
    if (tok.size() >= 2) {
      std::string reason;
      for (size_t i = 1; i < tok.size(); ++i) {
        if (i > 1) reason += ' ';
        reason += tok[i];
      }
      Status s = db->CaptureIncident(reason);
      if (!s.ok()) {
        std::printf("capture failed: %s\n", s.ToString().c_str());
        return;
      }
      std::string json;
      s = BlackBox::ReadFile(db->blackbox()->path(), &json);
      if (!s.ok()) {
        std::printf("read failed: %s\n", s.ToString().c_str());
        return;
      }
      std::printf("%s\n", json.c_str());
      return;
    }
    const std::string& last = db->last_incident_json();
    if (last.empty()) {
      std::printf("no incident record (fresh directory, or recorder off)\n");
    } else {
      std::printf("%s\n", last.c_str());
    }
    return;
  }
  if (cmd == ".locks") {
    const std::string sub = tok.size() >= 2 ? Lower(tok[1]) : "";
    if (sub == "dot") {
      std::printf("%s", db->locks()->Snapshot().ToDot().c_str());
    } else if (sub == "json") {
      std::printf("%s\n", db->LockForensicsJson().c_str());
    } else {
      LockTableSnapshot snap = db->locks()->Snapshot();
      std::string text = snap.ToString();
      if (text.empty()) text = "(lock table empty)\n";
      std::printf("%s", text.c_str());
      std::vector<DeadlockPostmortem> pms = db->locks()->Postmortems();
      std::printf("%zu deadlock postmortem(s)\n", pms.size());
      for (const DeadlockPostmortem& pm : pms) {
        std::printf("  #%lu %s\n", (unsigned long)pm.seq,
                    pm.Summary().c_str());
      }
      for (const auto& e : db->locks()->TopContention(5)) {
        std::printf("  hot lock %s: %lu waits, %lu us\n",
                    e.key.ToString().c_str(), (unsigned long)e.waits,
                    (unsigned long)(e.wait_ns / 1000));
      }
    }
    return;
  }
  if (cmd == ".trace" && tok.size() >= 2) {
    const std::string sub = Lower(tok[1]);
    if (sub == "on" || sub == "off") {
      db->SetTracing(sub == "on");
      std::printf("tracing %s\n", db->tracing() ? "on" : "off");
    } else if (sub == "dump") {
      const std::string path = tok.size() >= 3 ? tok[2] : "trace.json";
      Status s = db->DumpTrace(path);
      if (s.ok()) {
        TraceCounts c = Tracer::Instance().Counts();
        std::printf("wrote %s (%lu events recorded, %lu dropped)\n",
                    path.c_str(), (unsigned long)c.recorded,
                    (unsigned long)c.dropped);
      } else {
        std::printf("%s\n", s.ToString().c_str());
      }
    } else {
      std::printf("usage: .trace on|off|dump [path]\n");
    }
    return;
  }
  if (cmd == ".metrics") {
    std::printf("%s", db->metrics().ToOpenMetrics().c_str());
    return;
  }
  if (cmd == ".watch") {
    // Live view on top of the sampler (manual mode: interval 0 spawns no
    // thread; this loop drives SampleOnce itself). Each redraw shows the
    // busiest counters by delta with their per-second rates, plus the
    // commit-breakdown share of each segment over the window.
    uint32_t interval_ms = 1000;
    int redraws = 10;
    if (tok.size() >= 2) interval_ms = static_cast<uint32_t>(std::stoul(tok[1]));
    if (tok.size() >= 3) redraws = std::stoi(tok[2]);
    if (interval_ms == 0) interval_ms = 1000;
    MetricsSampler watch(&db->metrics(), 0, "");
    MetricsSample prev = watch.SampleOnce();
    const char* const* cnames = Metrics::CounterNames();
    const char* const* hnames = Metrics::HistogramNames();
    for (int i = 0; i < redraws; i++) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      MetricsSample cur = watch.SampleOnce();
      double dt_s = static_cast<double>(cur.t_ns - prev.t_ns) / 1e9;
      if (dt_s <= 0) dt_s = 1;
      std::vector<std::pair<uint64_t, size_t>> deltas;
      for (size_t c = 0; c < Metrics::kCounterCount; c++) {
        uint64_t d = cur.counters[c] - prev.counters[c];
        if (d > 0) deltas.emplace_back(d, c);
      }
      std::sort(deltas.rbegin(), deltas.rend());
      std::printf("-- watch %d/%d (%.1fs window) --\n", i + 1, redraws, dt_s);
      size_t shown = 0;
      for (auto& [d, c] : deltas) {
        if (shown++ >= 8) break;
        std::printf("  %-26s +%-10lu %10.1f/s (total %lu)\n", cnames[c],
                    (unsigned long)d, static_cast<double>(d) / dt_s,
                    (unsigned long)cur.counters[c]);
      }
      if (deltas.empty()) std::printf("  (no counter activity)\n");
      // Commit-breakdown shares over this window, from the commit_seg_*
      // histogram sum deltas.
      uint64_t seg_total = 0;
      std::vector<std::pair<const char*, uint64_t>> segs;
      for (size_t h = 0; h < Metrics::kHistogramCount; h++) {
        const std::string name = hnames[h];
        if (name.rfind("commit_seg_", 0) != 0) continue;
        uint64_t d = cur.hists[h].sum_ns - prev.hists[h].sum_ns;
        segs.emplace_back(hnames[h] + sizeof("commit_seg_") - 1, d);
        seg_total += d;
      }
      if (seg_total > 0) {
        std::printf("  commit breakdown:");
        for (auto& [name, d] : segs) {
          std::printf(" %s %.1f%%", name,
                      100.0 * static_cast<double>(d) /
                          static_cast<double>(seg_total));
        }
        std::printf("\n");
      }
      prev = cur;
    }
    return;
  }
  std::printf("unknown command (try 'help')\n");
}

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  shell.dir = argc > 1 ? argv[1] : "/tmp/ariesh_db";
  if (!shell.Reopen()) return 1;
  std::printf("ariesim shell — db at %s (try 'help')\n", shell.dir.c_str());
  std::string line;
  while (true) {
    std::printf("%s> ", shell.txn != nullptr ? "txn" : "aries");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::istringstream ls(line);
    std::vector<std::string> tok;
    std::string w;
    while (ls >> w) tok.push_back(w);
    if (tok.empty()) continue;
    std::string cmd = tok[0];
    for (char& c : cmd) c = static_cast<char>(std::tolower(c));
    if (cmd == "quit" || cmd == "exit") break;
    shell.Execute(tok);
  }
  return 0;
}
