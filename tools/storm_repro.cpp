// Debug driver: reproduce the SMO-storm corruption and dump diagnostics,
// including the lock-forensics summary (postmortems + hot-lock contention)
// after the run.
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "db/database.h"
#include "util/random.h"

using namespace ariesim;

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::stoull(argv[1]) : 1;
  std::string dir = "/tmp/ariesim_storm";
  std::filesystem::remove_all(dir);
  Options o;
  o.page_size = 512;
  o.buffer_pool_frames = 512;
  o.fsync_log = false;
  auto db = std::move(Database::Open(dir, o).value());
  db->pool()->SetParanoid(true);
  db->CreateTable("t", 1).value();
  BTree* tree = db->CreateIndex("t", "ix", 0, false).value();

  constexpr int kWriters = 4;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  std::atomic<uint64_t> lost{0};
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Random rnd(seed * 1000 + 123 + static_cast<uint64_t>(w));
      std::vector<std::pair<std::string, Rid>> mine;
      while (!stop.load()) {
        Transaction* txn = db->Begin();
        for (int i = 0; i < 10; ++i) {
          if (mine.size() < 50 || rnd.Percent(55)) {
            std::string k =
                "w" + std::to_string(w) + "-" + rnd.Key(rnd.Uniform(100000), 6);
            Rid r{static_cast<PageId>(10000 + w),
                  static_cast<uint16_t>(mine.size() % 1000)};
            Status s = tree->Insert(txn, k, r);
            if (s.ok()) mine.emplace_back(k, r);
            else if (!s.IsDuplicate())
              std::fprintf(stderr, "insert fail: %s\n", s.ToString().c_str());
          } else {
            auto [k, r] = mine.back();
            Status s = tree->Delete(txn, k, r);
            if (s.ok()) mine.pop_back();
            else {
              lost.fetch_add(1);
              std::fprintf(stderr, "LOST KEY %s %s: %s\n", k.c_str(),
                           r.ToString().c_str(), s.ToString().c_str());
              mine.pop_back();
            }
          }
        }
        (void)db->Commit(txn);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  stop = true;
  for (auto& t : threads) t.join();
  for (const DeadlockPostmortem& pm : db->locks()->Postmortems()) {
    std::fprintf(stderr, "postmortem #%lu: %s\n", (unsigned long)pm.seq,
                 pm.Summary().c_str());
  }
  for (const auto& e : db->locks()->TopContention(5)) {
    std::fprintf(stderr, "hot lock %s: waits=%lu wait_us=%lu\n",
                 e.key.ToString().c_str(), (unsigned long)e.waits,
                 (unsigned long)(e.wait_ns / 1000));
  }
  size_t keys = 0;
  Status vs = tree->Validate(&keys);
  std::printf("validate: %s keys=%zu lost=%lu splits=%lu pagedel=%lu\n",
              vs.ToString().c_str(), keys,
              (unsigned long)lost.load(),
              (unsigned long)db->metrics().smo_splits.load(),
              (unsigned long)db->metrics().smo_page_deletes.load());
  return vs.ok() && lost.load() == 0 ? 0 : 1;
}
