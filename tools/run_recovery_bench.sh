#!/usr/bin/env bash
# Build and run the restart-recovery sweep, emitting BENCH_recovery.json at
# the repo root: log size x {classic, instant} over copies of the same crash
# image. Each row carries time-to-first-commit (ttfc_us), the Open wall time,
# and the lazy-replay counters (lazy_pages_scheduled, pages_recovered_lazily,
# lazy_chain_fallbacks, drain_us). The headline claim to eyeball: classic
# ttfc_us grows with rows while instant ttfc_us stays near-constant. See
# docs/ARCHITECTURE.md "Instant restart" and ISSUE/PR 8.
#
# Usage: tools/run_recovery_bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_recovery.json}"
cmake -B build -S . >/dev/null
cmake --build build -j --target bench_recovery >/dev/null
./build/bench/bench_recovery --recovery_json="${OUT}"
echo "done: ${OUT}"
