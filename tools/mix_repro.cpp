// Repro driver for the concurrent mixed workload with a watchdog that dumps
// the structured lock-table snapshot (plus the waits-for DOT graph and any
// deadlock postmortems) if progress stalls.
#include <execinfo.h>
#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "db/database.h"
#include "util/random.h"

using namespace ariesim;

namespace {
void DumpBacktrace(int) {
  void* frames[48];
  int n = backtrace(frames, 48);
  backtrace_symbols_fd(frames, n, STDERR_FILENO);
  ::write(STDERR_FILENO, "----\n", 5);
}
}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::stoull(argv[1]) : 1;
  int proto_i = argc > 2 ? std::atoi(argv[2]) : 0;
  std::string dir = "/tmp/ariesim_mix";
  std::filesystem::remove_all(dir);
  Options o;
  o.page_size = 512;
  o.buffer_pool_frames = 512;
  o.fsync_log = false;
  o.index_locking = static_cast<LockingProtocolKind>(proto_i);
  auto db = std::move(Database::Open(dir, o).value());
  // Belt and braces: the engine-side blocked-waiter watchdog dumps the same
  // snapshot if any single lock wait exceeds 2s, even if aggregate progress
  // continues.
  db->locks()->ConfigureWatchdog(2000);
  db->pool()->SetParanoid(true);
  Table* table = db->CreateTable("t", 2).value();
  db->CreateIndex("t", "pk", 0, true).value();

  constexpr int kThreads = 6;
  constexpr int kTxnsPerThread = 40;
  constexpr int kKeySpace = 200;
  std::atomic<uint64_t> done{0};
  std::atomic<uint64_t> progress{0};

  signal(SIGUSR1, DumpBacktrace);
  std::vector<std::thread> ts;
  for (int tid = 0; tid < kThreads; ++tid) {
    ts.emplace_back([&, tid] {
      Random rnd(seed * 1000 + tid);
      for (int t = 0; t < kTxnsPerThread; ++t) {
        progress.fetch_add(1);
        Transaction* txn = db->Begin();
        bool failed = false;
        int nops = static_cast<int>(rnd.Range(1, 4));
        for (int op = 0; op < nops && !failed; ++op) {
          std::string key = "k" + rnd.Key(rnd.Uniform(kKeySpace), 4);
          uint32_t dice = static_cast<uint32_t>(rnd.Uniform(100));
          if (dice < 40) {
            std::optional<Row> row;
            Status s = table->FetchByKey(txn, "pk", key, &row);
            if (!s.ok()) failed = true;
          } else if (dice < 75) {
            Status s = table->Insert(txn, {key, "v"});
            if (!s.ok() && !s.IsDuplicate()) failed = true;
          } else {
            std::optional<Row> row;
            Rid rid;
            Status s = table->FetchByKey(txn, "pk", key, &row, &rid);
            if (s.ok() && row.has_value()) {
              s = table->Delete(txn, rid);
              if (!s.ok() && !s.IsNotFound()) failed = true;
            } else if (!s.ok()) {
              failed = true;
            }
          }
        }
        if (failed || rnd.Percent(20)) {
          Status rs = db->Rollback(txn);
          if (!rs.ok()) {
            std::fprintf(stderr, "ROLLBACK FAILED txn %lu: %s\n",
                         (unsigned long)txn->id(), rs.ToString().c_str());
          }
        } else {
          Status cs = db->Commit(txn);
          if (!cs.ok()) {
            std::fprintf(stderr, "COMMIT FAILED txn %lu: %s\n",
                         (unsigned long)txn->id(), cs.ToString().c_str());
          }
        }
      }
      done.fetch_add(1);
    });
  }
  // Watchdog.
  uint64_t last = 0;
  int stalls = 0;
  while (done.load() < kThreads) {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    uint64_t now = progress.load();
    if (now == last) {
      if (++stalls >= 6) {
        LockTableSnapshot snap = db->locks()->Snapshot();
        std::fprintf(stderr, "STALLED. Lock state:\n%s\nwaits-for DOT:\n%s",
                     snap.ToString().c_str(), snap.ToDot().c_str());
        for (const DeadlockPostmortem& pm : db->locks()->Postmortems()) {
          std::fprintf(stderr, "postmortem #%lu: %s\n", (unsigned long)pm.seq,
                       pm.Summary().c_str());
        }
        for (auto& t : ts) {
          pthread_kill(t.native_handle(), SIGUSR1);
          std::this_thread::sleep_for(std::chrono::milliseconds(200));
        }
        std::_Exit(3);
      }
    } else {
      stalls = 0;
      last = now;
    }
  }
  for (auto& t : ts) t.join();
  size_t keys = 0;
  Status vs = db->GetIndex("pk")->Validate(&keys);
  std::printf("seed %lu proto %d: %s keys=%zu\n", (unsigned long)seed, proto_i,
              vs.ToString().c_str(), keys);
  return vs.ok() ? 0 : 1;
}
