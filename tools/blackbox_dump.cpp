// blackbox_dump — pretty-print a database's flight-recorder record offline
// (PR 10; docs/OBSERVABILITY.md "Flight recorder"). Sits next to fsck and
// wal_dump: point it at a crashed directory and it explains what the engine
// knew when it went down, without opening the database.
//
//   ./build/examples/blackbox_dump <dbdir>         dump <dbdir>/blackbox.json
//   ./build/examples/blackbox_dump <file>          dump a record file directly
//   ./build/examples/blackbox_dump --raw <path>    print the raw JSON
//   ./build/examples/blackbox_dump --selftest      create a temp database,
//                                                  capture an incident, crash
//                                                  it, reopen (annotating the
//                                                  record) and dump it
//
// Exit codes: 0 = record parsed, 1 = record exists but does not parse,
// 2 = usage / no record found. The --selftest mode is what
// tools/check_blackbox.sh lints in ctest.
#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "common/blackbox.h"
#include "db/database.h"

using namespace ariesim;

namespace {

int Fail(const char* what, const Status& s) {
  std::fprintf(stderr, "blackbox_dump: %s: %s\n", what, s.ToString().c_str());
  return 2;
}

std::string ResolvePath(const std::string& arg) {
  struct stat st;
  if (::stat(arg.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
    return arg + "/blackbox.json";
  }
  return arg;
}

// `fields` maps dotted paths of the first two object levels to scalar text
// (see ParseJson); absent keys print as "-".
std::string F(const std::map<std::string, std::string>& fields,
              const char* key) {
  auto it = fields.find(key);
  return it == fields.end() ? "-" : it->second;
}

bool Has(const std::map<std::string, std::string>& fields, const char* key) {
  return fields.count(key) > 0;
}

int DumpRecord(const std::string& path, bool raw) {
  std::string json;
  Status s = BlackBox::ReadFile(path, &json);
  if (!s.ok()) return Fail(path.c_str(), s);
  if (raw) {
    std::fputs(json.c_str(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  std::map<std::string, std::string> fields;
  std::string err;
  if (!ParseJson(json, &fields, &err)) {
    std::fprintf(stderr, "blackbox_dump: %s does not parse: %s\n",
                 path.c_str(), err.c_str());
    return 1;
  }
  std::printf("blackbox: %s (%zu bytes, parse OK)\n", path.c_str(),
              json.size());
  std::printf("seq=%s trigger=%s reason=\"%s\"\n", F(fields, "seq").c_str(),
              F(fields, "trigger").c_str(), F(fields, "reason").c_str());
  std::printf("captured: ts_unix_ms=%s pid=%s version=%s\n",
              F(fields, "ts_unix_ms").c_str(), F(fields, "pid").c_str(),
              F(fields, "version").c_str());
  std::printf("health: %s reason=\"%s\"\n", F(fields, "health").c_str(),
              F(fields, "health_reason").c_str());
  std::printf("wal: durable_lsn=%s next_lsn=%s last_lsn=%s\n",
              F(fields, "wal.durable_lsn").c_str(),
              F(fields, "wal.next_lsn").c_str(),
              F(fields, "wal.last_lsn").c_str());
  std::printf("fault: kind=%s site=%s armed=%s frozen=%s fires=%s\n",
              F(fields, "fault.kind").c_str(), F(fields, "fault.site").c_str(),
              F(fields, "fault.armed").c_str(),
              F(fields, "fault.frozen").c_str(),
              F(fields, "fault.fires").c_str());
  std::printf("restart: instant=%s loser_txns=%s total_us=%s\n",
              F(fields, "restart.instant").c_str(),
              F(fields, "restart.loser_txns").c_str(),
              F(fields, "restart.total_us").c_str());
  if (Has(fields, "incident.trigger")) {
    std::printf("incident: trigger=%s reason=\"%s\" seq=%s\n",
                F(fields, "incident.trigger").c_str(),
                F(fields, "incident.reason").c_str(),
                F(fields, "incident.seq").c_str());
  } else {
    std::printf("incident: none this incarnation\n");
  }
  if (Has(fields, "prev.trigger")) {
    std::printf("prev: trigger=%s reason=\"%s\"\n",
                F(fields, "prev.trigger").c_str(),
                F(fields, "prev.reason").c_str());
  }
  if (Has(fields, "recovery.mode")) {
    std::printf("recovery: mode=%s health_after=%s\n",
                F(fields, "recovery.mode").c_str(),
                F(fields, "recovery.health_after").c_str());
  } else {
    std::printf("recovery: not annotated (no reopen since capture)\n");
  }
  std::printf("sections: commit_breakdown=%s locks=%s trace_excerpt=%s "
              "openmetrics=%s(%zu chars)\n",
              json.find("\"commit_breakdown\":") != std::string::npos ? "yes"
                                                                      : "no",
              json.find("\"locks\":") != std::string::npos ? "yes" : "no",
              json.find("\"trace_excerpt\":") != std::string::npos ? "yes"
                                                                   : "no",
              Has(fields, "openmetrics") ? "yes" : "no",
              F(fields, "openmetrics").size());
  return 0;
}

// Exercise the full lifecycle: incident capture, crash, annotated reopen.
int Selftest() {
  const std::string dir = "/tmp/ariesim_blackbox_dump_selftest";
  std::string cmd = "rm -rf " + dir;
  if (std::system(cmd.c_str()) != 0) {
    std::fprintf(stderr, "blackbox_dump: cleanup of %s failed\n", dir.c_str());
    return 2;
  }
  Options opts;
  opts.blackbox_interval_ms = 0;  // deterministic: forced captures only
  {
    auto opened = Database::Open(dir, opts);
    if (!opened.ok()) return Fail("open", opened.status());
    std::unique_ptr<Database> db = std::move(opened).value();
    auto table = db->CreateTable("t", 2);
    if (!table.ok()) return Fail("create table", table.status());
    for (int i = 0; i < 20; i++) {
      Transaction* txn = db->Begin();
      char key[16];
      std::snprintf(key, sizeof(key), "k%04d", i);
      Status s = table.value()->Insert(txn, {key, "v"});
      if (s.ok()) s = db->Commit(txn);
      if (!s.ok()) return Fail("workload", s);
    }
    Status s = db->CaptureIncident("selftest incident");
    if (!s.ok()) return Fail("capture", s);
    db->SimulateCrash();
  }
  int rc;
  {
    auto reopened = Database::Open(dir, opts);
    if (!reopened.ok()) return Fail("reopen", reopened.status());
    std::unique_ptr<Database> db = std::move(reopened).value();
    if (db->last_incident_json().empty()) {
      std::fprintf(stderr, "blackbox_dump: reopen found no last_incident\n");
      return 1;
    }
    // Dump while the database is open: the on-disk record is the previous
    // incarnation's crash annotated with this open's recovery outcome (the
    // clean shutdown below will overwrite it with a "clean_shutdown" one).
    rc = DumpRecord(dir + "/blackbox.json", /*raw=*/false);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  bool raw = false;
  std::string target;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--raw") == 0) {
      raw = true;
    } else if (std::strcmp(argv[i], "--selftest") == 0) {
      return Selftest();
    } else {
      target = argv[i];
    }
  }
  if (target.empty()) {
    std::fprintf(stderr, "usage: %s [--raw] <dbdir-or-file> | --selftest\n",
                 argv[0]);
    return 2;
  }
  return DumpRecord(ResolvePath(target), raw);
}
