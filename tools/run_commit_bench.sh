#!/usr/bin/env bash
# Build and run the group-commit throughput sweep, emitting BENCH_commit.json
# at the repo root. See docs/ARCHITECTURE.md "Group commit" and ISSUE/PR 2.
# Each row also carries commit-latency and fsync-duration percentiles
# (commit_p50/p95/p99_us, fsync_p50/p95/p99_us) from the engine's built-in
# histograms — see docs/OBSERVABILITY.md.
#
# Usage: tools/run_commit_bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_commit.json}"
cmake -B build -S . >/dev/null
cmake --build build -j --target bench_throughput >/dev/null
./build/bench/bench_throughput --commit_json="${OUT}"
echo "done: ${OUT}"
