#!/usr/bin/env bash
# Build and run the group-commit throughput sweep, emitting BENCH_commit.json
# at the repo root. See docs/ARCHITECTURE.md "Group commit" and ISSUE/PR 2.
#
# Usage: tools/run_commit_bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_commit.json}"
cmake -B build -S . >/dev/null
cmake --build build -j --target bench_throughput >/dev/null
./build/bench/bench_throughput --commit_json="${OUT}"
echo "done: ${OUT}"
