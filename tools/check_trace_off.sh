#!/usr/bin/env bash
# Build check for the ARIESIM_TRACE=OFF configuration: the tracer must
# compile out completely (ARIES_TRACE_* macros expand to nothing, the Tracer
# stub keeps the API), the engine and every test must still build, and the
# observability suite must pass — its trace tests flip to asserting the stub
# behavior (Dump returns NotSupported). The concurrency-forensics layer
# (lock_forensics_test, part of the label) must work unchanged: only its
# lock.deadlock trace instant compiles away. Also asserts the blocked-waiter
# watchdog defaults off (Options::lock_watchdog_threshold_ms == 0).
#
#   tools/check_trace_off.sh            # configure + build + run label
#
# Uses a separate build tree (build-traceoff) so the default build's cache
# is untouched.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
build_dir="build-traceoff"

echo "=== ARIESIM_TRACE=OFF: configuring ${build_dir} ==="
cmake -B "${build_dir}" -S . -DARIESIM_TRACE=OFF \
      -DCMAKE_BUILD_TYPE=Release > /dev/null

echo "=== ARIESIM_TRACE=OFF: building ==="
cmake --build "${build_dir}" -j "${jobs}"

# The whole point of the option: no tracer symbols in the library.
if nm "${build_dir}/src/libariesim.a" 2>/dev/null | grep -q "trace_internal"; then
  echo "FAIL: trace_internal symbols present despite ARIESIM_TRACE=OFF" >&2
  exit 1
fi

echo "=== ARIESIM_TRACE=OFF: running observability tests ==="
ctest --test-dir "${build_dir}" -L observability --output-on-failure -j "${jobs}"

# Forensics must compile out with the tracer off except for the API itself:
# the deadlock trace-instant name must not reach the binary...
if strings "${build_dir}/src/libariesim.a" 2>/dev/null | grep -q "lock.deadlock"; then
  echo "FAIL: lock.deadlock trace literal present despite ARIESIM_TRACE=OFF" >&2
  exit 1
fi
# ...and the blocked-waiter watchdog must be off unless explicitly armed.
if ! grep -q "lock_watchdog_threshold_ms = 0" src/common/config.h; then
  echo "FAIL: lock_watchdog_threshold_ms no longer defaults to 0" >&2
  exit 1
fi

echo "=== ARIESIM_TRACE=OFF build check passed ==="
