#!/usr/bin/env bash
# Build check for the ARIESIM_TRACE=OFF configuration: the tracer must
# compile out completely (ARIES_TRACE_* macros expand to nothing, the Tracer
# stub keeps the API), the engine and every test must still build, and the
# observability suite must pass — its trace tests flip to asserting the stub
# behavior (Dump returns NotSupported).
#
#   tools/check_trace_off.sh            # configure + build + run label
#
# Uses a separate build tree (build-traceoff) so the default build's cache
# is untouched.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
build_dir="build-traceoff"

echo "=== ARIESIM_TRACE=OFF: configuring ${build_dir} ==="
cmake -B "${build_dir}" -S . -DARIESIM_TRACE=OFF \
      -DCMAKE_BUILD_TYPE=Release > /dev/null

echo "=== ARIESIM_TRACE=OFF: building ==="
cmake --build "${build_dir}" -j "${jobs}"

# The whole point of the option: no tracer symbols in the library.
if nm "${build_dir}/src/libariesim.a" 2>/dev/null | grep -q "trace_internal"; then
  echo "FAIL: trace_internal symbols present despite ARIESIM_TRACE=OFF" >&2
  exit 1
fi

echo "=== ARIESIM_TRACE=OFF: running observability tests ==="
ctest --test-dir "${build_dir}" -L observability --output-on-failure -j "${jobs}"

echo "=== ARIESIM_TRACE=OFF build check passed ==="
