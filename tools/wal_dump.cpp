// WAL dump utility: prints every log record, decoding btree/heap/meta ops.
//   wal_dump <db-dir> [page-id-filter]
#include <cstdio>
#include <string>

#include "btree/node.h"
#include "common/metrics.h"
#include "record/heap_page.h"
#include "recovery/page_index.h"
#include "wal/log_manager.h"

using namespace ariesim;

static const char* HeapOpName(uint8_t op) {
  static const char* kNames[] = {"?",      "insert",   "delete", "update",
                                 "format", "set_next", "unformat", "revive",
                                 "purge"};
  return op <= 8 ? kNames[op] : "??";
}

static const char* BtOpName(uint8_t op) {
  static const char* kNames[] = {"?",        "insert_key", "delete_key",
                                 "format",   "unformat",   "truncate",
                                 "restore",  "set_next",   "set_prev",
                                 "splice",   "unsplice",   "parent_rm",
                                 "parent_rs", "replace_all", "to_free",
                                 "from_free"};
  return op <= 15 ? kNames[op] : "??";
}

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: wal_dump <db-dir> [page-id]\n");
    return 1;
  }
  Metrics m;
  LogManager lm(std::string(argv[1]) + "/wal.log", &m, false);
  if (!lm.Open().ok()) return 1;
  PageId filter = argc > 2 ? static_cast<PageId>(std::stoul(argv[2]))
                           : kInvalidPageId;
  LogManager::Reader reader(&lm, kLogFilePrologue);
  LogRecord rec;
  while (reader.Next(&rec).ok()) {
    // Page-index chunks carry no page_id of their own; with a filter active
    // they pass through and print only the filtered page's chain.
    if (filter != kInvalidPageId && rec.page_id != filter &&
        rec.type != LogType::kPageIndex) {
      continue;
    }
    std::string extra;
    if (rec.type == LogType::kPageIndex) {
      // Checkpoint page-index chunk: page -> LSN chain of redoable records
      // (what instant restart replays on the page's first fetch).
      PageLsnChains chains;
      if (PageLogIndex::ParseChunk(rec.payload, &chains).ok()) {
        size_t entries = 0;
        for (auto& [p, c] : chains) entries += c.size();
        extra = " pages=" + std::to_string(chains.size()) +
                " entries=" + std::to_string(entries) + " {";
        bool first_page = true;
        for (auto& [p, c] : chains) {
          if (filter != kInvalidPageId && p != filter) continue;
          if (!first_page) extra += ' ';
          first_page = false;
          extra += std::to_string(p) + ":[";
          for (size_t i = 0; i < c.size(); ++i) {
            if (i > 0) extra += ',';
            extra += std::to_string(c[i]);
          }
          extra += ']';
        }
        extra += "}";
      } else {
        extra = " <malformed page-index payload>";
      }
    } else if (rec.rm == RmId::kHeap) {
      extra = std::string(" heap:") + HeapOpName(rec.op);
      switch (rec.op) {
        case heap::kOpInsert:
        case heap::kOpDelete:
        case heap::kOpUpdate:
        case heap::kOpRevive:
        case heap::kOpPurge: {
          BufferReader r(rec.payload);
          extra += " slot=" + std::to_string(r.GetFixed16());
          break;
        }
        case heap::kOpSetNext: {
          BufferReader r(rec.payload);
          PageId old_next = r.GetFixed32();
          PageId new_next = r.GetFixed32();
          extra += " " + std::to_string(old_next) + "->" +
                   std::to_string(new_next);
          break;
        }
        default:
          break;
      }
    } else if (rec.rm == RmId::kBtree) {
      extra = std::string(" bt:") + BtOpName(rec.op);
      if (rec.op == bt::kOpInsertKey || rec.op == bt::kOpDeleteKey) {
        std::string_view value;
        Rid rid;
        bt::DecodeKeyOp(rec.payload, nullptr, &value, &rid, nullptr);
        extra += " key='" + std::string(value) + "' rid=" + rid.ToString();
      } else if (rec.op == bt::kOpFormat) {
        BufferReader r(rec.payload);
        (void)r.GetFixed32();
        uint8_t type = r.GetFixed8();
        uint8_t level = r.GetFixed8();
        (void)r.GetFixed8();
        PageId prev = r.GetFixed32();
        PageId next = r.GetFixed32();
        uint16_t n = r.GetFixed16();
        extra += " type=" + std::to_string(type) + " lvl=" +
                 std::to_string(level) + " prev=" + std::to_string(prev) +
                 " next=" + std::to_string(next) + " cells[";
        for (uint16_t i = 0; i < n; ++i) {
          std::string_view cell = r.GetLengthPrefixed();
          if (level == 0 && type == 3) {
            bt::LeafEntry e = bt::DecodeLeafCell(cell);
            extra += std::string(e.value) + ",";
          } else {
            bt::InternalEntry e = bt::DecodeInternalCell(cell);
            extra += (e.inf ? std::string("INF") : std::string(e.value)) +
                     "->" + std::to_string(e.child) + ",";
          }
        }
        extra += "]";
      } else if (rec.op == bt::kOpTruncate) {
        BufferReader r(rec.payload);
        (void)r.GetFixed32();
        uint16_t from = r.GetFixed16();
        PageId old_next = r.GetFixed32();
        PageId new_next = r.GetFixed32();
        bool replace_last = r.GetFixed8() != 0;
        (void)r.GetLengthPrefixed();
        std::string_view new_last = r.GetLengthPrefixed();
        uint16_t n = r.GetFixed16();
        extra += " from=" + std::to_string(from) +
                 " old_next=" + std::to_string(old_next) +
                 " new_next=" + std::to_string(new_next) + " removed=" +
                 std::to_string(n);
        if (replace_last) {
          bt::InternalEntry e = bt::DecodeInternalCell(new_last);
          extra += " new_last=" + (e.inf ? std::string("INF")
                                         : std::string(e.value)) +
                   "->" + std::to_string(e.child);
        }
        extra += " removed_cells[";
        for (uint16_t i = 0; i < n; ++i) {
          std::string_view cell = r.GetLengthPrefixed();
          // Heuristic: internal cells end with a child id; leaf cells do
          // not. Print leaf decode (value only) which is safe for both.
          bt::LeafEntry e = bt::DecodeLeafCell(cell);
          extra += std::string(e.value) + ",";
        }
        extra += "]";
      } else if (rec.op == bt::kOpParentSplice) {
        BufferReader r(rec.payload);
        (void)r.GetFixed32();
        uint16_t slot = r.GetFixed16();
        (void)r.GetLengthPrefixed();
        bt::InternalEntry ne = bt::DecodeInternalCell(r.GetLengthPrefixed());
        bt::InternalEntry ie = bt::DecodeInternalCell(r.GetLengthPrefixed());
        extra += " slot=" + std::to_string(slot) + " new=" +
                 (ne.inf ? "INF" : std::string(ne.value)) + "->" +
                 std::to_string(ne.child) + " ins=" +
                 (ie.inf ? "INF" : std::string(ie.value)) + "->" +
                 std::to_string(ie.child);
      }
    }
    std::printf("%s%s\n", rec.ToString().c_str(), extra.c_str());
  }
  return 0;
}
