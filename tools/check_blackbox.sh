#!/usr/bin/env bash
# check_blackbox.sh — lint the flight recorder's record schema (PR 10).
#
# Sibling of check_openmetrics.sh: runs `blackbox_dump --selftest` (capture
# an incident, crash, reopen so the record is annotated, dump it) and checks
# the dump's structural invariants:
#   * the record parses (blackbox_dump exits 0)
#   * the envelope fields are present: seq, trigger, ts_unix_ms, version
#   * the engine-state sections are present: health, wal LSNs, fault state,
#     restart stats, commit_breakdown, locks, trace excerpt, openmetrics
#   * the reopen annotated the record (recovery: mode=...)
#   * the selftest's forced incident is reflected (trigger=simulate_crash,
#     incident trigger=manual from CaptureIncident)
#
# Usage:
#   tools/check_blackbox.sh                    # builds input via blackbox_dump
#   tools/check_blackbox.sh dump.txt           # lint an existing dump output
#   BLACKBOX_DUMP=path tools/check_blackbox.sh # explicit binary location
set -u

cd "$(dirname "$0")/.."

INPUT=""
if [ $# -ge 1 ] && [ -f "$1" ]; then
  INPUT="$1"
else
  DUMP_BIN="${BLACKBOX_DUMP:-build/examples/blackbox_dump}"
  if [ ! -x "$DUMP_BIN" ]; then
    echo "check_blackbox: $DUMP_BIN not built (cmake --build build)" >&2
    exit 1
  fi
  INPUT=$(mktemp /tmp/blackbox_dump.XXXXXX)
  trap 'rm -f "$INPUT"' EXIT
  if ! "$DUMP_BIN" --selftest > "$INPUT"; then
    echo "check_blackbox: blackbox_dump --selftest failed" >&2
    cat "$INPUT" >&2
    exit 1
  fi
fi

awk '
function fail(msg) { printf("FAIL: %s\n", msg); bad = 1 }

/^blackbox: /  { saw_header = 1
                 if ($0 !~ /parse OK/) fail("header does not say parse OK") }
/^seq=/        { saw_seq = 1
                 if ($0 !~ /trigger=[a-z_]+/) fail("no trigger on seq line")
                 if ($0 !~ /reason="/) fail("no reason on seq line") }
/^captured: /  { saw_captured = 1
                 if ($0 !~ /ts_unix_ms=[0-9]+/) fail("bad ts_unix_ms")
                 if ($0 !~ /version=1/) fail("record version is not 1") }
/^health: /    { saw_health = 1
                 if ($0 !~ /health: (healthy|read-only|failed) /)
                   fail("unknown health state: " $0) }
/^wal: /       { saw_wal = 1
                 if ($0 !~ /durable_lsn=[0-9]+/) fail("bad wal.durable_lsn")
                 if ($0 !~ /next_lsn=[0-9]+/) fail("bad wal.next_lsn") }
/^fault: /     { saw_fault = 1
                 if ($0 !~ /kind=[a-z?-]+/) fail("bad fault.kind")
                 if ($0 !~ /fires=[0-9]+/) fail("bad fault.fires") }
/^restart: /   { saw_restart = 1 }
/^incident: /  { saw_incident = 1 }
/^recovery: /  { saw_recovery = 1
                 if ($0 !~ /mode=(classic|instant|none)/)
                   fail("record not annotated with a recovery mode: " $0) }
/^sections: /  { saw_sections = 1
                 if ($0 !~ /commit_breakdown=yes/) fail("no commit_breakdown")
                 if ($0 !~ /locks=yes/) fail("no locks section")
                 if ($0 !~ /trace_excerpt=yes/) fail("no trace excerpt")
                 if ($0 !~ /openmetrics=yes/) fail("no openmetrics section") }

END {
  if (!saw_header)   fail("missing blackbox header line")
  if (!saw_seq)      fail("missing seq/trigger line")
  if (!saw_captured) fail("missing captured line")
  if (!saw_health)   fail("missing health line")
  if (!saw_wal)      fail("missing wal line")
  if (!saw_fault)    fail("missing fault line")
  if (!saw_restart)  fail("missing restart line")
  if (!saw_incident) fail("missing incident line")
  if (!saw_recovery) fail("missing recovery annotation line")
  if (!saw_sections) fail("missing sections line")
  if (bad) exit 1
  printf("check_blackbox: OK\n")
}
' "$INPUT"
exit $?
