#!/usr/bin/env bash
# Build and run the tier-1 test suite under ThreadSanitizer,
# AddressSanitizer and UndefinedBehaviorSanitizer (see ARIESIM_SANITIZE in
# the top-level CMakeLists).
#
#   tools/run_sanitized_tests.sh              # all three sanitizers
#   tools/run_sanitized_tests.sh thread       # TSan only
#   tools/run_sanitized_tests.sh address      # ASan only
#   tools/run_sanitized_tests.sh undefined    # UBSan only
#
# Extra arguments after the sanitizer name are forwarded to ctest, e.g.
#   tools/run_sanitized_tests.sh thread -R fault_injection
#   tools/run_sanitized_tests.sh thread -L stress   # stress suites only
#   tools/run_sanitized_tests.sh thread -L observability  # tracer/histograms
# The observability label covers the enable/disable-vs-recorder races in the
# tracer, concurrent histogram recording, the concurrency-forensics
# surface (lock-free contention sketches, Snapshot() sampled under an
# 8-thread storm, watchdog firing concurrent with waiters), and — since
# PR 9 — commit critical-path attribution (TLS breakdown binding vs the
# group-commit flusher's batch-phase timestamps, multithreaded commit
# harvest) plus the background metrics sampler (start/stop lifecycle,
# sampling concurrent with recording threads) and — since PR 10 — the
# flight recorder (cadence thread vs forced captures, trip/flush-failure
# observers firing from engine threads, trace dumps racing recorders
# across enable flips) — the TSan leg is what certifies them
# data-race-free (see docs/OBSERVABILITY.md).
# Stress-test seed lists can be narrowed for quicker sanitized runs:
#   ARIESIM_STRESS_SEEDS=1-4 tools/run_sanitized_tests.sh thread
set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=(thread address undefined)
if [[ $# -gt 0 && ( "$1" == "thread" || "$1" == "address" || "$1" == "undefined" ) ]]; then
  sanitizers=("$1")
  shift
fi

jobs=$(nproc 2>/dev/null || echo 4)

for san in "${sanitizers[@]}"; do
  build_dir="build-${san}san"
  echo "=== ${san} sanitizer: configuring ${build_dir} ==="
  cmake -B "${build_dir}" -S . -DARIESIM_SANITIZE="${san}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  echo "=== ${san} sanitizer: building ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== ${san} sanitizer: running tests ==="
  # halt_on_error makes a sanitizer report fail the test process (and thus
  # ctest) instead of scrolling past.
  TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+ $TSAN_OPTIONS}" \
  ASAN_OPTIONS="halt_on_error=1${ASAN_OPTIONS:+ $ASAN_OPTIONS}" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1${UBSAN_OPTIONS:+ $UBSAN_OPTIONS}" \
    ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" "$@"
  echo "=== ${san} sanitizer: PASS ==="
done
