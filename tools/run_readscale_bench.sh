#!/usr/bin/env bash
# Build and run the read-scaling sweep (95/5 fetch/insert mix at 1/2/4/8
# threads, optimistic vs pessimistic descent), emitting BENCH_readscale.json
# at the repo root. Each row carries throughput plus the latch-wait and
# read-descent histograms and the olc_* counter deltas — see
# docs/CONCURRENCY.md "Optimistic descent" and docs/METRICS.md.
#
# Usage: tools/run_readscale_bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_readscale.json}"
cmake -B build -S . >/dev/null
cmake --build build -j --target bench_readscale >/dev/null
./build/bench/bench_readscale --readscale_json="${OUT}"
echo "done: ${OUT}"
