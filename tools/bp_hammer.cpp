// Buffer-pool stale-read hammer: many pages, tiny pool, writer threads
// increment per-page counters under X latch; reader threads verify the
// counter never goes backwards. Any regression = stale reload.
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "buffer/buffer_pool.h"

using namespace ariesim;

int main() {
  std::string dir = "/tmp/ariesim_bp_hammer";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  Metrics m;
  DiskManager disk(dir + "/data.db", 512, &m);
  if (!disk.Open().ok()) return 2;
  LogManager log(dir + "/wal", &m, false);
  if (!log.Open().ok()) return 2;
  BufferPool pool(&disk, &log, /*frames=*/8, &m, true);

  constexpr int kPages = 64;
  constexpr int kThreads = 8;
  // Init pages with counter 0 at offset header.
  for (PageId p = 0; p < kPages; ++p) {
    auto g = pool.FetchPage(p, LatchMode::kExclusive);
    if (!g.ok()) return 2;
    g.value().view().Init(p, PageType::kHeap, 1, 0);
    g.value().MarkDirty(1);
  }
  std::vector<std::atomic<uint64_t>> shadow(kPages);
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      uint64_t x = 12345 + t;
      while (!stop.load()) {
        x = x * 6364136223846793005ull + 1;
        PageId p = static_cast<PageId>(x % kPages);
        auto g = pool.FetchPage(p, LatchMode::kExclusive);
        if (!g.ok()) { continue; }
        char* base = g.value().view().data() + kPageHeaderSize;
        uint64_t v = DecodeFixed64(base);
        uint64_t expect = shadow[p].load();
        if (v < expect) {
          std::fprintf(stderr, "STALE page %u: disk %lu < shadow %lu\n", p,
                       (unsigned long)v, (unsigned long)expect);
          errors.fetch_add(1);
        }
        EncodeFixed64(base, v + 1);
        shadow[p].store(v + 1);
        g.value().MarkDirty(v + 2);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::seconds(3));
  stop = true;
  for (auto& t : ts) t.join();
  std::printf("errors=%d writes=%lu reads=%lu\n", errors.load(),
              (unsigned long)m.pages_written.load(),
              (unsigned long)m.pages_read.load());
  return errors.load() == 0 ? 0 : 1;
}
