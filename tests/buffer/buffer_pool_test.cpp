// Buffer-pool tests: fetch/pin/latch, eviction under pressure, the WAL rule
// (log forced before a dirty steal), dirty-page-table snapshots, crash drop.
#include "buffer/buffer_pool.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "test_util.h"

namespace ariesim {
namespace {

using testing::TempDir;

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("bp");
    disk_ = std::make_unique<DiskManager>(dir_->path() + "/data.db", 512, &m_);
    ASSERT_OK(disk_->Open());
    log_ = std::make_unique<LogManager>(dir_->path() + "/wal", &m_, false);
    ASSERT_OK(log_->Open());
  }
  std::unique_ptr<BufferPool> MakePool(size_t frames) {
    return std::make_unique<BufferPool>(disk_.get(), log_.get(), frames, &m_,
                                        /*verify_checksums=*/true);
  }
  Metrics m_;
  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<LogManager> log_;
};

TEST_F(BufferPoolTest, FetchInitializeFlushRefetch) {
  auto pool = MakePool(8);
  {
    auto g = pool->FetchPage(5, LatchMode::kExclusive);
    ASSERT_TRUE(g.ok());
    PageView v = g.value().view();
    v.Init(5, PageType::kHeap, 1, 0);
    g.value().MarkDirty(100);
  }
  ASSERT_OK(pool->FlushPage(5));
  // New pool (cold cache) re-reads from disk with checksum verification.
  auto pool2 = MakePool(8);
  auto g2 = pool2->FetchPage(5, LatchMode::kShared);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2.value().view().type(), PageType::kHeap);
  EXPECT_EQ(g2.value().view().page_lsn(), 100u);
}

TEST_F(BufferPoolTest, EvictionWritesDirtyVictims) {
  auto pool = MakePool(4);
  // Dirty 10 pages through a 4-frame pool: evictions must persist them.
  for (PageId id = 0; id < 10; ++id) {
    auto g = pool->FetchPage(id, LatchMode::kExclusive);
    ASSERT_TRUE(g.ok());
    g.value().view().Init(id, PageType::kHeap, 1, 0);
    g.value().view().set_level(static_cast<uint8_t>(id));
    g.value().MarkDirty(1000 + id);
  }
  for (PageId id = 0; id < 10; ++id) {
    auto g = pool->FetchPage(id, LatchMode::kShared);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.value().view().level(), id) << "page " << id;
  }
}

TEST_F(BufferPoolTest, WalRuleForcesLogBeforeSteal) {
  auto pool = MakePool(2);
  LogRecord rec;
  rec.type = LogType::kUpdate;
  rec.rm = RmId::kHeap;
  rec.op = 1;
  Lsn lsn = log_->Append(&rec).value();
  Lsn rec_end = lsn + rec.SerializedSize();
  {
    auto g = pool->FetchPage(1, LatchMode::kExclusive);
    ASSERT_TRUE(g.ok());
    g.value().view().Init(1, PageType::kHeap, 1, 0);
    g.value().MarkDirty(rec_end);  // page_LSN points past the record
  }
  EXPECT_LT(log_->flushed_lsn(), rec_end);
  // Evict page 1 by touching two other pages.
  { auto a = pool->FetchPage(2, LatchMode::kShared); ASSERT_TRUE(a.ok()); }
  { auto b = pool->FetchPage(3, LatchMode::kShared); ASSERT_TRUE(b.ok()); }
  EXPECT_GE(log_->flushed_lsn(), rec_end)
      << "dirty steal must force the log up to page_LSN first";
}

TEST_F(BufferPoolTest, PoolExhaustionReturnsBusy) {
  auto pool = MakePool(2);
  auto a = pool->FetchPage(1, LatchMode::kShared);
  auto b = pool->FetchPage(2, LatchMode::kShared);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = pool->FetchPage(3, LatchMode::kShared);
  EXPECT_TRUE(c.status().IsBusy());
}

TEST_F(BufferPoolTest, TryFetchRespectsHeldLatch) {
  auto pool = MakePool(4);
  auto x = pool->FetchPage(1, LatchMode::kExclusive);
  ASSERT_TRUE(x.ok());
  auto s = pool->TryFetchPage(1, LatchMode::kShared);
  EXPECT_TRUE(s.status().IsBusy());
  x.value().Release();
  auto s2 = pool->TryFetchPage(1, LatchMode::kShared);
  EXPECT_TRUE(s2.ok());
}

TEST_F(BufferPoolTest, DirtyPageTableTracksRecLsn) {
  auto pool = MakePool(8);
  {
    auto g = pool->FetchPage(1, LatchMode::kExclusive);
    ASSERT_TRUE(g.ok());
    g.value().view().Init(1, PageType::kHeap, 1, 0);
    g.value().MarkDirty(500);
    g.value().MarkDirty(900);  // recLSN stays at first dirtying
  }
  auto dpt = pool->DirtyPageTable();
  ASSERT_EQ(dpt.size(), 1u);
  EXPECT_EQ(dpt[0].first, 1u);
  EXPECT_EQ(dpt[0].second, 500u);
  ASSERT_OK(pool->FlushPage(1));
  EXPECT_TRUE(pool->DirtyPageTable().empty());
}

TEST_F(BufferPoolTest, DropAllLosesUnflushed) {
  auto pool = MakePool(8);
  {
    auto g = pool->FetchPage(1, LatchMode::kExclusive);
    ASSERT_TRUE(g.ok());
    g.value().view().Init(1, PageType::kHeap, 7, 0);
    g.value().MarkDirty(10);
  }
  pool->DropAll();
  auto g = pool->FetchPage(1, LatchMode::kShared);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().view().type(), PageType::kInvalid)
      << "unflushed page must be gone after a crash-drop";
}

TEST_F(BufferPoolTest, PinGuardPreventsEviction) {
  auto pool = MakePool(2);
  auto pin = pool->PinPage(1);
  ASSERT_TRUE(pin.ok());
  { auto g = pool->FetchPage(2, LatchMode::kShared); ASSERT_TRUE(g.ok()); }
  // Only one unpinned frame exists; page 1 must still be resident and
  // fetchable without exhaustion errors from thrashing its frame.
  { auto g = pool->FetchPage(3, LatchMode::kShared); ASSERT_TRUE(g.ok()); }
  auto g1 = pool->FetchPage(1, LatchMode::kShared);
  ASSERT_TRUE(g1.ok());
}

TEST_F(BufferPoolTest, ConcurrentFetchesOfSamePage) {
  auto pool = MakePool(4);
  {
    auto g = pool->FetchPage(1, LatchMode::kExclusive);
    ASSERT_TRUE(g.ok());
    g.value().view().Init(1, PageType::kHeap, 1, 0);
    g.value().MarkDirty(1);
  }
  std::vector<std::thread> ts;
  std::atomic<int> ok_count{0};
  for (int t = 0; t < 8; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        auto g = pool->FetchPage(1, LatchMode::kShared);
        if (g.ok() && g.value().view().type() == PageType::kHeap) {
          ok_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(ok_count.load(), 8 * 200);
}

TEST_F(BufferPoolTest, ChecksumCorruptionDetected) {
  auto pool = MakePool(4);
  {
    auto g = pool->FetchPage(1, LatchMode::kExclusive);
    ASSERT_TRUE(g.ok());
    g.value().view().Init(1, PageType::kHeap, 1, 0);
    g.value().MarkDirty(5);
  }
  ASSERT_OK(pool->FlushPage(1));
  // Corrupt the page body on disk behind the pool's back.
  std::string raw(512, '\0');
  ASSERT_OK(disk_->ReadPage(1, raw.data()));
  raw[100] ^= 0x7f;
  ASSERT_OK(disk_->WritePage(1, raw.data()));
  auto pool2 = MakePool(4);
  auto g = pool2->FetchPage(1, LatchMode::kShared);
  EXPECT_EQ(g.status().code(), Code::kCorruption);
}

}  // namespace
}  // namespace ariesim
