// Bounded logging under repeated failures (paper §1.2): CLR chaining via
// UndoNxtLSN guarantees that no matter how many times the system crashes
// during restart, each loser record is compensated at most once, so the log
// grows by at most O(remaining undo work) per attempt — never re-undoing
// what previous attempts already compensated.
#include <gtest/gtest.h>

#include "db/database.h"
#include "test_util.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

TEST(RepeatedCrashTest, CrashStormDuringRecoveryConverges) {
  TempDir dir("storm");
  constexpr int kLoserRecords = 60;
  {
    auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
    Table* t = db->CreateTable("t", 2).value();
    ASSERT_TRUE(db->CreateIndex("t", "pk", 0, true).ok());
    Transaction* loser = db->Begin();
    for (int i = 0; i < kLoserRecords; ++i) {
      ASSERT_OK(t->Insert(loser, {"k" + std::to_string(i), "v"}));
    }
    ASSERT_OK(db->wal()->FlushAll());
    ASSERT_OK(db->FlushAllPages());
    db->SimulateCrash();
  }

  // Crash during every recovery attempt after 7 undo steps; each attempt
  // must make monotone forward progress via CLRs.
  Options broken = SmallPageOptions();
  broken.recover_on_open = false;
  int attempts = 0;
  uint64_t prev_log_size = 0;
  for (; attempts < 100; ++attempts) {
    auto db = std::move(Database::Open(dir.path(), broken)).value();
    db->recovery()->TestStopUndoAfter(7);
    RestartStats stats;
    Status s = db->recovery()->Restart(&stats);
    if (s.ok()) break;  // recovery completed before the injection fired
    ASSERT_EQ(s.code(), Code::kIOError);
    ASSERT_OK(db->wal()->FlushAll());
    uint64_t log_size = db->wal()->next_lsn();
    if (prev_log_size != 0) {
      // Bounded logging: each attempt adds at most ~7 CLRs + bookkeeping.
      EXPECT_LT(log_size - prev_log_size, 4096u)
          << "unbounded log growth across repeated recovery crashes";
    }
    prev_log_size = log_size;
    db->SimulateCrash();
  }
  EXPECT_LT(attempts, 40) << "recovery never converged";

  auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
  size_t keys = 1;
  ASSERT_OK(db->GetIndex("pk")->Validate(&keys));
  EXPECT_EQ(keys, 0u);
}

TEST(RepeatedCrashTest, EachRecordCompensatedAtMostOnce) {
  TempDir dir("once");
  {
    auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
    Table* t = db->CreateTable("t", 2).value();
    ASSERT_TRUE(db->CreateIndex("t", "pk", 0, true).ok());
    Transaction* loser = db->Begin();
    for (int i = 0; i < 20; ++i) {
      ASSERT_OK(t->Insert(loser, {"k" + std::to_string(i), "v"}));
    }
    ASSERT_OK(db->wal()->FlushAll());
    ASSERT_OK(db->FlushAllPages());
    db->SimulateCrash();
  }
  // Count CLRs written across a two-attempt recovery (crash after 5 undos,
  // then full recovery): total CLR count must equal a single clean
  // recovery's CLR count.
  auto count_clrs = [&](const std::string& path) {
    Metrics m;
    LogManager lm(path + "/wal.log", &m, false);
    EXPECT_TRUE(lm.Open().ok());
    LogManager::Reader reader(&lm, kLogFilePrologue);
    LogRecord rec;
    uint64_t clrs = 0;
    while (reader.Next(&rec).ok()) {
      if (rec.IsClr() && !rec.IsDummyClr()) ++clrs;
    }
    return clrs;
  };
  {
    Options broken = SmallPageOptions();
    broken.recover_on_open = false;
    auto db = std::move(Database::Open(dir.path(), broken)).value();
    db->recovery()->TestStopUndoAfter(5);
    RestartStats stats;
    EXPECT_FALSE(db->recovery()->Restart(&stats).ok());
    ASSERT_OK(db->wal()->FlushAll());
    db->SimulateCrash();
  }
  {
    auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
    size_t keys = 1;
    ASSERT_OK(db->GetIndex("pk")->Validate(&keys));
    EXPECT_EQ(keys, 0u);
  }
  // 20 row inserts = 20 heap records + 20 index records (+ allocations and
  // chain NTAs, which write regular records or dummy CLRs, not counted).
  // Each undoable record must be compensated exactly once across both
  // recovery attempts.
  uint64_t clrs = count_clrs(dir.path());
  EXPECT_GE(clrs, 40u);
  EXPECT_LE(clrs, 60u) << "records compensated more than once";
}

TEST(RepeatedCrashTest, CrashImmediatelyAfterRecoveryIsCheap) {
  TempDir dir("cheap");
  {
    auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
    Table* t = db->CreateTable("t", 2).value();
    ASSERT_TRUE(db->CreateIndex("t", "pk", 0, true).ok());
    Transaction* txn = db->Begin();
    for (int i = 0; i < 100; ++i) {
      ASSERT_OK(t->Insert(txn, {"k" + std::to_string(i), "v"}));
    }
    ASSERT_OK(db->Commit(txn));
    db->SimulateCrash();
  }
  uint64_t first_redo = 0;
  {
    auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
    first_redo = db->restart_stats().redo_applied;
    EXPECT_GT(first_redo, 0u);
    db->SimulateCrash();  // crash right after recovery's checkpoint
  }
  {
    auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
    // The checkpoint taken at the end of the previous recovery bounds this
    // pass: nothing (or almost nothing) to redo. NB: recovery does not
    // flush data pages, so redo may re-apply to pages that never reached
    // disk — but the analysis scan itself must be short.
    EXPECT_LE(db->restart_stats().analysis_records, 10u);
  }
}

}  // namespace
}  // namespace ariesim
