// Bounded logging under repeated failures (paper §1.2): CLR chaining via
// UndoNxtLSN guarantees that no matter how many times the system crashes
// during restart, each loser record is compensated at most once, so the log
// grows by at most O(remaining undo work) per attempt — never re-undoing
// what previous attempts already compensated.
#include <gtest/gtest.h>

#include "db/database.h"
#include "record/heap_file.h"
#include "test_util.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

TEST(RepeatedCrashTest, CrashStormDuringRecoveryConverges) {
  TempDir dir("storm");
  constexpr int kLoserRecords = 60;
  {
    auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
    Table* t = db->CreateTable("t", 2).value();
    ASSERT_TRUE(db->CreateIndex("t", "pk", 0, true).ok());
    Transaction* loser = db->Begin();
    for (int i = 0; i < kLoserRecords; ++i) {
      ASSERT_OK(t->Insert(loser, {"k" + std::to_string(i), "v"}));
    }
    ASSERT_OK(db->wal()->FlushAll());
    ASSERT_OK(db->FlushAllPages());
    db->SimulateCrash();
  }

  // Crash during every recovery attempt after 7 undo steps; each attempt
  // must make monotone forward progress via CLRs.
  Options broken = SmallPageOptions();
  broken.recover_on_open = false;
  int attempts = 0;
  uint64_t prev_log_size = 0;
  for (; attempts < 100; ++attempts) {
    auto db = std::move(Database::Open(dir.path(), broken)).value();
    db->recovery()->TestStopUndoAfter(7);
    RestartStats stats;
    Status s = db->recovery()->Restart(&stats);
    if (s.ok()) break;  // recovery completed before the injection fired
    ASSERT_EQ(s.code(), Code::kIOError);
    ASSERT_OK(db->wal()->FlushAll());
    uint64_t log_size = db->wal()->next_lsn();
    if (prev_log_size != 0) {
      // Bounded logging: each attempt adds at most ~7 CLRs + bookkeeping.
      EXPECT_LT(log_size - prev_log_size, 4096u)
          << "unbounded log growth across repeated recovery crashes";
    }
    prev_log_size = log_size;
    db->SimulateCrash();
  }
  EXPECT_LT(attempts, 40) << "recovery never converged";

  auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
  size_t keys = 1;
  ASSERT_OK(db->GetIndex("pk")->Validate(&keys));
  EXPECT_EQ(keys, 0u);
}

TEST(RepeatedCrashTest, EachRecordCompensatedAtMostOnce) {
  TempDir dir("once");
  {
    auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
    Table* t = db->CreateTable("t", 2).value();
    ASSERT_TRUE(db->CreateIndex("t", "pk", 0, true).ok());
    Transaction* loser = db->Begin();
    for (int i = 0; i < 20; ++i) {
      ASSERT_OK(t->Insert(loser, {"k" + std::to_string(i), "v"}));
    }
    ASSERT_OK(db->wal()->FlushAll());
    ASSERT_OK(db->FlushAllPages());
    db->SimulateCrash();
  }
  // Count CLRs written across a two-attempt recovery (crash after 5 undos,
  // then full recovery): total CLR count must equal a single clean
  // recovery's CLR count.
  auto count_clrs = [&](const std::string& path) {
    Metrics m;
    LogManager lm(path + "/wal.log", &m, false);
    EXPECT_TRUE(lm.Open().ok());
    LogManager::Reader reader(&lm, kLogFilePrologue);
    LogRecord rec;
    uint64_t clrs = 0;
    while (reader.Next(&rec).ok()) {
      if (rec.IsClr() && !rec.IsDummyClr()) ++clrs;
    }
    return clrs;
  };
  {
    Options broken = SmallPageOptions();
    broken.recover_on_open = false;
    auto db = std::move(Database::Open(dir.path(), broken)).value();
    db->recovery()->TestStopUndoAfter(5);
    RestartStats stats;
    EXPECT_FALSE(db->recovery()->Restart(&stats).ok());
    ASSERT_OK(db->wal()->FlushAll());
    db->SimulateCrash();
  }
  {
    auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
    size_t keys = 1;
    ASSERT_OK(db->GetIndex("pk")->Validate(&keys));
    EXPECT_EQ(keys, 0u);
  }
  // 20 row inserts = 20 heap records + 20 index records (+ allocations and
  // chain NTAs, which write regular records or dummy CLRs, not counted).
  // Each undoable record must be compensated exactly once across both
  // recovery attempts.
  uint64_t clrs = count_clrs(dir.path());
  EXPECT_GE(clrs, 40u);
  EXPECT_LE(clrs, 60u) << "records compensated more than once";
}

TEST(RepeatedCrashTest, RedoIsIdempotentAcrossRecoveries) {
  // page_LSN-gated redo: a second recovery over the same log must SKIP every
  // update the first recovery already applied and flushed — scanning the
  // records again is fine, re-applying them is not (it would, e.g., insert
  // index keys twice).
  TempDir dir("idem");
  constexpr int kRows = 30;
  {
    auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
    Table* t = db->CreateTable("t", 2).value();
    ASSERT_TRUE(db->CreateIndex("t", "pk", 0, true).ok());
    Transaction* txn = db->Begin();
    for (int i = 0; i < kRows; ++i) {
      ASSERT_OK(t->Insert(txn, {"k" + std::to_string(i), "v"}));
    }
    ASSERT_OK(db->Commit(txn));
    db->SimulateCrash();  // dirty pages lost: the next open has real redo
  }
  {
    auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
    ASSERT_GT(db->restart_stats().redo_applied, 0u)
        << "first recovery must actually redo the lost updates";
    // Persist the redone pages, then crash again without further updates.
    ASSERT_OK(db->FlushAllPages());
    db->SimulateCrash();
  }
  {
    auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
    const RestartStats& st = db->restart_stats();
    EXPECT_GT(st.redo_records, 0u)
        << "the second recovery still scans the shared log suffix";
    EXPECT_EQ(st.redo_applied, 0u)
        << "every record's effect is already on disk (page_LSN gate)";
    EXPECT_EQ(db->metrics().redo_records_skipped.load(), st.redo_records);
    // And the data is exactly once-applied.
    size_t keys = 0;
    ASSERT_OK(db->GetIndex("pk")->Validate(&keys));
    EXPECT_EQ(keys, static_cast<size_t>(kRows));
    Table* t = db->GetTable("t");
    Transaction* check = db->Begin();
    for (int i = 0; i < kRows; ++i) {
      std::optional<Row> row;
      ASSERT_OK(t->FetchByKey(check, "pk", "k" + std::to_string(i), &row));
      ASSERT_TRUE(row.has_value()) << "k" << i;
      EXPECT_EQ((*row)[1], "v");
    }
    ASSERT_OK(db->Commit(check));
  }
}

TEST(RepeatedCrashTest, TightTombstoneReuseNeverLogsUnappliableInsert) {
  // Regression: with zero raw free bytes and a committed tombstone of L
  // bytes, the old tombstone-reuse fit check (zero-floored
  // FreeSpaceForNewCell() + reclaim + kSlotSize) accepted records up to
  // L + kSlotSize even though only L bytes exist after the purge. The
  // insert was LOGGED, failed to apply, and the live path shrugged and
  // placed the row on the next chain page — leaving an orphan log record
  // that restart redo replays into the same NoSpace, failing recovery
  // with "page full".
  TempDir dir("tight");
  Rid victim_page_rid;
  {
    auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
    Table* t = db->CreateTable("t", 2).value();
    HeapFile* heap = t->heap();
    // 512-byte page, 40-byte header: 8 records of 55 bytes plus 8 slot
    // entries of 4 bytes fill the page exactly (8 * 59 = 472).
    Transaction* fill = db->Begin();
    std::vector<Rid> rids;
    for (int i = 0; i < 8; ++i) {
      auto r = heap->Insert(fill, std::string(55, static_cast<char>('a' + i)));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      rids.push_back(r.value());
    }
    ASSERT_OK(db->Commit(fill));
    ASSERT_EQ(rids.front().page_id, rids.back().page_id) << "fill math is off";
    victim_page_rid = rids.front();
    // Free exactly one cell as a committed tombstone.
    Transaction* del = db->Begin();
    ASSERT_OK(heap->Delete(del, rids[3]));
    ASSERT_OK(db->Commit(del));
    // 58 > 55: does not fit even after reclaiming the tombstone. Must land
    // on a chain page without logging anything against the full page.
    Transaction* ins = db->Begin();
    auto r = heap->Insert(ins, std::string(58, 'z'));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_NE(r.value().page_id, victim_page_rid.page_id)
        << "58 bytes cannot fit on the full page";
    ASSERT_OK(db->Commit(ins));
    db->SimulateCrash();
  }
  // Restart replays the full page's history from scratch; it only succeeds
  // if every logged record is actually applicable.
  auto reopened = Database::Open(dir.path(), SmallPageOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto db = std::move(reopened).value();
  auto got = db->GetTable("t")->heap()->Fetch(victim_page_rid);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), std::string(55, 'a'));
}

TEST(RepeatedCrashTest, CrashImmediatelyAfterRecoveryIsCheap) {
  TempDir dir("cheap");
  {
    auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
    Table* t = db->CreateTable("t", 2).value();
    ASSERT_TRUE(db->CreateIndex("t", "pk", 0, true).ok());
    Transaction* txn = db->Begin();
    for (int i = 0; i < 100; ++i) {
      ASSERT_OK(t->Insert(txn, {"k" + std::to_string(i), "v"}));
    }
    ASSERT_OK(db->Commit(txn));
    db->SimulateCrash();
  }
  uint64_t first_redo = 0;
  {
    auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
    first_redo = db->restart_stats().redo_applied;
    EXPECT_GT(first_redo, 0u);
    db->SimulateCrash();  // crash right after recovery's checkpoint
  }
  {
    auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
    // The checkpoint taken at the end of the previous recovery bounds this
    // pass: nothing (or almost nothing) to redo. NB: recovery does not
    // flush data pages, so redo may re-apply to pages that never reached
    // disk — but the analysis scan itself must be short.
    EXPECT_LE(db->restart_stats().analysis_records, 10u);
  }
}

}  // namespace
}  // namespace ariesim
