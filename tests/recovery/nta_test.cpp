// Nested-top-action semantics (paper §1.2, §3, Figures 8-10):
//  - a completed SMO survives the rollback of its transaction (the dummy
//    CLR bypasses the SMO's records);
//  - a completed SMO survives a crash where the transaction is a loser;
//  - an SMO interrupted before its dummy CLR is undone page-oriented at
//    restart, restoring structural consistency;
//  - Figure 9 ordering: for a split, the triggering insert is logged AFTER
//    the dummy CLR; Figure 10: for a page delete, the key delete is logged
//    BEFORE the NTA starts, so rollback always undoes the key op but never
//    the completed SMO.
#include <gtest/gtest.h>

#include "db/database.h"
#include "test_util.h"
#include "util/random.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

class NtaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("nta");
    db_ = std::move(Database::Open(dir_->path(), SmallPageOptions())).value();
    db_->CreateTable("t", 1).value();
    tree_ = db_->CreateIndex("t", "ix", 0, false).value();
  }
  void Reopen() {
    db_ = std::move(Database::Open(dir_->path(), SmallPageOptions())).value();
    tree_ = db_->GetIndex("ix");
    ASSERT_NE(tree_, nullptr);
  }
  Rid R(uint64_t i) {
    return Rid{static_cast<PageId>(8000 + i / 50), static_cast<uint16_t>(i % 50)};
  }
  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Database> db_;
  BTree* tree_;
};

TEST_F(NtaTest, SmoOfLoserTxnSurvivesCrash) {
  // T commits nothing; its inserts cause splits; crash. At restart the key
  // inserts are undone but the splits (completed NTAs, dummy CLR on disk)
  // are NOT undone — redo repeats them, undo bypasses them.
  Transaction* setup = db_->Begin();
  for (uint64_t i = 0; i < 30; ++i) {
    ASSERT_OK(tree_->Insert(setup, "base" + Random(0).Key(i, 6), R(i)));
  }
  ASSERT_OK(db_->Commit(setup));

  Transaction* loser = db_->Begin();
  uint64_t splits_before = db_->metrics().smo_splits.load();
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_OK(tree_->Insert(loser, "loser" + Random(0).Key(i, 6), R(100 + i)));
  }
  ASSERT_GT(db_->metrics().smo_splits.load(), splits_before);
  ASSERT_OK(db_->wal()->FlushAll());
  ASSERT_OK(db_->FlushAllPages());
  db_->SimulateCrash();

  Reopen();
  size_t keys = 0;
  ASSERT_OK(tree_->Validate(&keys));
  EXPECT_EQ(keys, 30u) << "only committed keys remain";
  // Completed SMOs were NOT undone as such (their records sit behind dummy
  // CLRs). What restart undo did instead was remove the loser's keys one by
  // one — emptying pages as it went and releasing them through *undo-time
  // page-delete SMOs* (logged as regular records in fresh NTAs), which is
  // the paper's prescribed mechanism. Observable: page deletes happened
  // during restart and the recovered tree is compact and valid.
  EXPECT_GT(db_->metrics().smo_page_deletes.load(), 0u)
      << "restart undo should shrink the tree via page-delete SMOs";
  EXPECT_GE(db_->space()->AllocatedCount().value(), 2u);
}

TEST_F(NtaTest, IncompleteSmoUndoneAtRestart) {
  // Injected failure leaves a split without its dummy CLR; the transaction
  // neither commits nor rolls back before the crash. Restart must undo the
  // partial SMO page-oriented and then the transaction's key inserts.
  Transaction* setup = db_->Begin();
  std::string fat(20, 's');
  for (uint64_t i = 0; i < 12; ++i) {
    ASSERT_OK(tree_->Insert(setup, "k" + Random(0).Key(i, 6) + fat, R(i)));
  }
  ASSERT_OK(db_->Commit(setup));
  uint64_t pages_before = db_->space()->AllocatedCount().value();

  Transaction* loser = db_->Begin();
  tree_->TestSetFailBeforeParentSplice();
  Status s = Status::OK();
  for (uint64_t i = 0; i < 100 && s.ok(); ++i) {
    s = tree_->Insert(loser, "x" + Random(0).Key(i, 6) + fat, R(100 + i));
  }
  ASSERT_EQ(s.code(), Code::kIOError) << "injection did not fire";
  // Crash immediately — no rollback, no dummy CLR. Force everything to disk
  // so the partial SMO is visible to recovery.
  ASSERT_OK(db_->wal()->FlushAll());
  ASSERT_OK(db_->FlushAllPages());
  db_->SimulateCrash();

  Reopen();
  size_t keys = 0;
  ASSERT_OK(tree_->Validate(&keys));
  EXPECT_EQ(keys, 12u);
  EXPECT_EQ(db_->space()->AllocatedCount().value(), pages_before)
      << "the incomplete SMO's page allocation must be rolled back";
  // The tree remains fully usable.
  Transaction* txn = db_->Begin();
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_OK(tree_->Insert(txn, "y" + Random(0).Key(i, 6) + fat, R(300 + i)));
  }
  ASSERT_OK(db_->Commit(txn));
  ASSERT_OK(tree_->Validate(nullptr));
}

TEST_F(NtaTest, IncompleteSmoUndoneByNormalRollback) {
  // Same injection, but the transaction rolls back during normal
  // processing ("process failure", §3): the partial SMO's structural
  // records are compensated page-oriented.
  Transaction* setup = db_->Begin();
  std::string fat(20, 'n');
  for (uint64_t i = 0; i < 12; ++i) {
    ASSERT_OK(tree_->Insert(setup, "k" + Random(0).Key(i, 6) + fat, R(i)));
  }
  ASSERT_OK(db_->Commit(setup));
  uint64_t pages_before = db_->space()->AllocatedCount().value();

  Transaction* loser = db_->Begin();
  tree_->TestSetFailBeforeParentSplice();
  Status s = Status::OK();
  int inserted = 0;
  for (uint64_t i = 0; i < 100 && s.ok(); ++i) {
    s = tree_->Insert(loser, "x" + Random(0).Key(i, 6) + fat, R(100 + i));
    if (s.ok()) ++inserted;
  }
  ASSERT_EQ(s.code(), Code::kIOError);
  ASSERT_OK(db_->Rollback(loser));
  size_t keys = 0;
  ASSERT_OK(tree_->Validate(&keys));
  EXPECT_EQ(keys, 12u);
  EXPECT_EQ(db_->space()->AllocatedCount().value(), pages_before);
}

TEST_F(NtaTest, PageDeleteSmoSurvivesRollbackButKeyDeleteDoesNot) {
  // Figure 10 ordering: the key delete precedes the NTA, so rolling back
  // undoes the key delete (logically — the page is gone) while the page
  // delete itself stays.
  std::string fat(20, 'p');
  Transaction* setup = db_->Begin();
  for (uint64_t i = 0; i < 40; ++i) {
    ASSERT_OK(tree_->Insert(setup, "k" + Random(0).Key(i, 6) + fat, R(i)));
  }
  ASSERT_OK(db_->Commit(setup));

  // Delete all keys in one transaction and roll it back.
  Transaction* deleter = db_->Begin();
  for (uint64_t i = 0; i < 40; ++i) {
    ASSERT_OK(tree_->Delete(deleter, "k" + Random(0).Key(i, 6) + fat, R(i)));
  }
  uint64_t page_dels = db_->metrics().smo_page_deletes.load();
  EXPECT_GT(page_dels, 0u) << "emptying leaves must delete pages";
  ASSERT_OK(db_->Rollback(deleter));

  // Every key is back (page deletes were not undone as such; the key
  // re-inserts re-split as needed — the logical undo path).
  size_t keys = 0;
  ASSERT_OK(tree_->Validate(&keys));
  EXPECT_EQ(keys, 40u);
  Transaction* check = db_->Begin();
  for (uint64_t i = 0; i < 40; ++i) {
    FetchResult r;
    ASSERT_OK(tree_->Fetch(check, "k" + Random(0).Key(i, 6) + fat,
                           FetchCond::kEq, &r));
    EXPECT_TRUE(r.found) << i;
  }
  ASSERT_OK(db_->Commit(check));
}

TEST_F(NtaTest, HeapChainExtensionSurvivesRollback) {
  // The heap's chain extension is also an NTA: records inserted by OTHER
  // transactions into the new page survive the extender's rollback. Raw
  // heap inserts are used (no index involvement) — chain extension is
  // purely a heap mechanism.
  HeapFile* heap = db_->GetTable("t")->heap();
  std::string payload(150, 'h');
  Transaction* extender = db_->Begin();
  // Fill pages until the chain extends at least once.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(heap->Insert(extender, payload).ok());
  }
  // Another transaction inserts into the (possibly fresh) last page and
  // commits.
  Transaction* other = db_->Begin();
  Rid other_rid = heap->Insert(other, payload + "other").value();
  ASSERT_OK(db_->Commit(other));

  ASSERT_OK(db_->Rollback(extender));
  auto fetched = heap->Fetch(other_rid);
  ASSERT_TRUE(fetched.ok())
      << "committed record lost when the chain extender rolled back: "
      << fetched.status().ToString();
  EXPECT_EQ(fetched.value(), payload + "other");
}

}  // namespace
}  // namespace ariesim
