// Media recovery (paper §5): take a fuzzy image copy (dump) of the data
// file, keep running committed work, then lose/corrupt a page. Restore the
// page's bytes from the dump and roll it forward using the log — the page
// comes back up-to-date, page-oriented, without touching the rest of the
// tree.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "db/database.h"
#include "test_util.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

class MediaRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("media");
    // This suite exercises the *manual* media-recovery API (dump + roll
    // forward), so the automatic fetch-time repair must stay out of the way;
    // tests/stress/self_heal_test.cpp covers the online path.
    Options o = SmallPageOptions();
    o.online_page_repair = false;
    db_ = std::move(Database::Open(dir_->path(), o)).value();
    table_ = db_->CreateTable("t", 2).value();
    tree_ = db_->CreateIndex("t", "pk", 0, true).value();
  }
  std::string DataPath() { return dir_->path() + "/data.db"; }
  std::string DumpPath() { return dir_->path() + "/dump.db"; }

  void TakeDump() {
    ASSERT_OK(db_->FlushAllPages());
    std::filesystem::copy_file(DataPath(), DumpPath(),
                               std::filesystem::copy_options::overwrite_existing);
  }
  /// Restore one page's bytes from the dump into the live file.
  void RestorePageFromDump(PageId pid) {
    size_t ps = db_->options().page_size;
    std::ifstream dump(DumpPath(), std::ios::binary);
    std::string page(ps, '\0');
    dump.seekg(static_cast<std::streamoff>(pid) * static_cast<std::streamoff>(ps));
    dump.read(page.data(), static_cast<std::streamsize>(ps));
    std::fstream data(DataPath(),
                      std::ios::binary | std::ios::in | std::ios::out);
    data.seekp(static_cast<std::streamoff>(pid) * static_cast<std::streamoff>(ps));
    data.write(page.data(), static_cast<std::streamsize>(ps));
  }
  void CorruptPage(PageId pid) {
    size_t ps = db_->options().page_size;
    std::fstream data(DataPath(),
                      std::ios::binary | std::ios::in | std::ios::out);
    std::string junk(ps, '\xAB');
    data.seekp(static_cast<std::streamoff>(pid) * static_cast<std::streamoff>(ps));
    data.write(junk.data(), static_cast<std::streamsize>(ps));
  }
  /// Leaf of the sole index holding `value` (quiesced, via direct page scan).
  PageId LeafOf(const std::string& value) {
    for (PageId pid = 0; pid < 300; ++pid) {
      auto g = db_->pool()->FetchPage(pid, LatchMode::kShared);
      if (!g.ok()) continue;
      PageView v = g.value().view();
      if (v.type() != PageType::kBtreeLeaf || v.owner_id() != tree_->index_id()) {
        continue;
      }
      for (uint16_t i = 0; i < v.slot_count(); ++i) {
        if (bt::DecodeLeafCell(v.Cell(i)).value == value) return pid;
      }
    }
    return kInvalidPageId;
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Database> db_;
  Table* table_;
  BTree* tree_;
};

TEST_F(MediaRecoveryTest, PageRestoredFromDumpAndRolledForward) {
  // Phase 1: committed base data, then the dump.
  Transaction* txn = db_->Begin();
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(table_->Insert(txn, {"k" + std::to_string(i), "v1"}));
  }
  ASSERT_OK(db_->Commit(txn));
  TakeDump();
  Lsn dump_lsn = db_->wal()->next_lsn();

  // Phase 2: more committed work touching the same pages.
  Transaction* txn2 = db_->Begin();
  for (int i = 20; i < 40; ++i) {
    ASSERT_OK(table_->Insert(txn2, {"k" + std::to_string(i), "v2"}));
  }
  ASSERT_OK(db_->Commit(txn2));
  PageId victim = LeafOf("k25");
  ASSERT_NE(victim, kInvalidPageId);
  // Flush everything, then destroy the victim page on disk and evict it
  // from the pool (simulating a media read error on that page).
  ASSERT_OK(db_->FlushAllPages());
  db_->pool()->DropAll();
  CorruptPage(victim);

  // Reading the corrupt page fails the checksum.
  EXPECT_EQ(db_->pool()->FetchPage(victim, LatchMode::kShared).status().code(),
            Code::kCorruption);

  // Media recovery: restore from the dump, roll forward from the dump LSN.
  RestorePageFromDump(victim);
  db_->pool()->DropAll();
  ASSERT_OK(db_->recovery()->RollForwardPage(victim, dump_lsn));

  // The page is current again: all 40 keys reachable, tree valid.
  Transaction* check = db_->Begin();
  std::optional<Row> row;
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK(table_->FetchByKey(check, "pk", "k" + std::to_string(i), &row));
    EXPECT_TRUE(row.has_value()) << "k" << i;
  }
  ASSERT_OK(db_->Commit(check));
  size_t keys = 0;
  ASSERT_OK(tree_->Validate(&keys));
  EXPECT_EQ(keys, 40u);
}

TEST_F(MediaRecoveryTest, RollForwardFromStartOfLogWorksToo) {
  // Without a dump, a zeroed page can be rebuilt from the full log (the
  // degenerate image copy: an empty page).
  Transaction* txn = db_->Begin();
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(table_->Insert(txn, {"a" + std::to_string(i), "v"}));
  }
  ASSERT_OK(db_->Commit(txn));
  ASSERT_OK(db_->FlushAllPages());
  PageId victim = LeafOf("a5");
  ASSERT_NE(victim, kInvalidPageId);

  db_->pool()->DropAll();
  size_t ps = db_->options().page_size;
  std::fstream data(DataPath(), std::ios::binary | std::ios::in | std::ios::out);
  std::string zeros(ps, '\0');
  data.seekp(static_cast<std::streamoff>(victim) * static_cast<std::streamoff>(ps));
  data.write(zeros.data(), static_cast<std::streamsize>(ps));
  data.close();

  ASSERT_OK(db_->recovery()->RollForwardPage(victim, kLogFilePrologue));
  Transaction* check = db_->Begin();
  std::optional<Row> row;
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(table_->FetchByKey(check, "pk", "a" + std::to_string(i), &row));
    EXPECT_TRUE(row.has_value()) << "a" << i;
  }
  ASSERT_OK(db_->Commit(check));
}

}  // namespace
}  // namespace ariesim
