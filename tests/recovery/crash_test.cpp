// Crash-point matrix: crashes with different flush states (nothing / some
// pages / all pages on disk), crash mid-rollback (CLR chain resumption),
// crash right after partial rollback to a savepoint, and crash mid-SMO with
// everything flushed.
#include <gtest/gtest.h>

#include "db/database.h"
#include "test_util.h"
#include "util/random.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

class CrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("crash");
    Open();
    table_ = db_->CreateTable("t", 2).value();
    tree_ = db_->CreateIndex("t", "pk", 0, true).value();
  }
  void Open() {
    db_ = std::move(Database::Open(dir_->path(), SmallPageOptions())).value();
  }
  void Reopen() {
    Open();
    table_ = db_->GetTable("t");
    tree_ = db_->GetIndex("pk");
    ASSERT_NE(table_, nullptr);
  }
  size_t CountKeys() {
    size_t keys = 0;
    EXPECT_OK(tree_->Validate(&keys));
    return keys;
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Database> db_;
  Table* table_;
  BTree* tree_;
};

TEST_F(CrashTest, PartialPageFlushMixedTxns) {
  // Committed and uncommitted work interleaved; a random subset of pages
  // stolen to disk before the crash. Recovery must redo the committed work
  // on unflushed pages and undo the loser work on flushed pages.
  Transaction* committed = db_->Begin();
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK(table_->Insert(committed, {"c" + std::to_string(i), "v"}));
  }
  ASSERT_OK(db_->Commit(committed));

  Transaction* loser = db_->Begin();
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK(table_->Insert(loser, {"l" + std::to_string(i), "v"}));
  }
  ASSERT_OK(db_->wal()->FlushAll());
  // Steal every third page.
  for (PageId pid = 0; pid < 120; pid += 3) {
    (void)db_->FlushPage(pid);
  }
  db_->SimulateCrash();

  Reopen();
  EXPECT_EQ(CountKeys(), 40u);
  Transaction* check = db_->Begin();
  std::optional<Row> row;
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK(table_->FetchByKey(check, "pk", "c" + std::to_string(i), &row));
    EXPECT_TRUE(row.has_value()) << "c" << i;
    ASSERT_OK(table_->FetchByKey(check, "pk", "l" + std::to_string(i), &row));
    EXPECT_FALSE(row.has_value()) << "l" << i;
  }
  ASSERT_OK(db_->Commit(check));
}

TEST_F(CrashTest, CrashAfterPartialRollbackResumesViaCLRs) {
  // The loser had already rolled back part of its work (savepoint) before
  // the crash. The CLRs written then must not be undone, and the remaining
  // records must be undone exactly once.
  Transaction* txn = db_->Begin();
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(table_->Insert(txn, {"a" + std::to_string(i), "v"}));
  }
  Lsn sp = txn->Savepoint();
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(table_->Insert(txn, {"b" + std::to_string(i), "v"}));
  }
  ASSERT_OK(db_->RollbackToSavepoint(txn, sp));  // b* undone with CLRs
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(table_->Insert(txn, {"c" + std::to_string(i), "v"}));
  }
  ASSERT_OK(db_->wal()->FlushAll());
  ASSERT_OK(db_->FlushAllPages());
  db_->SimulateCrash();  // txn never committed: full undo at restart

  Reopen();
  EXPECT_EQ(CountKeys(), 0u) << "everything must be rolled back exactly once";
}

TEST_F(CrashTest, CrashDuringRestartUndoThenRecoverAgain) {
  // Crash during recovery's undo pass; the next recovery resumes from the
  // CLRs — bounded logging, no duplicated undo (paper §1.2).
  Transaction* loser = db_->Begin();
  for (int i = 0; i < 30; ++i) {
    ASSERT_OK(table_->Insert(loser, {"k" + std::to_string(i), "v"}));
  }
  ASSERT_OK(db_->wal()->FlushAll());
  ASSERT_OK(db_->FlushAllPages());
  db_->SimulateCrash();

  // First recovery attempt: inject a crash after 10 undo records.
  {
    Options o = SmallPageOptions();
    o.recover_on_open = false;
    auto db = std::move(Database::Open(dir_->path(), o)).value();
    db->recovery()->TestStopUndoAfter(10);
    RestartStats stats;
    Status s = db->recovery()->Restart(&stats);
    EXPECT_EQ(s.code(), Code::kIOError) << "injected stop expected";
    ASSERT_OK(db->wal()->FlushAll());
    db->SimulateCrash();
  }
  // Second recovery completes.
  Reopen();
  EXPECT_EQ(CountKeys(), 0u);
  // And the database is usable.
  Transaction* txn = db_->Begin();
  ASSERT_OK(table_->Insert(txn, {"alive", "v"}));
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(CrashTest, CrashMidSmoWithAllPagesFlushed) {
  std::string fat(20, 'z');
  Transaction* setup = db_->Begin();
  for (uint64_t i = 0; i < 12; ++i) {
    ASSERT_OK(tree_->Insert(setup, "k" + Random(0).Key(i, 6) + fat,
                            Rid{static_cast<PageId>(9000 + i), 0}));
  }
  ASSERT_OK(db_->Commit(setup));

  Transaction* loser = db_->Begin();
  tree_->TestSetFailBeforeParentSplice();
  Status s = Status::OK();
  for (uint64_t i = 0; i < 100 && s.ok(); ++i) {
    s = tree_->Insert(loser, "x" + Random(0).Key(i, 6) + fat,
                      Rid{static_cast<PageId>(9100 + i), 0});
  }
  ASSERT_EQ(s.code(), Code::kIOError);
  ASSERT_OK(db_->wal()->FlushAll());
  ASSERT_OK(db_->FlushAllPages());  // the torn SMO state reaches disk
  db_->SimulateCrash();

  Reopen();
  size_t keys = 0;
  ASSERT_OK(tree_->Validate(&keys));
  EXPECT_EQ(keys, 12u);
}

TEST_F(CrashTest, RedoIsPageOriented) {
  // The redo pass never traverses the index: it applies records to the
  // logged pages directly. Demonstrated by recovering a large committed
  // workload and checking traversal-restart metrics stayed zero during
  // restart.
  Transaction* txn = db_->Begin();
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(table_->Insert(txn, {"k" + std::to_string(i), "v"}));
  }
  ASSERT_OK(db_->Commit(txn));
  db_->SimulateCrash();

  Reopen();
  EXPECT_GT(db_->restart_stats().redo_applied, 0u);
  EXPECT_EQ(db_->metrics().traversal_restarts.load(), 0u)
      << "redo must not traverse the tree";
  EXPECT_EQ(db_->metrics().logical_undos.load(), 0u);
  EXPECT_EQ(CountKeys(), 200u);
}

TEST_F(CrashTest, CommitAfterRecoveryOfSameKeys) {
  // Recovered state accepts new conflicting-free transactions immediately:
  // locks of losers were released at end of restart undo.
  Transaction* loser = db_->Begin();
  ASSERT_OK(table_->Insert(loser, {"contested", "loser"}));
  ASSERT_OK(db_->wal()->FlushAll());
  db_->SimulateCrash();

  Reopen();
  Transaction* txn = db_->Begin();
  ASSERT_OK(table_->Insert(txn, {"contested", "winner"}));
  ASSERT_OK(db_->Commit(txn));
  Transaction* check = db_->Begin();
  std::optional<Row> row;
  ASSERT_OK(table_->FetchByKey(check, "pk", "contested", &row));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[1], "winner");
  ASSERT_OK(db_->Commit(check));
}

}  // namespace
}  // namespace ariesim
