// Core ARIES restart tests: committed work survives a crash (redo), losers
// are rolled back (undo), checkpoints bound the analysis, and recovery is
// idempotent under repeated restarts.
#include <gtest/gtest.h>

#include "db/database.h"
#include "test_util.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

std::unique_ptr<Database> OpenDb(const TempDir& dir) {
  auto db = Database::Open(dir.path(), SmallPageOptions());
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

TEST(RecoveryBasicTest, CommittedSurvivesCrash) {
  TempDir dir("rec_commit");
  {
    auto db = OpenDb(dir);
    Table* t = db->CreateTable("kv", 2).value();
    ASSERT_TRUE(db->CreateIndex("kv", "kv_pk", 0, true).ok());
    Transaction* txn = db->Begin();
    for (int i = 0; i < 40; ++i) {
      ASSERT_OK(t->Insert(txn, {"c" + std::to_string(i), "v"}));
    }
    ASSERT_OK(db->Commit(txn));
    db->SimulateCrash();
  }
  {
    auto db = OpenDb(dir);
    EXPECT_GT(db->restart_stats().redo_records, 0u)
        << "crash without flush must need redo";
    Table* t = db->GetTable("kv");
    ASSERT_NE(t, nullptr);
    Transaction* q = db->Begin();
    std::optional<Row> row;
    for (int i = 0; i < 40; ++i) {
      ASSERT_OK(t->FetchByKey(q, "kv_pk", "c" + std::to_string(i), &row));
      EXPECT_TRUE(row.has_value()) << "lost committed row c" << i;
    }
    ASSERT_OK(db->Commit(q));
    size_t keys = 0;
    ASSERT_OK(db->GetIndex("kv_pk")->Validate(&keys));
    EXPECT_EQ(keys, 40u);
  }
}

TEST(RecoveryBasicTest, UncommittedRolledBackAtRestart) {
  TempDir dir("rec_loser");
  {
    auto db = OpenDb(dir);
    Table* t = db->CreateTable("kv", 2).value();
    ASSERT_TRUE(db->CreateIndex("kv", "kv_pk", 0, true).ok());
    Transaction* committed = db->Begin();
    ASSERT_OK(t->Insert(committed, {"keep", "1"}));
    ASSERT_OK(db->Commit(committed));

    Transaction* loser = db->Begin();
    ASSERT_OK(t->Insert(loser, {"drop1", "x"}));
    ASSERT_OK(t->Insert(loser, {"drop2", "x"}));
    // Force the loser's dirty pages (and the log protecting them) to disk so
    // undo is genuinely exercised — the steal policy at work.
    ASSERT_OK(db->wal()->FlushAll());
    ASSERT_OK(db->FlushAllPages());
    db->SimulateCrash();
  }
  {
    auto db = OpenDb(dir);
    EXPECT_GE(db->restart_stats().loser_txns, 1u);
    Table* t = db->GetTable("kv");
    Transaction* q = db->Begin();
    std::optional<Row> row;
    ASSERT_OK(t->FetchByKey(q, "kv_pk", "keep", &row));
    EXPECT_TRUE(row.has_value());
    ASSERT_OK(t->FetchByKey(q, "kv_pk", "drop1", &row));
    EXPECT_FALSE(row.has_value()) << "loser insert survived the crash";
    ASSERT_OK(t->FetchByKey(q, "kv_pk", "drop2", &row));
    EXPECT_FALSE(row.has_value());
    ASSERT_OK(db->Commit(q));
    size_t keys = 0;
    ASSERT_OK(db->GetIndex("kv_pk")->Validate(&keys));
    EXPECT_EQ(keys, 1u);
  }
}

TEST(RecoveryBasicTest, LoserDeleteRestored) {
  TempDir dir("rec_loser_del");
  {
    auto db = OpenDb(dir);
    Table* t = db->CreateTable("kv", 2).value();
    ASSERT_TRUE(db->CreateIndex("kv", "kv_pk", 0, true).ok());
    Transaction* setup = db->Begin();
    Rid rid;
    ASSERT_OK(t->Insert(setup, {"victim", "1"}, &rid));
    ASSERT_OK(db->Commit(setup));

    Transaction* loser = db->Begin();
    ASSERT_OK(t->Delete(loser, rid));
    ASSERT_OK(db->wal()->FlushAll());
    ASSERT_OK(db->FlushAllPages());
    db->SimulateCrash();
  }
  {
    auto db = OpenDb(dir);
    Table* t = db->GetTable("kv");
    Transaction* q = db->Begin();
    std::optional<Row> row;
    ASSERT_OK(t->FetchByKey(q, "kv_pk", "victim", &row));
    EXPECT_TRUE(row.has_value()) << "uncommitted delete not undone";
    ASSERT_OK(db->Commit(q));
  }
}

TEST(RecoveryBasicTest, CheckpointBoundsAnalysis) {
  TempDir dir("rec_ckpt");
  {
    auto db = OpenDb(dir);
    Table* t = db->CreateTable("kv", 2).value();
    ASSERT_TRUE(db->CreateIndex("kv", "kv_pk", 0, true).ok());
    Transaction* txn = db->Begin();
    for (int i = 0; i < 30; ++i) {
      ASSERT_OK(t->Insert(txn, {"a" + std::to_string(i), "v"}));
    }
    ASSERT_OK(db->Commit(txn));
    ASSERT_OK(db->FlushAllPages());
    ASSERT_OK(db->Checkpoint());
    Transaction* txn2 = db->Begin();
    for (int i = 0; i < 5; ++i) {
      ASSERT_OK(t->Insert(txn2, {"b" + std::to_string(i), "v"}));
    }
    ASSERT_OK(db->Commit(txn2));
    db->SimulateCrash();
  }
  {
    auto db = OpenDb(dir);
    // Analysis starts at the checkpoint; the pre-checkpoint records need not
    // be re-scanned (they were flushed).
    EXPECT_LT(db->restart_stats().analysis_records, 60u);
    size_t keys = 0;
    ASSERT_OK(db->GetIndex("kv_pk")->Validate(&keys));
    EXPECT_EQ(keys, 35u);
  }
}

TEST(RecoveryBasicTest, RepeatedRestartIsIdempotent) {
  TempDir dir("rec_idem");
  {
    auto db = OpenDb(dir);
    Table* t = db->CreateTable("kv", 2).value();
    ASSERT_TRUE(db->CreateIndex("kv", "kv_pk", 0, true).ok());
    Transaction* txn = db->Begin();
    for (int i = 0; i < 25; ++i) {
      ASSERT_OK(t->Insert(txn, {"k" + std::to_string(i), "v"}));
    }
    ASSERT_OK(db->Commit(txn));
    Transaction* loser = db->Begin();
    ASSERT_OK(t->Insert(loser, {"loser", "v"}));
    ASSERT_OK(db->wal()->FlushAll());
    db->SimulateCrash();
  }
  for (int round = 0; round < 3; ++round) {
    auto db = OpenDb(dir);
    size_t keys = 0;
    ASSERT_OK(db->GetIndex("kv_pk")->Validate(&keys));
    EXPECT_EQ(keys, 25u) << "round " << round;
    // Crash immediately again (recovery itself wrote CLRs + a checkpoint).
    db->SimulateCrash();
  }
  auto db = OpenDb(dir);
  size_t keys = 0;
  ASSERT_OK(db->GetIndex("kv_pk")->Validate(&keys));
  EXPECT_EQ(keys, 25u);
}

TEST(RecoveryBasicTest, CrashBeforeAnyFlushLosesNothingCommitted) {
  // Commit forces the log; even with zero data-page flushes, redo rebuilds.
  TempDir dir("rec_noflush");
  {
    auto db = OpenDb(dir);
    Table* t = db->CreateTable("kv", 2).value();
    ASSERT_TRUE(db->CreateIndex("kv", "kv_pk", 0, true).ok());
    Transaction* txn = db->Begin();
    ASSERT_OK(t->Insert(txn, {"only", "1"}));
    ASSERT_OK(db->Commit(txn));
    db->SimulateCrash();
  }
  auto db = OpenDb(dir);
  Transaction* q = db->Begin();
  std::optional<Row> row;
  ASSERT_OK(db->GetTable("kv")->FetchByKey(q, "kv_pk", "only", &row));
  EXPECT_TRUE(row.has_value());
  ASSERT_OK(db->Commit(q));
}

}  // namespace
}  // namespace ariesim
