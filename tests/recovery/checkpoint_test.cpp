// Fuzzy checkpoint tests: checkpoints during active transactions, the
// master record, automatic checkpointing by log growth, and checkpoints
// interleaved with SMOs.
#include <gtest/gtest.h>

#include <thread>

#include "db/database.h"
#include "test_util.h"
#include "util/random.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

TEST(CheckpointTest, FuzzyCheckpointWithInFlightTxn) {
  TempDir dir("ckpt_fuzzy");
  auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
  Table* t = db->CreateTable("t", 2).value();
  ASSERT_TRUE(db->CreateIndex("t", "pk", 0, true).ok());

  Transaction* in_flight = db->Begin();
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(t->Insert(in_flight, {"f" + std::to_string(i), "v"}));
  }
  // A checkpoint while the transaction is open: the TT snapshot carries it.
  ASSERT_OK(db->Checkpoint());
  for (int i = 10; i < 20; ++i) {
    ASSERT_OK(t->Insert(in_flight, {"f" + std::to_string(i), "v"}));
  }
  ASSERT_OK(db->wal()->FlushAll());
  ASSERT_OK(db->FlushAllPages());
  db->SimulateCrash();

  auto db2 = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
  // The in-flight transaction — including records *before* the checkpoint —
  // must be fully undone.
  size_t keys = 1;
  ASSERT_OK(db2->GetIndex("pk")->Validate(&keys));
  EXPECT_EQ(keys, 0u) << "records before the fuzzy checkpoint escaped undo";
}

TEST(CheckpointTest, AutoCheckpointByLogGrowth) {
  TempDir dir("ckpt_auto");
  Options o = SmallPageOptions();
  o.checkpoint_interval_bytes = 32 * 1024;
  auto db = std::move(Database::Open(dir.path(), o)).value();
  Table* t = db->CreateTable("t", 2).value();
  ASSERT_TRUE(db->CreateIndex("t", "pk", 0, true).ok());
  Lsn master_before = db->wal()->ReadMaster().value();
  for (int i = 0; i < 500; ++i) {
    Transaction* txn = db->Begin();
    ASSERT_OK(t->Insert(txn, {"k" + std::to_string(i), "v"}));
    ASSERT_OK(db->Commit(txn));
  }
  Lsn master_after = db->wal()->ReadMaster().value();
  EXPECT_GT(master_after, master_before)
      << "auto-checkpointing should have advanced the master record";
  // And the bound holds: a crash now needs only a short analysis scan.
  db->SimulateCrash();
  auto db2 = std::move(Database::Open(dir.path(), o)).value();
  EXPECT_LT(db2->restart_stats().analysis_records, 200u);
  size_t keys = 0;
  ASSERT_OK(db2->GetIndex("pk")->Validate(&keys));
  EXPECT_EQ(keys, 500u);
}

TEST(CheckpointTest, CheckpointDuringConcurrentWriters) {
  TempDir dir("ckpt_conc");
  auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
  Table* t = db->CreateTable("t", 2).value();
  ASSERT_TRUE(db->CreateIndex("t", "pk", 0, true).ok());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Random rnd(4);
    int i = 0;
    while (!stop.load()) {
      Transaction* txn = db->Begin();
      (void)t->Insert(txn, {"w" + std::to_string(i++), "v"});
      (void)db->Commit(txn);
    }
  });
  for (int c = 0; c < 20; ++c) {
    ASSERT_OK(db->Checkpoint());
  }
  stop = true;
  writer.join();
  db->SimulateCrash();
  auto db2 = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
  ASSERT_OK(db2->GetIndex("pk")->Validate(nullptr));
}

TEST(CheckpointTest, MasterRecordSurvivesAcrossReopen) {
  TempDir dir("ckpt_master");
  Lsn master;
  {
    auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
    db->CreateTable("t", 1).value();
    ASSERT_OK(db->Checkpoint());
    master = db->wal()->ReadMaster().value();
  }
  {
    auto db = std::move(Database::Open(dir.path(), SmallPageOptions())).value();
    // Recovery takes its own checkpoint at the end, so the master can only
    // move forward.
    EXPECT_GE(db->wal()->ReadMaster().value(), master);
  }
}

}  // namespace
}  // namespace ariesim
