// Lock manager tests: grant/conflict/wait, conditional requests, instant
// duration, conversions (upgrades), release-all, deadlock detection with
// youngest-victim selection, and the observer hook.
#include "lock/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace ariesim {
namespace {

LockName NameA() { return LockName::Record(1, Rid{10, 1}); }
LockName NameB() { return LockName::Record(1, Rid{10, 2}); }

class LockManagerTest : public ::testing::Test {
 protected:
  Metrics m_;
  LockManager lm_{&m_};
};

TEST_F(LockManagerTest, GrantAndRelease) {
  ASSERT_TRUE(lm_.Lock(1, NameA(), LockMode::kX, LockDuration::kCommit, false).ok());
  EXPECT_TRUE(lm_.Holds(1, NameA(), LockMode::kX));
  EXPECT_EQ(lm_.HeldCount(1), 1u);
  lm_.ReleaseAll(1);
  EXPECT_FALSE(lm_.Holds(1, NameA(), LockMode::kX));
  EXPECT_EQ(lm_.HeldCount(1), 0u);
}

TEST_F(LockManagerTest, SharedCompatibleExclusiveNot) {
  ASSERT_TRUE(lm_.Lock(1, NameA(), LockMode::kS, LockDuration::kCommit, false).ok());
  ASSERT_TRUE(lm_.Lock(2, NameA(), LockMode::kS, LockDuration::kCommit, false).ok());
  EXPECT_TRUE(
      lm_.Lock(3, NameA(), LockMode::kX, LockDuration::kCommit, true).IsBusy());
  lm_.ReleaseAll(1);
  EXPECT_TRUE(
      lm_.Lock(3, NameA(), LockMode::kX, LockDuration::kCommit, true).IsBusy());
  lm_.ReleaseAll(2);
  EXPECT_TRUE(lm_.Lock(3, NameA(), LockMode::kX, LockDuration::kCommit, true).ok());
}

TEST_F(LockManagerTest, ConditionalDenialLeavesNoResidue) {
  ASSERT_TRUE(lm_.Lock(1, NameA(), LockMode::kX, LockDuration::kCommit, false).ok());
  EXPECT_TRUE(
      lm_.Lock(2, NameA(), LockMode::kS, LockDuration::kCommit, true).IsBusy());
  lm_.ReleaseAll(1);
  // The denied conditional request must not have queued txn 2.
  EXPECT_TRUE(lm_.Lock(3, NameA(), LockMode::kX, LockDuration::kCommit, true).ok());
}

TEST_F(LockManagerTest, UnconditionalWaitsUntilRelease) {
  ASSERT_TRUE(lm_.Lock(1, NameA(), LockMode::kX, LockDuration::kCommit, false).ok());
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    Status s = lm_.Lock(2, NameA(), LockMode::kX, LockDuration::kCommit, false);
    EXPECT_TRUE(s.ok()) << s.ToString();
    granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(granted.load());
  lm_.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(granted.load());
  EXPECT_TRUE(lm_.Holds(2, NameA(), LockMode::kX));
  lm_.ReleaseAll(2);
}

TEST_F(LockManagerTest, InstantDurationLeavesNothingHeld) {
  ASSERT_TRUE(
      lm_.Lock(1, NameA(), LockMode::kX, LockDuration::kInstant, false).ok());
  EXPECT_EQ(lm_.HeldCount(1), 0u);
  // Another transaction can take it immediately.
  EXPECT_TRUE(lm_.Lock(2, NameA(), LockMode::kX, LockDuration::kCommit, true).ok());
}

TEST_F(LockManagerTest, InstantWaitsForConflicts) {
  ASSERT_TRUE(lm_.Lock(1, NameA(), LockMode::kX, LockDuration::kCommit, false).ok());
  std::atomic<bool> done{false};
  std::thread t([&] {
    // Instant X must still wait until the holder releases (that is its
    // entire point: proving no conflicting transaction exists right now).
    Status s = lm_.Lock(2, NameA(), LockMode::kX, LockDuration::kInstant, false);
    EXPECT_TRUE(s.ok());
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load());
  lm_.ReleaseAll(1);
  t.join();
  EXPECT_EQ(lm_.HeldCount(2), 0u);
}

TEST_F(LockManagerTest, RepeatRequestCoveredByHeld) {
  ASSERT_TRUE(lm_.Lock(1, NameA(), LockMode::kX, LockDuration::kCommit, false).ok());
  // S under held X: trivially granted, still one held name.
  ASSERT_TRUE(lm_.Lock(1, NameA(), LockMode::kS, LockDuration::kCommit, false).ok());
  EXPECT_EQ(lm_.HeldCount(1), 1u);
  lm_.ReleaseAll(1);
}

TEST_F(LockManagerTest, UpgradeSToX) {
  ASSERT_TRUE(lm_.Lock(1, NameA(), LockMode::kS, LockDuration::kCommit, false).ok());
  ASSERT_TRUE(lm_.Lock(1, NameA(), LockMode::kX, LockDuration::kCommit, false).ok());
  EXPECT_TRUE(lm_.Holds(1, NameA(), LockMode::kX));
  EXPECT_TRUE(
      lm_.Lock(2, NameA(), LockMode::kS, LockDuration::kCommit, true).IsBusy());
  lm_.ReleaseAll(1);
}

TEST_F(LockManagerTest, UpgradeWaitsForOtherSharers) {
  ASSERT_TRUE(lm_.Lock(1, NameA(), LockMode::kS, LockDuration::kCommit, false).ok());
  ASSERT_TRUE(lm_.Lock(2, NameA(), LockMode::kS, LockDuration::kCommit, false).ok());
  EXPECT_TRUE(
      lm_.Lock(1, NameA(), LockMode::kX, LockDuration::kCommit, true).IsBusy());
  // After denial, txn 1 must still hold its original S lock.
  EXPECT_TRUE(lm_.Holds(1, NameA(), LockMode::kS));
  lm_.ReleaseAll(2);
  EXPECT_TRUE(lm_.Lock(1, NameA(), LockMode::kX, LockDuration::kCommit, true).ok());
  lm_.ReleaseAll(1);
}

TEST_F(LockManagerTest, IntentModesCoexist) {
  ASSERT_TRUE(lm_.Lock(1, NameA(), LockMode::kIX, LockDuration::kCommit, false).ok());
  ASSERT_TRUE(lm_.Lock(2, NameA(), LockMode::kIX, LockDuration::kCommit, false).ok());
  ASSERT_TRUE(lm_.Lock(3, NameA(), LockMode::kIS, LockDuration::kCommit, false).ok());
  EXPECT_TRUE(
      lm_.Lock(4, NameA(), LockMode::kS, LockDuration::kCommit, true).IsBusy());
  lm_.ReleaseAll(1);
  lm_.ReleaseAll(2);
  EXPECT_TRUE(lm_.Lock(4, NameA(), LockMode::kS, LockDuration::kCommit, true).ok());
  lm_.ReleaseAll(3);
  lm_.ReleaseAll(4);
}

TEST_F(LockManagerTest, DeadlockDetectedYoungestAborted) {
  ASSERT_TRUE(lm_.Lock(1, NameA(), LockMode::kX, LockDuration::kCommit, false).ok());
  ASSERT_TRUE(lm_.Lock(2, NameB(), LockMode::kX, LockDuration::kCommit, false).ok());
  std::atomic<int> deadlocked{0};
  std::atomic<int> granted{0};
  std::thread t1([&] {
    Status s = lm_.Lock(1, NameB(), LockMode::kX, LockDuration::kCommit, false);
    if (s.IsDeadlock()) {
      deadlocked.fetch_add(1);
      lm_.ReleaseAll(1);
    } else if (s.ok()) {
      granted.fetch_add(1);
    }
  });
  std::thread t2([&] {
    Status s = lm_.Lock(2, NameA(), LockMode::kX, LockDuration::kCommit, false);
    if (s.IsDeadlock()) {
      deadlocked.fetch_add(1);
      lm_.ReleaseAll(2);
    } else if (s.ok()) {
      granted.fetch_add(1);
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(deadlocked.load(), 1) << "exactly one victim";
  EXPECT_EQ(granted.load(), 1) << "the survivor proceeds";
  EXPECT_GE(m_.deadlocks.load(), 1u);
  lm_.ReleaseAll(1);
  lm_.ReleaseAll(2);
}

TEST_F(LockManagerTest, ConversionDeadlockDetected) {
  // Two S holders both upgrading to X: classic conversion deadlock.
  ASSERT_TRUE(lm_.Lock(1, NameA(), LockMode::kS, LockDuration::kCommit, false).ok());
  ASSERT_TRUE(lm_.Lock(2, NameA(), LockMode::kS, LockDuration::kCommit, false).ok());
  std::atomic<int> deadlocked{0};
  auto upgrade = [&](TxnId id) {
    Status s = lm_.Lock(id, NameA(), LockMode::kX, LockDuration::kCommit, false);
    if (s.IsDeadlock()) {
      deadlocked.fetch_add(1);
      lm_.ReleaseAll(id);
    }
  };
  std::thread t1(upgrade, 1);
  std::thread t2(upgrade, 2);
  t1.join();
  t2.join();
  EXPECT_EQ(deadlocked.load(), 1);
  lm_.ReleaseAll(1);
  lm_.ReleaseAll(2);
}

TEST_F(LockManagerTest, ObserverSeesEvents) {
  std::vector<LockEvent> events;
  lm_.SetObserver([&](const LockEvent& e) { events.push_back(e); });
  ASSERT_TRUE(lm_.Lock(1, NameA(), LockMode::kS, LockDuration::kCommit, false).ok());
  ASSERT_TRUE(lm_.Lock(1, NameA(), LockMode::kS, LockDuration::kCommit, false).ok());
  ASSERT_TRUE(
      lm_.Lock(1, NameB(), LockMode::kX, LockDuration::kInstant, false).ok());
  ASSERT_EQ(events.size(), 3u);
  EXPECT_FALSE(events[0].already_held);
  EXPECT_TRUE(events[1].already_held);
  EXPECT_EQ(events[2].duration, LockDuration::kInstant);
  EXPECT_EQ(events[2].mode, LockMode::kX);
  lm_.SetObserver(nullptr);
  lm_.ReleaseAll(1);
}

TEST_F(LockManagerTest, ManualUnlock) {
  ASSERT_TRUE(lm_.Lock(1, NameA(), LockMode::kX, LockDuration::kManual, false).ok());
  EXPECT_TRUE(
      lm_.Lock(2, NameA(), LockMode::kS, LockDuration::kCommit, true).IsBusy());
  lm_.Unlock(1, NameA());
  EXPECT_TRUE(lm_.Lock(2, NameA(), LockMode::kS, LockDuration::kCommit, true).ok());
  lm_.ReleaseAll(2);
}

TEST_F(LockManagerTest, StressManyThreadsManyNames) {
  constexpr int kThreads = 8;
  constexpr int kOps = 500;
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      TxnId me = static_cast<TxnId>(t + 1);
      for (int i = 0; i < kOps; ++i) {
        LockName n = LockName::Record(
            1, Rid{static_cast<PageId>(10 + (i % 7)), static_cast<uint16_t>(t)});
        Status s = lm_.Lock(me, n, (i % 3 == 0) ? LockMode::kX : LockMode::kS,
                            LockDuration::kCommit, false);
        if (!s.ok() && !s.IsDeadlock()) errors.fetch_add(1);
        if (i % 10 == 9) lm_.ReleaseAll(me);
      }
      lm_.ReleaseAll(me);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(errors.load(), 0u);
}

}  // namespace
}  // namespace ariesim
