// Lock mode lattice and compatibility matrix [Gray78].
#include "lock/lock_mode.h"

#include <gtest/gtest.h>

namespace ariesim {
namespace {

TEST(LockModeTest, CompatibilityMatrix) {
  using enum LockMode;
  // IS compatible with everything except X.
  EXPECT_TRUE(LockCompatible(kIS, kIS));
  EXPECT_TRUE(LockCompatible(kIS, kIX));
  EXPECT_TRUE(LockCompatible(kIS, kS));
  EXPECT_TRUE(LockCompatible(kIS, kSIX));
  EXPECT_FALSE(LockCompatible(kIS, kX));
  // IX compatible with IS/IX only.
  EXPECT_TRUE(LockCompatible(kIX, kIX));
  EXPECT_FALSE(LockCompatible(kIX, kS));
  EXPECT_FALSE(LockCompatible(kIX, kSIX));
  EXPECT_FALSE(LockCompatible(kIX, kX));
  // S compatible with IS/S.
  EXPECT_TRUE(LockCompatible(kS, kS));
  EXPECT_FALSE(LockCompatible(kS, kSIX));
  EXPECT_FALSE(LockCompatible(kS, kX));
  // SIX compatible with IS only.
  EXPECT_FALSE(LockCompatible(kSIX, kSIX));
  // X compatible with nothing.
  EXPECT_FALSE(LockCompatible(kX, kX));
  // Symmetry.
  for (int a = 0; a < 5; ++a) {
    for (int b = 0; b < 5; ++b) {
      EXPECT_EQ(LockCompatible(static_cast<LockMode>(a), static_cast<LockMode>(b)),
                LockCompatible(static_cast<LockMode>(b), static_cast<LockMode>(a)));
    }
  }
}

TEST(LockModeTest, SupremumLattice) {
  using enum LockMode;
  EXPECT_EQ(LockSupremum(kIS, kIX), kIX);
  EXPECT_EQ(LockSupremum(kIS, kS), kS);
  EXPECT_EQ(LockSupremum(kIX, kS), kSIX);
  EXPECT_EQ(LockSupremum(kS, kIX), kSIX);
  EXPECT_EQ(LockSupremum(kSIX, kS), kSIX);
  EXPECT_EQ(LockSupremum(kSIX, kIX), kSIX);
  EXPECT_EQ(LockSupremum(kS, kX), kX);
  for (int a = 0; a < 5; ++a) {
    LockMode ma = static_cast<LockMode>(a);
    EXPECT_EQ(LockSupremum(ma, ma), ma);          // idempotent
    EXPECT_EQ(LockSupremum(ma, kX), kX);          // X absorbs
    EXPECT_EQ(LockSupremum(kIS, ma), ma);         // IS is bottom
    for (int b = 0; b < 5; ++b) {
      LockMode mb = static_cast<LockMode>(b);
      EXPECT_EQ(LockSupremum(ma, mb), LockSupremum(mb, ma));  // commutative
      // The supremum covers both inputs.
      EXPECT_TRUE(LockCovers(LockSupremum(ma, mb), ma));
      EXPECT_TRUE(LockCovers(LockSupremum(ma, mb), mb));
    }
  }
}

TEST(LockModeTest, Covers) {
  using enum LockMode;
  EXPECT_TRUE(LockCovers(kX, kS));
  EXPECT_TRUE(LockCovers(kX, kIX));
  EXPECT_TRUE(LockCovers(kSIX, kS));
  EXPECT_TRUE(LockCovers(kSIX, kIX));
  EXPECT_FALSE(LockCovers(kS, kIX));
  EXPECT_FALSE(LockCovers(kIX, kS));
  EXPECT_FALSE(LockCovers(kS, kX));
}

TEST(LockNameTest, EqualityAndSpaces) {
  Rid r{10, 2};
  EXPECT_EQ(LockName::Record(1, r), LockName::Record(1, r));
  EXPECT_NE(LockName::Record(1, r), LockName::Record(2, r));
  EXPECT_NE(LockName::Record(1, r), LockName::Page(1, 10));
  EXPECT_NE(LockName::Record(1, r), LockName::Key(1, r.Pack(), r));
  EXPECT_NE(LockName::IndexEof(1), LockName::IndexEof(2));
  LockNameHash h;
  EXPECT_EQ(h(LockName::Record(1, r)), h(LockName::Record(1, r)));
}

TEST(LockNameTest, DataLockNameGranularity) {
  Rid r{10, 2};
  EXPECT_EQ(DataLockName(LockGranularity::kRecord, 5, r), LockName::Record(5, r));
  EXPECT_EQ(DataLockName(LockGranularity::kPage, 5, r), LockName::Page(5, 10));
  EXPECT_EQ(DataLockName(LockGranularity::kTable, 5, r), LockName::Table(5));
  // Page granularity merges RIDs on the same page.
  EXPECT_EQ(DataLockName(LockGranularity::kPage, 5, Rid{10, 2}),
            DataLockName(LockGranularity::kPage, 5, Rid{10, 9}));
}

}  // namespace
}  // namespace ariesim
