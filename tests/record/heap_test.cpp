// Heap file / record manager tests: CRUD, RID stability, tombstone + reuse
// discipline (slot reclaim gated by the RID lock), chain growth, undo.
#include <gtest/gtest.h>

#include "db/database.h"
#include "test_util.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

class HeapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("heap");
    db_ = std::move(Database::Open(dir_->path(), SmallPageOptions())).value();
    table_ = db_->CreateTable("t", 1).value();
  }
  HeapFile* heap() { return table_->heap(); }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Database> db_;
  Table* table_;
};

TEST_F(HeapTest, InsertFetchRoundTrip) {
  Transaction* txn = db_->Begin();
  auto rid = heap()->Insert(txn, "hello-record");
  ASSERT_TRUE(rid.ok());
  auto data = heap()->Fetch(rid.value());
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "hello-record");
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(HeapTest, DeleteHidesRecord) {
  Transaction* txn = db_->Begin();
  Rid rid = heap()->Insert(txn, "gone").value();
  ASSERT_OK(db_->Commit(txn));
  Transaction* txn2 = db_->Begin();
  ASSERT_OK(heap()->Delete(txn2, rid));
  EXPECT_TRUE(heap()->Fetch(rid).status().IsNotFound());
  ASSERT_OK(db_->Commit(txn2));
  EXPECT_TRUE(heap()->Fetch(rid).status().IsNotFound());
}

TEST_F(HeapTest, UpdateInPlace) {
  Transaction* txn = db_->Begin();
  Rid rid = heap()->Insert(txn, "v1").value();
  ASSERT_OK(heap()->Update(txn, rid, "v2-longer"));
  EXPECT_EQ(heap()->Fetch(rid).value(), "v2-longer");
  ASSERT_OK(db_->Commit(txn));
  EXPECT_EQ(heap()->Fetch(rid).value(), "v2-longer");
}

TEST_F(HeapTest, ChainGrowsAcrossPages) {
  Transaction* txn = db_->Begin();
  std::vector<Rid> rids;
  std::string payload(100, 'r');
  for (int i = 0; i < 50; ++i) {
    auto rid = heap()->Insert(txn, payload + std::to_string(i));
    ASSERT_TRUE(rid.ok()) << rid.status().ToString();
    rids.push_back(rid.value());
  }
  ASSERT_OK(db_->Commit(txn));
  std::set<PageId> pages;
  for (Rid r : rids) pages.insert(r.page_id);
  EXPECT_GT(pages.size(), 1u) << "expected chain extension";
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(heap()->Fetch(rids[i]).value(), payload + std::to_string(i));
  }
}

TEST_F(HeapTest, RollbackRestoresDeletedAndRemovesInserted) {
  Transaction* setup = db_->Begin();
  Rid keep = heap()->Insert(setup, "keep").value();
  ASSERT_OK(db_->Commit(setup));

  Transaction* txn = db_->Begin();
  Rid temp = heap()->Insert(txn, "temp").value();
  ASSERT_OK(heap()->Delete(txn, keep));
  ASSERT_OK(db_->Rollback(txn));

  EXPECT_EQ(heap()->Fetch(keep).value(), "keep");
  EXPECT_TRUE(heap()->Fetch(temp).status().IsNotFound());
}

TEST_F(HeapTest, TombstonedSlotNotReusedWhileDeleteUncommitted) {
  Transaction* setup = db_->Begin();
  Rid victim = heap()->Insert(setup, std::string(80, 'v')).value();
  ASSERT_OK(db_->Commit(setup));

  Transaction* deleter = db_->Begin();
  ASSERT_OK(db_->GetTable("t") != nullptr ? Status::OK() : Status::NotFound(""));
  // Lock + delete through the record-manager path so the X lock is held.
  Transaction* d = deleter;
  ASSERT_OK(db_->ctx()->locks->Lock(d->id(), LockName::Record(table_->meta().id, victim),
                                    LockMode::kX, LockDuration::kCommit, false));
  ASSERT_OK(heap()->Delete(d, victim));

  // A concurrent inserter must NOT reclaim the tombstoned slot (conditional
  // RID lock is denied), but the insert itself succeeds elsewhere.
  Transaction* inserter = db_->Begin();
  Rid fresh = heap()->Insert(inserter, std::string(80, 'i')).value();
  EXPECT_NE(fresh, victim);
  ASSERT_OK(db_->Commit(inserter));
  ASSERT_OK(db_->Rollback(deleter));
  // The rolled-back delete revives the victim record intact.
  EXPECT_EQ(heap()->Fetch(victim).value(), std::string(80, 'v'));
}

TEST_F(HeapTest, CommittedTombstoneSlotReused) {
  Transaction* setup = db_->Begin();
  Rid victim = heap()->Insert(setup, std::string(80, 'v')).value();
  ASSERT_OK(db_->Commit(setup));

  Transaction* deleter = db_->Begin();
  ASSERT_OK(db_->ctx()->locks->Lock(deleter->id(),
                                    LockName::Record(table_->meta().id, victim),
                                    LockMode::kX, LockDuration::kCommit, false));
  ASSERT_OK(heap()->Delete(deleter, victim));
  ASSERT_OK(db_->Commit(deleter));

  Transaction* inserter = db_->Begin();
  Rid reused = heap()->Insert(inserter, std::string(80, 'n')).value();
  EXPECT_EQ(reused, victim) << "committed tombstone should be reclaimed";
  ASSERT_OK(db_->Commit(inserter));
  EXPECT_EQ(heap()->Fetch(reused).value(), std::string(80, 'n'));
}

TEST_F(HeapTest, ScanAllSeesOnlyLiveRecords) {
  Transaction* txn = db_->Begin();
  Rid a = heap()->Insert(txn, "a").value();
  Rid b = heap()->Insert(txn, "b").value();
  Rid c = heap()->Insert(txn, "c").value();
  (void)a;
  (void)c;
  ASSERT_OK(heap()->Delete(txn, b));
  ASSERT_OK(db_->Commit(txn));
  std::vector<std::pair<Rid, std::string>> rows;
  ASSERT_OK(heap()->ScanAll(&rows));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].second, "a");
  EXPECT_EQ(rows[1].second, "c");
}

TEST_F(HeapTest, OversizeRecordRejected) {
  Transaction* txn = db_->Begin();
  std::string huge(db_->options().page_size, 'x');
  EXPECT_EQ(heap()->Insert(txn, huge).status().code(), Code::kInvalidArgument);
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(HeapTest, HeapSurvivesCrashRecovery) {
  Rid rid;
  {
    Transaction* txn = db_->Begin();
    rid = heap()->Insert(txn, "durable").value();
    ASSERT_OK(db_->Commit(txn));
    db_->SimulateCrash();
  }
  db_ = std::move(Database::Open(dir_->path(), SmallPageOptions())).value();
  table_ = db_->GetTable("t");
  ASSERT_NE(table_, nullptr);
  EXPECT_EQ(heap()->Fetch(rid).value(), "durable");
}

}  // namespace
}  // namespace ariesim
