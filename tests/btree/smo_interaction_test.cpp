// Figure 3 scenario: interaction between a structure-modifying transaction
// and concurrent traversals / inserts.
//
// While an SMO is in progress (tree latch held X, SM_Bits set), a reader
// can still traverse (fetch proceeds, possibly via the leaf chain), but a
// modification of an SM_Bit page must wait for the SMO to complete —
// otherwise an insert could land on the wrong page or commit changes that a
// page-oriented SMO undo would wipe out (§3).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "buffer/buffer_pool.h"
#include "db/database.h"
#include "test_util.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

class SmoInteractionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("smo_ix");
    db_ = std::move(Database::Open(dir_->path(), SmallPageOptions())).value();
    db_->CreateTable("t", 1).value();
    tree_ = db_->CreateIndex("t", "ix", 0, false).value();
  }
  Rid R(uint64_t i) {
    return Rid{static_cast<PageId>(4000 + i), static_cast<uint16_t>(i % 30)};
  }
  /// Find the leaf currently holding `value` (quiesced tree).
  PageId LeafOf(const std::string& value) {
    Transaction* txn = db_->Begin();
    ScanCursor cur;
    (void)cur;
    FetchResult r;
    EXPECT_TRUE(tree_->Fetch(txn, value, FetchCond::kEq, &r).ok());
    EXPECT_TRUE(db_->Commit(txn).ok());
    // Walk the leaf chain to find the page containing the key.
    std::vector<std::pair<std::string, Rid>> all;
    EXPECT_TRUE(tree_->CollectAll(&all).ok());
    // Locate via direct page scan.
    for (PageId pid = 0; pid < 200; ++pid) {
      auto g = db_->pool()->FetchPage(pid, LatchMode::kShared);
      if (!g.ok()) continue;
      PageView v = g.value().view();
      if (v.type() != PageType::kBtreeLeaf ||
          v.owner_id() != tree_->index_id()) {
        continue;
      }
      for (uint16_t i = 0; i < v.slot_count(); ++i) {
        bt::LeafEntry e = bt::DecodeLeafCell(v.Cell(i));
        if (e.value == value) return pid;
      }
    }
    return kInvalidPageId;
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Database> db_;
  BTree* tree_;
};

TEST_F(SmoInteractionTest, Figure3InsertWaitsForInProgressSmo) {
  Transaction* setup = db_->Begin();
  ASSERT_OK(tree_->Insert(setup, "b-key", R(1)));
  ASSERT_OK(tree_->Insert(setup, "d-key", R(2)));
  ASSERT_OK(db_->Commit(setup));
  PageId leaf = LeafOf("b-key");
  ASSERT_NE(leaf, kInvalidPageId);

  // Simulate an in-progress SMO touching the leaf: hold the tree latch X
  // (as the SMO transaction would) and set the page's SM_Bit.
  tree_->tree_latch()->LockExclusive();
  {
    auto g = db_->pool()->FetchPage(leaf, LatchMode::kExclusive);
    ASSERT_TRUE(g.ok());
    g.value().view().set_sm_bit(true);
  }

  // Figure 3: T2 wants to insert a value belonging on this leaf. Even
  // though the leaf is unambiguous, the insert must wait for the SMO.
  Transaction* t2 = db_->Begin();
  std::atomic<bool> done{false};
  std::thread inserter([&] {
    Status s = tree_->Insert(t2, "c-key", R(3));
    EXPECT_TRUE(s.ok()) << s.ToString();
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(done.load()) << "insert must wait for the in-progress SMO";

  tree_->tree_latch()->UnlockExclusive();  // SMO "completes"
  inserter.join();
  EXPECT_TRUE(done.load());
  ASSERT_OK(db_->Commit(t2));
  // The waiting insert established a POSC and cleared the bit.
  {
    auto g = db_->pool()->FetchPage(leaf, LatchMode::kShared);
    ASSERT_TRUE(g.ok());
    EXPECT_FALSE(g.value().view().sm_bit());
  }
  ASSERT_OK(tree_->Validate(nullptr));
}

TEST_F(SmoInteractionTest, DeleteAlsoWaitsForInProgressSmo) {
  Transaction* setup = db_->Begin();
  ASSERT_OK(tree_->Insert(setup, "b-key", R(4)));
  ASSERT_OK(tree_->Insert(setup, "c-key", R(5)));
  ASSERT_OK(tree_->Insert(setup, "d-key", R(6)));
  ASSERT_OK(db_->Commit(setup));
  PageId leaf = LeafOf("c-key");

  tree_->tree_latch()->LockExclusive();
  {
    auto g = db_->pool()->FetchPage(leaf, LatchMode::kExclusive);
    ASSERT_TRUE(g.ok());
    g.value().view().set_sm_bit(true);
  }
  Transaction* t2 = db_->Begin();
  std::atomic<bool> done{false};
  std::thread deleter([&] {
    Status s = tree_->Delete(t2, "c-key", R(5));
    EXPECT_TRUE(s.ok()) << s.ToString();
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(done.load());
  tree_->tree_latch()->UnlockExclusive();
  deleter.join();
  ASSERT_OK(db_->Commit(t2));
  ASSERT_OK(tree_->Validate(nullptr));
}

TEST_F(SmoInteractionTest, FetchProceedsDespiteSmBit) {
  Transaction* setup = db_->Begin();
  ASSERT_OK(tree_->Insert(setup, "b-key", R(7)));
  ASSERT_OK(db_->Commit(setup));
  PageId leaf = LeafOf("b-key");

  tree_->tree_latch()->LockExclusive();
  {
    auto g = db_->pool()->FetchPage(leaf, LatchMode::kExclusive);
    ASSERT_TRUE(g.ok());
    g.value().view().set_sm_bit(true);
  }
  // Retrievals are allowed to go on concurrently with SMOs (§2.1 point 3):
  // the fetch completes while the "SMO" still holds the tree latch.
  Transaction* reader = db_->Begin();
  FetchResult r;
  ASSERT_OK(tree_->Fetch(reader, "b-key", FetchCond::kEq, &r));
  EXPECT_TRUE(r.found);
  ASSERT_OK(db_->Commit(reader));

  tree_->tree_latch()->UnlockExclusive();
  // Clean up the artificial bit.
  {
    auto g = db_->pool()->FetchPage(leaf, LatchMode::kExclusive);
    ASSERT_TRUE(g.ok());
    g.value().view().set_sm_bit(false);
  }
}

TEST_F(SmoInteractionTest, StaleSmBitSelfHeals) {
  // A stale SM_Bit (e.g. the optional reset lost in a crash) must not wedge
  // modifications: with no SMO in progress the conditional instant tree
  // latch succeeds and the bit is cleared.
  Transaction* setup = db_->Begin();
  ASSERT_OK(tree_->Insert(setup, "b-key", R(8)));
  ASSERT_OK(db_->Commit(setup));
  PageId leaf = LeafOf("b-key");
  {
    auto g = db_->pool()->FetchPage(leaf, LatchMode::kExclusive);
    ASSERT_TRUE(g.ok());
    g.value().view().set_sm_bit(true);
  }
  Transaction* t = db_->Begin();
  ASSERT_OK(tree_->Insert(t, "c-key", R(9)));
  ASSERT_OK(db_->Commit(t));
  {
    auto g = db_->pool()->FetchPage(leaf, LatchMode::kShared);
    ASSERT_TRUE(g.ok());
    EXPECT_FALSE(g.value().view().sm_bit()) << "stale bit should be cleared";
  }
}

TEST_F(SmoInteractionTest, ReaderFollowsChainThroughMidSplitState) {
  // Build a leaf, then crash it mid-split (keys moved right, parent not yet
  // spliced — the exact Figure 3 window) using failure injection, WITHOUT
  // crashing: the failed SMO is rolled back by the transaction, and the
  // tree must validate afterwards.
  Transaction* setup = db_->Begin();
  std::string payload;
  for (int i = 0; i < 200; ++i) {
    Status s = tree_->Insert(setup, "k" + std::to_string(1000 + i), R(10 + i));
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  ASSERT_OK(db_->Commit(setup));
  ASSERT_OK(tree_->Validate(nullptr));

  tree_->TestSetFailBeforeParentSplice();
  Transaction* t = db_->Begin();
  // Fill one leaf until a split is needed; the injected failure aborts the
  // SMO mid-flight; the statement rollback must restore consistency.
  Status s = Status::OK();
  for (int i = 0; i < 300 && s.ok(); ++i) {
    s = tree_->Insert(t, "k" + std::to_string(2000 + i), R(300 + i));
  }
  EXPECT_EQ(s.code(), Code::kIOError) << "injection should have fired";
  ASSERT_OK(db_->Rollback(t));
  size_t keys = 0;
  ASSERT_OK(tree_->Validate(&keys));
  EXPECT_EQ(keys, 200u) << "rollback must restore the pre-transaction tree";
}

}  // namespace
}  // namespace ariesim
