// SMO structural tests: multi-level splits, root grow/shrink, page deletes
// up the tree, boundary-key deletes (tree latch S), interleaved workloads
// with validation, and split behavior with large keys.
#include <gtest/gtest.h>

#include <random>

#include "db/database.h"
#include "test_util.h"
#include "util/random.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

class BtreeSmoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("smo");
    db_ = std::move(Database::Open(dir_->path(), SmallPageOptions())).value();
    db_->CreateTable("t", 1).value();
    tree_ = db_->CreateIndex("t", "ix", 0, false).value();
  }
  Rid R(uint64_t i) {
    return Rid{static_cast<PageId>(7000 + i / 50), static_cast<uint16_t>(i % 50)};
  }
  uint8_t RootLevel() {
    auto g = db_->pool()->FetchPage(tree_->root(), LatchMode::kShared);
    EXPECT_TRUE(g.ok());
    return g.value().view().level();
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Database> db_;
  BTree* tree_;
};

TEST_F(BtreeSmoTest, TreeGrowsToMultipleLevels) {
  Transaction* txn = db_->Begin();
  Random rnd(1);
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_OK(tree_->Insert(txn, rnd.Key(i, 8), R(i)));
  }
  ASSERT_OK(db_->Commit(txn));
  EXPECT_GE(RootLevel(), 2) << "2000 keys on 512B pages must give height >= 3";
  size_t keys = 0;
  ASSERT_OK(tree_->Validate(&keys));
  EXPECT_EQ(keys, 2000u);
}

TEST_F(BtreeSmoTest, RootNeverMoves) {
  PageId root_before = tree_->root();
  Transaction* txn = db_->Begin();
  Random rnd(2);
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_OK(tree_->Insert(txn, rnd.Key(i, 8), R(i)));
  }
  ASSERT_OK(db_->Commit(txn));
  EXPECT_EQ(tree_->root(), root_before);
  auto g = db_->pool()->FetchPage(root_before, LatchMode::kShared);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().view().owner_id(), tree_->index_id());
  EXPECT_EQ(g.value().view().type(), PageType::kBtreeInternal);
}

TEST_F(BtreeSmoTest, HeightShrinksOnMassDelete) {
  Transaction* txn = db_->Begin();
  Random rnd(3);
  for (uint64_t i = 0; i < 1500; ++i) {
    ASSERT_OK(tree_->Insert(txn, rnd.Key(i, 8), R(i)));
  }
  ASSERT_OK(db_->Commit(txn));
  uint8_t tall = RootLevel();
  ASSERT_GE(tall, 1);

  Transaction* del = db_->Begin();
  for (uint64_t i = 0; i < 1500; ++i) {
    ASSERT_OK(tree_->Delete(del, rnd.Key(i, 8), R(i)));
  }
  ASSERT_OK(db_->Commit(del));
  EXPECT_EQ(RootLevel(), 0) << "empty tree must collapse back to a root leaf";
  size_t keys = 1;
  ASSERT_OK(tree_->Validate(&keys));
  EXPECT_EQ(keys, 0u);
  // Pages were freed back to the space map.
  Transaction* txn2 = db_->Begin();
  ASSERT_OK(tree_->Insert(txn2, "fresh", R(9999)));
  ASSERT_OK(db_->Commit(txn2));
}

TEST_F(BtreeSmoTest, AscendingAndDescendingInsertOrders) {
  Transaction* up = db_->Begin();
  for (uint64_t i = 0; i < 600; ++i) {
    ASSERT_OK(tree_->Insert(up, "asc" + Random(0).Key(i, 6), R(i)));
  }
  ASSERT_OK(db_->Commit(up));
  Transaction* down = db_->Begin();
  for (uint64_t i = 600; i > 0; --i) {
    ASSERT_OK(tree_->Insert(down, "dsc" + Random(0).Key(i, 6), R(1000 + i)));
  }
  ASSERT_OK(db_->Commit(down));
  size_t keys = 0;
  ASSERT_OK(tree_->Validate(&keys));
  EXPECT_EQ(keys, 1200u);
}

TEST_F(BtreeSmoTest, InterleavedInsertDeleteChurn) {
  Random rnd(4);
  std::set<std::pair<std::string, uint64_t>> live;
  Transaction* txn = db_->Begin();
  for (int round = 0; round < 3000; ++round) {
    if (live.empty() || rnd.Percent(60)) {
      uint64_t i = rnd.Uniform(100000);
      std::string k = rnd.Key(i, 8);
      if (live.count({k, i}) != 0) continue;
      ASSERT_OK(tree_->Insert(txn, k, R(i)));
      live.insert({k, i});
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rnd.Uniform(live.size())));
      ASSERT_OK(tree_->Delete(txn, it->first, R(it->second)));
      live.erase(it);
    }
    if (round % 500 == 499) {
      ASSERT_OK(db_->Commit(txn));
      size_t keys = 0;
      ASSERT_OK(tree_->Validate(&keys));
      ASSERT_EQ(keys, live.size()) << "round " << round;
      txn = db_->Begin();
    }
  }
  ASSERT_OK(db_->Commit(txn));
  EXPECT_GT(db_->metrics().smo_splits.load(), 0u);
}

TEST_F(BtreeSmoTest, MaxLengthKeysStillSplit) {
  Transaction* txn = db_->Begin();
  size_t maxlen = tree_->MaxValueLen();
  for (uint64_t i = 0; i < 120; ++i) {
    std::string k = Random(0).Key(i, 6);
    k.resize(maxlen, 'x');
    ASSERT_OK(tree_->Insert(txn, k, R(i)));
  }
  ASSERT_OK(db_->Commit(txn));
  size_t keys = 0;
  ASSERT_OK(tree_->Validate(&keys));
  EXPECT_EQ(keys, 120u);
}

TEST_F(BtreeSmoTest, BoundaryDeleteTakesTreeLatchS) {
  // Fill two leaves, then delete the smallest key of the right leaf: the
  // boundary-delete path must establish a POSC (tree latch S) — observable
  // via the tree-latch acquisition counter.
  Transaction* txn = db_->Begin();
  for (uint64_t i = 0; i < 60; ++i) {
    ASSERT_OK(tree_->Insert(txn, Random(0).Key(i, 8), R(i)));
  }
  ASSERT_OK(db_->Commit(txn));

  uint64_t latches_before = db_->metrics().tree_latch_acquisitions.load();
  Transaction* del = db_->Begin();
  ASSERT_OK(tree_->Delete(del, Random(0).Key(0, 8), R(0)));  // smallest key
  ASSERT_OK(db_->Commit(del));
  EXPECT_GT(db_->metrics().tree_latch_acquisitions.load(), latches_before)
      << "boundary delete must take the tree latch (Figure 7)";
}

TEST_F(BtreeSmoTest, CommittedSplitSurvivesOtherTxnRollback) {
  // The split performed by T2 while inserting must survive even if T2 rolls
  // back (the SMO is a nested top action; only T2's key inserts are undone).
  Transaction* setup = db_->Begin();
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_OK(tree_->Insert(setup, Random(0).Key(i * 10, 8), R(i)));
  }
  ASSERT_OK(db_->Commit(setup));

  uint64_t splits_before = db_->metrics().smo_splits.load();
  Transaction* t2 = db_->Begin();
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_OK(tree_->Insert(t2, "t2-" + Random(0).Key(i, 8), R(500 + i)));
  }
  ASSERT_GT(db_->metrics().smo_splits.load(), splits_before);
  uint64_t po_undos_before = db_->metrics().page_oriented_undos.load();
  ASSERT_OK(db_->Rollback(t2));
  // The rollback undid only key inserts (page-oriented or logical), never
  // the split's structural records.
  EXPECT_GT(db_->metrics().page_oriented_undos.load(), po_undos_before);
  size_t keys = 0;
  ASSERT_OK(tree_->Validate(&keys));
  EXPECT_EQ(keys, 20u);
  // All 20 original keys reachable.
  Transaction* check = db_->Begin();
  for (uint64_t i = 0; i < 20; ++i) {
    FetchResult r;
    ASSERT_OK(tree_->Fetch(check, Random(0).Key(i * 10, 8), FetchCond::kEq, &r));
    EXPECT_TRUE(r.found);
  }
  ASSERT_OK(db_->Commit(check));
}

}  // namespace
}  // namespace ariesim
