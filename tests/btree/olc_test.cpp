// Optimistic lock coupling on the read path (docs/CONCURRENCY.md,
// "Optimistic descent"): latch-free descents must never act on a torn or
// stale node image.
//
//  - Seeded reader/writer storms: every committed key must be found by a
//    concurrent kEq fetch (a wrong-leaf landing reads as a miss), and every
//    kGe fetch must return a well-formed key >= the probe (a torn parse
//    reads as garbage or an ordering violation). Splits, root grows and
//    page deletes run continuously underneath.
//  - Forced fallbacks: an SM_Bit sighted on an internal page and an
//    exhausted restart budget (a reader starved by a held X latch) must
//    both hand over to the pessimistic path — counted, and correct.
//  - Cursor FetchNext across a leaf split repositions through the
//    optimistic descent and must not skip or duplicate keys.
//
// Seed list overridable via ARIESIM_STRESS_SEEDS ("7", "1,2,9", "1-32").
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "buffer/buffer_pool.h"
#include "db/database.h"
#include "fault_util.h"
#include "test_util.h"
#include "util/random.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::StressSeeds;
using testing::TempDir;

std::string StormKey(int writer, int i) {
  // Fixed-width so readers can assert well-formedness of anything returned.
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%d-%06d", writer, i);
  return buf;
}

Rid StormRid(int writer, int i) {
  return Rid{static_cast<PageId>(5000 + writer),
             static_cast<uint16_t>(i % 1000)};
}

// ---------------------------------------------------------------------------
// Seeded reader/writer storm
// ---------------------------------------------------------------------------

class OlcStormTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OlcStormTest, ReadersNeverObserveTornOrStaleNodes) {
  const uint64_t seed = GetParam();
  TempDir dir("olc_storm");
  Options opts = SmallPageOptions();  // 512 B pages: SMOs every ~dozen keys
  opts.index_locking = LockingProtocolKind::kNone;  // isolate the latch path
  auto db = std::move(Database::Open(dir.path(), opts)).value();
  db->CreateTable("t", 1).value();
  BTree* tree = db->CreateIndexWithProtocol("t", "ix", 0, /*unique=*/false,
                                            LockingProtocolKind::kNone)
                    .value();

  constexpr int kWriters = 3;
  constexpr int kReaders = 4;
  constexpr int kCommittedPerWriter = 150;
  constexpr int kChurnPerWriter = 60;

  // Per-writer watermark: keys StormKey(w, 0..watermark[w]) are committed
  // and never deleted, so any concurrent kEq fetch MUST find them.
  std::atomic<int> watermark[kWriters];
  for (auto& w : watermark) w.store(-1);
  std::atomic<bool> writers_done{false};
  std::atomic<uint64_t> reads{0};

  auto writer = [&](int w) {
    Random rnd(seed * 131 + static_cast<uint64_t>(w));
    int churn = 0;
    for (int i = 0; i < kCommittedPerWriter; ++i) {
      Transaction* txn = db->Begin();
      ASSERT_OK(tree->Insert(txn, StormKey(w, i), StormRid(w, i)));
      ASSERT_OK(db->Commit(txn));
      watermark[w].store(i, std::memory_order_release);
      // Churn traffic (distinct "x" prefix, never fetched by kEq): insert a
      // few keys and delete them again so page deletes / consolidations run
      // under the readers, not just splits.
      if (i % 5 == 4 && churn < kChurnPerWriter) {
        std::string xkey =
            "x" + std::to_string(w) + "-" + std::to_string(churn);
        Rid xrid = StormRid(w, 700 + churn);
        Transaction* t2 = db->Begin();
        ASSERT_OK(tree->Insert(t2, xkey, xrid));
        ASSERT_OK(db->Commit(t2));
        Transaction* t3 = db->Begin();
        ASSERT_OK(tree->Delete(t3, xkey, xrid));
        ASSERT_OK(db->Commit(t3));
        ++churn;
      }
    }
  };

  auto reader = [&](int r) {
    Random rnd(seed * 977 + static_cast<uint64_t>(r));
    while (!writers_done.load(std::memory_order_acquire)) {
      int w = static_cast<int>(rnd.Uniform(kWriters));
      int hi = watermark[w].load(std::memory_order_acquire);
      Transaction* txn = db->Begin();
      if (hi >= 0 && rnd.Percent(70)) {
        // A committed, never-deleted key: a latch-free descent that landed
        // on the wrong leaf (or parsed a torn image) shows up as a miss.
        int i = static_cast<int>(rnd.Uniform(static_cast<uint64_t>(hi) + 1));
        std::string key = StormKey(w, i);
        FetchResult res;
        ASSERT_OK(tree->Fetch(txn, key, FetchCond::kEq, &res));
        ASSERT_TRUE(res.found) << "committed key " << key
                               << " invisible to a concurrent reader";
        ASSERT_EQ(res.value, key);
      } else {
        // Range probe: whatever comes back must be a well-formed key that
        // sorts at or after the probe (kGe contract).
        std::string probe = StormKey(static_cast<int>(rnd.Uniform(kWriters)),
                                     static_cast<int>(rnd.Uniform(
                                         kCommittedPerWriter)));
        FetchResult res;
        ASSERT_OK(tree->Fetch(txn, probe, FetchCond::kGe, &res));
        if (!res.eof) {
          ASSERT_GE(res.value, probe);
          ASSERT_FALSE(res.value.empty());
          char c = res.value[0];
          ASSERT_TRUE(c == 'k' || c == 'x') << "garbage key: " << res.value;
        }
      }
      ASSERT_OK(db->Commit(txn));
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) threads.emplace_back(writer, w);
  for (int r = 0; r < kReaders; ++r) threads.emplace_back(reader, r);
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  writers_done.store(true, std::memory_order_release);
  for (int r = 0; r < kReaders; ++r) {
    threads[static_cast<size_t>(kWriters + r)].join();
  }

  EXPECT_GT(reads.load(), 0u);
  // The optimistic path must actually have been exercised.
  EXPECT_GT(db->metrics().olc_descents.load(), 0u);
  // Quiesced structural check + full count: 3 writers x 150 keys survive.
  size_t keys = 0;
  ASSERT_OK(tree->Validate(&keys));
  EXPECT_EQ(keys, static_cast<size_t>(kWriters) * kCommittedPerWriter);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OlcStormTest,
                         ::testing::ValuesIn(StressSeeds(3)));

// ---------------------------------------------------------------------------
// Forced fallbacks and cursor behavior
// ---------------------------------------------------------------------------

class OlcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("olc");
    Options opts = SmallPageOptions();
    db_ = std::move(Database::Open(dir_->path(), opts)).value();
    db_->CreateTable("t", 1).value();
    tree_ = db_->CreateIndex("t", "ix", 0, /*unique=*/false).value();
  }

  /// Insert `n` committed keys StormKey(0, 0..n) — enough (with 512 B
  /// pages) to force splits and an internal root.
  void Fill(int n) {
    Transaction* txn = db_->Begin();
    for (int i = 0; i < n; ++i) {
      ASSERT_OK(tree_->Insert(txn, StormKey(0, i), StormRid(0, i)));
    }
    ASSERT_OK(db_->Commit(txn));
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Database> db_;
  BTree* tree_ = nullptr;
};

TEST_F(OlcTest, SmBitOnInternalPageForcesPessimisticFallback) {
  Fill(200);
  {
    auto g = db_->pool()->FetchPage(tree_->root(), LatchMode::kShared);
    ASSERT_TRUE(g.ok());
    ASSERT_EQ(g.value().view().type(), PageType::kBtreeInternal)
        << "fixture must produce an internal root";
  }
  // Simulate an in-flight SMO: tree latch held X, SM_Bit set on the root.
  tree_->tree_latch()->LockExclusive();
  {
    auto g = db_->pool()->FetchPage(tree_->root(), LatchMode::kExclusive);
    ASSERT_TRUE(g.ok());
    g.value().view().set_sm_bit(true);
  }
  uint64_t fallbacks_before = db_->metrics().olc_fallbacks.load();

  // Retrievals may proceed concurrently with SMOs (§2.1 point 3) — but only
  // via the pessimistic path, which can disambiguate the bit. The fetch
  // must complete while the "SMO" still holds the tree latch.
  Transaction* reader = db_->Begin();
  FetchResult r;
  ASSERT_OK(tree_->Fetch(reader, StormKey(0, 42), FetchCond::kEq, &r));
  EXPECT_TRUE(r.found);
  ASSERT_OK(db_->Commit(reader));
  EXPECT_GT(db_->metrics().olc_fallbacks.load(), fallbacks_before)
      << "SM_Bit on an internal page must force the fallback";

  tree_->tree_latch()->UnlockExclusive();
  {
    auto g = db_->pool()->FetchPage(tree_->root(), LatchMode::kExclusive);
    ASSERT_TRUE(g.ok());
    g.value().view().set_sm_bit(false);
  }
}

TEST_F(OlcTest, RestartStormCapFallsBackAndStillSucceeds) {
  Fill(200);
  uint64_t restarts_before = db_->metrics().olc_restarts.load();
  uint64_t fallbacks_before = db_->metrics().olc_fallbacks.load();

  // Hold the root X-latched: every optimistic snapshot sees an odd version,
  // the restart budget drains, and the reader must fall back — where the
  // blocking S latch acquisition waits the "writer" out.
  auto hold = db_->pool()->FetchPage(tree_->root(), LatchMode::kExclusive);
  ASSERT_TRUE(hold.ok());
  std::atomic<bool> done{false};
  std::thread t([&] {
    Transaction* reader = db_->Begin();
    FetchResult r;
    Status s = tree_->Fetch(reader, StormKey(0, 7), FetchCond::kEq, &r);
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_TRUE(r.found);
    EXPECT_TRUE(db_->Commit(reader).ok());
    done.store(true);
  });
  // The optimistic budget (8 restarts with micro-backoffs) drains in well
  // under this sleep; the reader is then parked on the pessimistic S latch.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(done.load()) << "reader must be blocked on the held X latch";
  hold.value().Release();
  t.join();
  EXPECT_TRUE(done.load());
  EXPECT_GT(db_->metrics().olc_restarts.load(), restarts_before);
  EXPECT_GT(db_->metrics().olc_fallbacks.load(), fallbacks_before);
}

TEST_F(OlcTest, CursorFetchNextRepositionsAcrossLeafSplit) {
  Fill(40);
  Transaction* txn = db_->Begin();
  ScanCursor cur;
  FetchResult r;
  ASSERT_OK(tree_->OpenScan(txn, StormKey(0, 0), FetchCond::kGe, &cur, &r));
  ASSERT_TRUE(r.found);
  ASSERT_EQ(r.value, StormKey(0, 0));
  for (int i = 1; i <= 5; ++i) {
    ASSERT_OK(tree_->FetchNext(txn, &cur, &r));
    ASSERT_TRUE(r.found);
    ASSERT_EQ(r.value, StormKey(0, i));
  }

  // Split the cursor's leaf out from under it: keys sorting between the
  // current position k0-000005 and its successor force the leaf to split
  // (512 B pages hold only a handful of cells). The remembered page LSN no
  // longer matches, so the next FetchNext repositions via the optimistic
  // descent.
  Transaction* w = db_->Begin();
  std::string base = StormKey(0, 5);
  for (int i = 0; i < 40; ++i) {
    char suffix[8];
    std::snprintf(suffix, sizeof(suffix), "-%02d", i);
    ASSERT_OK(tree_->Insert(w, base + suffix, StormRid(1, i)));
  }
  ASSERT_OK(db_->Commit(w));

  uint64_t olc_before = db_->metrics().olc_descents.load();
  // Continue the scan: the 40 new keys come first (they sort after
  // k0-000005 and before k0-000006), then the original remainder, all in
  // order, none skipped, none repeated.
  std::vector<std::string> rest;
  while (true) {
    ASSERT_OK(tree_->FetchNext(txn, &cur, &r));
    if (r.eof || !r.found) break;
    if (!rest.empty()) {
      ASSERT_GT(r.value, rest.back());
    }
    rest.push_back(r.value);
  }
  ASSERT_OK(db_->Commit(txn));
  ASSERT_EQ(rest.size(), 40u + (40u - 6u));
  EXPECT_EQ(rest.front(), base + "-00");
  EXPECT_EQ(rest[39], base + "-39");
  EXPECT_EQ(rest[40], StormKey(0, 6));
  EXPECT_EQ(rest.back(), StormKey(0, 39));
  EXPECT_GT(db_->metrics().olc_descents.load(), olc_before)
      << "repositioning should use the optimistic descent";
}

TEST_F(OlcTest, DisabledKnobUsesClassicPathOnly) {
  TempDir dir2("olc_off");
  Options opts = SmallPageOptions();
  opts.optimistic_reads = false;
  auto db = std::move(Database::Open(dir2.path(), opts)).value();
  db->CreateTable("t", 1).value();
  BTree* tree = db->CreateIndex("t", "ix", 0, false).value();
  Transaction* txn = db->Begin();
  for (int i = 0; i < 120; ++i) {
    ASSERT_OK(tree->Insert(txn, StormKey(0, i), StormRid(0, i)));
  }
  ASSERT_OK(db->Commit(txn));
  Transaction* reader = db->Begin();
  FetchResult r;
  ASSERT_OK(tree->Fetch(reader, StormKey(0, 60), FetchCond::kEq, &r));
  EXPECT_TRUE(r.found);
  ASSERT_OK(db->Commit(reader));
  EXPECT_EQ(db->metrics().olc_descents.load(), 0u);
  EXPECT_EQ(db->metrics().olc_fallbacks.load(), 0u);
  // The read-path histogram still records (it times both modes for A/B).
  EXPECT_GT(db->metrics().read_descent_latency.count(), 0u);
}

}  // namespace
}  // namespace ariesim
