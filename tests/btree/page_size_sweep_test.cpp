// Parameterized property sweep: the whole tree + recovery machinery must
// hold its invariants at every supported page size (the paper's protocols
// are size-independent; the code paths — split points, separator bounds,
// chain handling — are not, so we sweep them).
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "db/database.h"
#include "test_util.h"
#include "util/random.h"

namespace ariesim {
namespace {

using testing::TempDir;

class PageSizeSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PageSizeSweepTest, InsertDeleteCrashRecoverInvariants) {
  size_t page_size = GetParam();
  TempDir dir("sweep");
  Options o;
  o.page_size = page_size;
  o.buffer_pool_frames = 1024;
  o.fsync_log = false;

  Random rnd(page_size);
  std::set<std::pair<std::string, uint64_t>> committed;
  {
    auto db = std::move(Database::Open(dir.path(), o)).value();
    db->CreateTable("t", 1).value();
    BTree* tree = db->CreateIndex("t", "ix", 0, false).value();
    auto rid = [](uint64_t i) {
      return Rid{static_cast<PageId>(50000 + i / 100),
                 static_cast<uint16_t>(i % 100)};
    };
    // Churn: interleaved inserts/deletes, committed in batches; one batch
    // rolled back; then crash.
    Transaction* txn = db->Begin();
    std::set<std::pair<std::string, uint64_t>> in_txn = committed;
    int batch = 0;
    for (int op = 0; op < 1200; ++op) {
      if (in_txn.empty() || rnd.Percent(65)) {
        uint64_t i = rnd.Uniform(100000);
        std::string k = rnd.Key(i, 8);
        if (in_txn.count({k, i}) != 0) continue;
        ASSERT_OK(tree->Insert(txn, k, rid(i)));
        in_txn.insert({k, i});
      } else {
        auto it = in_txn.begin();
        std::advance(it, static_cast<long>(rnd.Uniform(in_txn.size())));
        ASSERT_OK(tree->Delete(txn, it->first, rid(it->second)));
        in_txn.erase(it);
      }
      if (op % 300 == 299) {
        if (batch == 2) {
          ASSERT_OK(db->Rollback(txn));  // this batch vanishes
          in_txn = committed;
        } else {
          ASSERT_OK(db->Commit(txn));
          committed = in_txn;
        }
        ++batch;
        txn = db->Begin();
      }
    }
    ASSERT_OK(db->Commit(txn));
    committed = in_txn;
    ASSERT_OK(db->wal()->FlushAll());
    db->SimulateCrash();
  }
  {
    auto db = std::move(Database::Open(dir.path(), o)).value();
    BTree* tree = db->GetIndex("ix");
    ASSERT_NE(tree, nullptr);
    size_t keys = 0;
    ASSERT_OK(tree->Validate(&keys));
    EXPECT_EQ(keys, committed.size()) << "page size " << page_size;
    std::vector<std::pair<std::string, Rid>> all;
    ASSERT_OK(tree->CollectAll(&all));
    std::set<std::string> present;
    for (auto& [k, r] : all) present.insert(k);
    for (auto& [k, i] : committed) {
      EXPECT_TRUE(present.count(k)) << "lost committed key " << k
                                    << " at page size " << page_size;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PageSizeSweepTest,
                         ::testing::Values(256, 512, 1024, 4096),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "Page" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace ariesim
