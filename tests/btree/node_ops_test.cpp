// Node-level unit and property tests: cell codecs, search primitives, and
// the apply/inverse property — every structural btree op, applied and then
// compensated with the inverse CLR the undo path would build, restores the
// page to byte-equivalent state (modulo flags the inverse intentionally
// clears). This is the foundation the page-oriented undo of incomplete
// SMOs rests on.
#include <gtest/gtest.h>

#include <cstring>

#include "btree/node.h"
#include "util/random.h"

namespace ariesim {
namespace {

constexpr size_t kPage = 512;

std::string LeafCell(uint64_t i) {
  return bt::EncodeLeafCell(Random(0).Key(i, 6),
                            Rid{static_cast<PageId>(100 + i), 1});
}

struct PageFixture {
  std::string buf = std::string(kPage, '\0');
  PageView v{buf.data(), kPage};
  void InitLeaf(int ncells) {
    v.Init(7, PageType::kBtreeLeaf, 3, 0);
    for (int i = 0; i < ncells; ++i) {
      ASSERT_TRUE(v.InsertCellAt(static_cast<uint16_t>(i),
                                 LeafCell(static_cast<uint64_t>(i * 10)))
                      .ok());
    }
  }
  void InitInternal(int nchildren) {
    v.Init(7, PageType::kBtreeInternal, 3, 1);
    for (int i = 0; i < nchildren - 1; ++i) {
      ASSERT_TRUE(
          v.InsertCellAt(
               static_cast<uint16_t>(i),
               bt::EncodeInternalCell(false, Random(0).Key(
                                                 static_cast<uint64_t>(i * 10), 6),
                                      Rid{1, 0}, static_cast<PageId>(50 + i)))
              .ok());
    }
    ASSERT_TRUE(v.InsertCellAt(static_cast<uint16_t>(nchildren - 1),
                               bt::EncodeInternalCell(true, "", Rid{},
                                                      static_cast<PageId>(99)))
                    .ok());
  }
  /// Canonical content snapshot: (header-sans-flags/lsn, ordered cells).
  std::string Snapshot() const {
    std::string s;
    s += std::to_string(static_cast<int>(v.type())) + "/" +
         std::to_string(v.level()) + "/" + std::to_string(v.next_page()) + "/" +
         std::to_string(v.prev_page()) + ":";
    for (uint16_t i = 0; i < v.slot_count(); ++i) {
      s.append(v.Cell(i));
      s += "|";
    }
    return s;
  }
};

TEST(NodeCodecTest, LeafCellRoundTrip) {
  Rid rid{12345, 67};
  std::string cell = bt::EncodeLeafCell("hello-key", rid);
  bt::LeafEntry e = bt::DecodeLeafCell(cell);
  EXPECT_EQ(e.value, "hello-key");
  EXPECT_EQ(e.rid, rid);
}

TEST(NodeCodecTest, InternalCellRoundTripFiniteAndInf) {
  std::string finite = bt::EncodeInternalCell(false, "sep", Rid{9, 2}, 42);
  bt::InternalEntry e = bt::DecodeInternalCell(finite);
  EXPECT_FALSE(e.inf);
  EXPECT_EQ(e.value, "sep");
  EXPECT_EQ(e.child, 42u);
  std::string inf = bt::EncodeInternalCell(true, "", Rid{}, 43);
  bt::InternalEntry ei = bt::DecodeInternalCell(inf);
  EXPECT_TRUE(ei.inf);
  EXPECT_EQ(ei.child, 43u);
}

TEST(NodeCodecTest, CompareKeyOrdersByValueThenRid) {
  EXPECT_LT(bt::CompareKey("a", Rid{1, 1}, "b", Rid{0, 0}), 0);
  EXPECT_GT(bt::CompareKey("b", Rid{0, 0}, "a", Rid{9, 9}), 0);
  EXPECT_LT(bt::CompareKey("a", Rid{1, 1}, "a", Rid{1, 2}), 0);
  EXPECT_LT(bt::CompareKey("a", Rid{1, 1}, "a", Rid{2, 0}), 0);
  EXPECT_EQ(bt::CompareKey("a", Rid{1, 1}, "a", Rid{1, 1}), 0);
  EXPECT_LT(bt::CompareKey("ab", Rid{1, 1}, "abc", Rid{0, 0}), 0)
      << "prefix sorts first";
}

TEST(NodeSearchTest, LeafLowerBound) {
  PageFixture f;
  f.InitLeaf(10);  // keys 0,10,20,...,90
  bool exact = false;
  EXPECT_EQ(bt::LeafLowerBound(f.v, Random(0).Key(30, 6),
                               Rid{130, 1}, &exact),
            3);
  EXPECT_TRUE(exact);
  EXPECT_EQ(bt::LeafLowerBound(f.v, Random(0).Key(35, 6), Rid{0, 0}, &exact), 4);
  EXPECT_FALSE(exact);
  EXPECT_EQ(bt::LeafLowerBound(f.v, Random(0).Key(95, 6), Rid{0, 0}, &exact), 10);
  EXPECT_EQ(bt::LeafLowerBound(f.v, "", Rid{0, 0}, &exact), 0);
}

TEST(NodeSearchTest, InternalChildIndexAndHighest) {
  PageFixture f;
  f.InitInternal(5);  // separators 0,10,20,30 then INF
  // Key below the first separator routes to child 0.
  EXPECT_EQ(bt::InternalChildIndex(f.v, "", Rid{0, 0}), 0);
  // Key equal to a separator routes PAST it (separator > key required).
  EXPECT_EQ(bt::InternalChildIndex(f.v, Random(0).Key(10, 6), Rid{1, 0}), 2);
  // Beyond every finite separator: the inf entry.
  EXPECT_EQ(bt::InternalChildIndex(f.v, Random(0).Key(99, 6), Rid{0, 0}), 4);
  // KeyWithinHighest: the Figure 4 test against the highest *finite* key.
  EXPECT_TRUE(bt::KeyWithinHighest(f.v, Random(0).Key(25, 6), Rid{0, 0}));
  EXPECT_FALSE(bt::KeyWithinHighest(f.v, Random(0).Key(31, 6), Rid{0, 0}));
}

// ---------------------------------------------------------------------------
// Apply/inverse property tests
// ---------------------------------------------------------------------------

TEST(NodeApplyInverseTest, InsertThenDeleteRestores) {
  PageFixture f;
  f.InitLeaf(6);
  std::string before = f.Snapshot();
  std::string key = Random(0).Key(35, 6);
  Rid rid{777, 3};
  ASSERT_TRUE(bt::Apply(bt::kOpInsertKey, bt::EncodeKeyOp(3, key, rid, false),
                        f.v)
                  .ok());
  EXPECT_NE(f.Snapshot(), before);
  ASSERT_TRUE(bt::Apply(bt::kOpDeleteKey, bt::EncodeKeyOp(3, key, rid, true),
                        f.v)
                  .ok());
  EXPECT_EQ(f.Snapshot(), before);
}

TEST(NodeApplyInverseTest, TruncateThenRestore) {
  PageFixture f;
  f.InitLeaf(8);
  f.v.set_next_page(55);
  std::string before = f.Snapshot();
  auto removed = bt::CollectCells(f.v, 5);
  std::string trunc = bt::EncodeTruncate(3, 5, /*old_next=*/55, /*new_next=*/88,
                                         false, "", "", removed);
  ASSERT_TRUE(bt::Apply(bt::kOpTruncate, trunc, f.v).ok());
  EXPECT_EQ(f.v.slot_count(), 5);
  EXPECT_EQ(f.v.next_page(), 88u);
  EXPECT_TRUE(f.v.sm_bit());
  std::vector<std::string> cells(removed.begin(), removed.end());
  std::string restore = bt::EncodeRestore(3, 55, false, "", cells);
  ASSERT_TRUE(bt::Apply(bt::kOpRestore, restore, f.v).ok());
  EXPECT_EQ(f.Snapshot(), before);
  EXPECT_FALSE(f.v.sm_bit());
}

TEST(NodeApplyInverseTest, InternalTruncateWithPromotedLast) {
  PageFixture f;
  f.InitInternal(6);  // 5 finite separators + inf
  std::string before = f.Snapshot();
  uint16_t from = 3;
  auto removed = bt::CollectCells(f.v, from);
  std::string old_last(f.v.Cell(from - 1));
  bt::InternalEntry promoted = bt::DecodeInternalCell(old_last);
  std::string new_last = bt::EncodeInternalCell(true, "", Rid{}, promoted.child);
  std::string trunc = bt::EncodeTruncate(3, from, kInvalidPageId, kInvalidPageId,
                                         true, old_last, new_last, removed);
  ASSERT_TRUE(bt::Apply(bt::kOpTruncate, trunc, f.v).ok());
  EXPECT_EQ(f.v.slot_count(), from);
  EXPECT_TRUE(bt::DecodeInternalCell(f.v.Cell(from - 1)).inf);
  std::vector<std::string> cells(removed.begin(), removed.end());
  std::string restore = bt::EncodeRestore(3, kInvalidPageId, true, old_last, cells);
  ASSERT_TRUE(bt::Apply(bt::kOpRestore, restore, f.v).ok());
  EXPECT_EQ(f.Snapshot(), before);
}

TEST(NodeApplyInverseTest, SpliceThenUnsplice) {
  PageFixture f;
  f.InitInternal(5);
  std::string before = f.Snapshot();
  uint16_t slot = 2;
  std::string old_cell(f.v.Cell(slot));
  bt::InternalEntry old_e = bt::DecodeInternalCell(old_cell);
  std::string new_cell = bt::EncodeInternalCell(false, Random(0).Key(15, 6),
                                                Rid{1, 0}, old_e.child);
  std::string ins_cell =
      bt::EncodeInternalCell(old_e.inf, old_e.value, old_e.rid, 500);
  std::string splice = bt::EncodeParentSplice(3, slot, old_cell, new_cell,
                                              ins_cell);
  ASSERT_TRUE(bt::Apply(bt::kOpParentSplice, splice, f.v).ok());
  EXPECT_EQ(f.v.slot_count(), 6);
  std::string unsplice = bt::EncodeParentUnsplice(3, slot, old_cell);
  ASSERT_TRUE(bt::Apply(bt::kOpParentUnsplice, unsplice, f.v).ok());
  EXPECT_EQ(f.Snapshot(), before);
}

TEST(NodeApplyInverseTest, ParentRemoveThenRestoreWithRightmostFix) {
  PageFixture f;
  f.InitInternal(5);
  std::string before = f.Snapshot();
  // Remove the rightmost (inf) entry: the previous entry becomes inf.
  uint16_t slot = 4;
  std::string removed(f.v.Cell(slot));
  uint16_t fix_slot = 3;
  std::string fix_old(f.v.Cell(fix_slot));
  bt::InternalEntry prev_e = bt::DecodeInternalCell(fix_old);
  std::string fix_new = bt::EncodeInternalCell(true, "", Rid{}, prev_e.child);
  std::string rm = bt::EncodeParentRemove(3, slot, removed, true, fix_slot,
                                          fix_old, fix_new);
  ASSERT_TRUE(bt::Apply(bt::kOpParentRemove, rm, f.v).ok());
  EXPECT_EQ(f.v.slot_count(), 4);
  EXPECT_TRUE(bt::DecodeInternalCell(f.v.Cell(3)).inf);
  std::string rs = bt::EncodeParentRestore(3, slot, removed, true, fix_slot,
                                           fix_old);
  ASSERT_TRUE(bt::Apply(bt::kOpParentRestore, rs, f.v).ok());
  EXPECT_EQ(f.Snapshot(), before);
}

TEST(NodeApplyInverseTest, FormatThenUnformat) {
  PageFixture f;
  std::vector<std::string> cells;
  for (uint64_t i = 0; i < 4; ++i) cells.push_back(LeafCell(i));
  std::string fmt = bt::EncodeFormat(3, PageType::kBtreeLeaf, 0, true, 11, 12,
                                     cells);
  f.v.set_page_id(7);
  ASSERT_TRUE(bt::Apply(bt::kOpFormat, fmt, f.v).ok());
  EXPECT_EQ(f.v.slot_count(), 4);
  EXPECT_TRUE(f.v.sm_bit());
  EXPECT_EQ(f.v.prev_page(), 11u);
  std::string p;
  PutFixed32(&p, 3);
  ASSERT_TRUE(bt::Apply(bt::kOpUnformat, p, f.v).ok());
  EXPECT_EQ(f.v.type(), PageType::kFree);
}

TEST(NodeApplyInverseTest, ToFreeThenFromFree) {
  PageFixture f;
  f.InitLeaf(0);
  f.v.set_prev_page(21);
  f.v.set_next_page(22);
  std::string to_free = bt::EncodeToFree(3, PageType::kBtreeLeaf, 0, 21, 22);
  ASSERT_TRUE(bt::Apply(bt::kOpToFree, to_free, f.v).ok());
  EXPECT_EQ(f.v.type(), PageType::kFree);
  std::string from_free = bt::EncodeFromFree(3, PageType::kBtreeLeaf, 0, 21, 22);
  ASSERT_TRUE(bt::Apply(bt::kOpFromFree, from_free, f.v).ok());
  EXPECT_EQ(f.v.type(), PageType::kBtreeLeaf);
  EXPECT_EQ(f.v.prev_page(), 21u);
  EXPECT_EQ(f.v.next_page(), 22u);
  EXPECT_EQ(f.v.slot_count(), 0);
  EXPECT_TRUE(f.v.sm_bit());
}

TEST(NodeApplyInverseTest, RandomOpInverseProperty) {
  // Property sweep: random leaf inserts/deletes, each inverted immediately,
  // must always restore the canonical snapshot.
  Random rnd(99);
  PageFixture f;
  f.InitLeaf(8);
  for (int round = 0; round < 300; ++round) {
    std::string before = f.Snapshot();
    uint64_t i = rnd.Uniform(1000);
    std::string key = Random(0).Key(i, 6) + "x";  // never collides with init
    Rid rid{static_cast<PageId>(1000 + i), 0};
    std::string ins = bt::EncodeKeyOp(3, key, rid, false);
    if (!bt::Apply(bt::kOpInsertKey, ins, f.v).ok()) continue;  // page full
    std::string del = bt::EncodeKeyOp(3, key, rid, true);
    ASSERT_TRUE(bt::Apply(bt::kOpDeleteKey, del, f.v).ok());
    ASSERT_EQ(f.Snapshot(), before) << "round " << round;
  }
}

}  // namespace
}  // namespace ariesim
