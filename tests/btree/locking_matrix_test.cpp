// Reproduces the paper's Figure 2 locking matrix:
//
//                    | NEXT KEY                | CURRENT KEY
//  FETCH/FETCH NEXT  |                         | S commit
//  INSERT            | X instant               | X commit (index-specific)
//  DELETE            | X commit                | X instant (index-specific)
//
// and the data-only vs index-specific vs KVL differences of §2.1/§1. The
// instrumented lock manager records every request; each operation's exact
// (space, mode, duration) sequence is asserted.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <thread>

#include "db/database.h"
#include "test_util.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

struct Ev {
  LockSpace space;
  LockMode mode;
  LockDuration duration;
};

class LockingMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("matrix");
    db_ = std::move(Database::Open(dir_->path(), SmallPageOptions())).value();
    db_->CreateTable("t", 1).value();
    data_only_ = db_->CreateIndexWithProtocol("t", "ix_do", 0, false,
                                              LockingProtocolKind::kDataOnly)
                     .value();
    index_spec_ = db_->CreateIndexWithProtocol("t", "ix_is", 0, false,
                                               LockingProtocolKind::kIndexSpecific)
                      .value();
    kvl_ = db_->CreateIndexWithProtocol("t", "ix_kvl", 0, false,
                                        LockingProtocolKind::kKeyValue)
               .value();
    unique_do_ = db_->CreateIndexWithProtocol("t", "ix_udo", 0, true,
                                              LockingProtocolKind::kDataOnly)
                     .value();
  }

  /// Run `body` in its own transaction, recording its lock events.
  std::vector<Ev> Record(const std::function<void(Transaction*)>& body) {
    Transaction* txn = db_->Begin();
    std::vector<Ev> events;
    db_->locks()->SetObserver([&](const LockEvent& e) {
      if (e.txn == txn->id()) {
        events.push_back(Ev{e.name.space, e.mode, e.duration});
      }
    });
    body(txn);
    db_->locks()->SetObserver(nullptr);
    EXPECT_TRUE(db_->Commit(txn).ok());
    return events;
  }

  static void ExpectEv(const Ev& e, LockSpace space, LockMode mode,
                       LockDuration dur, const char* what) {
    EXPECT_EQ(static_cast<int>(e.space), static_cast<int>(space)) << what;
    EXPECT_EQ(static_cast<int>(e.mode), static_cast<int>(mode)) << what;
    EXPECT_EQ(static_cast<int>(e.duration), static_cast<int>(dur)) << what;
  }

  Rid R(uint64_t i) {
    return Rid{static_cast<PageId>(2000 + i), static_cast<uint16_t>(i % 50)};
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Database> db_;
  BTree* data_only_;
  BTree* index_spec_;
  BTree* kvl_;
  BTree* unique_do_;
};

// ---------------------------------------------------------------------------
// Data-only locking (ARIES/IM default)
// ---------------------------------------------------------------------------

TEST_F(LockingMatrixTest, DataOnlyFetchFound) {
  Transaction* setup = db_->Begin();
  ASSERT_OK(data_only_->Insert(setup, "kkk", R(1)));
  ASSERT_OK(db_->Commit(setup));

  auto evs = Record([&](Transaction* txn) {
    FetchResult r;
    ASSERT_OK(data_only_->Fetch(txn, "kkk", FetchCond::kEq, &r));
    ASSERT_TRUE(r.found);
  });
  // Figure 2 row 1: current key S commit — and under data-only locking the
  // key lock IS the record lock.
  ASSERT_EQ(evs.size(), 1u);
  ExpectEv(evs[0], LockSpace::kRecord, LockMode::kS, LockDuration::kCommit,
           "fetch current-key lock");
}

TEST_F(LockingMatrixTest, DataOnlyFetchNotFoundLocksNextKey) {
  Transaction* setup = db_->Begin();
  ASSERT_OK(data_only_->Insert(setup, "mmm", R(2)));
  ASSERT_OK(db_->Commit(setup));

  auto evs = Record([&](Transaction* txn) {
    FetchResult r;
    ASSERT_OK(data_only_->Fetch(txn, "kkk", FetchCond::kEq, &r));
    ASSERT_FALSE(r.found);  // "mmm" is the next higher key
  });
  ASSERT_EQ(evs.size(), 1u);
  ExpectEv(evs[0], LockSpace::kRecord, LockMode::kS, LockDuration::kCommit,
           "not-found locks the next key (phantom protection, §2.2)");
}

TEST_F(LockingMatrixTest, DataOnlyFetchEofUsesIndexEofName) {
  auto evs = Record([&](Transaction* txn) {
    FetchResult r;
    ASSERT_OK(data_only_->Fetch(txn, "zzz", FetchCond::kGe, &r));
    ASSERT_TRUE(r.eof);
  });
  ASSERT_EQ(evs.size(), 1u);
  ExpectEv(evs[0], LockSpace::kIndexEof, LockMode::kS, LockDuration::kCommit,
           "EOF fetch locks the per-index EOF name (§2.2)");
}

TEST_F(LockingMatrixTest, DataOnlyInsertNextKeyInstantX) {
  Transaction* setup = db_->Begin();
  ASSERT_OK(data_only_->Insert(setup, "nnn", R(3)));
  ASSERT_OK(db_->Commit(setup));

  auto evs = Record([&](Transaction* txn) {
    ASSERT_OK(data_only_->Insert(txn, "aaa", R(4)));
  });
  // Figure 2 row 2: next key X instant; current key needs NO index lock
  // under data-only locking (the record manager's record lock covers it).
  ASSERT_EQ(evs.size(), 1u);
  ExpectEv(evs[0], LockSpace::kRecord, LockMode::kX, LockDuration::kInstant,
           "insert next-key lock");
}

TEST_F(LockingMatrixTest, DataOnlyInsertAtEnd) {
  auto evs = Record([&](Transaction* txn) {
    ASSERT_OK(data_only_->Insert(txn, "solo", R(5)));
  });
  ASSERT_EQ(evs.size(), 1u);
  ExpectEv(evs[0], LockSpace::kIndexEof, LockMode::kX, LockDuration::kInstant,
           "insert at end locks EOF instant X");
}

TEST_F(LockingMatrixTest, DataOnlyDeleteNextKeyCommitX) {
  Transaction* setup = db_->Begin();
  ASSERT_OK(data_only_->Insert(setup, "ppp", R(6)));
  ASSERT_OK(data_only_->Insert(setup, "qqq", R(7)));
  ASSERT_OK(db_->Commit(setup));

  auto evs = Record([&](Transaction* txn) {
    ASSERT_OK(data_only_->Delete(txn, "ppp", R(6)));
  });
  // Figure 2 row 3: next key X COMMIT duration (the deleter leaves a trace
  // other transactions trip on, §2.6); no current-key index lock.
  ASSERT_EQ(evs.size(), 1u);
  ExpectEv(evs[0], LockSpace::kRecord, LockMode::kX, LockDuration::kCommit,
           "delete next-key lock");
}

TEST_F(LockingMatrixTest, FetchNextLocksEachNextKeyCommitS) {
  // Figure 2 row 1 covers Fetch Next too: each step locks the located next
  // key S for commit duration.
  Transaction* setup = db_->Begin();
  ASSERT_OK(data_only_->Insert(setup, "s1", R(60)));
  ASSERT_OK(data_only_->Insert(setup, "s2", R(61)));
  ASSERT_OK(data_only_->Insert(setup, "s3", R(62)));
  ASSERT_OK(db_->Commit(setup));

  auto evs = Record([&](Transaction* txn) {
    ScanCursor cur;
    FetchResult first;
    ASSERT_OK(data_only_->OpenScan(txn, "s1", FetchCond::kGe, &cur, &first));
    FetchResult r;
    ASSERT_OK(data_only_->FetchNext(txn, &cur, &r));
    ASSERT_TRUE(r.found);
    ASSERT_OK(data_only_->FetchNext(txn, &cur, &r));
    ASSERT_TRUE(r.found);
    ASSERT_OK(data_only_->FetchNext(txn, &cur, &r));
    ASSERT_TRUE(r.eof);
  });
  // Open locks s1; each FetchNext locks s2, s3, then the EOF name.
  ASSERT_EQ(evs.size(), 4u);
  for (int i = 0; i < 3; ++i) {
    ExpectEv(evs[i], LockSpace::kRecord, LockMode::kS, LockDuration::kCommit,
             "scan step current-key lock");
  }
  ExpectEv(evs[3], LockSpace::kIndexEof, LockMode::kS, LockDuration::kCommit,
           "scan end locks the EOF name");
}

// ---------------------------------------------------------------------------
// Index-specific locking (§2.1 variant)
// ---------------------------------------------------------------------------

TEST_F(LockingMatrixTest, IndexSpecificFetch) {
  Transaction* setup = db_->Begin();
  ASSERT_OK(index_spec_->Insert(setup, "kkk", R(10)));
  ASSERT_OK(db_->Commit(setup));

  auto evs = Record([&](Transaction* txn) {
    FetchResult r;
    ASSERT_OK(index_spec_->Fetch(txn, "kkk", FetchCond::kEq, &r));
  });
  ASSERT_EQ(evs.size(), 1u);
  ExpectEv(evs[0], LockSpace::kKey, LockMode::kS, LockDuration::kCommit,
           "index-specific fetch locks the (index,value,RID) key");
}

TEST_F(LockingMatrixTest, IndexSpecificInsertLocksCurrentToo) {
  Transaction* setup = db_->Begin();
  ASSERT_OK(index_spec_->Insert(setup, "nnn", R(11)));
  ASSERT_OK(db_->Commit(setup));

  auto evs = Record([&](Transaction* txn) {
    ASSERT_OK(index_spec_->Insert(txn, "bbb", R(12)));
  });
  ASSERT_EQ(evs.size(), 2u);
  ExpectEv(evs[0], LockSpace::kKey, LockMode::kX, LockDuration::kInstant,
           "insert next-key instant X");
  ExpectEv(evs[1], LockSpace::kKey, LockMode::kX, LockDuration::kCommit,
           "insert current-key commit X (Figure 2)");
}

TEST_F(LockingMatrixTest, IndexSpecificDeleteLocksCurrentInstant) {
  Transaction* setup = db_->Begin();
  ASSERT_OK(index_spec_->Insert(setup, "ppp", R(13)));
  ASSERT_OK(index_spec_->Insert(setup, "qqq", R(14)));
  ASSERT_OK(db_->Commit(setup));

  auto evs = Record([&](Transaction* txn) {
    ASSERT_OK(index_spec_->Delete(txn, "ppp", R(13)));
  });
  ASSERT_EQ(evs.size(), 2u);
  ExpectEv(evs[0], LockSpace::kKey, LockMode::kX, LockDuration::kCommit,
           "delete next-key commit X");
  ExpectEv(evs[1], LockSpace::kKey, LockMode::kX, LockDuration::kInstant,
           "delete current-key instant X (Figure 2)");
}

// ---------------------------------------------------------------------------
// ARIES/KVL baseline — coarser names, more locks (§1)
// ---------------------------------------------------------------------------

TEST_F(LockingMatrixTest, KvlFetchLocksKeyValue) {
  Transaction* setup = db_->Begin();
  ASSERT_OK(kvl_->Insert(setup, "kkk", R(20)));
  ASSERT_OK(db_->Commit(setup));

  auto evs = Record([&](Transaction* txn) {
    FetchResult r;
    ASSERT_OK(kvl_->Fetch(txn, "kkk", FetchCond::kEq, &r));
  });
  ASSERT_EQ(evs.size(), 1u);
  ExpectEv(evs[0], LockSpace::kKeyValue, LockMode::kS, LockDuration::kCommit,
           "KVL fetch locks the key VALUE, not the individual key");
}

TEST_F(LockingMatrixTest, KvlInsertTakesTwoLocks) {
  Transaction* setup = db_->Begin();
  ASSERT_OK(kvl_->Insert(setup, "nnn", R(21)));
  ASSERT_OK(db_->Commit(setup));

  auto evs = Record([&](Transaction* txn) {
    ASSERT_OK(kvl_->Insert(txn, "bbb", R(22)));
  });
  ASSERT_EQ(evs.size(), 2u);
  ExpectEv(evs[0], LockSpace::kKeyValue, LockMode::kX, LockDuration::kInstant,
           "KVL insert next-value instant X");
  ExpectEv(evs[1], LockSpace::kKeyValue, LockMode::kIX, LockDuration::kCommit,
           "KVL insert own-value commit IX");
}

TEST_F(LockingMatrixTest, KvlDuplicateValueInsertSkipsNextLock) {
  // The pre-existing duplicate must sort AFTER the new key so it is the new
  // key's next key (keys are (value, RID) pairs).
  Transaction* setup = db_->Begin();
  ASSERT_OK(kvl_->Insert(setup, "dup", R(24)));
  ASSERT_OK(db_->Commit(setup));

  auto evs = Record([&](Transaction* txn) {
    ASSERT_OK(kvl_->Insert(txn, "dup", R(23)));
  });
  // Next key carries the same value: the next-key-value lock collapses into
  // the own-value IX (the ARIES/KVL optimization).
  ASSERT_EQ(evs.size(), 1u);
  ExpectEv(evs[0], LockSpace::kKeyValue, LockMode::kIX, LockDuration::kCommit,
           "KVL duplicate insert: own-value IX only");
}

TEST_F(LockingMatrixTest, KvlCoarserThanDataOnlyOnNonuniqueValues) {
  // Two keys sharing a value: under KVL one lock name covers both; under
  // data-only locking each RID has its own name. This is the §1 concurrency
  // criticism made concrete.
  Transaction* setup = db_->Begin();
  ASSERT_OK(kvl_->Insert(setup, "v", R(30)));
  ASSERT_OK(kvl_->Insert(setup, "v", R(31)));
  ASSERT_OK(data_only_->Insert(setup, "v", R(30)));
  ASSERT_OK(data_only_->Insert(setup, "v", R(31)));
  ASSERT_OK(db_->Commit(setup));

  Transaction* t1 = db_->Begin();
  Transaction* t2 = db_->Begin();
  FetchResult r;
  // Data-only: T1 locks R(30)'s record; T2 can X-lock R(31)'s record.
  ASSERT_OK(data_only_->Fetch(t1, "v", FetchCond::kEq, &r));
  Status s = db_->locks()->Lock(t2->id(),
                                LockName::Record(data_only_->table_id(), R(31)),
                                LockMode::kX, LockDuration::kCommit, true);
  EXPECT_TRUE(s.ok()) << "data-only: sibling RID not blocked";
  // KVL: T1's S on value "v" blocks a deleter of the *sibling* RID, because
  // the delete needs commit IX on the shared value name (S vs IX conflict).
  ASSERT_OK(kvl_->Fetch(t1, "v", FetchCond::kEq, &r));
  std::atomic<bool> kvl_done{false};
  Transaction* t3 = db_->Begin();
  std::thread blocked([&] {
    Status del = kvl_->Delete(t3, "v", R(31));
    EXPECT_TRUE(del.ok()) << del.ToString();
    kvl_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(kvl_done.load())
      << "KVL value lock must block the sibling-RID delete";
  ASSERT_OK(db_->Commit(t1));
  blocked.join();
  EXPECT_TRUE(kvl_done.load());
  ASSERT_OK(db_->Commit(t2));
  ASSERT_OK(db_->Commit(t3));
}

// ---------------------------------------------------------------------------
// Lock-count comparison (the "minimal number of locks" claim)
// ---------------------------------------------------------------------------

TEST_F(LockingMatrixTest, DataOnlyAcquiresFewestLocks) {
  auto count_ops = [&](BTree* tree, uint64_t base) {
    size_t n = 0;
    Transaction* txn = db_->Begin();
    db_->locks()->SetObserver([&](const LockEvent& e) {
      if (e.txn == txn->id()) ++n;
    });
    for (uint64_t i = 0; i < 20; ++i) {
      EXPECT_TRUE(tree->Insert(txn, "k" + std::to_string(base + i), R(base + i))
                      .ok());
    }
    for (uint64_t i = 0; i < 20; ++i) {
      FetchResult r;
      EXPECT_TRUE(
          tree->Fetch(txn, "k" + std::to_string(base + i), FetchCond::kEq, &r)
              .ok());
    }
    db_->locks()->SetObserver(nullptr);
    EXPECT_TRUE(db_->Commit(txn).ok());
    return n;
  };
  size_t n_do = count_ops(data_only_, 100);
  size_t n_is = count_ops(index_spec_, 200);
  size_t n_kvl = count_ops(kvl_, 300);
  EXPECT_LT(n_do, n_is) << "data-only must take fewer locks than index-specific";
  EXPECT_LT(n_do, n_kvl) << "data-only must take fewer locks than KVL";
}

// ---------------------------------------------------------------------------
// Unique-index insert S-locks the existing key (§2.4)
// ---------------------------------------------------------------------------

TEST_F(LockingMatrixTest, UniqueViolationLocksExistingKeyCommitS) {
  Transaction* setup = db_->Begin();
  ASSERT_OK(unique_do_->Insert(setup, "u", R(40)));
  ASSERT_OK(db_->Commit(setup));

  Transaction* txn = db_->Begin();
  std::vector<Ev> evs;
  db_->locks()->SetObserver([&](const LockEvent& e) {
    if (e.txn == txn->id()) evs.push_back(Ev{e.name.space, e.mode, e.duration});
  });
  EXPECT_TRUE(unique_do_->Insert(txn, "u", R(41)).IsDuplicate());
  db_->locks()->SetObserver(nullptr);
  ASSERT_EQ(evs.size(), 1u);
  ExpectEv(evs[0], LockSpace::kRecord, LockMode::kS, LockDuration::kCommit,
           "unique check S-locks the found key for commit duration so the "
           "error is repeatable (§2.4)");
  ASSERT_OK(db_->Commit(txn));
}

}  // namespace
}  // namespace ariesim
