// Serializability-oriented scenarios (§2.4-§2.6):
//  - unique index: delete + insert of the same value by different
//    transactions serialize (problem (10) of §1.1);
//  - an uncommitted insert is visible as a tripping point (the inserted key
//    itself carries the record lock);
//  - the asymmetric next-key durations (instant for insert, commit for
//    delete) give exactly the interleavings the paper allows.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "db/database.h"
#include "test_util.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

class SerializabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("ser");
    db_ = std::move(Database::Open(dir_->path(), SmallPageOptions())).value();
    table_ = db_->CreateTable("t", 2).value();
    ASSERT_TRUE(db_->CreateIndex("t", "pk", 0, /*unique=*/true).ok());
  }
  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Database> db_;
  Table* table_;
};

TEST_F(SerializabilityTest, UniqueDeleteThenInsertByOtherTxnSerializes) {
  // §1.1 problem (10): T1 deletes value V (uncommitted); T2's insert of V
  // must wait — if T1 rolled back, two keys with the same value would exist.
  Transaction* setup = db_->Begin();
  Rid rid;
  ASSERT_OK(table_->Insert(setup, {"v", "old"}, &rid));
  ASSERT_OK(db_->Commit(setup));

  Transaction* t1 = db_->Begin();
  ASSERT_OK(table_->Delete(t1, rid));

  Transaction* t2 = db_->Begin();
  std::atomic<bool> done{false};
  std::atomic<bool> ok{false};
  std::thread t([&] {
    Status s = table_->Insert(t2, {"v", "new"});
    ok = s.ok();
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_FALSE(done.load()) << "insert of uncommitted-deleted value must wait";
  ASSERT_OK(db_->Commit(t1));
  t.join();
  EXPECT_TRUE(done.load());
  EXPECT_TRUE(ok.load()) << "after the delete commits, the insert succeeds";
  ASSERT_OK(db_->Commit(t2));

  Transaction* check = db_->Begin();
  std::optional<Row> row;
  ASSERT_OK(table_->FetchByKey(check, "pk", "v", &row));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[1], "new");
  ASSERT_OK(db_->Commit(check));
}

TEST_F(SerializabilityTest, UniqueDeleteRolledBackInsertGetsDuplicate) {
  Transaction* setup = db_->Begin();
  Rid rid;
  ASSERT_OK(table_->Insert(setup, {"v", "old"}, &rid));
  ASSERT_OK(db_->Commit(setup));

  Transaction* t1 = db_->Begin();
  ASSERT_OK(table_->Delete(t1, rid));

  Transaction* t2 = db_->Begin();
  std::atomic<bool> done{false};
  Status result;
  std::thread t([&] {
    result = table_->Insert(t2, {"v", "new"});
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_FALSE(done.load());
  ASSERT_OK(db_->Rollback(t1));  // the value is back
  t.join();
  EXPECT_TRUE(result.IsDuplicate())
      << "rolled-back delete means the value still exists: " << result.ToString();
  ASSERT_OK(db_->Commit(t2));
}

TEST_F(SerializabilityTest, UncommittedInsertBlocksUniqueCheck) {
  // An uncommitted insert IS visible (the key exists); a second inserter of
  // the same value trips on the first inserter's record lock during the
  // §2.4 unique check and waits.
  Transaction* t1 = db_->Begin();
  ASSERT_OK(table_->Insert(t1, {"v", "first"}));

  Transaction* t2 = db_->Begin();
  std::atomic<bool> done{false};
  Status result;
  std::thread t([&] {
    result = table_->Insert(t2, {"v", "second"});
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_FALSE(done.load()) << "unique check must wait on the uncommitted insert";
  ASSERT_OK(db_->Commit(t1));
  t.join();
  EXPECT_TRUE(result.IsDuplicate()) << result.ToString();
  ASSERT_OK(db_->Commit(t2));
}

TEST_F(SerializabilityTest, UncommittedInsertRolledBackAllowsSecondInsert) {
  Transaction* t1 = db_->Begin();
  ASSERT_OK(table_->Insert(t1, {"v", "first"}));

  Transaction* t2 = db_->Begin();
  std::atomic<bool> done{false};
  Status result;
  std::thread t([&] {
    result = table_->Insert(t2, {"v", "second"});
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_FALSE(done.load());
  ASSERT_OK(db_->Rollback(t1));
  t.join();
  EXPECT_TRUE(result.ok()) << result.ToString();
  ASSERT_OK(db_->Commit(t2));

  Transaction* check = db_->Begin();
  std::optional<Row> row;
  ASSERT_OK(table_->FetchByKey(check, "pk", "v", &row));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[1], "second");
  ASSERT_OK(db_->Commit(check));
}

TEST_F(SerializabilityTest, InsertInstantNextKeyDoesNotBlockLaterReaders) {
  // §2.6 asymmetry: the insert's next-key lock is INSTANT, so once the
  // insert finishes (still uncommitted), readers of the *next* key proceed
  // — the inserted key itself is the tripping point, not its neighbor.
  Transaction* setup = db_->Begin();
  ASSERT_OK(table_->Insert(setup, {"neighbor", "x"}));
  ASSERT_OK(db_->Commit(setup));

  Transaction* writer = db_->Begin();
  ASSERT_OK(table_->Insert(writer, {"mine", "y"}));  // next key: "neighbor"

  // A reader of "neighbor" is NOT blocked (instant lock already released).
  Transaction* reader = db_->Begin();
  std::optional<Row> row;
  ASSERT_OK(table_->FetchByKey(reader, "pk", "neighbor", &row));
  EXPECT_TRUE(row.has_value());
  ASSERT_OK(db_->Commit(reader));

  // But a reader of the uncommitted "mine" blocks on its record lock.
  Transaction* reader2 = db_->Begin();
  std::atomic<bool> done{false};
  std::thread t([&] {
    std::optional<Row> r2;
    EXPECT_TRUE(table_->FetchByKey(reader2, "pk", "mine", &r2).ok());
    EXPECT_TRUE(r2.has_value());
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_FALSE(done.load());
  ASSERT_OK(db_->Commit(writer));
  t.join();
  ASSERT_OK(db_->Commit(reader2));
}

TEST_F(SerializabilityTest, WriteSkewPreventedByNextKeyLocks) {
  // Classic RR check expressed with indexes: T1 and T2 both verify a value
  // is absent before inserting their own marker. With next-key locking both
  // fetch-misses S-lock the same next key; the two inserts then deadlock or
  // serialize — but both can never conclude "absent" and insert.
  Transaction* setup = db_->Begin();
  ASSERT_OK(table_->Insert(setup, {"zfence", "x"}));
  ASSERT_OK(db_->Commit(setup));

  Transaction* t1 = db_->Begin();
  Transaction* t2 = db_->Begin();
  std::optional<Row> row;
  ASSERT_OK(table_->FetchByKey(t1, "pk", "marker1", &row));
  EXPECT_FALSE(row.has_value());
  ASSERT_OK(table_->FetchByKey(t2, "pk", "marker2", &row));
  EXPECT_FALSE(row.has_value());

  // Both inserts target the range guarded by "zfence"'s S locks (held by
  // both). Each insert needs instant X on "zfence": deadlock — one aborts.
  std::atomic<int> ok_count{0}, deadlock_count{0};
  auto run = [&](Transaction* txn, const std::string& key) {
    Status s = table_->Insert(txn, {key, "1"});
    if (s.ok()) {
      ok_count.fetch_add(1);
      EXPECT_TRUE(db_->Commit(txn).ok());
    } else {
      deadlock_count.fetch_add(1);
      EXPECT_TRUE(db_->Rollback(txn).ok());
    }
  };
  std::thread a(run, t1, "marker1");
  std::thread b(run, t2, "marker2");
  a.join();
  b.join();
  EXPECT_EQ(ok_count.load() + deadlock_count.load(), 2);
  EXPECT_GE(deadlock_count.load(), 1) << "both inserting would be write skew";
}

}  // namespace
}  // namespace ariesim
