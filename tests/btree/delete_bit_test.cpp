// Figure 11 / Delete_Bit scenario (§3):
//
//   T1 deletes a key on leaf P6 (uncommitted). T2 wants to insert into P6,
//   consuming the freed space. Before consuming, T2 must establish a point
//   of structural consistency (instant S tree latch) because a later crash
//   could force T1's undo to retraverse the tree — which must then be
//   structurally consistent. The Delete_Bit on P6 is what tells T2 to take
//   that precaution.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "db/database.h"
#include "test_util.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

class DeleteBitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("delbit");
    db_ = std::move(Database::Open(dir_->path(), SmallPageOptions())).value();
    db_->CreateTable("t", 1).value();
    tree_ = db_->CreateIndex("t", "ix", 0, false).value();
  }
  Rid R(uint64_t i) {
    return Rid{static_cast<PageId>(6000 + i), static_cast<uint16_t>(i % 30)};
  }
  PageId LeafOf(const std::string& value) {
    for (PageId pid = 0; pid < 300; ++pid) {
      auto g = db_->pool()->FetchPage(pid, LatchMode::kShared);
      if (!g.ok()) continue;
      PageView v = g.value().view();
      if (v.type() != PageType::kBtreeLeaf || v.owner_id() != tree_->index_id()) {
        continue;
      }
      for (uint16_t i = 0; i < v.slot_count(); ++i) {
        if (bt::DecodeLeafCell(v.Cell(i)).value == value) return pid;
      }
    }
    return kInvalidPageId;
  }
  bool LeafDeleteBit(PageId pid) {
    auto g = db_->pool()->FetchPage(pid, LatchMode::kShared);
    return g.ok() && g.value().view().delete_bit();
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Database> db_;
  BTree* tree_;
};

TEST_F(DeleteBitTest, DeleteSetsTheBit) {
  Transaction* setup = db_->Begin();
  ASSERT_OK(tree_->Insert(setup, "aa", R(1)));
  ASSERT_OK(tree_->Insert(setup, "bb", R(2)));
  ASSERT_OK(tree_->Insert(setup, "cc", R(3)));
  ASSERT_OK(db_->Commit(setup));
  PageId leaf = LeafOf("bb");
  EXPECT_FALSE(LeafDeleteBit(leaf));

  Transaction* t = db_->Begin();
  ASSERT_OK(tree_->Delete(t, "bb", R(2)));
  ASSERT_OK(db_->Commit(t));
  EXPECT_TRUE(LeafDeleteBit(leaf)) << "Figure 7: delete sets the Delete_Bit";
}

TEST_F(DeleteBitTest, InsertClearsBitAfterPosc) {
  Transaction* setup = db_->Begin();
  ASSERT_OK(tree_->Insert(setup, "aa", R(4)));
  ASSERT_OK(tree_->Insert(setup, "bb", R(5)));
  ASSERT_OK(db_->Commit(setup));
  Transaction* del = db_->Begin();
  ASSERT_OK(tree_->Delete(del, "bb", R(5)));
  ASSERT_OK(db_->Commit(del));
  PageId leaf = LeafOf("aa");
  ASSERT_TRUE(LeafDeleteBit(leaf));

  // No SMO in progress: the insert's conditional instant tree latch
  // succeeds immediately (a POSC exists) and the bit is cleared.
  Transaction* ins = db_->Begin();
  ASSERT_OK(tree_->Insert(ins, "ab", R(6)));
  ASSERT_OK(db_->Commit(ins));
  EXPECT_FALSE(LeafDeleteBit(leaf)) << "Figure 6: insert resets the bit";
}

TEST_F(DeleteBitTest, InsertIntoDeleteBitPageWaitsForSmo) {
  Transaction* setup = db_->Begin();
  ASSERT_OK(tree_->Insert(setup, "aa", R(7)));
  ASSERT_OK(tree_->Insert(setup, "bb", R(8)));
  ASSERT_OK(db_->Commit(setup));
  Transaction* del = db_->Begin();
  ASSERT_OK(tree_->Delete(del, "bb", R(8)));
  ASSERT_OK(db_->Commit(del));
  PageId leaf = LeafOf("aa");
  ASSERT_TRUE(LeafDeleteBit(leaf));

  // Simulate an SMO elsewhere in the tree: hold the tree latch X. T2's
  // space-consuming insert must wait (the Figure 11 precaution) even though
  // the leaf itself is not part of the SMO.
  tree_->tree_latch()->LockExclusive();
  Transaction* ins = db_->Begin();
  std::atomic<bool> done{false};
  std::thread t([&] {
    EXPECT_TRUE(tree_->Insert(ins, "ab", R(9)).ok());
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(done.load())
      << "insert consuming freed space must wait out the ongoing SMO";
  tree_->tree_latch()->UnlockExclusive();
  t.join();
  ASSERT_OK(db_->Commit(ins));
  EXPECT_FALSE(LeafDeleteBit(leaf));
}

TEST_F(DeleteBitTest, Figure11CrashScenario) {
  // Full Figure 11 reproduction:
  //  - committed filler keys pack leaf P6 nearly full;
  //  - T1 deletes a key on P6 (does not commit);
  //  - T2 inserts keys consuming the freed space, commits;
  //  - crash (log flushed, pages partially flushed);
  //  - restart: T1 is a loser; undoing its delete must re-insert the key,
  //    which no longer fits page-oriented → logical undo with a split at
  //    restart. The tree must come back structurally consistent with T2's
  //    committed keys present and T1's key restored.
  std::string fat(22, 'q');
  Transaction* setup = db_->Begin();
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_OK(tree_->Insert(setup, "p6-" + std::to_string(i) + fat, R(i)));
  }
  ASSERT_OK(db_->Commit(setup));

  Transaction* t1 = db_->Begin();
  for (uint64_t i = 3; i < 6; ++i) {
    ASSERT_OK(tree_->Delete(t1, "p6-" + std::to_string(i) + fat, R(i)));
  }

  // T2 consumes the freed space. Its keys sort right after p6-0, so their
  // next key (p6-1) is not covered by T1's next-key locks (which protect
  // p6-4..p6-6) — T2 runs to commit, exactly as in Figure 11.
  Transaction* t2 = db_->Begin();
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_OK(tree_->Insert(t2, "p6-0a" + std::to_string(i) + fat, R(40 + i)));
  }
  ASSERT_OK(db_->Commit(t2));

  // Crash with everything logged and data pages flushed (steal policy).
  ASSERT_OK(db_->wal()->FlushAll());
  ASSERT_OK(db_->FlushAllPages());
  db_->SimulateCrash();

  db_ = std::move(Database::Open(dir_->path(), SmallPageOptions())).value();
  tree_ = db_->GetIndex("ix");
  ASSERT_NE(tree_, nullptr);
  EXPECT_GE(db_->restart_stats().loser_txns, 1u);

  Transaction* check = db_->Begin();
  for (uint64_t i = 0; i < 10; ++i) {
    FetchResult r;
    ASSERT_OK(tree_->Fetch(check, "p6-" + std::to_string(i) + fat,
                           FetchCond::kEq, &r));
    EXPECT_TRUE(r.found) << "T1's deleted key " << i
                         << " not restored by restart undo";
  }
  for (uint64_t i = 0; i < 3; ++i) {
    FetchResult r;
    ASSERT_OK(
        tree_->Fetch(check, "p6-0a" + std::to_string(i) + fat, FetchCond::kEq, &r));
    EXPECT_TRUE(r.found) << "T2's committed key " << i << " lost";
  }
  ASSERT_OK(db_->Commit(check));
  size_t keys = 0;
  ASSERT_OK(tree_->Validate(&keys));
  EXPECT_EQ(keys, 13u);
}

}  // namespace
}  // namespace ariesim
