// B-tree unit tests against a raw Database-provided tree: fetch semantics
// (=, >=, >, EOF), insert/delete, many-key workloads that force splits and
// page deletes, scans, and structural validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "db/database.h"
#include "test_util.h"
#include "util/random.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

class BtreeBasicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("btree_basic");
    auto db = Database::Open(dir_->path(), SmallPageOptions());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    table_ = db_->CreateTable("t", 1).value();
    tree_ = db_->CreateIndex("t", "t_idx", 0, /*unique=*/false).value();
  }

  /// Insert a standalone key with a synthetic RID (bypassing the heap, as
  /// index-level tests do not need records). RIDs must look like real data
  /// pages, so use a high page id.
  Rid SyntheticRid(uint64_t i) {
    return Rid{static_cast<PageId>(1000 + i / 100),
               static_cast<uint16_t>(i % 100)};
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Database> db_;
  Table* table_;
  BTree* tree_;
};

TEST_F(BtreeBasicTest, EmptyTreeFetch) {
  Transaction* txn = db_->Begin();
  FetchResult r;
  ASSERT_OK(tree_->Fetch(txn, "anything", FetchCond::kEq, &r));
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.eof);
  ASSERT_OK(db_->Commit(txn));
}

TEST_F(BtreeBasicTest, InsertAndFetchConditions) {
  Transaction* txn = db_->Begin();
  ASSERT_OK(tree_->Insert(txn, "bbb", SyntheticRid(1)));
  ASSERT_OK(tree_->Insert(txn, "ddd", SyntheticRid(2)));
  ASSERT_OK(tree_->Insert(txn, "fff", SyntheticRid(3)));
  ASSERT_OK(db_->Commit(txn));

  Transaction* q = db_->Begin();
  FetchResult r;
  ASSERT_OK(tree_->Fetch(q, "ddd", FetchCond::kEq, &r));
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.value, "ddd");
  EXPECT_EQ(r.rid, SyntheticRid(2));

  ASSERT_OK(tree_->Fetch(q, "ccc", FetchCond::kEq, &r));
  EXPECT_FALSE(r.found);  // next higher key is locked, not returned as found

  ASSERT_OK(tree_->Fetch(q, "ccc", FetchCond::kGe, &r));
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.value, "ddd");

  ASSERT_OK(tree_->Fetch(q, "ddd", FetchCond::kGe, &r));
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.value, "ddd");

  ASSERT_OK(tree_->Fetch(q, "ddd", FetchCond::kGt, &r));
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.value, "fff");

  ASSERT_OK(tree_->Fetch(q, "fff", FetchCond::kGt, &r));
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.eof);
  ASSERT_OK(db_->Commit(q));
}

TEST_F(BtreeBasicTest, DuplicateValuesDistinctRids) {
  Transaction* txn = db_->Begin();
  ASSERT_OK(tree_->Insert(txn, "dup", SyntheticRid(1)));
  ASSERT_OK(tree_->Insert(txn, "dup", SyntheticRid(2)));
  ASSERT_OK(tree_->Insert(txn, "dup", SyntheticRid(3)));
  // The exact same (value, rid) is rejected.
  EXPECT_TRUE(tree_->Insert(txn, "dup", SyntheticRid(2)).IsDuplicate());
  ASSERT_OK(db_->Commit(txn));
  size_t keys = 0;
  ASSERT_OK(tree_->Validate(&keys));
  EXPECT_EQ(keys, 3u);
}

TEST_F(BtreeBasicTest, ManyInsertsForceSplits) {
  Random rnd(42);
  std::set<std::string> keys;
  Transaction* txn = db_->Begin();
  for (uint64_t i = 0; i < 500; ++i) {
    std::string k = rnd.Key(rnd.Uniform(1000000), 8);
    if (!keys.insert(k).second) continue;
    ASSERT_OK(tree_->Insert(txn, k, SyntheticRid(i)));
  }
  ASSERT_OK(db_->Commit(txn));
  EXPECT_GT(db_->metrics().smo_splits.load(), 5u) << "expected leaf splits";

  size_t count = 0;
  ASSERT_OK(tree_->Validate(&count));
  EXPECT_EQ(count, keys.size());

  std::vector<std::pair<std::string, Rid>> all;
  ASSERT_OK(tree_->CollectAll(&all));
  ASSERT_EQ(all.size(), keys.size());
  auto it = keys.begin();
  for (size_t i = 0; i < all.size(); ++i, ++it) {
    EXPECT_EQ(all[i].first, *it);
  }
}

TEST_F(BtreeBasicTest, DeleteToEmptyForcesPageDeletes) {
  Random rnd(7);
  std::vector<std::pair<std::string, Rid>> keys;
  Transaction* txn = db_->Begin();
  for (uint64_t i = 0; i < 400; ++i) {
    std::string k = rnd.Key(i, 8);
    Rid r = SyntheticRid(i);
    keys.emplace_back(k, r);
    ASSERT_OK(tree_->Insert(txn, k, r));
  }
  ASSERT_OK(db_->Commit(txn));
  ASSERT_OK(tree_->Validate(nullptr));

  // Delete everything in random order: exercises boundary deletes, page
  // deletes, root collapse.
  std::shuffle(keys.begin(), keys.end(), std::mt19937(1234));
  Transaction* del = db_->Begin();
  for (auto& [k, r] : keys) {
    Status s = tree_->Delete(del, k, r);
    ASSERT_TRUE(s.ok()) << "delete " << k << ": " << s.ToString();
  }
  ASSERT_OK(db_->Commit(del));
  EXPECT_GT(db_->metrics().smo_page_deletes.load(), 3u);

  size_t count = 999;
  ASSERT_OK(tree_->Validate(&count));
  EXPECT_EQ(count, 0u);

  // The tree remains usable after total emptiness.
  Transaction* re = db_->Begin();
  ASSERT_OK(tree_->Insert(re, "again", SyntheticRid(9)));
  FetchResult fr;
  ASSERT_OK(tree_->Fetch(re, "again", FetchCond::kEq, &fr));
  EXPECT_TRUE(fr.found);
  ASSERT_OK(db_->Commit(re));
}

TEST_F(BtreeBasicTest, ScanRange) {
  Transaction* txn = db_->Begin();
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_OK(tree_->Insert(txn, Random(0).Key(i, 6), SyntheticRid(i)));
  }
  ASSERT_OK(db_->Commit(txn));

  Transaction* q = db_->Begin();
  ScanCursor cur;
  FetchResult first;
  ASSERT_OK(tree_->OpenScan(q, Random(0).Key(10, 6), FetchCond::kGe, &cur,
                            &first));
  ASSERT_OK(tree_->SetStop(&cur, Random(0).Key(20, 6), /*inclusive=*/true));
  ASSERT_TRUE(first.found);
  EXPECT_EQ(first.value, Random(0).Key(10, 6));
  int n = 1;
  while (true) {
    FetchResult r;
    ASSERT_OK(tree_->FetchNext(q, &cur, &r));
    if (!r.found) break;
    ++n;
  }
  EXPECT_EQ(n, 11);  // keys 10..20 inclusive
  ASSERT_OK(db_->Commit(q));
}

TEST_F(BtreeBasicTest, ScanSurvivesSplitsInBetween) {
  Transaction* txn = db_->Begin();
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_OK(tree_->Insert(txn, Random(0).Key(i * 10, 6), SyntheticRid(i)));
  }
  ASSERT_OK(db_->Commit(txn));

  Transaction* q = db_->Begin();
  ScanCursor cur;
  FetchResult first;
  ASSERT_OK(tree_->OpenScan(q, Random(0).Key(0, 6), FetchCond::kGe, &cur, &first));
  int seen = first.found ? 1 : 0;
  // Interleave inserts from the same txn (cursor must reposition when the
  // leaf LSN changes).
  for (int round = 0; round < 20; ++round) {
    FetchResult r;
    ASSERT_OK(tree_->FetchNext(q, &cur, &r));
    if (!r.found) break;
    ++seen;
    ASSERT_OK(tree_->Insert(
        q, Random(0).Key(1000 + static_cast<uint64_t>(round), 6),
        SyntheticRid(100 + static_cast<uint64_t>(round))));
  }
  EXPECT_GT(seen, 10);
  ASSERT_OK(db_->Commit(q));
}

TEST_F(BtreeBasicTest, KeyTooLongRejected) {
  Transaction* txn = db_->Begin();
  std::string huge(tree_->MaxValueLen() + 1, 'x');
  EXPECT_EQ(tree_->Insert(txn, huge, SyntheticRid(1)).code(),
            Code::kInvalidArgument);
  ASSERT_OK(db_->Commit(txn));
}

}  // namespace
}  // namespace ariesim
