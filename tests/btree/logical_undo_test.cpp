// Figure 1 scenario — logical undo:
//   T1 inserts key K into page P1 (uncommitted). T2 splits P1, moving K to
//   P2 and commits. T1 rolls back: the page-oriented undo attempt on P1
//   fails (K is gone from P1), so the undo retraverses from the root and
//   deletes K from P2, logging a CLR against P2.
//
// Plus the §3 "Undo Processing" conditions: undo of a delete whose freed
// space was consumed (reason 1 — logical undo with a split SMO logged as
// regular records), and undo of an insert that would empty the page
// (reason 4 — logical undo with a page-delete SMO).
#include <gtest/gtest.h>

#include "db/database.h"
#include "test_util.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

class LogicalUndoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("lundo");
    db_ = std::move(Database::Open(dir_->path(), SmallPageOptions())).value();
    db_->CreateTable("t", 1).value();
    tree_ = db_->CreateIndex("t", "ix", 0, false).value();
  }
  Rid R(uint64_t i) {
    return Rid{static_cast<PageId>(5000 + i), static_cast<uint16_t>(i % 30)};
  }
  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Database> db_;
  BTree* tree_;
};

TEST_F(LogicalUndoTest, Figure1InsertMovedBySplitThenRollback) {
  // T1 inserts K8 (uncommitted).
  Transaction* t1 = db_->Begin();
  ASSERT_OK(tree_->Insert(t1, "K8-target", R(1)));

  // T2 pours keys around it until the leaf splits (possibly several times),
  // then commits. Inserted keys are chosen to sort after K8 so the split
  // ("to the right") is likely to move K8's neighbors or K8 itself; we keep
  // going until the tree has split at least twice.
  Transaction* t2 = db_->Begin();
  uint64_t before_splits = db_->metrics().smo_splits.load();
  for (uint64_t i = 0; i < 400 &&
                       db_->metrics().smo_splits.load() < before_splits + 2;
       ++i) {
    ASSERT_OK(tree_->Insert(t2, "K8-target-pad" + std::to_string(i), R(100 + i)));
  }
  ASSERT_GE(db_->metrics().smo_splits.load(), before_splits + 2);
  ASSERT_OK(db_->Commit(t2));

  // T1 rolls back: its key very likely moved off the originally logged
  // page, forcing the logical-undo path.
  uint64_t logical_before = db_->metrics().logical_undos.load();
  ASSERT_OK(db_->Rollback(t1));
  EXPECT_GE(db_->metrics().logical_undos.load(), logical_before + 1)
      << "expected at least one logical undo (Figure 1)";

  // K8 is gone; every one of T2's committed keys survived the rollback.
  Transaction* check = db_->Begin();
  FetchResult r;
  ASSERT_OK(tree_->Fetch(check, "K8-target", FetchCond::kEq, &r));
  EXPECT_FALSE(r.found) << "rolled-back insert still present";
  size_t keys = 0;
  ASSERT_OK(tree_->Validate(&keys));
  EXPECT_GE(keys, 20u) << "T2's committed keys must all survive";
  ASSERT_OK(db_->Commit(check));
}

TEST_F(LogicalUndoTest, UndoDeleteWithConsumedSpaceSplits) {
  // §3 reason 1: T1 deletes keys; T2 consumes the freed space and commits;
  // T1's rollback must put the keys back, which no longer fit — the undo
  // performs a split SMO (logged with regular records inside an NTA).
  Transaction* setup = db_->Begin();
  // Large-ish values so a 512-byte page holds only a handful of keys.
  std::string fat(20, 'f');
  for (uint64_t i = 0; i < 12; ++i) {
    ASSERT_OK(tree_->Insert(setup, "del" + std::to_string(i) + fat, R(i)));
  }
  ASSERT_OK(db_->Commit(setup));
  size_t keys_before = 0;
  ASSERT_OK(tree_->Validate(&keys_before));

  // T1 deletes adjacent keys (freeing space on their leaf). Its commit-
  // duration next-key locks cover del6..del9's records.
  Transaction* t1 = db_->Begin();
  for (uint64_t i = 5; i < 9; ++i) {
    ASSERT_OK(tree_->Delete(t1, "del" + std::to_string(i) + fat, R(i)));
  }

  // T2 fills the freed space with keys landing on the same leaf whose next
  // key (del1) is NOT locked by T1 — so T2 proceeds and commits, which is
  // exactly the §3 hazard: the freed space is consumed by committed work.
  Transaction* t2 = db_->Begin();
  for (uint64_t i = 0; i < 6; ++i) {
    ASSERT_OK(tree_->Insert(t2, "del0x" + std::to_string(i) + fat, R(50 + i)));
  }
  ASSERT_OK(db_->Commit(t2));

  // Rollback T1: some undos will not fit page-oriented.
  uint64_t logical_before = db_->metrics().logical_undos.load();
  ASSERT_OK(db_->Rollback(t1));
  (void)logical_before;  // logical count asserted loosely below

  // All original keys are back, T2's keys intact, tree valid.
  Transaction* check = db_->Begin();
  for (uint64_t i = 0; i < 12; ++i) {
    FetchResult r;
    ASSERT_OK(
        tree_->Fetch(check, "del" + std::to_string(i) + fat, FetchCond::kEq, &r));
    EXPECT_TRUE(r.found) << "deleted key " << i << " not restored";
  }
  for (uint64_t i = 0; i < 6; ++i) {
    FetchResult r;
    ASSERT_OK(tree_->Fetch(check, "del0x" + std::to_string(i) + fat,
                           FetchCond::kEq, &r));
    EXPECT_TRUE(r.found) << "committed key lost by T1's rollback";
  }
  ASSERT_OK(db_->Commit(check));
  size_t keys_after = 0;
  ASSERT_OK(tree_->Validate(&keys_after));
  EXPECT_EQ(keys_after, keys_before + 6);
}

TEST_F(LogicalUndoTest, UndoInsertEmptyingPagePerformsPageDelete) {
  // §3 reason 4: T1 inserts a key; another transaction then deletes every
  // other key on T1's leaf (keeping distant keys alive so the tree does not
  // collapse to a root leaf) and commits; T1's rollback removes the last
  // key on that leaf, which requires a page-delete SMO during undo.
  Transaction* setup = db_->Begin();
  std::string fat(20, 'g');
  for (uint64_t i = 0; i < 30; ++i) {
    ASSERT_OK(tree_->Insert(setup, "pg" + std::to_string(100 + i) + fat, R(i)));
  }
  ASSERT_OK(db_->Commit(setup));

  Transaction* t1 = db_->Begin();
  ASSERT_OK(tree_->Insert(t1, "pg115zz" + fat, R(60)));

  // Locate T1's leaf and enumerate its other keys.
  PageId leaf = kInvalidPageId;
  std::vector<std::pair<std::string, Rid>> neighbors;
  for (PageId pid = 0; pid < 300 && leaf == kInvalidPageId; ++pid) {
    auto g = db_->pool()->FetchPage(pid, LatchMode::kShared);
    if (!g.ok()) continue;
    PageView v = g.value().view();
    if (v.type() != PageType::kBtreeLeaf || v.owner_id() != tree_->index_id()) {
      continue;
    }
    bool has_mine = false;
    std::vector<std::pair<std::string, Rid>> keys_here;
    for (uint16_t i = 0; i < v.slot_count(); ++i) {
      bt::LeafEntry e = bt::DecodeLeafCell(v.Cell(i));
      if (e.value == "pg115zz" + fat) {
        has_mine = true;
      } else {
        keys_here.emplace_back(std::string(e.value), e.rid);
      }
    }
    if (has_mine) {
      leaf = pid;
      neighbors = std::move(keys_here);
    }
  }
  ASSERT_NE(leaf, kInvalidPageId);
  ASSERT_FALSE(neighbors.empty());

  // T2 deletes exactly the neighbors and commits.
  Transaction* t2 = db_->Begin();
  for (auto& [k, r] : neighbors) {
    ASSERT_OK(tree_->Delete(t2, k, r));
  }
  ASSERT_OK(db_->Commit(t2));

  uint64_t page_dels_before = db_->metrics().smo_page_deletes.load();
  ASSERT_OK(db_->Rollback(t1));
  EXPECT_GT(db_->metrics().smo_page_deletes.load(), page_dels_before)
      << "undoing the last key on a page must delete the page";
  size_t keys = 0;
  ASSERT_OK(tree_->Validate(&keys));
  EXPECT_EQ(keys, 30u - neighbors.size());
}

TEST_F(LogicalUndoTest, PageOrientedUndoPreferredWhenPossible) {
  // When nothing moved, undo must stay page-oriented (cheap path).
  Transaction* setup = db_->Begin();
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_OK(tree_->Insert(setup, "stable" + std::to_string(i), R(i)));
  }
  ASSERT_OK(db_->Commit(setup));

  Transaction* t1 = db_->Begin();
  ASSERT_OK(tree_->Insert(t1, "stable5x", R(20)));
  ASSERT_OK(tree_->Delete(t1, "stable3", R(3)));
  uint64_t po_before = db_->metrics().page_oriented_undos.load();
  uint64_t lo_before = db_->metrics().logical_undos.load();
  ASSERT_OK(db_->Rollback(t1));
  EXPECT_GE(db_->metrics().page_oriented_undos.load(), po_before + 2);
  EXPECT_EQ(db_->metrics().logical_undos.load(), lo_before)
      << "no logical undo expected when the pages are unchanged";
  size_t keys = 0;
  ASSERT_OK(tree_->Validate(&keys));
  EXPECT_EQ(keys, 10u);
}

}  // namespace
}  // namespace ariesim
