// Fetch Next / cursor tests (paper §2.3): in-place advancement on an
// unchanged leaf, repositioning after the leaf changes (same-transaction
// deletes, splits by other transactions), stopping conditions, page-boundary
// crossings, and the unique-index "stop at =" shortcut behavior.
#include <gtest/gtest.h>

#include "db/database.h"
#include "test_util.h"
#include "util/random.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

class CursorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("cursor");
    db_ = std::move(Database::Open(dir_->path(), SmallPageOptions())).value();
    db_->CreateTable("t", 1).value();
    tree_ = db_->CreateIndex("t", "ix", 0, /*unique=*/false).value();
  }
  Rid R(uint64_t i) {
    return Rid{static_cast<PageId>(9500 + i / 50), static_cast<uint16_t>(i % 50)};
  }
  void Preload(uint64_t n) {
    Transaction* txn = db_->Begin();
    for (uint64_t i = 0; i < n; ++i) {
      ASSERT_OK(tree_->Insert(txn, Random(0).Key(i, 6), R(i)));
    }
    ASSERT_OK(db_->Commit(txn));
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Database> db_;
  BTree* tree_;
};

TEST_F(CursorTest, FullScanCrossesManyPages) {
  Preload(300);  // several leaves at 512B pages
  Transaction* q = db_->Begin();
  ScanCursor cur;
  FetchResult first;
  ASSERT_OK(tree_->OpenScan(q, "", FetchCond::kGe, &cur, &first));
  ASSERT_TRUE(first.found);
  uint64_t n = 1;
  std::string prev = first.value;
  while (true) {
    FetchResult r;
    ASSERT_OK(tree_->FetchNext(q, &cur, &r));
    if (!r.found) break;
    EXPECT_LT(prev, r.value);
    prev = r.value;
    ++n;
  }
  EXPECT_EQ(n, 300u);
  ASSERT_OK(db_->Commit(q));
}

TEST_F(CursorTest, StopExclusiveVsInclusive) {
  Preload(20);
  for (bool inclusive : {true, false}) {
    Transaction* q = db_->Begin();
    ScanCursor cur;
    FetchResult first;
    ASSERT_OK(tree_->OpenScan(q, Random(0).Key(5, 6), FetchCond::kGe, &cur,
                              &first));
    ASSERT_OK(tree_->SetStop(&cur, Random(0).Key(10, 6), inclusive));
    int n = 1;  // the opening key (5)
    while (true) {
      FetchResult r;
      ASSERT_OK(tree_->FetchNext(q, &cur, &r));
      if (!r.found) break;
      ++n;
    }
    EXPECT_EQ(n, inclusive ? 6 : 5);  // keys 5..10 or 5..9
    ASSERT_OK(db_->Commit(q));
  }
}

TEST_F(CursorTest, RepositionsAfterOwnDelete) {
  // Paper §2.3: "The current key may not be in the index anymore due to a
  // key deletion earlier by the same transaction."
  Preload(10);
  Transaction* q = db_->Begin();
  ScanCursor cur;
  FetchResult first;
  ASSERT_OK(tree_->OpenScan(q, Random(0).Key(3, 6), FetchCond::kGe, &cur, &first));
  ASSERT_EQ(first.value, Random(0).Key(3, 6));
  // Delete the current key within the same transaction.
  ASSERT_OK(tree_->Delete(q, Random(0).Key(3, 6), R(3)));
  FetchResult next;
  ASSERT_OK(tree_->FetchNext(q, &cur, &next));
  ASSERT_TRUE(next.found);
  EXPECT_EQ(next.value, Random(0).Key(4, 6))
      << "cursor must reposition to the key after the deleted position";
  ASSERT_OK(db_->Commit(q));
}

TEST_F(CursorTest, SurvivesConcurrentSplitBetweenSteps) {
  Preload(30);
  Transaction* q = db_->Begin();
  ScanCursor cur;
  FetchResult first;
  ASSERT_OK(tree_->OpenScan(q, "", FetchCond::kGe, &cur, &first));
  int seen = first.found ? 1 : 0;
  // Interleave: another transaction splits the scanned region.
  for (int step = 0; step < 29; ++step) {
    if (step == 5) {
      Transaction* w = db_->Begin();
      for (uint64_t i = 0; i < 200; ++i) {
        // All above the scan range (sort after 6-digit zero-padded keys).
        ASSERT_OK(tree_->Insert(w, "z" + Random(0).Key(i, 6), R(1000 + i)));
      }
      ASSERT_OK(db_->Commit(w));
    }
    FetchResult r;
    ASSERT_OK(tree_->FetchNext(q, &cur, &r));
    if (!r.found) break;
    ++seen;
  }
  EXPECT_EQ(seen, 30);
  ASSERT_OK(db_->Commit(q));
}

TEST_F(CursorTest, EmptyRangeAndEof) {
  Preload(5);
  Transaction* q = db_->Begin();
  ScanCursor cur;
  FetchResult first;
  // Start past every key.
  ASSERT_OK(tree_->OpenScan(q, "zzzz", FetchCond::kGe, &cur, &first));
  EXPECT_TRUE(first.eof);
  FetchResult r;
  ASSERT_OK(tree_->FetchNext(q, &cur, &r));
  EXPECT_TRUE(r.eof);
  EXPECT_FALSE(r.found);
  // Repeated FetchNext at EOF stays at EOF.
  ASSERT_OK(tree_->FetchNext(q, &cur, &r));
  EXPECT_TRUE(r.eof);
  ASSERT_OK(db_->Commit(q));
}

TEST_F(CursorTest, UnopenedCursorRejected) {
  ScanCursor cur;
  FetchResult r;
  Transaction* q = db_->Begin();
  EXPECT_EQ(tree_->FetchNext(q, &cur, &r).code(), Code::kInvalidArgument);
  ASSERT_OK(db_->Commit(q));
}

TEST_F(CursorTest, UniqueEqualsStopShortcutTakesNoLocks) {
  // §2.3: on a unique index with stopping condition '=', a cursor already
  // positioned at the stop key answers Fetch Next immediately — without
  // locking (or even latching) anything.
  TempDir dir2("cursor_uq");
  auto db2 = std::move(Database::Open(dir2.path(), SmallPageOptions())).value();
  db2->CreateTable("t", 1).value();
  BTree* utree = db2->CreateIndex("t", "upk", 0, /*unique=*/true).value();
  Transaction* setup = db2->Begin();
  ASSERT_OK(utree->Insert(setup, "k1", R(1)));
  ASSERT_OK(utree->Insert(setup, "k2", R(2)));
  ASSERT_OK(db2->Commit(setup));

  Transaction* q = db2->Begin();
  ScanCursor cur;
  FetchResult first;
  ASSERT_OK(utree->OpenScan(q, "k1", FetchCond::kEq, &cur, &first));
  ASSERT_TRUE(first.found);
  ASSERT_OK(utree->SetStop(&cur, "k1", /*inclusive=*/true));

  uint64_t locks_before = db2->metrics().lock_requests.load();
  uint64_t latches_before = db2->metrics().page_latch_acquisitions.load();
  FetchResult r;
  ASSERT_OK(utree->FetchNext(q, &cur, &r));
  EXPECT_FALSE(r.found);
  EXPECT_EQ(db2->metrics().lock_requests.load(), locks_before)
      << "the = stop shortcut must not touch the lock manager";
  EXPECT_EQ(db2->metrics().page_latch_acquisitions.load(), latches_before)
      << "nor any page";
  ASSERT_OK(db2->Commit(q));
}

TEST_F(CursorTest, GtStartSkipsEqualKey) {
  Preload(10);
  Transaction* q = db_->Begin();
  ScanCursor cur;
  FetchResult first;
  ASSERT_OK(
      tree_->OpenScan(q, Random(0).Key(4, 6), FetchCond::kGt, &cur, &first));
  ASSERT_TRUE(first.found);
  EXPECT_EQ(first.value, Random(0).Key(5, 6));
  ASSERT_OK(db_->Commit(q));
}

TEST_F(CursorTest, DuplicateValuesScanYieldsEveryRid) {
  Transaction* setup = db_->Begin();
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_OK(tree_->Insert(setup, "dup", R(i)));
  }
  ASSERT_OK(db_->Commit(setup));
  Transaction* q = db_->Begin();
  ScanCursor cur;
  FetchResult first;
  ASSERT_OK(tree_->OpenScan(q, "dup", FetchCond::kGe, &cur, &first));
  ASSERT_OK(tree_->SetStop(&cur, "dup", true));
  std::set<Rid> rids;
  ASSERT_TRUE(first.found);
  rids.insert(first.rid);
  while (true) {
    FetchResult r;
    ASSERT_OK(tree_->FetchNext(q, &cur, &r));
    if (!r.found) break;
    rids.insert(r.rid);
  }
  EXPECT_EQ(rids.size(), 8u);
  ASSERT_OK(db_->Commit(q));
}

}  // namespace
}  // namespace ariesim
