// Repeatable-read / phantom protection (§2.2, §2.4):
//  - a fetch that finds nothing locks the next key, so an insert of the
//    fetched value by another transaction blocks until the fetcher commits;
//  - a range scan's next-key locks block inserts into the scanned range;
//  - the deleter's commit-duration next-key lock makes an uncommitted
//    delete visible to fetchers (they block rather than miss the key).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "db/database.h"
#include "test_util.h"

namespace ariesim {
namespace {

using testing::SmallPageOptions;
using testing::TempDir;

class PhantomTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("phantom");
    db_ = std::move(Database::Open(dir_->path(), SmallPageOptions())).value();
    db_->CreateTable("t", 1).value();
    tree_ = db_->CreateIndex("t", "ix", 0, /*unique=*/false).value();
  }
  Rid R(uint64_t i) {
    return Rid{static_cast<PageId>(3000 + i), static_cast<uint16_t>(i % 40)};
  }
  /// Expect `body` to block for at least 50ms, then finish once `unblock`
  /// runs.
  void ExpectBlocksUntil(const std::function<void()>& body,
                         const std::function<void()>& unblock) {
    std::atomic<bool> done{false};
    std::thread t([&] {
      body();
      done = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_FALSE(done.load()) << "operation should have blocked";
    unblock();
    t.join();
    EXPECT_TRUE(done.load());
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Database> db_;
  BTree* tree_;
};

TEST_F(PhantomTest, NotFoundFetchBlocksInsertOfThatValue) {
  Transaction* setup = db_->Begin();
  ASSERT_OK(tree_->Insert(setup, "zz-next", R(1)));
  ASSERT_OK(db_->Commit(setup));

  Transaction* reader = db_->Begin();
  FetchResult r;
  ASSERT_OK(tree_->Fetch(reader, "phantom", FetchCond::kEq, &r));
  ASSERT_FALSE(r.found);  // next key "zz-next" is now S-locked to commit

  Transaction* writer = db_->Begin();
  ExpectBlocksUntil(
      [&] {
        // The insert's instant X on the next key ("zz-next") conflicts with
        // the reader's commit S — the phantom is prevented until the reader
        // commits.
        Status s = tree_->Insert(writer, "phantom", R(2));
        EXPECT_TRUE(s.ok()) << s.ToString();
      },
      [&] { ASSERT_TRUE(db_->Commit(reader).ok()); });
  ASSERT_OK(db_->Commit(writer));
}

TEST_F(PhantomTest, NotFoundAtEofBlocksInsertAtEof) {
  Transaction* reader = db_->Begin();
  FetchResult r;
  ASSERT_OK(tree_->Fetch(reader, "anything", FetchCond::kGe, &r));
  ASSERT_TRUE(r.eof);  // EOF name locked S commit

  Transaction* writer = db_->Begin();
  ExpectBlocksUntil(
      [&] {
        Status s = tree_->Insert(writer, "tail-key", R(3));
        EXPECT_TRUE(s.ok()) << s.ToString();
      },
      [&] { ASSERT_TRUE(db_->Commit(reader).ok()); });
  ASSERT_OK(db_->Commit(writer));
}

TEST_F(PhantomTest, RangeScanBlocksInsertIntoRange) {
  Transaction* setup = db_->Begin();
  ASSERT_OK(tree_->Insert(setup, "k10", R(4)));
  ASSERT_OK(tree_->Insert(setup, "k30", R(5)));
  ASSERT_OK(db_->Commit(setup));

  Transaction* reader = db_->Begin();
  ScanCursor cur;
  FetchResult first;
  ASSERT_OK(tree_->OpenScan(reader, "k10", FetchCond::kGe, &cur, &first));
  FetchResult next;
  ASSERT_OK(tree_->FetchNext(reader, &cur, &next));  // locks "k30"
  ASSERT_TRUE(next.found);
  EXPECT_EQ(next.value, "k30");

  Transaction* writer = db_->Begin();
  ExpectBlocksUntil(
      [&] {
        // "k20" would appear between the scanned keys; its insert needs an
        // instant X on next key "k30", held S by the scanner.
        Status s = tree_->Insert(writer, "k20", R(6));
        EXPECT_TRUE(s.ok()) << s.ToString();
      },
      [&] { ASSERT_TRUE(db_->Commit(reader).ok()); });
  ASSERT_OK(db_->Commit(writer));
}

TEST_F(PhantomTest, InsertBeyondLockedRangeDoesNotBlock) {
  Transaction* setup = db_->Begin();
  ASSERT_OK(tree_->Insert(setup, "k10", R(7)));
  ASSERT_OK(tree_->Insert(setup, "k30", R(8)));
  ASSERT_OK(tree_->Insert(setup, "k50", R(9)));
  ASSERT_OK(db_->Commit(setup));

  Transaction* reader = db_->Begin();
  FetchResult r;
  ASSERT_OK(tree_->Fetch(reader, "k10", FetchCond::kEq, &r));  // locks k10 only

  // Inserting past the locked key is unhindered: next key of "k40" is
  // "k50", which nobody holds.
  Transaction* writer = db_->Begin();
  ASSERT_OK(tree_->Insert(writer, "k40", R(10)));
  ASSERT_OK(db_->Commit(writer));
  ASSERT_OK(db_->Commit(reader));
}

TEST_F(PhantomTest, UncommittedDeleteBlocksFetchOfThatValue) {
  Transaction* setup = db_->Begin();
  ASSERT_OK(tree_->Insert(setup, "victim", R(11)));
  ASSERT_OK(tree_->Insert(setup, "wall", R(12)));
  ASSERT_OK(db_->Commit(setup));

  Transaction* deleter = db_->Begin();
  ASSERT_OK(tree_->Delete(deleter, "victim", R(11)));

  Transaction* reader = db_->Begin();
  ExpectBlocksUntil(
      [&] {
        // The fetch finds "wall" as the next key — which carries the
        // deleter's commit X. The reader must wait: the delete could still
        // roll back (§2.6 tripping point).
        FetchResult r;
        Status s = tree_->Fetch(reader, "victim", FetchCond::kEq, &r);
        EXPECT_TRUE(s.ok()) << s.ToString();
        EXPECT_FALSE(r.found);  // delete committed by then
      },
      [&] { ASSERT_TRUE(db_->Commit(deleter).ok()); });
  ASSERT_OK(db_->Commit(reader));
}

TEST_F(PhantomTest, RolledBackDeleteSeenAgainByWaitingFetch) {
  Transaction* setup = db_->Begin();
  ASSERT_OK(tree_->Insert(setup, "victim", R(13)));
  ASSERT_OK(tree_->Insert(setup, "wall", R(14)));
  ASSERT_OK(db_->Commit(setup));

  Transaction* deleter = db_->Begin();
  ASSERT_OK(tree_->Delete(deleter, "victim", R(13)));

  Transaction* reader = db_->Begin();
  ExpectBlocksUntil(
      [&] {
        FetchResult r;
        Status s = tree_->Fetch(reader, "victim", FetchCond::kEq, &r);
        EXPECT_TRUE(s.ok()) << s.ToString();
        EXPECT_TRUE(r.found) << "rolled-back delete must become visible again";
      },
      [&] { ASSERT_TRUE(db_->Rollback(deleter).ok()); });
  ASSERT_OK(db_->Commit(reader));
}

TEST_F(PhantomTest, RepeatedNotFoundIsRepeatable) {
  Transaction* setup = db_->Begin();
  ASSERT_OK(tree_->Insert(setup, "next", R(15)));
  ASSERT_OK(db_->Commit(setup));

  Transaction* reader = db_->Begin();
  FetchResult r1, r2;
  ASSERT_OK(tree_->Fetch(reader, "miss", FetchCond::kEq, &r1));
  EXPECT_FALSE(r1.found);

  // A concurrent inserter of "miss" blocks; run it in the background and
  // repeat the read before the reader commits — it must still miss.
  Transaction* writer = db_->Begin();
  std::atomic<bool> inserted{false};
  std::thread t([&] {
    EXPECT_TRUE(tree_->Insert(writer, "miss", R(16)).ok());
    inserted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_OK(tree_->Fetch(reader, "miss", FetchCond::kEq, &r2));
  EXPECT_FALSE(r2.found) << "phantom appeared within one transaction";
  EXPECT_FALSE(inserted.load());
  ASSERT_OK(db_->Commit(reader));
  t.join();
  ASSERT_OK(db_->Commit(writer));
}

}  // namespace
}  // namespace ariesim
