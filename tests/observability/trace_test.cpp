// Tracer: disabled sites record nothing, spans land in the Chrome JSON dump,
// ring overflow drops (never crashes) and counts the drops, and
// enable/disable toggling races cleanly with concurrent recorders (the TSan
// leg of tools/run_sanitized_tests.sh runs this suite).
//
// The tracer is a process-wide singleton shared by every test in this
// binary, so each test starts from Clear() and leaves tracing disabled.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/trace.h"
#include "test_util.h"

namespace ariesim {
namespace {

#if ARIESIM_TRACE_COMPILED

constexpr size_t kDefaultRingCapacity = 8192;

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Instance().Disable();
    Tracer::Instance().SetRingCapacity(kDefaultRingCapacity);
    Tracer::Instance().Clear();
  }
  void TearDown() override {
    Tracer::Instance().Disable();
    Tracer::Instance().SetRingCapacity(kDefaultRingCapacity);
    Tracer::Instance().Clear();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  TraceCounts before = Tracer::Instance().Counts();
  for (int i = 0; i < 100; ++i) {
    ARIES_TRACE_SPAN(span, "test.noop", TraceCat::kTxn, i);
    ARIES_TRACE_INSTANT("test.noop_i", TraceCat::kTxn, i);
  }
  TraceCounts after = Tracer::Instance().Counts();
  EXPECT_EQ(after.recorded, before.recorded);
  EXPECT_EQ(after.dropped, before.dropped);
}

TEST_F(TraceTest, SpansAppearInDump) {
  Tracer::Instance().Enable();
  {
    ARIES_TRACE_SPAN(outer, "test.outer", TraceCat::kBtree, 7);
    ARIES_TRACE_SPAN(inner, "test.inner", TraceCat::kWal, 8);
  }
  ARIES_TRACE_INSTANT("test.marker", TraceCat::kRecovery, 9);
  Tracer::Instance().Disable();

  std::string json = Tracer::Instance().DumpJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"test.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"test.marker\""), std::string::npos);
  // Spans are complete events, instants are instant events.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Categories come through for Perfetto filtering.
  EXPECT_NE(json.find("\"cat\":\"btree\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"recovery\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"arg\":7}"), std::string::npos);

  TraceCounts c = Tracer::Instance().Counts();
  EXPECT_EQ(c.recorded, 3u);
  EXPECT_EQ(c.dropped, 0u);
}

TEST_F(TraceTest, OverflowDropsOldestAndCounts) {
  constexpr size_t kSmall = 16;
  constexpr int kEvents = 50;
  Tracer::Instance().SetRingCapacity(kSmall);
  Tracer::Instance().Enable();
  TraceCounts before = Tracer::Instance().Counts();
  // A fresh thread acquires a ring at the small capacity (recycled rings are
  // re-sized on reuse).
  std::thread t([] {
    for (int i = 0; i < kEvents; ++i) {
      ARIES_TRACE_INSTANT("test.flood", TraceCat::kBuffer, i);
    }
  });
  t.join();
  Tracer::Instance().Disable();

  TraceCounts after = Tracer::Instance().Counts();
  EXPECT_EQ(after.recorded - before.recorded, static_cast<uint64_t>(kEvents));
  EXPECT_EQ(after.dropped - before.dropped,
            static_cast<uint64_t>(kEvents - kSmall));

  // The dump holds exactly the newest kSmall flood events — and reports the
  // drops so a reader knows the window is clipped.
  std::string json = Tracer::Instance().DumpJson();
  size_t hits = 0;
  for (size_t pos = json.find("test.flood"); pos != std::string::npos;
       pos = json.find("test.flood", pos + 1)) {
    ++hits;
  }
  EXPECT_EQ(hits, kSmall);
  // Oldest surviving flood event is #(kEvents - kSmall).
  std::string oldest =
      "\"args\":{\"arg\":" + std::to_string(kEvents - kSmall) + "}";
  EXPECT_NE(json.find(oldest), std::string::npos);
  EXPECT_NE(json.find("\"droppedEvents\":\"" +
                      std::to_string(kEvents - kSmall) + "\""),
            std::string::npos);
}

TEST_F(TraceTest, EnableDisableRacesWithRecorders) {
  // Hammer the enable flag while worker threads record spans; TSan must stay
  // quiet and nothing may crash. Event counts are unasserted by design —
  // whether a span lands depends on where the toggle caught it.
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&stop] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ARIES_TRACE_SPAN(span, "test.race", TraceCat::kLock, i++);
        ARIES_TRACE_INSTANT("test.race_i", TraceCat::kLock, i);
      }
    });
  }
  for (int i = 0; i < 2000; ++i) {
    if (i % 2 == 0) {
      Tracer::Instance().Enable();
    } else {
      Tracer::Instance().Disable();
    }
    if (i % 500 == 0) (void)Tracer::Instance().DumpJson();
    if (i % 700 == 0) Tracer::Instance().Clear();
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  Tracer::Instance().Disable();
  (void)Tracer::Instance().DumpJson();  // still serializable afterwards
}

TEST_F(TraceTest, DumpRacesRecordersAcrossEnableFlips) {
  // A dedicated dumper thread serializes the ring (full dumps and bounded
  // excerpts, as the flight recorder takes them) while recorder threads
  // hammer and a flipper toggles the enable flag. Every dump must be
  // well-formed JSON regardless of where the toggle or the recorders caught
  // the ring; both sanitizer legs run this.
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&stop] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ARIES_TRACE_SPAN(span, "test.dumprace", TraceCat::kBtree, i++);
        ARIES_TRACE_INSTANT("test.dumprace_i", TraceCat::kBtree, i);
      }
    });
  }
  std::thread flipper([&stop] {
    bool on = true;
    while (!stop.load(std::memory_order_relaxed)) {
      if (on) {
        Tracer::Instance().Enable();
      } else {
        Tracer::Instance().Disable();
      }
      on = !on;
    }
  });
  for (int i = 0; i < 200; ++i) {
    std::string json = (i % 2 == 0) ? Tracer::Instance().DumpJson()
                                    : Tracer::Instance().DumpJson(16);
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{') << json.substr(0, 80);
    EXPECT_EQ(json.back(), '\n');
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  }
  stop.store(true);
  flipper.join();
  for (auto& w : workers) w.join();
  Tracer::Instance().Disable();
}

TEST_F(TraceTest, DumpExcerptKeepsNewestAndCountsDropped) {
  Tracer::Instance().Enable();
  for (int i = 0; i < 50; ++i) {
    ARIES_TRACE_INSTANT("test.excerpt", TraceCat::kBtree, i);
  }
  Tracer::Instance().Disable();
  std::string json = Tracer::Instance().DumpJson(10);
  // Newest event survives, oldest does not, and the truncation is counted.
  EXPECT_NE(json.find("\"args\":{\"arg\":49}"), std::string::npos);
  EXPECT_EQ(json.find("\"args\":{\"arg\":0}"), std::string::npos);
  EXPECT_NE(json.find("\"excerptDropped\":\"40\""), std::string::npos) << json;
}

TEST_F(TraceTest, ClearDropsBufferedEvents) {
  Tracer::Instance().Enable();
  ARIES_TRACE_INSTANT("test.cleared", TraceCat::kTxn, 1);
  Tracer::Instance().Disable();
  ASSERT_GE(Tracer::Instance().Counts().recorded, 1u);
  Tracer::Instance().Clear();
  TraceCounts c = Tracer::Instance().Counts();
  EXPECT_EQ(c.recorded, 0u);
  EXPECT_EQ(c.dropped, 0u);
  EXPECT_EQ(Tracer::Instance().DumpJson().find("test.cleared"),
            std::string::npos);
}

TEST_F(TraceTest, DumpWritesLoadableFile) {
  ariesim::testing::TempDir dir("trace_dump");
  Tracer::Instance().Enable();
  { ARIES_TRACE_SPAN(span, "test.file_span", TraceCat::kTxn, 42); }
  Tracer::Instance().Disable();
  std::string path = dir.path() + "/trace.json";
  ASSERT_OK(Tracer::Instance().Dump(path));
  std::ifstream f(path);
  ASSERT_TRUE(f.is_open());
  std::stringstream ss;
  ss << f.rdbuf();
  std::string json = ss.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("test.file_span"), std::string::npos);
  EXPECT_EQ(json, Tracer::Instance().DumpJson());
}

TEST_F(TraceTest, DumpToUnwritablePathFails) {
  Status s = Tracer::Instance().Dump("/nonexistent_dir_xyz/trace.json");
  EXPECT_FALSE(s.ok());
}

#else  // ARIESIM_TRACE_COMPILED == 0

TEST(TraceStub, DumpReturnsNotSupported) {
  Status s = Tracer::Instance().Dump("/tmp/never_written.json");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("compiled out"), std::string::npos);
  EXPECT_EQ(Tracer::Instance().DumpJson(), "{\"traceEvents\":[]}\n");
  EXPECT_FALSE(Tracer::Instance().enabled());
  // Macros compile to nothing; this must build and do nothing.
  ARIES_TRACE_SPAN(span, "stub", TraceCat::kTxn, 0);
  ARIES_TRACE_INSTANT("stub", TraceCat::kTxn, 0);
  EXPECT_EQ(Tracer::Instance().Counts().recorded, 0u);
}

#endif  // ARIESIM_TRACE_COMPILED

}  // namespace
}  // namespace ariesim
