// LatencyHistogram: bucket math invariants, percentile accuracy bounds, and
// concurrent recording. The bucketing promises at most 1/kSubBuckets (12.5%)
// relative error; tests assert a slightly looser 15% to stay off the edge.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/histogram.h"

namespace ariesim {
namespace {

constexpr double kRelTol = 0.15;

void ExpectWithin(uint64_t got, uint64_t want, const char* what) {
  double lo = static_cast<double>(want) * (1.0 - kRelTol);
  double hi = static_cast<double>(want) * (1.0 + kRelTol);
  EXPECT_GE(static_cast<double>(got), lo) << what << " want ~" << want;
  EXPECT_LE(static_cast<double>(got), hi) << what << " want ~" << want;
}

TEST(LatencyHistogram, BucketForIsMonotone) {
  size_t prev = 0;
  for (uint64_t v = 0; v < 4096; ++v) {
    size_t b = LatencyHistogram::BucketFor(v);
    EXPECT_GE(b, prev) << "v=" << v;
    prev = b;
  }
  // Spot-check across the whole range, doubling.
  prev = 0;
  for (uint64_t v = 1; v != 0; v <<= 1) {
    size_t b = LatencyHistogram::BucketFor(v);
    EXPECT_GT(b, prev == 0 ? 0u : prev - 1) << "v=" << v;
    EXPECT_LT(b, LatencyHistogram::kNumBuckets);
    prev = b;
  }
  EXPECT_EQ(LatencyHistogram::BucketFor(UINT64_MAX),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(LatencyHistogram, BucketBoundsInvertBucketFor) {
  for (size_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    uint64_t lo = LatencyHistogram::BucketLowerBound(b);
    EXPECT_EQ(LatencyHistogram::BucketFor(lo), b) << "bucket " << b;
    uint64_t mid = LatencyHistogram::BucketMidpoint(b);
    EXPECT_EQ(LatencyHistogram::BucketFor(mid), b) << "bucket " << b;
    EXPECT_GE(mid, lo);
  }
}

TEST(LatencyHistogram, ExactInLinearRegion) {
  // Values below 2*kSubBuckets get a bucket each: zero quantization error.
  for (uint64_t v = 0; v < 2 * LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketFor(v), static_cast<size_t>(v));
    EXPECT_EQ(LatencyHistogram::BucketMidpoint(static_cast<size_t>(v)), v);
  }
}

TEST(LatencyHistogram, SingleValuePercentiles) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.Record(10'000);  // 10 us
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.max_ns, 10'000u);
  EXPECT_EQ(s.sum_ns, 10'000'000u);
  ExpectWithin(s.p50_ns, 10'000, "p50");
  ExpectWithin(s.p95_ns, 10'000, "p95");
  ExpectWithin(s.p99_ns, 10'000, "p99");
  // Percentiles are clamped to the exact max, never above it.
  EXPECT_LE(s.p99_ns, s.max_ns);
}

TEST(LatencyHistogram, BimodalDistribution) {
  LatencyHistogram h;
  // 90% fast (1 us), 10% slow (1 ms): p50 must sit on the fast mode,
  // p95/p99 on the slow one.
  for (int i = 0; i < 900; ++i) h.Record(1'000);
  for (int i = 0; i < 100; ++i) h.Record(1'000'000);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1000u);
  ExpectWithin(s.p50_ns, 1'000, "p50");
  ExpectWithin(s.p95_ns, 1'000'000, "p95");
  ExpectWithin(s.p99_ns, 1'000'000, "p99");
  EXPECT_EQ(s.max_ns, 1'000'000u);
}

TEST(LatencyHistogram, ConcurrentRecording) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      // Each thread records a distinct value; counts and sum must be exact
      // (relaxed atomics lose nothing, they only reorder).
      uint64_t v = 1'000u * static_cast<uint64_t>(t + 1);
      for (int i = 0; i < kPerThread; ++i) h.Record(v);
    });
  }
  for (auto& w : workers) w.join();
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t want_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    want_sum += 1'000u * static_cast<uint64_t>(t + 1) * kPerThread;
  }
  EXPECT_EQ(s.sum_ns, want_sum);
  EXPECT_EQ(s.max_ns, 8'000u);
  // p50 of the uniform mixture over {1k..8k} is the 4th value.
  ExpectWithin(s.p50_ns, 5'000, "p50");
  EXPECT_LE(s.p99_ns, s.max_ns);
}

TEST(LatencyHistogram, ResetZeroesEverything) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(12'345);
  h.Reset();
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum_ns, 0u);
  EXPECT_EQ(s.max_ns, 0u);
  EXPECT_EQ(s.p50_ns, 0u);
  EXPECT_EQ(h.count(), 0u);
}

TEST(LatencyHistogram, ScopedLatencyRecordsAndCancels) {
  LatencyHistogram h;
  { ScopedLatency timer(&h); }
  EXPECT_EQ(h.count(), 1u);
  {
    ScopedLatency timer(&h);
    timer.Cancel();
  }
  EXPECT_EQ(h.count(), 1u);
  { ScopedLatency timer(nullptr); }  // null histogram: no-op, no crash
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramSnapshot, UnitConversions) {
  HistogramSnapshot s;
  s.count = 4;
  s.sum_ns = 10'000;
  s.p50_ns = 1'500;
  s.max_ns = 4'000;
  EXPECT_DOUBLE_EQ(s.mean_us(), 2.5);
  EXPECT_DOUBLE_EQ(s.p50_us(), 1.5);
  EXPECT_DOUBLE_EQ(s.max_us(), 4.0);
  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.mean_us(), 0.0);
}

}  // namespace
}  // namespace ariesim
