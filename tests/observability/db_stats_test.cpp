// End-to-end stats/trace surface: a seeded crash-recovery run must populate
// the commit/fsync histograms, the per-pass RecoveryStats, and — with
// tracing on — a Perfetto-loadable dump with distinct analysis/redo/undo
// spans (the ISSUE 4 acceptance scenario).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/trace.h"
#include "db/database.h"
#include "test_util.h"

namespace ariesim {
namespace {

using ariesim::testing::DefaultOptions;
using ariesim::testing::TempDir;

// Committed rows + an unflushed loser, then a crash: the reopen pays all
// three recovery passes.
void SeedAndCrash(const std::string& dir) {
  auto db = std::move(Database::Open(dir, DefaultOptions()).value());
  db->CreateTable("t", 2).value();
  db->CreateIndex("t", "pk", 0, true).value();
  Table* table = db->GetTable("t");
  Transaction* txn = db->Begin();
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(table->Insert(txn, {"k" + std::to_string(10000 + i), "v"}));
  }
  ASSERT_OK(db->Commit(txn));
  Transaction* loser = db->Begin();
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(table->Insert(loser, {"l" + std::to_string(10000 + i), "v"}));
  }
  ASSERT_OK(db->wal()->FlushAll());
  ASSERT_OK(db->FlushAllPages());  // losers on disk: undo has real work
  db->SimulateCrash();
}

TEST(DbStats, CommitHistogramPopulated) {
  TempDir dir("stats_commit");
  auto db = std::move(Database::Open(dir.path(), DefaultOptions()).value());
  db->CreateTable("t", 2).value();
  Table* table = db->GetTable("t");
  for (int i = 0; i < 20; ++i) {
    Transaction* txn = db->Begin();
    ASSERT_OK(table->Insert(txn, {"k" + std::to_string(i), "v"}));
    ASSERT_OK(db->Commit(txn));
  }
  HistogramSnapshot s = db->metrics().commit_latency.Snapshot();
  // DDL paths may commit internal transactions too, hence >=.
  EXPECT_GE(s.count, 20u);
  EXPECT_GT(s.max_ns, 0u);
  EXPECT_LE(s.p99_ns, s.max_ns);
}

TEST(DbStats, RestartStatsCarryPassDurations) {
  TempDir dir("stats_restart");
  SeedAndCrash(dir.path());
  auto db = std::move(Database::Open(dir.path(), DefaultOptions()).value());
  const RecoveryStats& rs = db->restart_stats();
  EXPECT_GT(rs.analysis_records, 0u);
  EXPECT_GT(rs.undo_records, 0u);
  EXPECT_EQ(rs.loser_txns, 1u);
  EXPECT_GT(rs.total_us, 0u);
  // total covers the passes plus the post-restart checkpoint.
  EXPECT_GE(rs.total_us, rs.analysis_us + rs.redo_us + rs.undo_us);
  EXPECT_NE(rs.ToString().find("losers=1"), std::string::npos);
}

TEST(DbStats, StatsJsonShape) {
  TempDir dir("stats_json");
  SeedAndCrash(dir.path());
  auto db = std::move(Database::Open(dir.path(), DefaultOptions()).value());
  DatabaseStats st = db->Stats();
  EXPECT_EQ(st.health, EngineHealth::kHealthy);
  std::string j = st.ToJson();
  for (const char* key :
       {"\"metrics\":", "\"counters\":", "\"histograms\":", "\"health\":",
        "\"restart\":", "\"analysis_us\":", "\"redo_us\":", "\"undo_us\":",
        "\"loser_txns\":1", "\"trace\":", "\"enabled\":"}) {
    EXPECT_NE(j.find(key), std::string::npos) << key << " missing: " << j;
  }
  EXPECT_NE(j.find("\"health\":\"healthy\""), std::string::npos) << j;
}

#if ARIESIM_TRACE_COMPILED
TEST(DbStats, TraceCapturesRecoveryPasses) {
  TempDir dir("stats_trace");
  SeedAndCrash(dir.path());

  Tracer::Instance().Clear();
  Tracer::Instance().Enable();
  auto db = std::move(Database::Open(dir.path(), DefaultOptions()).value());
  db->SetTracing(false);

  EXPECT_TRUE(db->Stats().trace.recorded > 0);
  std::string path = dir.path() + "/trace.json";
  ASSERT_OK(db->DumpTrace(path));
  std::ifstream f(path);
  ASSERT_TRUE(f.is_open());
  std::stringstream ss;
  ss << f.rdbuf();
  std::string json = ss.str();
  // The three restart passes appear as distinct spans, under the recovery
  // category, in Chrome trace_event form.
  EXPECT_NE(json.find("\"recovery.analysis\""), std::string::npos);
  EXPECT_NE(json.find("\"recovery.redo\""), std::string::npos);
  EXPECT_NE(json.find("\"recovery.undo\""), std::string::npos);
  EXPECT_NE(json.find("\"recovery.restart\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"recovery\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  Tracer::Instance().Clear();
}

TEST(DbStats, SetTracingRoundTrip) {
  TempDir dir("stats_toggle");
  auto db = std::move(Database::Open(dir.path(), DefaultOptions()).value());
  EXPECT_FALSE(db->tracing());
  db->SetTracing(true);
  EXPECT_TRUE(db->tracing());
  EXPECT_TRUE(db->Stats().tracing_enabled);
  db->SetTracing(false);
  EXPECT_FALSE(db->tracing());
}
#endif  // ARIESIM_TRACE_COMPILED

}  // namespace
}  // namespace ariesim
