// Commit critical-path attribution (PR 9): the CommitBreakdown accumulator,
// the TLS binding protocol, the hand-mirrored commit_seg_* histogram pairing
// in the Metrics registry, lock-wait attribution under a real 2-thread
// conflict, and the commit_breakdown section of Database::Stats().
#include "common/commit_breakdown.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "db/database.h"
#include "lock/lock_manager.h"
#include "test_util.h"

namespace ariesim {
namespace {

using ariesim::testing::DefaultOptions;
using ariesim::testing::TempDir;

// The seven X(commit_seg_*) entries in ARIESIM_METRICS_HISTOGRAMS are
// hand-mirrored from ARIESIM_COMMIT_SEGMENTS (nested X-macro expansion can't
// generate them) — this is the lockstep guard the headers promise.
TEST(CommitBreakdown, SegmentListMatchesHistogramRegistry) {
  const char* const* hnames = Metrics::HistogramNames();
  std::vector<std::string> seg_hists;
  for (size_t i = 0; i < Metrics::kHistogramCount; ++i) {
    if (std::string(hnames[i]).rfind("commit_seg_", 0) == 0) {
      seg_hists.push_back(hnames[i]);
    }
  }
  ASSERT_EQ(seg_hists.size(), kCommitSegmentCount);
  const char* const* snames = CommitBreakdown::SegmentNames();
  for (size_t i = 0; i < kCommitSegmentCount; ++i) {
    EXPECT_EQ(seg_hists[i], "commit_seg_" + std::string(snames[i]))
        << "segment " << i
        << ": metrics.h and commit_breakdown.h are out of lockstep";
  }
  // They were appended as a block at the end of the registry, in order.
  EXPECT_EQ(std::string(hnames[Metrics::kHistogramCount - kCommitSegmentCount]),
            "commit_seg_" + std::string(snames[0]));
}

TEST(CommitBreakdown, AccumulatorBasics) {
  CommitBreakdown bd;
  EXPECT_EQ(bd.TotalNs(), 0u);
  bd.Add(CommitSegment::fsync, 100);
  bd.Add(CommitSegment::fsync, 50);
  bd.Add(CommitSegment::lock_wait, 7);
  EXPECT_EQ(bd.Get(CommitSegment::fsync), 150u);
  EXPECT_EQ(bd.Get(CommitSegment::lock_wait), 7u);
  EXPECT_EQ(bd.Get(CommitSegment::queue_wait), 0u);
  EXPECT_EQ(bd.TotalNs(), 157u);
  bd.Reset();
  EXPECT_EQ(bd.TotalNs(), 0u);
}

TEST(CommitBreakdown, BindingSemantics) {
  // No binding: AddCommitSegment is a no-op, not a crash.
  CommitBreakdown* saved = BindCommitBreakdown(nullptr);
  AddCommitSegment(CommitSegment::fsync, 123);
  EXPECT_EQ(CurrentCommitBreakdown(), nullptr);

  CommitBreakdown outer, inner;
  {
    ScopedCommitBreakdownBinding bind_outer(&outer);
    EXPECT_EQ(CurrentCommitBreakdown(), &outer);
    AddCommitSegment(CommitSegment::log_append, 10);
    {
      ScopedCommitBreakdownBinding bind_inner(&inner);
      AddCommitSegment(CommitSegment::log_append, 5);
    }
    // Inner scope restored the outer binding.
    EXPECT_EQ(CurrentCommitBreakdown(), &outer);
    AddCommitSegment(CommitSegment::log_append, 1);
  }
  EXPECT_EQ(CurrentCommitBreakdown(), nullptr);
  EXPECT_EQ(outer.Get(CommitSegment::log_append), 11u);
  EXPECT_EQ(inner.Get(CommitSegment::log_append), 5u);

  {
    ScopedCommitBreakdownBinding bind(&outer);
    ScopedCommitSegment seg(CommitSegment::latch_wait);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(outer.Get(CommitSegment::latch_wait), 0u);
  BindCommitBreakdown(saved);
}

// A genuinely blocked LockManager request must attribute its wait to the
// breakdown bound on the waiting thread — the 2-thread conflict scenario.
TEST(CommitBreakdown, LockWaitAttributedOnBlockedRequest) {
  Metrics m;
  LockManager lm(&m);
  LockName name = LockName::Record(1, Rid{10, 1});
  ASSERT_TRUE(
      lm.Lock(1, name, LockMode::kX, LockDuration::kCommit, false).ok());

  CommitBreakdown bd;
  std::atomic<bool> entered{false};
  std::thread waiter([&] {
    ScopedCommitBreakdownBinding bind(&bd);
    entered.store(true);
    Status s = lm.Lock(2, name, LockMode::kX, LockDuration::kCommit, false);
    EXPECT_TRUE(s.ok()) << s.ToString();
  });
  while (!entered.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  lm.ReleaseAll(1);
  waiter.join();
  // The waiter slept ~30ms behind txn 1; well over 5ms must be attributed.
  EXPECT_GT(bd.Get(CommitSegment::lock_wait), 5'000'000u);
  lm.ReleaseAll(2);
}

// Every commit harvests all seven segments (zeros included), so the segment
// histograms count in lockstep with each other and commit-path segments have
// real time in them.
TEST(CommitBreakdown, CommitPopulatesSegmentHistograms) {
  TempDir dir("breakdown_commit");
  auto db = std::move(Database::Open(dir.path(), DefaultOptions()).value());
  db->CreateTable("t", 2).value();
  Table* table = db->GetTable("t");
  for (int i = 0; i < 20; ++i) {
    Transaction* txn = db->Begin();
    ASSERT_OK(table->Insert(txn, {"k" + std::to_string(i), "v"}));
    ASSERT_OK(db->Commit(txn));
  }
  const Metrics& m = db->metrics();
#define ARIESIM_CHECK_SEG_COUNT(name)                            \
  EXPECT_GE(m.commit_seg_##name.count(), 20u)                    \
      << "commit_seg_" #name " not harvested on every commit";
  ARIESIM_COMMIT_SEGMENTS(ARIESIM_CHECK_SEG_COUNT)
#undef ARIESIM_CHECK_SEG_COUNT
  // All segments harvest together: identical counts.
  uint64_t expect = m.commit_seg_lock_wait.count();
#define ARIESIM_CHECK_SEG_EQ(name) \
  EXPECT_EQ(m.commit_seg_##name.count(), expect);
  ARIESIM_COMMIT_SEGMENTS(ARIESIM_CHECK_SEG_EQ)
#undef ARIESIM_CHECK_SEG_EQ
  // The commit-record append always does real work.
  EXPECT_GT(m.commit_seg_log_append.Snapshot().sum_ns, 0u);
  // The attributed commit path must not exceed the measured commit latency
  // by more than clock-granularity noise: compare the sums.
  HistogramSnapshot commit = m.commit_latency.Snapshot();
  uint64_t path_sum = m.commit_seg_log_append.Snapshot().sum_ns +
                      m.commit_seg_queue_wait.Snapshot().sum_ns +
                      m.commit_seg_batch_write.Snapshot().sum_ns +
                      m.commit_seg_fsync.Snapshot().sum_ns +
                      m.commit_seg_wakeup.Snapshot().sum_ns;
  EXPECT_LE(path_sum, commit.sum_ns * 2)
      << "segment attribution wildly exceeds end-to-end commit time";
}

TEST(CommitBreakdown, StatsJsonCarriesBreakdown) {
  TempDir dir("breakdown_stats");
  auto db = std::move(Database::Open(dir.path(), DefaultOptions()).value());
  db->CreateTable("t", 2).value();
  Table* table = db->GetTable("t");
  Transaction* txn = db->Begin();
  ASSERT_OK(table->Insert(txn, {"k", "v"}));
  ASSERT_OK(db->Commit(txn));
  std::string j = db->Stats().ToJson();
  EXPECT_NE(j.find("\"commit_breakdown\":{"), std::string::npos) << j;
  for (const char* key :
       {"\"segments\":", "\"accounted\":", "\"p50_share\":", "\"mean_share\":",
        "\"path_p50_us_sum\":", "\"commit_count\":"}) {
    EXPECT_NE(j.find(key), std::string::npos) << key << " missing: " << j;
  }
  const char* const* snames = CommitBreakdown::SegmentNames();
  for (size_t i = 0; i < kCommitSegmentCount; ++i) {
    std::string key = "\"" + std::string(snames[i]) + "\":{\"count\":";
    EXPECT_NE(j.find(key), std::string::npos) << key << " missing: " << j;
  }
}

// Concurrent committers on distinct keys: the lockstep-count invariant and
// the TLS protocol must hold under interleaving (and under TSan).
TEST(CommitBreakdown, MultithreadedCommitsStayConsistent) {
  TempDir dir("breakdown_mt");
  auto db = std::move(Database::Open(dir.path(), DefaultOptions()).value());
  db->CreateTable("t", 2).value();
  Table* table = db->GetTable("t");
  constexpr int kThreads = 4, kPerThread = 25;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Transaction* txn = db->Begin();
        std::string key = "t" + std::to_string(t) + "k" + std::to_string(i);
        ASSERT_OK(table->Insert(txn, {key, "v"}));
        ASSERT_OK(db->Commit(txn));
      }
    });
  }
  for (auto& w : workers) w.join();
  const Metrics& m = db->metrics();
  uint64_t expect = m.commit_seg_lock_wait.count();
  EXPECT_GE(expect, static_cast<uint64_t>(kThreads * kPerThread));
#define ARIESIM_CHECK_SEG_EQ(name) \
  EXPECT_EQ(m.commit_seg_##name.count(), expect);
  ARIESIM_COMMIT_SEGMENTS(ARIESIM_CHECK_SEG_EQ)
#undef ARIESIM_CHECK_SEG_EQ
}

}  // namespace
}  // namespace ariesim
