// OpenMetrics exposition (PR 9): Metrics::ToOpenMetrics() must announce every
// counter and histogram family (exhaustively, from the X-macro name tables),
// use counter/gauge/histogram types correctly, emit monotonic cumulative
// buckets with a +Inf == _count cap, and terminate with "# EOF". The
// format-level lint also runs out-of-process (tools/check_openmetrics.sh over
// metrics_dump --selftest); this suite checks the same invariants in-process
// where it can tie them back to the registry's ground truth.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace ariesim {
namespace {

// All lines starting with `prefix`, in order.
std::vector<std::string> LinesWithPrefix(const std::string& text,
                                         const std::string& prefix) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    if (line.rfind(prefix, 0) == 0) out.push_back(line);
    pos = eol + 1;
  }
  return out;
}

TEST(OpenMetrics, EveryFamilyAnnouncedAndSampled) {
  Metrics m;
  m.pages_read.fetch_add(42);
  m.commit_latency.Record(1'000'000);
  std::string text = m.ToOpenMetrics();

  const char* const* cnames = Metrics::CounterNames();
  for (size_t i = 0; i < Metrics::kCounterCount; ++i) {
    std::string family = "ariesim_" + std::string(cnames[i]);
    const bool gauge = std::string(cnames[i]) == "instant_restart_open_us";
    EXPECT_NE(text.find("# TYPE " + family +
                        (gauge ? " gauge\n" : " counter\n")),
              std::string::npos)
        << family << " TYPE missing";
    EXPECT_NE(text.find("# HELP " + family + " "), std::string::npos)
        << family << " HELP missing";
    // Counters sample with the _total suffix; the gauge samples bare.
    std::string sample =
        "\n" + family + (gauge ? " " : "_total ");
    EXPECT_NE(text.find(sample), std::string::npos)
        << family << " sample missing";
  }
  const char* const* hnames = Metrics::HistogramNames();
  for (size_t i = 0; i < Metrics::kHistogramCount; ++i) {
    std::string family = "ariesim_" + std::string(hnames[i]) + "_seconds";
    EXPECT_NE(text.find("# TYPE " + family + " histogram\n"),
              std::string::npos)
        << family << " TYPE missing";
    EXPECT_NE(text.find("# UNIT " + family + " seconds\n"), std::string::npos)
        << family << " UNIT missing";
    EXPECT_NE(text.find(family + "_bucket{le=\"+Inf\"} "), std::string::npos)
        << family << " +Inf bucket missing";
    EXPECT_NE(text.find("\n" + family + "_sum "), std::string::npos)
        << family << " _sum missing";
    EXPECT_NE(text.find("\n" + family + "_count "), std::string::npos)
        << family << " _count missing";
  }
  // The known sample values round-trip.
  EXPECT_NE(text.find("ariesim_pages_read_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("ariesim_commit_latency_seconds_count 1\n"),
            std::string::npos);
}

TEST(OpenMetrics, BucketsAreCumulativeAndCapped) {
  Metrics m;
  // Spread observations across several buckets.
  for (int i = 0; i < 100; ++i) {
    m.commit_latency.Record(10'000ull << (i % 8));  // 10us .. 1.28ms
  }
  std::string text = m.ToOpenMetrics();
  std::vector<std::string> buckets =
      LinesWithPrefix(text, "ariesim_commit_latency_seconds_bucket{");
  ASSERT_GE(buckets.size(), 3u) << text;

  double prev_le = -1.0;
  uint64_t prev_cum = 0;
  uint64_t inf_value = 0;
  bool saw_inf = false;
  for (const std::string& line : buckets) {
    size_t le_pos = line.find("le=\"") + 4;
    size_t le_end = line.find('"', le_pos);
    std::string le = line.substr(le_pos, le_end - le_pos);
    uint64_t value =
        std::strtoull(line.c_str() + line.find("} ") + 2, nullptr, 10);
    if (le == "+Inf") {
      EXPECT_FALSE(saw_inf) << "two +Inf buckets";
      saw_inf = true;
      inf_value = value;
    } else {
      ASSERT_FALSE(saw_inf) << "finite bucket after +Inf";
      double le_s = std::strtod(le.c_str(), nullptr);
      EXPECT_GT(le_s, prev_le) << "le not strictly increasing: " << line;
      EXPECT_GE(value, prev_cum) << "cumulative count decreased: " << line;
      prev_le = le_s;
      prev_cum = value;
    }
  }
  ASSERT_TRUE(saw_inf);
  EXPECT_GE(inf_value, prev_cum);
  EXPECT_EQ(inf_value, m.commit_latency.count());
  EXPECT_NE(text.find("ariesim_commit_latency_seconds_count 100\n"),
            std::string::npos);
}

TEST(OpenMetrics, TerminatesWithEof) {
  Metrics m;
  std::string text = m.ToOpenMetrics();
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
  // Exactly one EOF, and nothing after it.
  EXPECT_EQ(text.find("# EOF\n"), text.size() - 6);
}

TEST(OpenMetrics, EmptyHistogramStillWellFormed) {
  Metrics m;  // nothing recorded at all
  std::string text = m.ToOpenMetrics();
  // No finite buckets, but +Inf/_sum/_count are present and zero.
  EXPECT_NE(text.find("ariesim_smo_latency_seconds_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ariesim_smo_latency_seconds_count 0\n"),
            std::string::npos);
}

}  // namespace
}  // namespace ariesim
