// Flight recorder (PR 10): the BlackBox unit surface (JSON escaping, the
// shared record parser, capture/splice mechanics), every crash class leaving
// a parseable record whose fault fields match the injected fault, the
// health-trip / flush-failure / cadence triggers, and the reopen path that
// annotates the record with the restart outcome and surfaces it as
// Stats() "last_incident". See docs/OBSERVABILITY.md "Flight recorder".
#include "common/blackbox.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "db/database.h"
#include "test_util.h"
#include "util/fault_injector.h"

namespace ariesim {
namespace {

using ariesim::testing::DefaultOptions;
using ariesim::testing::TempDir;

// ---------------------------------------------------------------------------
// JSON helpers: escaping and the shared record parser.
// ---------------------------------------------------------------------------

TEST(BlackBoxJson, EscapeRoundTripsThroughParser) {
  std::string body = "quote\" backslash\\ newline\n tab\t ctrl\x01 done";
  std::string json = "{\"reason\":\"";
  AppendJsonEscaped(body, &json);
  json += "\"}";

  std::map<std::string, std::string> fields;
  std::string err;
  ASSERT_TRUE(ParseJson(json, &fields, &err)) << err;
  EXPECT_EQ(fields["reason"], body);
}

TEST(BlackBoxJson, ParserCollectsTwoLevelsOfScalars) {
  const std::string json =
      "{\"seq\":7,\"trigger\":\"manual\",\"ok\":true,\"nil\":null,"
      "\"wal\":{\"durable_lsn\":42,\"nested\":{\"deep\":1}},"
      "\"arr\":[1,2,{\"x\":3}]}";
  std::map<std::string, std::string> fields;
  std::string err;
  ASSERT_TRUE(ParseJson(json, &fields, &err)) << err;
  EXPECT_EQ(fields["seq"], "7");
  EXPECT_EQ(fields["trigger"], "manual");
  EXPECT_EQ(fields["ok"], "true");
  EXPECT_EQ(fields["nil"], "null");
  EXPECT_EQ(fields["wal.durable_lsn"], "42");
  // Third level and array elements are validated but not collected.
  EXPECT_EQ(fields.count("wal.nested.deep"), 0u);
}

TEST(BlackBoxJson, ParserRejectsTruncatedAndMalformed) {
  std::map<std::string, std::string> fields;
  std::string err;
  EXPECT_FALSE(ParseJson("{\"a\":1", &fields, &err));
  EXPECT_FALSE(ParseJson("{\"a\":}", &fields, &err));
  EXPECT_FALSE(ParseJson("{\"a\":\"unterminated", &fields, &err));
  EXPECT_FALSE(ParseJson("", &fields, &err));
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing", &fields, &err));
}

TEST(BlackBoxJson, SpliceFieldInsertsBeforeClosingBrace) {
  std::string spliced =
      BlackBox::SpliceField("{\"a\":1}", "recovery", "{\"mode\":\"none\"}");
  std::map<std::string, std::string> fields;
  std::string err;
  ASSERT_TRUE(ParseJson(spliced, &fields, &err)) << spliced << " : " << err;
  EXPECT_EQ(fields["a"], "1");
  EXPECT_EQ(fields["recovery.mode"], "none");
}

// ---------------------------------------------------------------------------
// BlackBox unit surface (no Database).
// ---------------------------------------------------------------------------

TEST(BlackBoxUnit, CaptureWritesParseableFileAndBumpsCounters) {
  TempDir dir("blackbox_unit");
  Metrics m;
  BlackBox box(dir.path() + "/blackbox.json", &m);
  box.SetSnapshotBuilder([](const char*, const std::string&) {
    return std::string(",\"extra\":{\"k\":1}");
  });

  ASSERT_OK(box.Capture("manual", "first"));
  ASSERT_OK(box.Capture("manual", "second"));
  EXPECT_EQ(box.captures(), 2u);
  EXPECT_EQ(m.blackbox_captures.load(), 2u);
  EXPECT_GT(m.blackbox_bytes.load(), 0u);
  EXPECT_EQ(m.blackbox_capture_latency.Snapshot().count, 2u);

  std::string json;
  ASSERT_OK(BlackBox::ReadFile(box.path(), &json));
  std::map<std::string, std::string> fields;
  std::string err;
  ASSERT_TRUE(ParseJson(json, &fields, &err)) << err;
  EXPECT_EQ(fields["version"], "1");
  EXPECT_EQ(fields["seq"], "2");
  EXPECT_EQ(fields["trigger"], "manual");
  EXPECT_EQ(fields["reason"], "second");
  EXPECT_EQ(fields["extra.k"], "1");
  // No stale tmp slot left behind after the rename.
  EXPECT_FALSE(std::filesystem::exists(box.path() + ".tmp.0") &&
               std::filesystem::exists(box.path() + ".tmp.1"));
}

TEST(BlackBoxUnit, CadenceOverwriteKeepsIncidentMemo) {
  TempDir dir("blackbox_memo");
  Metrics m;
  BlackBox box(dir.path() + "/blackbox.json", &m);
  box.SetSnapshotBuilder(
      [](const char*, const std::string&) { return std::string(); });

  // A forced capture is memoized; later cadence captures carry it forward.
  ASSERT_OK(box.Capture("health_trip", "log device failed"));
  ASSERT_OK(box.Capture("cadence", ""));

  std::string json;
  ASSERT_OK(BlackBox::ReadFile(box.path(), &json));
  std::map<std::string, std::string> fields;
  std::string err;
  ASSERT_TRUE(ParseJson(json, &fields, &err)) << err;
  EXPECT_EQ(fields["trigger"], "cadence");
  EXPECT_EQ(fields["incident.trigger"], "health_trip");
  EXPECT_EQ(fields["incident.reason"], "log device failed");
}

TEST(BlackBoxUnit, ReadFileReportsNotFound) {
  std::string out;
  Status s = BlackBox::ReadFile("/nonexistent/dir/blackbox.json", &out);
  EXPECT_FALSE(s.ok());
}

TEST(BlackBoxUnit, PeriodicThreadCapturesOnCadence) {
  TempDir dir("blackbox_cadence");
  Metrics m;
  BlackBox box(dir.path() + "/blackbox.json", &m);
  box.SetSnapshotBuilder(
      [](const char*, const std::string&) { return std::string(); });

  box.StartPeriodic(10);
  EXPECT_TRUE(box.periodic_running());
  for (int i = 0; i < 500 && box.captures() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  box.Stop();
  EXPECT_FALSE(box.periodic_running());
  EXPECT_GE(box.captures(), 2u);

  std::string json;
  ASSERT_OK(BlackBox::ReadFile(box.path(), &json));
  std::map<std::string, std::string> fields;
  std::string err;
  ASSERT_TRUE(ParseJson(json, &fields, &err)) << err;
  EXPECT_EQ(fields["trigger"], "cadence");

  // Stopped means stopped: no further captures trickle in.
  uint64_t after_stop = box.captures();
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_EQ(box.captures(), after_stop);
}

// ---------------------------------------------------------------------------
// Database integration: triggers, crash classes, reopen annotation.
// ---------------------------------------------------------------------------

Options BlackBoxOptions() {
  Options o = DefaultOptions();
  o.blackbox_interval_ms = 0;  // forced triggers only: deterministic files
  return o;
}

// Read and parse <dir>/blackbox.json, asserting it parses.
std::map<std::string, std::string> ReadRecord(const std::string& dir) {
  std::string json;
  Status s = BlackBox::ReadFile(dir + "/blackbox.json", &json);
  EXPECT_TRUE(s.ok()) << s.ToString();
  std::map<std::string, std::string> fields;
  std::string err;
  EXPECT_TRUE(ParseJson(json, &fields, &err)) << err << "\n" << json;
  return fields;
}

void RunSmallWorkload(Database* db, Table* table, int rows) {
  for (int i = 0; i < rows; ++i) {
    Transaction* txn = db->Begin();
    char key[16];
    std::snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_OK(table->Insert(txn, {key, "v"}));
    ASSERT_OK(db->Commit(txn));
  }
}

TEST(BlackBoxDb, ManualCaptureCrashAndAnnotatedReopen) {
  TempDir dir("blackbox_db");
  {
    auto opened = Database::Open(dir.path(), BlackBoxOptions());
    ASSERT_OK(opened.status());
    auto db = std::move(opened).value();
    auto table = db->CreateTable("t", 2);
    ASSERT_OK(table.status());
    RunSmallWorkload(db.get(), table.value(), 10);

    ASSERT_OK(db->CaptureIncident("operator snapshot"));
    auto fields = ReadRecord(dir.path());
    EXPECT_EQ(fields["trigger"], "manual");
    EXPECT_EQ(fields["reason"], "operator snapshot");
    EXPECT_EQ(fields["health"], "healthy");
    EXPECT_EQ(fields["fault.kind"], "none");
    // Engine-state sections are all present.
    EXPECT_EQ(fields.count("wal.durable_lsn"), 1u);
    EXPECT_EQ(fields.count("restart.instant"), 1u);
    EXPECT_EQ(fields.count("openmetrics"), 1u);

    db->SimulateCrash();
    fields = ReadRecord(dir.path());
    EXPECT_EQ(fields["trigger"], "simulate_crash");
    // The manual capture survives as the incident memo.
    EXPECT_EQ(fields["incident.trigger"], "manual");
    EXPECT_EQ(fields["incident.reason"], "operator snapshot");
  }
  {
    auto reopened = Database::Open(dir.path(), BlackBoxOptions());
    ASSERT_OK(reopened.status());
    auto db = std::move(reopened).value();
    // The leftover record was annotated with this open's restart outcome
    // and is surfaced through Stats().
    const std::string& incident = db->last_incident_json();
    ASSERT_FALSE(incident.empty());
    std::map<std::string, std::string> fields;
    std::string err;
    ASSERT_TRUE(ParseJson(incident, &fields, &err)) << err;
    EXPECT_EQ(fields["trigger"], "simulate_crash");
    EXPECT_EQ(fields["recovery.mode"], "classic");
    EXPECT_EQ(fields["recovery.health_after"], "healthy");

    DatabaseStats stats = db->Stats();
    EXPECT_EQ(stats.last_incident_json, incident);
    std::string stats_json = stats.ToJson();
    EXPECT_NE(stats_json.find("\"last_incident\":{"), std::string::npos);
  }
  {
    // A second reopen after the clean shutdown above: the clean_shutdown
    // record is loaded as last_incident (file is never deleted) and the
    // crash record survives inside it as the prev breadcrumb.
    auto reopened = Database::Open(dir.path(), BlackBoxOptions());
    ASSERT_OK(reopened.status());
    auto db = std::move(reopened).value();
    std::map<std::string, std::string> fields;
    std::string err;
    ASSERT_TRUE(ParseJson(db->last_incident_json(), &fields, &err)) << err;
    EXPECT_EQ(fields["trigger"], "clean_shutdown");
    // Recovery-on-open still ran (and found a clean log): mode says which
    // restart style executed, not whether there was work to redo.
    EXPECT_EQ(fields["recovery.mode"], "classic");
  }
}

TEST(BlackBoxDb, DisabledRecorderWritesNothing) {
  TempDir dir("blackbox_off");
  Options o = BlackBoxOptions();
  o.blackbox = false;
  auto opened = Database::Open(dir.path(), o);
  ASSERT_OK(opened.status());
  auto db = std::move(opened).value();
  EXPECT_EQ(db->blackbox(), nullptr);
  Status s = db->CaptureIncident("nope");
  EXPECT_EQ(s.code(), Code::kNotSupported) << s.ToString();
  db->SimulateCrash();
  EXPECT_FALSE(std::filesystem::exists(dir.path() + "/blackbox.json"));
}

// Every FaultInjector crash class leaves a record whose fault fields match
// the injected fault (ISSUE acceptance criterion).
TEST(BlackBoxDb, TornWriteCrashLeavesMatchingRecord) {
  TempDir dir("blackbox_torn_write");
  {
    auto opened = Database::Open(dir.path(), BlackBoxOptions());
    ASSERT_OK(opened.status());
    auto db = std::move(opened).value();
    auto table = db->CreateTable("t", 2);
    ASSERT_OK(table.status());
    RunSmallWorkload(db.get(), table.value(), 20);

    FaultSpec spec;
    spec.kind = FaultKind::kTornWrite;
    spec.site = FaultSite::kDataWrite;
    spec.keep_bytes = 100;
    db->fault_injector()->Arm(spec);
    db->FlushAllPages();  // fires the tear; device freezes after
    ASSERT_TRUE(db->fault_injector()->tripped());
    db->SimulateCrash();
  }
  auto fields = ReadRecord(dir.path());
  EXPECT_EQ(fields["trigger"], "simulate_crash");
  EXPECT_EQ(fields["fault.kind"], "torn-write");
  EXPECT_EQ(fields["fault.site"], "data-write");
  EXPECT_EQ(fields["fault.frozen"], "true");
  EXPECT_NE(fields["fault.fires"], "0");

  auto reopened = Database::Open(dir.path(), BlackBoxOptions());
  ASSERT_OK(reopened.status());
  auto db = std::move(reopened).value();
  std::map<std::string, std::string> inc;
  std::string err;
  ASSERT_TRUE(ParseJson(db->last_incident_json(), &inc, &err)) << err;
  EXPECT_EQ(inc["trigger"], "simulate_crash");
  EXPECT_EQ(inc["fault.kind"], "torn-write");
  EXPECT_EQ(inc.count("recovery.mode"), 1u);
}

TEST(BlackBoxDb, PartialLogFlushCrashLeavesMatchingRecord) {
  TempDir dir("blackbox_partial_flush");
  {
    Options o = BlackBoxOptions();
    o.fsync_log = true;  // exercise the real flush path
    auto opened = Database::Open(dir.path(), o);
    ASSERT_OK(opened.status());
    auto db = std::move(opened).value();
    auto table = db->CreateTable("t", 2);
    ASSERT_OK(table.status());
    RunSmallWorkload(db.get(), table.value(), 5);

    FaultSpec spec;
    spec.kind = FaultKind::kPartialFlush;
    spec.site = FaultSite::kLogFlush;
    spec.keep_bytes = 8;
    db->fault_injector()->Arm(spec);
    Transaction* txn = db->Begin();
    Status s = table.value()->Insert(txn, {"tear", "v"});
    if (s.ok()) s = db->Commit(txn);
    EXPECT_FALSE(s.ok());  // the tail flush tore and failed
    ASSERT_TRUE(db->fault_injector()->tripped());
    db->SimulateCrash();
  }
  auto fields = ReadRecord(dir.path());
  EXPECT_EQ(fields["trigger"], "simulate_crash");
  EXPECT_EQ(fields["fault.kind"], "partial-flush");
  EXPECT_EQ(fields["fault.site"], "log-flush");
  EXPECT_EQ(fields["fault.frozen"], "true");
  // The flush failure itself was captured first and memoized.
  EXPECT_EQ(fields["incident.trigger"], "flush_failure");

  auto reopened = Database::Open(dir.path(), BlackBoxOptions());
  ASSERT_OK(reopened.status());
  EXPECT_NE(reopened.value()->last_incident_json().find("partial-flush"),
            std::string::npos);
}

TEST(BlackBoxDb, TornCrashDataPageLeavesMatchingRecord) {
  TempDir dir("blackbox_torn_page");
  PageId victim = kInvalidPageId;
  {
    auto opened = Database::Open(dir.path(), BlackBoxOptions());
    ASSERT_OK(opened.status());
    auto db = std::move(opened).value();
    auto table = db->CreateTable("t", 2);
    ASSERT_OK(table.status());
    RunSmallWorkload(db.get(), table.value(), 20);
    auto dpt = db->pool()->DirtyPageTable();
    ASSERT_FALSE(dpt.empty());
    victim = dpt.front().first;
    ASSERT_OK(db->FlushAllPages());

    TornCrashSpec spec;
    spec.target = TornCrashSpec::Target::kDataPage;
    spec.page_id = victim;
    spec.keep_bytes = 64;
    ASSERT_OK(db->SimulateTornCrash(spec));
  }
  auto fields = ReadRecord(dir.path());
  EXPECT_EQ(fields["trigger"], "torn_crash");
  EXPECT_NE(fields["reason"].find("torn-page"), std::string::npos)
      << fields["reason"];

  auto reopened = Database::Open(dir.path(), BlackBoxOptions());
  ASSERT_OK(reopened.status());
  auto db = std::move(reopened).value();
  std::map<std::string, std::string> inc;
  std::string err;
  ASSERT_TRUE(ParseJson(db->last_incident_json(), &inc, &err)) << err;
  EXPECT_EQ(inc["trigger"], "torn_crash");
  EXPECT_EQ(inc.count("recovery.mode"), 1u);
}

TEST(BlackBoxDb, TornCrashLogTailLeavesMatchingRecord) {
  TempDir dir("blackbox_torn_log");
  {
    auto opened = Database::Open(dir.path(), BlackBoxOptions());
    ASSERT_OK(opened.status());
    auto db = std::move(opened).value();
    auto table = db->CreateTable("t", 2);
    ASSERT_OK(table.status());
    RunSmallWorkload(db.get(), table.value(), 20);

    uint64_t log_size = std::filesystem::file_size(dir.path() + "/wal.log");
    TornCrashSpec spec;
    spec.target = TornCrashSpec::Target::kLogTail;
    spec.truncate_to = log_size - 7;
    ASSERT_OK(db->SimulateTornCrash(spec));
  }
  auto fields = ReadRecord(dir.path());
  EXPECT_EQ(fields["trigger"], "torn_crash");
  EXPECT_NE(fields["reason"].find("log-tail"), std::string::npos)
      << fields["reason"];

  auto reopened = Database::Open(dir.path(), BlackBoxOptions());
  ASSERT_OK(reopened.status());
  EXPECT_NE(reopened.value()->last_incident_json().find("torn_crash"),
            std::string::npos);
}

TEST(BlackBoxDb, HealthTripForcesCapture) {
  TempDir dir("blackbox_trip");
  Options o = BlackBoxOptions();
  o.fsync_log = true;
  o.log_flush_failure_threshold = 2;
  auto opened = Database::Open(dir.path(), o);
  ASSERT_OK(opened.status());
  auto db = std::move(opened).value();
  auto table = db->CreateTable("t", 2);
  ASSERT_OK(table.status());
  RunSmallWorkload(db.get(), table.value(), 3);

  FaultSpec spec;
  spec.kind = FaultKind::kPersistentError;
  spec.site = FaultSite::kLogFlush;
  db->fault_injector()->Arm(spec);
  for (int i = 0; i < 4 && db->Health() == EngineHealth::kHealthy; ++i) {
    Transaction* txn = db->Begin();
    Status s = table.value()->Insert(txn, {"x" + std::to_string(i), "v"});
    if (s.ok()) s = db->Commit(txn);
    EXPECT_FALSE(s.ok());
  }
  ASSERT_NE(db->Health(), EngineHealth::kHealthy);
  db->fault_injector()->Disarm();

  auto fields = ReadRecord(dir.path());
  EXPECT_EQ(fields["trigger"], "health_trip");
  EXPECT_NE(fields["health"], "healthy");
  EXPECT_FALSE(fields["health_reason"].empty());
  EXPECT_GE(db->metrics().blackbox_captures.load(), 2u);  // flush_failure too
}

TEST(BlackBoxDb, TransientFlushFailureForcesCapture) {
  TempDir dir("blackbox_flushfail");
  Options o = BlackBoxOptions();
  o.fsync_log = true;
  auto opened = Database::Open(dir.path(), o);
  ASSERT_OK(opened.status());
  auto db = std::move(opened).value();
  auto table = db->CreateTable("t", 2);
  ASSERT_OK(table.status());
  RunSmallWorkload(db.get(), table.value(), 3);

  FaultSpec spec;
  spec.kind = FaultKind::kTransientError;
  spec.site = FaultSite::kLogFlush;
  spec.repeat = 1;
  db->fault_injector()->Arm(spec);
  Transaction* txn = db->Begin();
  Status s = table.value()->Insert(txn, {"y", "v"});
  if (s.ok()) s = db->Commit(txn);
  // The commit may still succeed (a follow-up flush attempt heals the
  // transient); the first failure of the streak must be captured either way.
  ASSERT_TRUE(db->fault_injector()->tripped());
  db->fault_injector()->Disarm();

  auto fields = ReadRecord(dir.path());
  EXPECT_EQ(fields["trigger"], "flush_failure");
  EXPECT_EQ(fields["health"], "healthy");  // one transient ≠ degradation

  // The engine heals and keeps going; the record stays until something
  // else overwrites it.
  Transaction* txn2 = db->Begin();
  ASSERT_OK(table.value()->Insert(txn2, {"z", "v"}));
  ASSERT_OK(db->Commit(txn2));
}

TEST(BlackBoxDb, CadenceThreadRefreshesRecord) {
  TempDir dir("blackbox_db_cadence");
  Options o = BlackBoxOptions();
  o.blackbox_interval_ms = 10;
  auto opened = Database::Open(dir.path(), o);
  ASSERT_OK(opened.status());
  auto db = std::move(opened).value();
  ASSERT_NE(db->blackbox(), nullptr);
  EXPECT_TRUE(db->blackbox()->periodic_running());

  for (int i = 0; i < 500 && db->blackbox()->captures() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(db->blackbox()->captures(), 2u);
  auto fields = ReadRecord(dir.path());
  EXPECT_EQ(fields["trigger"], "cadence");
  EXPECT_GT(db->metrics().blackbox_bytes.load(), 0u);
}

}  // namespace
}  // namespace ariesim
