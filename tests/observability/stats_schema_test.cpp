// Golden-schema guard for the JSON stats surfaces (PR 9): the key inventory
// of Metrics::ToJson(), Metrics::CommitBreakdownJson() and
// DatabaseStats::ToJson() is pinned here — exhaustively, via the same
// X-macro name tables the emitters use — so schema drift (a renamed key, a
// key emitted twice, a member missing from a surface) fails this suite
// instead of silently breaking downstream consumers of BENCH_*.json or the
// sampler stream.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/commit_breakdown.h"
#include "common/metrics.h"
#include "db/database.h"
#include "test_util.h"

namespace ariesim {
namespace {

using ariesim::testing::DefaultOptions;
using ariesim::testing::TempDir;

size_t CountOccurrences(const std::string& s, const std::string& needle) {
  size_t n = 0;
  for (size_t pos = s.find(needle); pos != std::string::npos;
       pos = s.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// Every histogram object carries exactly this key set, in this order.
const char* const kHistogramKeys[] = {"\"count\":",  "\"p50_us\":",
                                      "\"p95_us\":", "\"p99_us\":",
                                      "\"max_us\":", "\"mean_us\":"};

TEST(StatsSchema, MetricsToJsonKeyInventory) {
  Metrics m;
  m.commit_latency.Record(1'000'000);
  std::string j = m.ToJson();

  // Exactly one counters object holding exactly kCounterCount keys, each a
  // known name appearing exactly once.
  ASSERT_EQ(CountOccurrences(j, "\"counters\":{"), 1u) << j;
  const char* const* cnames = Metrics::CounterNames();
  for (size_t i = 0; i < Metrics::kCounterCount; ++i) {
    EXPECT_EQ(CountOccurrences(j, "\"" + std::string(cnames[i]) + "\":"), 1u)
        << cnames[i] << " must appear exactly once: " << j;
  }
  ASSERT_EQ(CountOccurrences(j, "\"histograms\":{"), 1u) << j;
  const char* const* hnames = Metrics::HistogramNames();
  for (size_t i = 0; i < Metrics::kHistogramCount; ++i) {
    EXPECT_EQ(CountOccurrences(
                  j, "\"" + std::string(hnames[i]) + "\":{\"count\":"),
              1u)
        << hnames[i] << " must appear exactly once: " << j;
  }
  // Histogram object key set: kHistogramCount of each key, no extras hiding
  // behind a different spelling ("us" suffix is the contract).
  for (const char* key : kHistogramKeys) {
    EXPECT_EQ(CountOccurrences(j, key), Metrics::kHistogramCount)
        << key << " count drifted: " << j;
  }
  // Total key count in the document is pinned: counters + histograms +
  // 6 keys per histogram object + the two section keys. Any new key — or a
  // dropped one — moves this number.
  size_t total_keys = CountOccurrences(j, "\":");
  EXPECT_EQ(total_keys, Metrics::kCounterCount +
                            Metrics::kHistogramCount * (1 + 6) + 2)
      << "ToJson key inventory drifted: " << j;
}

TEST(StatsSchema, CommitBreakdownJsonKeyInventory) {
  Metrics m;
  std::string j = m.CommitBreakdownJson();
  ASSERT_EQ(CountOccurrences(j, "\"segments\":{"), 1u) << j;
  ASSERT_EQ(CountOccurrences(j, "\"accounted\":{"), 1u) << j;
  const char* const* snames = CommitBreakdown::SegmentNames();
  for (size_t i = 0; i < kCommitSegmentCount; ++i) {
    EXPECT_EQ(CountOccurrences(
                  j, "\"" + std::string(snames[i]) + "\":{\"count\":"),
              1u)
        << snames[i] << ": " << j;
  }
  // Per-segment objects: count,p50_us,p95_us,mean_us,sum_ms,share.
  for (const char* key : {"\"p50_us\":", "\"p95_us\":", "\"mean_us\":",
                          "\"sum_ms\":", "\"share\":"}) {
    EXPECT_EQ(CountOccurrences(j, key), kCommitSegmentCount) << key << ": " << j;
  }
  for (const char* key :
       {"\"commit_count\":", "\"commit_p50_us\":", "\"commit_mean_us\":",
        "\"path_p50_us_sum\":", "\"path_mean_us_sum\":", "\"p50_share\":",
        "\"mean_share\":"}) {
    EXPECT_EQ(CountOccurrences(j, key), 1u) << key << ": " << j;
  }
}

TEST(StatsSchema, DatabaseStatsTopLevelKeys) {
  TempDir dir("schema_db");
  auto db = std::move(Database::Open(dir.path(), DefaultOptions()).value());
  db->CreateTable("t", 2).value();
  Table* table = db->GetTable("t");
  Transaction* txn = db->Begin();
  ASSERT_OK(table->Insert(txn, {"k", "v"}));
  ASSERT_OK(db->Commit(txn));
  std::string j = db->Stats().ToJson();
  // Top-level sections, each exactly once.
  for (const char* key :
       {"\"health\":", "\"metrics\":", "\"commit_breakdown\":", "\"restart\":",
        "\"last_incident\":", "\"trace\":"}) {
    EXPECT_EQ(CountOccurrences(j, key), 1u) << key << ": " << j;
  }
  // Fresh directory: no prior incarnation, so no incident record.
  EXPECT_NE(j.find("\"last_incident\":null"), std::string::npos) << j;
  // The full metrics inventory is embedded, not a subset.
  const char* const* cnames = Metrics::CounterNames();
  for (size_t i = 0; i < Metrics::kCounterCount; ++i) {
    EXPECT_GE(CountOccurrences(j, "\"" + std::string(cnames[i]) + "\":"), 1u)
        << cnames[i] << " missing from Stats().ToJson(): " << j;
  }
  // And the breakdown section is the same document CommitBreakdownJson()
  // renders (segments + accounted present).
  EXPECT_NE(j.find("\"commit_breakdown\":{\"segments\":{"), std::string::npos)
      << j;
  EXPECT_NE(j.find("\"p50_share\":"), std::string::npos) << j;
}

}  // namespace
}  // namespace ariesim
