// Guards the "exhaustive by construction" property of Metrics::ToString()
// and ToJson(): every counter and histogram must reach both surfaces, and
// the struct layout must match the X-macro declarations — a member added
// outside ARIESIM_METRICS_COUNTERS / ARIESIM_METRICS_HISTOGRAMS changes
// sizeof/offsetof and fails here instead of silently missing from the stats.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "common/metrics.h"

namespace ariesim {
namespace {

// Layout check: the counters are kCounterCount atomics laid out first, the
// histograms directly after. Any member declared outside the X-macros (or a
// histogram squeezed between counters) breaks one of these equalities.
static_assert(offsetof(Metrics, commit_latency) ==
                  Metrics::kCounterCount * sizeof(std::atomic<uint64_t>),
              "a Metrics counter was added outside ARIESIM_METRICS_COUNTERS");
static_assert(sizeof(Metrics) ==
                  Metrics::kCounterCount * sizeof(std::atomic<uint64_t>) +
                      Metrics::kHistogramCount * sizeof(LatencyHistogram),
              "a Metrics member was added outside the X-macros");

TEST(MetricsEmission, EveryCounterInToString) {
  Metrics m;
  // Distinct values so we can also verify each name maps to its own member.
  const char* const* names = Metrics::CounterNames();
  uint64_t next = 0;
#define ARIESIM_TEST_SET(name) m.name.store(++next, std::memory_order_relaxed);
  ARIESIM_METRICS_COUNTERS(ARIESIM_TEST_SET)
#undef ARIESIM_TEST_SET
  std::string s = m.ToString();
  for (size_t i = 0; i < Metrics::kCounterCount; ++i) {
    std::string token =
        std::string(names[i]) + "=" + std::to_string(i + 1);
    EXPECT_NE(s.find(token), std::string::npos)
        << "counter '" << names[i] << "' missing (or wrong) in ToString(): "
        << s;
  }
}

TEST(MetricsEmission, EveryCounterAndHistogramInToJson) {
  Metrics m;
  m.commit_latency.Record(1'000'000);
  std::string j = m.ToJson();
  const char* const* cnames = Metrics::CounterNames();
  for (size_t i = 0; i < Metrics::kCounterCount; ++i) {
    std::string key = "\"" + std::string(cnames[i]) + "\":";
    EXPECT_NE(j.find(key), std::string::npos)
        << "counter '" << cnames[i] << "' missing in ToJson(): " << j;
  }
  const char* const* hnames = Metrics::HistogramNames();
  for (size_t i = 0; i < Metrics::kHistogramCount; ++i) {
    std::string key = "\"" + std::string(hnames[i]) + "\":{\"count\":";
    EXPECT_NE(j.find(key), std::string::npos)
        << "histogram '" << hnames[i] << "' missing in ToJson(): " << j;
  }
  // Histogram objects carry the full percentile key set even when empty.
  for (const char* key : {"\"p50_us\":", "\"p95_us\":", "\"p99_us\":",
                          "\"max_us\":", "\"mean_us\":"}) {
    EXPECT_NE(j.find(key), std::string::npos) << key << " missing: " << j;
  }
  EXPECT_NE(j.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(j.find("\"histograms\":{"), std::string::npos);
}

TEST(MetricsEmission, PopulatedHistogramInToString) {
  Metrics m;
  std::string before = m.ToString();
  // Empty histograms stay out of the one-liner (it is for humans)...
  EXPECT_EQ(before.find("commit_latency_p50_us"), std::string::npos);
  // ...but show up once they have data.
  for (int i = 0; i < 10; ++i) m.commit_latency.Record(2'000'000);
  std::string after = m.ToString();
  EXPECT_NE(after.find("commit_latency_p50_us="), std::string::npos);
  EXPECT_NE(after.find("commit_latency_p99_us="), std::string::npos);
}

TEST(MetricsEmission, ResetCoversHistograms) {
  Metrics m;
  m.pages_read.fetch_add(5);
  m.repair_latency.Record(123'456);
  m.Reset();
  EXPECT_EQ(m.pages_read.load(), 0u);
  EXPECT_EQ(m.repair_latency.count(), 0u);
}

TEST(MetricsEmission, NameTablesMatchCounts) {
  // The tables are generated from the same X-macros; spot-check ordering
  // against known first/last members.
  EXPECT_STREQ(Metrics::CounterNames()[0], "lock_requests");
  EXPECT_STREQ(Metrics::CounterNames()[Metrics::kCounterCount - 1],
               "btree_backoffs");
  EXPECT_STREQ(Metrics::HistogramNames()[0], "commit_latency");
  // PR 9 appended the seven commit_seg_* histograms after smo_latency.
  EXPECT_STREQ(Metrics::HistogramNames()[Metrics::kHistogramCount - 1],
               "commit_seg_wakeup");
}

}  // namespace
}  // namespace ariesim
